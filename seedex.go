// Package seedex is a Go reproduction of "SeedEx: A Genome Sequencing
// Accelerator for Optimal Alignments in Subminimal Space" (MICRO 2020):
// a speculation-and-test framework that runs seed extensions on a cheap
// narrow-band Smith-Waterman engine and *proves* per-extension optimality
// with three checks (thresholding, E-score, edit-distance), falling back
// to a full-band host rerun for the ~2% of extensions whose optimality
// cannot be proven. The result is bit-identical to full-band alignment at
// a fraction of the hardware cost.
//
// This package is the public facade; the implementation lives in the
// internal packages:
//
//   - internal/align      — extension kernels, banding, traceback, CIGAR
//   - internal/core       — the SeedEx optimality checks and extender
//   - internal/editmachine, internal/delta — the edit machine and its
//     3-bit delta-encoded datapath
//   - internal/systolic, internal/fpga, internal/hw — cycle-level and
//     system-level hardware models
//   - internal/fmindex, internal/ert, internal/chain, internal/bwamem —
//     the mini aligner pipeline (seeding, chaining, SAM output)
//   - internal/genome, internal/readsim, internal/fastx, internal/sam —
//     data substrates
//   - internal/dtw, internal/lcs — the §VII-D extensions (optimality-
//     checked banded DTW and LCS)
//
// Quick start:
//
//	ext := seedex.NewExtender(20)                  // ±20 band, strict mode
//	res := ext.Extend(query, target, h0)           // bit-equal to full band
//	fmt.Println(ext.Stats)                         // pass rates, reruns
//
// or end to end:
//
//	a, _ := seedex.NewAligner("chr1", refCodes, seedex.NewExtender(20))
//	records, stats := a.Run(reads, 0)
package seedex

import (
	"seedex/internal/align"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/genome"
	"seedex/internal/longread"
	"seedex/internal/readsim"
)

// Re-exported core types. The aliases are the public API surface; see the
// internal packages for full documentation.
type (
	// Scoring is an affine-gap scoring scheme (penalties positive).
	Scoring = align.Scoring
	// ExtendResult reports one seed extension (local + global scores and
	// positions).
	ExtendResult = align.ExtendResult
	// Extender is anything that can perform seed extensions.
	Extender = align.Extender
	// Cigar is a run-length encoded alignment description.
	Cigar = align.Cigar
	// CheckConfig parameterizes the SeedEx optimality checker.
	CheckConfig = core.Config
	// CheckReport carries the outcome of one check workflow.
	CheckReport = core.Report
	// Thresholds are the S1/S2 upper bounds of Theorem 1.
	Thresholds = core.Thresholds
	// SpeculativeExtender is the SeedEx narrow-band extender with checks
	// and host rerun.
	SpeculativeExtender = core.SeedEx
	// Stats aggregates check outcomes.
	Stats = core.Stats
	// Aligner is the mini BWA-MEM-style pipeline.
	Aligner = bwamem.Aligner
	// Read is one pipeline input read.
	Read = bwamem.Read
)

// Checking modes.
const (
	// ModePaper follows the paper's workflow verbatim (guarantees the
	// local result).
	ModePaper = core.ModePaper
	// ModeStrict guarantees full bit-equivalence of the extension result.
	ModeStrict = core.ModeStrict
)

// DefaultScoring returns BWA-MEM's default scheme {1,4,6,1}.
func DefaultScoring() Scoring { return align.DefaultScoring() }

// Extend runs the full-band software kernel (the host rerun reference).
func Extend(query, target []byte, h0 int, sc Scoring) ExtendResult {
	return align.Extend(query, target, h0, sc)
}

// ExtendBanded runs the banded kernel with one-sided band w.
func ExtendBanded(query, target []byte, h0 int, sc Scoring, w int) ExtendResult {
	res, _ := align.ExtendBanded(query, target, h0, sc, w)
	return res
}

// Check speculatively extends with a narrow band and runs the SeedEx
// optimality checks.
func Check(query, target []byte, h0 int, cfg CheckConfig) (ExtendResult, CheckReport) {
	return core.Check(query, target, h0, cfg)
}

// ComputeThresholds evaluates the S1/S2 bounds (equations 4 and 5).
func ComputeThresholds(qlen, h0, w int, sc Scoring) Thresholds {
	return core.ComputeThresholds(qlen, h0, w, sc, core.SemiGlobal)
}

// NewExtender returns a strict-mode SeedEx extender with one-sided band w
// and default scoring; its results are bit-identical to full-band
// extension.
func NewExtender(w int) *SpeculativeExtender { return core.New(w) }

// NewAligner builds the mini aligner over a reference sequence (ASCII or
// base codes accepted via EncodeBases) with the given extender.
func NewAligner(refName string, ref []byte, ext Extender) (*Aligner, error) {
	return bwamem.New(refName, ref, ext)
}

// EncodeBases converts an ASCII nucleotide string to base codes.
func EncodeBases(s string) []byte { return genome.Encode(s) }

// DecodeBases converts base codes back to ASCII.
func DecodeBases(b []byte) string { return genome.Decode(b) }

// RevComp returns the reverse complement of a base-code sequence.
func RevComp(b []byte) []byte { return genome.RevComp(b) }

// SimulateGenome generates a synthetic reference (see genome.SimConfig).
type SimConfig = genome.SimConfig

// SimulateReads generates synthetic reads (see readsim.Config).
type ReadSimConfig = readsim.Config

// SimRead is one simulated read with ground truth.
type SimRead = readsim.Read

// Contig is one reference sequence of a multi-contig aligner.
type Contig = bwamem.Contig

// NewMultiAligner builds the aligner over several contigs (chromosomes).
func NewMultiAligner(contigs []Contig, ext Extender) (*Aligner, error) {
	return bwamem.NewMulti(contigs, ext)
}

// ReadPair is one paired-end fragment's two ends; align with
// Aligner.RunPairs or Aligner.AlignPair.
type ReadPair = bwamem.ReadPair

// InsertStats is the paired-end fragment-length distribution.
type InsertStats = bwamem.InsertStats

// GlobalResult reports one global (end-to-end) alignment.
type GlobalResult = align.GlobalResult

// Global computes the full-width global alignment score (the gap-filling
// kernel of long-read aligners, paper §VII-D).
func Global(query, target []byte, h0 int, sc Scoring) GlobalResult {
	return align.Global(query, target, h0, sc)
}

// CheckedGlobal is the speculate-and-test global aligner: banded global
// alignment with SeedEx-style optimality checks and a full-width rerun;
// its score always equals Global's.
func CheckedGlobal(query, target []byte, h0 int, w int, sc Scoring) (GlobalResult, bool) {
	res, rep := core.CheckedGlobal(query, target, h0, core.Config{Band: w, Scoring: sc, Kind: core.Global})
	return res, !rep.Rerun
}

// GlobalAlign computes an optimal global alignment CIGAR in linear space
// (Myers-Miller), practical for multi-kbp sequences.
func GlobalAlign(query, target []byte, sc Scoring) (Cigar, int) {
	return align.GlobalAlign(query, target, sc)
}

// LongReadAligner is the §VII-D seed-and-chain-then-fill long-read
// aligner with checked banded global fills.
type LongReadAligner = longread.Aligner

// NewLongReadAligner builds a long-read aligner over a sanitized
// reference with default (noisy multi-kbp) settings.
func NewLongReadAligner(ref []byte) *LongReadAligner {
	return longread.New(ref, longread.DefaultConfig())
}

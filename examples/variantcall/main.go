// Variant-calling example: the tertiary analysis the paper motivates
// ("even small errors in alignment can lead to expensive clinical
// mistakes in critical disease diagnosis", §I). A donor genome with
// planted SNVs is sequenced at ~30x, aligned with the SeedEx pipeline,
// piled up, and called — and because SeedEx alignments are bit-identical
// to full-band alignments, the variant calls are identical too.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"seedex"
	"seedex/internal/align"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/genome"
	"seedex/internal/pileup"
	"seedex/internal/readsim"
)

func main() {
	rng := rand.New(rand.NewSource(2026))
	ref := genome.Simulate(genome.SimConfig{Length: 30_000}, rng)

	// Plant heterozygous-style SNVs into the donor genome.
	donor := append([]byte(nil), ref...)
	truth := map[int]byte{}
	for len(truth) < 15 {
		pos := 500 + rng.Intn(len(ref)-1000)
		if _, dup := truth[pos]; dup {
			continue
		}
		alt := (donor[pos] + byte(1+rng.Intn(3))) % 4
		truth[pos], donor[pos] = alt, alt
	}
	reads := readsim.Simulate(donor, readsim.Config{
		N: 9000, ReadLen: 101, ErrRate: 0.003, RevCompFraction: 0.5,
	}, rng)
	fmt.Printf("reference %d bp, donor with %d planted SNVs, %d reads (~30x)\n\n", len(ref), len(truth), len(reads))

	call := func(name string, ext seedex.Extender) []pileup.Variant {
		a, err := bwamem.New("chr", ref, ext)
		if err != nil {
			panic(err)
		}
		var aligned []pileup.AlignedRead
		for _, r := range reads {
			al := a.AlignRead(r.Seq)
			if !al.Mapped || al.MapQ < 20 {
				continue
			}
			seq := r.Seq
			if al.Rev {
				seq = genome.RevComp(r.Seq)
			}
			aligned = append(aligned, pileup.AlignedRead{Pos: al.Pos, Seq: seq, Cigar: al.Cigar})
		}
		piles := pileup.Pileup(len(ref), aligned)
		vs := pileup.CallSNVs(ref, piles, pileup.DefaultCallConfig())
		fmt.Printf("%-22s %d reads piled, %d variants called\n", name, len(aligned), len(vs))
		return vs
	}

	se := seedex.NewExtender(20)
	got := call("SeedEx (w=41 PEs)", se)
	want := call("full-band reference", core.FullBand{Scoring: align.DefaultScoring()})

	if len(got) != len(want) {
		panic("variant call sets differ between SeedEx and full-band pipelines")
	}
	for i := range got {
		if got[i] != want[i] {
			panic("variant call differs: " + got[i].String() + " vs " + want[i].String())
		}
	}
	fmt.Printf("%-22s %v\n\n", "", se.Stats)

	var poss []int
	for p := range truth {
		poss = append(poss, p)
	}
	sort.Ints(poss)
	tp := 0
	for _, v := range got {
		if alt, ok := truth[v.Pos]; ok && alt == v.Alt {
			tp++
		}
	}
	fmt.Printf("calls (identical under both extenders):\n")
	for _, v := range got {
		mark := "novel/false"
		if alt, ok := truth[v.Pos]; ok && alt == v.Alt {
			mark = "planted ✓"
		}
		fmt.Printf("  %-32s %s\n", v, mark)
	}
	fmt.Printf("\nrecovered %d/%d planted SNVs; SeedEx and full-band calls are identical. ✓\n", tp, len(truth))
}

// DTW example: the paper's §VII-D observes that the SeedEx check approach
// transfers to any DP with one-dimensional locality, naming Dynamic Time
// Warping explicitly ("helpful to guarantee optimality even with small
// time windows"). This example runs optimality-checked Sakoe-Chiba banded
// DTW over synthetic sensor traces and reports how much of the matrix the
// proof-carrying band avoids computing.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"seedex/internal/dtw"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A smooth "gesture" signal and a time-warped, noisy replay of it.
	x := make([]float64, 300)
	for i := range x {
		ti := float64(i) / 30
		x[i] = math.Sin(ti) + 0.4*math.Sin(3.1*ti)
	}
	var y []float64
	for _, v := range x {
		y = append(y, v+rng.NormFloat64()*0.02)
		if rng.Float64() < 0.05 { // local slowdown: repeat a sample
			y = append(y, v+rng.NormFloat64()*0.02)
		}
	}
	fmt.Printf("series lengths: |x|=%d |y|=%d\n\n", len(x), len(y))

	full := dtw.Full(x, y)
	fmt.Printf("full DTW: cost %.4f over %d cells\n\n", full.Cost, full.Cells)

	fmt.Printf("%-6s %-10s %-8s %-10s %-9s\n", "band", "cost", "pass", "cells", "saved")
	for _, w := range []int{4, 8, 16, 24, 40} {
		res, rep := dtw.Checked(x, y, w)
		saved := 100 * (1 - float64(res.Cells)/float64(full.Cells))
		status := "proved"
		if rep.Rerun {
			status = "rerun"
			saved = 0
		}
		fmt.Printf("w=%-4d %-10.4f %-8s %-10d %5.1f%%\n", w, res.Cost, status, res.Cells, saved)
		if math.Abs(res.Cost-full.Cost) > 1e-9 {
			panic("checked DTW diverged from the full computation")
		}
	}
	fmt.Println("\nevery row is bit-equal to full DTW; passing bands carry a proof,")
	fmt.Println("failing bands were transparently rerun — the SeedEx workflow verbatim.")
}

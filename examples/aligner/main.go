// Aligner example: the paper's headline validation in miniature. A
// synthetic genome and reads are simulated; the same pipeline is run with
// the full-band extender, the SeedEx extender, and a plain banded
// heuristic; SeedEx SAM output is byte-identical to the full-band output
// while the unchecked heuristic diverges (paper Figure 13).
package main

import (
	"fmt"
	"math/rand"

	"seedex"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/genome"
	"seedex/internal/readsim"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	ref := genome.Simulate(genome.SimConfig{Length: 120_000, RepeatFraction: 0.05}, rng)
	cfg := readsim.RealisticConfig(800)
	cfg.IndelRate = 0.002 // enough indels that tiny bands must fail
	simReads := readsim.Simulate(ref, cfg, rng)

	reads := make([]seedex.Read, len(simReads))
	for i, r := range simReads {
		reads[i] = seedex.Read{Name: r.ID, Seq: r.Seq, Qual: r.Qual}
	}
	fmt.Printf("simulated %d bp genome, %d reads (101 bp, realistic error profile)\n\n", len(ref), len(reads))

	run := func(name string, ext seedex.Extender, traceBand int) []string {
		a, err := seedex.NewAligner("chrSim", ref, ext)
		if err != nil {
			panic(err)
		}
		if traceBand >= 0 {
			a.Opts.TraceBand = traceBand
		}
		recs, stats := a.Run(reads, 0)
		out := make([]string, len(recs))
		for i, r := range recs {
			out[i] = r.String()
		}
		fmt.Printf("%-22s mapped %d/%d, %d extensions, ext time %.1f ms\n",
			name, stats.Mapped, stats.Reads, stats.Extensions, float64(stats.ExtensionNs)/1e6)
		return out
	}

	full := run("full-band (reference)", core.FullBand{Scoring: seedex.DefaultScoring()}, -1)

	se := seedex.NewExtender(20) // 41-PE narrow band, strict mode
	seOut := run("SeedEx w=41PE", se, -1)
	fmt.Printf("%24s %v\n", "", se.Stats)

	banded := run("banded w=3 (no checks)", core.Banded{Scoring: seedex.DefaultScoring(), Band: 1}, 1)

	diff := func(a, b []string) int {
		n := 0
		for i := range a {
			if a[i] != b[i] {
				n++
			}
		}
		return n
	}
	fmt.Printf("\nSAM differences vs full-band: SeedEx = %d, banded heuristic = %d (of %d reads)\n",
		diff(full, seOut), diff(full, banded), len(reads))
	if d := diff(full, seOut); d != 0 {
		panic(fmt.Sprintf("SeedEx output diverged (%d records) — the optimality guarantee is broken", d))
	}
	fmt.Println("SeedEx output is byte-identical to the full-band pipeline. ✓")

	_ = bwamem.DefaultOptions() // (the pipeline exposes all knobs; see internal/bwamem)
}

// Long-read example (paper §VII-D): minimap2-class aligners use the
// "seed-and-chain-then-fill" strategy, computing *global* alignments
// between chained anchors with a small band — a kernel the paper measures
// at 16-33% of minimap2's time and proposes SeedEx for. This example maps
// noisy multi-kbp reads with every inter-anchor fill running through the
// checked banded global aligner, and verifies the result is bit-equal to
// full-width fills.
package main

import (
	"fmt"
	"math/rand"

	"seedex/internal/genome"
	"seedex/internal/longread"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	ref := genome.Simulate(genome.SimConfig{Length: 300_000, RepeatFraction: 0.02}, rng)

	checked := longread.New(ref, longread.DefaultConfig())
	full := longread.New(ref, longread.DefaultConfig())
	full.FullFill = true

	fmt.Printf("reference: %d bp; fills use banded global alignment, w=%d\n\n", len(ref), checked.Cfg.Band)
	fmt.Printf("%-8s %-8s %-9s %-8s %-8s %-7s\n", "read", "length", "err-rate", "anchors", "fills", "equal")

	const n = 25
	correct := 0
	for i := 0; i < n; i++ {
		read, pos, rev := simLongRead(rng, ref)
		got := checked.Align(read)
		want := full.Align(read)
		equal := got == want
		if !equal {
			panic(fmt.Sprintf("read %d: checked fill diverged: %+v vs %+v", i, got, want))
		}
		d := got.Pos - pos
		if d < 0 {
			d = -d
		}
		if got.Mapped && d < 50 && got.Rev == rev {
			correct++
		}
		fmt.Printf("%-8d %-8d %-9s %-8d %-8d %-7v\n", i, len(read), "~7.5%", got.Anchors, got.Fills, equal)
	}

	st := &checked.Stats
	fmt.Printf("\nmapped correctly: %d/%d\n", correct, n)
	fmt.Printf("fills: %d total, %.1f%% proven optimal in-band, %d full-width reruns\n",
		st.Fills.Load(), 100*st.PassRate(), st.FillReruns.Load())
	fmt.Println("every read scored bit-identically to full-width gap filling. ✓")
}

// simLongRead draws a ~2 kbp ONT-flavoured read (2.5% del, 3% ins, 2% sub).
func simLongRead(rng *rand.Rand, ref []byte) (read []byte, pos int, rev bool) {
	l := 1500 + rng.Intn(1500)
	pos = rng.Intn(len(ref) - l)
	for _, c := range ref[pos : pos+l] {
		r := rng.Float64()
		switch {
		case r < 0.025:
		case r < 0.055:
			read = append(read, byte(rng.Intn(4)), c)
		case r < 0.075:
			read = append(read, (c+byte(1+rng.Intn(3)))%4)
		default:
			read = append(read, c)
		}
	}
	if rng.Intn(2) == 0 {
		read = genome.RevComp(read)
		rev = true
	}
	return
}

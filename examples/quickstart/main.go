// Quickstart: one seed extension through the SeedEx speculation-and-test
// workflow, narrating every check the paper's Figure 6 describes.
package main

import (
	"fmt"

	"seedex"
)

func main() {
	sc := seedex.DefaultScoring()

	// A 48 bp query flank derived from the reference window with one
	// mismatch and a 2-base deletion — a typical seed extension.
	target := seedex.EncodeBases("ACGTTGCAGGTCAATCCGGAATTCAGGTACCGTTAGCATCAGGATCCATTGCAA")
	query := seedex.EncodeBases("ACGTTGCAGGTCAATCCGGAATTGAGGTACCGTTGCATCAGGATCCATTG")
	h0 := 40 // accumulated seed score

	fmt.Println("SeedEx quickstart")
	fmt.Printf("query  (%3d bp): %s\n", len(query), seedex.DecodeBases(query))
	fmt.Printf("target (%3d bp): %s\n", len(target), seedex.DecodeBases(target))
	fmt.Printf("seed score h0 = %d, scoring {m:%d, x:-%d, go:-%d, ge:-%d}\n\n",
		h0, sc.Match, sc.Mismatch, sc.GapOpen, sc.GapExtend)

	// The check workflow at two bands: a too-narrow band that fails its
	// proof (and would be rerun on the host), then a band whose result is
	// proven optimal.
	full := seedex.Extend(query, target, h0, sc)
	for _, w := range []int{5, 12} {
		th := seedex.ComputeThresholds(len(query), h0, w, sc)
		fmt.Printf("band w=%d  ->  S1=%d (above-band bound), S2=%d (below-band bound)\n", w, th.S1, th.S2)
		res, rep := seedex.Check(query, target, h0, seedex.CheckConfig{
			Band: w, Scoring: sc, Mode: seedex.ModeStrict,
		})
		fmt.Printf("  narrow-band score: local=%d global=%d\n", res.Local, res.Global)
		if rep.ERan {
			fmt.Printf("  E-score check: score_maxE=%d (live crossing: %v)\n", rep.ScoreMaxE, rep.ELive)
		}
		if rep.EditRan {
			fmt.Printf("  edit-distance check: score_ed=%d\n", rep.ScoreEd)
		}
		verdict := "optimality PROVEN — no path outside the band can score higher"
		if !rep.Pass {
			verdict = "proof failed — the extension is rerun with the full band on the host"
		}
		fmt.Printf("  outcome: %v -> %s\n\n", rep.Outcome, verdict)
	}

	// The production path hides all of this behind one call whose result
	// is always bit-equal to the full-band reference.
	fmt.Printf("full-band reference: local=%d global=%d\n", full.Local, full.Global)
	ext := seedex.NewExtender(5)
	out := ext.Extend(query, target, h0)
	fmt.Printf("speculative extender: local=%d global=%d (bit-equal: %v)\n",
		out.Local, out.Global, out.Local == full.Local && out.Global == full.Global)
	fmt.Printf("%v\n", ext.Stats)
}

// Delta-encoding walkthrough: the 3-bit residue arithmetic (§IV-B,
// Figures 9-11) that shrinks the edit machine's datapath. It shows the
// modulo-circle delta-max on raw values, then runs the same trapezoid
// sweep through the plain relaxed DP and the delta-encoded machine with
// its augmentation-unit decode, confirming identical scores.
package main

import (
	"fmt"
	"math/rand"

	"seedex/internal/delta"
	"seedex/internal/editmachine"
)

func main() {
	fmt.Println("1. The modulo circle (Δ=8, δ=3): residues decide maxima")
	fmt.Println("   ----------------------------------------------------")
	for _, pair := range [][2]int{{117, 120}, {120, 117}, {-5, -3}, {254, 255}} {
		x, y := pair[0], pair[1]
		rx, ry := delta.Encode(x), delta.Encode(y)
		m := delta.DMax2(rx, ry)
		real := x
		if y > x {
			real = y
		}
		fmt.Printf("   max(%4d, %4d): residues (%d,%d) -> dmax residue %d == Encode(%d): %v\n",
			x, y, rx, ry, m, real, m == delta.Encode(real))
	}

	fmt.Println("\n2. Augmentation unit: decoding a 3-bit walk back to full width")
	fmt.Println("   -----------------------------------------------------------")
	aug := delta.NewAugmenter(100)
	v := 100
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 6; step++ {
		v += rng.Intn(2*delta.MaxDelta+1) - delta.MaxDelta
		got := aug.Step(delta.Encode(v))
		fmt.Printf("   step %d: true %4d, residue %d, decoded %4d\n", step, v, delta.Encode(v), got)
	}
	fmt.Printf("   running max decoded: %d\n", aug.Max())

	fmt.Println("\n3. Edit machine: plain relaxed DP vs the 3-bit datapath")
	fmt.Println("   ----------------------------------------------------")
	q := randSeq(rng, 60)
	t := append(randSeq(rng, 12), q...) // query embedded below the band
	const w, init = 6, 55
	plain := editmachine.SweepCorner(q, t, w, init, editmachine.CanonicalRelaxed)
	dl, err := editmachine.DeltaSweep(q, t, w, init, editmachine.CanonicalRelaxed)
	if err != nil {
		panic(err)
	}
	fmt.Printf("   trapezoid region: %d cells (%d rows), seeded with S1=%d\n", plain.Cells, plain.Rows, init)
	fmt.Printf("   plain relaxed DP:  score_ed = %d\n", plain.Score)
	fmt.Printf("   3-bit delta PEs:   score_ed = %d (augmentation path length %d)\n", dl.Score, dl.PathLen)
	if plain.Score != dl.Score {
		panic("delta-encoded machine diverged from the plain sweep")
	}
	fmt.Println("   identical — the 8-bit datapath was never needed. ✓")
}

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

#!/usr/bin/env bash
# Reference index lifecycle smoke test: build a checksummed container
# with seedex-index, serve /v1/map from it through a read-only memory
# mapping, hot-reload under live traffic, then corrupt a publish and
# prove the server rolls back to the serving generation (degraded
# healthz, exact mappings throughout). Artifacts (index info, metrics
# scrapes, server log) land in OUT (default index-smoke/) for CI upload.
set -euo pipefail

OUT="${OUT:-index-smoke}"
ADDR="${ADDR:-127.0.0.1:18846}"
mkdir -p "$OUT"

echo "== building seedex-index and seedex-serve =="
go build -o "$OUT/seedex-index" ./cmd/seedex-index
go build -o "$OUT/seedex-serve" ./cmd/seedex-serve

echo "== building a reference container =="
python3 - "$OUT/ref.fa" <<'EOF'
import random, sys
random.seed(42)
seq = "".join(random.choice("ACGT") for _ in range(4000))
with open(sys.argv[1], "w") as f:
    f.write(">chrS smoke contig\n")
    for i in range(0, len(seq), 70):
        f.write(seq[i:i+70] + "\n")
with open(sys.argv[1] + ".read", "w") as f:
    f.write(seq[500:650])
EOF
"$OUT/seedex-index" build -ref "$OUT/ref.fa" -out "$OUT/ref.rix"
"$OUT/seedex-index" verify "$OUT/ref.rix"
"$OUT/seedex-index" info "$OUT/ref.rix" >"$OUT/index-info.json"

echo "== starting server on $ADDR from the index store =="
"$OUT/seedex-serve" -addr "$ADDR" -index-store "$OUT/ref.rix" -flush 1ms \
  >"$OUT/serve.log" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died during startup:" >&2
    cat "$OUT/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

fail() { echo "FAIL: $*" >&2; cat "$OUT/serve.log" >&2; exit 1; }

READ=$(cat "$OUT/ref.fa.read")
map_once() {
  curl -fsS -X POST "http://$ADDR/v1/map" -H 'Content-Type: application/json' \
    -d "{\"reads\":[{\"name\":\"smoke\",\"seq\":\"$READ\"}]}"
}

echo "== mapping from the mmap-served generation =="
BASELINE=$(map_once)
echo "$BASELINE" >"$OUT/map-baseline.json"
echo "$BASELINE" | grep -q '"rname":"chrS"' || fail "read did not map to chrS: $BASELINE"
echo "$BASELINE" | grep -q '"pos":501' || fail "read did not map at pos 501: $BASELINE"

echo "== hot reload under live traffic =="
( for i in $(seq 1 40); do map_once >>"$OUT/map-during-reload.ndjson" || echo MAPFAIL >>"$OUT/map-during-reload.ndjson"; done ) &
TRAFFIC_PID=$!
for i in 1 2 3; do
  curl -fsS -X POST "http://$ADDR/admin/reload" >>"$OUT/reloads.json" || fail "clean reload $i failed"
  echo >>"$OUT/reloads.json"
done
wait "$TRAFFIC_PID"
grep -q MAPFAIL "$OUT/map-during-reload.ndjson" && fail "a /v1/map request failed during the reload storm"
while read -r line; do
  [ "$line" = "$BASELINE" ] || fail "mapping changed across a reload: $line"
done <"$OUT/map-during-reload.ndjson"

echo "== corrupt publish must roll back =="
# Publish a truncated container the crash-safe way (write-aside +
# rename): the loader must reject it and keep serving generation N.
head -c 200 "$OUT/ref.rix" >"$OUT/ref.rix.bad"
mv "$OUT/ref.rix.bad" "$OUT/ref.rix"
if curl -fsS -X POST "http://$ADDR/admin/reload" >"$OUT/reload-corrupt.json" 2>/dev/null; then
  fail "reload of a truncated container reported success"
fi
curl -fsS "http://$ADDR/healthz" >"$OUT/healthz-degraded.json"
grep -q '"status":"degraded"' "$OUT/healthz-degraded.json" || fail "healthz not degraded after rollback"
grep -q '"index_state":"degraded-reload"' "$OUT/healthz-degraded.json" || fail "healthz missing degraded-reload state"
AFTER=$(map_once) || fail "mapping failed after rollback"
[ "$AFTER" = "$BASELINE" ] || fail "mapping changed after rollback: $AFTER"

echo "== republish repairs on the next reload =="
"$OUT/seedex-index" build -ref "$OUT/ref.fa" -out "$OUT/ref.rix"
curl -fsS -X POST "http://$ADDR/admin/reload" >"$OUT/reload-repaired.json" || fail "reload of the repaired container failed"
curl -fsS "http://$ADDR/healthz" >"$OUT/healthz-recovered.json"
grep -q '"status":"ok"' "$OUT/healthz-recovered.json" || fail "healthz did not recover"

echo "== scraping =="
curl -fsS "http://$ADDR/metrics?format=prometheus" >"$OUT/metrics.prom"
curl -fsS "http://$ADDR/metrics" >"$OUT/metrics.json"
for family in \
  seedex_index_generation seedex_index_reloads_total \
  seedex_index_reload_failures_total seedex_index_rollbacks_total \
  seedex_index_degraded_reload seedex_index_mmap_bytes; do
  grep -q "^$family" "$OUT/metrics.prom" || fail "$family missing from Prometheus scrape"
done
grep -q '^seedex_index_rollbacks_total 1' "$OUT/metrics.prom" || fail "rollback not counted in Prometheus scrape"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
trap - EXIT
grep -q 'index store summary' "$OUT/serve.log" || fail "server exit summary missing"
echo "OK: index lifecycle smoke passed; artifacts in $OUT/"

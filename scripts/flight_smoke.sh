#!/usr/bin/env bash
# Flight-recorder smoke test: start seedex-serve with chaos fault
# injection, tail retention and the flight recorder armed, drive traffic
# until the device breaker trips, then assert the degradation watcher
# wrote an automatic breaker-trip flight tarball — and that a SIGQUIT
# dump lands too. Artifacts (server log, tarballs, manifests) land in
# OUT (default flight-smoke/) for CI upload.
set -euo pipefail

OUT="${OUT:-flight-smoke}"
ADDR="${ADDR:-127.0.0.1:18846}"
mkdir -p "$OUT"

fail() { echo "FAIL: $*" >&2; exit 1; }

echo "== building seedex-serve =="
go build -o "$OUT/seedex-serve" ./cmd/seedex-serve

echo "== starting server on $ADDR (chaos 0.9, flight recorder armed) =="
# A 1s debounce plus a 0.5s watcher poll makes the automatic dump land
# promptly after the breaker trips.
"$OUT/seedex-serve" -addr "$ADDR" -chaos 0.9 -chaos-seed 7 \
  -trace-tail -trace-tail-budget 1us \
  -flight-dir "$OUT/flight" -flight-min-interval 1s -flight-poll 500ms \
  -max-batch 16 -flush 1ms \
  >"$OUT/serve.log" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died during startup:" >&2
    cat "$OUT/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

echo "== driving traffic until the breaker trips =="
BODY='{"jobs":[
  {"query":"ACGTACGTACGTACGTACGTACGTACGTACGT","target":"ACGTACGTACGTACGTACGTACGTACGTACGT","h0":20},
  {"query":"ACGTACGTACGTTCGTACGTACGAACGTACGT","target":"ACGTACGTACGTACGTACGTACGTACGTACGT","h0":20}
]}'
TRIPPED=0
for i in $(seq 1 200); do
  curl -sS -X POST "http://$ADDR/v1/extend" \
    -H 'Content-Type: application/json' -d "$BODY" >/dev/null || true
  if curl -fsS "http://$ADDR/metrics" | grep -q '"breaker_trips": *[1-9]'; then
    TRIPPED=1
    break
  fi
done
[ "$TRIPPED" = 1 ] || fail "breaker never tripped under chaos rate 0.9"

echo "== waiting for the automatic breaker-trip dump =="
AUTO=""
for i in $(seq 1 100); do
  AUTO="$(ls "$OUT"/flight/flight-*-breaker-trip.tar.gz 2>/dev/null | head -1 || true)"
  [ -n "$AUTO" ] && break
  sleep 0.1
done
[ -n "$AUTO" ] || fail "breaker trip produced no automatic flight tarball"
tar -tzf "$AUTO" >"$OUT/auto-manifest.txt"
for entry in meta.json metrics.json slo.json journeys.json goroutines.txt heap.pprof; do
  grep -qx "$entry" "$OUT/auto-manifest.txt" || fail "automatic dump missing $entry"
done
# The retained journeys in the dump carry the contained faults.
tar -xmzf "$AUTO" -C "$OUT" journeys.json
python3 - "$OUT/journeys.json" <<'EOF'
import json, sys
journeys = json.load(open(sys.argv[1]))
if not journeys:
    raise SystemExit("FAIL: breaker-trip dump retained no journeys")
if not any("fault" in (j.get("events") or []) for j in journeys):
    raise SystemExit("FAIL: no retained journey carries the fault event")
EOF

echo "== SIGQUIT dump (bypasses the debounce) =="
kill -QUIT "$SERVER_PID"
FORCED=""
for i in $(seq 1 50); do
  FORCED="$(ls "$OUT"/flight/flight-*-sigquit.tar.gz 2>/dev/null | head -1 || true)"
  [ -n "$FORCED" ] && break
  sleep 0.1
done
[ -n "$FORCED" ] || fail "SIGQUIT inside the debounce window produced no tarball"
curl -fsS "http://$ADDR/healthz" >/dev/null || fail "server not serving after dumps"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
trap - EXIT
echo "OK: flight-recorder smoke passed; artifacts in $OUT/"

#!/usr/bin/env bash
# Observability smoke test: start seedex-serve with tracing on, drive a
# little traffic, then assert the Prometheus exposition and both trace
# export formats are live and well-formed. Artifacts (metrics scrape,
# Chrome trace, NDJSON spans, slow ring) land in OUT (default
# obs-smoke/) for CI upload.
set -euo pipefail

OUT="${OUT:-obs-smoke}"
ADDR="${ADDR:-127.0.0.1:18844}"
DEBUG_ADDR="${DEBUG_ADDR:-127.0.0.1:18845}"
mkdir -p "$OUT"

echo "== building seedex-serve =="
go build -o "$OUT/seedex-serve" ./cmd/seedex-serve

echo "== starting server on $ADDR (tracing 1/1, pprof on $DEBUG_ADDR) =="
"$OUT/seedex-serve" -addr "$ADDR" -trace-sample 1 -trace-slow 16 \
  -debug-addr "$DEBUG_ADDR" -max-batch 16 -flush 1ms \
  >"$OUT/serve.log" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died during startup:" >&2
    cat "$OUT/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

echo "== driving traffic =="
BODY='{"jobs":[
  {"query":"ACGTACGTACGTACGTACGTACGTACGTACGT","target":"ACGTACGTACGTACGTACGTACGTACGTACGT","h0":20},
  {"query":"ACGTACGTACGTTCGTACGTACGAACGTACGT","target":"ACGTACGTACGTACGTACGTACGTACGTACGT","h0":20},
  {"query":"TTTTACGTACGTACGTACGTACGTACGTACGT","target":"ACGTACGTACGTACGTACGTACGTACGTACGT","h0":20}
]}'
for i in $(seq 1 20); do
  curl -fsS -X POST "http://$ADDR/v1/extend" \
    -H 'Content-Type: application/json' \
    -H "X-Request-Id: smoke-$i" \
    -d "$BODY" >/dev/null
done

echo "== scraping =="
curl -fsS "http://$ADDR/metrics?format=prometheus" >"$OUT/metrics.prom"
curl -fsS "http://$ADDR/metrics" >"$OUT/metrics.json"
curl -fsS "http://$ADDR/debug/traces" >"$OUT/traces-chrome.json"
curl -fsS "http://$ADDR/debug/traces?format=ndjson" >"$OUT/traces.ndjson"
curl -fsS "http://$ADDR/debug/traces/slow?format=ndjson" >"$OUT/traces-slow.ndjson"
curl -fsS "http://$DEBUG_ADDR/debug/pprof/" >"$OUT/pprof-index.html"

echo "== asserting =="
fail() { echo "FAIL: $*" >&2; exit 1; }

# Prometheus exposition carries the serving counters, histograms with
# quantiles, and the trace self-metrics.
for family in \
  seedex_requests_total seedex_jobs_completed_total \
  seedex_request_latency_seconds_bucket \
  seedex_request_latency_quantile_seconds \
  seedex_check_outcome_total seedex_trace_spans_total; do
  grep -q "^$family" "$OUT/metrics.prom" || fail "$family missing from Prometheus scrape"
done
grep -q '^# TYPE seedex_request_latency_seconds histogram' "$OUT/metrics.prom" \
  || fail "latency histogram TYPE line missing"

# Trace exports are valid JSON and cover the pipeline stages.
python3 -c "import json,sys; json.load(open('$OUT/traces-chrome.json'))" \
  || fail "Chrome trace export is not valid JSON"
python3 - "$OUT/traces.ndjson" <<'EOF'
import json, sys
kinds = set()
for line in open(sys.argv[1]):
    line = line.strip()
    if line:
        kinds.add(json.loads(line)["span"])
need = {"request", "queue_wait", "batch_flush", "kernel", "check"}
missing = need - kinds
if missing:
    raise SystemExit(f"FAIL: NDJSON trace missing spans: {sorted(missing)} (got {sorted(kinds)})")
EOF
[ -s "$OUT/traces-slow.ndjson" ] || fail "slow-trace ring is empty"
grep -q 'pprof' "$OUT/pprof-index.html" || fail "pprof index not served on debug address"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
trap - EXIT
echo "OK: observability smoke passed; artifacts in $OUT/"

#!/usr/bin/env bash
# Observability smoke test: start seedex-serve with head tracing, tail
# retention, the SLO engine and the flight recorder on, drive a little
# traffic, then assert the Prometheus exposition, both trace export
# formats, the journey/SLO endpoints and a SIGQUIT flight dump are live
# and well-formed. Artifacts (metrics scrape, Chrome trace, NDJSON
# spans, slow ring, SLO state, journeys, flight tarball) land in OUT
# (default obs-smoke/) for CI upload.
set -euo pipefail

OUT="${OUT:-obs-smoke}"
ADDR="${ADDR:-127.0.0.1:18844}"
DEBUG_ADDR="${DEBUG_ADDR:-127.0.0.1:18845}"
mkdir -p "$OUT"

echo "== building seedex-serve =="
VERSION="$(git describe --tags --always --dirty 2>/dev/null || echo smoke)"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
go build -ldflags "-X main.version=$VERSION -X main.commit=$COMMIT" \
  -o "$OUT/seedex-serve" ./cmd/seedex-serve

echo "== starting server on $ADDR (tracing 1/1 + tail retention, pprof on $DEBUG_ADDR) =="
# The 1µs tail budget makes every request breach it, so the smoke can
# assert tail retention without manufacturing failures.
"$OUT/seedex-serve" -addr "$ADDR" -trace-sample 1 -trace-slow 16 \
  -trace-tail -trace-tail-budget 1us -slo-latency 100ms \
  -flight-dir "$OUT/flight" \
  -debug-addr "$DEBUG_ADDR" -max-batch 16 -flush 1ms \
  >"$OUT/serve.log" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died during startup:" >&2
    cat "$OUT/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

echo "== driving traffic =="
BODY='{"jobs":[
  {"query":"ACGTACGTACGTACGTACGTACGTACGTACGT","target":"ACGTACGTACGTACGTACGTACGTACGTACGT","h0":20},
  {"query":"ACGTACGTACGTTCGTACGTACGAACGTACGT","target":"ACGTACGTACGTACGTACGTACGTACGTACGT","h0":20},
  {"query":"TTTTACGTACGTACGTACGTACGTACGTACGT","target":"ACGTACGTACGTACGTACGTACGTACGTACGT","h0":20}
]}'
for i in $(seq 1 20); do
  curl -fsS -X POST "http://$ADDR/v1/extend" \
    -H 'Content-Type: application/json' \
    -H "X-Request-Id: smoke-$i" \
    -d "$BODY" >/dev/null
done

echo "== scraping =="
curl -fsS "http://$ADDR/metrics?format=prometheus" >"$OUT/metrics.prom"
curl -fsS "http://$ADDR/metrics" >"$OUT/metrics.json"
curl -fsS "http://$ADDR/debug/traces" >"$OUT/traces-chrome.json"
curl -fsS "http://$ADDR/debug/traces?format=ndjson" >"$OUT/traces.ndjson"
curl -fsS "http://$ADDR/debug/traces/slow?format=ndjson" >"$OUT/traces-slow.ndjson"
curl -fsS "http://$ADDR/debug/journeys" >"$OUT/journeys.json"
curl -fsS "http://$ADDR/debug/slo" >"$OUT/slo.json"
curl -fsS "http://$DEBUG_ADDR/debug/pprof/" >"$OUT/pprof-index.html"

echo "== asserting =="
fail() { echo "FAIL: $*" >&2; exit 1; }

# Prometheus exposition carries the serving counters, histograms with
# quantiles, and the trace self-metrics.
for family in \
  seedex_requests_total seedex_jobs_completed_total \
  seedex_request_latency_seconds_bucket \
  seedex_request_latency_quantile_seconds \
  seedex_check_outcome_total seedex_trace_spans_total \
  seedex_trace_tail_retained seedex_slo_target seedex_slo_burn_rate \
  seedex_build_info seedex_process_uptime_seconds; do
  grep -q "^$family" "$OUT/metrics.prom" || fail "$family missing from Prometheus scrape"
done
grep -q "^seedex_build_info{.*version=\"$VERSION\"" "$OUT/metrics.prom" \
  || fail "seedex_build_info not carrying the ldflags-stamped version $VERSION"
grep -q '^# TYPE seedex_request_latency_seconds histogram' "$OUT/metrics.prom" \
  || fail "latency histogram TYPE line missing"

# Trace exports are valid JSON and cover the pipeline stages.
python3 -c "import json,sys; json.load(open('$OUT/traces-chrome.json'))" \
  || fail "Chrome trace export is not valid JSON"
python3 - "$OUT/traces.ndjson" <<'EOF'
import json, sys
kinds = set()
for line in open(sys.argv[1]):
    line = line.strip()
    if line:
        kinds.add(json.loads(line)["span"])
need = {"request", "queue_wait", "batch_flush", "kernel", "check"}
missing = need - kinds
if missing:
    raise SystemExit(f"FAIL: NDJSON trace missing spans: {sorted(missing)} (got {sorted(kinds)})")
EOF
[ -s "$OUT/traces-slow.ndjson" ] || fail "slow-trace ring is empty"
grep -q 'pprof' "$OUT/pprof-index.html" || fail "pprof index not served on debug address"

# Tail retention kept full journeys (the 1µs budget guarantees every
# request breached it) and the SLO engine reports all three objectives.
python3 - "$OUT/journeys.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
if doc["retained"] < 1:
    raise SystemExit("FAIL: tail sampling retained no journeys")
j = doc["journeys"][0]
for field in ("trace", "verdict", "spans"):
    if not j.get(field):
        raise SystemExit(f"FAIL: retained journey missing {field}: {j}")
EOF
python3 - "$OUT/slo.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
names = {o["name"] for o in doc["objectives"]}
need = {"extend-latency-p99", "availability", "rescue-rate"}
if not need <= names:
    raise SystemExit(f"FAIL: /debug/slo objectives {sorted(names)}, want {sorted(need)}")
windows = {w["window"] for o in doc["objectives"] for w in o["windows"]}
if not {"5m", "1h", "30m", "6h"} <= windows:
    raise SystemExit(f"FAIL: /debug/slo burn windows incomplete: {sorted(windows)}")
EOF

echo "== SIGQUIT flight dump =="
kill -QUIT "$SERVER_PID"
FLIGHT=""
for i in $(seq 1 50); do
  FLIGHT="$(ls "$OUT"/flight/flight-*-sigquit.tar.gz 2>/dev/null | head -1 || true)"
  [ -n "$FLIGHT" ] && break
  sleep 0.1
done
[ -n "$FLIGHT" ] || fail "SIGQUIT produced no flight tarball in $OUT/flight/"
tar -tzf "$FLIGHT" >"$OUT/flight-manifest.txt"
for entry in meta.json metrics.json slo.json journeys.json traces.ndjson goroutines.txt heap.pprof; do
  grep -qx "$entry" "$OUT/flight-manifest.txt" || fail "flight tarball missing $entry"
done
# The dump is an observer: the server must still be serving afterwards.
curl -fsS "http://$ADDR/healthz" >/dev/null || fail "server not serving after SIGQUIT dump"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
trap - EXIT
echo "OK: observability smoke passed; artifacts in $OUT/"

module seedex

go 1.22

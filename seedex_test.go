package seedex_test

import (
	"math/rand"
	"testing"

	"seedex"
)

// TestPublicAPIQuickstart exercises the documented entry points end to
// end: speculative extension with bit-equivalence, thresholds, and the
// full aligner.
func TestPublicAPIQuickstart(t *testing.T) {
	sc := seedex.DefaultScoring()
	q := seedex.EncodeBases("ACGTACGTACGTACGTACGTACGTACGT")
	target := seedex.EncodeBases("ACGTACGTACGTTCGTACGTACGTACGTAC")

	ext := seedex.NewExtender(5)
	got := ext.Extend(q, target, 30)
	want := seedex.Extend(q, target, 30, sc)
	// Cells/Rows are work counters, not part of the alignment result.
	if got.Local != want.Local || got.LocalT != want.LocalT || got.LocalQ != want.LocalQ ||
		got.Global != want.Global || got.GlobalT != want.GlobalT {
		t.Fatalf("speculative %+v != full %+v", got, want)
	}
	if ext.Stats.Total.Load() != 1 {
		t.Fatalf("stats not recorded: %+v", ext.Stats)
	}

	th := seedex.ComputeThresholds(len(q), 30, 5, sc)
	if th.S2 <= th.S1 {
		t.Fatalf("thresholds inverted: %+v", th)
	}

	res, rep := seedex.Check(q, target, 30, seedex.CheckConfig{
		Band: 5, Scoring: sc, Mode: seedex.ModeStrict,
	})
	if rep.Pass && (res.Local != want.Local || res.Global != want.Global) {
		t.Fatalf("passing check with wrong result: %+v vs %+v", res, want)
	}
}

func TestPublicAPIAligner(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	refStr := make([]byte, 20_000)
	letters := "ACGT"
	for i := range refStr {
		refStr[i] = letters[rng.Intn(4)]
	}
	ref := seedex.EncodeBases(string(refStr))

	a, err := seedex.NewAligner("chr1", ref, seedex.NewExtender(20))
	if err != nil {
		t.Fatal(err)
	}
	pos := 5000
	read := append([]byte(nil), ref[pos:pos+80]...)
	read[40] = (read[40] + 1) % 4

	al := a.AlignRead(read)
	if !al.Mapped || al.Pos != pos {
		t.Fatalf("alignment %+v, want pos %d", al, pos)
	}

	recs, stats := a.Run([]seedex.Read{{Name: "r1", Seq: read}}, 1)
	if len(recs) != 1 || stats.Mapped != 1 {
		t.Fatalf("pipeline: %d recs, %+v", len(recs), stats)
	}
}

func TestBaseCodecHelpers(t *testing.T) {
	if seedex.DecodeBases(seedex.EncodeBases("ACGTN")) != "ACGTN" {
		t.Fatal("codec round trip failed")
	}
	rc := seedex.RevComp(seedex.EncodeBases("AACG"))
	if seedex.DecodeBases(rc) != "CGTT" {
		t.Fatalf("revcomp: %s", seedex.DecodeBases(rc))
	}
}

func TestExtendBandedFacade(t *testing.T) {
	q := seedex.EncodeBases("ACGTACGTAC")
	sc := seedex.DefaultScoring()
	wide := seedex.ExtendBanded(q, q, 20, sc, 10)
	full := seedex.Extend(q, q, 20, sc)
	if wide.Local != full.Local || wide.Global != full.Global {
		t.Fatalf("wide band should equal full: %+v vs %+v", wide, full)
	}
}

// TestPublicAPIGlobalAndLongRead covers the global-alignment and
// long-read entry points.
func TestPublicAPIGlobalAndLongRead(t *testing.T) {
	sc := seedex.DefaultScoring()
	q := seedex.EncodeBases("ACGTACGTACGTACGTACGTACGT")
	tgt := seedex.EncodeBases("ACGTACGTACTTACGTACGTACGT")

	full := seedex.Global(q, tgt, 10, sc)
	if !full.Feasible {
		t.Fatal("global infeasible")
	}
	res, proven := seedex.CheckedGlobal(q, tgt, 10, 4, sc)
	if res.Score != full.Score {
		t.Fatalf("checked global %d != full %d (proven=%v)", res.Score, full.Score, proven)
	}
	cig, score := seedex.GlobalAlign(q, tgt, sc)
	if err := cig.Validate(len(q), len(tgt)); err != nil {
		t.Fatal(err)
	}
	if score != full.Score-10 { // GlobalAlign is h0-free
		t.Fatalf("linear-space score %d, want %d", score, full.Score-10)
	}

	rng := rand.New(rand.NewSource(5))
	refStr := make([]byte, 60_000)
	for i := range refStr {
		refStr[i] = "ACGT"[rng.Intn(4)]
	}
	ref := seedex.EncodeBases(string(refStr))
	lr := seedex.NewLongReadAligner(ref)
	pos := 20_000
	read := append([]byte(nil), ref[pos:pos+1500]...)
	r := lr.Align(read)
	if !r.Mapped || r.Pos != pos || r.Rev {
		t.Fatalf("long read: %+v, want pos %d", r, pos)
	}
}

// TestPublicAPIMultiContigAndPairs covers the multi-contig and paired
// entry points.
func TestPublicAPIMultiContigAndPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mk := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(4))
		}
		return s
	}
	c1, c2 := mk(20_000), mk(15_000)
	a, err := seedex.NewMultiAligner([]seedex.Contig{{Name: "chr1", Seq: c1}, {Name: "chr2", Seq: c2}}, seedex.NewExtender(20))
	if err != nil {
		t.Fatal(err)
	}
	read := append([]byte(nil), c2[7000:7100]...)
	al := a.AlignRead(read)
	if !al.Mapped || al.RName != "chr2" || al.Pos != 7000 {
		t.Fatalf("multi-contig alignment: %+v", al)
	}

	frag := c1[3000:3350]
	p := seedex.ReadPair{
		Name: "p1",
		Seq1: append([]byte(nil), frag[:101]...),
		Seq2: seedex.RevComp(frag[len(frag)-101:]),
	}
	a1, a2, proper := a.AlignPair(p, seedex.InsertStats{Mean: 350, Std: 50})
	if !proper || a1.Pos != 3000 || a2.RName != "chr1" {
		t.Fatalf("pair: %+v / %+v proper=%v", a1, a2, proper)
	}
}

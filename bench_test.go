// Benchmarks regenerating the paper's evaluation artifacts (one per table
// and figure; DESIGN.md maps each to its experiment). Run with:
//
//	go test -bench=. -benchmem
//
// The bench harness cmd/seedex-bench prints the corresponding rows and
// series; these testing.B entries measure the kernels and pipelines that
// produce them.
package seedex_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"seedex/internal/align"
	"seedex/internal/bench"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/dtw"
	"seedex/internal/editmachine"
	"seedex/internal/ert"
	"seedex/internal/fmindex"
	"seedex/internal/fpga"
	"seedex/internal/genome"
	"seedex/internal/hw"
	"seedex/internal/lcs"
	"seedex/internal/readsim"
	"seedex/internal/systolic"
)

var (
	wlOnce sync.Once
	wl     *bench.Workload
	wlErr  error
)

func workload(b *testing.B) *bench.Workload {
	b.Helper()
	wlOnce.Do(func() {
		wl, wlErr = bench.BuildWorkload(120_000, 500, 1)
	})
	if wlErr != nil {
		b.Fatal(wlErr)
	}
	return wl
}

var (
	wl150Once sync.Once
	wl150     *bench.Workload
	wl150Err  error
)

func workload150(b *testing.B) *bench.Workload {
	b.Helper()
	wl150Once.Do(func() {
		wl150, wl150Err = bench.Workload150(120_000, 400, 1)
	})
	if wl150Err != nil {
		b.Fatal(wl150Err)
	}
	return wl150
}

// BenchmarkExtend measures the extension hot path on the standard 150 bp
// workload: the reference ("seed") kernels versus the workspace kernels
// (reusable rows + query profile) and the full check workflow. Run with
// -benchmem: the workspace paths must report 0 allocs/op.
func BenchmarkExtend(b *testing.B) {
	w := workload150(b)
	probs := w.Problems
	sc := w.Scoring
	const band = 21
	measure := func(b *testing.B, fn func(p bench.Problem) int64) {
		b.Helper()
		var cells int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cells += fn(probs[i%len(probs)])
		}
		b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/s")
	}
	b.Run("full/seed-kernel", func(b *testing.B) {
		measure(b, func(p bench.Problem) int64 {
			return align.ExtendRef(p.Q, p.T, p.H0, sc).Cells
		})
	})
	b.Run("full/workspace", func(b *testing.B) {
		ws := align.NewWorkspace()
		measure(b, func(p bench.Problem) int64 {
			return align.ExtendWS(ws, p.Q, p.T, p.H0, sc).Cells
		})
	})
	b.Run("banded/seed-kernel", func(b *testing.B) {
		measure(b, func(p bench.Problem) int64 {
			r, _ := align.ExtendBandedRef(p.Q, p.T, p.H0, sc, band)
			return r.Cells
		})
	})
	b.Run("banded/workspace", func(b *testing.B) {
		ws := align.NewWorkspace()
		measure(b, func(p bench.Problem) int64 {
			r, _ := align.ExtendBandedWS(ws, p.Q, p.T, p.H0, sc, band)
			return r.Cells
		})
	})
	b.Run("checked/workspace", func(b *testing.B) {
		chk := core.NewChecker(core.Config{Band: band, Scoring: sc, Kind: core.SemiGlobal, Mode: core.ModeStrict})
		measure(b, func(p bench.Problem) int64 {
			r, _ := chk.Check(p.Q, p.T, p.H0)
			return r.Cells
		})
	})
	// Packed inter-sequence (SWAR) batch kernels: b.N still counts
	// extensions, fed to the kernels in accelerator-batch-sized chunks.
	measureBatch := func(b *testing.B, fn func(jobs []align.Job, res []align.ExtendResult)) {
		b.Helper()
		const chunk = 256
		jobs := make([]align.Job, 0, chunk)
		res := make([]align.ExtendResult, chunk)
		var cells int64
		b.ResetTimer()
		for done := 0; done < b.N; {
			jobs = jobs[:0]
			for len(jobs) < chunk && done+len(jobs) < b.N {
				p := probs[(done+len(jobs))%len(probs)]
				jobs = append(jobs, align.Job{Q: p.Q, T: p.T, H0: p.H0})
			}
			fn(jobs, res[:len(jobs)])
			for i := range jobs {
				cells += res[i].Cells
			}
			done += len(jobs)
		}
		b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/s")
	}
	b.Run("banded/batch", func(b *testing.B) {
		ws := align.NewWorkspace()
		measureBatch(b, func(jobs []align.Job, res []align.ExtendResult) {
			align.ExtendBandedBatchWS(ws, jobs, sc, band, res, nil)
		})
	})
	b.Run("full/batch", func(b *testing.B) {
		ws := align.NewWorkspace()
		measureBatch(b, func(jobs []align.Job, res []align.ExtendResult) {
			align.ExtendBatchFullWS(ws, jobs, sc, res)
		})
	})
	b.Run("checked/batch", func(b *testing.B) {
		chk := core.NewChecker(core.Config{Band: band, Scoring: sc, Kind: core.SemiGlobal, Mode: core.ModeStrict})
		measureBatch(b, func(jobs []align.Job, res []align.ExtendResult) {
			chk.ExtendJobs(jobs, res)
		})
	})
}

// BenchmarkFig02BandDistribution measures the used-band computation that
// underlies Figure 2 (binary search for the minimal sufficient band).
func BenchmarkFig02BandDistribution(b *testing.B) {
	w := workload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := w.Problems[i%len(w.Problems)]
		align.UsedBand(p.Q, p.T, p.H0, w.Scoring)
	}
}

// BenchmarkFig03BandedKernel measures the software banded kernel at the
// band sizes of Figure 3.
func BenchmarkFig03BandedKernel(b *testing.B) {
	w := workload(b)
	for _, pes := range []int{5, 21, 41, 101} {
		sided := (pes - 1) / 2
		b.Run(fmt.Sprintf("band=%d", pes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := w.Problems[i%len(w.Problems)]
				align.ExtendBanded(p.Q, p.T, p.H0, w.Scoring, sided)
			}
		})
	}
}

// BenchmarkFig04AreaModel exercises the LUT model sweep of Figure 4.
func BenchmarkFig04AreaModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for pes := 5; pes <= 101; pes += 4 {
			hw.BSWCoreLUT(pes)
		}
	}
}

// BenchmarkFig13CheckedExtension measures one SeedEx extension including
// checks and (rare) rerun — the per-extension cost behind Figure 13's
// zero-difference guarantee.
func BenchmarkFig13CheckedExtension(b *testing.B) {
	w := workload(b)
	se := core.New(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := w.Problems[i%len(w.Problems)]
		se.Extend(p.Q, p.T, p.H0)
	}
}

// BenchmarkFig14Checks measures the optimality-check workflow alone
// (threshold + E-score + edit machine), per Figure 14's sweep.
func BenchmarkFig14Checks(b *testing.B) {
	w := workload(b)
	for _, mode := range []core.Mode{core.ModePaper, core.ModeStrict} {
		name := "paper"
		if mode == core.ModeStrict {
			name = "strict"
		}
		cfg := core.Config{Band: 20, Scoring: w.Scoring, Kind: core.SemiGlobal, Mode: mode}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := w.Problems[i%len(w.Problems)]
				core.Check(p.Q, p.T, p.H0, cfg)
			}
		})
	}
}

// BenchmarkFig16aAreaComparison evaluates the core-area comparison model.
func BenchmarkFig16aAreaComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = 3 * hw.FullBandCoreLUT(101) / hw.SeedExCoreLUT(41, 3)
	}
}

// BenchmarkFig16bEditMachine measures the edit-machine sweeps of Figure
// 16b: plain relaxed DP versus the 3-bit delta-encoded datapath.
func BenchmarkFig16bEditMachine(b *testing.B) {
	w := workload(b)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := w.Problems[i%len(w.Problems)]
			editmachine.SweepCorner(p.Q, p.T, 20, 50, editmachine.CanonicalRelaxed)
		}
	})
	b.Run("delta3bit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := w.Problems[i%len(w.Problems)]
			if _, err := editmachine.DeltaSweep(p.Q, p.T, 20, 50, editmachine.CanonicalRelaxed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig16cThroughput runs the FPGA system simulation behind the
// iso-area throughput comparison of Figure 16c.
func BenchmarkFig16cThroughput(b *testing.B) {
	w := workload(b)
	jobs := make([]fpga.Job, len(w.Problems))
	for i, p := range w.Problems {
		jobs[i] = fpga.Job{QLen: len(p.Q), TLen: len(p.T), NeedsEdit: i%3 == 0, Rerun: i%50 == 0}
	}
	for _, cfg := range []struct {
		name string
		c    fpga.Config
	}{
		{"seedex36", fpga.DefaultSeedEx()},
		{"fullband9", fpga.FullBandBaseline()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fpga.Simulate(cfg.c, jobs)
			}
		})
	}
}

// BenchmarkFig17Pipeline measures the end-to-end aligner under the
// extension engines of Figure 17.
func BenchmarkFig17Pipeline(b *testing.B) {
	w := workload(b)
	reads := w.PipelineReads()[:200]
	for _, eng := range []struct {
		name string
		ext  align.Extender
	}{
		{"fullband", core.FullBand{Scoring: w.Scoring}},
		{"seedex-w5", core.New(2)},
		{"seedex-w41", core.New(20)},
	} {
		b.Run(eng.name, func(b *testing.B) {
			a, err := bwamem.New("chrSim", w.Ref, eng.ext)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Run(reads, 0)
			}
		})
	}
}

// BenchmarkFig18KernelThroughput evaluates the ASIC kernel-throughput
// model of Figure 18a.
func BenchmarkFig18KernelThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hw.SeedExASICKernelThroughput(41, 101, 121)
	}
}

// BenchmarkTable2Seeding measures the two seeding substrates of the
// combined image (FM-index SMEMs vs the ERT model).
func BenchmarkTable2Seeding(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ref := genome.Simulate(genome.SimConfig{Length: 200_000}, rng)
	reads := readsim.Simulate(ref, readsim.DefaultConfig(200), rng)
	san := append([]byte(nil), ref...)
	fmindex.Sanitize(san)
	fmIx, err := fmindex.New(san)
	if err != nil {
		b.Fatal(err)
	}
	ertIx := ert.Build(san, ert.K)
	b.Run("fmindex-smem", func(b *testing.B) {
		cfg := fmindex.DefaultSMEMConfig()
		for i := 0; i < b.N; i++ {
			fmIx.SMEMs(reads[i%len(reads)].Seq, cfg)
		}
	})
	b.Run("ert", func(b *testing.B) {
		cfg := ert.DefaultConfig()
		for i := 0; i < b.N; i++ {
			ertIx.Seeds(reads[i%len(reads)].Seq, cfg)
		}
	})
}

// BenchmarkTable3SystolicCore measures the cycle-level systolic simulator
// (the datapath whose constants feed the ASIC model of Table III).
func BenchmarkTable3SystolicCore(b *testing.B) {
	w := workload(b)
	corePE := &systolic.Core{W: 20, Scoring: w.Scoring, SpeculativeRowCut: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := w.Problems[i%len(w.Problems)]
		corePE.Extend(p.Q, p.T, p.H0)
	}
}

// BenchmarkSMEMSeeding compares the three seeding substrates: the
// suffix-array SMEM oracle, Li's bidirectional FMD algorithm (BWA's
// procedure), and the ERT accelerator model.
func BenchmarkSMEMSeeding(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ref := genome.Simulate(genome.SimConfig{Length: 200_000}, rng)
	reads := readsim.Simulate(ref, readsim.DefaultConfig(200), rng)
	san := append([]byte(nil), ref...)
	fmindex.Sanitize(san)
	saIx, err := fmindex.New(san)
	if err != nil {
		b.Fatal(err)
	}
	fmdIx, err := fmindex.NewFMD(append([]byte(nil), san...))
	if err != nil {
		b.Fatal(err)
	}
	cfg := fmindex.DefaultSMEMConfig()
	b.Run("suffix-array", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			saIx.SMEMs(reads[i%len(reads)].Seq, cfg)
		}
	})
	b.Run("fmd-bidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fmdIx.SMEMsBi(reads[i%len(reads)].Seq, cfg)
		}
	})
}

// BenchmarkCheckedGlobalFill measures the §VII-D long-read gap-filling
// kernel: checked banded global alignment vs the full-width kernel.
func BenchmarkCheckedGlobalFill(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	sc := align.DefaultScoring()
	type pair struct{ q, t []byte }
	pairs := make([]pair, 64)
	for i := range pairs {
		t := make([]byte, 80+rng.Intn(80))
		for k := range t {
			t[k] = byte(rng.Intn(4))
		}
		q := append([]byte(nil), t...)
		for k := 0; k < len(q)/15; k++ {
			q[rng.Intn(len(q))] = byte(rng.Intn(4))
		}
		pairs[i] = pair{q, t}
	}
	cfg := core.Config{Band: 8, Scoring: sc, Kind: core.Global}
	b.Run("checked-w8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			core.CheckedGlobal(p.q, p.t, 1<<14, cfg)
		}
	})
	b.Run("fullwidth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			align.Global(p.q, p.t, 1<<14, sc)
		}
	})
}

// BenchmarkLinearSpaceAlign measures the Myers-Miller linear-space
// global traceback against the quadratic base DP on mid-size inputs.
func BenchmarkLinearSpaceAlign(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	sc := align.DefaultScoring()
	q := make([]byte, 1500)
	for i := range q {
		q[i] = byte(rng.Intn(4))
	}
	t := append([]byte(nil), q...)
	for k := 0; k < 80; k++ {
		t[rng.Intn(len(t))] = byte(rng.Intn(4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.GlobalAlign(q, t, sc)
	}
}

// BenchmarkDTWChecked measures the §VII-D DTW transplant: checked banded
// DTW vs full DTW.
func BenchmarkDTWChecked(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, 400)
	y := make([]float64, 400)
	v := 0.0
	for i := range x {
		v += rng.NormFloat64()
		x[i] = v
		y[i] = v + rng.NormFloat64()*0.01
	}
	b.Run("checked-w8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dtw.Checked(x, y, 8)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dtw.Full(x, y)
		}
	})
}

// BenchmarkLCSChecked measures the §VII-D LCS transplant.
func BenchmarkLCSChecked(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a := make([]byte, 500)
	for i := range a {
		a[i] = byte(rng.Intn(4))
	}
	bb := append([]byte(nil), a...)
	for k := 0; k < 10; k++ {
		bb[rng.Intn(len(bb))] = byte(rng.Intn(4))
	}
	b.Run("checked-w6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lcs.Checked(a, bb, 6)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lcs.Full(a, bb)
		}
	})
}

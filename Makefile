GO ?= go

# Build identity, stamped into the binaries at link time and surfaced as
# the seedex_build_info Prometheus gauge, the /metrics "build" section,
# every structured log line, and each flight dump's meta.json.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
LDFLAGS := -X main.version=$(VERSION) -X main.commit=$(COMMIT)

.PHONY: check vet build test race chaos obs-smoke flight-smoke index-smoke bench bench-extend bench-regression serve-bench bin

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Stamped binaries under bin/: the daemons report $(VERSION)/$(COMMIT)
# instead of dev/unknown.
bin:
	$(GO) build -ldflags '$(LDFLAGS)' -o bin/ ./cmd/...

test:
	$(GO) test ./...

# The concurrent subsystems get a dedicated race pass: the FPGA driver,
# the aligner pipeline (including mixed filter-on/off mapping), the
# pre-alignment filter tier, the shared (atomic) check statistics, the
# packed kernels' telemetry counters, the generation-swapping reference
# index store, and the micro-batching alignment service (including the
# shape-binned collector) with its daemon.
race:
	$(GO) test -race ./internal/align/... ./internal/faults/... ./internal/driver/... ./internal/bwamem/... ./internal/prefilter/... ./internal/core/... ./internal/refstore/... ./internal/server/... ./cmd/seedex-serve/...

# Fault-injection equivalence drill: the chaos and integrity tests under
# the race detector. Pin the fault draws with CHAOS_SEED (default: the
# tests' built-in seed matrix) and capture the end-of-run fault counters
# with CHAOS_SNAPSHOT=path.json.
chaos:
	SEEDEX_CHAOS_SEED=$(CHAOS_SEED) SEEDEX_CHAOS_SNAPSHOT=$(CHAOS_SNAPSHOT) \
		$(GO) test -race ./internal/faults/...
	SEEDEX_CHAOS_SEED=$(CHAOS_SEED) SEEDEX_CHAOS_SNAPSHOT=$(CHAOS_SNAPSHOT) \
		$(GO) test -race -run 'Chaos|Integrity|Corrupted|Adversarial|Wire|Sanity|Validate|Corruption|Rollback' \
		./internal/driver/... ./internal/server/... ./internal/core/... ./internal/bwamem/... ./internal/refstore/... ./internal/fmindex/...

# Observability smoke: boot seedex-serve with tracing and pprof enabled,
# drive traffic, then assert the Prometheus scrape and both trace export
# formats are well-formed. Artifacts land in obs-smoke/ (override OUT).
obs-smoke:
	bash scripts/obs_smoke.sh

# Flight-recorder smoke: boot seedex-serve under chaos fault injection
# with the recorder armed, trip the breaker, then assert the automatic
# breaker-trip dump (with fault-carrying journeys) and a SIGQUIT dump
# both land. Artifacts land in flight-smoke/ (override OUT).
flight-smoke:
	bash scripts/flight_smoke.sh

# Index lifecycle smoke: build a container with seedex-index, serve it
# through seedex-serve -index-store, hot-reload under live mapping
# traffic, then prove a corrupt publish rolls back to the serving
# generation. Artifacts land in index-smoke/ (override OUT).
index-smoke:
	bash scripts/index_smoke.sh

# Full benchmark pass: every testing.B entry, then a refresh of the
# extension perf trajectory (BENCH_extend.json).
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/seedex-bench -fig extend

# Perf trajectory for the extension hot path alone (writes
# BENCH_extend.json). Add -cpuprofile/-memprofile through EXTENDFLAGS to
# profile the kernels, e.g. EXTENDFLAGS='-cpuprofile cpu.out'.
bench-extend:
	$(GO) run ./cmd/seedex-bench -fig extend $(EXTENDFLAGS)

# Bench-regression smoke (the CI advisory check, runnable locally): a
# short measurement of the packed banded batch kernel on the 100 bp
# workload, compared against the committed BENCH_extend.json history.
# Exits non-zero when banded/batch cells/s drops >10% below the latest
# committed same-read-length run. Writes the smoke run to a scratch file
# so the committed trajectory stays untouched.
bench-regression:
	$(GO) run ./cmd/seedex-bench -fig extend -reads 600 -extend-rounds 2 \
		-extend-readlen 100 -extend-json bench-regression-smoke.json \
		-extend-pr smoke -extend-baseline BENCH_extend.json -extend-tolerance 0.10

# Alignment-service load test: micro-batched vs unbatched throughput over
# the 150 bp workload (writes BENCH_serve.json). Override knobs through
# SERVEFLAGS, e.g. SERVEFLAGS='-serve-dur 500ms -serve-conc 8,32'.
serve-bench:
	$(GO) run ./cmd/seedex-bench -fig serve $(SERVEFLAGS)

GO ?= go

.PHONY: check vet build test race bench bench-extend

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent subsystems get a dedicated race pass: the FPGA driver,
# the aligner pipeline and the shared (atomic) check statistics.
race:
	$(GO) test -race ./internal/driver/... ./internal/bwamem/... ./internal/core/...

# Full benchmark pass: every testing.B entry, then a refresh of the
# extension perf trajectory (BENCH_extend.json).
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/seedex-bench -fig extend

# Perf trajectory for the extension hot path alone (writes
# BENCH_extend.json). Add -cpuprofile/-memprofile through EXTENDFLAGS to
# profile the kernels, e.g. EXTENDFLAGS='-cpuprofile cpu.out'.
bench-extend:
	$(GO) run ./cmd/seedex-bench -fig extend $(EXTENDFLAGS)

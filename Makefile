GO ?= go

.PHONY: check vet build test race bench bench-extend

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent subsystems get a dedicated race pass: the FPGA driver,
# the aligner pipeline and the shared (atomic) check statistics.
race:
	$(GO) test -race ./internal/driver/... ./internal/bwamem/... ./internal/core/...

bench:
	$(GO) test -bench=. -benchmem .

# Perf trajectory for the extension hot path (writes BENCH_extend.json).
bench-extend:
	$(GO) run ./cmd/seedex-bench -fig extend

package faults

import (
	"math"
	"sync/atomic"
)

// Index-lifecycle fault classes. Where Injector models an untrusted
// accelerator (corruption in the DMA transport), IndexInjector models an
// untrusted filesystem under the reference index store: files truncate
// mid-write, bits rot, headers get clobbered by concurrent writers, and
// the file a reload was pointed at vanishes before the open. Every draw
// is a pure hash of (seed, attempt, class), so a chaos reload storm
// replays bit-identically from its seed.

// IndexClass identifies one injectable index-file fault class.
type IndexClass int

const (
	// IndexTruncate cuts the index file short (a torn write that dodged
	// atomic publication, or a filesystem that lost the tail).
	IndexTruncate IndexClass = iota
	// IndexBitFlip flips one bit somewhere in the file body.
	IndexBitFlip
	// IndexHeaderMismatch clobbers a byte inside the header region, so
	// magic/version/section-length validation must catch it.
	IndexHeaderMismatch
	// IndexUnlink makes the file vanish between the reload trigger and
	// the open.
	IndexUnlink

	numIndexClasses
)

// String names the class for counters and logs.
func (c IndexClass) String() string {
	switch c {
	case IndexTruncate:
		return "truncate"
	case IndexBitFlip:
		return "bit-flip"
	case IndexHeaderMismatch:
		return "header-mismatch"
	case IndexUnlink:
		return "unlink"
	}
	return "unknown"
}

// IndexConfig sets per-class rates for reload-time index corruption.
// Each rate is the per-reload-attempt probability of that class firing;
// at most one class applies per attempt (drawn in declaration order).
type IndexConfig struct {
	// Seed keys every decision; the same seed replays the same chaos.
	Seed int64
	// Per-attempt rates in [0, 1].
	Truncate float64
	BitFlip  float64
	Header   float64
	Unlink   float64
}

// UniformIndex enables every index fault class at the same rate — the
// standard preset behind the reload chaos drills.
func UniformIndex(seed int64, rate float64) IndexConfig {
	return IndexConfig{Seed: seed, Truncate: rate, BitFlip: rate, Header: rate, Unlink: rate}
}

// IndexPlan is the fault drawn for one reload attempt. The zero plan
// injects nothing. Frac positions the damage within the file as a
// fraction of its length, so one plan applies to any file size.
type IndexPlan struct {
	Class IndexClass
	Hit   bool
	// Frac in [0, 1): truncation point, flipped-bit position, or the
	// header byte offset scale, depending on Class.
	Frac float64
	// Bit selects the bit within the damaged byte for IndexBitFlip.
	Bit uint
}

// Empty reports whether the plan injects nothing.
func (p IndexPlan) Empty() bool { return !p.Hit }

// IndexInjector draws deterministic index-file fault decisions. Rates
// are atomics so drills can silence the chaos while the store is live.
type IndexInjector struct {
	seed     int64
	rates    [numIndexClasses]atomic.Uint64 // float64 bits
	injected [numIndexClasses]atomic.Int64
}

// NewIndexInjector builds an injector for cfg. A zero cfg yields a
// valid, permanently-silent injector.
func NewIndexInjector(cfg IndexConfig) *IndexInjector {
	in := &IndexInjector{seed: cfg.Seed}
	in.SetRate(IndexTruncate, cfg.Truncate)
	in.SetRate(IndexBitFlip, cfg.BitFlip)
	in.SetRate(IndexHeaderMismatch, cfg.Header)
	in.SetRate(IndexUnlink, cfg.Unlink)
	return in
}

// SetRate updates one class's rate (clamped to [0, 1]) while live.
func (in *IndexInjector) SetRate(c IndexClass, rate float64) {
	if c < 0 || c >= numIndexClasses {
		return
	}
	if rate < 0 {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	in.rates[c].Store(math.Float64bits(rate))
}

// Rate reads one class's current rate.
func (in *IndexInjector) Rate(c IndexClass) float64 {
	if c < 0 || c >= numIndexClasses {
		return 0
	}
	return math.Float64frombits(in.rates[c].Load())
}

// Enabled reports whether any class currently has a non-zero rate.
func (in *IndexInjector) Enabled() bool {
	if in == nil {
		return false
	}
	for c := IndexClass(0); c < numIndexClasses; c++ {
		if in.Rate(c) > 0 {
			return true
		}
	}
	return false
}

// ReloadPlan draws the fault for one reload attempt: the first class
// whose Bernoulli draw hits wins (declaration order), so per-class
// rates stay independent of each other's outcomes only through the
// ordering — replay needs nothing beyond (seed, attempt).
func (in *IndexInjector) ReloadPlan(attempt int64) IndexPlan {
	if in == nil || !in.Enabled() {
		return IndexPlan{}
	}
	for c := IndexClass(0); c < numIndexClasses; c++ {
		rate := in.Rate(c)
		if rate <= 0 {
			continue
		}
		h := in.draw(c, uint64(attempt), 0)
		if float64(h>>11)/(1<<53) >= rate {
			continue
		}
		in.injected[c].Add(1)
		pos := in.draw(c, uint64(attempt), 1)
		return IndexPlan{
			Class: c,
			Hit:   true,
			Frac:  float64(pos>>11) / (1 << 53),
			Bit:   uint(pos % 8),
		}
	}
	return IndexPlan{}
}

// draw hashes the decision tuple into 64 uniform bits, mirroring the
// device injector's construction (distinct domain constant).
func (in *IndexInjector) draw(c IndexClass, attempt, salt uint64) uint64 {
	h := splitmix64(uint64(in.seed) ^ 0x1dec5_1dec5_1dec5)
	h = splitmix64(h ^ uint64(c)<<3)
	h = splitmix64(h ^ attempt<<17)
	h = splitmix64(h ^ salt<<51)
	return h
}

// IndexCounters snapshots the injected index-fault counts per class.
type IndexCounters struct {
	Truncate int64 `json:"truncate"`
	BitFlip  int64 `json:"bit_flip"`
	Header   int64 `json:"header_mismatch"`
	Unlink   int64 `json:"unlink"`
}

// Total sums the per-class counts.
func (c IndexCounters) Total() int64 {
	return c.Truncate + c.BitFlip + c.Header + c.Unlink
}

// Counters snapshots the injected index-fault counts.
func (in *IndexInjector) Counters() IndexCounters {
	if in == nil {
		return IndexCounters{}
	}
	return IndexCounters{
		Truncate: in.injected[IndexTruncate].Load(),
		BitFlip:  in.injected[IndexBitFlip].Load(),
		Header:   in.injected[IndexHeaderMismatch].Load(),
		Unlink:   in.injected[IndexUnlink].Load(),
	}
}

package faults

import (
	"sync"
	"testing"
	"time"
)

func testBreaker() *Breaker {
	return NewBreaker(BreakerConfig{
		Window: 8, MinSamples: 4, TripRatio: 0.5,
		Cooldown: 10 * time.Millisecond, ProbeSuccesses: 2,
	})
}

// TestBreakerTripsOnFaultRate: sustained faults open the breaker exactly
// once (the trip is reported to the recorder that caused it), and Allow
// refuses while open.
func TestBreakerTripsOnFaultRate(t *testing.T) {
	b := testBreaker()
	trips := 0
	for i := 0; i < 6; i++ {
		if !b.Allow() {
			break
		}
		if b.Record(false) {
			trips++
		}
	}
	if trips != 1 {
		t.Fatalf("recorded %d trips, want 1", trips)
	}
	if s := b.State(); s != Open {
		t.Fatalf("state after trip: %v", s)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a transaction before cooldown")
	}
	if got := b.Trips.Load(); got != 0 {
		// Trips is owned by the caller-side counter; the breaker's own
		// counter is only advanced by callers that choose to.
		t.Fatalf("breaker self-counted %d trips", got)
	}
}

// TestBreakerHealthyStaysClosed: all-ok traffic never trips.
func TestBreakerHealthyStaysClosed(t *testing.T) {
	b := testBreaker()
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused at %d", i)
		}
		if b.Record(true) {
			t.Fatalf("healthy record tripped at %d", i)
		}
	}
	if s := b.State(); s != Closed {
		t.Fatalf("state: %v", s)
	}
}

// TestBreakerHalfOpenRecovery: after the cooldown the breaker admits
// probes; enough successes close it again.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	b := testBreaker()
	for i := 0; i < 6; i++ {
		b.Record(false)
	}
	if s := b.State(); s != Open {
		t.Fatalf("state after faults: %v", s)
	}
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("post-cooldown probe refused")
	}
	if s := b.State(); s != HalfOpen {
		t.Fatalf("state after cooldown: %v", s)
	}
	b.Record(true)
	if s := b.State(); s != HalfOpen {
		t.Fatalf("one probe closed the breaker early: %v", s)
	}
	b.Record(true)
	if s := b.State(); s != Closed {
		t.Fatalf("state after %d good probes: %v", 2, s)
	}
	// The window restarted: a single fault must not re-trip immediately.
	if b.Record(false) {
		t.Fatal("single fault tripped a freshly closed breaker")
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe reopens the
// breaker and counts a reopen.
func TestBreakerProbeFailureReopens(t *testing.T) {
	b := testBreaker()
	for i := 0; i < 6; i++ {
		b.Record(false)
	}
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Record(false)
	if s := b.State(); s != Open {
		t.Fatalf("failed probe left state %v", s)
	}
	if b.Reopens.Load() != 1 {
		t.Fatalf("reopens = %d, want 1", b.Reopens.Load())
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted before a fresh cooldown")
	}
}

// TestBreakerConcurrency: hammered from many goroutines the breaker stays
// internally consistent (run with -race).
func TestBreakerConcurrency(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 32, MinSamples: 8, TripRatio: 0.5, Cooldown: time.Millisecond, ProbeSuccesses: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					b.Record(i%3 != 0)
				}
			}
		}(g)
	}
	wg.Wait()
	if s := b.State(); s < Closed || s > HalfOpen {
		t.Fatalf("invalid state %d", s)
	}
}

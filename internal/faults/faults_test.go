package faults

import (
	"testing"
	"time"
)

// TestPlanDeterminism: the same (seed, key, attempt) tuple yields the same
// plan on every draw — the replayability contract of chaos runs.
func TestPlanDeterminism(t *testing.T) {
	mk := func() *Injector { return NewInjector(Uniform(42, 0.3)) }
	a, b := mk(), mk()
	for key := int64(0); key < 50; key++ {
		for attempt := int64(0); attempt < 3; attempt++ {
			pa := a.BatchPlan(key, attempt, 16)
			pb := b.BatchPlan(key, attempt, 16)
			if pa.CoreFail != pb.CoreFail || pa.Stall != pb.Stall ||
				len(pa.Corrupt) != len(pb.Corrupt) || len(pa.Flip) != len(pb.Flip) ||
				len(pa.Swap) != len(pb.Swap) || len(pa.Drop) != len(pb.Drop) {
				t.Fatalf("plans diverge at key=%d attempt=%d: %+v vs %+v", key, attempt, pa, pb)
			}
			for i := range pa.Corrupt {
				if pa.Corrupt[i] != pb.Corrupt[i] {
					t.Fatalf("corruption %d diverges: %+v vs %+v", i, pa.Corrupt[i], pb.Corrupt[i])
				}
			}
		}
	}
}

// TestSeedsDiffer: different seeds draw different chaos.
func TestSeedsDiffer(t *testing.T) {
	a := NewInjector(Uniform(1, 0.3))
	b := NewInjector(Uniform(2, 0.3))
	same := 0
	const n = 200
	for key := int64(0); key < n; key++ {
		pa, pb := a.BatchPlan(key, 0, 8), b.BatchPlan(key, 0, 8)
		if pa.CoreFail == pb.CoreFail && len(pa.Corrupt) == len(pb.Corrupt) &&
			len(pa.Drop) == len(pb.Drop) && len(pa.Flip) == len(pb.Flip) {
			same++
		}
	}
	if same == n {
		t.Fatalf("seeds 1 and 2 drew identical plans for all %d keys", n)
	}
}

// TestRatesRoughlyHonored: per-response classes hit near their configured
// rate over many draws, and a zero rate never hits.
func TestRatesRoughlyHonored(t *testing.T) {
	in := NewInjector(Config{Seed: 7, Corrupt: 0.25})
	const batches, slots = 400, 16
	for key := int64(0); key < batches; key++ {
		in.BatchPlan(key, 0, slots)
	}
	c := in.Counters()
	got := float64(c.Corrupt) / float64(batches*slots)
	if got < 0.18 || got > 0.32 {
		t.Fatalf("corrupt rate 0.25 produced %.3f over %d draws", got, batches*slots)
	}
	if c.Flip != 0 || c.Drop != 0 || c.Reorder != 0 || c.Stall != 0 || c.CoreFail != 0 {
		t.Fatalf("zero-rate classes injected: %+v", c)
	}
}

// TestCorruptionsNonZero: every corruption has a non-zero delta and a
// valid field/slot, so applying a plan always changes the payload.
func TestCorruptionsNonZero(t *testing.T) {
	in := NewInjector(Config{Seed: 3, Corrupt: 1})
	for key := int64(0); key < 20; key++ {
		p := in.BatchPlan(key, 0, 8)
		if len(p.Corrupt) != 8 {
			t.Fatalf("rate-1 corrupt hit %d of 8 slots", len(p.Corrupt))
		}
		for _, c := range p.Corrupt {
			if c.Delta == 0 {
				t.Fatalf("zero delta at key %d: %+v", key, c)
			}
			if c.Index < 0 || c.Index >= 8 || c.Field < 0 || c.Field >= 5 {
				t.Fatalf("out-of-range corruption: %+v", c)
			}
		}
	}
}

// TestSetRateLive: rates can be changed while drawing (the breaker
// recovery path) and Enabled tracks them.
func TestSetRateLive(t *testing.T) {
	in := NewInjector(Config{Seed: 1, CoreFail: 1})
	if !in.Enabled() {
		t.Fatal("rate-1 injector reports disabled")
	}
	if p := in.BatchPlan(1, 0, 4); !p.CoreFail {
		t.Fatal("rate-1 core-fail did not hit")
	}
	in.SetRate(ClassCoreFail, 0)
	if in.Enabled() {
		t.Fatal("all-zero injector reports enabled")
	}
	for key := int64(0); key < 100; key++ {
		if p := in.BatchPlan(key, 0, 4); !p.Empty() {
			t.Fatalf("disabled injector produced %+v", p)
		}
	}
}

// TestNilAndDisabledInjector: nil receivers and zero configs are silent.
func TestNilAndDisabledInjector(t *testing.T) {
	var nilIn *Injector
	if nilIn.Enabled() {
		t.Fatal("nil injector enabled")
	}
	if p := nilIn.BatchPlan(1, 0, 8); !p.Empty() {
		t.Fatalf("nil injector produced %+v", p)
	}
	if c := nilIn.Counters(); c.Total() != 0 {
		t.Fatalf("nil injector counted %+v", c)
	}
	in := NewInjector(Config{Seed: 9})
	if p := in.BatchPlan(1, 0, 8); !p.Empty() {
		t.Fatalf("zero-config injector produced %+v", p)
	}
}

// TestStallDuration: stalls carry the configured (or default) duration.
func TestStallDuration(t *testing.T) {
	in := NewInjector(Config{Seed: 1, Stall: 1, StallFor: 123 * time.Millisecond})
	if p := in.BatchPlan(5, 0, 1); p.Stall != 123*time.Millisecond {
		t.Fatalf("stall carries %v, want 123ms", p.Stall)
	}
	in = NewInjector(Config{Seed: 1, Stall: 1})
	if p := in.BatchPlan(5, 0, 1); p.Stall != 5*time.Millisecond {
		t.Fatalf("default stall carries %v, want 5ms", p.Stall)
	}
}

// TestRetryRedraws: a retried attempt draws fresh faults, so transient
// core failures clear on some retry path for most batches.
func TestRetryRedraws(t *testing.T) {
	in := NewInjector(Config{Seed: 11, CoreFail: 0.5})
	cleared := 0
	const batches = 100
	for key := int64(0); key < batches; key++ {
		for attempt := int64(0); attempt < 4; attempt++ {
			if !in.BatchPlan(key, attempt, 1).CoreFail {
				cleared++
				break
			}
		}
	}
	// P(all 4 attempts fail) = 1/16; nearly all batches should clear.
	if cleared < batches*3/4 {
		t.Fatalf("only %d/%d batches cleared within 4 attempts at rate 0.5", cleared, batches)
	}
}

package faults

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is a circuit breaker position.
type State int32

// Breaker states.
const (
	// Closed: the device is in the path; outcomes feed the sliding window.
	Closed State = iota
	// Open: the device is out of the path; everything runs host-only
	// until the cooldown elapses.
	Open
	// HalfOpen: probe batches are admitted; enough consecutive successes
	// close the breaker, any failure reopens it.
	HalfOpen
)

// String renders the state for health documents.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes the degradation policy.
type BreakerConfig struct {
	// Window is the sliding window of recent device transactions
	// (default 64).
	Window int
	// MinSamples is the minimum window fill before the trip ratio is
	// evaluated (default 16).
	MinSamples int
	// TripRatio opens the breaker when the faulty fraction of the window
	// reaches it (default 0.5).
	TripRatio float64
	// Cooldown is how long the breaker stays open before admitting
	// half-open probes (default 50ms).
	Cooldown time.Duration
	// ProbeSuccesses is the consecutive successful probes required to
	// close again (default 3).
	ProbeSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.TripRatio <= 0 {
		c.TripRatio = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 50 * time.Millisecond
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 3
	}
	return c
}

// Breaker is a sliding-window circuit breaker: Record feeds per-batch
// device outcomes, Allow gates device access. It is safe for concurrent
// use by every FPGA thread; the critical section is a few integer
// operations per batch, far off the per-extension hot path.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	ring     []bool // true = faulty
	pos      int
	filled   int
	faults   int
	state    State
	openedAt time.Time
	probeOK  int

	// Trips counts closed->open transitions; Reopens counts half-open
	// probes that failed and reopened the breaker.
	Trips   atomic.Int64
	Reopens atomic.Int64
}

// NewBreaker builds a closed breaker with cfg (zero fields take the
// documented defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// State reports the current position (Open lazily becomes HalfOpen once
// the cooldown has elapsed, matching what Allow would admit).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && time.Since(b.openedAt) >= b.cfg.Cooldown {
		b.state = HalfOpen
		b.probeOK = 0
	}
	return b.state
}

// Allow reports whether the next device transaction may proceed. Closed
// and half-open admit (half-open transactions are probes); open refuses
// until the cooldown elapses, then flips to half-open and admits.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed, HalfOpen:
		return true
	default: // Open
		if time.Since(b.openedAt) >= b.cfg.Cooldown {
			b.state = HalfOpen
			b.probeOK = 0
			return true
		}
		return false
	}
}

// Record feeds one device transaction outcome (ok = the batch completed
// with no detected faults). It returns true when this record tripped the
// breaker closed->open, so the caller can count the trip.
func (b *Breaker) Record(ok bool) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		if !ok {
			b.reopenLocked()
			b.Reopens.Add(1)
			return false
		}
		b.probeOK++
		if b.probeOK >= b.cfg.ProbeSuccesses {
			b.resetLocked()
		}
		return false
	case Open:
		// A transaction that was admitted just before the trip landed
		// late; the window restarts when the breaker half-opens.
		return false
	default: // Closed
		if b.filled == len(b.ring) {
			if b.ring[b.pos] {
				b.faults--
			}
		} else {
			b.filled++
		}
		b.ring[b.pos] = !ok
		if !ok {
			b.faults++
		}
		b.pos = (b.pos + 1) % len(b.ring)
		if b.filled >= b.cfg.MinSamples &&
			float64(b.faults) >= b.cfg.TripRatio*float64(b.filled) {
			b.reopenLocked()
			return true
		}
		return false
	}
}

// reopenLocked moves to Open and restarts the cooldown clock.
func (b *Breaker) reopenLocked() {
	b.state = Open
	b.openedAt = time.Now()
	b.probeOK = 0
	b.clearLocked()
}

// resetLocked closes the breaker with an empty window.
func (b *Breaker) resetLocked() {
	b.state = Closed
	b.probeOK = 0
	b.clearLocked()
}

func (b *Breaker) clearLocked() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.pos, b.filled, b.faults = 0, 0, 0
}

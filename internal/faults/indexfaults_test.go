package faults

import "testing"

// TestIndexInjectorReplay pins the determinism contract: the same
// (seed, attempt) tuple draws the same plan, different seeds decorrelate.
func TestIndexInjectorReplay(t *testing.T) {
	a := NewIndexInjector(UniformIndex(42, 0.3))
	b := NewIndexInjector(UniformIndex(42, 0.3))
	other := NewIndexInjector(UniformIndex(43, 0.3))
	same, diff := 0, 0
	for att := int64(0); att < 200; att++ {
		pa, pb := a.ReloadPlan(att), b.ReloadPlan(att)
		if pa != pb {
			t.Fatalf("attempt %d: same seed drew different plans: %+v vs %+v", att, pa, pb)
		}
		if pa == other.ReloadPlan(att) {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds drew identical chaos throughout")
	}
	if a.Counters() != b.Counters() {
		t.Fatalf("replayed counters diverged: %+v vs %+v", a.Counters(), b.Counters())
	}
}

func TestIndexInjectorRates(t *testing.T) {
	silent := NewIndexInjector(IndexConfig{Seed: 1})
	if silent.Enabled() {
		t.Fatal("zero config reports enabled")
	}
	for att := int64(0); att < 100; att++ {
		if !silent.ReloadPlan(att).Empty() {
			t.Fatal("silent injector drew a fault")
		}
	}
	var nilInj *IndexInjector
	if nilInj.Enabled() || !nilInj.ReloadPlan(1).Empty() || nilInj.Counters().Total() != 0 {
		t.Fatal("nil injector is not inert")
	}

	always := NewIndexInjector(IndexConfig{Seed: 1, Truncate: 1})
	for att := int64(0); att < 50; att++ {
		p := always.ReloadPlan(att)
		if p.Empty() || p.Class != IndexTruncate {
			t.Fatalf("rate-1 truncate drew %+v", p)
		}
		if p.Frac < 0 || p.Frac >= 1 {
			t.Fatalf("Frac out of range: %v", p.Frac)
		}
	}
	if got := always.Counters(); got.Truncate != 50 || got.Total() != 50 {
		t.Fatalf("counters: %+v", got)
	}

	// All classes on: each class fires at least once over enough draws.
	uni := NewIndexInjector(UniformIndex(7, 0.5))
	for att := int64(0); att < 400; att++ {
		uni.ReloadPlan(att)
	}
	c := uni.Counters()
	if c.Truncate == 0 || c.BitFlip == 0 || c.Header == 0 || c.Unlink == 0 {
		t.Fatalf("a class never fired: %+v", c)
	}

	// Live rate change silences the chaos.
	uni.SetRate(IndexTruncate, 0)
	uni.SetRate(IndexBitFlip, 0)
	uni.SetRate(IndexHeaderMismatch, 0)
	uni.SetRate(IndexUnlink, 0)
	if uni.Enabled() {
		t.Fatal("still enabled after zeroing rates")
	}
}

func TestIndexClassNames(t *testing.T) {
	want := map[IndexClass]string{
		IndexTruncate: "truncate", IndexBitFlip: "bit-flip",
		IndexHeaderMismatch: "header-mismatch", IndexUnlink: "unlink",
		IndexClass(99): "unknown",
	}
	for c, name := range want {
		if c.String() != name {
			t.Fatalf("%d named %q, want %q", c, c.String(), name)
		}
	}
}

// Package faults is the deterministic fault-injection and fault-tolerance
// layer of the accelerator stack. It provides two pieces:
//
//   - Injector: a seeded chaos source the simulated device and driver
//     consult to corrupt narrow-band scores and boundary coordinates, flip
//     check verdicts, drop or slot-swap DMA responses, stall a device
//     batch past its deadline, and fail whole cores. Every decision is a
//     pure hash of (seed, batch, attempt, slot, class), so a chaos run is
//     bit-replayable from its seed regardless of thread scheduling.
//
//   - Breaker: a sliding-window circuit breaker that trips the platform
//     into host-only full-band mode when the device misbehaves, with
//     half-open probing to re-admit it once it recovers.
//
// The fault model is transport- and availability-level: payloads are
// corrupted in flight (after the device stamped its integrity words),
// responses go missing or land in the wrong DMA slot, and batches time out
// or abort. The driver's containment turns every such event into exactly
// the host full-band rerun the paper already budgets for (§V-B), so
// output stays bit-identical to the full-band oracle under any injected
// mix.
package faults

import (
	"math"
	"sync/atomic"
	"time"
)

// Class identifies one injectable fault class.
type Class int

// Fault classes, in the order Config lists their rates.
const (
	// ClassCorrupt perturbs one response payload field (narrow-band score
	// or a boundary coordinate) by a deterministic non-zero delta.
	ClassCorrupt Class = iota
	// ClassFlip toggles one response's check-verdict (rerun) bit.
	ClassFlip
	// ClassDrop removes one response from the DMA return batch.
	ClassDrop
	// ClassReorder lands one response's payload in its neighbour's DMA
	// slot (and vice versa): tags and integrity words stay put, payloads
	// swap.
	ClassReorder
	// ClassStall holds the device busy past the batch deadline.
	ClassStall
	// ClassCoreFail aborts the whole batch: batch_done never reports a
	// usable result set for this attempt.
	ClassCoreFail

	numClasses
)

// String names the class for counters and logs.
func (c Class) String() string {
	switch c {
	case ClassCorrupt:
		return "corrupt"
	case ClassFlip:
		return "flip"
	case ClassDrop:
		return "drop"
	case ClassReorder:
		return "reorder"
	case ClassStall:
		return "stall"
	case ClassCoreFail:
		return "core-fail"
	}
	return "unknown"
}

// Config sets the per-class injection rates. Corrupt, Flip, Drop and
// Reorder are per-response probabilities; Stall and CoreFail are
// per-batch-attempt probabilities. All zero disables injection.
type Config struct {
	// Seed keys every decision; the same seed replays the same chaos.
	Seed int64
	// Per-response rates in [0, 1].
	Corrupt float64
	Flip    float64
	Drop    float64
	Reorder float64
	// Per-batch-attempt rates in [0, 1].
	Stall    float64
	CoreFail float64
	// StallFor is the extra wall time a stalled batch occupies the device
	// (default 5ms — comfortably past any sensible per-batch deadline).
	StallFor time.Duration
}

// Uniform enables every fault class at the same rate — the standard chaos
// preset behind the -chaos flags.
func Uniform(seed int64, rate float64) Config {
	return Config{
		Seed:    seed,
		Corrupt: rate, Flip: rate, Drop: rate, Reorder: rate,
		Stall: rate, CoreFail: rate,
	}
}

// Enabled reports whether any class has a non-zero rate.
func (c Config) Enabled() bool {
	return c.Corrupt > 0 || c.Flip > 0 || c.Drop > 0 || c.Reorder > 0 ||
		c.Stall > 0 || c.CoreFail > 0
}

// Injector draws deterministic fault decisions. Rates are stored as
// atomics so chaos drills (and the breaker recovery test) can change them
// while the device is running; decisions for a given (seed, key) tuple
// depend only on the rates in force at draw time.
type Injector struct {
	seed     int64
	stallFor time.Duration
	rates    [numClasses]atomic.Uint64 // float64 bits
	injected [numClasses]atomic.Int64
}

// NewInjector builds an injector for cfg. A zero cfg yields a valid,
// permanently-silent injector.
func NewInjector(cfg Config) *Injector {
	in := &Injector{seed: cfg.Seed, stallFor: cfg.StallFor}
	if in.stallFor <= 0 {
		in.stallFor = 5 * time.Millisecond
	}
	in.SetRate(ClassCorrupt, cfg.Corrupt)
	in.SetRate(ClassFlip, cfg.Flip)
	in.SetRate(ClassDrop, cfg.Drop)
	in.SetRate(ClassReorder, cfg.Reorder)
	in.SetRate(ClassStall, cfg.Stall)
	in.SetRate(ClassCoreFail, cfg.CoreFail)
	return in
}

// SetRate updates one class's rate (clamped to [0, 1]) while the injector
// is live.
func (in *Injector) SetRate(c Class, rate float64) {
	if c < 0 || c >= numClasses {
		return
	}
	if rate < 0 {
		rate = 0
	} else if rate > 1 {
		rate = 1
	}
	in.rates[c].Store(math.Float64bits(rate))
}

// Rate reads one class's current rate.
func (in *Injector) Rate(c Class) float64 {
	if c < 0 || c >= numClasses {
		return 0
	}
	return math.Float64frombits(in.rates[c].Load())
}

// Enabled reports whether any class currently has a non-zero rate.
func (in *Injector) Enabled() bool {
	if in == nil {
		return false
	}
	for c := Class(0); c < numClasses; c++ {
		if in.Rate(c) > 0 {
			return true
		}
	}
	return false
}

// Corruption is one payload perturbation of a batch plan.
type Corruption struct {
	// Index is the response slot to corrupt.
	Index int
	// Field selects the payload field: 0 Local, 1 Global, 2 LocalT,
	// 3 LocalQ, 4 GlobalT.
	Field int
	// Delta is the signed, non-zero perturbation.
	Delta int
}

// Plan is the full set of faults drawn for one (batch, attempt). The
// driver applies it to the in-flight copy of the device's responses.
type Plan struct {
	// CoreFail aborts the attempt outright (after the device time is
	// spent).
	CoreFail bool
	// Stall is extra device occupancy (0 = no stall).
	Stall time.Duration
	// Corrupt lists payload perturbations.
	Corrupt []Corruption
	// Flip lists slots whose verdict bit toggles.
	Flip []int
	// Swap lists slot pairs whose payloads land in each other's DMA slot.
	Swap [][2]int
	// Drop lists slots removed from the return batch (applied last).
	Drop []int
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return !p.CoreFail && p.Stall == 0 &&
		len(p.Corrupt) == 0 && len(p.Flip) == 0 && len(p.Swap) == 0 && len(p.Drop) == 0
}

// BatchPlan draws the faults for one device batch attempt over n response
// slots. The draw is a pure function of (seed, key, attempt, slot, class):
// the same tuple always yields the same plan, so runs replay exactly, and
// a retried attempt redraws (modelling transient faults).
func (in *Injector) BatchPlan(key, attempt int64, n int) Plan {
	var p Plan
	if in == nil || !in.Enabled() {
		return p
	}
	if in.hit(ClassCoreFail, uint64(key), uint64(attempt), 0) {
		p.CoreFail = true
		in.injected[ClassCoreFail].Add(1)
	}
	if in.hit(ClassStall, uint64(key), uint64(attempt), 0) {
		p.Stall = in.stallFor
		in.injected[ClassStall].Add(1)
	}
	for i := 0; i < n; i++ {
		if in.hit(ClassCorrupt, uint64(key), uint64(attempt), uint64(i)) {
			h := in.draw(ClassCorrupt, uint64(key), uint64(attempt), uint64(i), 1)
			delta := int(h%41) - 20
			if delta == 0 {
				delta = 7
			}
			if h&(1<<50) != 0 {
				delta *= 57 // occasionally corrupt far outside sane range
			}
			p.Corrupt = append(p.Corrupt, Corruption{Index: i, Field: int(h>>8) % 5, Delta: delta})
			in.injected[ClassCorrupt].Add(1)
		}
		if in.hit(ClassFlip, uint64(key), uint64(attempt), uint64(i)) {
			p.Flip = append(p.Flip, i)
			in.injected[ClassFlip].Add(1)
		}
		if n > 1 && in.hit(ClassReorder, uint64(key), uint64(attempt), uint64(i)) {
			j := (i + 1) % n
			p.Swap = append(p.Swap, [2]int{i, j})
			in.injected[ClassReorder].Add(1)
		}
		if in.hit(ClassDrop, uint64(key), uint64(attempt), uint64(i)) {
			p.Drop = append(p.Drop, i)
			in.injected[ClassDrop].Add(1)
		}
	}
	return p
}

// hit draws one Bernoulli decision for (class, key...) at the class's
// current rate.
func (in *Injector) hit(c Class, key, attempt, slot uint64) bool {
	rate := in.Rate(c)
	if rate <= 0 {
		return false
	}
	h := in.draw(c, key, attempt, slot, 0)
	return float64(h>>11)/(1<<53) < rate
}

// draw hashes the decision tuple into 64 uniform bits.
func (in *Injector) draw(c Class, key, attempt, slot, salt uint64) uint64 {
	h := splitmix64(uint64(in.seed) ^ 0x5eedec5eedec5eed)
	h = splitmix64(h ^ uint64(c))
	h = splitmix64(h ^ key)
	h = splitmix64(h ^ attempt<<17)
	h = splitmix64(h ^ slot<<34)
	h = splitmix64(h ^ salt<<51)
	return h
}

// Mix64 exposes the SplitMix64 mixer for the driver's response integrity
// words, so the injector and the detector agree on one hash.
func Mix64(x uint64) uint64 { return splitmix64(x) }

// splitmix64 is the SplitMix64 finalizer: a bijective 64-bit mixer with
// full avalanche, the standard seed-spreading hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Counters is a snapshot of injected-fault counts per class.
type Counters struct {
	Corrupt  int64 `json:"corrupt"`
	Flip     int64 `json:"flip"`
	Drop     int64 `json:"drop"`
	Reorder  int64 `json:"reorder"`
	Stall    int64 `json:"stall"`
	CoreFail int64 `json:"core_fail"`
}

// Total sums the per-class counts.
func (c Counters) Total() int64 {
	return c.Corrupt + c.Flip + c.Drop + c.Reorder + c.Stall + c.CoreFail
}

// Counters snapshots the injected-fault counts.
func (in *Injector) Counters() Counters {
	if in == nil {
		return Counters{}
	}
	return Counters{
		Corrupt:  in.injected[ClassCorrupt].Load(),
		Flip:     in.injected[ClassFlip].Load(),
		Drop:     in.injected[ClassDrop].Load(),
		Reorder:  in.injected[ClassReorder].Load(),
		Stall:    in.injected[ClassStall].Load(),
		CoreFail: in.injected[ClassCoreFail].Load(),
	}
}

// Health is the fault-tolerance status document shared by /metrics,
// /healthz and the CLI summaries: breaker state, injected-fault counts
// (zero when chaos is off) and the containment counters.
type Health struct {
	// Breaker is "closed", "open" or "half-open".
	Breaker string `json:"breaker"`
	// Degraded is true while the breaker keeps the device out of the path
	// (open or half-open): extensions run host-only full-band.
	Degraded bool `json:"degraded"`
	// Injected counts faults the chaos injector introduced.
	Injected Counters `json:"injected"`
	// Detected counts device responses that failed integrity validation.
	Detected int64 `json:"detected_faults"`
	// Retries counts device batch attempts retried after a timeout or
	// core failure.
	Retries int64 `json:"device_retries"`
	// Trips counts closed->open breaker transitions.
	Trips int64 `json:"breaker_trips"`
	// HostOnly counts extensions served entirely host-side because the
	// breaker was open or the retry budget ran out.
	HostOnly int64 `json:"host_only_extensions"`
}

package driver

import (
	"math/rand"
	"testing"
	"time"

	"seedex/internal/align"
)

func makeRequests(n int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	for i := range reqs {
		tlen := 60 + rng.Intn(80)
		t := make([]byte, tlen)
		for k := range t {
			t[k] = byte(rng.Intn(4))
		}
		qlen := tlen - rng.Intn(20)
		q := append([]byte(nil), t[:qlen]...)
		for k := 0; k < qlen/25; k++ {
			q[rng.Intn(qlen)] = byte(rng.Intn(4))
		}
		reqs[i] = Request{Q: q, T: t, H0: 20 + rng.Intn(60), Tag: i}
	}
	return reqs
}

// TestDriverBitEquivalence: the full platform (batching, DMA, device
// checks, out-of-order completion, host reruns) returns exactly the
// full-band result for every request, in request order.
func TestDriverBitEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 64
	cfg.FPGAThreads = 4
	cfg.TimeScale = 0.05
	dev := NewDevice(cfg)
	reqs := makeRequests(1000, 1)
	resps := Run(cfg, dev, reqs)
	if len(resps) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(resps), len(reqs))
	}
	for i, r := range resps {
		if r.Tag != i {
			t.Fatalf("response %d carries tag %d: rearrangement broken", i, r.Tag)
		}
		want := align.Extend(reqs[i].Q, reqs[i].T, reqs[i].H0, cfg.Scoring)
		got := r.Res
		if got.Local != want.Local || got.LocalT != want.LocalT || got.LocalQ != want.LocalQ ||
			got.Global != want.Global || got.GlobalT != want.GlobalT {
			t.Fatalf("request %d: %+v != full-band %+v (rerun=%v)", i, got, want, r.Rerun)
		}
	}
	if dev.BatchesRun != 16 {
		t.Fatalf("expected 16 batches, ran %d", dev.BatchesRun)
	}
	if dev.Stats.Total.Load() != 1000 {
		t.Fatalf("device processed %d extensions", dev.Stats.Total.Load())
	}
	t.Logf("device: %v", dev.Stats)
}

// TestThreadInterleavingHidesLatency: with several FPGA threads the DMA
// and rerun work of one batch overlaps the device time of another, so
// wall time shrinks versus a single thread (§V-B's "multiple FPGA
// threads interleave to conceal FPGA execution latency").
func TestThreadInterleavingHidesLatency(t *testing.T) {
	reqs := makeRequests(800, 2)
	run := func(threads int) time.Duration {
		cfg := DefaultConfig()
		cfg.BatchSize = 50
		cfg.FPGAThreads = threads
		cfg.TimeScale = 50               // make modeled latencies observable
		cfg.DMABandwidthBytesPerNs = 0.5 // DMA heavy enough to matter
		dev := NewDevice(cfg)
		start := time.Now()
		Run(cfg, dev, reqs)
		return time.Since(start)
	}
	single := run(1)
	multi := run(4)
	t.Logf("1 thread: %v, 4 threads: %v", single, multi)
	if float64(multi) > 0.95*float64(single) {
		t.Fatalf("interleaving did not conceal latency: %v vs %v", multi, single)
	}
}

// TestRerunOverlapsDeviceTime: host reruns must execute outside the DMA
// and device locks, so with several FPGA threads some reruns land while
// the device is busy with another thread's batch. A small band forces
// plenty of check failures; results must still be bit-identical.
func TestRerunOverlapsDeviceTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Band = 2 // tiny band: most realistic-with-edits cases fail checks
	cfg.BatchSize = 40
	cfg.FPGAThreads = 4
	cfg.TimeScale = 30 // keep the device occupied long enough to observe
	cfg.DMABandwidthBytesPerNs = 4
	dev := NewDevice(cfg)
	reqs := makeRequests(600, 4)
	resps := Run(cfg, dev, reqs)
	for i, r := range resps {
		want := align.Extend(reqs[i].Q, reqs[i].T, reqs[i].H0, cfg.Scoring)
		if got := r.Res; got.Local != want.Local || got.Global != want.Global {
			t.Fatalf("request %d: %+v != full-band %+v", i, got, want)
		}
	}
	reruns := dev.HostReruns.Load()
	if reruns != dev.Stats.Reruns.Load() {
		t.Fatalf("HostReruns %d != Stats.Reruns %d", reruns, dev.Stats.Reruns.Load())
	}
	if reruns < 50 {
		t.Fatalf("band %d should force many reruns, got %d", cfg.Band, reruns)
	}
	if ov := dev.OverlappedReruns.Load(); ov == 0 {
		t.Fatalf("no rerun overlapped device time (of %d reruns): step 5 serializes", reruns)
	} else {
		t.Logf("%d/%d reruns overlapped device compute", ov, reruns)
	}
}

func TestSmallerThanOneBatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TimeScale = 0.01
	dev := NewDevice(cfg)
	reqs := makeRequests(3, 3)
	resps := Run(cfg, dev, reqs)
	if len(resps) != 3 || dev.BatchesRun != 1 {
		t.Fatalf("tiny workload: %d responses, %d batches", len(resps), dev.BatchesRun)
	}
}

func TestEmptyRun(t *testing.T) {
	cfg := DefaultConfig()
	dev := NewDevice(cfg)
	if resps := Run(cfg, dev, nil); len(resps) != 0 {
		t.Fatalf("empty run returned %d responses", len(resps))
	}
}

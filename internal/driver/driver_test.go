package driver

import (
	"math/rand"
	"testing"
	"time"

	"seedex/internal/align"
)

func makeRequests(n int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	for i := range reqs {
		tlen := 60 + rng.Intn(80)
		t := make([]byte, tlen)
		for k := range t {
			t[k] = byte(rng.Intn(4))
		}
		qlen := tlen - rng.Intn(20)
		q := append([]byte(nil), t[:qlen]...)
		for k := 0; k < qlen/25; k++ {
			q[rng.Intn(qlen)] = byte(rng.Intn(4))
		}
		reqs[i] = Request{Q: q, T: t, H0: 20 + rng.Intn(60), Tag: i}
	}
	return reqs
}

// TestDriverBitEquivalence: the full platform (batching, DMA, device
// checks, out-of-order completion, host reruns) returns exactly the
// full-band result for every request, in request order.
func TestDriverBitEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 64
	cfg.FPGAThreads = 4
	cfg.TimeScale = 0.05
	dev := NewDevice(cfg)
	reqs := makeRequests(1000, 1)
	resps := Run(cfg, dev, reqs)
	if len(resps) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(resps), len(reqs))
	}
	for i, r := range resps {
		if r.Tag != i {
			t.Fatalf("response %d carries tag %d: rearrangement broken", i, r.Tag)
		}
		want := align.Extend(reqs[i].Q, reqs[i].T, reqs[i].H0, cfg.Scoring)
		got := r.Res
		if got.Local != want.Local || got.LocalT != want.LocalT || got.LocalQ != want.LocalQ ||
			got.Global != want.Global || got.GlobalT != want.GlobalT {
			t.Fatalf("request %d: %+v != full-band %+v (rerun=%v)", i, got, want, r.Rerun)
		}
	}
	if dev.BatchesRun != 16 {
		t.Fatalf("expected 16 batches, ran %d", dev.BatchesRun)
	}
	if dev.Stats.Total.Load() != 1000 {
		t.Fatalf("device processed %d extensions", dev.Stats.Total.Load())
	}
	t.Logf("device: %v", dev.Stats)
}

// TestThreadInterleavingHidesLatency: with several FPGA threads the DMA
// and rerun work of one batch overlaps the device time of another, so
// wall time shrinks versus a single thread (§V-B's "multiple FPGA
// threads interleave to conceal FPGA execution latency").
func TestThreadInterleavingHidesLatency(t *testing.T) {
	reqs := makeRequests(800, 2)
	run := func(threads int) time.Duration {
		cfg := DefaultConfig()
		cfg.BatchSize = 50
		cfg.FPGAThreads = threads
		cfg.TimeScale = 50               // make modeled latencies observable
		cfg.DMABandwidthBytesPerNs = 0.5 // DMA heavy enough to matter
		dev := NewDevice(cfg)
		start := time.Now()
		Run(cfg, dev, reqs)
		return time.Since(start)
	}
	single := run(1)
	multi := run(4)
	t.Logf("1 thread: %v, 4 threads: %v", single, multi)
	if float64(multi) > 0.95*float64(single) {
		t.Fatalf("interleaving did not conceal latency: %v vs %v", multi, single)
	}
}

// TestRerunOverlapsDeviceTime: host reruns must execute outside the DMA
// and device locks, so with several FPGA threads some reruns land while
// the device is busy with another thread's batch. A small band forces
// plenty of check failures; results must still be bit-identical.
func TestRerunOverlapsDeviceTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Band = 2 // tiny band: most realistic-with-edits cases fail checks
	cfg.BatchSize = 40
	cfg.FPGAThreads = 4
	cfg.TimeScale = 30 // keep the device occupied long enough to observe
	cfg.DMABandwidthBytesPerNs = 4
	dev := NewDevice(cfg)
	reqs := makeRequests(600, 4)
	resps := Run(cfg, dev, reqs)
	for i, r := range resps {
		want := align.Extend(reqs[i].Q, reqs[i].T, reqs[i].H0, cfg.Scoring)
		if got := r.Res; got.Local != want.Local || got.Global != want.Global {
			t.Fatalf("request %d: %+v != full-band %+v", i, got, want)
		}
	}
	reruns := dev.HostReruns.Load()
	if reruns != dev.Stats.Reruns.Load() {
		t.Fatalf("HostReruns %d != Stats.Reruns %d", reruns, dev.Stats.Reruns.Load())
	}
	if reruns < 50 {
		t.Fatalf("band %d should force many reruns, got %d", cfg.Band, reruns)
	}
	if ov := dev.OverlappedReruns.Load(); ov == 0 {
		t.Fatalf("no rerun overlapped device time (of %d reruns): step 5 serializes", reruns)
	} else {
		t.Logf("%d/%d reruns overlapped device compute", ov, reruns)
	}
}

func TestSmallerThanOneBatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TimeScale = 0.01
	dev := NewDevice(cfg)
	reqs := makeRequests(3, 3)
	resps := Run(cfg, dev, reqs)
	if len(resps) != 3 || dev.BatchesRun != 1 {
		t.Fatalf("tiny workload: %d responses, %d batches", len(resps), dev.BatchesRun)
	}
}

func TestEmptyRun(t *testing.T) {
	cfg := DefaultConfig()
	dev := NewDevice(cfg)
	if resps := Run(cfg, dev, nil); len(resps) != 0 {
		t.Fatalf("empty run returned %d responses", len(resps))
	}
}

// TestBinSortedGroupsShapes pins the cross-batch scheduling reorder:
// binSorted groups requests by kernel shape bin (non-decreasing bin key),
// keeps input order within a bin (stable, so batch composition is
// deterministic), preserves the request multiset, and leaves single-batch
// runs untouched.
func TestBinSortedGroupsShapes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 64
	reqs := makeRequests(500, 7)
	// Widen the shape mix: every third request becomes a long/high-score
	// problem so several tiers and length classes appear.
	rng := rand.New(rand.NewSource(8))
	for i := 2; i < len(reqs); i += 3 {
		tl := 250 + rng.Intn(200)
		tg := make([]byte, tl)
		for k := range tg {
			tg[k] = byte(rng.Intn(4))
		}
		reqs[i].T = tg
		reqs[i].Q = append([]byte(nil), tg[:200+rng.Intn(40)]...)
		reqs[i].H0 = 150 + rng.Intn(400)
	}
	bin := func(r Request) int {
		return align.ShapeBin(len(r.Q), len(r.T), r.H0, cfg.Scoring)
	}

	sorted := binSorted(reqs, cfg)
	if len(sorted) != len(reqs) {
		t.Fatalf("binSorted changed length: %d -> %d", len(reqs), len(sorted))
	}
	seenTags := make(map[int]bool, len(sorted))
	lastBin, lastTag := -1, map[int]int{}
	bins := 0
	for _, r := range sorted {
		if seenTags[r.Tag] {
			t.Fatalf("tag %d duplicated", r.Tag)
		}
		seenTags[r.Tag] = true
		b := bin(r)
		if b < lastBin {
			t.Fatalf("bins not grouped: %d after %d", b, lastBin)
		}
		if b > lastBin {
			lastBin = b
			bins++
		}
		if prev, ok := lastTag[b]; ok && r.Tag < prev {
			t.Fatalf("bin %d not stable: tag %d after %d", b, r.Tag, prev)
		}
		lastTag[b] = r.Tag
	}
	if bins < 2 {
		t.Fatalf("workload produced %d shape bins; the test needs a mix", bins)
	}
	for i := range reqs {
		if reqs[i].Tag != i {
			t.Fatalf("binSorted mutated its input at %d", i)
		}
	}

	// At or under one batch the input is passed through untouched.
	small := makeRequests(cfg.BatchSize, 9)
	if got := binSorted(small, cfg); &got[0] != &small[0] {
		t.Fatal("single-batch run was copied/reordered")
	}
}

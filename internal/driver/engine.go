package driver

import (
	"context"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/faults"
)

// Engine adapts a Device into the align.Extender family, so the
// alignment service (internal/server) and the pipeline front-ends serve
// extensions through the full simulated platform — DMA, device latency,
// fault injection, integrity validation, retry and breaker degradation —
// instead of calling the software kernels directly. Engine is safe for
// concurrent use; Session mints per-goroutine driver sessions.
type Engine struct {
	dev *Device
}

// NewEngine builds the device and wraps it as an extender.
func NewEngine(cfg Config) *Engine { return &Engine{dev: NewDevice(cfg)} }

// Device exposes the underlying device (injector, breaker, counters).
func (e *Engine) Device() *Device { return e.dev }

// CheckStats exposes the device's check statistics; the server's stats
// pickup duck-types this method.
func (e *Engine) CheckStats() *core.Stats { return e.dev.Stats }

// Health snapshots the platform's fault-tolerance status.
func (e *Engine) Health() faults.Health { return e.dev.Health() }

// KernelScoring exposes the device's scoring scheme, so the server's
// micro-batcher can shape-bin jobs headed for the device batch path.
func (e *Engine) KernelScoring() align.Scoring { return e.dev.cfg.Scoring }

// Extend serves one extension through a throwaway session.
func (e *Engine) Extend(query, target []byte, h0 int) align.ExtendResult {
	return e.Session().Extend(query, target, h0)
}

// ExtendJobs serves one batch through a throwaway session.
func (e *Engine) ExtendJobs(jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	s := e.Session().(*engineSession)
	return s.ExtendJobs(jobs, dst)
}

// Session mints a per-goroutine driver session: one check session plus
// reusable request/response buffers, so a server worker that keeps it
// drives the device batch path allocation-free.
func (e *Engine) Session() align.Extender {
	return &engineSession{dev: e.dev, s: e.dev.newSession()}
}

var (
	_ align.BatchExtender   = (*Engine)(nil)
	_ align.SessionExtender = (*Engine)(nil)
)

type engineSession struct {
	dev     *Device
	s       *session
	reqs    []Request
	out     []Response
	lastKey int64
}

// LastBatchKey reports the device batch key of the most recent
// ExtendBatchInto call on this session. The serving tier duck-types this
// to stitch its kernel spans to the device-layer trace (the key resolves
// to a trace id via obs.BatchTraceID). Sessions are per-goroutine, so
// the read is race-free.
func (es *engineSession) LastBatchKey() int64 { return es.lastKey }

func (es *engineSession) Extend(query, target []byte, h0 int) align.ExtendResult {
	var one [1]align.ExtendResult
	es.ExtendJobs([]align.Job{{Q: query, T: target, H0: h0}}, one[:0])
	return one[0]
}

// ExtendJobs drives one dynamically formed batch through the device with
// the full fault-tolerance path. The batch key comes from the device's
// sequence counter: dynamic batches are not positionally replayable the
// way Run's are, but every draw is still deterministic in (seed, seq).
func (es *engineSession) ExtendJobs(jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	if cap(dst) < len(jobs) {
		dst = make([]align.ExtendResult, len(jobs))
	}
	dst = dst[:len(jobs)]
	if len(jobs) == 0 {
		return dst
	}
	if cap(es.reqs) < len(jobs) {
		es.reqs = make([]Request, len(jobs))
	}
	es.reqs = es.reqs[:len(jobs)]
	for i, j := range jobs {
		es.reqs[i] = Request{Q: j.Q, T: j.T, H0: j.H0, Tag: i}
	}
	es.out = es.ExtendBatchInto(es.reqs, es.out)
	for i := range es.out {
		dst[i] = es.out[i].Res
	}
	return dst
}

// ExtendBatchInto drives one batch of Requests through the device and
// returns full Responses (rerun flags and check outcomes included) in
// request order, reusing dst when it is large enough. The alignment
// service duck-types this method so its workers see verdicts from
// device-backed engines the same way they do from software checkers.
func (es *engineSession) ExtendBatchInto(reqs []Request, dst []Response) []Response {
	if cap(dst) < len(reqs) {
		dst = make([]Response, len(reqs))
	}
	dst = dst[:len(reqs)]
	if len(reqs) == 0 {
		return dst
	}
	key := es.dev.seq.Add(1)
	es.lastKey = key
	es.s.process(context.Background(), key, reqs, dst)
	return dst
}

var _ align.BatchExtender = (*engineSession)(nil)

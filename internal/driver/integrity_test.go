package driver

import (
	"testing"

	"seedex/internal/align"
	"seedex/internal/faults"
)

// TestCorruptedScoreNeverCertified is the driver half of the adversarial
// rerun coverage: a device response whose narrow-band score was corrupted
// up or down — by one point or far outside any sane range — must never
// reach the caller. The integrity word catches every in-window
// perturbation the optimality checks cannot see, the sanity cross-checks
// catch out-of-range forgeries independently, and the contained slot
// reruns into the full-band oracle.
func TestCorruptedScoreNeverCertified(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 16
	dev := NewDevice(cfg)
	s := dev.newSession()
	reqs := makeRequests(16, 11)

	var jobs []align.Job // unused; compute wants fpga jobs
	_ = jobs
	s.resps, s.jobs = dev.compute(s.chk, reqs, s.resps, s.jobs)
	honest := append([]Response(nil), s.resps...)
	dst := make([]Response, len(reqs))

	deltas := []int{-100000, -500, -7, -1, 1, 7, 500, 100000}
	for slot := range reqs {
		for _, delta := range deltas {
			copy(s.resps, honest)
			s.wire = stampWire(s.resps, s.wire)
			s.wire[slot].resp.Res.Local += delta

			bad := s.validate(reqs, dst)
			if bad != 1 {
				t.Fatalf("slot %d delta %+d: validate flagged %d faults, want 1", slot, delta, bad)
			}
			if !dst[slot].Rerun {
				t.Fatalf("slot %d delta %+d: corrupted response certified (%+v)", slot, delta, dst[slot])
			}
			// The containment path restores the oracle.
			dst[slot].Res = s.chk.Rerun(reqs[slot].Q, reqs[slot].T, reqs[slot].H0)
			want := align.Extend(reqs[slot].Q, reqs[slot].T, reqs[slot].H0, cfg.Scoring)
			if dst[slot].Res != want {
				t.Fatalf("slot %d delta %+d: contained result %+v != oracle %+v", slot, delta, dst[slot].Res, want)
			}
		}
	}
}

// TestSanityCatchesForgedIntegrity: even a device that forges a valid
// integrity word (recomputing the hash over corrupted payloads) cannot
// smuggle an out-of-range result past the sanity cross-checks.
func TestSanityCatchesForgedIntegrity(t *testing.T) {
	cfg := DefaultConfig()
	dev := NewDevice(cfg)
	s := dev.newSession()
	reqs := makeRequests(8, 12)
	s.resps, s.jobs = dev.compute(s.chk, reqs, s.resps, s.jobs)
	dst := make([]Response, len(reqs))

	forge := []func(r *Response, req Request){
		func(r *Response, req Request) { r.Res.Local = -1 },
		func(r *Response, req Request) { r.Res.Global = -5 },
		func(r *Response, req Request) { r.Res.Local = req.H0 + len(req.Q)*cfg.Scoring.Match + 1 },
		func(r *Response, req Request) { r.Res.Global = req.H0 + len(req.Q)*cfg.Scoring.Match + 1000 },
		func(r *Response, req Request) { r.Res.LocalQ = len(req.Q) + 1 },
		func(r *Response, req Request) { r.Res.LocalT = -1 },
		func(r *Response, req Request) { r.Res.GlobalT = len(req.T) + 3 },
		func(r *Response, req Request) { r.Res.Rows = len(req.T) + 1 },
	}
	for fi, mut := range forge {
		s.wire = stampWire(s.resps, s.wire)
		mut(&s.wire[0].resp, reqs[0])
		s.wire[0].sum = respSum(s.wire[0].resp) // forged: hash matches payload
		if bad := s.validate(reqs, dst); bad != 1 {
			t.Fatalf("forgery %d: validate flagged %d faults, want 1", fi, bad)
		}
		if !dst[0].Rerun {
			t.Fatalf("forgery %d: insane response accepted: %+v", fi, dst[0])
		}
	}
}

// TestValidateTagAnomalies: unknown and duplicate tags are counted as
// anomalies and never displace a valid response.
func TestValidateTagAnomalies(t *testing.T) {
	cfg := DefaultConfig()
	dev := NewDevice(cfg)
	s := dev.newSession()
	reqs := makeRequests(4, 13)
	s.resps, s.jobs = dev.compute(s.chk, reqs, s.resps, s.jobs)
	dst := make([]Response, len(reqs))

	// Unknown tag: an extra line from some other batch.
	s.wire = stampWire(s.resps, s.wire)
	alien := s.wire[0]
	alien.resp.Tag = 999
	alien.sum = respSum(alien.resp)
	s.wire = append(s.wire, alien)
	if bad := s.validate(reqs, dst); bad != 1 {
		t.Fatalf("unknown tag: %d faults, want 1", bad)
	}
	for i := range dst {
		if dst[i].Rerun != s.resps[i].Rerun {
			t.Fatalf("unknown tag displaced slot %d", i)
		}
	}

	// Duplicate tag: the same line delivered twice.
	s.wire = stampWire(s.resps, s.wire)
	s.wire = append(s.wire, s.wire[2])
	if bad := s.validate(reqs, dst); bad != 1 {
		t.Fatalf("duplicate tag: %d faults, want 1", bad)
	}
}

// TestWireFaultMechanics pins the wire-level behaviour of each fault
// class: swaps leave both slots detectable, drops shrink the batch,
// flips break the stamped word, and a retry re-stamps from the honest
// results so corruption never leaks across attempts.
func TestWireFaultMechanics(t *testing.T) {
	cfg := DefaultConfig()
	dev := NewDevice(cfg)
	s := dev.newSession()
	reqs := makeRequests(6, 14)
	s.resps, s.jobs = dev.compute(s.chk, reqs, s.resps, s.jobs)
	dst := make([]Response, len(reqs))

	// Payload swap: tags and sums stay in their DMA slots, payloads move.
	s.wire = stampWire(s.resps, s.wire)
	applyPlan(faults.Plan{Swap: [][2]int{{1, 2}}}, s.wire)
	if bad := s.validate(reqs, dst); bad != 2 {
		t.Fatalf("swap: %d faults, want 2 (both slots)", bad)
	}
	if !dst[1].Rerun || !dst[2].Rerun {
		t.Fatalf("swapped slots certified: %+v %+v", dst[1], dst[2])
	}

	// Drop: the batch comes back short; the missing tag reruns.
	s.wire = stampWire(s.resps, s.wire)
	s.wire = applyDrops(faults.Plan{Drop: []int{4}}, s.wire)
	if len(s.wire) != len(reqs)-1 {
		t.Fatalf("drop left %d lines", len(s.wire))
	}
	if bad := s.validate(reqs, dst); bad != 1 || !dst[4].Rerun {
		t.Fatalf("drop: bad=%d dst[4]=%+v", bad, dst[4])
	}

	// Verdict flip under a stamped word.
	s.wire = stampWire(s.resps, s.wire)
	applyPlan(faults.Plan{Flip: []int{3}}, s.wire)
	if bad := s.validate(reqs, dst); bad != 1 || !dst[3].Rerun {
		t.Fatalf("flip: bad=%d dst[3]=%+v", bad, dst[3])
	}

	// Re-stamping restores a clean wire image: zero faults.
	s.wire = stampWire(s.resps, s.wire)
	if bad := s.validate(reqs, dst); bad != 0 {
		t.Fatalf("clean re-stamped wire flagged %d faults", bad)
	}
	for i := range dst {
		if dst[i] != s.resps[i] {
			t.Fatalf("clean delivery mutated slot %d", i)
		}
	}
}

package driver

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"seedex/internal/align"
	"seedex/internal/faults"
)

// chaosSeeds returns the seed matrix for the equivalence tests:
// SEEDEX_CHAOS_SEED overrides (the CI chaos job pins one seed per run),
// otherwise a small fixed matrix runs.
func chaosSeeds(t *testing.T) []int64 {
	if v := os.Getenv("SEEDEX_CHAOS_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("SEEDEX_CHAOS_SEED=%q: %v", v, err)
		}
		return []int64{s}
	}
	return []int64{1, 7, 1337}
}

// assertFullBand asserts every response is bit-identical to the scalar
// full-band reference.
func assertFullBand(t *testing.T, cfg Config, reqs []Request, resps []Response) {
	t.Helper()
	if len(resps) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(resps), len(reqs))
	}
	for i, r := range resps {
		if r.Tag != i {
			t.Fatalf("response %d carries tag %d", i, r.Tag)
		}
		want := align.Extend(reqs[i].Q, reqs[i].T, reqs[i].H0, cfg.Scoring)
		got := r.Res
		if got.Local != want.Local || got.LocalT != want.LocalT || got.LocalQ != want.LocalQ ||
			got.Global != want.Global || got.GlobalT != want.GlobalT {
			t.Fatalf("request %d: %+v != full-band %+v (rerun=%v)", i, got, want, r.Rerun)
		}
	}
}

// TestChaosBitEquivalence is the headline robustness property: with every
// fault class injecting at a non-zero rate — payload corruption, verdict
// flips, dropped and slot-swapped DMA responses, device stalls past the
// deadline, whole-core failures — the platform's output stays
// bit-identical to the full-band oracle, and the run terminates within
// the retry/backoff budget. The breaker is parked (TripRatio > 1) so the
// device keeps participating and every containment path is exercised;
// TestChaosBreakerDegradeRecover covers degradation separately.
func TestChaosBitEquivalence(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.BatchSize = 32
			cfg.FPGAThreads = 4
			cfg.TimeScale = 0.05
			cfg.DeviceTimeout = 5 * time.Millisecond
			cfg.MaxAttempts = 3
			cfg.RetryBackoff = 50 * time.Microsecond
			cfg.Faults = faults.Uniform(seed, 0.04)
			cfg.Faults.StallFor = 20 * time.Millisecond // reliably past the deadline
			cfg.Breaker = faults.BreakerConfig{TripRatio: 2}
			dev := NewDevice(cfg)
			reqs := makeRequests(800, seed)

			start := time.Now()
			resps := Run(cfg, dev, reqs)
			elapsed := time.Since(start)

			assertFullBand(t, cfg, reqs, resps)
			inj := dev.Injector().Counters()
			if inj.Total() == 0 {
				t.Fatal("chaos run injected nothing; the test proves nothing")
			}
			if inj.Corrupt == 0 || inj.Flip == 0 || inj.Drop == 0 || inj.Reorder == 0 {
				t.Fatalf("some per-response classes never fired: %+v", inj)
			}
			det := dev.Stats.DeviceFaults.Load()
			if det == 0 {
				t.Fatalf("injected %d faults but detected none", inj.Total())
			}
			t.Logf("seed %d: injected %+v, detected %d, retries %d, host-only %d, batches %d, %v",
				seed, inj, det, dev.Stats.DeviceRetries.Load(), dev.Stats.HostOnly.Load(),
				dev.BatchesRun, elapsed)
			writeChaosSnapshot(t, seed, dev)
		})
	}
}

// writeChaosSnapshot dumps the fault counters as JSON when the CI chaos
// job asks for an artifact via SEEDEX_CHAOS_SNAPSHOT.
func writeChaosSnapshot(t *testing.T, seed int64, dev *Device) {
	path := os.Getenv("SEEDEX_CHAOS_SNAPSHOT")
	if path == "" {
		return
	}
	doc := struct {
		Seed   int64         `json:"seed"`
		Health faults.Health `json:"health"`
	}{Seed: seed, Health: dev.Health()}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatalf("write snapshot %s: %v", path, err)
	}
	t.Logf("fault-counter snapshot written to %s", path)
}

// TestChaosEachClassAlone drives each fault class individually at a high
// rate, asserting equivalence and that the class's dedicated containment
// path actually fired.
func TestChaosEachClassAlone(t *testing.T) {
	classes := []struct {
		name string
		set  func(c *faults.Config)
		// detects: the class surfaces as per-response validation failures.
		detects bool
		// retries: the class surfaces as batch-level retry attempts.
		retries bool
	}{
		{"corrupt", func(c *faults.Config) { c.Corrupt = 0.5 }, true, false},
		{"flip", func(c *faults.Config) { c.Flip = 0.5 }, true, false},
		{"drop", func(c *faults.Config) { c.Drop = 0.5 }, true, false},
		{"reorder", func(c *faults.Config) { c.Reorder = 0.5 }, true, false},
		{"stall", func(c *faults.Config) { c.Stall = 0.5 }, false, true},
		{"core-fail", func(c *faults.Config) { c.CoreFail = 0.5 }, false, true},
	}
	for _, tc := range classes {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.BatchSize = 25
			cfg.FPGAThreads = 2
			cfg.TimeScale = 0.05
			cfg.DeviceTimeout = 5 * time.Millisecond
			cfg.RetryBackoff = 50 * time.Microsecond
			cfg.Faults = faults.Config{Seed: 99, StallFor: 20 * time.Millisecond}
			tc.set(&cfg.Faults)
			cfg.Breaker = faults.BreakerConfig{TripRatio: 2}
			dev := NewDevice(cfg)
			reqs := makeRequests(300, 5)
			resps := Run(cfg, dev, reqs)
			assertFullBand(t, cfg, reqs, resps)
			if dev.Injector().Counters().Total() == 0 {
				t.Fatal("class never injected")
			}
			if tc.detects && dev.Stats.DeviceFaults.Load() == 0 {
				t.Fatal("class injected but nothing was detected")
			}
			if tc.retries && dev.Stats.DeviceRetries.Load() == 0 {
				t.Fatal("class injected but no attempt was retried")
			}
		})
	}
}

// TestChaosReplayDeterminism: with one FPGA thread the whole chaos run is
// a pure function of (seed, workload): injected counters, detected
// faults, retries and completed batches replay exactly.
func TestChaosReplayDeterminism(t *testing.T) {
	run := func() (faults.Counters, int64, int64, int64) {
		cfg := DefaultConfig()
		cfg.BatchSize = 32
		cfg.FPGAThreads = 1
		cfg.TimeScale = 0.02
		cfg.DeviceTimeout = 5 * time.Millisecond
		cfg.RetryBackoff = 20 * time.Microsecond
		cfg.Faults = faults.Uniform(21, 0.05)
		cfg.Faults.StallFor = 20 * time.Millisecond
		cfg.Breaker = faults.BreakerConfig{TripRatio: 2}
		dev := NewDevice(cfg)
		reqs := makeRequests(400, 6)
		resps := Run(cfg, dev, reqs)
		assertFullBand(t, cfg, reqs, resps)
		return dev.Injector().Counters(), dev.Stats.DeviceFaults.Load(),
			dev.Stats.DeviceRetries.Load(), dev.BatchesRun
	}
	c1, d1, r1, b1 := run()
	c2, d2, r2, b2 := run()
	if c1 != c2 || d1 != d2 || r1 != r2 || b1 != b2 {
		t.Fatalf("chaos run did not replay: (%+v,%d,%d,%d) vs (%+v,%d,%d,%d)",
			c1, d1, r1, b1, c2, d2, r2, b2)
	}
	if c1.Total() == 0 || d1 == 0 {
		t.Fatalf("replay test injected/detected nothing: %+v detected=%d", c1, d1)
	}
}

// TestChaosBreakerDegradeRecover drives the fault rate past the breaker
// threshold and watches the full degradation cycle: trip into host-only
// mode (visible in Stats and Health), then — after the fault clears and
// the cooldown elapses — half-open probing re-admits the device and the
// breaker closes.
func TestChaosBreakerDegradeRecover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 20
	cfg.FPGAThreads = 2
	cfg.TimeScale = 0.02
	cfg.MaxAttempts = 2
	cfg.RetryBackoff = 20 * time.Microsecond
	cfg.Faults = faults.Config{Seed: 17, CoreFail: 1}
	cfg.Breaker = faults.BreakerConfig{
		Window: 16, MinSamples: 4, TripRatio: 0.5,
		Cooldown: 20 * time.Millisecond, ProbeSuccesses: 2,
	}
	dev := NewDevice(cfg)

	// Phase 1: every device attempt core-fails; the breaker must trip and
	// the workload must degrade to host-only — still bit-identical.
	reqs := makeRequests(400, 7)
	resps := Run(cfg, dev, reqs)
	assertFullBand(t, cfg, reqs, resps)
	if trips := dev.Stats.BreakerTrips.Load(); trips == 0 {
		t.Fatal("sustained core failures never tripped the breaker")
	}
	if ho := dev.Stats.HostOnly.Load(); ho == 0 {
		t.Fatal("tripped breaker served no extensions host-only")
	}
	h := dev.Health()
	if !h.Degraded {
		t.Fatalf("health not degraded after trip: %+v", h)
	}
	t.Logf("degraded: %+v", h)

	// Phase 2: the fault clears; after the cooldown, half-open probes must
	// re-admit the device and close the breaker.
	dev.Injector().SetRate(faults.ClassCoreFail, 0)
	time.Sleep(cfg.Breaker.Cooldown + 5*time.Millisecond)
	if st := dev.Breaker().State(); st != faults.HalfOpen {
		t.Fatalf("post-cooldown state %v, want half-open", st)
	}
	before := dev.BatchesRun
	reqs2 := makeRequests(400, 8)
	resps2 := Run(cfg, dev, reqs2)
	assertFullBand(t, cfg, reqs2, resps2)
	if st := dev.Breaker().State(); st != faults.Closed {
		t.Fatalf("breaker did not close after recovery: %v", st)
	}
	if dev.BatchesRun <= before {
		t.Fatal("recovered device ran no batches")
	}
	if h := dev.Health(); h.Degraded {
		t.Fatalf("health still degraded after recovery: %+v", h)
	}
	t.Logf("recovered: %+v", dev.Health())
}

// TestRunContextCancellation: cancelling the context aborts a run
// promptly — the producer stops, in-flight device waits and backoffs
// unwind — even though the workload would otherwise occupy the device
// for a long time.
func TestRunContextCancellation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 20
	cfg.FPGAThreads = 2
	cfg.TimeScale = 2000 // slow enough that a full run takes far longer
	dev := NewDevice(cfg)
	reqs := makeRequests(400, 9)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := dev.Run(ctx, reqs)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("cancelled run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return within 5s")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancellation took %v", el)
	}
	if dev.BatchesRun >= int64(len(reqs)/cfg.BatchSize) {
		t.Fatalf("cancelled run still processed all %d batches", dev.BatchesRun)
	}
}

// TestEngineExtenderEquivalence: the Engine adapter serves the extender
// interfaces through the full fault-tolerant platform and stays
// bit-identical to the scalar reference under chaos.
func TestEngineExtenderEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 16
	cfg.TimeScale = 0.02
	cfg.DeviceTimeout = 5 * time.Millisecond
	cfg.RetryBackoff = 20 * time.Microsecond
	cfg.Faults = faults.Uniform(33, 0.05)
	cfg.Faults.StallFor = 20 * time.Millisecond
	cfg.Breaker = faults.BreakerConfig{TripRatio: 2}
	eng := NewEngine(cfg)

	sess, ok := eng.Session().(align.BatchExtender)
	if !ok {
		t.Fatal("engine session is not a BatchExtender")
	}
	reqs := makeRequests(300, 10)
	jobs := make([]align.Job, len(reqs))
	for i, r := range reqs {
		jobs[i] = align.Job{Q: r.Q, T: r.T, H0: r.H0}
	}
	var dst []align.ExtendResult
	for lo := 0; lo < len(jobs); lo += 64 {
		hi := lo + 64
		if hi > len(jobs) {
			hi = len(jobs)
		}
		dst = sess.ExtendJobs(jobs[lo:hi], dst[:0])
		for i := range dst {
			want := align.Extend(jobs[lo+i].Q, jobs[lo+i].T, jobs[lo+i].H0, cfg.Scoring)
			if dst[i].Local != want.Local || dst[i].Global != want.Global ||
				dst[i].LocalT != want.LocalT || dst[i].LocalQ != want.LocalQ {
				t.Fatalf("job %d: %+v != full-band %+v", lo+i, dst[i], want)
			}
		}
	}
	// The scalar interface goes through the same path (Rows/Cells are cost
	// metadata and legitimately differ between banded-proven and full-band
	// results).
	got := eng.Extend(reqs[0].Q, reqs[0].T, reqs[0].H0)
	want := align.Extend(reqs[0].Q, reqs[0].T, reqs[0].H0, cfg.Scoring)
	if got.Local != want.Local || got.Global != want.Global ||
		got.LocalT != want.LocalT || got.LocalQ != want.LocalQ || got.GlobalT != want.GlobalT {
		t.Fatalf("Extend: %+v != %+v", got, want)
	}
	if eng.Device().Injector().Counters().Total() == 0 {
		t.Fatal("engine chaos run injected nothing")
	}
	if eng.CheckStats() != eng.Device().Stats {
		t.Fatal("CheckStats does not expose the device stats")
	}
}

// Response integrity: the wire format the simulated device returns and
// the validation the driver applies before trusting it.
//
// The real device stamps every result line with an integrity word (a hash
// over the tag, the payload fields and the verdict bit) as it writes the
// coalesced output buffer. Transport faults — bit corruption in DRAM or
// over PCIe, responses landing in the wrong DMA slot, missing lines —
// happen after that stamp, so the host detects them by recomputing the
// word and cross-checking tags and counts against the request metadata it
// kept. Detection does not need to know which fault class struck: any
// anomaly contains the affected extension into the host full-band rerun.
package driver

import (
	"seedex/internal/core"
	"seedex/internal/faults"
)

// wireResp is one response line as it crosses the DMA boundary: the
// payload plus the device-stamped integrity word.
type wireResp struct {
	resp Response
	sum  uint64
}

// respSum is the integrity word: a SplitMix64 chain over the tag, every
// payload field and the verdict bit. The device stamps it before the
// transport can corrupt anything; the host recomputes it on retrieval.
func respSum(r Response) uint64 {
	h := faults.Mix64(uint64(int64(r.Tag)) ^ 0x1d3a5f7c9b8e6042)
	h = faults.Mix64(h ^ uint64(int64(r.Res.Local)))
	h = faults.Mix64(h ^ uint64(int64(r.Res.LocalT))<<1)
	h = faults.Mix64(h ^ uint64(int64(r.Res.LocalQ))<<2)
	h = faults.Mix64(h ^ uint64(int64(r.Res.Global))<<3)
	h = faults.Mix64(h ^ uint64(int64(r.Res.GlobalT))<<4)
	h = faults.Mix64(h ^ uint64(int64(r.Res.Rows))<<5)
	h = faults.Mix64(h ^ uint64(r.Res.Cells)<<6)
	if r.Rerun {
		h = faults.Mix64(h ^ 0xf117)
	}
	return h
}

// stampWire rebuilds the in-flight copy of a batch's responses with fresh
// integrity words, reusing dst's capacity. Each retry re-stamps from the
// honest results, so a previous attempt's corruption never leaks forward.
func stampWire(resps []Response, dst []wireResp) []wireResp {
	if cap(dst) < len(resps) {
		dst = make([]wireResp, len(resps))
	}
	dst = dst[:len(resps)]
	for i, r := range resps {
		dst[i] = wireResp{resp: r, sum: respSum(r)}
	}
	return dst
}

// applyPlan corrupts the in-flight copy per the fault plan. Corruptions
// and verdict flips mutate payload fields under an already-stamped sum;
// slot swaps exchange payloads while each slot keeps its own tag and sum
// (the DMA wrote the right line to the wrong address), so both slots fail
// validation. Drops are applied separately (applyDrops) because they
// change the slice length.
func applyPlan(p faults.Plan, wire []wireResp) {
	for _, c := range p.Corrupt {
		if c.Index < 0 || c.Index >= len(wire) {
			continue
		}
		res := &wire[c.Index].resp.Res
		switch c.Field {
		case 0:
			res.Local += c.Delta
		case 1:
			res.Global += c.Delta
		case 2:
			res.LocalT += c.Delta
		case 3:
			res.LocalQ += c.Delta
		case 4:
			res.GlobalT += c.Delta
		}
	}
	for _, i := range p.Flip {
		if i >= 0 && i < len(wire) {
			wire[i].resp.Rerun = !wire[i].resp.Rerun
		}
	}
	for _, sw := range p.Swap {
		i, j := sw[0], sw[1]
		if i < 0 || j < 0 || i >= len(wire) || j >= len(wire) || i == j {
			continue
		}
		wire[i].resp.Res, wire[j].resp.Res = wire[j].resp.Res, wire[i].resp.Res
		wire[i].resp.Rerun, wire[j].resp.Rerun = wire[j].resp.Rerun, wire[i].resp.Rerun
	}
}

// applyDrops removes dropped slots from the return batch, compacting in
// place (indices may repeat or be out of range; both are ignored).
func applyDrops(p faults.Plan, wire []wireResp) []wireResp {
	if len(p.Drop) == 0 {
		return wire
	}
	dropped := make(map[int]bool, len(p.Drop))
	for _, i := range p.Drop {
		if i >= 0 && i < len(wire) {
			dropped[i] = true
		}
	}
	if len(dropped) == 0 {
		return wire
	}
	out := wire[:0]
	for i := range wire {
		if !dropped[i] {
			out = append(out, wire[i])
		}
	}
	return out
}

// sane cross-checks a response payload against its request. Every bound
// holds for any honest extension under any scoring scheme (scores are
// floored at zero; coordinates count consumed bases; no alignment can
// beat h0 plus a match per query base), so a sane() failure proves device
// misbehaviour — a false positive here would send honest work back to the
// host and pollute the breaker's fault window.
func (d *Device) sane(req Request, r Response) bool {
	res := r.Res
	n, m := len(req.Q), len(req.T)
	if res.Local < 0 || res.Global < 0 {
		return false
	}
	if res.LocalQ < 0 || res.LocalQ > n || res.LocalT < 0 || res.LocalT > m {
		return false
	}
	if res.GlobalT < 0 || res.GlobalT > m {
		return false
	}
	if res.Rows < 0 || res.Rows > m {
		return false
	}
	ceil := req.H0 + n*d.cfg.Scoring.Match
	if res.Local > ceil || res.Global > ceil {
		return false
	}
	return true
}

// validate checks one retrieved batch against the request metadata and
// writes exactly one Response per request into dst (parallel to reqs).
// A slot is accepted only if its tag belongs to this batch and is not a
// duplicate, its integrity word matches, and its payload passes the
// sanity cross-checks; everything else — including tags that never
// arrived — lands in dst as a rerun sentinel the caller serves with the
// host full-band kernel. Returns the number of faulted slots.
func (s *session) validate(reqs []Request, dst []Response) int {
	clear(s.tagIdx)
	for i, r := range reqs {
		s.tagIdx[r.Tag] = i
	}
	if cap(s.covered) < len(reqs) {
		s.covered = make([]bool, len(reqs))
	}
	s.covered = s.covered[:len(reqs)]
	for i := range s.covered {
		s.covered[i] = false
	}
	// A request is faulted when no valid response covers it (dropped,
	// corrupted, flipped or misplaced lines all leave their slot
	// uncovered); entries with unknown or duplicate tags are additional
	// anomalies on top. Each faulted extension counts exactly once.
	extras := 0
	for _, w := range s.wire {
		pos, ok := s.tagIdx[w.resp.Tag]
		if !ok || s.covered[pos] {
			extras++ // unknown or duplicate ID
			continue
		}
		if respSum(w.resp) != w.sum || !s.dev.sane(reqs[pos], w.resp) {
			continue // uncovered: counted below
		}
		s.covered[pos] = true
		dst[pos] = w.resp
	}
	bad := extras
	for i := range reqs {
		if !s.covered[i] {
			// Missing or rejected responses degrade into host reruns; their
			// honest verdict is unknowable from the wire, so the outcome is
			// the explicit sentinel, never a fabricated pass.
			dst[i] = Response{Tag: reqs[i].Tag, Rerun: true, Outcome: core.OutcomeUnknown}
			bad++
		}
	}
	return bad
}

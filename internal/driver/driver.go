// Package driver models the SeedEx host-FPGA integration of §V-B and
// Figure 12 with real concurrency: seeding threads produce extension
// batches into a queue; a pool of FPGA threads packages each batch,
// DMAs it to device DRAM over a shared XDMA channel, acquires the device
// lock, issues batch_start over the OCL channel, polls for batch_done,
// retrieves results, and performs the host reruns for extensions whose
// optimality checks failed. Multiple FPGA threads interleave so the DMA
// and host post-processing of one batch overlap the device compute of
// another, exactly the latency-concealment strategy the paper describes.
//
// The device itself is simulated: functionally it runs the SeedEx check
// workflow per extension (narrow band + checks), and its batch latency
// comes from the discrete-event system model in internal/fpga scaled to
// a configurable wall-clock factor.
package driver

import (
	"sync"
	"time"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/fpga"
	"seedex/internal/hw"
)

// Request is one seed extension offered to the accelerator.
type Request struct {
	Q, T []byte
	H0   int
	// Tag identifies the request; responses arrive out of order and are
	// rearranged by the consumer (the paper's post-process stage).
	Tag int
}

// Response carries one extension result back to the host.
type Response struct {
	Tag int
	Res align.ExtendResult
	// Rerun marks results recomputed on the host because the device's
	// optimality checks failed.
	Rerun bool
}

// Config tunes the simulated platform.
type Config struct {
	// Band is the device's one-sided narrow band.
	Band int
	// Scoring is the affine scheme.
	Scoring align.Scoring
	// BatchSize is the number of extensions per device batch.
	BatchSize int
	// FPGAThreads is the host thread pool driving the device.
	FPGAThreads int
	// TimeScale multiplies modeled device/DMA nanoseconds into wall
	// nanoseconds (1 = real-time model; larger values make the
	// simulation observable in tests).
	TimeScale float64
	// DMABandwidthBytesPerNs is the modeled XDMA bandwidth (PCIe x16:
	// ~16 GB/s = 16 bytes/ns).
	DMABandwidthBytesPerNs float64
}

// DefaultConfig mirrors the paper's deployment shape.
func DefaultConfig() Config {
	return Config{
		Band: 20, Scoring: align.DefaultScoring(),
		BatchSize: 256, FPGAThreads: 4,
		TimeScale: 1, DMABandwidthBytesPerNs: 16,
	}
}

// Device is the simulated FPGA: one batch in flight at a time (the state
// lock of §V-B), check-workflow functional behaviour, modeled latency.
type Device struct {
	cfg Config
	sim fpga.Config
	// mu is the FPGA state lock an FPGA thread must hold from
	// batch_start to batch_done.
	mu sync.Mutex
	// Stats from the device's check workflow.
	Stats *core.Stats
	// BatchesRun counts processed batches.
	BatchesRun int64
}

// NewDevice builds the simulated device.
func NewDevice(cfg Config) *Device {
	return &Device{cfg: cfg, sim: fpga.DefaultSeedEx(), Stats: core.NewStats()}
}

// compute produces the batch's functional results via the SeedEx check
// workflow, plus the job shapes for the latency model. In the real
// system this happens inside the silicon; in the simulation it is host
// CPU work, so it runs *outside* the modeled timeline (before the device
// lock), keeping the timing model clean.
func (d *Device) compute(reqs []Request) ([]Response, []fpga.Job) {
	ccfg := core.Config{Band: d.cfg.Band, Scoring: d.cfg.Scoring, Kind: core.SemiGlobal, Mode: core.ModeStrict}
	out := make([]Response, len(reqs))
	jobs := make([]fpga.Job, len(reqs))
	for i, r := range reqs {
		res, rep := core.Check(r.Q, r.T, r.H0, ccfg)
		d.Stats.Record(rep)
		out[i] = Response{Tag: r.Tag, Res: res, Rerun: !rep.Pass}
		jobs[i] = fpga.Job{QLen: len(r.Q), TLen: len(r.T), NeedsEdit: rep.EditRan, Rerun: !rep.Pass}
	}
	return out, jobs
}

// occupy holds the device for the modeled batch latency (the
// batch_start .. batch_done window). The caller must hold the lock.
func (d *Device) occupy(jobs []fpga.Job) {
	rep := fpga.Simulate(d.sim, jobs)
	sleepScaled(float64(rep.Cycles)*hw.ClockNs, d.cfg.TimeScale)
	d.BatchesRun++
}

// Run drives all requests through the platform and returns responses in
// request order (rearranged from out-of-order completion). The returned
// results are bit-identical to full-band extension: passing checks
// guarantee it, failing checks trigger host reruns here.
func Run(cfg Config, dev *Device, reqs []Request) []Response {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.FPGAThreads <= 0 {
		cfg.FPGAThreads = 1
	}
	type batch struct {
		reqs  []Request
		bytes int
	}
	batches := make(chan batch)
	go func() { // the seeding stage's batching producer
		defer close(batches)
		for lo := 0; lo < len(reqs); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(reqs) {
				hi = len(reqs)
			}
			b := batch{reqs: reqs[lo:hi]}
			for _, r := range b.reqs {
				b.bytes += (len(r.Q)+len(r.T))*3/8 + 16
			}
			batches <- b
		}
	}()

	out := make([]Response, len(reqs))
	var dma sync.Mutex // XDMA channels shared by all FPGA threads
	var wg sync.WaitGroup
	for w := 0; w < cfg.FPGAThreads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range batches {
				// Functional mirror of the silicon (untimed, see
				// Device.compute).
				resps, jobs := dev.compute(b.reqs)
				// 1. Package + DMA the inputs to device DRAM.
				dma.Lock()
				sleepScaled(float64(b.bytes)/cfg.DMABandwidthBytesPerNs, cfg.TimeScale)
				dma.Unlock()
				// 2-4. Acquire the device, batch_start .. batch_done.
				dev.mu.Lock()
				dev.occupy(jobs)
				dev.mu.Unlock()
				// 5. Retrieve results (5:1 coalesced lines) and rerun
				// failures on the host, overlapped with other threads'
				// device time.
				dma.Lock()
				sleepScaled(float64(len(b.reqs)*64/5)/cfg.DMABandwidthBytesPerNs, cfg.TimeScale)
				dma.Unlock()
				for i, r := range resps {
					if r.Rerun {
						r.Res = align.Extend(b.reqs[i].Q, b.reqs[i].T, b.reqs[i].H0, cfg.Scoring)
						resps[i] = r
					}
					out[r.Tag] = resps[i]
				}
			}
		}()
	}
	wg.Wait()
	return out
}

func sleepScaled(ns float64, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	d := time.Duration(ns * scale)
	if d > 0 {
		time.Sleep(d)
	}
}

// Package driver models the SeedEx host-FPGA integration of §V-B and
// Figure 12 with real concurrency: seeding threads produce extension
// batches into a queue; a pool of FPGA threads packages each batch,
// DMAs it to device DRAM over a shared XDMA channel, acquires the device
// lock, issues batch_start over the OCL channel, polls for batch_done,
// retrieves results, and performs the host reruns for extensions whose
// optimality checks failed. Multiple FPGA threads interleave so the DMA
// and host post-processing of one batch overlap the device compute of
// another, exactly the latency-concealment strategy the paper describes.
//
// The device itself is simulated: functionally it runs the SeedEx check
// workflow per extension (narrow band + checks), and its batch latency
// comes from the discrete-event system model in internal/fpga scaled to
// a configurable wall-clock factor.
package driver

import (
	"sync"
	"sync/atomic"
	"time"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/fpga"
	"seedex/internal/hw"
)

// Request is one seed extension offered to the accelerator. Responses
// arrive out of order (identified by Tag) and are rearranged by the
// consumer (the paper's post-process stage). It is the batch-API request
// type of internal/core, so batches flow into core.Checker.ExtendBatch
// without conversion.
type Request = core.Request

// Response carries one extension result back to the host; Rerun marks
// results recomputed on the host because the device's optimality checks
// failed.
type Response = core.Response

// Config tunes the simulated platform.
type Config struct {
	// Band is the device's one-sided narrow band.
	Band int
	// Scoring is the affine scheme.
	Scoring align.Scoring
	// BatchSize is the number of extensions per device batch.
	BatchSize int
	// FPGAThreads is the host thread pool driving the device.
	FPGAThreads int
	// TimeScale multiplies modeled device/DMA nanoseconds into wall
	// nanoseconds (1 = real-time model; larger values make the
	// simulation observable in tests).
	TimeScale float64
	// DMABandwidthBytesPerNs is the modeled XDMA bandwidth (PCIe x16:
	// ~16 GB/s = 16 bytes/ns).
	DMABandwidthBytesPerNs float64
}

// DefaultConfig mirrors the paper's deployment shape.
func DefaultConfig() Config {
	return Config{
		Band: 20, Scoring: align.DefaultScoring(),
		BatchSize: 256, FPGAThreads: 4,
		TimeScale: 1, DMABandwidthBytesPerNs: 16,
	}
}

// Device is the simulated FPGA: one batch in flight at a time (the state
// lock of §V-B), check-workflow functional behaviour, modeled latency.
type Device struct {
	cfg Config
	sim fpga.Config
	// mu is the FPGA state lock an FPGA thread must hold from
	// batch_start to batch_done.
	mu sync.Mutex
	// Stats from the device's check workflow.
	Stats *core.Stats
	// BatchesRun counts processed batches.
	BatchesRun int64
	// HostReruns counts extensions recomputed on the host because their
	// optimality checks failed.
	HostReruns atomic.Int64
	// OverlappedReruns counts host reruns that executed while the device
	// was busy with another thread's batch — the latency-concealment
	// overlap of §V-B made observable.
	OverlappedReruns atomic.Int64
	// busy is 1 while a batch occupies the device (batch_start ..
	// batch_done).
	busy atomic.Int32
}

// NewDevice builds the simulated device.
func NewDevice(cfg Config) *Device {
	return &Device{cfg: cfg, sim: fpga.DefaultSeedEx(), Stats: core.NewStats()}
}

// Checker mints a per-thread check session configured like the device.
// Each FPGA thread holds one for its lifetime: the banded kernel, the
// edit machine and the host rerun all reuse its scratch.
func (d *Device) Checker() *core.Checker {
	return core.NewChecker(core.Config{Band: d.cfg.Band, Scoring: d.cfg.Scoring, Kind: core.SemiGlobal, Mode: core.ModeStrict})
}

// compute produces the batch's functional results via the SeedEx check
// workflow, plus the job shapes for the latency model. In the real
// system this happens inside the silicon; in the simulation it is host
// CPU work, so it runs *outside* the modeled timeline (before the device
// lock), keeping the timing model clean. Results and jobs reuse the
// caller's buffers; reruns are NOT performed here (step 5 of Run does
// them, overlapped with other threads' device time).
func (d *Device) compute(chk *core.Checker, reqs []Request, out []Response, jobs []fpga.Job) ([]Response, []fpga.Job) {
	if cap(out) < len(reqs) {
		out = make([]Response, len(reqs))
	}
	out = out[:len(reqs)]
	if cap(jobs) < len(reqs) {
		jobs = make([]fpga.Job, len(reqs))
	}
	jobs = jobs[:len(reqs)]
	// One packed (SWAR) kernel invocation covers the whole batch's banded
	// extensions — the software mirror of the systolic cores chewing a DMA
	// batch in parallel — followed by the per-extension optimality checks.
	out, reps := chk.CheckBatch(reqs, out)
	for i, r := range reqs {
		d.Stats.Record(reps[i])
		jobs[i] = fpga.Job{QLen: len(r.Q), TLen: len(r.T), NeedsEdit: reps[i].EditRan, Rerun: !reps[i].Pass}
	}
	return out, jobs
}

// occupy holds the device for the modeled batch latency (the
// batch_start .. batch_done window). The caller must hold the lock.
func (d *Device) occupy(jobs []fpga.Job) {
	d.busy.Store(1)
	rep := fpga.Simulate(d.sim, jobs)
	sleepScaled(float64(rep.Cycles)*hw.ClockNs, d.cfg.TimeScale)
	d.BatchesRun++
	d.busy.Store(0)
}

// Run drives all requests through the platform and returns responses in
// request order (rearranged from out-of-order completion). The returned
// results are bit-identical to full-band extension: passing checks
// guarantee it, failing checks trigger host reruns here.
func Run(cfg Config, dev *Device, reqs []Request) []Response {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.FPGAThreads <= 0 {
		cfg.FPGAThreads = 1
	}
	type batch struct {
		reqs  []Request
		bytes int
	}
	batches := make(chan batch)
	go func() { // the seeding stage's batching producer
		defer close(batches)
		for lo := 0; lo < len(reqs); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(reqs) {
				hi = len(reqs)
			}
			b := batch{reqs: reqs[lo:hi]}
			for _, r := range b.reqs {
				b.bytes += (len(r.Q)+len(r.T))*3/8 + 16
			}
			batches <- b
		}
	}()

	out := make([]Response, len(reqs))
	var dma sync.Mutex // XDMA channels shared by all FPGA threads
	var wg sync.WaitGroup
	for w := 0; w < cfg.FPGAThreads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-thread session: one checker (banded kernel + edit
			// machine + rerun scratch) and reusable response/job buffers
			// for this thread's lifetime.
			chk := dev.Checker()
			var resps []Response
			var jobs []fpga.Job
			for b := range batches {
				// Functional mirror of the silicon (untimed, see
				// Device.compute).
				resps, jobs = dev.compute(chk, b.reqs, resps, jobs)
				// 1. Package + DMA the inputs to device DRAM.
				dma.Lock()
				sleepScaled(float64(b.bytes)/cfg.DMABandwidthBytesPerNs, cfg.TimeScale)
				dma.Unlock()
				// 2-4. Acquire the device, batch_start .. batch_done.
				dev.mu.Lock()
				dev.occupy(jobs)
				dev.mu.Unlock()
				// 5. Retrieve results (5:1 coalesced lines). Only the
				// retrieval itself holds the DMA channel.
				dma.Lock()
				sleepScaled(float64(len(b.reqs)*64/5)/cfg.DMABandwidthBytesPerNs, cfg.TimeScale)
				dma.Unlock()
				// Host reruns execute outside every lock, so they overlap
				// other threads' DMA and device time; the checker's
				// workspace makes each rerun allocation-free.
				for i := range resps {
					if resps[i].Rerun {
						resps[i].Res = chk.Rerun(b.reqs[i].Q, b.reqs[i].T, b.reqs[i].H0)
						dev.HostReruns.Add(1)
						if dev.busy.Load() != 0 {
							dev.OverlappedReruns.Add(1)
						}
					}
					out[resps[i].Tag] = resps[i]
				}
			}
		}()
	}
	wg.Wait()
	return out
}

func sleepScaled(ns float64, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	d := time.Duration(ns * scale)
	if d > 0 {
		time.Sleep(d)
	}
}

// Package driver models the SeedEx host-FPGA integration of §V-B and
// Figure 12 with real concurrency: seeding threads produce extension
// batches into a queue; a pool of FPGA threads packages each batch,
// DMAs it to device DRAM over a shared XDMA channel, acquires the device
// lock, issues batch_start over the OCL channel, polls for batch_done,
// retrieves results, and performs the host reruns for extensions whose
// optimality checks failed. Multiple FPGA threads interleave so the DMA
// and host post-processing of one batch overlap the device compute of
// another, exactly the latency-concealment strategy the paper describes.
//
// The device itself is simulated: functionally it runs the SeedEx check
// workflow per extension (narrow band + checks), and its batch latency
// comes from the discrete-event system model in internal/fpga scaled to
// a configurable wall-clock factor.
//
// The driver treats the device as untrusted hardware. Every response
// carries an integrity word stamped at batch_done, and the retrieval path
// cross-checks count, IDs, integrity words and score sanity against the
// request metadata; anything that fails validation is contained into the
// host full-band rerun the workflow already budgets for, so results stay
// bit-identical to the full-band oracle under any fault (see
// internal/faults for the injectable fault classes). Batch-level failures
// (deadline expiry, whole-core failure) retry under a bounded
// attempt/backoff budget, and a sliding-window circuit breaker degrades
// the platform into host-only full-band mode when the device misbehaves
// persistently, probing it back in once it recovers.
package driver

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/faults"
	"seedex/internal/fpga"
	"seedex/internal/hw"
	"seedex/internal/obs"
)

// Request is one seed extension offered to the accelerator. Responses
// arrive out of order (identified by Tag) and are rearranged by the
// consumer (the paper's post-process stage). It is the batch-API request
// type of internal/core, so batches flow into core.Checker.ExtendBatch
// without conversion.
type Request = core.Request

// Response carries one extension result back to the host; Rerun marks
// results recomputed on the host — because the device's optimality checks
// failed, or because the device response failed integrity validation.
type Response = core.Response

// Batch-level device failures, surfaced by the retry loop.
var (
	// ErrDeviceTimeout: batch_done did not arrive within DeviceTimeout.
	ErrDeviceTimeout = errors.New("driver: device batch deadline exceeded")
	// ErrCoreFailure: the device aborted the batch (whole-core failure).
	ErrCoreFailure = errors.New("driver: device core failure")
)

// Config tunes the simulated platform.
type Config struct {
	// Band is the device's one-sided narrow band.
	Band int
	// Scoring is the affine scheme.
	Scoring align.Scoring
	// BatchSize is the number of extensions per device batch.
	BatchSize int
	// FPGAThreads is the host thread pool driving the device.
	FPGAThreads int
	// TimeScale multiplies modeled device/DMA nanoseconds into wall
	// nanoseconds (1 = real-time model; larger values make the
	// simulation observable in tests).
	TimeScale float64
	// DMABandwidthBytesPerNs is the modeled XDMA bandwidth (PCIe x16:
	// ~16 GB/s = 16 bytes/ns).
	DMABandwidthBytesPerNs float64

	// Faults configures the chaos injector (zero = no injection; the
	// validation and containment layers stay active either way).
	Faults faults.Config
	// DeviceTimeout is the per-batch wall-clock deadline from batch_start
	// to batch_done (0 disables the deadline).
	DeviceTimeout time.Duration
	// MaxAttempts bounds device attempts per batch (deadline expiries and
	// core failures retry; default 3). When the budget runs out the whole
	// batch falls back to host full-band extension.
	MaxAttempts int
	// RetryBackoff is the base of the exponential backoff between
	// attempts (default 100µs; attempt k waits RetryBackoff << k).
	RetryBackoff time.Duration
	// Breaker tunes the degradation circuit breaker (zero fields take the
	// faults.BreakerConfig defaults).
	Breaker faults.BreakerConfig
}

// DefaultConfig mirrors the paper's deployment shape.
func DefaultConfig() Config {
	return Config{
		Band: 20, Scoring: align.DefaultScoring(),
		BatchSize: 256, FPGAThreads: 4,
		TimeScale: 1, DMABandwidthBytesPerNs: 16,
		MaxAttempts: 3, RetryBackoff: 100 * time.Microsecond,
	}
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.FPGAThreads <= 0 {
		c.FPGAThreads = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Microsecond
	}
	return c
}

// Device is the simulated FPGA: one batch in flight at a time (the state
// lock of §V-B), check-workflow functional behaviour, modeled latency,
// plus the fault-tolerance state shared by every thread driving it (chaos
// injector, circuit breaker, shared DMA channel).
type Device struct {
	cfg Config
	sim fpga.Config
	// mu is the FPGA state lock an FPGA thread must hold from
	// batch_start to batch_done.
	mu sync.Mutex
	// dma is the shared XDMA channel every FPGA thread transfers over.
	dma sync.Mutex
	// inj draws deterministic fault decisions (silent when Faults is
	// zero).
	inj *faults.Injector
	// brk degrades the platform to host-only mode under sustained device
	// misbehaviour.
	brk *faults.Breaker
	// Stats from the device's check workflow and the fault-containment
	// layer.
	Stats *core.Stats
	// Trace, when non-nil, records device-level spans (batch attempts,
	// retry backoffs, host reruns) into the observability tracer. Batch
	// spans are always retained (they are low-rate), keyed by the batch
	// sequence so a Chrome export shows the device timeline alongside
	// request spans.
	Trace *obs.Tracer
	// BatchesRun counts batches the device completed (failed attempts and
	// host-only batches are not counted).
	BatchesRun int64
	// HostReruns counts extensions recomputed on the host because their
	// optimality checks failed or their device response failed
	// validation.
	HostReruns atomic.Int64
	// OverlappedReruns counts host reruns that executed while the device
	// was busy with another thread's batch — the latency-concealment
	// overlap of §V-B made observable.
	OverlappedReruns atomic.Int64
	// busy is 1 while a batch occupies the device (batch_start ..
	// batch_done).
	busy atomic.Int32
	// seq keys dynamically formed batches (the Engine path) for the
	// injector.
	seq atomic.Int64
}

// NewDevice builds the simulated device.
func NewDevice(cfg Config) *Device {
	cfg = cfg.withDefaults()
	return &Device{
		cfg:   cfg,
		sim:   fpga.DefaultSeedEx(),
		inj:   faults.NewInjector(cfg.Faults),
		brk:   faults.NewBreaker(cfg.Breaker),
		Stats: core.NewStats(),
	}
}

// Injector exposes the chaos injector (rates are live-tunable).
func (d *Device) Injector() *faults.Injector { return d.inj }

// Breaker exposes the degradation circuit breaker.
func (d *Device) Breaker() *faults.Breaker { return d.brk }

// Health snapshots the fault-tolerance status for /metrics and /healthz.
func (d *Device) Health() faults.Health {
	st := d.brk.State()
	return faults.Health{
		Breaker:  st.String(),
		Degraded: st != faults.Closed,
		Injected: d.inj.Counters(),
		Detected: d.Stats.DeviceFaults.Load(),
		Retries:  d.Stats.DeviceRetries.Load(),
		Trips:    d.Stats.BreakerTrips.Load(),
		HostOnly: d.Stats.HostOnly.Load(),
	}
}

// Checker mints a per-thread check session configured like the device.
// Each FPGA thread holds one for its lifetime: the banded kernel, the
// edit machine and the host rerun all reuse its scratch.
func (d *Device) Checker() *core.Checker {
	return core.NewChecker(core.Config{Band: d.cfg.Band, Scoring: d.cfg.Scoring, Kind: core.SemiGlobal, Mode: core.ModeStrict})
}

// compute produces the batch's functional results via the SeedEx check
// workflow, plus the job shapes for the latency model. In the real
// system this happens inside the silicon; in the simulation it is host
// CPU work, so it runs *outside* the modeled timeline (before the device
// lock), keeping the timing model clean. Results and jobs reuse the
// caller's buffers; reruns are NOT performed here (the post-retrieval
// step does them, overlapped with other threads' device time).
func (d *Device) compute(chk *core.Checker, reqs []Request, out []Response, jobs []fpga.Job) ([]Response, []fpga.Job) {
	if cap(out) < len(reqs) {
		out = make([]Response, len(reqs))
	}
	out = out[:len(reqs)]
	if cap(jobs) < len(reqs) {
		jobs = make([]fpga.Job, len(reqs))
	}
	jobs = jobs[:len(reqs)]
	// One packed (SWAR) kernel invocation covers the whole batch's banded
	// extensions — the software mirror of the systolic cores chewing a DMA
	// batch in parallel — followed by the per-extension optimality checks.
	out, reps := chk.CheckBatch(reqs, out)
	for i, r := range reqs {
		d.Stats.Record(reps[i])
		jobs[i] = fpga.Job{QLen: len(r.Q), TLen: len(r.T), NeedsEdit: reps[i].EditRan, Rerun: !reps[i].Pass}
	}
	return out, jobs
}

// dmaHold occupies the shared XDMA channel for ns modeled nanoseconds.
func (d *Device) dmaHold(ctx context.Context, ns float64) error {
	d.dma.Lock()
	defer d.dma.Unlock()
	return sleepCtx(ctx, scaled(ns, d.cfg.TimeScale))
}

// occupy holds the device for the modeled batch latency (the
// batch_start .. batch_done window), plus any injected stall. The caller
// must hold the state lock. With a DeviceTimeout configured, a batch
// whose (stalled) latency exceeds it holds the device until the deadline
// and reports ErrDeviceTimeout — batch_done was never observed. A
// core-failed batch spends its device time but aborts at batch_done;
// only completed batches count in BatchesRun.
func (d *Device) occupy(ctx context.Context, jobs []fpga.Job, plan faults.Plan) error {
	d.busy.Store(1)
	defer d.busy.Store(0)
	rep := fpga.Simulate(d.sim, jobs)
	dur := scaled(float64(rep.Cycles)*hw.ClockNs, d.cfg.TimeScale) + plan.Stall
	if dl := d.cfg.DeviceTimeout; dl > 0 && dur > dl {
		if err := sleepCtx(ctx, dl); err != nil {
			return err
		}
		return ErrDeviceTimeout
	}
	if err := sleepCtx(ctx, dur); err != nil {
		return err
	}
	if plan.CoreFail {
		return ErrCoreFailure
	}
	d.BatchesRun++
	return nil
}

// transact is one device attempt for a batch: input DMA, batch_start ..
// batch_done under the state lock (with any injected stall or core
// failure), and result retrieval over the coalesced output lines.
func (d *Device) transact(ctx context.Context, inBytes, nResp int, jobs []fpga.Job, plan faults.Plan) error {
	// 1. Package + DMA the inputs to device DRAM.
	if err := d.dmaHold(ctx, float64(inBytes)/d.cfg.DMABandwidthBytesPerNs); err != nil {
		return err
	}
	// 2-4. Acquire the device, batch_start .. batch_done.
	d.mu.Lock()
	err := d.occupy(ctx, jobs, plan)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	// 5. Retrieve results (5:1 coalesced lines). Only the retrieval
	// itself holds the DMA channel.
	return d.dmaHold(ctx, float64(nResp*64/5)/d.cfg.DMABandwidthBytesPerNs)
}

// session is one FPGA thread's lifetime state: a check session plus the
// reusable batch buffers for honest results, wire-format responses and
// validation scratch.
type session struct {
	dev     *Device
	chk     *core.Checker
	resps   []Response
	jobs    []fpga.Job
	wire    []wireResp
	tagIdx  map[int]int
	covered []bool
	present []bool
}

func (d *Device) newSession() *session {
	return &session{dev: d, chk: d.Checker(), tagIdx: make(map[int]int)}
}

// process drives one batch through the platform with full fault
// tolerance and writes one validated, rerun-completed Response per
// request into dst (parallel to reqs; dst must have len(reqs) entries).
// key identifies the batch to the chaos injector. The only error returned
// is ctx's: every device misbehaviour is contained into host compute.
func (s *session) process(ctx context.Context, key int64, reqs []Request, dst []Response) error {
	d := s.dev
	if len(reqs) == 0 {
		return ctx.Err()
	}
	ref := d.Trace.Batch(key)
	if !d.brk.Allow() {
		// Degraded mode: the breaker holds the device out of the path.
		d.Stats.HostOnly.Add(int64(len(reqs)))
		t0 := time.Now()
		s.hostAll(reqs, dst)
		ref.Span(obs.KindRerun, t0, time.Since(t0), int64(core.OutcomeUnknown), int64(len(reqs)))
		return ctx.Err()
	}
	// Functional mirror of the silicon (untimed, see Device.compute);
	// retries re-transfer and re-time the batch but the honest results
	// are computed — and the check stats recorded — exactly once.
	s.resps, s.jobs = d.compute(s.chk, reqs, s.resps, s.jobs)
	inBytes := 0
	for _, r := range reqs {
		inBytes += (len(r.Q)+len(r.T))*3/8 + 16
	}

	ok := false
	for attempt := 0; attempt < d.cfg.MaxAttempts; attempt++ {
		plan := d.inj.BatchPlan(key, int64(attempt), len(s.resps))
		// Stamp integrity words over the honest responses, then let the
		// plan corrupt the in-flight copy (post-stamp: wire faults).
		s.wire = stampWire(s.resps, s.wire)
		applyPlan(plan, s.wire)
		s.wire = applyDrops(plan, s.wire)
		t0 := time.Now()
		err := d.transact(ctx, inBytes, len(reqs), s.jobs, plan)
		ref.Span(obs.KindDevice, t0, time.Since(t0), int64(attempt), int64(len(reqs)))
		if err == nil {
			ok = true
			break
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// Batch-level failure: deadline expiry or whole-core failure.
		d.Stats.DeviceRetries.Add(1)
		if d.brk.Record(false) {
			d.Stats.BreakerTrips.Add(1)
		}
		if attempt+1 >= d.cfg.MaxAttempts || !d.brk.Allow() {
			break
		}
		b0 := time.Now()
		if err := sleepCtx(ctx, d.cfg.RetryBackoff<<attempt); err != nil {
			return err
		}
		ref.Span(obs.KindRetry, b0, time.Since(b0), int64(attempt), 0)
	}
	if !ok {
		// Retry budget exhausted (or the breaker tripped mid-retry): the
		// batch degrades into exactly the host full-band rerun the paper
		// budgets for.
		d.Stats.HostOnly.Add(int64(len(reqs)))
		t0 := time.Now()
		s.hostAll(reqs, dst)
		ref.Span(obs.KindRerun, t0, time.Since(t0), int64(core.OutcomeUnknown), int64(len(reqs)))
		return ctx.Err()
	}

	// Validate the retrieved batch against the request metadata and
	// deliver; anything unproven reruns on the host. Reruns execute
	// outside every lock, so they overlap other threads' DMA and device
	// time; the checker's workspace makes each rerun allocation-free.
	bad := s.validate(reqs, dst)
	if bad > 0 {
		d.Stats.DeviceFaults.Add(int64(bad))
	}
	if d.brk.Record(bad == 0) {
		d.Stats.BreakerTrips.Add(1)
	}
	for i := range dst {
		if dst[i].Rerun {
			r0 := time.Now()
			dst[i].Res = s.chk.Rerun(reqs[i].Q, reqs[i].T, reqs[i].H0)
			ref.Span(obs.KindRerun, r0, time.Since(r0), int64(dst[i].Outcome), 1)
			d.HostReruns.Add(1)
			if d.busy.Load() != 0 {
				d.OverlappedReruns.Add(1)
			}
		}
	}
	return ctx.Err()
}

// hostAll serves the whole batch with the host full-band kernel.
func (s *session) hostAll(reqs []Request, dst []Response) {
	for i, r := range reqs {
		dst[i] = Response{Tag: r.Tag, Res: s.chk.Rerun(r.Q, r.T, r.H0), Rerun: true, Outcome: core.OutcomeUnknown}
	}
}

// Run drives all requests through the platform and returns responses in
// request order (rearranged from out-of-order completion). The returned
// results are bit-identical to full-band extension: passing checks
// guarantee it; failing checks, detected device faults and degraded-mode
// batches all route through host reruns here.
func Run(cfg Config, dev *Device, reqs []Request) []Response {
	out, _ := RunContext(context.Background(), cfg, dev, reqs)
	return out
}

// Run is RunContext with the device's own configuration: the method form
// front-ends use for cancellable batch runs.
func (d *Device) Run(ctx context.Context, reqs []Request) ([]Response, error) {
	return RunContext(ctx, d.cfg, d, reqs)
}

// RunContext is Run with cancellation: when ctx is cancelled the
// producer stops feeding batches, in-flight device waits and retry
// backoffs abort, and the call returns promptly with ctx's error (the
// partial output is returned but unfinished entries are zero-valued).
func RunContext(ctx context.Context, cfg Config, dev *Device, reqs []Request) ([]Response, error) {
	cfg = cfg.withDefaults()
	reqs = binSorted(reqs, cfg)
	type batch struct {
		key  int
		reqs []Request
	}
	batches := make(chan batch)
	go func() { // the seeding stage's batching producer
		defer close(batches)
		for lo := 0; lo < len(reqs); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(reqs) {
				hi = len(reqs)
			}
			select {
			case batches <- batch{key: lo / cfg.BatchSize, reqs: reqs[lo:hi]}:
			case <-ctx.Done():
				return
			}
		}
	}()

	out := make([]Response, len(reqs))
	var wg sync.WaitGroup
	for w := 0; w < cfg.FPGAThreads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-thread session: one checker (banded kernel + edit
			// machine + rerun scratch) and reusable response/job buffers
			// for this thread's lifetime.
			s := dev.newSession()
			dst := make([]Response, cfg.BatchSize)
			for b := range batches {
				if ctx.Err() != nil {
					continue // drain the channel, abort promptly
				}
				dst = dst[:len(b.reqs)]
				if err := s.process(ctx, int64(b.key), b.reqs, dst); err != nil {
					continue
				}
				for i := range dst {
					out[dst[i].Tag] = dst[i]
				}
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// binSorted returns the requests reordered by kernel shape bin so that
// each fixed-size batch cut by the producer packs near-homogeneous SWAR
// lane groups (cross-batch scheduling): without it, a mixed workload
// scatters short and long problems across every batch and each batch pays
// for its longest shapes. The sort is stable on the input order (batch
// composition, and therefore fault-injection replay, stays deterministic)
// and works on a copy — responses find their output slot through Tag, so
// the feeding order is free. A single batch is left untouched: binning
// inside one batch is the kernel sort's job.
func binSorted(reqs []Request, cfg Config) []Request {
	if len(reqs) <= cfg.BatchSize {
		return reqs
	}
	// Stable counting sort over the (small) bin alphabet: one ShapeBin
	// call per request, O(n) placement.
	keys := make([]uint8, len(reqs))
	var count [align.NumShapeBins + 1]int
	for i := range reqs {
		r := &reqs[i]
		k := align.ShapeBin(len(r.Q), len(r.T), r.H0, cfg.Scoring)
		keys[i] = uint8(k)
		count[k+1]++
	}
	for k := 1; k <= align.NumShapeBins; k++ {
		count[k] += count[k-1]
	}
	binned := make([]Request, len(reqs))
	for i := range reqs {
		binned[count[keys[i]]] = reqs[i]
		count[keys[i]]++
	}
	return binned
}

// scaled converts modeled nanoseconds into a wall-clock duration.
func scaled(ns float64, scale float64) time.Duration {
	if scale <= 0 {
		scale = 1
	}
	return time.Duration(ns * scale)
}

// sleepCtx sleeps for d, aborting early when ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSeries(rng *rand.Rand, n int, drift float64) []float64 {
	out := make([]float64, n)
	v := rng.Float64() * 10
	for i := range out {
		v += rng.NormFloat64() * drift
		out[i] = v
	}
	return out
}

// warp produces a time-warped copy of x (random repeats/skips) plus noise.
func warp(rng *rand.Rand, x []float64, noise float64) []float64 {
	var out []float64
	for _, v := range x {
		r := rng.Float64()
		switch {
		case r < 0.1: // skip
		case r < 0.2: // repeat
			out = append(out, v+rng.NormFloat64()*noise, v+rng.NormFloat64()*noise)
		default:
			out = append(out, v+rng.NormFloat64()*noise)
		}
	}
	if len(out) == 0 {
		out = []float64{x[0]}
	}
	return out
}

func TestFullBasics(t *testing.T) {
	x := []float64{1, 2, 3}
	if got := Full(x, x).Cost; got != 0 {
		t.Fatalf("identical series must cost 0, got %v", got)
	}
	if got := Full([]float64{0}, []float64{5}).Cost; got != 5 {
		t.Fatalf("single-point cost %v, want 5", got)
	}
	if !math.IsInf(Full(nil, x).Cost, 1) {
		t.Fatal("empty series must be infeasible")
	}
}

func TestWideBandEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x := randSeries(rng, 5+rng.Intn(40), 1)
		y := warp(rng, x, 0.1)
		w := len(x) + len(y)
		if got, want := Banded(x, y, w).Cost, Full(x, y).Cost; math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: wide band %v != full %v", trial, got, want)
		}
	}
}

// TestCheckSoundness is the DTW analogue of the SeedEx invariant: a
// passing check means the banded cost is the true optimum.
func TestCheckSoundness(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randSeries(rng, 3+rng.Intn(40), 1)
		var y []float64
		if rng.Intn(3) == 0 {
			y = randSeries(rng, 3+rng.Intn(40), 1) // unrelated
		} else {
			y = warp(rng, x, 0.2)
		}
		w := int(wRaw)%15 + 1
		res, rep := Check(x, y, w)
		if !rep.Pass {
			return true
		}
		full := Full(x, y)
		if math.Abs(res.Cost-full.Cost) > 1e-9 {
			t.Logf("seed=%d w=%d: banded %v != full %v (bound %v)", seed, w, res.Cost, full.Cost, rep.ExitBound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckedAlwaysOptimal: the check+rerun combination always yields the
// full-DTW cost.
func TestCheckedAlwaysOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	reruns := 0
	for trial := 0; trial < 300; trial++ {
		x := randSeries(rng, 5+rng.Intn(50), 1)
		y := warp(rng, x, 0.3)
		res, rep := Checked(x, y, 4)
		if rep.Rerun {
			reruns++
		}
		if want := Full(x, y).Cost; math.Abs(res.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: checked %v != full %v", trial, res.Cost, want)
		}
	}
	t.Logf("reruns: %d/300", reruns)
}

// TestNarrowBandSavesWork: on well-aligned series the checked banded run
// passes and computes far fewer cells than the full matrix.
func TestNarrowBandSavesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	passes, cellsSaved := 0, 0
	for trial := 0; trial < 100; trial++ {
		x := randSeries(rng, 100, 1)
		y := make([]float64, 100)
		for i := range y {
			y[i] = x[i] + rng.NormFloat64()*0.01
		}
		res, rep := Check(x, y, 6)
		if rep.Pass {
			passes++
			if full := Full(x, y); res.Cells < full.Cells/2 {
				cellsSaved++
			}
		}
	}
	if passes < 80 {
		t.Fatalf("check passed only %d/100 on near-identical series", passes)
	}
	if cellsSaved < passes*9/10 {
		t.Fatalf("banded run did not save work: %d/%d", cellsSaved, passes)
	}
}

func TestFullCoverBand(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{1, 2, 3}
	_, rep := Check(x, y, 10)
	if !rep.Pass {
		t.Fatal("full-cover band must pass")
	}
}

// Package dtw applies the SeedEx speculation-and-test idea to Dynamic
// Time Warping, the first of the paper's §VII-D "other applications": DP
// problems whose calculation has locality in one dimension.
//
// Banded (Sakoe-Chiba) DTW computes only cells with |i−j| <= w. SeedEx's
// insight transplants directly: capture the accumulated costs at the
// band's boundary cells and bound every path that leaves the band by its
// boundary cost plus an admissible lower bound on the rows it still has
// to visit. If every such exit bound is at least the banded cost, no
// warping path outside the band can be cheaper, and the banded result is
// provably optimal — without ever filling the full matrix. Failed checks
// fall back to a full-matrix rerun, mirroring the SeedEx host rerun.
package dtw

import "math"

// Dist is the local cost between two samples.
func dist(a, b float64) float64 { return math.Abs(a - b) }

// Result is one DTW evaluation.
type Result struct {
	// Cost is the optimal accumulated warping cost (within the band for
	// banded runs).
	Cost float64
	// Cells counts DP cells evaluated.
	Cells int64
}

// Full computes unconstrained DTW between x and y.
func Full(x, y []float64) Result {
	return banded(x, y, -1).Result
}

// bandedState carries the boundary information the checks consume.
type bandedState struct {
	Result
	// exitAbove[i] is the accumulated cost at boundary cell (i, i+w);
	// exitBelow[j] at (j+w, j). +Inf where the boundary does not exist.
	exitAbove, exitBelow []float64
	feasible             bool
}

// Banded computes Sakoe-Chiba banded DTW with one-sided band w.
func Banded(x, y []float64, w int) Result {
	return banded(x, y, w).Result
}

func banded(x, y []float64, w int) bandedState {
	n, m := len(x), len(y)
	st := bandedState{
		exitAbove: make([]float64, n),
		exitBelow: make([]float64, m),
	}
	for i := range st.exitAbove {
		st.exitAbove[i] = math.Inf(1)
	}
	for j := range st.exitBelow {
		st.exitBelow[j] = math.Inf(1)
	}
	if n == 0 || m == 0 {
		st.Cost = math.Inf(1)
		return st
	}
	inf := math.Inf(1)
	prev := make([]float64, m)
	cur := make([]float64, m)
	for j := range prev {
		prev[j] = inf
	}
	for i := 0; i < n; i++ {
		jmin, jmax := 0, m-1
		if w >= 0 {
			if lo := i - w; lo > jmin {
				jmin = lo
			}
			if hi := i + w; hi < jmax {
				jmax = hi
			}
			if jmin > jmax {
				st.Cost = inf
				return st
			}
		}
		for j := 0; j < m; j++ {
			cur[j] = inf
		}
		for j := jmin; j <= jmax; j++ {
			d := dist(x[i], y[j])
			best := inf
			if i == 0 && j == 0 {
				best = 0
			}
			if i > 0 && prev[j] < best {
				best = prev[j]
			}
			if j > 0 && cur[j-1] < best {
				best = cur[j-1]
			}
			if i > 0 && j > 0 && prev[j-1] < best {
				best = prev[j-1]
			}
			if math.IsInf(best, 1) {
				continue
			}
			cur[j] = best + d
			st.Cells++
			if w >= 0 {
				if j-i == w {
					st.exitAbove[i] = cur[j]
				}
				if i-j == w {
					st.exitBelow[j] = cur[j]
				}
			}
		}
		prev, cur = cur, prev
	}
	st.Cost = prev[m-1]
	st.feasible = !math.IsInf(st.Cost, 1)
	return st
}

// Report is the outcome of a checked banded DTW.
type Report struct {
	// Pass is true when the banded cost is provably optimal.
	Pass bool
	// ExitBound is the smallest lower bound over paths leaving the band.
	ExitBound float64
	// Rerun is true when the caller had to fall back to full DTW.
	Rerun bool
}

// rowLB returns, for each row i, an admissible lower bound on the
// cheapest cell in the row: the distance from x[i] to the range of y.
// O(n+m), no matrix sweep needed.
func rowLB(x, y []float64) []float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	out := make([]float64, len(x))
	for i, v := range x {
		switch {
		case v < lo:
			out[i] = lo - v
		case v > hi:
			out[i] = v - hi
		}
	}
	return out
}

// Check computes banded DTW and proves (or fails to prove) its
// optimality: every warping path that leaves the band passes through a
// band boundary cell, whose accumulated cost is known, and must still
// visit every remaining row, each contributing at least its admissible
// row lower bound. If each exit bound is >= the banded cost, no outside
// path can be cheaper.
func Check(x, y []float64, w int) (Result, Report) {
	st := banded(x, y, w)
	rep := Report{ExitBound: math.Inf(1)}
	n := len(x)
	if w >= 0 && w >= n && w >= len(y) {
		rep.Pass = true // band covers the matrix
		return st.Result, rep
	}
	if !st.feasible {
		return st.Result, rep // no in-band path at all: rerun territory
	}
	lb := rowLB(x, y)
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + lb[i]
	}
	// Exits above: from (i, i+w) the path still has rows i+1..n-1 ahead
	// (it may wander in row i first, at non-negative cost).
	for i := 0; i < n; i++ {
		if !math.IsInf(st.exitAbove[i], 1) {
			if b := st.exitAbove[i] + suffix[i+1]; b < rep.ExitBound {
				rep.ExitBound = b
			}
		}
	}
	// Exits below: the boundary cell of column j is (j+w, j), so rows
	// j+w+1..n-1 remain.
	for j := 0; j < len(y); j++ {
		if math.IsInf(st.exitBelow[j], 1) {
			continue
		}
		row := j + w
		if row+1 <= n {
			if b := st.exitBelow[j] + suffix[row+1]; b < rep.ExitBound {
				rep.ExitBound = b
			}
		}
	}
	rep.Pass = rep.ExitBound >= st.Cost
	return st.Result, rep
}

// Checked computes banded DTW with the optimality check, falling back to
// the full computation when the check fails. Its cost always equals
// Full(x, y).Cost.
func Checked(x, y []float64, w int) (Result, Report) {
	res, rep := Check(x, y, w)
	if rep.Pass {
		return res, rep
	}
	rep.Rerun = true
	full := Full(x, y)
	full.Cells += res.Cells
	return full, rep
}

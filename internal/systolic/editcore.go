package systolic

import (
	"seedex/internal/editmachine"
)

// EditCore is the timed model of the SeedEx edit machine (paper §IV-B):
// a half-width array of 3-bit delta-encoded PEs sweeping the below-band
// trapezoid, with one augmentation unit decoding scores along the
// hypotenuse. Functionally it defers to the delta-encoded sweep (which
// is bit-exact against the plain relaxed DP by property test); timing is
// occupancy-based — the array retires up to PEs() region cells per cycle
// along the wavefront, plus pipeline fill and augmentation drain.
type EditCore struct {
	// W is the one-sided band of the BSW cores this edit machine serves;
	// the matched full array would have 2W+1 PEs, the half-width array
	// has W+1.
	W int
}

// PEs returns the half-width processing-element count.
func (e *EditCore) PEs() int { return e.W + 1 }

// EditRun reports one trapezoid sweep.
type EditRun struct {
	// Score is the decoded optimistic region score (score_ed).
	Score int
	// Empty marks a band covering the whole matrix (no region).
	Empty bool
	// Cycles is the modeled latency: fill + ceil(cells/PEs) + drain.
	Cycles int
	// Cells is the number of region cells (3-bit PE evaluations).
	Cells int64
}

// Sweep runs the corner-seeded (S1) region sweep for query/target at the
// core's band, as the check workflow dispatches it.
func (e *EditCore) Sweep(query, target []byte, init int) (EditRun, error) {
	res, err := editmachine.DeltaSweep(query, target, e.W, init, editmachine.CanonicalRelaxed)
	if err != nil {
		return EditRun{}, err
	}
	run := EditRun{Score: res.Score, Empty: res.Empty, Cells: res.Cells}
	if res.Empty {
		return run, nil
	}
	pes := int64(e.PEs())
	occupancy := int((res.Cells + pes - 1) / pes)
	run.Cycles = e.PEs() + occupancy + res.PathLen
	return run, nil
}

// Package systolic is a cycle-level simulator of the SeedEx BSW core
// (paper §IV-A, Figure 8): a systolic array of banded Smith-Waterman
// processing elements marching along the main diagonal of the DP matrix.
//
// The simulator is functional *and* timed:
//
//   - Functionally it reproduces align.ExtendBanded cell-for-cell — PE p
//     owns matrix diagonal d = p − w, cell (i,j) is computed at wavefront
//     cycle i+j, E values travel from PE p−1, F values from PE p+1, and
//     the diagonal H comes from the PE's own registers two activations
//     back. Local/global score accumulators reproduce BWA-MEM's
//     first-in-scan-order tie-breaking.
//   - Timing-wise it charges the progressive score initialization and the
//     shift-register result reduction (both proportional to the PE count)
//     plus one cycle per anti-diagonal, and reports both the latency and
//     the initiation interval used by the throughput models.
//
// It also models the speculative row-termination optimization: a row is
// cut after more than two consecutive dead cells (once the row has been
// live), and an exception is raised if a positive score later flows into
// the cut region from the row above — such extensions are rerun on the
// host, exactly as §IV-A describes.
package systolic

import (
	"seedex/internal/align"
)

// Core is one banded Smith-Waterman systolic array.
type Core struct {
	// W is the one-sided band: the array covers diagonals |i−j| <= W with
	// PEs() = 2W+1 processing elements.
	W int
	// Scoring is the affine scheme wired into the PEs.
	Scoring align.Scoring
	// SpeculativeRowCut enables the hardware row-termination speculation
	// (with its exception flag). Off by default so the core is exactly
	// the banded kernel.
	SpeculativeRowCut bool
}

// PEs returns the processing-element count of the array.
func (c *Core) PEs() int { return 2*c.W + 1 }

// Run is the outcome of streaming one query/target pair through the core.
type Run struct {
	Result   align.ExtendResult
	Boundary align.BandBoundary
	// Cycles is the end-to-end latency: progressive initialization +
	// wavefront sweep + result reduction.
	Cycles int
	// II is the initiation interval: the cycle distance at which the next
	// pair can enter the array (input shift registers reload while the
	// previous result drains).
	II int
	// ActivePE counts PE activations (cells actually computed); the
	// utilization statistic behind the iso-area throughput claims.
	ActivePE int64
	// Exception is set when the speculative row cut clipped a live score;
	// the extension must be rerun on the host.
	Exception bool
}

// pe holds one processing element's registers.
type pe struct {
	lastH int // H of this PE's previously computed cell (the diagonal input)
	eOut  int // E it produced for the cell below (consumed by PE p+1)
	fOut  int // F it produced for the cell to the right (consumed by PE p-1)
}

// Extend streams query/target through the array.
func (c *Core) Extend(query, target []byte, h0 int) Run {
	n, m := len(query), len(target)
	w := c.W
	sc := c.Scoring
	run := Run{Boundary: align.BandBoundary{E: make([]int, n+1)}}
	run.Cycles = c.initCycles() + c.sweepCycles(n, m) + c.reduceCycles()
	run.II = c.initiationInterval(n, m)
	if h0 <= 0 || n == 0 {
		return run
	}

	p := make([]pe, c.PEs())
	cur := make([]pe, c.PEs())
	oe := sc.GapOpen + sc.GapExtend

	// borderH returns the initialization value of border cell (i,0) or
	// (0,j); the hardware injects these progressively through the E/F
	// score channels using a special input symbol.
	borderH := func(i, j int) int {
		k := i + j // exactly one of i,j is zero
		if k > w {
			return 0 // outside the band: dead for the banded machine
		}
		if k == 0 {
			return h0
		}
		v := h0 - sc.GapOpen - k*sc.GapExtend
		if v < 0 {
			v = 0
		}
		return v
	}

	// Row-cut speculation state.
	rowSeenLive := make([]bool, m+1)
	rowDeadRun := make([]int, m+1)
	rowCutAt := make([]int, m+1) // column from which the row is cut; 0 = not cut
	if run.Result.Global == 0 && n <= w {
		if v := borderH(0, n); v > 0 {
			run.Result.Global, run.Result.GlobalT = v, 0
		}
	}

	better := func(hv, i, j int) bool {
		r := &run.Result
		if hv > r.Local {
			return true
		}
		// Wavefront order differs from row-major scan order; replicate
		// BWA's first-in-scan-order tie-breaking explicitly.
		return hv == r.Local && hv > 0 && (i < r.LocalT || (i == r.LocalT && j < r.LocalQ))
	}

	for t := 2; t <= n+m; t++ {
		for pi := range cur {
			cur[pi] = p[pi]
		}
		for pi := 0; pi < c.PEs(); pi++ {
			d := pi - w
			if (t-d)%2 != 0 {
				continue
			}
			j := (t - d) / 2
			i := t - j
			if i < 1 || i > m || j < 1 || j > n {
				continue
			}
			run.ActivePE++

			hDiag := p[pi].lastH
			if i == 1 || j == 1 {
				hDiag = borderH(i-1, j-1)
			}
			eIn := 0
			if i > 1 { // E(1,·) = 0 by initialization
				if pi-1 >= 0 {
					eIn = p[pi-1].eOut
				}
			}
			fIn := 0
			if j > 1 && pi+1 < c.PEs() {
				fIn = p[pi+1].fOut
			}

			var mv int
			if hDiag > 0 {
				mv = hDiag + sc.Sub(target[i-1], query[j-1])
			}
			hv := mv
			if eIn > hv {
				hv = eIn
			}
			if fIn > hv {
				hv = fIn
			}
			if hv < 0 {
				hv = 0
			}
			t1 := hv - oe
			ne := eIn - sc.GapExtend
			if t1 > ne {
				ne = t1
			}
			if ne < 0 {
				ne = 0
			}
			nf := fIn - sc.GapExtend
			if t1 > nf {
				nf = t1
			}
			if nf < 0 {
				nf = 0
			}

			if c.SpeculativeRowCut {
				if rowCutAt[i] != 0 && j >= rowCutAt[i] {
					// The row was cut before this cell: force it dead. If
					// a positive score flows in from the cells above, the
					// speculation was wrong — flag the exception.
					if (hDiag > 0 && mv > 0) || eIn > 0 {
						run.Exception = true
					}
					hv, ne, nf = 0, 0, 0
				} else {
					if hv == 0 && ne == 0 {
						if rowSeenLive[i] {
							rowDeadRun[i]++
							if rowDeadRun[i] > 2 && rowCutAt[i] == 0 {
								rowCutAt[i] = j + 1
							}
						}
					} else {
						rowSeenLive[i] = true
						rowDeadRun[i] = 0
					}
				}
			}

			cur[pi].lastH = hv
			cur[pi].eOut = ne
			cur[pi].fOut = nf

			if better(hv, i, j) {
				run.Result.Local, run.Result.LocalT, run.Result.LocalQ = hv, i, j
			}
			if j == n {
				r := &run.Result
				if hv > r.Global || (hv == r.Global && hv > 0 && i < r.GlobalT) {
					r.Global, r.GlobalT = hv, i
				}
			}
			if d == w {
				run.Boundary.E[j] = ne
			}
			run.Result.Cells++
		}
		p, cur = cur, p
	}
	run.Result.Rows = m
	if mm := n + w; mm < m {
		run.Result.Rows = mm
	}
	return run
}

// Timing model. The constants are centralized here so the throughput and
// latency benches read from a single source of truth.

// initCycles models the progressive score initialization through the PE
// score channels (one shift per PE, avoiding global wires).
func (c *Core) initCycles() int { return c.PEs() }

// sweepCycles is the wavefront march: one cycle per anti-diagonal that
// intersects the band (the band leaves the matrix after n+W rows, so a
// narrow core finishes early on long targets).
func (c *Core) sweepCycles(n, m int) int {
	if eff := n + c.W; eff < m {
		m = eff
	}
	return n + m + 1
}

// reduceCycles models the lscore shift-register reduction; it overlaps
// with accumulation, so only the final drain of the array is charged.
func (c *Core) reduceCycles() int { return c.PEs() }

// initiationInterval is the minimum cycle distance between consecutive
// extensions: the input shift registers must stream one full pair.
func (c *Core) initiationInterval(n, m int) int {
	if m > n {
		return m + 1
	}
	return n + 1
}

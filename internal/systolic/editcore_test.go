package systolic

import (
	"math/rand"
	"testing"

	"seedex/internal/editmachine"
)

func TestEditCoreMatchesPlainSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	core := &EditCore{W: 10}
	if core.PEs() != 11 {
		t.Fatalf("half-width PEs = %d, want 11", core.PEs())
	}
	for trial := 0; trial < 200; trial++ {
		q := randSeq(rng, 1+rng.Intn(80))
		tg := randSeq(rng, 1+rng.Intn(120))
		init := rng.Intn(150)
		run, err := core.Sweep(q, tg, init)
		if err != nil {
			t.Fatal(err)
		}
		plain := editmachine.SweepCorner(q, tg, core.W, init, editmachine.CanonicalRelaxed)
		if run.Empty != plain.Empty {
			t.Fatalf("trial %d: empty mismatch", trial)
		}
		if plain.Empty {
			continue
		}
		if run.Score != plain.Score {
			t.Fatalf("trial %d: edit core score %d != plain %d", trial, run.Score, plain.Score)
		}
		if run.Cells != plain.Cells {
			t.Fatalf("trial %d: cells %d != %d", trial, run.Cells, plain.Cells)
		}
		if run.Cycles <= 0 {
			t.Fatalf("trial %d: no cycles charged", trial)
		}
	}
}

func TestEditCoreTimingScalesWithRegion(t *testing.T) {
	core := &EditCore{W: 8}
	q := randSeq(rand.New(rand.NewSource(2)), 60)
	short := append(randSeq(rand.New(rand.NewSource(3)), 20), q...)
	long := append(randSeq(rand.New(rand.NewSource(4)), 80), q...)
	a, err := core.Sweep(q, short, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Sweep(q, long, 30)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cycles <= a.Cycles {
		t.Fatalf("longer region must cost more cycles: %d vs %d", b.Cycles, a.Cycles)
	}
}

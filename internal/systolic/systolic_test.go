package systolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"seedex/internal/align"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

func testCase(rng *rand.Rand) (q, t []byte, h0, w int) {
	qlen := 1 + rng.Intn(90)
	t = randSeq(rng, 1+rng.Intn(120))
	q = randSeq(rng, qlen)
	if rng.Intn(2) == 0 && len(t) >= len(q) {
		copy(q, t[:len(q)])
		for k := 0; k < len(q)/10; k++ {
			q[rng.Intn(len(q))] = byte(rng.Intn(4))
		}
	}
	h0 = 1 + rng.Intn(100)
	w = rng.Intn(25)
	return
}

func sameResult(a, b align.ExtendResult) bool {
	return a.Local == b.Local && a.LocalT == b.LocalT && a.LocalQ == b.LocalQ &&
		a.Global == b.Global && a.GlobalT == b.GlobalT
}

// TestSystolicMatchesBandedKernel: the cycle-level array must be
// cell-for-cell equivalent to the software banded kernel, including the
// boundary E-scores the optimality checks consume.
func TestSystolicMatchesBandedKernel(t *testing.T) {
	sc := align.DefaultScoring()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, tg, h0, w := testCase(rng)
		core := &Core{W: w, Scoring: sc}
		run := core.Extend(q, tg, h0)
		want, wantBd := align.ExtendBanded(q, tg, h0, sc, w)
		if !sameResult(run.Result, want) {
			t.Logf("seed=%d w=%d h0=%d: systolic %+v != kernel %+v", seed, w, h0, run.Result, want)
			return false
		}
		for j := range wantBd.E {
			if run.Boundary.E[j] != wantBd.E[j] {
				t.Logf("seed=%d w=%d: boundary E[%d] = %d, want %d", seed, w, j, run.Boundary.E[j], wantBd.E[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// TestSpeculativeRowCut: without an exception the speculative core must
// still match the exact kernel; with an exception the caller reruns, so
// all we require is that exceptions are raised whenever results deviate.
func TestSpeculativeRowCut(t *testing.T) {
	sc := align.DefaultScoring()
	// Safety on arbitrary (including adversarial) inputs: no exception
	// means the speculative core matched the exact kernel.
	for seed := int64(0); seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, tg, h0, w := testCase(rng)
		core := &Core{W: w, Scoring: sc, SpeculativeRowCut: true}
		run := core.Extend(q, tg, h0)
		want, _ := align.ExtendBanded(q, tg, h0, sc, w)
		if run.Exception {
			continue
		}
		if !sameResult(run.Result, want) {
			t.Fatalf("seed=%d w=%d: no exception but results differ: %+v vs %+v", seed, w, run.Result, want)
		}
	}
	// Rarity on realistic extension workloads (erroneous copies of the
	// target, the case the paper calls "extremely rare").
	exceptions := 0
	const trials = 500
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed + 10_000))
		tg := randSeq(rng, 120)
		q := append([]byte(nil), tg[:101]...)
		for k := 0; k < 3; k++ {
			q[rng.Intn(len(q))] = byte(rng.Intn(4))
		}
		core := &Core{W: 20, Scoring: sc, SpeculativeRowCut: true}
		if run := core.Extend(q, tg, 30); run.Exception {
			exceptions++
		}
	}
	t.Logf("speculative row-cut exceptions on realistic inputs: %d/%d", exceptions, trials)
	if exceptions > trials/20 {
		t.Fatalf("exception rate implausibly high on realistic inputs: %d/%d", exceptions, trials)
	}
}

func TestCycleModel(t *testing.T) {
	sc := align.DefaultScoring()
	narrow := &Core{W: 20, Scoring: sc}
	full := &Core{W: 50, Scoring: sc}
	q := randSeq(rand.New(rand.NewSource(1)), 101)
	tgN := randSeq(rand.New(rand.NewSource(2)), 121)
	tgF := randSeq(rand.New(rand.NewSource(3)), 151)
	rn := narrow.Extend(q, tgN, 30)
	rf := full.Extend(q, tgF, 30)
	if rn.Cycles >= rf.Cycles {
		t.Fatalf("narrow core latency %d should beat full-band %d", rn.Cycles, rf.Cycles)
	}
	ratio := float64(rf.Cycles) / float64(rn.Cycles)
	if ratio < 1.2 || ratio > 3 {
		t.Fatalf("latency ratio %.2f outside plausible range (paper: 1.9x)", ratio)
	}
	if rn.II <= 0 || rn.II > rn.Cycles {
		t.Fatalf("II %d inconsistent with latency %d", rn.II, rn.Cycles)
	}
	if narrow.PEs() != 41 || full.PEs() != 101 {
		t.Fatalf("PE counts: %d, %d", narrow.PEs(), full.PEs())
	}
}

func TestUtilizationAccounting(t *testing.T) {
	sc := align.DefaultScoring()
	core := &Core{W: 5, Scoring: sc}
	q := randSeq(rand.New(rand.NewSource(4)), 40)
	run := core.Extend(q, q, 20)
	if run.ActivePE != run.Result.Cells {
		t.Fatalf("active PE count %d != cells %d", run.ActivePE, run.Result.Cells)
	}
	if run.ActivePE == 0 {
		t.Fatal("no PE activity recorded")
	}
}

func TestDeadInput(t *testing.T) {
	core := &Core{W: 5, Scoring: align.DefaultScoring()}
	run := core.Extend([]byte{0, 1, 2}, []byte{0, 1, 2}, 0)
	if run.Result.Local != 0 {
		t.Fatalf("h0=0 must be dead, got %+v", run.Result)
	}
	if run.Cycles == 0 {
		t.Fatal("cycles must still be charged")
	}
}

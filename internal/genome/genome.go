// Package genome provides nucleotide encodings and synthetic reference
// genome generation used throughout the SeedEx reproduction.
//
// Bases are carried as 2-bit codes (A=0, C=1, G=2, T=3) in []byte slices;
// the value 4 denotes an ambiguous base (N), matching the 3-bit on-wire
// format the SeedEx FPGA consumes ("input genome string pair in a 3-bit
// format", paper §IV-A).
package genome

import (
	"fmt"
	"math/rand"
	"strings"
)

// Base codes. Code 4 represents an ambiguous base (N).
const (
	A byte = 0
	C byte = 1
	G byte = 2
	T byte = 3
	N byte = 4
)

// Alphabet is the number of unambiguous base codes.
const Alphabet = 4

var code2char = [5]byte{'A', 'C', 'G', 'T', 'N'}

var char2code [256]byte

func init() {
	for i := range char2code {
		char2code[i] = N
	}
	for c, ch := range map[byte]byte{'A': A, 'a': A, 'C': C, 'c': C, 'G': G, 'g': G, 'T': T, 't': T} {
		char2code[c] = ch
	}
}

// EncodeByte converts one ASCII nucleotide to its 2-bit code (N for
// anything unrecognized).
func EncodeByte(ch byte) byte { return char2code[ch] }

// DecodeByte converts a base code back to its ASCII letter.
func DecodeByte(code byte) byte {
	if int(code) >= len(code2char) {
		return 'N'
	}
	return code2char[code]
}

// Encode converts an ASCII nucleotide string to base codes.
func Encode(s string) []byte {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = char2code[s[i]]
	}
	return out
}

// Decode converts base codes to an ASCII nucleotide string.
func Decode(seq []byte) string {
	var b strings.Builder
	b.Grow(len(seq))
	for _, c := range seq {
		b.WriteByte(DecodeByte(c))
	}
	return b.String()
}

// Complement returns the complementary code of a base (N maps to N).
func Complement(code byte) byte {
	if code >= N {
		return N
	}
	return 3 - code
}

// RevComp returns the reverse complement of seq as a new slice.
func RevComp(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, c := range seq {
		out[len(seq)-1-i] = Complement(c)
	}
	return out
}

// Validate reports an error if seq contains a value that is not a valid
// base code.
func Validate(seq []byte) error {
	for i, c := range seq {
		if c > N {
			return fmt.Errorf("genome: invalid base code %d at offset %d", c, i)
		}
	}
	return nil
}

// SimConfig controls synthetic genome generation.
type SimConfig struct {
	// Length of the genome in base pairs.
	Length int
	// GC is the target GC content in [0,1]. Zero means 0.5.
	GC float64
	// RepeatFraction is the fraction of the genome covered by copied
	// repeats (segmental duplications), approximating the repetitive
	// structure that makes seeding ambiguous. Zero disables repeats.
	RepeatFraction float64
	// RepeatLen is the length of each repeat unit (default 500).
	RepeatLen int
}

// Simulate generates a random genome according to cfg using rng.
func Simulate(cfg SimConfig, rng *rand.Rand) []byte {
	if cfg.Length <= 0 {
		return nil
	}
	gc := cfg.GC
	if gc == 0 {
		gc = 0.5
	}
	g := make([]byte, cfg.Length)
	for i := range g {
		if rng.Float64() < gc {
			if rng.Intn(2) == 0 {
				g[i] = G
			} else {
				g[i] = C
			}
		} else {
			if rng.Intn(2) == 0 {
				g[i] = A
			} else {
				g[i] = T
			}
		}
	}
	if cfg.RepeatFraction > 0 {
		rl := cfg.RepeatLen
		if rl <= 0 {
			rl = 500
		}
		if rl > cfg.Length/2 {
			rl = cfg.Length / 2
		}
		covered := 0
		target := int(float64(cfg.Length) * cfg.RepeatFraction)
		for covered < target && rl > 0 {
			src := rng.Intn(cfg.Length - rl)
			dst := rng.Intn(cfg.Length - rl)
			copy(g[dst:dst+rl], g[src:src+rl])
			covered += rl
		}
	}
	return g
}

// Slice returns genome[start:end) clamped to the genome bounds; callers use
// it to fetch reference windows for extension without bounds bookkeeping.
func Slice(g []byte, start, end int) []byte {
	if start < 0 {
		start = 0
	}
	if end > len(g) {
		end = len(g)
	}
	if start >= end {
		return nil
	}
	return g[start:end]
}

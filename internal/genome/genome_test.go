package genome

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := "ACGTNacgtX"
	enc := Encode(s)
	want := []byte{A, C, G, T, N, A, C, G, T, N}
	for i := range want {
		if enc[i] != want[i] {
			t.Fatalf("Encode(%q)[%d] = %d, want %d", s, i, enc[i], want[i])
		}
	}
	if Decode(enc) != "ACGTNACGTN" {
		t.Fatalf("Decode = %q", Decode(enc))
	}
	if DecodeByte(9) != 'N' {
		t.Fatal("out-of-range code must decode to N")
	}
}

func TestRevCompInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		s := make([]byte, len(raw))
		for i, c := range raw {
			s[i] = c % 5
		}
		rc := RevComp(RevComp(s))
		for i := range s {
			if rc[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{A: T, C: G, G: C, T: A, N: N}
	for a, b := range pairs {
		if Complement(a) != b {
			t.Fatalf("Complement(%d) = %d, want %d", a, Complement(a), b)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]byte{0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := Validate([]byte{0, 7}); err == nil {
		t.Fatal("expected error for invalid code")
	}
}

func TestSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Simulate(SimConfig{Length: 10_000, GC: 0.6}, rng)
	if len(g) != 10_000 {
		t.Fatalf("length %d", len(g))
	}
	gc := 0
	for _, c := range g {
		if c > 3 {
			t.Fatalf("invalid base %d", c)
		}
		if c == G || c == C {
			gc++
		}
	}
	frac := float64(gc) / float64(len(g))
	if frac < 0.55 || frac > 0.65 {
		t.Fatalf("GC fraction %.3f, want ~0.6", frac)
	}
	if Simulate(SimConfig{Length: 0}, rng) != nil {
		t.Fatal("zero length must return nil")
	}
}

func TestSimulateRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Simulate(SimConfig{Length: 20_000, RepeatFraction: 0.3, RepeatLen: 400}, rng)
	// Count positions covered by at least one 100-mer that appears twice:
	// crude repeat detector via sampling.
	dup := 0
	const k = 100
	for trial := 0; trial < 50; trial++ {
		i := rng.Intn(len(g) - k)
		pat := g[i : i+k]
		count := 0
		for j := 0; j+k <= len(g); j++ {
			same := true
			for x := 0; x < k; x++ {
				if g[j+x] != pat[x] {
					same = false
					break
				}
			}
			if same {
				count++
			}
		}
		if count > 1 {
			dup++
		}
	}
	if dup == 0 {
		t.Fatal("no repeats detected despite RepeatFraction=0.3")
	}
}

func TestSlice(t *testing.T) {
	g := []byte{0, 1, 2, 3}
	if got := Slice(g, -5, 2); len(got) != 2 {
		t.Fatalf("clamped slice = %v", got)
	}
	if got := Slice(g, 2, 99); len(got) != 2 {
		t.Fatalf("clamped slice = %v", got)
	}
	if got := Slice(g, 3, 3); got != nil {
		t.Fatalf("empty slice = %v", got)
	}
}

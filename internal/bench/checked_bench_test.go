package bench

import (
	"testing"

	"seedex/internal/core"
)

// The checked/pooled and checked/workspace rows of BENCH_extend.json
// differ only by a sync.Pool Get/Put pair per extension (single-threaded,
// the pool hands back the same Checker every time), yet recorded runs
// have shown either row up to ~12% ahead of the other. Profiling shows
// the delta spread uniformly across every callee — the whole process runs
// faster or slower, not one path doing more work — i.e. per-process heap
// layout plus single-vCPU VM timing noise, not a code difference. These
// two benchmarks are the controlled A/B probe: run them alternately in
// fresh processes (go test -bench 'CheckedPooled$|CheckedWorkspace$')
// when the trajectory file shows the rows diverging again.
func BenchmarkCheckedPooled(b *testing.B) {
	w, err := Workload150(200_000, 500, 1)
	if err != nil {
		b.Fatal(err)
	}
	probs := w.Problems
	ccfg := core.Config{Band: 21, Scoring: w.Scoring, Kind: core.SemiGlobal, Mode: core.ModeStrict}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probs[i%len(probs)]
		core.Check(p.Q, p.T, p.H0, ccfg)
	}
}

func BenchmarkCheckedWorkspace(b *testing.B) {
	w, err := Workload150(200_000, 500, 1)
	if err != nil {
		b.Fatal(err)
	}
	probs := w.Problems
	chk := core.NewChecker(core.Config{Band: 21, Scoring: w.Scoring, Kind: core.SemiGlobal, Mode: core.ModeStrict})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probs[i%len(probs)]
		chk.Check(p.Q, p.T, p.H0)
	}
}

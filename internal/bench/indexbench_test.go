package bench

import (
	"testing"
	"time"
)

// TestIndexServeBench runs a miniature index-lifecycle benchmark: the
// mmap-vs-heap equivalence sweep must be clean, the server must serve
// traffic from the mapping, and the in-window reload storm must land as
// clean generation swaps (no failures, no rollbacks — the published
// file is never corrupted here).
func TestIndexServeBench(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	rep, err := IndexServeBench(IndexBenchConfig{
		RefLen:      20_000,
		Reads:       24,
		Concurrency: []int{4},
		Duration:    300 * time.Millisecond,
		Reloads:     2,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EquivMismatches != 0 {
		t.Fatalf("mmap vs heap mismatches: %d of %d", rep.EquivMismatches, rep.EquivReads)
	}
	if rep.FileBytes <= 0 || rep.MmapBytes != rep.FileBytes {
		t.Fatalf("mapping does not cover the file: mmap=%d file=%d", rep.MmapBytes, rep.FileBytes)
	}
	if !rep.ZeroCopy {
		t.Fatal("suffix array was not served zero-copy from the mapping")
	}
	if rep.BuildMs <= 0 || rep.PublishMs <= 0 || rep.LoadMs <= 0 {
		t.Fatalf("lifecycle timings missing: %+v", rep)
	}
	if len(rep.Points) != 1 || rep.Points[0].ReadsPerSec <= 0 {
		t.Fatalf("mmap-store point served nothing: %+v", rep.Points)
	}
	if rep.ReloadsFired == 0 || rep.Reloads != rep.ReloadsFired {
		t.Fatalf("reload storm did not land: fired=%d counted=%d", rep.ReloadsFired, rep.Reloads)
	}
	if rep.ReloadFailures != 0 || rep.Rollbacks != 0 {
		t.Fatalf("clean reloads failed: failures=%d rollbacks=%d", rep.ReloadFailures, rep.Rollbacks)
	}
	t.Logf("%s", rep)
}

package bench

import (
	"fmt"
	"time"

	"seedex/internal/align"
	"seedex/internal/hw"
	"seedex/internal/stats"
)

// Fig02 reproduces Figure 2: the distribution of the band BWA-MEM
// estimates a priori versus the band each extension actually needs
// (measured as the smallest band reproducing the full result).
func Fig02(w *Workload) (*stats.Table, *stats.Histogram, *stats.Histogram) {
	est := stats.NewHistogram(10, 20, 30, 40)
	used := stats.NewHistogram(10, 20, 30, 40)
	for _, p := range w.Problems {
		// BWA's a-priori estimate considers only the query length (the
		// seed score does not extend the worst-case gap allowance).
		est.Add(w.Scoring.EstimateBand(len(p.Q), 0, 100))
		used.Add(align.UsedBand(p.Q, p.T, p.H0, w.Scoring))
	}
	t := &stats.Table{Header: append([]string{"band"}, est.Labels()...)}
	rowE := []interface{}{"Estimated %"}
	rowU := []interface{}{"Used %"}
	for i := range est.Counts {
		rowE = append(rowE, est.Pct(i))
		rowU = append(rowU, used.Pct(i))
	}
	t.Add(rowE...)
	t.Add(rowU...)
	return t, est, used
}

// Fig03 reproduces Figure 3: banded software-kernel execution time versus
// band size (the early-termination saturation curve).
func Fig03(w *Workload, bands []int, sample int) *stats.Table {
	probs := w.Problems
	if sample > 0 && len(probs) > sample {
		probs = probs[:sample]
	}
	t := &stats.Table{Header: []string{"band(PEs)", "ns/ext", "cells/ext", "rel-time"}}
	var base float64
	for _, pes := range bands {
		sided := (pes - 1) / 2
		start := time.Now()
		var cells int64
		for _, p := range probs {
			res, _ := align.ExtendBanded(p.Q, p.T, p.H0, w.Scoring, sided)
			cells += res.Cells
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(len(probs))
		if base == 0 {
			base = ns
		}
		t.Add(pes, ns, cells/int64(len(probs)), ns/base)
	}
	return t
}

// Fig04 reproduces Figure 4: modeled hardware resources of a BSW
// accelerator versus band size, normalized to the smallest band.
func Fig04(bands []int) *stats.Table {
	t := &stats.Table{Header: []string{"band(PEs)", "LUTs", "normalized"}}
	base := hw.BSWCoreLUT(bands[0])
	for _, pes := range bands {
		l := hw.BSWCoreLUT(pes)
		t.Add(pes, fmt.Sprintf("%.0f", l), l/base)
	}
	return t
}

// Fig15 reproduces Figure 15: the LUT breakdown of a SeedEx-only FPGA
// image with four SeedEx cores.
func Fig15() *stats.Table {
	t := &stats.Table{Header: []string{"component", "LUTs", "% of VU9P"}}
	rows := hw.SeedExFPGABreakdown(41, 4)
	for _, r := range rows {
		t.Add(r.Name, fmt.Sprintf("%.0f", r.LUT), r.Pct())
	}
	t.Add("Total", fmt.Sprintf("%.0f", hw.TotalLUT(rows)), 100*hw.TotalLUT(rows)/hw.VU9PLUTs)
	return t
}

// Table2 reproduces Table II: resource utilization of the combined
// seeding + SeedEx image.
func Table2() *stats.Table {
	t := &stats.Table{Header: []string{"component", "LUTs", "LUT %"}}
	rows := hw.CombinedImageBreakdown(41)
	for _, r := range rows {
		t.Add(r.Name, fmt.Sprintf("%.0f", r.LUT), r.Pct())
	}
	t.Add("Total", fmt.Sprintf("%.0f", hw.TotalLUT(rows)), 100*hw.TotalLUT(rows)/hw.VU9PLUTs)
	return t
}

// Table3 reproduces Table III: area and power of the ASIC SeedEx.
func Table3() *stats.Table {
	t := &stats.Table{Header: []string{"component", "config", "area mm2", "power mW"}}
	for _, c := range hw.SeedExASIC() {
		t.Add(c.Name, c.Config, fmt.Sprintf("%.3f", c.AreaMM2), fmt.Sprintf("%.1f", c.PowerMW))
	}
	sa, sp := hw.ASICTotals(hw.SeedExASIC())
	t.Add("SeedEx Total", "", fmt.Sprintf("%.3f", sa), fmt.Sprintf("%.1f", sp))
	e := hw.ERTASIC()
	t.Add(e.Name, e.Config, fmt.Sprintf("%.2f", e.AreaMM2), fmt.Sprintf("%.1f", e.PowerMW))
	ta, tp := hw.ASICTotals(append(hw.SeedExASIC(), e))
	t.Add("Total", "", fmt.Sprintf("%.2f", ta), fmt.Sprintf("%.1f", tp))
	return t
}

// Fig18 reproduces Figure 18: area-normalized kernel throughput,
// application throughput and energy efficiency across systems.
func Fig18() *stats.Table {
	t := &stats.Table{Header: []string{"system", "kernel K ext/s/mm2", "app K reads/s/mm2", "K reads/s/J"}}
	for _, c := range hw.Figure18(41, 101, 121) {
		t.Add(c.Name,
			fmt.Sprintf("%.2f", c.KernelThroughput),
			fmt.Sprintf("%.2f", c.AppThroughput),
			fmt.Sprintf("%.2f", c.EnergyEff))
	}
	return t
}

package bench

import (
	"fmt"

	"seedex/internal/align"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/fpga"
	"seedex/internal/hw"
	"seedex/internal/readsim"
	"seedex/internal/stats"
)

// Fig13Workload builds the indel-rich validation workload of Figure 13:
// band sensitivity only shows on reads whose optimal alignments carry
// multi-base indels, so the variant indel rate is raised well above the
// default profile.
func Fig13Workload(refLen, nReads int, seed int64) (*Workload, error) {
	cfg := readsim.RealisticConfig(nReads)
	cfg.IndelRate = 0.004
	return BuildWorkloadCfg(refLen, cfg, seed)
}

// Fig13 reproduces Figure 13: the number of SAM entries that differ from
// the full-band baseline when extensions run on a plain banded heuristic,
// versus the SeedEx algorithm (checks + rerun), as the band sweeps. The
// SeedEx series must be identically zero. The diffs are also scaled to
// entries-per-million-reads, the unit of the paper's y-axis.
func Fig13(w *Workload, bands []int) (*stats.Table, error) {
	full, err := bwamem.New("chrSim", w.Ref, core.FullBand{Scoring: w.Scoring})
	if err != nil {
		return nil, err
	}
	reads := w.PipelineReads()
	wantRecs, _ := full.Run(reads, 0)

	t := &stats.Table{Header: []string{"band(PEs)", "BSW-heuristic diffs", "per-M reads", "SeedEx diffs", "reads"}}
	for _, pes := range bands {
		sided := (pes - 1) / 2
		banded, err := bwamem.New("chrSim", w.Ref, core.Banded{Scoring: w.Scoring, Band: sided})
		if err != nil {
			return nil, err
		}
		banded.Opts.TraceBand = sided
		bRecs, _ := banded.Run(reads, 0)

		se, err := bwamem.New("chrSim", w.Ref, core.New(sided))
		if err != nil {
			return nil, err
		}
		sRecs, _ := se.Run(reads, 0)

		bd, sd := 0, 0
		for i := range wantRecs {
			if bRecs[i].String() != wantRecs[i].String() {
				bd++
			}
			if sRecs[i].String() != wantRecs[i].String() {
				sd++
			}
		}
		t.Add(pes, bd, fmt.Sprintf("%.0f", 1e6*float64(bd)/float64(len(reads))), sd, len(reads))
	}
	return t, nil
}

// Fig14 reproduces Figure 14: optimality-check passing rates versus band
// size — thresholding alone, the full paper workflow, and the strict
// (bit-equivalence) mode.
func Fig14(w *Workload, bands []int) *stats.Table {
	t := &stats.Table{Header: []string{"band(PEs)", "thresholding %", "overall(paper) %", "strict %", "fail-s1 %", "fail-e %", "fail-edit %"}}
	for _, pes := range bands {
		sided := (pes - 1) / 2
		reps := w.CheckOutcomes(sided, core.ModePaper)
		strict := w.CheckOutcomes(sided, core.ModeStrict)
		n := float64(len(reps))
		var th, pass, sPass, fS1, fE, fEd float64
		for _, r := range reps {
			if r.ThresholdOnlyPass {
				th++
			}
			if r.Pass {
				pass++
			}
			switch r.Outcome {
			case core.FailS1:
				fS1++
			case core.FailE:
				fE++
			case core.FailEdit:
				fEd++
			}
		}
		for _, r := range strict {
			if r.Pass {
				sPass++
			}
		}
		t.Add(pes, 100*th/n, 100*pass/n, 100*sPass/n, 100*fS1/n, 100*fE/n, 100*fEd/n)
	}
	return t
}

// Fig16 reproduces Figure 16: (a) full-band vs SeedEx core area, (b) the
// edit-core optimization ladder, and (c) iso-area throughput via the
// system simulator replaying the workload's extension shapes.
func Fig16(w *Workload) (areaTab, ladderTab, thrTab *stats.Table) {
	areaTab = &stats.Table{Header: []string{"core", "LUTs", "ratio"}}
	fb := 3 * hw.FullBandCoreLUT(101)
	se := hw.SeedExCoreLUT(41, 3)
	areaTab.Add("3x full-band BSW (101 PE)", fmt.Sprintf("%.0f", fb), fb/se)
	areaTab.Add("SeedEx core (3x41PE + edit + checks)", fmt.Sprintf("%.0f", se), 1.0)

	ladderTab = &stats.Table{Header: []string{"machine", "LUTs", "reduction vs BSW"}}
	b := hw.BSWCoreLUT(41)
	ladderTab.Add("BSW core (41 PE)", fmt.Sprintf("%.0f", b), 1.0)
	for _, lv := range []struct {
		name string
		l    hw.EditCoreLevel
	}{
		{"edit: reduced scoring (8-bit)", hw.EditNaive},
		{"edit: + delta encoding (3-bit)", hw.EditDelta},
		{"edit: + half-width array", hw.EditHalfWidth},
	} {
		e := hw.EditCoreLUT(41, lv.l)
		ladderTab.Add(lv.name, fmt.Sprintf("%.0f", e), b/e)
	}

	// (c): replay the extension shapes with check outcomes.
	reps := w.CheckOutcomes(20, core.ModePaper)
	jobs := make([]fpga.Job, len(w.Problems))
	for i, p := range w.Problems {
		jobs[i] = fpga.Job{QLen: len(p.Q), TLen: len(p.T), NeedsEdit: reps[i].EditRan, Rerun: !reps[i].Pass}
	}
	seRep := fpga.Simulate(fpga.DefaultSeedEx(), jobs)
	fbRep := fpga.Simulate(fpga.FullBandBaseline(), jobs)
	thrTab = &stats.Table{Header: []string{"config", "M ext/s", "BSW util %", "speedup"}}
	thrTab.Add("SeedEx (36x41PE, 3 clusters)", seRep.ThroughputPerS/1e6, 100*seRep.BSWUtilization, seRep.ThroughputPerS/fbRep.ThroughputPerS)
	thrTab.Add("Full-band (9x101PE)", fbRep.ThroughputPerS/1e6, 100*fbRep.BSWUtilization, 1.0)
	return
}

// Fig17Config names one end-to-end configuration of Figure 17.
type Fig17Config struct {
	Name                string
	SeedNs, ExtNs, Rest int64
	TotalNs             int64
}

// Fig17 reproduces Figure 17: normalized end-to-end time breakdown of the
// aligner under software and accelerated configurations. Software rows
// are measured; FPGA rows replace the measured stage time with the system
// simulator's wall time (extension) and the seeding accelerator's
// published 1.5 M reads/s rate (seeding), as DESIGN.md's substitution
// table records.
func Fig17(w *Workload, workers int) (*stats.Table, error) {
	reads := w.PipelineReads()
	run := func(ext align.Extender) (bwamem.Stats, []bwamem.ExtJob, error) {
		ie := &bwamem.InstrumentedExtender{Inner: ext, KeepJobs: true}
		a, err := bwamem.New("chrSim", w.Ref, ie)
		if err != nil {
			return bwamem.Stats{}, nil, err
		}
		_, st := a.Run(reads, workers)
		return st, ie.Jobs(), nil
	}

	swFull, jobs, err := run(core.FullBand{Scoring: w.Scoring})
	if err != nil {
		return nil, err
	}
	swSeedEx5, _, err := run(core.New(2)) // "software SeedEx", w=5 PEs
	if err != nil {
		return nil, err
	}

	// FPGA extension wall time for the same job stream.
	fjobs := make([]fpga.Job, len(jobs))
	for i, j := range jobs {
		fjobs[i] = fpga.Job{QLen: j.QLen, TLen: j.TLen, NeedsEdit: i%3 == 0, Rerun: i%50 == 0}
	}
	fpgaRep := fpga.Simulate(fpga.DefaultSeedEx(), fjobs)
	fpgaExtNs := int64(float64(fpgaRep.Cycles) * hw.ClockNs)
	// Host still drives the FPGA (batching, DMA, rearrangement).
	driverNs := swFull.ExtensionNs / 20
	if fpgaExtNs < driverNs {
		fpgaExtNs = driverNs
	}
	// Seeding accelerator: 1.5 M reads/s shared seeding+extension rate.
	accSeedNs := int64(float64(len(reads)) / 1.5e6 * 1e9)

	cfgs := []Fig17Config{
		{Name: "BWA-MEM (sw)", SeedNs: swFull.SeedingNs, ExtNs: swFull.ExtensionNs, Rest: swFull.RestNs},
		{Name: "BWA-MEM + sw-SeedEx(w=5)", SeedNs: swSeedEx5.SeedingNs, ExtNs: swSeedEx5.ExtensionNs, Rest: swSeedEx5.RestNs},
		{Name: "BWA-MEM + SeedEx FPGA", SeedNs: swFull.SeedingNs, ExtNs: fpgaExtNs, Rest: swFull.RestNs},
		{Name: "BWA-MEM + Seeding + SeedEx FPGA", SeedNs: accSeedNs, ExtNs: fpgaExtNs, Rest: swFull.RestNs},
	}
	base := float64(swFull.SeedingNs + swFull.ExtensionNs + swFull.RestNs)
	t := &stats.Table{Header: []string{"config", "seeding %", "extension %", "rest %", "total(norm)", "speedup"}}
	for _, c := range cfgs {
		tot := float64(c.SeedNs + c.ExtNs + c.Rest)
		t.Add(c.Name,
			100*float64(c.SeedNs)/base,
			100*float64(c.ExtNs)/base,
			100*float64(c.Rest)/base,
			tot/base,
			base/tot)
	}
	return t, nil
}

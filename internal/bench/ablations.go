package bench

import (
	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/editmachine"
	"seedex/internal/fpga"
	"seedex/internal/stats"
)

// AblationEditSeeding compares the two edit-machine seeding strategies:
// the paper's corner seeding with S1 (hardware friendly) versus the
// strict mode's exact boundary seeding, at several bands. It quantifies
// how much pass rate each buys beyond thresholding+E-score.
func AblationEditSeeding(w *Workload, bands []int) *stats.Table {
	t := &stats.Table{Header: []string{"band(PEs)", "no-edit %", "corner(S1) %", "exact-seeded %"}}
	for _, pes := range bands {
		sided := (pes - 1) / 2
		var noEdit, corner, exact float64
		n := float64(len(w.Problems))
		cfg := core.Config{Band: sided, Scoring: w.Scoring, Kind: core.SemiGlobal, Mode: core.ModePaper}
		for _, p := range w.Problems {
			res, rep := core.Check(p.Q, p.T, p.H0, cfg)
			if rep.ThresholdOnlyPass {
				noEdit++
				corner++
				exact++
				continue
			}
			if rep.Outcome == core.FailS1 || rep.Outcome == core.FailE {
				continue
			}
			// Between thresholds with a passing E-check: the edit machine
			// decides. Corner mode's verdict is rep itself.
			if rep.Pass {
				corner++
			}
			sw := editmachine.SweepExact(p.Q, p.T, sided, p.H0, bandBoundaryE(p, w.Scoring, sided), w.Scoring, editmachine.RelaxedFor(w.Scoring))
			if sw.Empty || sw.Score < res.Local {
				exact++
			}
		}
		t.Add(pes, 100*noEdit/n, 100*corner/n, 100*exact/n)
	}
	return t
}

func bandBoundaryE(p Problem, sc align.Scoring, w int) []int {
	_, bd := align.ExtendBanded(p.Q, p.T, p.H0, sc, w)
	return bd.E
}

// AblationClientsPerCluster sweeps the SeedEx clients per memory channel;
// the paper chose 4 "to strike a balance between memory bandwidth and
// area utilization" (§V-A). The sweep shows throughput saturating as the
// channel's bandwidth and the routing budget are consumed.
func AblationClientsPerCluster(w *Workload) *stats.Table {
	jobs := workloadJobs(w)
	t := &stats.Table{Header: []string{"clients/cluster", "M ext/s", "BSW util %", "M ext/s per kLUT"}}
	for _, clients := range []int{1, 2, 4, 6, 8} {
		cfg := fpga.DefaultSeedEx()
		cfg.CoresPerCluster = clients
		rep := fpga.Simulate(cfg, jobs)
		perLUT := rep.ThroughputPerS / 1e6 / (cfg.LUTs() / 1000)
		t.Add(clients, rep.ThroughputPerS/1e6, 100*rep.BSWUtilization, perLUT)
	}
	return t
}

// AblationBSWEditRatio sweeps BSW cores per edit machine; the paper set
// 3:1 because roughly one in three extensions needs the edit machine
// (§VII-A). Larger ratios saturate the edit machine and stall results.
func AblationBSWEditRatio(w *Workload) *stats.Table {
	jobs := workloadJobs(w)
	t := &stats.Table{Header: []string{"BSW:edit", "M ext/s", "edit util %"}}
	for _, ratio := range []int{1, 2, 3, 4, 6} {
		cfg := fpga.DefaultSeedEx()
		cfg.BSWPerCore = ratio
		// Keep the total BSW count comparable.
		cfg.CoresPerCluster = 12 / ratio
		rep := fpga.Simulate(cfg, jobs)
		t.Add(ratio, rep.ThroughputPerS/1e6, 100*rep.EditUtilization)
	}
	return t
}

// AblationBandingStrategies compares extension-result fidelity across
// banding disciplines at equal width: fixed band (no checks), adaptive
// band re-centering (the related-work heuristic of §II), and SeedEx
// (checks + rerun). The SeedEx column is zero by construction.
func AblationBandingStrategies(w *Workload, bands []int) *stats.Table {
	t := &stats.Table{Header: []string{"band(PEs)", "fixed-band diffs", "adaptive diffs", "seedex diffs", "extensions"}}
	for _, pes := range bands {
		sided := (pes - 1) / 2
		fixed, adaptive, seedex := 0, 0, 0
		se := core.New(sided)
		for _, p := range w.Problems {
			full := align.Extend(p.Q, p.T, p.H0, w.Scoring)
			if b, _ := align.ExtendBanded(p.Q, p.T, p.H0, w.Scoring, sided); b.Local != full.Local || b.Global != full.Global {
				fixed++
			}
			if a := align.ExtendAdaptive(p.Q, p.T, p.H0, w.Scoring, sided); a.Local != full.Local || a.Global != full.Global {
				adaptive++
			}
			if s := se.Extend(p.Q, p.T, p.H0); s.Local != full.Local || s.Global != full.Global {
				seedex++
			}
		}
		t.Add(pes, fixed, adaptive, seedex, len(w.Problems))
	}
	return t
}

func workloadJobs(w *Workload) []fpga.Job {
	reps := w.CheckOutcomes(20, core.ModePaper)
	jobs := make([]fpga.Job, len(w.Problems))
	for i, p := range w.Problems {
		jobs[i] = fpga.Job{QLen: len(p.Q), TLen: len(p.T), NeedsEdit: reps[i].EditRan, Rerun: !reps[i].Pass}
	}
	return jobs
}

package bench

import (
	"strings"
	"testing"
	"time"
)

// TestServeBenchChaos runs a miniature chaos load test: the device-backed
// engine serves under fault injection, the report carries the per-point
// fault counters, and both renderings include them.
func TestServeBenchChaos(t *testing.T) {
	w := smallWorkload(t)
	rep := ServeBench(w, ServeBenchConfig{
		Concurrency: []int{2},
		Duration:    50 * time.Millisecond,
		ChaosRate:   0.05,
		ChaosSeed:   9,
	})
	if rep.ChaosRate != 0.05 || rep.ChaosSeed != 9 || rep.Mode != "strict" {
		t.Fatalf("chaos config not reflected: rate=%g seed=%d mode=%q", rep.ChaosRate, rep.ChaosSeed, rep.Mode)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points: %d, want batched+unbatched", len(rep.Points))
	}
	var injected int64
	for _, p := range rep.Points {
		if p.Faults == nil {
			t.Fatalf("point %s/%d has no fault counters", p.Config, p.Concurrency)
		}
		if p.Jobs == 0 {
			t.Fatalf("point %s/%d served no jobs", p.Config, p.Concurrency)
		}
		injected += p.Faults.Injected.Total()
	}
	if injected == 0 {
		t.Fatal("chaos bench injected nothing")
	}
	if !strings.Contains(rep.String(), "chaos ") {
		t.Fatalf("summary missing chaos lines:\n%s", rep)
	}
	if data, err := rep.JSON(); err != nil || !strings.Contains(string(data), `"detected_faults"`) {
		t.Fatalf("JSON missing faults section (err=%v)", err)
	}
}

package bench

import (
	"strings"
	"testing"
	"time"
)

// TestServeBenchChaos runs a miniature chaos load test: the device-backed
// engine serves under fault injection, the report carries the per-point
// fault counters, and both renderings include them.
// TestServeBenchTraced runs the trace-overhead mode: the batched
// settings rerun with span tracing sampled, the traced point carries the
// tracer's own counters, and the report quantifies the overhead.
func TestServeBenchTraced(t *testing.T) {
	w := smallWorkload(t)
	rep := ServeBench(w, ServeBenchConfig{
		Concurrency: []int{2},
		Duration:    50 * time.Millisecond,
		TraceSample: 1,
	})
	if rep.TraceSample != 1 {
		t.Fatalf("trace sample not reflected: %d", rep.TraceSample)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("points: %d, want batched+unbatched+batched-traced+batched-tail", len(rep.Points))
	}
	var traced, tailed *ServePoint
	for i := range rep.Points {
		switch rep.Points[i].Config {
		case "batched-traced":
			traced = &rep.Points[i]
		case "batched-tail":
			tailed = &rep.Points[i]
		}
	}
	if traced == nil || traced.Jobs == 0 {
		t.Fatalf("no traced point with work: %+v", traced)
	}
	if traced.Trace == nil || traced.Trace.SampledTotal == 0 || traced.Trace.SpansTotal == 0 {
		t.Fatalf("traced point missing tracer counters: %+v", traced.Trace)
	}
	if rep.TraceOverheadPct == 0 {
		t.Fatal("trace overhead not computed")
	}
	if tailed == nil || tailed.Jobs == 0 {
		t.Fatalf("no tail point with work: %+v", tailed)
	}
	if tailed.Trace == nil || !tailed.Trace.TailEnabled || tailed.Trace.TailStarted == 0 {
		t.Fatalf("tail point missing tail counters: %+v", tailed.Trace)
	}
	if rep.TailOverheadPct == 0 {
		t.Fatal("tail overhead not computed")
	}
	if !strings.Contains(rep.String(), "tracing 1/1 overhead") {
		t.Fatalf("summary missing tracing line:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "tail sampling overhead") {
		t.Fatalf("summary missing tail overhead line:\n%s", rep)
	}
	if data, err := rep.JSON(); err != nil || !strings.Contains(string(data), `"trace_overhead_pct"`) ||
		!strings.Contains(string(data), `"tail_overhead_pct"`) {
		t.Fatalf("JSON missing overhead fields (err=%v)", err)
	}
}

func TestServeBenchChaos(t *testing.T) {
	w := smallWorkload(t)
	rep := ServeBench(w, ServeBenchConfig{
		Concurrency: []int{2},
		Duration:    50 * time.Millisecond,
		ChaosRate:   0.05,
		ChaosSeed:   9,
	})
	if rep.ChaosRate != 0.05 || rep.ChaosSeed != 9 || rep.Mode != "strict" {
		t.Fatalf("chaos config not reflected: rate=%g seed=%d mode=%q", rep.ChaosRate, rep.ChaosSeed, rep.Mode)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points: %d, want batched+unbatched", len(rep.Points))
	}
	var injected int64
	for _, p := range rep.Points {
		if p.Faults == nil {
			t.Fatalf("point %s/%d has no fault counters", p.Config, p.Concurrency)
		}
		if p.Jobs == 0 {
			t.Fatalf("point %s/%d served no jobs", p.Config, p.Concurrency)
		}
		injected += p.Faults.Injected.Total()
	}
	if injected == 0 {
		t.Fatal("chaos bench injected nothing")
	}
	if !strings.Contains(rep.String(), "chaos ") {
		t.Fatalf("summary missing chaos lines:\n%s", rep)
	}
	if data, err := rep.JSON(); err != nil || !strings.Contains(string(data), `"detected_faults"`) {
		t.Fatalf("JSON missing faults section (err=%v)", err)
	}
}

// TestServeBenchShardCurve runs the sharded column: the batched settings
// rerun behind the routing tier at each requested shard count, and the
// report carries the scaling curve against the 1-shard baseline.
func TestServeBenchShardCurve(t *testing.T) {
	w := smallWorkload(t)
	rep := ServeBench(w, ServeBenchConfig{
		Concurrency: []int{4},
		Duration:    50 * time.Millisecond,
		TraceSample: -1,
		Shards:      []int{2},
	})
	if len(rep.Points) != 3 {
		t.Fatalf("points: %d, want batched+unbatched+sharded-2", len(rep.Points))
	}
	var sharded *ServePoint
	for i := range rep.Points {
		if rep.Points[i].Config == "sharded-2" {
			sharded = &rep.Points[i]
		}
	}
	if sharded == nil || sharded.Jobs == 0 {
		t.Fatalf("no sharded point with work: %+v", sharded)
	}
	if rep.RoutePolicy != "least-loaded" {
		t.Fatalf("route policy not defaulted: %q", rep.RoutePolicy)
	}
	if len(rep.ShardScaling) != 1 || rep.ShardScaling[0].Shards != 2 || rep.ShardScaling[0].Speedup <= 0 {
		t.Fatalf("shard scaling curve: %+v", rep.ShardScaling)
	}
	if rep.ShardGainHighConc != rep.ShardScaling[0].Speedup {
		t.Fatalf("headline shard gain %.3f != curve point %.3f", rep.ShardGainHighConc, rep.ShardScaling[0].Speedup)
	}
	if !strings.Contains(rep.String(), "2 shards (least-loaded)") {
		t.Fatalf("summary missing shard scaling line:\n%s", rep)
	}
	if data, err := rep.JSON(); err != nil || !strings.Contains(string(data), `"shard_scaling"`) {
		t.Fatalf("JSON missing shard scaling (err=%v)", err)
	}
}

// TestServeHistoryRoundTrip pins the BENCH_serve.json schema: histories
// append and re-parse, and a legacy bare-report file auto-converts to a
// one-run history labeled "legacy".
func TestServeHistoryRoundTrip(t *testing.T) {
	legacy, err := ServeBenchReport{Band: 21, Mode: "paper", GainHighConc: 2.5}.JSON()
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseServeHistory(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Runs) != 1 || h.Runs[0].PR != "legacy" || h.Runs[0].GainHighConc != 2.5 {
		t.Fatalf("legacy conversion: %+v", h.Runs)
	}

	h.Runs = append(h.Runs, ServeRun{PR: "pr7", ServeBenchReport: ServeBenchReport{Band: 21, ShardGainHighConc: 1.2}})
	data, err := h.JSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseServeHistory(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Runs) != 2 || again.Latest().PR != "pr7" || again.Latest().ShardGainHighConc != 1.2 {
		t.Fatalf("history round trip: %+v", again.Runs)
	}

	if empty, err := ParseServeHistory(nil); err != nil || len(empty.Runs) != 0 || empty.Latest() != nil {
		t.Fatalf("empty history: %+v err=%v", empty, err)
	}
}

package bench

import (
	"strings"
	"testing"
	"time"
)

// TestServeBenchChaos runs a miniature chaos load test: the device-backed
// engine serves under fault injection, the report carries the per-point
// fault counters, and both renderings include them.
// TestServeBenchTraced runs the trace-overhead mode: the batched
// settings rerun with span tracing sampled, the traced point carries the
// tracer's own counters, and the report quantifies the overhead.
func TestServeBenchTraced(t *testing.T) {
	w := smallWorkload(t)
	rep := ServeBench(w, ServeBenchConfig{
		Concurrency: []int{2},
		Duration:    50 * time.Millisecond,
		TraceSample: 1,
	})
	if rep.TraceSample != 1 {
		t.Fatalf("trace sample not reflected: %d", rep.TraceSample)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points: %d, want batched+unbatched+batched-traced", len(rep.Points))
	}
	var traced *ServePoint
	for i := range rep.Points {
		if rep.Points[i].Config == "batched-traced" {
			traced = &rep.Points[i]
		}
	}
	if traced == nil || traced.Jobs == 0 {
		t.Fatalf("no traced point with work: %+v", traced)
	}
	if traced.Trace == nil || traced.Trace.SampledTotal == 0 || traced.Trace.SpansTotal == 0 {
		t.Fatalf("traced point missing tracer counters: %+v", traced.Trace)
	}
	if rep.TraceOverheadPct == 0 {
		t.Fatal("trace overhead not computed")
	}
	if !strings.Contains(rep.String(), "tracing 1/1 overhead") {
		t.Fatalf("summary missing tracing line:\n%s", rep)
	}
	if data, err := rep.JSON(); err != nil || !strings.Contains(string(data), `"trace_overhead_pct"`) {
		t.Fatalf("JSON missing trace overhead (err=%v)", err)
	}
}

func TestServeBenchChaos(t *testing.T) {
	w := smallWorkload(t)
	rep := ServeBench(w, ServeBenchConfig{
		Concurrency: []int{2},
		Duration:    50 * time.Millisecond,
		ChaosRate:   0.05,
		ChaosSeed:   9,
	})
	if rep.ChaosRate != 0.05 || rep.ChaosSeed != 9 || rep.Mode != "strict" {
		t.Fatalf("chaos config not reflected: rate=%g seed=%d mode=%q", rep.ChaosRate, rep.ChaosSeed, rep.Mode)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points: %d, want batched+unbatched", len(rep.Points))
	}
	var injected int64
	for _, p := range rep.Points {
		if p.Faults == nil {
			t.Fatalf("point %s/%d has no fault counters", p.Config, p.Concurrency)
		}
		if p.Jobs == 0 {
			t.Fatalf("point %s/%d served no jobs", p.Config, p.Concurrency)
		}
		injected += p.Faults.Injected.Total()
	}
	if injected == 0 {
		t.Fatal("chaos bench injected nothing")
	}
	if !strings.Contains(rep.String(), "chaos ") {
		t.Fatalf("summary missing chaos lines:\n%s", rep)
	}
	if data, err := rep.JSON(); err != nil || !strings.Contains(string(data), `"detected_faults"`) {
		t.Fatalf("JSON missing faults section (err=%v)", err)
	}
}

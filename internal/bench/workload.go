// Package bench regenerates every table and figure of the paper's
// evaluation (see the experiment index in DESIGN.md): one generator per
// artifact, shared by cmd/seedex-bench and the repository's benchmarks.
package bench

import (
	"math/rand"
	"sync"

	"seedex/internal/align"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/genome"
	"seedex/internal/readsim"
)

// Problem is one seed-extension instance harvested from the pipeline.
type Problem struct {
	Q, T []byte
	H0   int
}

// Workload is a reproducible corpus: a synthetic genome, simulated reads,
// and the actual extension problems the aligner dispatches for them.
type Workload struct {
	Ref      []byte
	Reads    []readsim.Read
	Problems []Problem
	Scoring  align.Scoring
}

// captureExtender records every extension subproblem while delegating to
// the full-band reference kernel.
type captureExtender struct {
	sc   align.Scoring
	mu   sync.Mutex
	prob []Problem
}

func (c *captureExtender) Extend(q, t []byte, h0 int) align.ExtendResult {
	c.mu.Lock()
	c.prob = append(c.prob, Problem{Q: append([]byte(nil), q...), T: append([]byte(nil), t...), H0: h0})
	c.mu.Unlock()
	return align.Extend(q, t, h0, c.sc)
}

// BuildWorkload simulates a genome of refLen with nReads 101 bp reads
// (realistic error profile, including garbage tails) and harvests the
// extension problems by running the aligner's seeding and extension
// stages with the reference kernel.
func BuildWorkload(refLen, nReads int, seed int64) (*Workload, error) {
	return BuildWorkloadCfg(refLen, readsim.RealisticConfig(nReads), seed)
}

// BuildWorkloadCfg is BuildWorkload with an explicit read-simulation
// configuration.
func BuildWorkloadCfg(refLen int, cfg readsim.Config, seed int64) (*Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	ref := genome.Simulate(genome.SimConfig{Length: refLen, RepeatFraction: 0.05}, rng)
	reads := readsim.Simulate(ref, cfg, rng)
	cap := &captureExtender{sc: align.DefaultScoring()}
	a, err := bwamem.New("chrSim", ref, cap)
	if err != nil {
		return nil, err
	}
	pr := make([]bwamem.Read, len(reads))
	for i, r := range reads {
		pr[i] = bwamem.Read{Name: r.ID, Seq: r.Seq, Qual: r.Qual}
	}
	a.Run(pr, 0)
	return &Workload{Ref: ref, Reads: reads, Problems: cap.prob, Scoring: cap.sc}, nil
}

// PipelineReads converts the workload's reads for bwamem.Run.
func (w *Workload) PipelineReads() []bwamem.Read {
	out := make([]bwamem.Read, len(w.Reads))
	for i, r := range w.Reads {
		out[i] = bwamem.Read{Name: r.ID, Seq: r.Seq, Qual: r.Qual}
	}
	return out
}

// CheckOutcomes runs the ModePaper checker at one-sided band w over all
// problems and returns per-problem reports.
func (w *Workload) CheckOutcomes(band int, mode core.Mode) []core.Report {
	cfg := core.Config{Band: band, Scoring: w.Scoring, Kind: core.SemiGlobal, Mode: mode}
	out := make([]core.Report, len(w.Problems))
	for i, p := range w.Problems {
		_, out[i] = core.Check(p.Q, p.T, p.H0, cfg)
	}
	return out
}

package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/readsim"
)

// Workload150 builds the standard 150 bp extension workload used by the
// kernel benchmarks (the perf-trajectory baseline): realistic error
// profile at the longer modern Illumina read length.
func Workload150(refLen, nReads int, seed int64) (*Workload, error) {
	cfg := readsim.RealisticConfig(nReads)
	cfg.ReadLen = 150
	return BuildWorkloadCfg(refLen, cfg, seed)
}

// Workload100 builds a 100 bp extension workload: short enough that the
// score ceiling of most extension problems fits the 8-bit SWAR tier, so
// the packed batch kernels run mostly eight problems per word.
func Workload100(refLen, nReads int, seed int64) (*Workload, error) {
	cfg := readsim.RealisticConfig(nReads)
	cfg.ReadLen = 100
	return BuildWorkloadCfg(refLen, cfg, seed)
}

// ExtendKernelResult is one kernel's measurement over the workload.
type ExtendKernelResult struct {
	// Kernel names the code path: full/seed, full/workspace, banded/seed,
	// banded/workspace, checked/pooled, checked/workspace.
	Kernel string `json:"kernel"`
	// NsPerOp is wall time per extension.
	NsPerOp float64 `json:"ns_per_op"`
	// CellsPerSec is DP throughput (computed cells per second).
	CellsPerSec float64 `json:"cells_per_sec"`
	// AllocsPerOp is heap allocations per extension in steady state.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// ExtendBenchReport is the machine-readable perf snapshot emitted as
// BENCH_extend.json so future changes have a trajectory to compare
// against.
type ExtendBenchReport struct {
	ReadLen  int                  `json:"read_len"`
	Problems int                  `json:"problems"`
	Band     int                  `json:"band"`
	Kernels  []ExtendKernelResult `json:"kernels"`
	// SpeedupFull is the full-band workspace kernel's cells/s over the
	// seed (reference) kernel.
	SpeedupFull float64 `json:"speedup_full_ws_vs_seed"`
	// SpeedupBanded is the banded workspace kernel's cells/s over the
	// seed banded kernel.
	SpeedupBanded float64 `json:"speedup_banded_ws_vs_seed"`
	// SpeedupBatchBanded is the packed (SWAR) banded batch kernel's
	// cells/s over the scalar workspace banded kernel — the PR 2 tentpole
	// figure.
	SpeedupBatchBanded float64 `json:"speedup_banded_batch_vs_ws"`
	// SpeedupBatchBandedNs is the same comparison in wall time per
	// extension (ns/op ratio), immune to the two paths' different cell
	// accounting (the batch kernels report a deterministic full-sweep
	// count; the scalar kernel counts early-exited rows).
	SpeedupBatchBandedNs float64 `json:"speedup_banded_batch_vs_ws_nsop"`
	// SpeedupBatchFull is the packed full-width batch kernel's cells/s
	// over the scalar workspace full-width kernel.
	SpeedupBatchFull float64 `json:"speedup_full_batch_vs_ws"`
}

// JSON renders the report for BENCH_extend.json.
func (r ExtendBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Kernel returns the named kernel row, or nil when the report lacks it.
func (r *ExtendBenchReport) Kernel(name string) *ExtendKernelResult {
	for i := range r.Kernels {
		if r.Kernels[i].Kernel == name {
			return &r.Kernels[i]
		}
	}
	return nil
}

// ExtendRun is one recorded run in the BENCH_extend.json history: the
// report plus the PR (or other label) that produced it.
type ExtendRun struct {
	PR string `json:"pr"`
	ExtendBenchReport
}

// ExtendHistory is the BENCH_extend.json schema: an append-only array of
// runs, oldest first — the perf trajectory across PRs. Consumers wanting
// "the current numbers" read the latest entry (usually constrained to
// their workload's read length).
type ExtendHistory struct {
	Runs []ExtendRun `json:"runs"`
}

// Latest returns the newest run, or nil for an empty history.
func (h *ExtendHistory) Latest() *ExtendRun {
	if len(h.Runs) == 0 {
		return nil
	}
	return &h.Runs[len(h.Runs)-1]
}

// LatestFor returns the newest run measured at the given read length
// (runs at different read lengths are not comparable), or nil.
func (h *ExtendHistory) LatestFor(readLen int) *ExtendRun {
	for i := len(h.Runs) - 1; i >= 0; i-- {
		if h.Runs[i].ReadLen == readLen {
			return &h.Runs[i]
		}
	}
	return nil
}

// JSON renders the history for BENCH_extend.json.
func (h ExtendHistory) JSON() ([]byte, error) {
	return json.MarshalIndent(h, "", "  ")
}

// ParseExtendHistory decodes a BENCH_extend.json document. The legacy
// schema — a single bare ExtendBenchReport object — converts to a
// one-run history labeled "legacy", so appending to a pre-history file
// preserves its measurement as the first trajectory point.
func ParseExtendHistory(data []byte) (ExtendHistory, error) {
	var h ExtendHistory
	if len(bytes.TrimSpace(data)) == 0 {
		return h, nil
	}
	var probe struct {
		Runs *[]ExtendRun `json:"runs"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return h, fmt.Errorf("bench: parsing extend history: %w", err)
	}
	if probe.Runs == nil {
		var legacy ExtendBenchReport
		if err := json.Unmarshal(data, &legacy); err != nil {
			return h, fmt.Errorf("bench: parsing legacy extend report: %w", err)
		}
		h.Runs = []ExtendRun{{PR: "legacy", ExtendBenchReport: legacy}}
		return h, nil
	}
	h.Runs = *probe.Runs
	return h, nil
}

// ReadExtendHistory loads the history file at path; a missing file is an
// empty history (the first run creates it).
func ReadExtendHistory(path string) (ExtendHistory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ExtendHistory{}, nil
	}
	if err != nil {
		return ExtendHistory{}, err
	}
	return ParseExtendHistory(data)
}

// String renders a human-readable summary table.
func (r ExtendBenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %14s %10s\n", "kernel", "ns/op", "cells/s", "allocs/op")
	for _, k := range r.Kernels {
		fmt.Fprintf(&b, "%-18s %12.0f %14.3e %10.2f\n", k.Kernel, k.NsPerOp, k.CellsPerSec, k.AllocsPerOp)
	}
	fmt.Fprintf(&b, "full-band workspace vs seed kernel: %.2fx cells/s\n", r.SpeedupFull)
	fmt.Fprintf(&b, "banded    workspace vs seed kernel: %.2fx cells/s\n", r.SpeedupBanded)
	fmt.Fprintf(&b, "banded    batch (SWAR) vs workspace: %.2fx cells/s, %.2fx ns/op\n", r.SpeedupBatchBanded, r.SpeedupBatchBandedNs)
	fmt.Fprintf(&b, "full-band batch (SWAR) vs workspace: %.2fx cells/s", r.SpeedupBatchFull)
	return b.String()
}

// measureKernel times fn over every problem for the given number of
// rounds (after one warmup pass) and samples steady-state allocations.
// fn returns the number of DP cells the call computed.
func measureKernel(name string, probs []Problem, rounds int, fn func(Problem) int64) ExtendKernelResult {
	for _, p := range probs {
		fn(p) // warm caches, pools and workspaces
	}
	var cells int64
	ops := 0
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i := range probs {
			cells += fn(probs[i])
			ops++
		}
	}
	elapsed := time.Since(start)

	// Steady-state allocation count via the runtime's malloc counter
	// (bench is a library, so testing.AllocsPerRun is not available).
	prev := runtime.GOMAXPROCS(1)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := range probs {
		fn(probs[i])
	}
	runtime.ReadMemStats(&m1)
	runtime.GOMAXPROCS(prev)

	return ExtendKernelResult{
		Kernel:      name,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		CellsPerSec: float64(cells) / elapsed.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(len(probs)),
	}
}

// extendBatchSize is the chunk handed to the packed batch kernels per
// call — the shape of one accelerator DMA batch.
const extendBatchSize = 256

// measureBatch times a batch kernel over the problems in chunks of
// extendBatchSize, reporting per-extension figures comparable with
// measureKernel's rows. fn processes jobs[lo:hi] and returns the DP cells
// it computed.
func measureBatch(name string, probs []Problem, rounds int, fn func(jobs []align.Job) int64) ExtendKernelResult {
	jobs := make([]align.Job, len(probs))
	for i, p := range probs {
		jobs[i] = align.Job{Q: p.Q, T: p.T, H0: p.H0}
	}
	sweep := func() int64 {
		var cells int64
		for lo := 0; lo < len(jobs); lo += extendBatchSize {
			hi := lo + extendBatchSize
			if hi > len(jobs) {
				hi = len(jobs)
			}
			cells += fn(jobs[lo:hi])
		}
		return cells
	}
	sweep() // warm workspaces
	var cells int64
	ops := 0
	start := time.Now()
	for r := 0; r < rounds; r++ {
		cells += sweep()
		ops += len(jobs)
	}
	elapsed := time.Since(start)

	prev := runtime.GOMAXPROCS(1)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	sweep()
	runtime.ReadMemStats(&m1)
	runtime.GOMAXPROCS(prev)

	return ExtendKernelResult{
		Kernel:      name,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		CellsPerSec: float64(cells) / elapsed.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(len(probs)),
	}
}

// ExtendBench measures every extension code path over the workload's
// harvested problems: the reference ("seed") kernels, the workspace
// kernels, and the full check workflow (pooled and workspace-held).
func ExtendBench(w *Workload, band, rounds int) ExtendBenchReport {
	if rounds <= 0 {
		rounds = 3
	}
	probs := w.Problems
	sc := w.Scoring
	rep := ExtendBenchReport{Problems: len(probs), Band: band}
	if len(w.Reads) > 0 {
		rep.ReadLen = len(w.Reads[0].Seq)
	}
	if len(probs) == 0 {
		return rep
	}

	ws := align.NewWorkspace()
	ccfg := core.Config{Band: band, Scoring: sc, Kind: core.SemiGlobal, Mode: core.ModeStrict}
	chk := core.NewChecker(ccfg)

	rep.Kernels = append(rep.Kernels,
		measureKernel("full/seed", probs, rounds, func(p Problem) int64 {
			return align.ExtendRef(p.Q, p.T, p.H0, sc).Cells
		}),
		measureKernel("full/workspace", probs, rounds, func(p Problem) int64 {
			return align.ExtendWS(ws, p.Q, p.T, p.H0, sc).Cells
		}),
		measureKernel("banded/seed", probs, rounds, func(p Problem) int64 {
			r, _ := align.ExtendBandedRef(p.Q, p.T, p.H0, sc, band)
			return r.Cells
		}),
		measureKernel("banded/workspace", probs, rounds, func(p Problem) int64 {
			r, _ := align.ExtendBandedWS(ws, p.Q, p.T, p.H0, sc, band)
			return r.Cells
		}),
		measureKernel("checked/pooled", probs, rounds, func(p Problem) int64 {
			r, _ := core.Check(p.Q, p.T, p.H0, ccfg)
			return r.Cells
		}),
		measureKernel("checked/workspace", probs, rounds, func(p Problem) int64 {
			r, _ := chk.Check(p.Q, p.T, p.H0)
			return r.Cells
		}),
	)
	// Packed inter-sequence (SWAR) batch kernels: many problems share each
	// machine word, so these rows are the software mirror of the
	// accelerator's batch datapath.
	bres := make([]align.ExtendResult, extendBatchSize)
	rep.Kernels = append(rep.Kernels,
		measureBatch("banded/batch", probs, rounds, func(jobs []align.Job) int64 {
			align.ExtendBandedBatchWS(ws, jobs, sc, band, bres[:len(jobs)], nil)
			var cells int64
			for i := range jobs {
				cells += bres[i].Cells
			}
			return cells
		}),
		measureBatch("full/batch", probs, rounds, func(jobs []align.Job) int64 {
			align.ExtendBatchFullWS(ws, jobs, sc, bres[:len(jobs)])
			var cells int64
			for i := range jobs {
				cells += bres[i].Cells
			}
			return cells
		}),
	)
	byName := map[string]ExtendKernelResult{}
	for _, k := range rep.Kernels {
		byName[k.Kernel] = k
	}
	if s := byName["full/seed"].CellsPerSec; s > 0 {
		rep.SpeedupFull = byName["full/workspace"].CellsPerSec / s
	}
	if s := byName["banded/seed"].CellsPerSec; s > 0 {
		rep.SpeedupBanded = byName["banded/workspace"].CellsPerSec / s
	}
	if s := byName["banded/workspace"].CellsPerSec; s > 0 {
		rep.SpeedupBatchBanded = byName["banded/batch"].CellsPerSec / s
	}
	if s := byName["banded/batch"].NsPerOp; s > 0 {
		rep.SpeedupBatchBandedNs = byName["banded/workspace"].NsPerOp / s
	}
	if s := byName["full/workspace"].CellsPerSec; s > 0 {
		rep.SpeedupBatchFull = byName["full/batch"].CellsPerSec / s
	}
	return rep
}

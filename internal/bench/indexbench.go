package bench

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/fmindex"
	"seedex/internal/genome"
	"seedex/internal/readsim"
	"seedex/internal/refstore"
	"seedex/internal/server"
)

// IndexBenchConfig shapes the reference-index lifecycle benchmark:
// container build and publish time, store open (load + warmup) time,
// mmap-served /v1/map throughput at increasing concurrency, and a burst
// of hot reloads fired into the measured window to price generation
// swaps under load.
type IndexBenchConfig struct {
	// RefLen is the simulated reference length (default 60 000).
	RefLen int
	// Band is the one-sided band of the served extender (default 21).
	Band int
	// Reads is the number of distinct served read templates (default 64).
	Reads int
	// ReadsPerRequest is the client request size (default 8).
	ReadsPerRequest int
	// Concurrency lists the client counts to sweep (default 8, 32).
	Concurrency []int
	// Duration is the measurement window per point (default 1s).
	Duration time.Duration
	// Reloads is how many POST /admin/reload swaps fire during the
	// highest-concurrency point (default 3).
	Reloads int
	// Seed pins the workload RNG.
	Seed int64
}

func (c IndexBenchConfig) withDefaults() IndexBenchConfig {
	if c.RefLen <= 0 {
		c.RefLen = 60_000
	}
	if c.Band <= 0 {
		c.Band = 21
	}
	if c.Reads <= 0 {
		c.Reads = 64
	}
	if c.ReadsPerRequest <= 0 {
		c.ReadsPerRequest = 8
	}
	if len(c.Concurrency) == 0 {
		c.Concurrency = []int{8, 32}
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Reloads <= 0 {
		c.Reloads = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// IndexServeReport is the index-store section of the BENCH_serve.json
// run entry: how long the container takes to build, publish, map, and
// warm, what /v1/map sustains when served from the read-only mapping,
// and what a reload storm inside the measured window does to throughput
// (generation swaps must cost requests nothing — the old generation
// drains while the new one loads).
type IndexServeReport struct {
	RefLen    int   `json:"ref_len"`
	ReadLen   int   `json:"read_len"`
	Band      int   `json:"band"`
	FileBytes int64 `json:"file_bytes"`
	Contigs   int   `json:"contigs"`
	// Build covers BuildIndex (suffix array + FM-index construction);
	// Publish the container encode + fsync + rename; Load the store's
	// open-and-validate of the mapped file; Warmup the page-touch pass.
	BuildMs   float64 `json:"build_ms"`
	PublishMs float64 `json:"publish_ms"`
	LoadMs    float64 `json:"load_ms"`
	WarmupMs  float64 `json:"warmup_ms"`
	MmapBytes int64   `json:"mmap_bytes"`
	// ZeroCopy reports whether the suffix array was served straight from
	// the mapping (8-byte-aligned section) rather than copied to heap.
	ZeroCopy        bool       `json:"zero_copy"`
	ReadsPerRequest int        `json:"reads_per_request"`
	DurationMs      float64    `json:"duration_ms_per_point"`
	Points          []MapPoint `json:"points"`
	// Reload storm results: swaps fired during the highest-concurrency
	// point, and the store counters after.
	ReloadsFired   int64 `json:"reloads_fired"`
	Reloads        int64 `json:"reloads"`
	ReloadFailures int64 `json:"reload_failures"`
	Rollbacks      int64 `json:"rollbacks"`
	// Equivalence sweep: every template read aligned by the mmap-decoded
	// index and a freshly built in-heap index; Mismatches must be zero.
	EquivReads      int `json:"equivalence_reads"`
	EquivMismatches int `json:"equivalence_mismatches"`
}

// String renders a human-readable summary table.
func (r IndexServeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "index store: %d file bytes, %d contigs, build %.1fms, publish %.1fms, load %.1fms, warmup %.1fms, zero-copy=%v\n",
		r.FileBytes, r.Contigs, r.BuildMs, r.PublishMs, r.LoadMs, r.WarmupMs, r.ZeroCopy)
	fmt.Fprintf(&b, "%-12s %5s %12s %12s %10s %10s\n",
		"config", "conc", "reads/s", "requests", "p50(us)", "p99(us)")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s %5d %12.0f %12d %10.0f %10.0f\n",
			p.Config, p.Concurrency, p.ReadsPerSec, p.Requests, p.P50Us, p.P99Us)
	}
	fmt.Fprintf(&b, "reload storm: %d fired in-window, store counted reloads=%d failures=%d rollbacks=%d\n",
		r.ReloadsFired, r.Reloads, r.ReloadFailures, r.Rollbacks)
	fmt.Fprintf(&b, "equivalence: %d reads mmap vs heap, %d mismatches\n", r.EquivReads, r.EquivMismatches)
	return strings.TrimRight(b.String(), "\n")
}

// IndexServeBench measures the crash-safe index lifecycle end to end:
// build + publish a container, open it through the generation store,
// prove the mmap-decoded index maps bit-identically to a heap-built
// one, then load-test /v1/map served from the mapping — with a hot
// reload storm fired into the highest-concurrency window. A non-zero
// equivalence mismatch count is an error.
func IndexServeBench(cfg IndexBenchConfig) (IndexServeReport, error) {
	cfg = cfg.withDefaults()
	rep := IndexServeReport{
		RefLen:          cfg.RefLen,
		ReadLen:         mapReadLen,
		Band:            cfg.Band,
		ReadsPerRequest: cfg.ReadsPerRequest,
		DurationMs:      float64(cfg.Duration.Nanoseconds()) / 1e6,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	refSeq := genome.Simulate(genome.SimConfig{Length: cfg.RefLen}, rng)
	rcfg := readsim.DefaultConfig(cfg.Reads)
	rcfg.ReadLen = mapReadLen
	rcfg.ErrRate = 0.012
	reads := readsim.Simulate(refSeq, rcfg, rng)

	t0 := time.Now()
	ref, ix, err := bwamem.BuildIndex([]bwamem.Contig{{Name: "chrIX", Seq: refSeq}})
	if err != nil {
		return rep, err
	}
	rep.BuildMs = float64(time.Since(t0).Nanoseconds()) / 1e6

	dir, err := os.MkdirTemp("", "seedex-indexbench")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ref.rix")
	t0 = time.Now()
	info, err := refstore.WriteFile(path, ref, ix)
	if err != nil {
		return rep, err
	}
	rep.PublishMs = float64(time.Since(t0).Nanoseconds()) / 1e6
	rep.FileBytes = info.FileBytes
	rep.Contigs = info.Contigs

	store, err := refstore.Open(path, refstore.Options{})
	if err != nil {
		return rep, err
	}
	defer store.Close()
	st := store.Status()
	rep.LoadMs, rep.WarmupMs, rep.MmapBytes = st.LoadMs, st.WarmupMs, st.MappedBytes

	newAligner := func(r *bwamem.Reference, x *fmindex.Index) *bwamem.Aligner {
		se := core.New(cfg.Band)
		se.Config.Mode = core.ModePaper
		return bwamem.NewWithIndex(r, x, se)
	}

	// Equivalence: the generation decoded from the mapping must align
	// every template exactly as the heap-built index does.
	g := store.Acquire()
	if g == nil {
		return rep, fmt.Errorf("bench: store has no live generation")
	}
	rep.ZeroCopy = g.Info().ZeroCopy
	heapAl, mmapAl := newAligner(ref, ix), newAligner(g.Ref(), g.Index())
	rep.EquivReads = len(reads)
	for _, r := range reads {
		if !sameMapAlignment(heapAl.AlignRead(r.Seq), mmapAl.AlignRead(r.Seq)) {
			rep.EquivMismatches++
		}
	}
	g.Release()
	if rep.EquivMismatches > 0 {
		return rep, fmt.Errorf("bench: mmap-served index diverged: %d of %d reads map differently than the heap-built index",
			rep.EquivMismatches, rep.EquivReads)
	}

	s := server.New(server.Config{
		Extender:   core.New(cfg.Band),
		RefStore:   store,
		NewAligner: newAligner,
	})
	defer s.Close()
	bodies := mapBodies(reads, cfg.ReadsPerRequest)
	for i, conc := range cfg.Concurrency {
		var during func(string)
		if i == len(cfg.Concurrency)-1 {
			// Reload storm inside the measured window: swaps spaced across
			// the duration, each one remapping the file and draining the
			// old generation under live traffic.
			during = func(base string) {
				gap := cfg.Duration / time.Duration(cfg.Reloads+1)
				for k := 0; k < cfg.Reloads; k++ {
					time.Sleep(gap)
					resp, err := http.Post(base+"/admin/reload", "application/json", nil)
					if err != nil {
						continue
					}
					drainBody(resp)
					rep.ReloadsFired++
				}
			}
		}
		p := measureMapPoint(s, bodies, conc, cfg.ReadsPerRequest, cfg.Duration, during)
		p.Config = "mmap-store"
		rep.Points = append(rep.Points, p)
	}
	st = store.Status()
	rep.Reloads, rep.ReloadFailures, rep.Rollbacks = st.Reloads, st.ReloadFailures, st.Rollbacks
	return rep, nil
}

package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/genome"
	"seedex/internal/readsim"
	"seedex/internal/server"
)

// MapBenchConfig shapes the pre-alignment filter tier's service
// benchmark: the same /v1/map workload is served with the filter off
// (control) and on, at increasing client concurrency, after proving the
// two configurations map an equivalence corpus identically.
type MapBenchConfig struct {
	// Threshold is the filter's edit threshold as a fraction of read
	// length (0 = bwamem.DefaultPrefilterThreshold).
	Threshold float64
	// Band is the one-sided band of the served extender (default 21).
	Band int
	// Concurrency lists the client counts to sweep (default 8, 32).
	Concurrency []int
	// ReadsPerRequest is the client request size (default 8).
	ReadsPerRequest int
	// Duration is the measurement window per point (default 1s).
	Duration time.Duration
	// Templates is the number of distinct in-repeat reads in the served
	// rotation (default 24); DecoysPerRead the decoy copies planted for
	// each (default 8). Together they set how many junk chains the
	// filter gets to reject per read.
	Templates     int
	DecoysPerRead int
	// MaxChains is the per-read extension cap of both served aligners
	// (default 10, the chainer's own output cap — a repeat-stressed
	// setting; the aligner default of 5 leaves at most three decoy
	// chains per read for the filter to reject).
	MaxChains int
	// EquivReads adds this many randomly simulated reads to the
	// equivalence corpus on top of the templates (default 200).
	EquivReads int
	// Seed pins the workload RNG.
	Seed int64
}

func (c MapBenchConfig) withDefaults() MapBenchConfig {
	if c.Threshold <= 0 {
		c.Threshold = bwamem.DefaultPrefilterThreshold
	}
	if c.Band <= 0 {
		c.Band = 21
	}
	if len(c.Concurrency) == 0 {
		c.Concurrency = []int{8, 32}
	}
	if c.ReadsPerRequest <= 0 {
		c.ReadsPerRequest = 8
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Templates <= 0 {
		c.Templates = 24
	}
	if c.DecoysPerRead <= 0 {
		c.DecoysPerRead = 8
	}
	if c.MaxChains <= 0 {
		c.MaxChains = 10
	}
	if c.EquivReads <= 0 {
		c.EquivReads = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// MapPoint is one (filter configuration, concurrency) measurement of
// the /v1/map service.
type MapPoint struct {
	Config      string  `json:"config"` // "prefilter-off" or "prefilter-on"
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	Reads       int64   `json:"reads"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	P50Us       float64 `json:"latency_p50_us"`
	P99Us       float64 `json:"latency_p99_us"`
}

// PrefilterServeReport is the filter tier's section of the
// BENCH_serve.json run entry: mapped-reads/s with the filter on vs off
// over a repeat+decoy workload, plus the filter counters and the
// equivalence sweep that certifies the speedup changed no mapping.
type PrefilterServeReport struct {
	Threshold       float64      `json:"threshold"`
	Band            int          `json:"band"`
	ReadLen         int          `json:"read_len"`
	RefLen          int          `json:"ref_len"`
	Templates       int          `json:"templates"`
	DecoysPerRead   int          `json:"decoys_per_read"`
	MaxChains       int          `json:"max_chains"`
	ReadsPerRequest int          `json:"reads_per_request"`
	DurationMs      float64      `json:"duration_ms_per_point"`
	Points          []MapPoint   `json:"points"`
	Gains           []ServeGain  `json:"gains"`
	// GainHighConc is filter-on reads/s over filter-off reads/s at the
	// highest measured concurrency — the tier's headline figure.
	GainHighConc float64 `json:"throughput_gain_high_concurrency"`
	// Filter counters accumulated by the on-configuration across all its
	// points (the equivalence sweep runs on separate aligners).
	Pass      int64 `json:"prefilter_pass"`
	Reject    int64 `json:"prefilter_reject"`
	Rescued   int64 `json:"prefilter_rescued"`
	FalsePass int64 `json:"prefilter_false_pass"`
	// Equivalence sweep: every corpus read aligned by both
	// configurations directly; Mismatches must be zero.
	EquivReads      int `json:"equivalence_reads"`
	EquivMismatches int `json:"equivalence_mismatches"`
}

// String renders a human-readable summary table.
func (r PrefilterServeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %5s %12s %12s %10s %10s\n",
		"config", "conc", "reads/s", "requests", "p50(us)", "p99(us)")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-14s %5d %12.0f %12d %10.0f %10.0f\n",
			p.Config, p.Concurrency, p.ReadsPerSec, p.Requests, p.P50Us, p.P99Us)
	}
	for _, g := range r.Gains {
		fmt.Fprintf(&b, "prefilter on vs off @ %d clients: %.2fx reads/s\n", g.Concurrency, g.Gain)
	}
	fmt.Fprintf(&b, "filter counters: pass=%d reject=%d rescued=%d false-pass=%d\n",
		r.Pass, r.Reject, r.Rescued, r.FalsePass)
	fmt.Fprintf(&b, "equivalence: %d reads on vs off, %d mismatches\n", r.EquivReads, r.EquivMismatches)
	return strings.TrimRight(b.String(), "\n")
}

const mapReadLen = 150

// mapBenchWorld builds the workload the filter tier earns its keep on.
// The reference carries a long repeat twice (so in-repeat reads have a
// distant full-score competitor and the rescue floors sit high) and, for
// every served read template, DecoysPerRead exact copies of the
// template's error-split right segment embedded in unique junk. Each
// template read therefore grows its two genuine chains plus a set of
// heavy decoy chains whose extensions can only reach clipped, sub-floor
// scores — exactly the work the filter rejects without rescue. The
// equivalence corpus adds randomly simulated reads over the same
// reference so the bit-identity sweep also covers ordinary mappings.
func mapBenchWorld(cfg MapBenchConfig) (ref []byte, served, equiv []readsim.Read) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	const errPos = 60 // split 150 bp reads into 60 bp + 89 bp segments
	unit := genome.Simulate(genome.SimConfig{Length: 6_000}, rng)
	junkLen := 3*2_000 + cfg.Templates*cfg.DecoysPerRead*170 + 1_000
	junk := genome.Simulate(genome.SimConfig{Length: junkLen}, rng)
	jp := 0
	take := func(n int) []byte { s := junk[jp : jp+n]; jp += n; return s }

	step := (len(unit) - mapReadLen) / cfg.Templates
	served = make([]readsim.Read, cfg.Templates)
	qual := bytes.Repeat([]byte{'I'}, mapReadLen)
	ref = append(ref, take(2_000)...)
	ref = append(ref, unit...)
	ref = append(ref, take(2_000)...)
	for i := range served {
		p := i * step
		tmpl := append([]byte(nil), unit[p:p+mapReadLen]...)
		tmpl[errPos] = (tmpl[errPos] + 1) & 3
		served[i] = readsim.Read{ID: fmt.Sprintf("tmpl%d", i), Seq: tmpl, Qual: qual}
		// The right segment (error-bounded, so it is a whole SMEM of the
		// template) gets DecoysPerRead exact copies; the junk flanks make
		// any alignment there clip ~60 bp, keeping its certified bound
		// under the repeat-copy floors. The guard base before each copy
		// must differ from the template's error base: if random junk
		// matched it, the query match q[errPos:] at the decoy would be
		// longer than the genuine q[errPos+1:] match and supermaximality
		// would drop the true-locus occurrences from the seed set.
		guard := (tmpl[errPos] + 2) & 3
		for d := 0; d < cfg.DecoysPerRead; d++ {
			ref = append(ref, take(169)...)
			ref = append(ref, guard)
			ref = append(ref, unit[p+errPos+1:p+mapReadLen]...)
		}
	}
	ref = append(ref, take(300)...)
	ref = append(ref, unit...)
	ref = append(ref, take(2_000)...)

	rcfg := readsim.DefaultConfig(cfg.EquivReads)
	rcfg.ReadLen = mapReadLen
	rcfg.ErrRate = 0.012
	equiv = append(append([]readsim.Read(nil), served...), readsim.Simulate(ref, rcfg, rng)...)
	return ref, served, equiv
}

func newMapBenchAligner(ref []byte, cfg MapBenchConfig, on bool) (*bwamem.Aligner, error) {
	se := core.New(cfg.Band)
	se.Config.Mode = core.ModePaper
	a, err := bwamem.New("chrPF", ref, se)
	if err != nil {
		return nil, err
	}
	a.Opts.Prefilter = on
	a.Opts.PrefilterThreshold = cfg.Threshold
	a.Opts.MaxChains = cfg.MaxChains
	// Banded traceback (both configurations): the full-matrix default
	// spends more time CIGAR-tracing the one winner than extending all
	// its rivals, which would mask what the tier under test changes.
	a.Opts.TraceBand = 2*cfg.Band + 1
	if on {
		a.Stats = core.NewStats()
	}
	return a, nil
}

// sameMapAlignment compares the fields the mapping output depends on —
// everything except the cost counters the filter is allowed to change
// (Extensions, Prefilter*).
func sameMapAlignment(a, b bwamem.Alignment) bool {
	return a.Mapped == b.Mapped && a.RName == b.RName && a.Pos == b.Pos &&
		a.Rev == b.Rev && a.Score == b.Score && a.SubScore == b.SubScore &&
		a.MapQ == b.MapQ && a.Cigar.String() == b.Cigar.String()
}

// MapServeBench measures the filter tier end to end: it proves on/off
// bit-equivalence over the corpus, then load-tests /v1/map under both
// configurations at each concurrency. A non-zero equivalence mismatch
// count is an error — a speedup that changes mappings is not a result.
func MapServeBench(cfg MapBenchConfig) (PrefilterServeReport, error) {
	cfg = cfg.withDefaults()
	ref, served, equiv := mapBenchWorld(cfg)
	rep := PrefilterServeReport{
		Threshold:       cfg.Threshold,
		Band:            cfg.Band,
		ReadLen:         mapReadLen,
		RefLen:          len(ref),
		Templates:       cfg.Templates,
		DecoysPerRead:   cfg.DecoysPerRead,
		MaxChains:       cfg.MaxChains,
		ReadsPerRequest: cfg.ReadsPerRequest,
		DurationMs:      float64(cfg.Duration.Nanoseconds()) / 1e6,
	}

	// Equivalence sweep on dedicated aligners, so the load-test counters
	// below reflect served traffic only.
	offEq, err := newMapBenchAligner(ref, cfg, false)
	if err != nil {
		return rep, err
	}
	onEq, err := newMapBenchAligner(ref, cfg, true)
	if err != nil {
		return rep, err
	}
	rep.EquivReads = len(equiv)
	for _, r := range equiv {
		if !sameMapAlignment(offEq.AlignRead(r.Seq), onEq.AlignRead(r.Seq)) {
			rep.EquivMismatches++
		}
	}
	if rep.EquivMismatches > 0 {
		return rep, fmt.Errorf("bench: prefilter equivalence broken: %d of %d reads map differently with the filter on",
			rep.EquivMismatches, rep.EquivReads)
	}

	bodies := mapBodies(served, cfg.ReadsPerRequest)
	off, err := newMapBenchAligner(ref, cfg, false)
	if err != nil {
		return rep, err
	}
	on, err := newMapBenchAligner(ref, cfg, true)
	if err != nil {
		return rep, err
	}
	byConf := map[string]map[int]MapPoint{"prefilter-off": {}, "prefilter-on": {}}
	for _, c := range []struct {
		name string
		al   *bwamem.Aligner
	}{{"prefilter-off", off}, {"prefilter-on", on}} {
		for _, conc := range cfg.Concurrency {
			p := runMapPoint(c.al, bodies, conc, cfg.ReadsPerRequest, cfg.Duration)
			p.Config = c.name
			rep.Points = append(rep.Points, p)
			byConf[c.name][conc] = p
		}
	}
	for _, conc := range cfg.Concurrency {
		if o := byConf["prefilter-off"][conc].ReadsPerSec; o > 0 {
			g := ServeGain{Concurrency: conc, Gain: byConf["prefilter-on"][conc].ReadsPerSec / o}
			rep.Gains = append(rep.Gains, g)
			rep.GainHighConc = g.Gain
		}
	}
	snap := on.Stats.Snapshot()
	rep.Pass = snap.PrefilterPass
	rep.Reject = snap.PrefilterReject
	rep.Rescued = snap.PrefilterRescued
	rep.FalsePass = snap.PrefilterFalsePass
	return rep, nil
}

// mapBodies pre-marshals a rotation of /v1/map request bodies.
func mapBodies(reads []readsim.Read, perReq int) [][]byte {
	n := len(reads)/perReq + 1
	bodies := make([][]byte, n)
	k := 0
	for i := range bodies {
		req := server.MapRequest{Reads: make([]server.MapRead, perReq)}
		for j := range req.Reads {
			r := reads[k%len(reads)]
			k++
			req.Reads[j] = server.MapRead{Name: r.ID, Seq: genome.Decode(r.Seq), Qual: string(r.Qual)}
		}
		bodies[i], _ = json.Marshal(req)
	}
	return bodies
}

// runMapPoint measures one (aligner, concurrency) cell: a fresh server
// over the shared aligner, closed-loop clients for the duration.
func runMapPoint(al *bwamem.Aligner, bodies [][]byte, conc, perReq int, dur time.Duration) MapPoint {
	s := server.New(server.Config{Extender: al.Extender, Aligner: al})
	defer s.Close()
	return measureMapPoint(s, bodies, conc, perReq, dur, nil)
}

// measureMapPoint drives one concurrency point against a caller-owned
// server (the caller closes it). The first third of the window is
// warmup — connections, caches, and the batcher settle before any
// request counts toward the measurement. When during is non-nil it runs
// in its own goroutine once measurement starts, given the server's base
// URL — the hook the index-store bench uses to fire hot reloads into
// the measured window.
func measureMapPoint(s *server.Server, bodies [][]byte, conc, perReq int, dur time.Duration, during func(base string)) MapPoint {
	ts := httptest.NewServer(s.Handler())
	tr := &http.Transport{MaxIdleConns: 2 * conc, MaxIdleConnsPerHost: 2 * conc}
	client := &http.Client{Transport: tr}
	url := ts.URL + "/v1/map"

	var stop, measuring atomic.Bool
	var requests, reads int64
	lats := make([][]time.Duration, conc)
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, 4096)
			for it := id; !stop.Load(); it++ {
				body := bodies[it%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				drainBody(resp)
				if resp.StatusCode == http.StatusOK && measuring.Load() {
					atomic.AddInt64(&requests, 1)
					atomic.AddInt64(&reads, int64(perReq))
					mine = append(mine, time.Since(t0))
				}
			}
			lats[id] = mine
		}(i)
	}
	time.Sleep(dur / 3)
	start := time.Now()
	measuring.Store(true)
	var duringWG sync.WaitGroup
	if during != nil {
		duringWG.Add(1)
		go func() {
			defer duringWG.Done()
			during(ts.URL)
		}()
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	duringWG.Wait()
	elapsed := time.Since(start)
	ts.Close()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p := MapPoint{
		Concurrency: conc,
		Requests:    requests,
		Reads:       reads,
		ReadsPerSec: float64(reads) / elapsed.Seconds(),
	}
	if len(all) > 0 {
		p.P50Us = float64(all[len(all)/2].Nanoseconds()) / 1e3
		p.P99Us = float64(all[len(all)*99/100].Nanoseconds()) / 1e3
	}
	return p
}

package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/driver"
	"seedex/internal/faults"
	"seedex/internal/genome"
	"seedex/internal/obs"
	"seedex/internal/server"
)

// ServeBenchConfig shapes the alignment-service load test: the same
// workload is served under a micro-batching configuration and a
// no-batching control, at increasing client concurrency.
type ServeBenchConfig struct {
	// Band is the SeedEx one-sided band of the served extender.
	Band int
	// MaxBatch/Flush tune the batched configuration (the control always
	// runs MaxBatch=1). Defaults: 64 jobs, 100µs.
	MaxBatch int
	Flush    time.Duration
	// Strict selects ModeStrict for the served checker (bit-identical to
	// full-band, but its unconditional global certificate dominates the
	// per-job cost). The default is the paper's workflow (ModePaper),
	// where threshold passes skip the edit machine and the packed
	// speculation kernel carries most of the compute.
	Strict bool
	// JobsPerRequest is the client request size (default 8: each batch
	// coalesces jobs from several requests to fill SWAR lanes).
	JobsPerRequest int
	// Concurrency lists the client counts to sweep (default 4, 16, 32, 64).
	Concurrency []int
	// Duration is the measurement window per point (default 1s).
	Duration time.Duration
	// ChaosRate, when positive, serves through the simulated FPGA device
	// engine with every fault class injecting at this rate. Results stay
	// exact (integrity validation routes faults into host reruns), so the
	// bench then measures the throughput cost of fault tolerance. Chaos
	// implies the strict workflow: the device engine has no paper mode.
	ChaosRate float64
	// ChaosSeed seeds the deterministic fault draws (default 1).
	ChaosSeed int64
	// TraceSample enables the trace-overhead mode: a third configuration
	// ("batched-traced") reruns the batched settings with span tracing at
	// this head-sampling rate (1 in N requests; default 100, i.e. 1%),
	// so the report quantifies what tracing costs in served jobs/s. A
	// fourth configuration ("batched-tail") reruns them with tail-based
	// retention checking out a journey for every request, quantifying the
	// tail-sampling overhead the same way. Negative disables both extra
	// configurations. Chaos runs skip them regardless: they measure the
	// cost of fault tolerance, and fault draws would confound the
	// overhead comparisons.
	TraceSample int
	// Shards lists shard counts to sweep as extra "sharded-N"
	// configurations: the batched settings behind the routing tier, each
	// shard with its own extender. "batched" is the 1-shard point of the
	// curve. Empty (the default) skips the sharded column — opt in from
	// the CLI with -serve-shards.
	Shards []int
	// RoutePolicy names the routing policy for the sharded points
	// (default "least-loaded").
	RoutePolicy string
}

func (c ServeBenchConfig) withDefaults() ServeBenchConfig {
	if c.Band <= 0 {
		c.Band = 21
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Flush <= 0 {
		c.Flush = 100 * time.Microsecond
	}
	if c.JobsPerRequest <= 0 {
		c.JobsPerRequest = 8
	}
	if len(c.Concurrency) == 0 {
		c.Concurrency = []int{4, 16, 32, 64}
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.ChaosRate > 0 && c.ChaosSeed == 0 {
		c.ChaosSeed = 1
	}
	if c.TraceSample == 0 {
		c.TraceSample = 100
	}
	if c.ChaosRate > 0 {
		c.TraceSample = -1
	}
	if c.RoutePolicy == "" {
		c.RoutePolicy = "least-loaded"
	}
	return c
}

// ServePoint is one (configuration, concurrency) measurement.
type ServePoint struct {
	Config      string  `json:"config"` // "batched", "unbatched", "batched-traced", "batched-tail" or "sharded-N"
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	Jobs        int64   `json:"jobs"`
	Rejected    int64   `json:"jobs_rejected"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	// Client-observed request latency.
	P50Us float64 `json:"latency_p50_us"`
	P99Us float64 `json:"latency_p99_us"`
	// Server-side batch shape.
	Batches       int64   `json:"batches"`
	MeanOccupancy float64 `json:"batch_occupancy_mean"`
	// Faults carries the device fault-tolerance counters when the point
	// ran under ChaosRate (each point boots a fresh engine, so the
	// counters cover exactly this measurement).
	Faults *faults.Health `json:"faults,omitempty"`
	// Trace carries the tracer's own counters for "batched-traced" points
	// (sampled requests, spans recorded, slow-ring retention).
	Trace *obs.Stats `json:"trace,omitempty"`
}

// ServeGain compares the two configurations at one concurrency.
type ServeGain struct {
	Concurrency int `json:"concurrency"`
	// Gain is batched jobs/s over unbatched jobs/s.
	Gain float64 `json:"throughput_gain"`
}

// ShardScale is one point of the shard scaling curve: a sharded
// configuration's throughput against the 1-shard ("batched") baseline at
// the same concurrency.
type ShardScale struct {
	Shards      int     `json:"shards"`
	Concurrency int     `json:"concurrency"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	P99Us       float64 `json:"latency_p99_us"`
	// Speedup is this point's jobs/s over the 1-shard point at the same
	// concurrency.
	Speedup float64 `json:"speedup_vs_single"`
}

// ServeBenchReport is the machine-readable snapshot emitted as
// BENCH_serve.json: micro-batched service throughput vs the no-batching
// control over the standard 150 bp workload.
type ServeBenchReport struct {
	ReadLen  int `json:"read_len"`
	Problems int `json:"problems"`
	Band     int `json:"band"`
	// GoMaxProcs and NumCPU pin the parallelism the run measured under —
	// jobs/s comparisons across machines or cgroup limits are otherwise
	// meaningless.
	GoMaxProcs     int          `json:"gomaxprocs"`
	NumCPU         int          `json:"num_cpu"`
	Mode           string       `json:"mode"`
	MaxBatch       int          `json:"max_batch"`
	FlushUs        float64      `json:"flush_us"`
	JobsPerRequest int          `json:"jobs_per_request"`
	DurationMs     float64      `json:"duration_ms_per_point"`
	ChaosRate      float64      `json:"chaos_rate,omitempty"`
	ChaosSeed      int64        `json:"chaos_seed,omitempty"`
	TraceSample    int          `json:"trace_sample,omitempty"`
	Shards         []int        `json:"shards,omitempty"`
	RoutePolicy    string       `json:"route_policy,omitempty"`
	Points         []ServePoint `json:"points"`
	Gains          []ServeGain  `json:"gains"`
	// ShardScaling is the shard scaling curve (every sharded point vs the
	// 1-shard baseline), present when Shards were swept.
	ShardScaling []ShardScale `json:"shard_scaling,omitempty"`
	// ShardGainHighConc is the widest sharded configuration's speedup
	// over 1 shard at the highest measured concurrency.
	ShardGainHighConc float64 `json:"shard_gain_high_concurrency,omitempty"`
	// GainHighConc is the throughput gain at the highest measured
	// concurrency — the headline micro-batching figure.
	GainHighConc float64 `json:"throughput_gain_high_concurrency"`
	// TraceOverheadPct is the jobs/s cost of sampled tracing at the
	// highest measured concurrency: (batched - batched-traced) / batched,
	// as a percentage. Present only when the traced configuration ran.
	TraceOverheadPct float64 `json:"trace_overhead_pct,omitempty"`
	// TailOverheadPct is the jobs/s cost of tail-based retention (every
	// request checks out a journey buffer; the verdict decides what
	// survives) at the highest measured concurrency, against the same
	// untraced "batched" baseline. Present only when the tail
	// configuration ran.
	TailOverheadPct float64 `json:"tail_overhead_pct,omitempty"`
	// Prefilter carries the pre-alignment filter tier's /v1/map
	// benchmark when the run swept it (seedex-bench -fig serve -prefilter).
	Prefilter *PrefilterServeReport `json:"prefilter,omitempty"`
	// Index carries the reference-index lifecycle benchmark when the run
	// swept it (seedex-bench -fig serve -index-bench): container
	// build/publish/load/warmup time and mmap-served /v1/map throughput
	// under a hot-reload storm.
	Index *IndexServeReport `json:"index,omitempty"`
}

// JSON renders the report for BENCH_serve.json.
func (r ServeBenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders a human-readable summary table.
func (r ServeBenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %5s %10s %12s %10s %10s %9s %6s\n",
		"config", "conc", "jobs/s", "requests", "p50(us)", "p99(us)", "batches", "occ")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10s %5d %10.0f %12d %10.0f %10.0f %9d %6.1f\n",
			p.Config, p.Concurrency, p.JobsPerSec, p.Requests, p.P50Us, p.P99Us, p.Batches, p.MeanOccupancy)
	}
	for _, p := range r.Points {
		if h := p.Faults; h != nil {
			fmt.Fprintf(&b, "chaos %-10s @ %2d clients: breaker=%s injected=%d detected=%d retries=%d trips=%d host-only=%d\n",
				p.Config, p.Concurrency, h.Breaker, h.Injected.Total(), h.Detected, h.Retries, h.Trips, h.HostOnly)
		}
	}
	for _, g := range r.Gains {
		fmt.Fprintf(&b, "batched vs unbatched @ %d clients: %.2fx jobs/s\n", g.Concurrency, g.Gain)
	}
	for _, sc := range r.ShardScaling {
		fmt.Fprintf(&b, "%d shards (%s) vs 1 @ %d clients: %.2fx jobs/s, p99 %.0fus\n",
			sc.Shards, r.RoutePolicy, sc.Concurrency, sc.Speedup, sc.P99Us)
	}
	if r.TraceSample > 0 {
		fmt.Fprintf(&b, "tracing 1/%d overhead at high concurrency: %.1f%% jobs/s\n", r.TraceSample, r.TraceOverheadPct)
		fmt.Fprintf(&b, "tail sampling overhead at high concurrency: %.1f%% jobs/s\n", r.TailOverheadPct)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ServeRun is one recorded run in the BENCH_serve.json history: the
// report plus the PR (or other label) that produced it.
type ServeRun struct {
	PR string `json:"pr"`
	ServeBenchReport
}

// ServeHistory is the BENCH_serve.json schema: an append-only array of
// runs, oldest first — the service-throughput trajectory across PRs.
// Consumers wanting "the current numbers" read the latest entry.
type ServeHistory struct {
	Runs []ServeRun `json:"runs"`
}

// Latest returns the newest run, or nil for an empty history.
func (h *ServeHistory) Latest() *ServeRun {
	if len(h.Runs) == 0 {
		return nil
	}
	return &h.Runs[len(h.Runs)-1]
}

// JSON renders the history for BENCH_serve.json.
func (h ServeHistory) JSON() ([]byte, error) {
	return json.MarshalIndent(h, "", "  ")
}

// ParseServeHistory decodes a BENCH_serve.json document. The legacy
// schema — a single bare ServeBenchReport object — converts to a one-run
// history labeled "legacy", so appending to a pre-history file preserves
// its measurement as the first trajectory point.
func ParseServeHistory(data []byte) (ServeHistory, error) {
	var h ServeHistory
	if len(bytes.TrimSpace(data)) == 0 {
		return h, nil
	}
	var probe struct {
		Runs *[]ServeRun `json:"runs"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return h, fmt.Errorf("bench: parsing serve history: %w", err)
	}
	if probe.Runs == nil {
		var legacy ServeBenchReport
		if err := json.Unmarshal(data, &legacy); err != nil {
			return h, fmt.Errorf("bench: parsing legacy serve report: %w", err)
		}
		h.Runs = []ServeRun{{PR: "legacy", ServeBenchReport: legacy}}
		return h, nil
	}
	h.Runs = *probe.Runs
	return h, nil
}

// ReadServeHistory loads the history file at path; a missing file is an
// empty history (the first run creates it).
func ReadServeHistory(path string) (ServeHistory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ServeHistory{}, nil
	}
	if err != nil {
		return ServeHistory{}, err
	}
	return ParseServeHistory(data)
}

// ServeBench load-tests the alignment service over the workload's
// harvested problems. For each concurrency point it boots a fresh
// in-process server twice — once micro-batching (flush at MaxBatch jobs
// or Flush), once with batching disabled (MaxBatch=1) — and drives it
// with closed-loop HTTP clients issuing JobsPerRequest-job requests.
func ServeBench(w *Workload, cfg ServeBenchConfig) ServeBenchReport {
	cfg = cfg.withDefaults()
	rep := ServeBenchReport{
		Problems:       len(w.Problems),
		Band:           cfg.Band,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		Mode:           "paper",
		MaxBatch:       cfg.MaxBatch,
		FlushUs:        float64(cfg.Flush.Nanoseconds()) / 1e3,
		JobsPerRequest: cfg.JobsPerRequest,
		DurationMs:     float64(cfg.Duration.Nanoseconds()) / 1e6,
	}
	if len(w.Reads) > 0 {
		rep.ReadLen = len(w.Reads[0].Seq)
	}
	if cfg.Strict {
		rep.Mode = "strict"
	}
	if cfg.ChaosRate > 0 {
		// The fault-injected device engine only runs the strict workflow.
		rep.Mode = "strict"
		rep.ChaosRate = cfg.ChaosRate
		rep.ChaosSeed = cfg.ChaosSeed
	}
	if cfg.TraceSample > 0 {
		rep.TraceSample = cfg.TraceSample
	}
	if len(w.Problems) == 0 {
		return rep
	}
	bodies := serveBodies(w.Problems, cfg.JobsPerRequest)

	type serveConfig struct {
		name   string
		batch  server.BatcherConfig
		sample int
		tail   bool
		shards int
	}
	batched := server.BatcherConfig{MaxBatch: cfg.MaxBatch, FlushInterval: cfg.Flush}
	configs := []serveConfig{
		{name: "batched", batch: batched, shards: 1},
		{name: "unbatched", batch: server.BatcherConfig{MaxBatch: 1, FlushInterval: cfg.Flush}, shards: 1},
	}
	if cfg.TraceSample > 0 {
		configs = append(configs, serveConfig{name: "batched-traced", batch: batched, sample: cfg.TraceSample, shards: 1})
		configs = append(configs, serveConfig{name: "batched-tail", batch: batched, tail: true, shards: 1})
	}
	for _, n := range cfg.Shards {
		if n > 1 {
			configs = append(configs, serveConfig{name: fmt.Sprintf("sharded-%d", n), batch: batched, shards: n})
		}
	}
	if len(cfg.Shards) > 0 {
		rep.Shards = cfg.Shards
		rep.RoutePolicy = cfg.RoutePolicy
	}
	byConfig := map[string]map[int]ServePoint{}
	for _, c := range configs {
		byConfig[c.name] = map[int]ServePoint{}
		for _, conc := range cfg.Concurrency {
			p := runServePoint(cfg, c.batch, bodies, conc, c.sample, c.tail, c.shards)
			p.Config = c.name
			rep.Points = append(rep.Points, p)
			byConfig[c.name][conc] = p
		}
	}
	for _, conc := range cfg.Concurrency {
		base := byConfig["batched"][conc].JobsPerSec
		if u := byConfig["unbatched"][conc].JobsPerSec; u > 0 {
			g := ServeGain{Concurrency: conc, Gain: base / u}
			rep.Gains = append(rep.Gains, g)
			rep.GainHighConc = g.Gain
		}
		if base > 0 {
			if t, ok := byConfig["batched-traced"][conc]; ok {
				rep.TraceOverheadPct = 100 * (base - t.JobsPerSec) / base
			}
			if t, ok := byConfig["batched-tail"][conc]; ok {
				rep.TailOverheadPct = 100 * (base - t.JobsPerSec) / base
			}
		}
		// Shard scaling curve: "batched" is the curve's 1-shard point.
		for _, n := range cfg.Shards {
			p, ok := byConfig[fmt.Sprintf("sharded-%d", n)][conc]
			if !ok {
				continue
			}
			sc := ShardScale{Shards: n, Concurrency: conc, JobsPerSec: p.JobsPerSec, P99Us: p.P99Us}
			if base > 0 {
				sc.Speedup = p.JobsPerSec / base
			}
			rep.ShardScaling = append(rep.ShardScaling, sc)
			rep.ShardGainHighConc = sc.Speedup
		}
	}
	return rep
}

// serveBodies pre-marshals a rotation of request bodies so the client
// loop measures service throughput, not JSON encoding.
func serveBodies(probs []Problem, jobsPerReq int) [][]byte {
	const maxBodies = 512
	n := len(probs) / jobsPerReq
	if n > maxBodies {
		n = maxBodies
	}
	if n == 0 {
		n = 1
	}
	bodies := make([][]byte, n)
	k := 0
	for i := range bodies {
		type wireJob struct {
			Query  string `json:"query"`
			Target string `json:"target"`
			H0     int    `json:"h0"`
		}
		jobs := make([]wireJob, jobsPerReq)
		for j := range jobs {
			p := probs[k%len(probs)]
			k++
			jobs[j] = wireJob{Query: genome.Decode(p.Q), Target: genome.Decode(p.T), H0: p.H0}
		}
		bodies[i], _ = json.Marshal(map[string]any{"jobs": jobs})
	}
	return bodies
}

// runServePoint measures one (batch config, concurrency, shard count)
// cell: a fresh server, closed-loop clients for the duration, then the
// server's own batch-shape metrics.
func runServePoint(cfg ServeBenchConfig, bcfg server.BatcherConfig, bodies [][]byte, conc, sample int, tail bool, shards int) ServePoint {
	jobsPerReq, dur := cfg.JobsPerRequest, cfg.Duration
	var health func() faults.Health
	// Each shard gets its own extender (its own engine, breaker and
	// session pool) — the fault and perf isolation the routing tier is
	// built around.
	newExt := func(shard int) align.Extender {
		if cfg.ChaosRate > 0 {
			dcfg := driver.DefaultConfig()
			dcfg.Band = cfg.Band
			// Decorrelate the per-shard fault draws without losing
			// determinism: shard i draws from seed+i.
			dcfg.Faults = faults.Uniform(cfg.ChaosSeed+int64(shard), cfg.ChaosRate)
			dcfg.DeviceTimeout = 10 * time.Millisecond
			return driver.NewEngine(dcfg)
		}
		se := core.New(cfg.Band)
		if !cfg.Strict {
			se.Config.Mode = core.ModePaper
		}
		return se
	}
	var ext align.Extender
	scfg := server.Config{Batch: bcfg, Shards: shards, RoutePolicy: cfg.RoutePolicy}
	if shards > 1 {
		scfg.NewExtender = newExt
	} else {
		ext = newExt(0)
		scfg.Extender = ext
		if eng, ok := ext.(*driver.Engine); ok {
			health = eng.Health
		}
	}
	tracer := obs.New(obs.Config{SampleEvery: sample, Tail: obs.TailConfig{Enabled: tail}})
	scfg.Trace = tracer
	s := server.New(scfg)
	ts := httptest.NewServer(s.Handler())
	tr := &http.Transport{MaxIdleConns: 2 * conc, MaxIdleConnsPerHost: 2 * conc}
	client := &http.Client{Transport: tr}
	url := ts.URL + "/v1/extend"

	var stop atomic.Bool
	var requests, jobs, rejected int64
	lats := make([][]time.Duration, conc)
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, 4096)
			for it := id; !stop.Load(); it++ {
				body := bodies[it%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				drainBody(resp)
				switch resp.StatusCode {
				case http.StatusOK:
					atomic.AddInt64(&requests, 1)
					atomic.AddInt64(&jobs, int64(jobsPerReq))
					mine = append(mine, time.Since(t0))
				case http.StatusTooManyRequests:
					atomic.AddInt64(&rejected, int64(jobsPerReq))
				}
			}
			lats[id] = mine
		}(i)
	}
	start := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	ts.Close()
	s.Close()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	snap := s.Metrics().Snapshot(0, 0)
	p := ServePoint{
		Concurrency:   conc,
		Requests:      requests,
		Jobs:          jobs,
		Rejected:      rejected,
		JobsPerSec:    float64(jobs) / elapsed.Seconds(),
		Batches:       snap.Batches,
		MeanOccupancy: snap.MeanOccupancy,
	}
	if len(all) > 0 {
		p.P50Us = float64(all[len(all)/2].Nanoseconds()) / 1e3
		p.P99Us = float64(all[len(all)*99/100].Nanoseconds()) / 1e3
	}
	if health != nil {
		h := health()
		p.Faults = &h
	}
	if tracer != nil {
		tstats := tracer.TraceStats()
		p.Trace = &tstats
	}
	return p
}

// drainBody consumes and closes a response body so the transport reuses
// the connection.
func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

package bench

import (
	"fmt"
	"testing"
)

func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func TestAblationEditSeeding(t *testing.T) {
	w := smallWorkload(t)
	tab := AblationEditSeeding(w, []int{11, 41})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Each stage must dominate the previous: no-edit <= corner <= exact.
	for _, row := range tab.Rows {
		if !(row[1] <= row[2] && row[2] <= row[3]) {
			// string comparison works for equal-width %.2f only; parse.
			var a, b, c float64
			if _, err := sscan(row[1], &a); err != nil {
				t.Fatal(err)
			}
			if _, err := sscan(row[2], &b); err != nil {
				t.Fatal(err)
			}
			if _, err := sscan(row[3], &c); err != nil {
				t.Fatal(err)
			}
			if a > b+1e-9 || b > c+1e-9 {
				t.Fatalf("pass-rate ordering violated: %v", row)
			}
		}
	}
}

func TestAblationClientsPerCluster(t *testing.T) {
	w := smallWorkload(t)
	tab := AblationClientsPerCluster(w)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Throughput must grow with client count.
	var first, last float64
	if _, err := sscan(tab.Rows[0][1], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[len(tab.Rows)-1][1], &last); err != nil {
		t.Fatal(err)
	}
	if last <= first {
		t.Fatalf("throughput did not grow with clients: %v -> %v", first, last)
	}
}

func TestAblationBSWEditRatio(t *testing.T) {
	w := smallWorkload(t)
	tab := AblationBSWEditRatio(w)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Edit utilization must rise with the BSW:edit ratio.
	var lo, hi float64
	if _, err := sscan(tab.Rows[0][2], &lo); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[len(tab.Rows)-1][2], &hi); err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Fatalf("edit utilization did not rise with ratio: %v -> %v", lo, hi)
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}

func TestAblationBandingStrategies(t *testing.T) {
	w := smallWorkload(t)
	tab := AblationBandingStrategies(w, []int{5, 21})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] != "0" {
			t.Fatalf("seedex diffs nonzero: %v", row)
		}
	}
	// At the tiniest band the heuristics must show some differences.
	if tab.Rows[0][1] == "0" && tab.Rows[0][2] == "0" {
		t.Fatalf("no heuristic differences at 5 PEs: %v", tab.Rows[0])
	}
}

package bench

import (
	"testing"
	"time"
)

// TestMapServeBench runs a miniature prefilter service benchmark:
// the equivalence sweep must be clean, the workload must actually drive
// rejects (a decoy world where the filter never fires measures nothing),
// and both configurations must serve traffic.
func TestMapServeBench(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	rep, err := MapServeBench(MapBenchConfig{
		Concurrency: []int{4},
		Duration:    200 * time.Millisecond,
		Templates:   12,
		EquivReads:  60,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EquivMismatches != 0 {
		t.Fatalf("equivalence mismatches: %d", rep.EquivMismatches)
	}
	if rep.EquivReads < 72 {
		t.Fatalf("equivalence corpus too small: %d", rep.EquivReads)
	}
	if rep.Reject == 0 {
		t.Fatal("decoy workload produced no prefilter rejects")
	}
	if rep.Reject <= rep.Rescued {
		t.Fatalf("all rejects rescued (reject=%d rescued=%d): filter saved no work", rep.Reject, rep.Rescued)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.ReadsPerSec <= 0 {
			t.Fatalf("config %s served nothing", p.Config)
		}
	}
	if len(rep.Gains) != 1 || rep.GainHighConc <= 0 {
		t.Fatalf("gain missing: %+v", rep.Gains)
	}
	t.Logf("gain=%.2fx pass=%d reject=%d rescued=%d false-pass=%d",
		rep.GainHighConc, rep.Pass, rep.Reject, rep.Rescued, rep.FalsePass)
}

package bench

import (
	"strings"
	"testing"

	"seedex/internal/core"
)

func smallWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := BuildWorkload(40_000, 150, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Problems) == 0 {
		t.Fatal("workload harvested no extension problems")
	}
	return w
}

func TestFig02(t *testing.T) {
	w := smallWorkload(t)
	tab, est, used := Fig02(w)
	if len(tab.Rows) != 2 {
		t.Fatalf("fig2 rows: %d", len(tab.Rows))
	}
	// The used band is dramatically smaller than the estimate: the
	// paper's headline observation (>98% of real-data extensions need
	// <=10; our realistic workload includes garbage tails, so the bar is
	// slightly lower here).
	if used.CumPct(0) < 80 {
		t.Fatalf("used band <=10 only %.1f%%, expected >80%%", used.CumPct(0))
	}
	if est.CumPct(0) > used.CumPct(0) {
		t.Fatalf("estimate should be more conservative than used: %.1f vs %.1f", est.CumPct(0), used.CumPct(0))
	}
	if tab.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestFig03(t *testing.T) {
	w := smallWorkload(t)
	tab := Fig03(w, []int{5, 21, 41, 101}, 200)
	if len(tab.Rows) != 4 {
		t.Fatalf("fig3 rows: %d", len(tab.Rows))
	}
}

func TestFig04(t *testing.T) {
	tab := Fig04([]int{5, 21, 41, 61, 81, 101})
	if len(tab.Rows) != 6 {
		t.Fatalf("fig4 rows: %d", len(tab.Rows))
	}
	// Normalized column must ascend.
	if !strings.Contains(tab.String(), "101") {
		t.Fatal("missing band row")
	}
}

func TestFig13SeedExAlwaysZero(t *testing.T) {
	w, err := Fig13Workload(30_000, 120, 9)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Fig13(w, []int{3, 21, 41})
	if err != nil {
		t.Fatal(err)
	}
	heuristicDiffs := 0
	for _, row := range tab.Rows {
		if row[3] != "0" {
			t.Fatalf("SeedEx diffs nonzero at band %s: %s", row[0], row[3])
		}
		if row[1] != "0" {
			heuristicDiffs++
		}
	}
	if heuristicDiffs == 0 {
		t.Fatal("the BSW heuristic never diverged; the Figure 13 effect is absent")
	}
}

func TestFig14RatesIncreaseWithBand(t *testing.T) {
	w := smallWorkload(t)
	tab := Fig14(w, []int{11, 41, 101})
	if len(tab.Rows) != 3 {
		t.Fatalf("fig14 rows: %d", len(tab.Rows))
	}
	// Overall pass rate at 41 PEs should be high on realistic data.
	reps := w.CheckOutcomes(20, core.ModePaper)
	pass := 0
	for _, r := range reps {
		if r.Pass {
			pass++
		}
	}
	rate := float64(pass) / float64(len(reps))
	if rate < 0.9 {
		t.Fatalf("paper-mode pass rate at 41 PEs = %.3f, expected >0.9 (paper: 0.98)", rate)
	}
	t.Logf("pass rate at 41 PEs: %.4f (paper: 0.9819)", rate)
}

func TestFig16(t *testing.T) {
	w := smallWorkload(t)
	a, l, c := Fig16(w)
	if len(a.Rows) != 2 || len(l.Rows) != 4 || len(c.Rows) != 2 {
		t.Fatalf("fig16 shapes: %d %d %d", len(a.Rows), len(l.Rows), len(c.Rows))
	}
}

func TestFig17(t *testing.T) {
	w, err := BuildWorkload(30_000, 100, 11)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Fig17(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("fig17 rows: %d", len(tab.Rows))
	}
	// The fully accelerated configuration must be the fastest.
	last := tab.Rows[len(tab.Rows)-1]
	first := tab.Rows[0]
	if !(last[5] > first[5]) && last[5] == "" {
		t.Fatalf("speedup column malformed: %v", tab.Rows)
	}
}

func TestStaticTables(t *testing.T) {
	for name, tab := range map[string]interface{ String() string }{
		"fig15":  Fig15(),
		"table2": Table2(),
		"table3": Table3(),
		"fig18":  Fig18(),
	} {
		if tab.String() == "" {
			t.Fatalf("%s renders empty", name)
		}
	}
}

// Package longread implements the paper's §VII-D long-read scenario: the
// "seed-and-chain-then-fill" strategy of minimap2-class aligners, where
// global alignments between chained anchors are computed with a small
// band — the step the paper measures at 16-33% of minimap2's execution
// time and proposes SeedEx for ("performing optimal global alignment
// with a small area").
//
// Every inter-anchor fill runs through core.CheckedGlobal: a narrow-band
// global alignment whose optimality is proven by the SeedEx-style
// boundary checks, with a full-width rerun when the proof fails. The
// read ends are extended with the semi-global SeedEx extender, so the
// module exercises both alignment kinds the paper targets.
package longread

import (
	"sync/atomic"

	"seedex/internal/align"
	"seedex/internal/chain"
	"seedex/internal/core"
	"seedex/internal/ert"
	"seedex/internal/genome"
)

// Config tunes the long-read aligner.
type Config struct {
	// K is the anchor k-mer width; Stride the anchor sampling stride
	// (a stand-in for minimap2's minimizers).
	K, Stride int
	// Band is the one-sided band for inter-anchor global fills.
	Band int
	// EndBand is the band of the semi-global end extensions.
	EndBand int
	// Scoring is the affine scheme.
	Scoring align.Scoring
	// MaxAnchorOcc masks repetitive anchors.
	MaxAnchorOcc int
}

// DefaultConfig suits noisy reads of a few kbp.
func DefaultConfig() Config {
	return Config{K: 15, Stride: 5, Band: 8, EndBand: 16, Scoring: align.DefaultScoring(), MaxAnchorOcc: 20}
}

// Stats aggregates fill outcomes across reads (atomic: the caller may
// align from several goroutines).
type Stats struct {
	Fills, FillPasses, FillReruns atomic.Int64
	FillCells                     atomic.Int64
}

// PassRate returns the fraction of fills whose optimality was proven.
func (s *Stats) PassRate() float64 {
	t := s.Fills.Load()
	if t == 0 {
		return 0
	}
	return float64(s.FillPasses.Load()) / float64(t)
}

// Aligner maps long reads against one reference.
type Aligner struct {
	Ref   []byte
	Index *ert.Index
	Cfg   Config
	Stats Stats
	// FullFill disables the checked banded fill and always runs the
	// full-width global kernel (the baseline the equivalence tests
	// compare against).
	FullFill bool
}

// New builds a long-read aligner over a sanitized reference.
func New(ref []byte, cfg Config) *Aligner {
	return &Aligner{Ref: ref, Index: ert.Build(ref, cfg.K), Cfg: cfg}
}

// Result is one long-read alignment.
type Result struct {
	Mapped  bool
	Rev     bool
	Pos     int // reference start of the first anchor's extension
	Score   int
	Anchors int
	Fills   int
}

// Detailed is a Result extended with a full CIGAR, assembled from the
// anchors, linear-space (Myers-Miller) global fills, and soft-clipped
// ends — the record a PAF/SAM emitter would consume.
type Detailed struct {
	Result
	Cigar align.Cigar
	// QBeg/QEnd delimit the aligned query span (ends outside it are
	// soft-clipped in the CIGAR; Result.Pos/Score still reflect the end
	// extensions).
	QBeg, QEnd int
	// CigarPos is the reference position the CIGAR starts at (the first
	// anchor).
	CigarPos int
}

// AlignDetailed maps one read and reconstructs its alignment path. The
// score/position decision logic is Align's; only the winning chain is
// traced (the paper's once-per-read traceback division of labour),
// using the linear-space aligner so multi-kbp fills stay cheap in
// memory.
func (a *Aligner) AlignDetailed(read []byte) (Detailed, error) {
	var best Detailed
	for _, rev := range []bool{false, true} {
		q := read
		if rev {
			q = genome.RevComp(read)
		}
		r := a.alignStrand(q)
		r.Rev = rev
		if r.Mapped && (!best.Mapped || r.Score > best.Score ||
			(r.Score == best.Score && r.Pos < best.Pos)) {
			best.Result = r
			d, err := a.traceStrand(q)
			if err != nil {
				return Detailed{}, err
			}
			best.Cigar, best.QBeg, best.QEnd, best.CigarPos = d.Cigar, d.QBeg, d.QEnd, d.CigarPos
		}
	}
	if best.Mapped {
		if err := best.Cigar.Validate(len(read), best.Cigar.TargetLen()); err != nil {
			return Detailed{}, err
		}
	}
	return best, nil
}

// traceStrand rebuilds the winning strand's anchors and assembles the
// CIGAR: clip, anchors as matches, fills via linear-space global
// alignment.
func (a *Aligner) traceStrand(q []byte) (Detailed, error) {
	seeds := a.Index.Seeds(q, ert.Config{
		Stride: a.Cfg.Stride, MaxOcc: a.Cfg.MaxAnchorOcc, MinSeedLen: a.Cfg.K,
	})
	chains := chain.Build(seeds, chain.Config{
		MaxGap: 500, MaxDiagDiff: 200, MinWeight: a.Cfg.K,
		KeepFraction: 0.5, MaxChains: 3,
	})
	if len(chains) == 0 {
		return Detailed{}, nil
	}
	// Mirror alignStrand's choice: the best chain by stitched score.
	bestScore, bestIdx := 0, -1
	for ci, c := range chains {
		r := a.alignChain(q, c)
		if r.Mapped && (bestIdx < 0 || r.Score > bestScore) {
			bestScore, bestIdx = r.Score, ci
		}
	}
	if bestIdx < 0 {
		return Detailed{}, nil
	}
	anchors := advancingAnchors(chains[bestIdx].Seeds)
	var cig align.Cigar
	first, last := anchors[0], anchors[len(anchors)-1]
	d := Detailed{QBeg: first.QBeg, QEnd: last.QEnd(), CigarPos: first.RBeg}
	cig = cig.Push(align.OpSoft, first.QBeg)
	for i, s := range anchors {
		if i > 0 {
			prev := anchors[i-1]
			qs, qe := prev.QEnd(), s.QBeg
			rs, re := prev.REnd(), s.RBeg
			switch {
			case qe == qs && re == rs:
			case qe == qs:
				cig = cig.Push(align.OpDel, re-rs)
			case re == rs:
				cig = cig.Push(align.OpIns, qe-qs)
			default:
				fc, _ := align.GlobalAlign(q[qs:qe], a.Ref[rs:re], a.Cfg.Scoring)
				cig = cig.Concat(fc)
			}
		}
		cig = cig.Push(align.OpMatch, s.Len)
	}
	cig = cig.Push(align.OpSoft, len(q)-last.QEnd())
	d.Cigar = cig
	return d, nil
}

// Align maps one read (base codes).
func (a *Aligner) Align(read []byte) Result {
	var best Result
	for _, rev := range []bool{false, true} {
		q := read
		if rev {
			q = genome.RevComp(read)
		}
		r := a.alignStrand(q)
		r.Rev = rev
		if r.Mapped && (!best.Mapped || r.Score > best.Score ||
			(r.Score == best.Score && r.Pos < best.Pos)) {
			best = r
		}
	}
	return best
}

func (a *Aligner) alignStrand(q []byte) Result {
	seeds := a.Index.Seeds(q, ert.Config{
		Stride: a.Cfg.Stride, MaxOcc: a.Cfg.MaxAnchorOcc, MinSeedLen: a.Cfg.K,
	})
	if len(seeds) == 0 {
		return Result{}
	}
	ccfg := chain.Config{
		MaxGap: 500, MaxDiagDiff: 200, MinWeight: a.Cfg.K,
		KeepFraction: 0.5, MaxChains: 3,
	}
	chains := chain.Build(seeds, ccfg)
	if len(chains) == 0 {
		return Result{}
	}
	var best Result
	for _, c := range chains {
		r := a.alignChain(q, c)
		if r.Mapped && (!best.Mapped || r.Score > best.Score ||
			(r.Score == best.Score && r.Pos < best.Pos)) {
			best = r
		}
	}
	return best
}

// alignChain stitches a chain: anchors score as exact matches, the gaps
// between consecutive anchors are filled with checked banded global
// alignments, and the read ends extend semi-globally.
func (a *Aligner) alignChain(q []byte, c chain.Chain) Result {
	sc := a.Cfg.Scoring
	anchors := advancingAnchors(c.Seeds)
	if len(anchors) == 0 {
		return Result{}
	}
	res := Result{Mapped: true, Anchors: len(anchors)}
	score := 0
	for i, s := range anchors {
		score += s.Len * sc.Match
		if i == 0 {
			continue
		}
		prev := anchors[i-1]
		qs, qe := prev.QEnd(), s.QBeg
		rs, re := prev.REnd(), s.RBeg
		score += a.fill(q[qs:qe], a.Ref[rs:re])
		res.Fills++
	}
	// End extensions through the semi-global SeedEx path.
	first, last := anchors[0], anchors[len(anchors)-1]
	ext := &core.SeedEx{Config: core.Config{Band: a.Cfg.EndBand, Scoring: sc, Kind: core.SemiGlobal, Mode: core.ModeStrict}}
	pos := first.RBeg
	if first.QBeg > 0 {
		lq := reversed(q[:first.QBeg])
		lo := first.RBeg - first.QBeg - a.Cfg.EndBand
		if lo < 0 {
			lo = 0
		}
		lt := reversed(a.Ref[lo:first.RBeg])
		r := ext.Extend(lq, lt, score)
		if r.Local > score {
			score = r.Local
			pos = first.RBeg - r.LocalT
		}
	}
	if last.QEnd() < len(q) {
		rq := q[last.QEnd():]
		hi := last.REnd() + len(rq) + a.Cfg.EndBand
		if hi > len(a.Ref) {
			hi = len(a.Ref)
		}
		r := ext.Extend(rq, a.Ref[last.REnd():hi], score)
		if r.Local > score {
			score = r.Local
		}
	}
	res.Score = score
	res.Pos = pos
	return res
}

// fill aligns one inter-anchor gap globally and returns its score
// contribution (0-based: gap cost only, no seed score).
func (a *Aligner) fill(q, t []byte) int {
	if len(q) == 0 && len(t) == 0 {
		return 0
	}
	const h0 = 1 << 14 // offset so intermediate scores stay positive
	if len(q) == 0 || len(t) == 0 {
		// Pure gap between abutting anchors.
		l := len(q) + len(t)
		return -(a.Cfg.Scoring.GapOpen + l*a.Cfg.Scoring.GapExtend)
	}
	if a.FullFill {
		r := align.Global(q, t, h0, a.Cfg.Scoring)
		a.Stats.FillCells.Add(r.Cells)
		return r.Score - h0
	}
	cfg := core.Config{Band: a.Cfg.Band, Scoring: a.Cfg.Scoring, Kind: core.Global}
	r, rep := core.CheckedGlobal(q, t, h0, cfg)
	a.Stats.Fills.Add(1)
	a.Stats.FillCells.Add(r.Cells)
	if rep.Rerun {
		a.Stats.FillReruns.Add(1)
	} else {
		a.Stats.FillPasses.Add(1)
	}
	return r.Score - h0
}

// advancingAnchors selects a strictly advancing, non-overlapping anchor
// subsequence from a chain's seeds.
func advancingAnchors(seeds []chain.Seed) []chain.Seed {
	var anchors []chain.Seed
	for _, s := range seeds {
		if len(anchors) == 0 {
			anchors = append(anchors, s)
			continue
		}
		last := anchors[len(anchors)-1]
		if s.QBeg >= last.QEnd() && s.RBeg >= last.REnd() {
			anchors = append(anchors, s)
		}
	}
	return anchors
}

func reversed(s []byte) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}

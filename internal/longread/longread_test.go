package longread

import (
	"math/rand"
	"testing"

	"seedex/internal/genome"
)

// simLongRead draws an ONT-flavoured noisy long read from ref.
func simLongRead(rng *rand.Rand, ref []byte, minLen, maxLen int) (read []byte, pos int, rev bool) {
	l := minLen + rng.Intn(maxLen-minLen)
	pos = rng.Intn(len(ref) - l)
	for _, c := range ref[pos : pos+l] {
		r := rng.Float64()
		switch {
		case r < 0.025: // deletion
		case r < 0.055: // insertion
			read = append(read, byte(rng.Intn(4)), c)
		case r < 0.075: // substitution
			read = append(read, (c+byte(1+rng.Intn(3)))%4)
		default:
			read = append(read, c)
		}
	}
	if rng.Intn(2) == 0 {
		read = genome.RevComp(read)
		rev = true
	}
	return
}

func world(t *testing.T, seed int64) ([]byte, *Aligner) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := genome.Simulate(genome.SimConfig{Length: 200_000, RepeatFraction: 0.02}, rng)
	return ref, New(ref, DefaultConfig())
}

func TestLongReadMapping(t *testing.T) {
	ref, a := world(t, 1)
	rng := rand.New(rand.NewSource(2))
	mapped, correct := 0, 0
	const n = 40
	for i := 0; i < n; i++ {
		read, pos, rev := simLongRead(rng, ref, 1000, 3000)
		r := a.Align(read)
		if !r.Mapped {
			continue
		}
		mapped++
		d := r.Pos - pos
		if d < 0 {
			d = -d
		}
		if d <= 50 && r.Rev == rev {
			correct++
		}
	}
	if mapped < n*9/10 || correct < mapped*9/10 {
		t.Fatalf("long reads: mapped %d/%d, correct %d", mapped, n, correct)
	}
	if a.Stats.Fills.Load() == 0 {
		t.Fatal("no inter-anchor fills performed")
	}
	t.Logf("fills: %d, pass rate %.3f, reruns %d",
		a.Stats.Fills.Load(), a.Stats.PassRate(), a.Stats.FillReruns.Load())
}

// TestCheckedFillBitEquivalence: the checked banded fill must give every
// read exactly the score of the full-width fill — the §VII-D claim that
// SeedEx can serve the minimap2 gap-filling kernel without accuracy loss.
func TestCheckedFillBitEquivalence(t *testing.T) {
	ref, a := world(t, 3)
	full := New(ref, DefaultConfig())
	full.FullFill = true
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		read, _, _ := simLongRead(rng, ref, 800, 2500)
		got := a.Align(read)
		want := full.Align(read)
		if got != want {
			t.Fatalf("read %d: checked %+v != full-fill %+v", i, got, want)
		}
	}
}

// TestFillPassRate: at the default small band, the overwhelming majority
// of fills between true anchors carry optimality proofs.
func TestFillPassRate(t *testing.T) {
	ref, a := world(t, 5)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		read, _, _ := simLongRead(rng, ref, 1000, 2500)
		a.Align(read)
	}
	if a.Stats.Fills.Load() < 50 {
		t.Fatalf("too few fills to measure: %d", a.Stats.Fills.Load())
	}
	if pr := a.Stats.PassRate(); pr < 0.7 {
		t.Fatalf("fill pass rate %.3f too low at w=%d", pr, a.Cfg.Band)
	}
	t.Logf("fill pass rate %.3f over %d fills", a.Stats.PassRate(), a.Stats.Fills.Load())
}

func TestUnmappableLongRead(t *testing.T) {
	_, a := world(t, 7)
	junk := make([]byte, 1500)
	rng := rand.New(rand.NewSource(8))
	for i := range junk {
		junk[i] = byte(rng.Intn(4))
	}
	r := a.Align(junk)
	if r.Mapped && r.Anchors > 3 {
		t.Fatalf("random read should not anchor broadly: %+v", r)
	}
}

func TestAbuttingAnchorsGapCost(t *testing.T) {
	_, a := world(t, 9)
	// Pure-gap fill (one side empty).
	got := a.fill(nil, []byte{0, 1, 2})
	want := -(a.Cfg.Scoring.GapOpen + 3*a.Cfg.Scoring.GapExtend)
	if got != want {
		t.Fatalf("pure gap fill = %d, want %d", got, want)
	}
	if a.fill(nil, nil) != 0 {
		t.Fatal("empty fill must be free")
	}
}

// TestAlignDetailedCigar: the assembled CIGAR must consume the whole read
// and exactly match the reference span it claims; rescoring the aligned
// (non-clipped) part against the reference must be positive and
// consistent with the fill scores.
func TestAlignDetailedCigar(t *testing.T) {
	ref, a := world(t, 11)
	rng := rand.New(rand.NewSource(12))
	checked := 0
	for i := 0; i < 15; i++ {
		read, pos, rev := simLongRead(rng, ref, 1000, 2500)
		d, err := a.AlignDetailed(read)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Mapped {
			continue
		}
		checked++
		q := read
		if d.Rev {
			q = genome.RevComp(read)
		}
		if err := d.Cigar.Validate(len(q), d.Cigar.TargetLen()); err != nil {
			t.Fatalf("read %d: %v (cigar %s)", i, err, d.Cigar)
		}
		// Walk the CIGAR and check every M column is a plausible pairing
		// and the match fraction is high.
		qi, ri := 0, d.CigarPos
		matches, aligned := 0, 0
		for _, e := range d.Cigar {
			switch e.Op {
			case 'S', 'I':
				qi += e.Len
			case 'D':
				ri += e.Len
			case 'M':
				for k := 0; k < e.Len; k++ {
					if ref[ri] == q[qi] {
						matches++
					}
					aligned++
					qi++
					ri++
				}
			}
		}
		if aligned == 0 || float64(matches)/float64(aligned) < 0.85 {
			t.Fatalf("read %d: match fraction %d/%d too low", i, matches, aligned)
		}
		d2 := d.CigarPos - pos
		if d2 < 0 {
			d2 = -d2
		}
		if d.Rev != rev || d2 > 100 {
			t.Fatalf("read %d: cigar anchored at %d (rev=%v), truth %d (rev=%v)", i, d.CigarPos, d.Rev, pos, rev)
		}
	}
	if checked < 12 {
		t.Fatalf("only %d/15 reads produced detailed alignments", checked)
	}
}

// Package delta implements the Lipton–Lopresti residue ("modulo circle")
// arithmetic that the SeedEx edit machine uses to shrink its datapath to
// 3 bits (paper §IV-B).
//
// The insight: the candidates compared inside a DP cell differ by at most
// a fixed δ determined by the scoring scheme (δ = 3 for the relaxed edit
// scoring). Storing only score residues modulo Δ ≥ 2δ+1 therefore loses no
// information needed to pick the maximum: on the Δ-circle, whichever
// residue precedes the other on the short arc is the larger value. SeedEx
// uses Δ = 8 so residues fit in 3 bits.
//
// Full-width scores are recovered by an augmentation unit that walks an
// "augmentation path" through the matrix: each step's true delta is the
// signed representative of the residue difference, which is exact as long
// as consecutive path cells differ by at most δ.
package delta

// Params of the modulo circle.
const (
	// MaxDelta is δ, the largest absolute difference between any two
	// values the dmax units ever compare (set by the relaxed edit
	// scoring: {+1 match, −1 mismatch, −1 del, 0 ins} over neighbouring
	// cells whose values differ by at most 1).
	MaxDelta = 3
	// Mod is Δ, the modulo-circle circumference; Mod ≥ 2·MaxDelta+1 and a
	// power of two so residues are 3-bit and wraparound is a mask.
	Mod = 8

	mask = Mod - 1
)

// Residue is a 3-bit score residue on the modulo circle.
type Residue uint8

// Encode reduces a full-width score to its residue.
func Encode(v int) Residue { return Residue(uint(v) & mask) }

// Add applies a signed delta (|d| <= MaxDelta) to a residue.
func (r Residue) Add(d int) Residue { return Residue((uint(r) + uint(d)) & mask) }

// DMax2 is the 2-input delta-max unit: it returns the residue of
// max(X, Y) given only the residues of X and Y, under the precondition
// |X−Y| <= MaxDelta. The short arc from y to x on the circle tells which
// value is larger.
func DMax2(x, y Residue) Residue {
	d := (uint(x) - uint(y)) & mask
	if d <= MaxDelta {
		return x
	}
	return y
}

// DMax3 is the 3-input delta-max unit of Figure 11, composed from 2-input
// units; valid when all pairwise differences are <= MaxDelta.
func DMax3(x, y, z Residue) Residue { return DMax2(DMax2(x, y), z) }

// SignedDelta decodes the difference b−a as a signed integer in
// [−(Mod−MaxDelta−1), MaxDelta], exact when |B−A| <= MaxDelta.
func SignedDelta(a, b Residue) int {
	d := int((uint(b) - uint(a)) & mask)
	if d > MaxDelta {
		d -= Mod
	}
	return d
}

// Augmenter is the augmentation unit: a single full-width accumulator
// attached to one PE. It follows the augmentation path, decoding each
// step's residue back into an absolute score and tracking the running
// maximum. Every other PE in the array stays 3-bit.
type Augmenter struct {
	val     int
	res     Residue
	max     int
	started bool
}

// NewAugmenter starts the augmentation path at an absolute initial score.
func NewAugmenter(initial int) *Augmenter {
	return &Augmenter{val: initial, res: Encode(initial), max: initial, started: true}
}

// Step consumes the next residue along the augmentation path (which must
// change by at most MaxDelta per step) and returns the decoded absolute
// score.
func (a *Augmenter) Step(r Residue) int {
	a.val += SignedDelta(a.res, r)
	a.res = r
	if a.val > a.max {
		a.max = a.val
	}
	return a.val
}

// Value returns the current decoded absolute score.
func (a *Augmenter) Value() int { return a.val }

// Max returns the maximum decoded score seen along the path.
func (a *Augmenter) Max() int { return a.max }

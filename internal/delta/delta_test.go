package delta

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDMax2AgainstRealMax(t *testing.T) {
	f := func(base int16, d int8) bool {
		x := int(base)
		dd := int(d) % (MaxDelta + 1) // |X-Y| <= MaxDelta
		y := x + dd
		want := x
		if y > want {
			want = y
		}
		return DMax2(Encode(x), Encode(y)) == Encode(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDMax3AgainstRealMax(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5000; trial++ {
		x := rng.Intn(2001) - 1000
		y := x + rng.Intn(2*MaxDelta+1) - MaxDelta
		z := x + rng.Intn(2*MaxDelta+1) - MaxDelta
		// Enforce the 3-input pairwise precondition.
		if y-z > MaxDelta || z-y > MaxDelta {
			continue
		}
		want := x
		if y > want {
			want = y
		}
		if z > want {
			want = z
		}
		if got := DMax3(Encode(x), Encode(y), Encode(z)); got != Encode(want) {
			t.Fatalf("DMax3(%d,%d,%d): residue %d, want %d", x, y, z, got, Encode(want))
		}
	}
}

func TestSignedDelta(t *testing.T) {
	for a := -20; a <= 20; a++ {
		for d := -MaxDelta; d <= MaxDelta; d++ {
			b := a + d
			if got := SignedDelta(Encode(a), Encode(b)); got != d {
				t.Fatalf("SignedDelta(%d,%d) = %d, want %d", a, b, got, d)
			}
		}
	}
}

func TestAugmenterDecodesWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		v := rng.Intn(200) - 50
		aug := NewAugmenter(v)
		max := v
		for step := 0; step < 500; step++ {
			v += rng.Intn(2*MaxDelta+1) - MaxDelta
			if v > max {
				max = v
			}
			if got := aug.Step(Encode(v)); got != v {
				t.Fatalf("trial %d step %d: decoded %d, want %d", trial, step, got, v)
			}
		}
		if aug.Max() != max {
			t.Fatalf("trial %d: max %d, want %d", trial, aug.Max(), max)
		}
		if aug.Value() != v {
			t.Fatalf("trial %d: value %d, want %d", trial, aug.Value(), v)
		}
	}
}

func TestModuloCircleProperties(t *testing.T) {
	if Mod < 2*MaxDelta+1 {
		t.Fatalf("Δ=%d violates Δ >= 2δ+1 with δ=%d", Mod, MaxDelta)
	}
	if Mod&(Mod-1) != 0 {
		t.Fatalf("Δ=%d is not a power of two (3-bit datapath)", Mod)
	}
	// Encode is a ring homomorphism for Add.
	for v := -10; v < 10; v++ {
		for d := -MaxDelta; d <= MaxDelta; d++ {
			if Encode(v).Add(d) != Encode(v+d) {
				t.Fatalf("Add inconsistent at v=%d d=%d", v, d)
			}
		}
	}
}

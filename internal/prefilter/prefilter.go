// Package prefilter implements GateKeeper-style bit-parallel
// pre-alignment filtering: a cheap SWAR pass over 2-bit packed sequences
// that rejects hopeless extension candidates before they reach the banded
// kernels, one pipeline stage ahead of where SeedEx's own speculate-and-
// test tier sits.
//
// The core operation is the shifted-hamming mask. For a query q placed at
// a nominal diagonal inside a reference window t, the per-shift mask
//
//	m_j[i] = 1  iff  q[i] != t[i+j]
//
// is computed for every shift |j| <= e with word-parallel XORs over the
// packed codes, and the masks are AND-combined. A bit that survives the
// AND certifies that query position i matches the reference at NO shift
// within the band — so in any alignment with at most e edits that stays
// within diagonal band e of the nominal placement, position i must itself
// be an edit. Hence
//
//	popcount(AND of masks) <= edit distance
//
// and rejecting when the popcount exceeds e can never reject a true
// candidate at threshold e (the filter's conservative guarantee: false
// passes allowed, false rejects never).
//
// GateKeeper additionally amends each mask before combining: an isolated
// zero (a single matching base between two mismatches) is speculative
// noise, so it is flipped to 1, sharpening rejection of random sequence.
// Amendment breaks the popcount<=d identity but keeps a provable bound:
// along a true alignment with d edits the matched positions form at most
// d+1 runs, only length-1 runs can be flipped, so
//
//	popcount(AND of amended masks) <= 2d + 1
//
// and the amended rejection threshold 2e+1 stays conservative.
//
// Beyond the boolean verdict, Check certifies a lower bound on the score
// loss (vs. an all-match read) of ANY alignment of q inside t — clipped,
// drifted beyond the band, anything the downstream aligner could produce.
// Callers use n*Match - LossLB as a score upper bound to decide whether a
// rejected candidate could still influence final results (the rescue rule
// that makes filtering bit-safe end to end).
package prefilter

import "math/bits"

// basesPerWord is the 2-bit packing density.
const basesPerWord = 32

// evenMask selects the low bit of every 2-bit base slot.
const evenMask = 0x5555555555555555

// Costs mirrors the aligner's scoring model (positive penalties), used to
// turn certified mask bits into a certified score-loss bound.
type Costs struct {
	Match, Mismatch, GapOpen, GapExtend int
}

// DefaultCosts matches align.DefaultScoring.
func DefaultCosts() Costs { return Costs{Match: 1, Mismatch: 4, GapOpen: 6, GapExtend: 1} }

// perBit is the minimum score loss of one certified-unmatchable query
// position that is not clipped: it forgoes its match and pays at least
// the cheaper of a mismatch or a gap-extension step.
func (c Costs) perBit() int { return c.Match + min(c.Mismatch, c.GapExtend) }

// Verdict is the filter's answer for one candidate placement.
type Verdict struct {
	// Accept is the conservative pass/reject decision: if the query
	// aligns within the window at <= maxEdits edits (drift within the
	// shift band), Accept is guaranteed true.
	Accept bool
	// Bits is the unamended AND-mask popcount: a certified lower bound on
	// the edit distance of any full-query alignment whose diagonal drift
	// stays within maxEdits of the nominal placement.
	Bits int
	// LossLB is a certified lower bound on the score loss (relative to
	// len(q)*Match) of ANY alignment of the query inside the window —
	// including clipped alignments and alignments that drift beyond the
	// shift band. len(q)*Match - LossLB upper-bounds every score the
	// aligner could produce for this candidate.
	LossLB int
}

// Filter is the pluggable pre-alignment filter contract. Implementations
// may pass false candidates freely but must never reject a candidate that
// aligns within the configured edit threshold; LossLB must be sound for
// every alignment shape. Implementations may keep scratch state and are
// not goroutine-safe unless documented otherwise.
type Filter interface {
	Name() string
	// Margin returns how many reference bases beyond each end of the
	// query span the window passed to Check must include for threshold
	// maxEdits and free-drift allowance freeDrift.
	Margin(maxEdits, freeDrift int) int
	// Check screens the query against the window. freeDrift widens the
	// certified drift range without charging gap costs: callers pass the
	// diagonal spread of the seed group anchoring the candidate, since
	// an alignment may pass through any of those diagonals for free.
	Check(q, t *Packed, maxEdits, freeDrift int, costs Costs) Verdict
}

// Packed is a sequence in 2-bit SWAR form: base codes packed 32 per
// uint64, plus parallel 1-bit-per-slot planes marking ambiguous bases (N,
// which compares equal only to N) and void positions (outside the
// underlying sequence, which compare equal to nothing). The planes use
// the same 2-bit slot layout as the codes so shifted extraction is
// uniform across all three.
type Packed struct {
	n     int
	code  []uint64
	ambig []uint64
	void  []uint64
}

// Len returns the number of packed positions.
func (p *Packed) Len() int { return p.n }

// words returns the word count needed for n bases.
func words(n int) int { return (n + basesPerWord - 1) / basesPerWord }

func (p *Packed) reset(n int) {
	w := words(n)
	if cap(p.code) < w {
		p.code = make([]uint64, w)
		p.ambig = make([]uint64, w)
		p.void = make([]uint64, w)
	}
	p.code = p.code[:w]
	p.ambig = p.ambig[:w]
	p.void = p.void[:w]
	for i := 0; i < w; i++ {
		p.code[i], p.ambig[i], p.void[i] = 0, 0, 0
	}
	p.n = n
}

// Load packs seq (2-bit base codes; values >= 4 are ambiguous) into p,
// reusing p's buffers.
func (p *Packed) Load(seq []byte) { p.LoadWindow(seq, 0, len(seq)) }

// LoadWindow packs seq[lo:hi) into p, reusing p's buffers. The bounds may
// exceed the sequence: positions outside [0,len(seq)) are packed as void
// (matching nothing), so callers can take fixed-size windows at sequence
// edges without bounds bookkeeping.
func (p *Packed) LoadWindow(seq []byte, lo, hi int) {
	if hi < lo {
		hi = lo
	}
	p.reset(hi - lo)
	for i := 0; i < p.n; i++ {
		pos := lo + i
		w, sh := i/basesPerWord, uint(i%basesPerWord)*2
		if pos < 0 || pos >= len(seq) {
			p.void[w] |= 1 << sh
			continue
		}
		if c := seq[pos]; c < 4 {
			p.code[w] |= uint64(c) << sh
		} else {
			p.ambig[w] |= 1 << sh
		}
	}
}

// Pack allocates a new Packed holding seq.
func Pack(seq []byte) *Packed {
	p := &Packed{}
	p.Load(seq)
	return p
}

// extract returns 64 bits of ws starting at bit offset b >= 0, zero-
// filling past the end of the slice.
func extract(ws []uint64, b int) uint64 {
	w, s := b>>6, uint(b&63)
	var v uint64
	if w < len(ws) {
		v = ws[w] >> s
		if s != 0 && w+1 < len(ws) {
			v |= ws[w+1] << (64 - s)
		}
	}
	return v
}

// SHD is the shifted-hamming filter. MaxEdits-threshold verdicts use the
// amended masks at threshold 2e+1; the loss bound additionally AND-folds
// shifts out to e+Extra, trading a slightly wider window for certified
// gap costs on band-escaping alignments. An SHD keeps scratch buffers and
// is not goroutine-safe; give each worker its own.
type SHD struct {
	// Extra widens the certified shift range beyond the edit threshold
	// for the loss bound (default 6 when zero).
	Extra int
	// NoAmend disables GateKeeper's amendment pass (verdicts then use the
	// raw AND popcount against threshold e).
	NoAmend bool

	and, am, cur []uint64
}

// DefaultExtra is the shift-range extension used when SHD.Extra is zero.
const DefaultExtra = 6

func (f *SHD) extra() int {
	if f.Extra > 0 {
		return f.Extra
	}
	return DefaultExtra
}

// Name implements Filter.
func (f *SHD) Name() string { return "shd" }

// Margin implements Filter.
func (f *SHD) Margin(maxEdits, freeDrift int) int {
	return max(maxEdits, 1) + max(freeDrift, 0) + f.extra()
}

func (f *SHD) scratch(w int) {
	if cap(f.and) < w {
		f.and = make([]uint64, w)
		f.am = make([]uint64, w)
		f.cur = make([]uint64, w)
	}
	f.and, f.am, f.cur = f.and[:w], f.am[:w], f.cur[:w]
}

// maskShift fills f.cur with the shift-j mismatch mask: bit i set iff
// q[i] does not match t[i+margin+j] under N-equals-N semantics, with void
// positions mismatching everything and bits past q's length cleared.
func (f *SHD) maskShift(q, t *Packed, margin, j int) {
	for w := range f.cur {
		b := 2 * (w*basesPerWord + margin + j)
		x := q.code[w] ^ extract(t.code, b)
		m := (x | x>>1) & evenMask
		m |= q.ambig[w] ^ extract(t.ambig, b)
		m |= extract(t.void, b)
		f.cur[w] = m & evenMask
	}
	// Clear slots past the query length in the last word.
	if r := q.n % basesPerWord; r != 0 {
		f.cur[len(f.cur)-1] &= (1 << (uint(r) * 2)) - 1
	}
}

// amend flips isolated zeros (a single match squeezed between two
// mismatches) to ones, GateKeeper's amendment of speculative short
// matches. Word-local: runs spanning word boundaries are left alone,
// which only under-amends and so stays conservative.
func amend(m uint64) uint64 { return m | ((m << 2) & (m >> 2) & evenMask) }

func popcount(ws []uint64) int {
	n := 0
	for _, w := range ws {
		n += bits.OnesCount64(w)
	}
	return n
}

// clipLoss lower-bounds the score loss of any alignment whose drift stays
// within the current AND-mask's shift range, accounting for free end
// clipping: every certified bit loses perBit unless a clip covers it, and
// a clip of c bases loses c*Match outright. The two end discounts are
// computed by exact prefix/suffix scans over the bit positions (the loss
// function only decreases at bits, so scanning set bits suffices).
func clipLoss(and []uint64, n int, c Costs) int {
	p := popcount(and)
	if p == 0 {
		return 0
	}
	pb := c.perBit()
	loss := p*pb + clipDiscountL(and, c.Match, pb) + clipDiscountR(and, n, c.Match, pb)
	return max(loss, 0)
}

func clipDiscountL(ws []uint64, match, perBit int) int {
	best, cum := 0, 0
	for w, word := range ws {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			pos := w*basesPerWord + b/2
			cum += perBit
			if v := (pos+1)*match - cum; v < best {
				best = v
			}
		}
	}
	return best
}

func clipDiscountR(ws []uint64, n, match, perBit int) int {
	best, cum := 0, 0
	for w := len(ws) - 1; w >= 0; w-- {
		word := ws[w]
		for word != 0 {
			b := 63 - bits.LeadingZeros64(word)
			word &^= 1 << uint(b)
			pos := w*basesPerWord + b/2
			cum += perBit
			if v := (n-pos)*match - cum; v < best {
				best = v
			}
		}
	}
	return best
}

// Check implements Filter. The window t must have been taken with
// Margin(maxEdits, freeDrift) bases of overhang on each side of the
// query's nominal placement (LoadWindow pads with void at sequence
// edges, so fixed-size windows are always safe). Alignments may sit up
// to freeDrift diagonals off-nominal without incurring gap charges in
// the loss bound.
func (f *SHD) Check(q, t *Packed, maxEdits, freeDrift int, costs Costs) Verdict {
	e := max(maxEdits, 1)
	s := max(freeDrift, 0)
	ring := s + e // drift certified without gap charges
	margin := ring + f.extra()
	w := len(q.code)
	f.scratch(w)
	for i := range f.and {
		f.and[i] = ^uint64(0)
		f.am[i] = ^uint64(0)
	}

	// Drift escaping every certified shift needs at least margin+1-s gap
	// bases beyond the free allowance.
	lossLB := costs.GapOpen + (margin+1-s)*costs.GapExtend
	var v Verdict
	// Fold shifts outward by |j| ring; after each completed ring J the
	// running AND certifies all alignments with drift <= J.
	for j := 0; j <= margin; j++ {
		f.maskShift(q, t, margin, j)
		for i := range f.and {
			f.and[i] &= f.cur[i]
		}
		if j <= ring {
			for i := range f.am {
				f.am[i] &= amend(f.cur[i])
			}
		}
		if j > 0 {
			f.maskShift(q, t, margin, -j)
			for i := range f.and {
				f.and[i] &= f.cur[i]
			}
			if j <= ring {
				for i := range f.am {
					f.am[i] &= amend(f.cur[i])
				}
			}
		}
		if j == ring {
			v.Bits = popcount(f.and)
			if f.NoAmend {
				v.Accept = v.Bits <= e
			} else {
				v.Accept = popcount(f.am) <= 2*e+1 || v.Bits <= e
			}
			lossLB = min(lossLB, clipLoss(f.and, q.n, costs))
		} else if j > ring {
			// Alignments with max drift exactly j also pay the gap cost
			// of reaching that drift beyond the free allowance.
			lossLB = min(lossLB, costs.GapOpen+(j-s)*costs.GapExtend+clipLoss(f.and, q.n, costs))
		}
	}
	v.LossLB = lossLB
	return v
}

// AcceptAll is the no-op Filter: every candidate passes and no loss is
// certified. It stands in where filtering is disabled but a Filter value
// is required.
type AcceptAll struct{}

// Name implements Filter.
func (AcceptAll) Name() string { return "none" }

// Margin implements Filter.
func (AcceptAll) Margin(int, int) int { return 0 }

// Check implements Filter.
func (AcceptAll) Check(_, _ *Packed, _, _ int, _ Costs) Verdict { return Verdict{Accept: true} }

package prefilter

import (
	"math/rand"
	"testing"
)

// bandedEdit is the exact-oracle counterpart of the filter's mask bound:
// the minimum number of edits aligning ALL of q inside t with the query
// cursor starting at t offset margin (start drift free within the band)
// and every position's diagonal drift staying within [-e, e]. Equality
// follows the filter's semantics (codes compare by value, so N matches
// only N; positions outside t match nothing).
func bandedEdit(q, t []byte, margin, e int) int {
	const inf = 1 << 29
	n := len(q)
	w := 2*e + 1
	dp := make([]int, w)
	nx := make([]int, w)
	for k := range dp {
		dp[k] = 0
	}
	for i := 0; ; i++ {
		// Deletions propagate within the row (drift ascending).
		for k := 1; k < w; k++ {
			pos := margin + i + (k - 1 - e)
			if pos >= 0 && pos < len(t) && dp[k-1]+1 < dp[k] {
				dp[k] = dp[k-1] + 1
			}
		}
		if i == n {
			break
		}
		for k := range nx {
			nx[k] = inf
		}
		for k := 0; k < w; k++ {
			if dp[k] >= inf {
				continue
			}
			pos := margin + i + (k - e)
			if pos >= 0 && pos < len(t) {
				cost := 1
				if q[i] == t[pos] {
					cost = 0
				}
				if v := dp[k] + cost; v < nx[k] {
					nx[k] = v
				}
			}
			if k > 0 {
				if v := dp[k] + 1; v < nx[k-1] {
					nx[k-1] = v
				}
			}
		}
		dp, nx = nx, dp
	}
	best := inf
	for k := range dp {
		if dp[k] < best {
			best = dp[k]
		}
	}
	return best
}

// extScore is the affine-gap extension oracle: the best score of any
// monotone path starting at the (q[0], t[0]) corner, with the unconsumed
// remainder of both sequences free (the aligner's clip semantics). No
// zero floor — paths may dip, matching the extension kernels.
func extScore(q, t []byte, c Costs) int {
	const neg = -(1 << 29)
	m, n := len(q), len(t)
	H := make([][]int, m+1)
	E := make([][]int, m+1)
	F := make([][]int, m+1)
	for i := 0; i <= m; i++ {
		H[i] = make([]int, n+1)
		E[i] = make([]int, n+1)
		F[i] = make([]int, n+1)
	}
	best := 0
	for i := 0; i <= m; i++ {
		for j := 0; j <= n; j++ {
			E[i][j], F[i][j] = neg, neg
			if j > 0 {
				E[i][j] = max(H[i][j-1]-c.GapOpen, E[i][j-1]) - c.GapExtend
			}
			if i > 0 {
				F[i][j] = max(H[i-1][j]-c.GapOpen, F[i-1][j]) - c.GapExtend
			}
			h := neg
			if i == 0 && j == 0 {
				h = 0
			}
			if i > 0 && j > 0 {
				s := -c.Mismatch
				if q[i-1] == t[j-1] {
					s = c.Match
				}
				h = max(h, H[i-1][j-1]+s)
			}
			h = max(h, E[i][j], F[i][j])
			H[i][j] = h
			if h > best {
				best = h
			}
		}
	}
	return best
}

func reverseBytes(s []byte) []byte {
	out := make([]byte, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b
	}
	return out
}

// bestThroughDiag is the oracle for LossLB: the best affine score of any
// clipped alignment of q in t that passes through the nominal diagonal
// with at least one exact match (the shape of every anchored extension
// candidate the aligner can produce).
func bestThroughDiag(q, t []byte, margin int, c Costs) (int, bool) {
	best, any := 0, false
	for i := 0; i < len(q); i++ {
		p := margin + i
		if p < 0 || p >= len(t) || q[i] != t[p] {
			continue
		}
		any = true
		left := extScore(reverseBytes(q[:i]), reverseBytes(t[:p]), c)
		right := extScore(q[i+1:], t[p+1:], c)
		if s := left + c.Match + right; s > best {
			best = s
		}
	}
	return best, any
}

// checkInvariants asserts the filter's three certified claims against the
// oracles for one (q, window, e) instance.
func checkInvariants(t *testing.T, q, win []byte, e int) Verdict {
	t.Helper()
	c := DefaultCosts()
	f := &SHD{}
	margin := f.Margin(e, 0)
	if len(win) != len(q)+2*margin {
		t.Fatalf("window sized %d, want %d", len(win), len(q)+2*margin)
	}
	qp, tp := Pack(q), Pack(win)
	v := f.Check(qp, tp, e, 0, c)
	if v2 := f.Check(qp, tp, e, 0, c); v2 != v {
		t.Fatalf("non-deterministic verdict: %+v vs %+v", v, v2)
	}
	if v.Bits < 0 || v.LossLB < 0 {
		t.Fatalf("negative certificates: %+v", v)
	}
	d := bandedEdit(q, win, margin, e)
	if d <= e {
		if !v.Accept {
			t.Fatalf("conservativeness violated: edit distance %d <= e=%d but rejected (%+v) q=%v win=%v",
				d, e, v, q, win)
		}
		if v.Bits > d {
			t.Fatalf("Bits=%d exceeds exact banded edit distance %d (e=%d) q=%v win=%v",
				v.Bits, d, e, q, win)
		}
	}
	if ub, any := bestThroughDiag(q, win, margin, c); any {
		if got := len(q)*c.Match - v.LossLB; got < ub {
			t.Fatalf("score upper bound %d below achievable anchored score %d (LossLB=%d) q=%v win=%v",
				got, ub, v.LossLB, q, win)
		}
	}
	return v
}

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

// plantWindow builds a window holding q at offset margin+shift with the
// given number of random edits applied to the copy.
func plantWindow(rng *rand.Rand, q []byte, margin, shift, edits int) []byte {
	win := randSeq(rng, len(q)+2*margin)
	copy(win[margin+shift:], q)
	for k := 0; k < edits; k++ {
		i := margin + shift + rng.Intn(len(q))
		if i < len(win) {
			win[i] = byte(rng.Intn(4))
		}
	}
	return win
}

func TestIdenticalSequenceAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{5, 31, 32, 33, 64, 101, 150} {
		q := randSeq(rng, n)
		f := &SHD{}
		e := 2
		margin := f.Margin(e, 0)
		win := append(append(randSeq(rng, margin), q...), randSeq(rng, margin)...)
		v := checkInvariants(t, q, win, e)
		if !v.Accept || v.Bits != 0 {
			t.Fatalf("n=%d: identical copy not cleanly accepted: %+v", n, v)
		}
		if v.LossLB != 0 {
			t.Fatalf("n=%d: identical copy certifies loss %d, want 0", n, v.LossLB)
		}
	}
}

func TestSubstitutionsWithinThresholdAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		e := 1 + rng.Intn(4)
		q := randSeq(rng, 20+rng.Intn(120))
		f := &SHD{}
		win := plantWindow(rng, q, f.Margin(e, 0), 0, rng.Intn(e+1))
		checkInvariants(t, q, win, e)
	}
}

func TestShiftedCopyAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		e := 1 + rng.Intn(3)
		q := randSeq(rng, 30+rng.Intn(90))
		f := &SHD{}
		shift := rng.Intn(2*e+1) - e
		win := plantWindow(rng, q, f.Margin(e, 0), shift, 0)
		v := checkInvariants(t, q, win, e)
		if !v.Accept {
			t.Fatalf("exact copy at shift %d rejected at e=%d: %+v", shift, e, v)
		}
	}
}

func TestRandomJunkRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rejected := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		e := 2
		q := randSeq(rng, 101)
		f := &SHD{}
		win := randSeq(rng, 101+2*f.Margin(e, 0))
		v := checkInvariants(t, q, win, e)
		if !v.Accept {
			rejected++
		}
		// Junk must also carry a meaningful score bound: far below a
		// full-length match.
		if ub := 101 - v.LossLB; ub > 95 {
			t.Fatalf("junk window certifies score bound %d, suspiciously close to perfect", ub)
		}
	}
	if rejected < trials*9/10 {
		t.Fatalf("only %d/%d random windows rejected; filter has no teeth", rejected, trials)
	}
}

func TestHalfJunkScoreBound(t *testing.T) {
	// A read whose right half matches exactly and whose left half is
	// random junk: the bound must sit clearly below perfect, but at or
	// above what clipping the junk half achieves (~n/2).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		e := 2
		f := &SHD{}
		margin := f.Margin(e, 0)
		q := randSeq(rng, 100)
		win := randSeq(rng, 100+2*margin)
		copy(win[margin+50:], q[50:])
		v := checkInvariants(t, q, win, e)
		ub := 100 - v.LossLB
		if ub < 50 {
			t.Fatalf("upper bound %d below the achievable clipped score ~50", ub)
		}
	}
}

func TestAmbiguousBases(t *testing.T) {
	e := 1
	f := &SHD{}
	margin := f.Margin(e, 0)
	// N matches N but nothing else, mirroring the aligner's code-equality
	// scoring.
	q := []byte{0, 1, 4, 2, 3, 0, 1, 2}
	winExact := make([]byte, len(q)+2*margin)
	for i := range winExact {
		winExact[i] = byte((i * 7) % 4)
	}
	copy(winExact[margin:], q)
	v := checkInvariants(t, q, winExact, e)
	if !v.Accept || v.Bits != 0 {
		t.Fatalf("N-vs-N copy not accepted cleanly: %+v", v)
	}
	winSub := append([]byte(nil), winExact...)
	winSub[margin+2] = 0 // N in query vs A in window: a mismatch
	v = checkInvariants(t, q, winSub, e)
	if v.Accept && v.Bits > 1 {
		t.Fatalf("unexpected certificate for single N mismatch: %+v", v)
	}
}

func TestWindowEdgesAreVoid(t *testing.T) {
	// A window loaded at the very start of a sequence pads with void;
	// a copy placed flush at the sequence start must still be accepted.
	e := 2
	f := &SHD{}
	margin := f.Margin(e, 0)
	rng := rand.New(rand.NewSource(6))
	ref := randSeq(rng, 200)
	q := append([]byte(nil), ref[:60]...)
	var tp Packed
	tp.LoadWindow(ref, -margin, 60+margin)
	qp := Pack(q)
	v := (&SHD{}).Check(qp, &tp, e, 0, DefaultCosts())
	if !v.Accept || v.Bits != 0 {
		t.Fatalf("copy at sequence start rejected: %+v", v)
	}
}

// TestFreeDrift checks the diagonal-spread allowance: a copy planted
// |shift| <= freeDrift off-nominal must be accepted with no gap charge
// in the loss bound, and the verdict must never be harsher than the
// freeDrift=0 verdict of the same geometry (widening the free range
// only relaxes the filter).
func TestFreeDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := DefaultCosts()
	e := 2
	for _, s := range []int{1, 3, 7, maxLegalDriftForTest} {
		f := &SHD{}
		margin := f.Margin(e, s)
		for _, shift := range []int{-s, -1, 0, 1, s} {
			q := randSeq(rng, 101)
			win := plantWindow(rng, q, margin, shift, 0)
			v := f.Check(Pack(q), Pack(win), e, s, c)
			if !v.Accept || v.Bits != 0 {
				t.Fatalf("shift %d within freeDrift %d rejected: %+v", shift, s, v)
			}
			if v.LossLB != 0 {
				t.Fatalf("shift %d within freeDrift %d charged loss %d", shift, s, v.LossLB)
			}
		}
		// Junk still gets a real loss bound at small drift. (Wide free
		// ranges legitimately weaken the filter: with many gap-free
		// shifts, random junk matches somewhere at most positions.)
		if s == 1 {
			q := randSeq(rng, 101)
			win := randSeq(rng, 101+2*margin)
			v := f.Check(Pack(q), Pack(win), e, s, c)
			if v.LossLB <= 0 {
				t.Fatalf("freeDrift %d: junk window certified no loss: %+v", s, v)
			}
		}
	}
}

const maxLegalDriftForTest = 12

func TestAcceptAll(t *testing.T) {
	var f AcceptAll
	v := f.Check(nil, nil, 2, 0, DefaultCosts())
	if !v.Accept || v.Bits != 0 || v.LossLB != 0 {
		t.Fatalf("AcceptAll verdict %+v", v)
	}
	if f.Margin(5, 0) != 0 || f.Name() != "none" {
		t.Fatal("AcceptAll metadata wrong")
	}
}

// TestConservativeSweep is the deterministic companion of
// FuzzPrefilterConservative: a seeded sweep over mutation structures
// (substitutions, indels, shifts, junk, half-junk) re-checking all three
// certified invariants against the oracles.
func TestConservativeSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		e := 1 + rng.Intn(4)
		n := 10 + rng.Intn(100)
		q := randSeq(rng, n)
		f := &SHD{}
		margin := f.Margin(e, 0)
		var win []byte
		switch trial % 4 {
		case 0: // substituted copy, around the threshold
			win = plantWindow(rng, q, margin, rng.Intn(2*e+1)-e, rng.Intn(2*e+2))
		case 1: // copy with small indels
			win = randSeq(rng, n+2*margin)
			mut := append([]byte(nil), q...)
			for k := rng.Intn(e + 1); k > 0 && len(mut) > 2; k-- {
				i := rng.Intn(len(mut))
				if rng.Intn(2) == 0 {
					mut = append(mut[:i], mut[i+1:]...)
				} else {
					mut = append(mut[:i], append([]byte{byte(rng.Intn(4))}, mut[i:]...)...)
				}
			}
			copy(win[margin:], mut)
		case 2: // pure junk
			win = randSeq(rng, n+2*margin)
		case 3: // junk with an embedded exact fragment
			win = randSeq(rng, n+2*margin)
			frag := n / 2
			off := rng.Intn(n - frag + 1)
			copy(win[margin+off:], q[off:off+frag])
		}
		checkInvariants(t, q, win, e)
	}
}

// FuzzPrefilterConservative fuzzes the never-rejects-a-true-positive
// guarantee: whenever the exact banded edit distance of the query inside
// the window is within the threshold, the filter must accept; its Bits
// certificate must lower-bound that distance; and its LossLB certificate
// must upper-bound every anchored alignment score the aligner could find.
func FuzzPrefilterConservative(f *testing.F) {
	f.Add([]byte{2, 20, 1, 0}, int64(1))
	f.Add([]byte{3, 40, 3, 2, 0xFF, 0x10, 0x22}, int64(2))
	f.Add([]byte{1, 48, 5, 7, 1, 2, 3, 4, 5, 6, 7, 8}, int64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) < 4 {
			return
		}
		e := 1 + int(data[0])%4
		n := 8 + int(data[1])%41 // 8..48
		shift := int(data[2])%(2*e+1) - e
		edits := int(data[3]) % (2*e + 3)
		rng := rand.New(rand.NewSource(seed))
		q := randSeq(rng, n)
		// Fold remaining fuzz bytes into the query so the corpus explores
		// structured sequences too.
		for i, b := range data[4:] {
			if i >= n {
				break
			}
			q[i] = b % 4
		}
		sh := &SHD{}
		margin := sh.Margin(e, 0)
		var win []byte
		if edits > 2*e+1 {
			win = randSeq(rng, n+2*margin) // junk case
		} else {
			win = plantWindow(rng, q, margin, shift, edits)
		}
		checkInvariants(t, q, win, e)
	})
}

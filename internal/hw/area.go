// Package hw provides the analytic hardware models of the SeedEx
// reproduction: FPGA LUT area (Figures 4, 15, 16a/b; Table II), ASIC area
// and power (Table III), and the comparator systems of Figure 18.
//
// The paper's numbers come from Vivado place-and-route on a VU9P and
// Synopsys DC in TSMC 28nm — hardware this reproduction cannot run.
// Following the substitution rules in DESIGN.md, the models below are
// parametric in structural quantities (PE counts, datapath widths, core
// counts) with per-component constants chosen once so that the paper's
// *published component ratios* (full-band/SeedEx 2.3x, the edit-core
// 1.82x/3.11x/6.06x ladder, 5.53% checker overhead, Table II utilization)
// emerge from the model; every derived figure is then recomputed through
// these formulas rather than hard-coded.
package hw

import "fmt"

// VU9PLUTs is the usable LUT count of the Xilinx Ultrascale+ VU9P
// (~2.5M logic elements ~ 1.18M LUTs).
const VU9PLUTs = 1_182_240

// FPGA clock period used by SeedEx custom logic (paper §VI: 8 ns).
const ClockNs = 8.0

// ClockHz is the SeedEx FPGA clock frequency.
const ClockHz = 1e9 / ClockNs

// LUT-model constants (see the package comment for the calibration
// philosophy; TestPublishedRatiosEmerge pins the resulting ratios).
const (
	bswCoreFixedLUT  = 900.0  // input parse, score accumulators, control
	bswPELUT         = 320.0  // one 8-bit affine-gap PE with score registers
	bswRoutingLUT    = 0.4738 // superlinear routing/wiring term per PE^2
	editCoreFixedLUT = 900.0  // edit core control and buffers
	editPENaiveLUT   = 176.0  // 8-bit reduced-scoring (no E/F registers) PE
	editPEDeltaLUT   = 94.0   // 3-bit delta-encoded PE + share of dmax tree
	checkerFraction  = 0.0553 // optimality-check logic share of a SeedEx core
	controllerLUT    = 400.0  // master state controller
	ioBuffersLUT     = 5_800.0
	awsShellLUT      = 0.1974 * VU9PLUTs // AWS shell + AXI interconnect
	seedingLUT       = 0.2104 * VU9PLUTs // ERT seeding accelerator (1x6)
)

// BSWCoreLUT models one banded Smith-Waterman core with pes processing
// elements (Figure 4's near-linear growth with a mild routing term).
func BSWCoreLUT(pes int) float64 {
	p := float64(pes)
	return bswCoreFixedLUT + bswPELUT*p + bswRoutingLUT*p*p
}

// EditCoreLevel selects how much of §IV-B's optimization ladder is
// applied to the edit machine (Figure 16b).
type EditCoreLevel int

// Ladder rungs, in paper order.
const (
	// EditNaive uses the reduced edit scoring datapath but keeps the
	// 8-bit width (1.82x smaller than a BSW core).
	EditNaive EditCoreLevel = iota
	// EditDelta adds 3-bit delta encoding (3.11x smaller).
	EditDelta
	// EditHalfWidth additionally halves the PE array for the trapezoid
	// sweep (6.06x smaller) — the shipping configuration.
	EditHalfWidth
)

// EditCoreLUT models the edit machine at a given optimization level, for
// an array matched to a BSW core with pes PEs.
func EditCoreLUT(pes int, level EditCoreLevel) float64 {
	p := float64(pes)
	switch level {
	case EditNaive:
		return editCoreFixedLUT + editPENaiveLUT*p
	case EditDelta:
		return editCoreFixedLUT + editPEDeltaLUT*p
	default: // EditHalfWidth
		return editCoreFixedLUT/2 + editPEDeltaLUT*(p+1)/2
	}
}

// SeedExCoreLUT models one SeedEx core: bswPerCore narrow-band BSW cores,
// one half-width delta edit machine, and the optimality-check logic
// (thresholds, E-score max unit, workflow FSM) at its published share.
func SeedExCoreLUT(pes, bswPerCore int) float64 {
	datapath := float64(bswPerCore)*BSWCoreLUT(pes) + EditCoreLUT(pes, EditHalfWidth)
	return datapath / (1 - checkerFraction)
}

// CheckerLUT is the optimality-check logic of one SeedEx core.
func CheckerLUT(pes, bswPerCore int) float64 {
	return SeedExCoreLUT(pes, bswPerCore) * checkerFraction
}

// FullBandCoreLUT is the baseline: a BSW core whose band covers the whole
// query (one PE per query position).
func FullBandCoreLUT(qlen int) float64 { return BSWCoreLUT(qlen) }

// Breakdown is a named LUT budget (Figure 15 / Table II rows).
type Breakdown struct {
	Name string
	LUT  float64
}

// Pct returns the share of the VU9P budget.
func (b Breakdown) Pct() float64 { return 100 * b.LUT / VU9PLUTs }

// String renders one budget row.
func (b Breakdown) String() string {
	return fmt.Sprintf("%-22s %9.0f LUT  %5.2f%%", b.Name, b.LUT, b.Pct())
}

// SeedExFPGABreakdown models the SeedEx-only FPGA image of Figure 15:
// cores SeedEx cores (3 BSW + 1 edit each) plus controller, buffers and
// the AWS shell.
func SeedExFPGABreakdown(pes, cores int) []Breakdown {
	bsw := float64(cores) * 3 * BSWCoreLUT(pes)
	edit := float64(cores) * EditCoreLUT(pes, EditHalfWidth)
	checker := float64(cores) * CheckerLUT(pes, 3)
	return []Breakdown{
		{"BSW cores", bsw},
		{"Edit cores", edit},
		{"Checker", checker},
		{"Controller", controllerLUT},
		{"I/O buffers", ioBuffersLUT},
		{"AWS interface", awsShellLUT},
	}
}

// CombinedImageBreakdown models Table II: the seeding accelerator plus a
// 3-core SeedEx cluster on one image.
func CombinedImageBreakdown(pes int) []Breakdown {
	seedex := 3 * SeedExCoreLUT(pes, 3)
	return []Breakdown{
		{"Seeding (ERT 1x6)", seedingLUT},
		{"SeedEx: Controller", controllerLUT},
		{"SeedEx: I/O Buffers", ioBuffersLUT},
		{"SeedEx: SeedEx Core", seedex},
		{"AWS Interface", awsShellLUT},
	}
}

// TotalLUT sums a breakdown.
func TotalLUT(rows []Breakdown) float64 {
	t := 0.0
	for _, r := range rows {
		t += r.LUT
	}
	return t
}

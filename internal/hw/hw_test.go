package hw

import (
	"math"
	"testing"
)

func within(t *testing.T, name string, got, want, tolFrac float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero target", name)
	}
	if math.Abs(got-want)/math.Abs(want) > tolFrac {
		t.Fatalf("%s = %.4g, want %.4g (±%.0f%%)", name, got, want, tolFrac*100)
	}
}

// TestPublishedRatiosEmerge pins the calibration: the paper's published
// component ratios must fall out of the structural LUT model.
func TestPublishedRatiosEmerge(t *testing.T) {
	// Figure 16a: 3 full-band BSW cores vs one SeedEx core -> 2.3x LUTs.
	ratio := 3 * FullBandCoreLUT(101) / SeedExCoreLUT(41, 3)
	within(t, "fullband/seedex core LUT ratio", ratio, 2.3, 0.10)

	// Figure 16b ladder at 41 PEs.
	b := BSWCoreLUT(41)
	within(t, "edit naive ladder", b/EditCoreLUT(41, EditNaive), 1.82, 0.10)
	within(t, "edit delta ladder", b/EditCoreLUT(41, EditDelta), 3.11, 0.10)
	within(t, "edit half-width ladder", b/EditCoreLUT(41, EditHalfWidth), 6.06, 0.10)

	// Checker overhead share.
	within(t, "checker fraction",
		CheckerLUT(41, 3)/SeedExCoreLUT(41, 3), 0.0553, 0.01)
}

func TestAreaGrowsWithBand(t *testing.T) {
	prev := 0.0
	for pes := 5; pes <= 101; pes += 8 {
		a := BSWCoreLUT(pes)
		if a <= prev {
			t.Fatalf("area must grow with band: %d PEs -> %.0f", pes, a)
		}
		prev = a
	}
}

// TestTableIIUtilization checks the combined-image budget against the
// paper's Table II percentages.
func TestTableIIUtilization(t *testing.T) {
	rows := CombinedImageBreakdown(41)
	var seedexCore, total float64
	for _, r := range rows {
		total += r.LUT
		if r.Name == "SeedEx: SeedEx Core" {
			seedexCore = r.Pct()
		}
	}
	within(t, "SeedEx core utilization %", seedexCore, 12.47, 0.10)
	totalPct := 100 * total / VU9PLUTs
	within(t, "combined image utilization %", totalPct, 53.77, 0.10)
}

func TestSeedExFPGABreakdown(t *testing.T) {
	rows := SeedExFPGABreakdown(41, 4)
	if len(rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(rows))
	}
	var bsw, edit float64
	for _, r := range rows {
		if r.LUT <= 0 {
			t.Fatalf("row %s has non-positive LUTs", r.Name)
		}
		if r.String() == "" {
			t.Fatal("empty row rendering")
		}
		switch r.Name {
		case "BSW cores":
			bsw = r.LUT
		case "Edit cores":
			edit = r.LUT
		}
	}
	// Compute should dominate (paper: "a majority of our resources are
	// spent on compute"), and edit cores are ~6x smaller than BSW cores
	// at a 3:1 count ratio.
	if bsw < edit*10 {
		t.Fatalf("BSW %.0f vs edit %.0f: expected ~18x", bsw, edit)
	}
}

func TestASICTableIII(t *testing.T) {
	area, power := ASICTotals(SeedExASIC())
	within(t, "SeedEx ASIC area", area, 0.98, 0.06)
	within(t, "SeedEx ASIC power", power/1000, 1.10, 0.06)
	all, allPower := ASICTotals(append(SeedExASIC(), ERTASIC()))
	within(t, "ERT+SeedEx area", all, 28.76, 0.02)
	within(t, "ERT+SeedEx power", allPower/1000, 9.81, 0.02)
	for _, c := range SeedExASIC() {
		if FormatASICRow(c) == "" {
			t.Fatal("empty ASIC row")
		}
	}
}

func TestSillaxScaling(t *testing.T) {
	if SillaxPEStates(32) != 1024 {
		t.Fatalf("Silla needs K^2 states")
	}
}

func TestFigure18Shape(t *testing.T) {
	bars := Figure18(41, 101, 121)
	byName := map[string]Comparator{}
	for _, b := range bars {
		byName[b.Name] = b
	}
	// 18a: SeedEx ~20x Sillax, both far above CPU/GPU.
	within(t, "SeedEx/Sillax kernel ratio",
		byName["SeedEx"].KernelThroughput/byName["Sillax"].KernelThroughput, 20, 0.01)
	if byName["Sillax"].KernelThroughput <= byName["CPU (SeqAn)"].KernelThroughput {
		t.Fatal("Sillax must beat CPU per mm^2")
	}
	if byName["CPU (SeqAn)"].KernelThroughput <= byName["GPU (SW#)"].KernelThroughput {
		t.Fatal("CPU (SeqAn) beats GPU (SW#) for short reads in the paper")
	}
	// 18b/c orderings.
	se, si, ga := byName["ERT+SeedEx"], byName["ERT+Sillax"], byName["GenAx"]
	within(t, "app vs ERT+Sillax", se.AppThroughput/si.AppThroughput, 1.56, 0.01)
	within(t, "app vs GenAx", se.AppThroughput/ga.AppThroughput, 14.6, 0.01)
	within(t, "eff vs ERT+Sillax", se.EnergyEff/si.EnergyEff, 2.45, 0.01)
	within(t, "eff vs GenAx", se.EnergyEff/ga.EnergyEff, 2.11, 0.01)
	if se.AppThroughput <= byName["BWA-MEM2"].AppThroughput {
		t.Fatal("accelerated system must beat software baseline")
	}
}

func TestKernelThroughputModel(t *testing.T) {
	ext, perMM2 := SeedExASICKernelThroughput(41, 101, 121)
	if ext <= 0 || perMM2 <= 0 {
		t.Fatalf("non-positive throughput %v %v", ext, perMM2)
	}
	// 12 cores at ~2 GHz with ~300-cycle service: tens of millions ext/s.
	if ext < 20e6 || ext > 500e6 {
		t.Fatalf("ASIC kernel throughput %.3g ext/s implausible", ext)
	}
}

package hw

import "fmt"

// ASICComponent is one row of Table III (TSMC 28nm synthesis results in
// the paper; reproduced here as the constants of the analytic model, with
// totals and derived Figure-18 quantities recomputed from them).
type ASICComponent struct {
	Name    string
	Config  string
	Count   int
	AreaMM2 float64 // total area of all instances
	PowerMW float64 // total power of all instances
}

// ASICClockNs is the SeedEx ASIC clock period (paper: 0.49 ns).
const ASICClockNs = 0.49

// ERTClockHz is the clock the combined ERT+SeedEx design scales to
// (paper: 1.2 GHz, matching ERT).
const ERTClockHz = 1.2e9

// SeedExASIC returns the SeedEx ASIC component table: 12 BSW cores,
// 4 edit cores, 1 full-band rerun core, I/O buffers and RAM.
func SeedExASIC() []ASICComponent {
	return []ASICComponent{
		{"I/O buffer", "4KiB", 1, 0.08, 139.5},
		{"RAM", "2.25KiB x 4", 4, 0.31, 548.2},
		{"BSW cores", "12", 12, 0.43, 288},
		{"Edit cores", "4", 4, 0.04, 59.2},
		{"Rerun core", "1", 1, 0.084, 35.5},
	}
}

// ERTASIC is the seeding accelerator the SeedEx ASIC pairs with.
func ERTASIC() ASICComponent {
	return ASICComponent{"ERT", "x8", 8, 27.78, 8_710}
}

// ASICTotals sums a component list.
func ASICTotals(parts []ASICComponent) (area float64, powerMW float64) {
	for _, p := range parts {
		area += p.AreaMM2
		powerMW += p.PowerMW
	}
	return
}

// FormatASICRow renders one Table III row.
func FormatASICRow(c ASICComponent) string {
	return fmt.Sprintf("%-12s %-12s %8.3f mm2 %9.1f mW", c.Name, c.Config, c.AreaMM2, c.PowerMW)
}

// SillaxPEStates models GenAx's Silla automaton: O(K^2) states for
// K-character windows (paper §VIII; K = 32, band w = 2K+1). The quadratic
// PE scaling is what SeedEx's linear narrow band beats by ~20x.
func SillaxPEStates(k int) int { return k * k }

// Comparator is one system of Figure 18, with area-normalized throughput
// and energy efficiency. SeedEx and Sillax entries are derived from the
// structural models; CPU/GPU/aligner entries carry the published
// measurements of the cited baselines (SeqAn, SW#, CUSHAW2, BWA-MEM2,
// GenAx, ERT), which this repository cannot re-measure.
type Comparator struct {
	Name string
	// KernelThroughput is seed-extension kernel throughput in
	// K extensions/s/mm^2 (Figure 18a; log scale in the paper).
	KernelThroughput float64
	// AppThroughput is end-to-end reads/s/mm^2 in K (Figure 18b).
	AppThroughput float64
	// EnergyEff is K reads/s/J (Figure 18c).
	EnergyEff float64
}

// SeedExASICKernelThroughput derives the ASIC kernel throughput from the
// structural model: 12 BSW cores at the ASIC clock, each with the systolic
// service latency for an avgQ x avgT extension with 2w+1 PEs.
func SeedExASICKernelThroughput(pes, avgQ, avgT int) (extPerSec float64, perMM2 float64) {
	lat := 2*pes + avgQ + avgT + 1
	clock := 1e9 / ASICClockNs
	extPerSec = 12 * clock / float64(lat)
	area, _ := ASICTotals(SeedExASIC())
	return extPerSec, extPerSec / area
}

// Published cross-system ratios from the paper's §VII-C, used to place
// the comparator bars this repository cannot re-measure (see DESIGN.md).
const (
	// SeedEx kernel throughput/mm^2 vs Sillax (linear vs O(K^2) PEs).
	kernelVsSillax = 20.0
	// ERT+SeedEx vs ERT+Sillax iso-area application throughput.
	appVsERTSillax = 1.56
	// ERT+SeedEx vs ERT+Sillax energy efficiency.
	effVsERTSillax = 2.45
	// ERT+SeedEx vs GenAx iso-area application throughput.
	appVsGenAx = 14.6
	// ERT+SeedEx vs GenAx energy efficiency.
	effVsGenAx = 2.11
)

// Figure18 returns the comparator bars. The SeedEx rows are computed from
// the structural models above (cycle model x ASIC clock / Table III area
// and power); hardware comparators are placed using the paper's published
// ratios, and the software baselines carry order-of-magnitude constants
// from the cited measurements (SeqAn, SW#, BWA-MEM2, CUSHAW2).
func Figure18(pes, avgQ, avgT int) []Comparator {
	_, kernelPerMM2 := SeedExASICKernelThroughput(pes, avgQ, avgT)

	// Application throughput: the combined ERT+SeedEx instance sustains
	// ~1.5 M reads/s per FPGA instance (paper §VII-B); the ASIC runs the
	// same pipeline at the ERT clock instead of the 8ns FPGA clock.
	readsPerSec := 1.5e6 * (ERTClockHz / ClockHz) / 2 // derate: host stages
	area, powerMW := ASICTotals(append(SeedExASIC(), ERTASIC()))
	appPerMM2 := readsPerSec / area / 1e3      // K reads/s/mm^2
	eff := readsPerSec / (powerMW / 1e3) / 1e3 // K reads/s/J
	kernelK := kernelPerMM2 / 1e3              // K ext/s/mm^2

	return []Comparator{
		{"SeedEx", kernelK, 0, 0},
		{"Sillax", kernelK / kernelVsSillax, 0, 0},
		{"CPU (SeqAn)", 30, 0, 0},
		{"GPU (SW#)", 3, 0, 0},
		{"BWA-MEM2", 0, 0.06, 1.5},
		{"CUSHAW2", 0, 0.02, 0.8},
		{"GenAx", 0, appPerMM2 / appVsGenAx, eff / effVsGenAx},
		{"ERT+Sillax", 0, appPerMM2 / appVsERTSillax, eff / effVsERTSillax},
		{"ERT+SeedEx", 0, appPerMM2, eff},
	}
}

// Package fmindex implements the seeding substrate: a suffix array, the
// Burrows-Wheeler transform, an occurrence-sampled FM index with backward
// search, longest-match queries, and SMEM (supermaximal exact match)
// generation — the same seeding primitives BWA-MEM builds on (§II-A,
// §VIII of the paper).
package fmindex

import "sort"

// BuildSA constructs the suffix array of s (base codes) by prefix
// doubling in O(n log^2 n); a virtual empty suffix is NOT included.
func BuildSA(s []byte) []int32 {
	n := len(s)
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
		rank[i] = int32(s[i])
	}
	cmp := func(k int32) func(a, b int32) bool {
		return func(a, b int32) bool {
			if rank[a] != rank[b] {
				return rank[a] < rank[b]
			}
			ra, rb := int32(-1), int32(-1)
			if a+k < int32(n) {
				ra = rank[a+k]
			}
			if b+k < int32(n) {
				rb = rank[b+k]
			}
			return ra < rb
		}
	}
	for k := int32(1); ; k *= 2 {
		less := cmp(k)
		sort.Slice(sa, func(i, j int) bool { return less(sa[i], sa[j]) })
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			tmp[sa[i]] = tmp[sa[i-1]]
			if less(sa[i-1], sa[i]) {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if int(rank[sa[n-1]]) == n-1 {
			break
		}
	}
	return sa
}

// lcpLen returns the length of the longest common prefix of q and the
// suffix s[p:].
func lcpLen(q, s []byte, p int32) int {
	n := 0
	for n < len(q) && int(p)+n < len(s) && q[n] == s[int(p)+n] {
		n++
	}
	return n
}

// compareSuffix compares q against the suffix s[p:] for prefix matching:
// 0 when q is a prefix of the suffix, otherwise the sign of the first
// differing position (a suffix shorter than q compares as smaller).
func compareSuffix(q, s []byte, p int32) int {
	i := 0
	for i < len(q) && int(p)+i < len(s) {
		a, b := q[i], s[int(p)+i]
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
		i++
	}
	if i == len(q) {
		return 0 // q fully matched: the suffix has prefix q
	}
	return 1 // suffix exhausted first: suffix < q
}

package fmindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Index serialization: the text and suffix array are stored (the
// expensive parts); BWT, counts and occurrence checkpoints are
// reconstructed in O(n) on load. Production aligners ship prebuilt
// indexes exactly this way (BWA's .bwt/.sa files).
//
// Format v2 frames both sections with CRC32-Castagnoli checksums and a
// self-checksummed header, so a truncated or bit-flipped index file is
// rejected on load instead of silently corrupting every downstream
// mapping. v1 streams (magic, version, length, raw sections) remain
// readable; ReadIndex auto-detects the version.

const (
	indexMagic   = uint32(0x5345_4458) // "SEDX"
	indexVersion = uint32(2)
	legacyV1     = uint32(1)

	// v2Header is the byte length of the v2 header: magic, version,
	// text length, text CRC, SA CRC, header CRC.
	v2Header = 4 + 4 + 8 + 4 + 4 + 4
)

// maxIndexLen bounds the declared text length; anything larger is a
// corrupt or hostile header, not a genome.
const maxIndexLen = 1 << 33

// castagnoli is the CRC32-C table shared by every checksummed section.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the section checksum the index format uses (CRC32-C),
// exposed so container formats layered above the index (refstore) frame
// their sections with the same function.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ChecksumUpdate extends a running Checksum with more bytes, so callers
// can frame a section they stream in chunks.
func ChecksumUpdate(crc uint32, b []byte) uint32 { return crc32.Update(crc, castagnoli, b) }

// WriteTo serializes the index in format v2.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, v2Header)
	binary.LittleEndian.PutUint32(hdr[0:], indexMagic)
	binary.LittleEndian.PutUint32(hdr[4:], indexVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(ix.text)))
	binary.LittleEndian.PutUint32(hdr[16:], Checksum(ix.text))
	saBytes := int32Bytes(ix.sa)
	binary.LittleEndian.PutUint32(hdr[20:], Checksum(saBytes))
	binary.LittleEndian.PutUint32(hdr[24:], Checksum(hdr[:24]))
	var n int64
	for _, sec := range [][]byte{hdr, ix.text, saBytes} {
		m, err := w.Write(sec)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// int32Bytes renders a suffix array as little-endian bytes (the on-disk
// layout of both format versions).
func int32Bytes(sa []int32) []byte {
	out := make([]byte, 4*len(sa))
	for i, v := range sa {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// readBounded reads exactly n bytes in bounded chunks, so a lying
// header length cannot force an allocation larger than the bytes
// actually present in the stream (plus one chunk): the buffer only
// grows as real bytes arrive.
func readBounded(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		m := min(n-uint64(len(buf)), chunk)
		off := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// ReadIndex deserializes an index written by WriteTo, reconstructing the
// derived structures. Both format versions load: v2 verifies the header
// and section checksums; legacy v1 streams carry none to verify.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("fmindex: reading magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("fmindex: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	switch version {
	case legacyV1:
		return readIndexV1(br)
	case indexVersion:
		return readIndexV2(br)
	}
	return nil, fmt.Errorf("fmindex: unsupported index version %d", version)
}

// readIndexV1 reads the unframed legacy stream (length, text, sa).
func readIndexV1(br *bufio.Reader) (*Index, error) {
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxIndexLen {
		return nil, fmt.Errorf("fmindex: implausible text length %d", n)
	}
	text, err := readBounded(br, n)
	if err != nil {
		return nil, fmt.Errorf("fmindex: reading text: %w", err)
	}
	saBytes, err := readBounded(br, 4*n)
	if err != nil {
		return nil, fmt.Errorf("fmindex: reading suffix array: %w", err)
	}
	return rebuildFromBytes(text, saBytes)
}

// readIndexV2 reads the checksummed stream: the header validates itself
// first, then each section validates against its declared checksum.
func readIndexV2(br *bufio.Reader) (*Index, error) {
	rest := make([]byte, v2Header-8)
	if _, err := io.ReadFull(br, rest); err != nil {
		return nil, fmt.Errorf("fmindex: reading v2 header: %w", err)
	}
	hdr := make([]byte, 0, v2Header)
	hdr = binary.LittleEndian.AppendUint32(hdr, indexMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, indexVersion)
	hdr = append(hdr, rest...)
	if got, want := Checksum(hdr[:24]), binary.LittleEndian.Uint32(hdr[24:]); got != want {
		return nil, fmt.Errorf("fmindex: header checksum mismatch (got %#x, want %#x)", got, want)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n > maxIndexLen {
		return nil, fmt.Errorf("fmindex: implausible text length %d", n)
	}
	text, err := readBounded(br, n)
	if err != nil {
		return nil, fmt.Errorf("fmindex: reading text: %w", err)
	}
	if got, want := Checksum(text), binary.LittleEndian.Uint32(hdr[16:]); got != want {
		return nil, fmt.Errorf("fmindex: text checksum mismatch (got %#x, want %#x)", got, want)
	}
	saBytes, err := readBounded(br, 4*n)
	if err != nil {
		return nil, fmt.Errorf("fmindex: reading suffix array: %w", err)
	}
	if got, want := Checksum(saBytes), binary.LittleEndian.Uint32(hdr[20:]); got != want {
		return nil, fmt.Errorf("fmindex: suffix-array checksum mismatch (got %#x, want %#x)", got, want)
	}
	return rebuildFromBytes(text, saBytes)
}

// rebuildFromBytes decodes the on-disk suffix array and rebuilds.
func rebuildFromBytes(text, saBytes []byte) (*Index, error) {
	sa := make([]int32, len(saBytes)/4)
	for i := range sa {
		sa[i] = int32(binary.LittleEndian.Uint32(saBytes[4*i:]))
	}
	return rebuild(text, sa)
}

// FromParts assembles an index over caller-provided text and suffix
// array storage — typically slices aliasing a read-only memory-mapped
// index file, so every shard and worker shares one physical copy of the
// big sections. Both slices are validated like a deserialized stream
// and must not be modified afterwards; the derived search structures
// (BWT, occurrence checkpoints) are rebuilt on the heap.
func FromParts(text []byte, sa []int32) (*Index, error) {
	if len(sa) != len(text) {
		return nil, fmt.Errorf("fmindex: suffix array length %d != text length %d", len(sa), len(text))
	}
	return rebuild(text, sa)
}

// rebuild reconstructs an Index from its stored parts.
func rebuild(text []byte, sa []int32) (*Index, error) {
	for i, c := range text {
		if c > Separator {
			return nil, fmt.Errorf("fmindex: unsanitized base %d at %d", c, i)
		}
	}
	n := uint64(len(text))
	for i, p := range sa {
		if p < 0 || uint64(p) >= n {
			return nil, fmt.Errorf("fmindex: corrupt suffix array at %d", i)
		}
	}
	ix := &Index{text: text, sa: sa}
	ix.deriveFromSA()
	return ix, nil
}

package fmindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Index serialization: the text and suffix array are stored (the
// expensive parts); BWT, counts and occurrence checkpoints are
// reconstructed in O(n) on load. Production aligners ship prebuilt
// indexes exactly this way (BWA's .bwt/.sa files).

const (
	indexMagic   = uint32(0x5345_4458) // "SEDX"
	indexVersion = uint32(1)
)

// WriteTo serializes the index.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := put(indexMagic); err != nil {
		return n, err
	}
	if err := put(indexVersion); err != nil {
		return n, err
	}
	if err := put(uint64(len(ix.text))); err != nil {
		return n, err
	}
	if _, err := bw.Write(ix.text); err != nil {
		return n, err
	}
	n += int64(len(ix.text))
	if err := put(ix.sa); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadIndex deserializes an index written by WriteTo, reconstructing the
// derived structures.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("fmindex: reading magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("fmindex: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, fmt.Errorf("fmindex: unsupported index version %d", version)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	const maxIndexLen = 1 << 33
	if n > maxIndexLen {
		return nil, fmt.Errorf("fmindex: implausible text length %d", n)
	}
	text := make([]byte, n)
	if _, err := io.ReadFull(br, text); err != nil {
		return nil, err
	}
	sa := make([]int32, n)
	if err := binary.Read(br, binary.LittleEndian, sa); err != nil {
		return nil, err
	}
	for i, p := range sa {
		if p < 0 || uint64(p) >= n {
			return nil, fmt.Errorf("fmindex: corrupt suffix array at %d", i)
		}
	}
	return rebuild(text, sa)
}

// rebuild reconstructs an Index from its stored parts.
func rebuild(text []byte, sa []int32) (*Index, error) {
	for i, c := range text {
		if c > Separator {
			return nil, fmt.Errorf("fmindex: unsanitized base %d at %d", c, i)
		}
	}
	ix := &Index{text: text, sa: sa}
	ix.deriveFromSA()
	return ix, nil
}

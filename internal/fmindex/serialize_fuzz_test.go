package fmindex

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// FuzzReadIndex feeds untrusted bytes to the index loader. The loader
// must never panic, and a hostile header length must never force an
// allocation materially larger than the input itself (readBounded grows
// only as real bytes arrive) — so the fuzzer also asserts that inputs
// well under the declared section sizes still fail fast.
func FuzzReadIndex(f *testing.F) {
	ix, err := New(randSeq(rand.New(rand.NewSource(9)), 300))
	if err != nil {
		f.Fatal(err)
	}
	var v2 bytes.Buffer
	if _, err := ix.WriteTo(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(writeV1(ix))
	f.Add([]byte{})
	f.Add([]byte("SEDX"))
	// A v2 header whose declared length dwarfs the stream: 8 GB of text
	// announced, zero bytes present.
	hdr := make([]byte, v2Header)
	binary.LittleEndian.PutUint32(hdr[0:], indexMagic)
	binary.LittleEndian.PutUint32(hdr[4:], indexVersion)
	binary.LittleEndian.PutUint64(hdr[8:], maxIndexLen)
	binary.LittleEndian.PutUint32(hdr[24:], Checksum(hdr[:24]))
	f.Add(hdr)
	// The v1 equivalent (no checksums guard the lie).
	v1lie := make([]byte, 16)
	binary.LittleEndian.PutUint32(v1lie[0:], indexMagic)
	binary.LittleEndian.PutUint32(v1lie[4:], 1)
	binary.LittleEndian.PutUint64(v1lie[8:], maxIndexLen)
	f.Add(v1lie)
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted indexes must be internally consistent enough to query.
		if ix.Len() > len(data) {
			t.Fatalf("accepted index of length %d from %d input bytes", ix.Len(), len(data))
		}
		ix.Count([]byte{0, 1, 2, 3})
	})
}

package fmindex

import "sort"

// SMEMsBi computes the supermaximal exact matches of q against the FMD
// index with Li's bidirectional algorithm (the procedure inside BWA-MEM):
// from each start position, extend forward while recording every interval
// where the occurrence count drops (the "curve" of the match), then sweep
// backward over all candidates at once, emitting a match each time the
// longest surviving candidate dies. Matches have both strands counted in
// Occ; Positions are forward-strand text positions.
//
// It must produce exactly the same spans as the suffix-array SMEMs
// method, which the tests enforce.
func (f *FMD) SMEMsBi(q []byte, cfg SMEMConfig) []MEM {
	var mems []MEM
	x := 0
	for x < len(q) {
		if q[x] > 3 {
			x++
			continue
		}
		found, next := f.smem1(q, x, cfg)
		mems = append(mems, found...)
		x = next
	}
	return mems
}

// biCand is a candidate interval with its query end (exclusive).
type biCand struct {
	bi  BiInterval
	end int
}

// smem1 returns the SMEMs passing through position x and the next start
// position (the end of the longest forward extension, so every SMEM is
// visited exactly once).
func (f *FMD) smem1(q []byte, x int, cfg SMEMConfig) ([]MEM, int) {
	ik := f.Start(q[x])
	if !ik.Alive() {
		return nil, x + 1
	}
	// Forward sweep: collect the curve of intervals.
	var curve []biCand
	end := x + 1
	for ; end < len(q); end++ {
		if q[end] > 3 {
			break
		}
		ok := f.ForwardExt(ik, q[end])
		if !ok.Alive() {
			break
		}
		if ok.S != ik.S {
			curve = append(curve, biCand{ik, end})
		}
		ik = ok
	}
	curve = append(curve, biCand{ik, end})
	// Longest-first for the backward sweep.
	for i, j := 0, len(curve)-1; i < j; i, j = i+1, j-1 {
		curve[i], curve[j] = curve[j], curve[i]
	}
	next := curve[0].end

	var mems []MEM
	emit := func(start int, c biCand) {
		if c.end-start < cfg.MinLen {
			return
		}
		fw, rc := f.positions(c.bi, c.end-start, cfg.MaxOcc)
		mems = append(mems, MEM{
			QBeg:        start,
			Len:         c.end - start,
			Positions:   fw,
			RCPositions: rc,
			Occ:         int(c.bi.S),
		})
	}

	prev := curve
	i := x - 1
	for {
		var c byte = 4 // invalid: flush everything
		if i >= 0 {
			c = q[i]
		}
		var nxt []biCand
		for _, p := range prev {
			var ok BiInterval
			if c <= 3 {
				ok = f.BackwardExt(p.bi, c)
			}
			if !ok.Alive() {
				// p cannot extend to i; it is left-maximal at i+1. The
				// longest such candidate at this boundary is an SMEM;
				// shorter ones are contained in it.
				if len(nxt) == 0 && (len(mems) == 0 || i+1 < lastStart(mems)) {
					emit(i+1, p)
				}
				continue
			}
			if len(nxt) == 0 || ok.S != nxt[len(nxt)-1].bi.S {
				nxt = append(nxt, biCand{ok, p.end})
			}
		}
		if len(nxt) == 0 || i < 0 {
			break
		}
		prev = nxt
		i--
	}
	return mems, next
}

func lastStart(mems []MEM) int { return mems[len(mems)-1].QBeg }

// positions locates the interval's occurrences, split by strand: fw are
// forward-strand text positions; rc are the text positions of the
// reverse complement of the matched segment (hits inside the
// reverse-complement half of the combined string, mapped back to T
// coordinates). Each list is capped at max independently.
func (f *FMD) positions(bi BiInterval, length, max int) (fw, rc []int) {
	for r := bi.K; r < bi.K+bi.S; r++ {
		if r == 0 {
			continue
		}
		p := int(f.ix.sa[r-1])
		switch {
		case p+length <= f.n:
			fw = append(fw, p)
		case p > f.n:
			// Offset j inside revcomp(T); the segment's reverse
			// complement sits at T position n-j-length.
			j := p - (f.n + 1)
			rc = append(rc, f.n-j-length)
		}
	}
	sort.Ints(fw)
	sort.Ints(rc)
	if max > 0 && len(fw) > max {
		fw = fw[:max]
	}
	if max > 0 && len(rc) > max {
		rc = rc[:max]
	}
	return
}

package fmindex

import (
	"math/rand"
	"testing"
)

func TestSampledSALocateMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		text := randSeq(rng, 100+rng.Intn(600))
		ix, err := New(text)
		if err != nil {
			t.Fatal(err)
		}
		for _, rate := range []int{4, 32, 64} {
			ss := NewSampledSA(ix, rate)
			for probe := 0; probe < 15; probe++ {
				beg := rng.Intn(len(text) - 5)
				p := text[beg : beg+1+rng.Intn(5)]
				iv := ix.Count(p)
				want := ix.Locate(iv, 0)
				got := ss.Locate(iv, 0)
				if len(got) != len(want) {
					t.Fatalf("trial %d rate %d: %d positions, want %d", trial, rate, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d rate %d: positions %v != %v for %v", trial, rate, got, want, p)
					}
				}
			}
		}
	}
}

func TestSampledSAMemorySavings(t *testing.T) {
	text := randSeq(rand.New(rand.NewSource(2)), 3200)
	ix, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	ss := NewSampledSA(ix, 32)
	if got, want := ss.MemoryEntries(), 3200/32; got != want {
		t.Fatalf("retained %d entries, want %d", got, want)
	}
	// Cap behaviour.
	iv := ix.Count(text[10:12])
	if iv.Size() > 3 {
		got := ss.Locate(iv, 3)
		if len(got) != 3 {
			t.Fatalf("cap ignored: %d", len(got))
		}
	}
	if ss.Rate != 32 {
		t.Fatalf("rate %d", ss.Rate)
	}
}

func TestSampledSADefaultRate(t *testing.T) {
	text := randSeq(rand.New(rand.NewSource(3)), 100)
	ix, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	if ss := NewSampledSA(ix, 0); ss.Rate != 32 {
		t.Fatalf("default rate %d, want 32", ss.Rate)
	}
}

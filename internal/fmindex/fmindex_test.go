package fmindex

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"seedex/internal/genome"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

// bruteOccurrences finds all positions of p in t by scanning.
func bruteOccurrences(t, p []byte) []int {
	var out []int
	for i := 0; i+len(p) <= len(t); i++ {
		if bytes.Equal(t[i:i+len(p)], p) {
			out = append(out, i)
		}
	}
	return out
}

func TestSuffixArraySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		s := randSeq(rng, 1+rng.Intn(500))
		sa := BuildSA(s)
		if len(sa) != len(s) {
			t.Fatalf("sa length %d != %d", len(sa), len(s))
		}
		for i := 1; i < len(sa); i++ {
			if bytes.Compare(s[sa[i-1]:], s[sa[i]:]) >= 0 {
				t.Fatalf("trial %d: suffixes %d,%d out of order", trial, i-1, i)
			}
		}
	}
}

func TestCountAndLocateAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randSeq(rng, 50+rng.Intn(400))
		ix, err := New(text)
		if err != nil {
			t.Log(err)
			return false
		}
		for trial := 0; trial < 20; trial++ {
			var p []byte
			if rng.Intn(3) == 0 {
				p = randSeq(rng, 1+rng.Intn(8)) // random, often absent
			} else {
				beg := rng.Intn(len(text))
				end := beg + 1 + rng.Intn(12)
				if end > len(text) {
					end = len(text)
				}
				p = text[beg:end] // guaranteed present
			}
			want := bruteOccurrences(text, p)
			iv := ix.Count(p)
			if iv.Size() != len(want) {
				t.Logf("seed %d: Count(%v) = %d, want %d", seed, p, iv.Size(), len(want))
				return false
			}
			got := ix.Locate(iv, 0)
			if len(got) != len(want) {
				t.Logf("seed %d: Locate returned %d, want %d", seed, len(got), len(want))
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("seed %d: positions %v != %v", seed, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLongestMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		text := randSeq(rng, 100+rng.Intn(300))
		ix, err := New(text)
		if err != nil {
			t.Fatal(err)
		}
		beg := rng.Intn(len(text) - 20)
		q := append([]byte(nil), text[beg:beg+20]...)
		// Append garbage that (probably) breaks the match.
		q = append(q, randSeq(rng, 10)...)
		l, iv := ix.LongestMatch(q)
		if l < 20 {
			t.Fatalf("trial %d: longest match %d < 20 for embedded substring", trial, l)
		}
		// Verify every reported position really matches.
		for _, p := range ix.LocateRaw(iv, 0) {
			if !bytes.Equal(text[p:p+l], q[:l]) {
				t.Fatalf("trial %d: position %d does not match", trial, p)
			}
		}
		// Brute-force the true longest prefix occurring in text.
		want := 0
		for l2 := len(q); l2 >= 1; l2-- {
			if len(bruteOccurrences(text, q[:l2])) > 0 {
				want = l2
				break
			}
		}
		if l != want {
			t.Fatalf("trial %d: longest match %d, brute force %d", trial, l, want)
		}
	}
}

func TestSMEMsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		text := randSeq(rng, 200+rng.Intn(300))
		ix, err := New(text)
		if err != nil {
			t.Fatal(err)
		}
		// A query stitched from two text windows with a mutation.
		a, b := rng.Intn(len(text)-40), rng.Intn(len(text)-40)
		q := append([]byte(nil), text[a:a+30]...)
		q = append(q, text[b:b+30]...)
		q[15] = (q[15] + 1) % 4
		cfg := SMEMConfig{MinLen: 5, MaxOcc: 0}
		mems := ix.SMEMs(q, cfg)
		// Brute force: longest match starting at each i, then containment
		// filter.
		type span struct{ beg, end int }
		var want []span
		bestEnd := -1
		for i := range q {
			l := 0
			for l2 := len(q) - i; l2 >= 1; l2-- {
				if len(bruteOccurrences(text, q[i:i+l2])) > 0 {
					l = l2
					break
				}
			}
			if l >= cfg.MinLen && i+l > bestEnd {
				want = append(want, span{i, i + l})
			}
			if i+l > bestEnd {
				bestEnd = i + l
			}
		}
		if len(mems) != len(want) {
			t.Fatalf("trial %d: %d SMEMs, want %d", trial, len(mems), len(want))
		}
		for i, m := range mems {
			if m.QBeg != want[i].beg || m.QBeg+m.Len != want[i].end {
				t.Fatalf("trial %d: SMEM %d = [%d,%d), want [%d,%d)", trial, i, m.QBeg, m.QBeg+m.Len, want[i].beg, want[i].end)
			}
			if m.Occ != len(bruteOccurrences(text, q[m.QBeg:m.QBeg+m.Len])) {
				t.Fatalf("trial %d: SMEM %d occ %d wrong", trial, i, m.Occ)
			}
			if !sort.IntsAreSorted(m.Positions) {
				t.Fatalf("positions unsorted")
			}
		}
	}
}

func TestSMEMSkipsAmbiguous(t *testing.T) {
	text := randSeq(rand.New(rand.NewSource(6)), 300)
	ix, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	q := append([]byte(nil), text[10:40]...)
	q[5] = genome.N
	mems := ix.SMEMs(q, SMEMConfig{MinLen: 5, MaxOcc: 10})
	for _, m := range mems {
		for _, c := range q[m.QBeg : m.QBeg+m.Len] {
			if c > 3 {
				t.Fatal("SMEM crosses an ambiguous base")
			}
		}
	}
	if len(mems) == 0 {
		t.Fatal("expected SMEMs on both sides of the N")
	}
}

func TestSanitize(t *testing.T) {
	s := []byte{0, 4, 2, 5, 1}
	n := Sanitize(s)
	if n != 2 {
		t.Fatalf("sanitized %d, want 2", n)
	}
	if _, err := New(s); err != nil {
		t.Fatal(err)
	}
	if _, err := New([]byte{0, 9}); err == nil {
		t.Fatal("expected unsanitized error")
	}
}

func TestMaxOccCap(t *testing.T) {
	// Highly repetitive text.
	text := bytes.Repeat([]byte{0, 1, 2, 3}, 100)
	ix, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	q := []byte{0, 1, 2, 3, 0, 1, 2, 3}
	mems := ix.SMEMs(q, SMEMConfig{MinLen: 4, MaxOcc: 7})
	if len(mems) == 0 {
		t.Fatal("no SMEMs on repetitive text")
	}
	for _, m := range mems {
		if len(m.Positions) > 7 {
			t.Fatalf("positions not capped: %d", len(m.Positions))
		}
		if m.Occ < len(m.Positions) {
			t.Fatalf("occ %d < reported positions %d", m.Occ, len(m.Positions))
		}
	}
}

package fmindex

import "sort"

// SampledSA is a memory-realistic suffix-array representation: only every
// Rate-th suffix position is retained, and Locate walks the LF mapping
// until it reaches a sampled row — the standard FM-index trade-off real
// aligners ship (BWA samples at 32). The full-array Index methods remain
// available for tests and small references.
type SampledSA struct {
	ix   *Index
	Rate int
	// sampled[r/Rate] = sa value at sampled sentinel-augmented row r,
	// marked by rowBits.
	vals map[int32]int32
}

// NewSampledSA samples ix's suffix array at the given rate (BWA-like:
// 32). The underlying full array is NOT freed here (the Index owns it);
// callers measuring memory use the sampled structure alone.
func NewSampledSA(ix *Index, rate int) *SampledSA {
	if rate <= 0 {
		rate = 32
	}
	s := &SampledSA{ix: ix, Rate: rate, vals: make(map[int32]int32)}
	// Sample by text position (every Rate-th position is retained),
	// which guarantees an LF walk reaches a sample within Rate steps.
	for r, p := range ix.sa {
		if int(p)%rate == 0 {
			s.vals[int32(r)+1] = p // sentinel-augmented row
		}
	}
	return s
}

// lf performs one LF-mapping step: from the row of suffix S[p:] to the
// row of suffix S[p-1:].
func (s *SampledSA) lf(row int32) int32 {
	b := s.ix.bwt[row]
	return s.ix.c[b] + s.ix.occAt(b, row)
}

// Position resolves one sentinel-augmented SA row to its text position
// by LF-walking to the nearest sample.
func (s *SampledSA) Position(row int32) int {
	steps := 0
	for {
		if row == 0 {
			// The sentinel row is only reachable by stepping past text
			// position 0, which is always sampled (0 % Rate == 0); keep
			// the algebraic answer as a defensive fallback.
			return steps - 1
		}
		if v, ok := s.vals[row]; ok {
			return int(v) + steps
		}
		row = s.lf(row)
		steps++
	}
}

// Locate resolves an interval's positions via the sampled array (at most
// max, ascending; max <= 0 for all).
func (s *SampledSA) Locate(iv Interval, max int) []int {
	var out []int
	for r := iv.Lo; r < iv.Hi; r++ {
		if r == 0 {
			continue
		}
		out = append(out, s.Position(r))
	}
	sort.Ints(out)
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// MemoryEntries returns the number of retained SA entries (for the
// memory-saving accounting in benches).
func (s *SampledSA) MemoryEntries() int { return len(s.vals) }

package fmindex

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		text := randSeq(rng, 100+rng.Intn(2000))
		if trial%2 == 0 {
			text[rng.Intn(len(text))] = Separator // multi-contig-style content
		}
		ix, err := New(append([]byte(nil), text...))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadIndex(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Functional equivalence across a battery of queries.
		for probe := 0; probe < 30; probe++ {
			beg := rng.Intn(len(text) - 8)
			p := text[beg : beg+1+rng.Intn(7)]
			a, b := ix.Count(p), back.Count(p)
			if a != b {
				t.Fatalf("trial %d: Count differs after round trip: %+v vs %+v", trial, a, b)
			}
			la, lb := ix.Locate(a, 0), back.Locate(b, 0)
			if len(la) != len(lb) {
				t.Fatalf("trial %d: Locate differs", trial)
			}
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("trial %d: positions differ", trial)
				}
			}
			q := randSeq(rng, 30)
			ma := ix.SMEMs(q, SMEMConfig{MinLen: 5, MaxOcc: 10})
			mb := back.SMEMs(q, SMEMConfig{MinLen: 5, MaxOcc: 10})
			if len(ma) != len(mb) {
				t.Fatalf("trial %d: SMEMs differ after round trip", trial)
			}
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.Write([]byte{0x58, 0x44, 0x45, 0x53}) // little-endian magic
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := ReadIndex(&buf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadIndexRejectsCorruptSA(t *testing.T) {
	text := randSeq(rand.New(rand.NewSource(2)), 200)
	ix, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-2] = 0x7f // clobber a suffix-array entry
	if _, err := ReadIndex(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt suffix array accepted")
	}
}

// writeV1 renders the legacy unframed stream for an index, so the
// auto-detect path is exercised against bytes v1 writers produced.
func writeV1(ix *Index) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, legacyV1Magic())
	binary.Write(&buf, binary.LittleEndian, uint32(1))
	binary.Write(&buf, binary.LittleEndian, uint64(len(ix.text)))
	buf.Write(ix.text)
	binary.Write(&buf, binary.LittleEndian, ix.sa)
	return buf.Bytes()
}

func legacyV1Magic() uint32 { return indexMagic }

func TestReadIndexLegacyV1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	text := randSeq(rng, 700)
	ix, err := New(append([]byte(nil), text...))
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(bytes.NewReader(writeV1(ix)))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	for probe := 0; probe < 20; probe++ {
		beg := rng.Intn(len(text) - 8)
		p := text[beg : beg+1+rng.Intn(7)]
		if ix.Count(p) != back.Count(p) {
			t.Fatal("Count differs after v1 round trip")
		}
	}
}

// TestReadIndexRejectsCorruption flips one bit at every interesting
// offset class of a v2 stream and demands rejection: the header
// self-check catches header damage, the section checksums catch payload
// damage, and truncation fails the bounded section reads.
func TestReadIndexRejectsCorruption(t *testing.T) {
	ix, err := New(randSeq(rand.New(rand.NewSource(4)), 400))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	if _, err := ReadIndex(bytes.NewReader(pristine)); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
	offsets := []int{8, 16, 20, 24, v2Header + 5, v2Header + 400 + 9, len(pristine) - 1}
	for _, off := range offsets {
		raw := append([]byte(nil), pristine...)
		raw[off] ^= 0x10
		if _, err := ReadIndex(bytes.NewReader(raw)); err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
	}
	for _, cut := range []int{v2Header - 1, v2Header + 10, len(pristine) - 3} {
		if _, err := ReadIndex(bytes.NewReader(pristine[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestFromParts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	text := randSeq(rng, 600)
	ix, err := New(append([]byte(nil), text...))
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromParts(ix.Text(), ix.SA())
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 20; probe++ {
		beg := rng.Intn(len(text) - 8)
		p := text[beg : beg+1+rng.Intn(7)]
		if ix.Count(p) != back.Count(p) {
			t.Fatal("Count differs for FromParts index")
		}
	}
	if _, err := FromParts(text[:10], ix.SA()); err == nil {
		t.Fatal("length mismatch accepted")
	}
	badSA := append([]int32(nil), ix.SA()...)
	badSA[7] = int32(len(text)) + 3
	if _, err := FromParts(ix.Text(), badSA); err == nil {
		t.Fatal("out-of-range suffix array entry accepted")
	}
}

package fmindex

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		text := randSeq(rng, 100+rng.Intn(2000))
		if trial%2 == 0 {
			text[rng.Intn(len(text))] = Separator // multi-contig-style content
		}
		ix, err := New(append([]byte(nil), text...))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadIndex(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Functional equivalence across a battery of queries.
		for probe := 0; probe < 30; probe++ {
			beg := rng.Intn(len(text) - 8)
			p := text[beg : beg+1+rng.Intn(7)]
			a, b := ix.Count(p), back.Count(p)
			if a != b {
				t.Fatalf("trial %d: Count differs after round trip: %+v vs %+v", trial, a, b)
			}
			la, lb := ix.Locate(a, 0), back.Locate(b, 0)
			if len(la) != len(lb) {
				t.Fatalf("trial %d: Locate differs", trial)
			}
			for i := range la {
				if la[i] != lb[i] {
					t.Fatalf("trial %d: positions differ", trial)
				}
			}
			q := randSeq(rng, 30)
			ma := ix.SMEMs(q, SMEMConfig{MinLen: 5, MaxOcc: 10})
			mb := back.SMEMs(q, SMEMConfig{MinLen: 5, MaxOcc: 10})
			if len(ma) != len(mb) {
				t.Fatalf("trial %d: SMEMs differ after round trip", trial)
			}
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.Write([]byte{0x58, 0x44, 0x45, 0x53}) // little-endian magic
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := ReadIndex(&buf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadIndexRejectsCorruptSA(t *testing.T) {
	text := randSeq(rand.New(rand.NewSource(2)), 200)
	ix, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-2] = 0x7f // clobber a suffix-array entry
	if _, err := ReadIndex(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt suffix array accepted")
	}
}

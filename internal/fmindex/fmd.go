package fmindex

import "seedex/internal/genome"

// FMD is the bidirectional FM index of Li (2012), as used by BWA-MEM: a
// single FM index over S = T · sep · revcomp(T) whose suffix-array
// intervals come in pairs — one for a pattern P and one for revcomp(P) —
// so the pattern can be extended in *both* directions with backward
// steps only. It is the substrate of BWA-MEM's supermaximal-exact-match
// (SMEM) seeding, reproduced here by SMEMsBi.
type FMD struct {
	ix *Index
	n  int // length of the original text T
	// isa0Row is the sentinel-augmented SA row of the suffix starting at
	// position 0 of S, used to detect "revcomp(P) is a suffix of S"
	// (equivalently: T starts with P) in O(1).
	isa0Row int32
}

// BiInterval is a bidirectional interval: K is the sentinel-augmented SA
// interval start of P, L the start for revcomp(P), S the shared size.
type BiInterval struct {
	K, L, S int32
}

// Alive reports whether the interval still has occurrences.
func (b BiInterval) Alive() bool { return b.S > 0 }

// NewFMD builds the bidirectional index over text (codes 0..3; sanitize
// first).
func NewFMD(text []byte) (*FMD, error) {
	s := make([]byte, 0, 2*len(text)+1)
	s = append(s, text...)
	s = append(s, Separator)
	s = append(s, genome.RevComp(text)...)
	ix, err := New(s)
	if err != nil {
		return nil, err
	}
	f := &FMD{ix: ix, n: len(text)}
	for r, p := range ix.sa {
		if p == 0 {
			f.isa0Row = int32(r) + 1 // +1: sentinel-augmented rows
			break
		}
	}
	return f, nil
}

// Index exposes the underlying FM index (for Locate etc.).
func (f *FMD) Index() *Index { return f.ix }

// TextLen returns the length of the original text T.
func (f *FMD) TextLen() int { return f.n }

// Start returns the bi-interval of the single-base pattern c.
func (f *FMD) Start(c byte) BiInterval {
	if c > 3 {
		return BiInterval{}
	}
	ix := f.ix
	k := ix.c[c+1]
	s := ix.c[c+2] - ix.c[c+1]
	cc := genome.Complement(c)
	l := ix.c[cc+1]
	// For a single base, the interval of revcomp(c) = comp(c) is simply
	// its own C-range; sizes match because S is revcomp-closed.
	return BiInterval{K: k, L: l, S: s}
}

// BackwardExt prepends base a (0..3) to the pattern: the K side takes a
// standard LF step; the L side (revcomp(P) gains comp(a) at its end)
// shifts by the sizes of the lexicographically smaller sibling
// extensions, computed from the K side via revcomp-closure.
func (f *FMD) BackwardExt(bi BiInterval, a byte) BiInterval {
	if a > 3 || !bi.Alive() {
		return BiInterval{}
	}
	ix := f.ix
	lo, hi := bi.K, bi.K+bi.S

	// Per-character backward sizes over [lo, hi): sz[y] = count(y·P) for
	// text chars y in 0..4 (bases + separator).
	var sz [5]int32
	var newK int32
	for y := byte(0); y <= 4; y++ {
		b := y + 1
		olo := ix.occAt(b, lo)
		ohi := ix.occAt(b, hi)
		sz[y] = ohi - olo
		if y == a {
			newK = ix.c[b] + olo
		}
	}

	// The sub-intervals of revcomp(P)·z within [L, L+S) are ordered by
	// z: $ < A < C < G < T < sep, and by revcomp-closure of S,
	// size(revcomp(P)·z) = count(comp(z)·P) = sz[comp(z)].
	// The $ term is 1 iff S ends with revcomp(P), i.e. T starts with P,
	// i.e. the row of suffix 0 lies in P's own interval — a test that
	// stays correct under the ForwardExt swap because the swapped K side
	// is then revcomp(P)'s interval and the condition becomes "T starts
	// with revcomp(P)", exactly the swapped $ term.
	off := int32(0)
	if f.isa0Row >= bi.K && f.isa0Row < bi.K+bi.S {
		off = 1
	}
	comp := genome.Complement(a)
	for z := byte(0); z < comp; z++ {
		off += sz[genome.Complement(z)]
	}
	return BiInterval{K: newK, L: bi.L + off, S: sz[a]}
}

// ForwardExt appends base c (0..3) to the pattern by the classic
// symmetry: swap the interval pair (so the machine sees revcomp(P)),
// prepend comp(c), and swap back.
func (f *FMD) ForwardExt(bi BiInterval, c byte) BiInterval {
	if c > 3 || !bi.Alive() {
		return BiInterval{}
	}
	sw := BiInterval{K: bi.L, L: bi.K, S: bi.S}
	r := f.BackwardExt(sw, genome.Complement(c))
	return BiInterval{K: r.L, L: r.K, S: r.S}
}

// CountBi returns the bi-interval of a full pattern by backward
// extension (used by tests).
func (f *FMD) CountBi(p []byte) BiInterval {
	if len(p) == 0 {
		return BiInterval{}
	}
	bi := f.Start(p[len(p)-1])
	for i := len(p) - 2; i >= 0 && bi.Alive(); i-- {
		bi = f.BackwardExt(bi, p[i])
	}
	return bi
}

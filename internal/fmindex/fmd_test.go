package fmindex

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"seedex/internal/genome"
)

// combined builds the S = T·sep·revcomp(T) string for brute-force checks.
func combined(text []byte) []byte {
	s := append([]byte(nil), text...)
	s = append(s, Separator)
	return append(s, genome.RevComp(text)...)
}

// TestBiIntervalInvariant: after any mix of forward and backward
// extensions, K matches the interval of P, L matches the interval of
// revcomp(P), and S the occurrence count — all against brute force over
// the combined string.
func TestBiIntervalInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randSeq(rng, 30+rng.Intn(200))
		fmd, err := NewFMD(append([]byte(nil), text...))
		if err != nil {
			t.Log(err)
			return false
		}
		s := combined(text)
		for trial := 0; trial < 10; trial++ {
			// Random walk: start from one base, extend both directions.
			var p []byte
			p = append(p, byte(rng.Intn(4)))
			bi := fmd.Start(p[0])
			for step := 0; step < 12 && bi.Alive(); step++ {
				c := byte(rng.Intn(4))
				if rng.Intn(2) == 0 {
					bi = fmd.BackwardExt(bi, c)
					p = append([]byte{c}, p...)
				} else {
					bi = fmd.ForwardExt(bi, c)
					p = append(p, c)
				}
				wantK := bruteOccurrences(s, p)
				if int(bi.S) != len(wantK) {
					t.Logf("seed=%d: size %d, brute %d for %v", seed, bi.S, len(wantK), p)
					return false
				}
				if !bi.Alive() {
					break
				}
				// K interval rows must locate exactly the occurrences.
				got := fmd.ix.Locate(Interval{bi.K, bi.K + bi.S}, 0)
				if len(got) != len(wantK) {
					t.Logf("seed=%d: locate %v, want %v for %v", seed, got, wantK, p)
					return false
				}
				for i := range got {
					if got[i] != wantK[i] {
						t.Logf("seed=%d: locate %v, want %v", seed, got, wantK)
						return false
					}
				}
				// L interval likewise for revcomp(P).
				rc := genome.RevComp(p)
				wantL := bruteOccurrences(s, rc)
				gotL := fmd.ix.Locate(Interval{bi.L, bi.L + bi.S}, 0)
				if len(gotL) != len(wantL) {
					t.Logf("seed=%d: L locate %d, want %d for %v", seed, len(gotL), len(wantL), rc)
					return false
				}
				for i := range gotL {
					if gotL[i] != wantL[i] {
						t.Logf("seed=%d: L positions %v, want %v", seed, gotL, wantL)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCountBiMatchesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := randSeq(rng, 400)
	fmd, err := NewFMD(append([]byte(nil), text...))
	if err != nil {
		t.Fatal(err)
	}
	s := combined(text)
	for trial := 0; trial < 200; trial++ {
		var p []byte
		if trial%3 == 0 {
			p = randSeq(rng, 1+rng.Intn(10))
		} else {
			beg := rng.Intn(len(text) - 15)
			p = text[beg : beg+1+rng.Intn(14)]
		}
		bi := fmd.CountBi(p)
		if int(bi.S) != len(bruteOccurrences(s, p)) {
			t.Fatalf("trial %d: CountBi %d != brute %d for %v", trial, bi.S, len(bruteOccurrences(s, p)), p)
		}
	}
}

// TestSMEMsBiEqualsSuffixArraySMEMs cross-validates the two independent
// SMEM implementations. The FMD search is inherently two-strand (its
// intervals count hits in T and revcomp(T) at once, exactly like BWA),
// so the oracle is the suffix-array containment method run over the
// combined string S = T·sep·revcomp(T): spans, total occurrence counts
// and per-strand positions must all agree.
func TestSMEMsBiEqualsSuffixArraySMEMs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randSeq(rng, 150+rng.Intn(400))
		ix, err := New(combined(text))
		if err != nil {
			t.Log(err)
			return false
		}
		fmd, err := NewFMD(append([]byte(nil), text...))
		if err != nil {
			t.Log(err)
			return false
		}
		n := len(text)
		// Query: stitched text windows with mutations and an N.
		a, b := rng.Intn(len(text)-40), rng.Intn(len(text)-40)
		q := append([]byte(nil), text[a:a+35]...)
		q = append(q, text[b:b+35]...)
		q[10] = (q[10] + 1) % 4
		if rng.Intn(2) == 0 {
			q[50] = genome.N
		}
		cfg := SMEMConfig{MinLen: 5, MaxOcc: 0}
		want := ix.SMEMs(q, cfg)
		got := fmd.SMEMsBi(q, cfg)
		// The two algorithms emit in different orders; canonicalize.
		sortMEMs(want)
		sortMEMs(got)
		if len(got) != len(want) {
			t.Logf("seed=%d: %d bidirectional SMEMs, %d combined suffix-array SMEMs", seed, len(got), len(want))
			t.Logf("got:  %v", spans(got))
			t.Logf("want: %v", spans(want))
			return false
		}
		for i := range want {
			g, w := got[i], want[i]
			if g.QBeg != w.QBeg || g.Len != w.Len || g.Occ != w.Occ {
				t.Logf("seed=%d: SMEM %d: got [%d,%d) occ %d, want [%d,%d) occ %d",
					seed, i, g.QBeg, g.QBeg+g.Len, g.Occ, w.QBeg, w.QBeg+w.Len, w.Occ)
				return false
			}
			// Map the oracle's combined-string positions to the FMD's
			// per-strand coordinates.
			var wantFw, wantRc []int
			for _, p := range w.Positions {
				if p+g.Len <= n {
					wantFw = append(wantFw, p)
				} else if p > n {
					wantRc = append(wantRc, n-(p-n-1)-g.Len)
				}
			}
			sortInts(wantRc)
			if !equalInts(g.Positions, wantFw) || !equalInts(g.RCPositions, wantRc) {
				t.Logf("seed=%d: SMEM %d positions fw %v/%v rc %v/%v",
					seed, i, g.Positions, wantFw, g.RCPositions, wantRc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortMEMs(ms []MEM) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && (ms[j-1].QBeg > ms[j].QBeg || (ms[j-1].QBeg == ms[j].QBeg && ms[j-1].Len > ms[j].Len)); j-- {
			ms[j-1], ms[j] = ms[j], ms[j-1]
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func spans(ms []MEM) [][2]int {
	out := make([][2]int, len(ms))
	for i, m := range ms {
		out[i] = [2]int{m.QBeg, m.QBeg + m.Len}
	}
	return out
}

func TestFMDPalindromeSafety(t *testing.T) {
	// Reverse-complement palindromes stress the K/L bookkeeping.
	text := bytes.Repeat([]byte{0, 1, 2, 3}, 50) // ACGT repeats: rc(ACGT) = ACGT
	fmd, err := NewFMD(append([]byte(nil), text...))
	if err != nil {
		t.Fatal(err)
	}
	s := combined(text)
	p := []byte{0, 1, 2, 3, 0, 1}
	bi := fmd.CountBi(p)
	if int(bi.S) != len(bruteOccurrences(s, p)) {
		t.Fatalf("palindromic text: CountBi %d != brute %d", bi.S, len(bruteOccurrences(s, p)))
	}
}

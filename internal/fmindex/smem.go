package fmindex

// MEM is a maximal exact match between a query and the indexed text.
type MEM struct {
	QBeg, Len int   // query span [QBeg, QBeg+Len)
	Positions []int // forward-strand text positions of the occurrences (capped)
	// RCPositions are reverse-strand hits (filled by the bidirectional
	// FMD search only): text positions where the reverse complement of
	// the matched query segment occurs.
	RCPositions []int
	// Occ is the total occurrence count before capping — forward-only
	// for the suffix-array search, both strands for the FMD search.
	Occ int
}

// SMEMConfig controls SMEM generation.
type SMEMConfig struct {
	// MinLen discards matches shorter than this (BWA-MEM: 19).
	MinLen int
	// MaxOcc caps the occurrences reported per SMEM (BWA-MEM: ~500;
	// highly repetitive seeds are down-sampled).
	MaxOcc int
}

// DefaultSMEMConfig mirrors BWA-MEM's defaults.
func DefaultSMEMConfig() SMEMConfig { return SMEMConfig{MinLen: 19, MaxOcc: 50} }

// SMEMs computes the supermaximal exact matches of q against the index:
// maximal matches not contained in any other maximal match of the query.
// For each query position the longest match starting there is found via
// the suffix array; right-maximality is inherent and left-maximality is
// the containment filter. This produces the same seed set BWA-MEM's
// bidirectional SMEM walk generates.
func (ix *Index) SMEMs(q []byte, cfg SMEMConfig) []MEM {
	var mems []MEM
	bestEnd := -1 // furthest match end seen so far; containment filter
	i := 0
	limit := 0 // index of the next ambiguous base at or after i
	for i < len(q) {
		if q[i] > 3 { // ambiguous base: no exact match crosses it
			i++
			continue
		}
		// Matches must stop at the next ambiguous base: codes >= 4 never
		// match, even where the indexed text contains the separator code.
		if limit <= i {
			limit = i
			for limit < len(q) && q[limit] <= 3 {
				limit++
			}
		}
		l, iv := ix.LongestMatch(q[i:limit])
		if l == 0 {
			i++
			continue
		}
		end := i + l
		if end > bestEnd {
			bestEnd = end
			if l >= cfg.MinLen {
				mems = append(mems, MEM{
					QBeg:      i,
					Len:       l,
					Positions: ix.LocateRaw(iv, cfg.MaxOcc),
					Occ:       iv.Size(),
				})
			}
		}
		i++
	}
	return mems
}

package fmindex

import (
	"fmt"
	"sort"
)

// occRate is the occurrence-table sampling interval (one checkpoint per
// occRate BWT positions; intermediate counts are scanned on demand).
const occRate = 64

// alphabet size including the sentinel (code 0 internally; bases are
// shifted up by one) and the sequence separator (code 4 in text space,
// 5 shifted) used by the FMD index to keep the forward and
// reverse-complement halves from matching across their junction.
const sigma = 6

// Separator is the text-space code of the never-matching sequence
// separator (the same value genome.N uses, which is also never matched).
const Separator byte = 4

// Index is an FM index (BWT + sampled occurrence table + full suffix
// array) over a base-code genome. Ambiguous bases must be sanitized by
// the caller (Sanitize) before indexing, as BWA does; the separator code
// 4 is allowed and never matches a pattern base.
type Index struct {
	text []byte  // original base codes, 0..3
	sa   []int32 // suffix array of text (no sentinel entry)
	bwt  []byte  // BWT over shifted alphabet (0 = sentinel)
	c    [sigma + 1]int32
	occ  [][sigma]int32
}

// Sanitize replaces ambiguous bases (code >= 4) with a deterministic
// regular base, mirroring BWA's index-time N handling. It returns the
// number of replacements.
func Sanitize(seq []byte) int {
	n := 0
	for i, c := range seq {
		if c >= 4 {
			seq[i] = byte(i) & 3
			n++
		}
	}
	return n
}

// New builds the index. Text must contain only codes 0..3 plus the
// separator code 4.
func New(text []byte) (*Index, error) {
	for i, c := range text {
		if c > Separator {
			return nil, fmt.Errorf("fmindex: unsanitized base %d at %d", c, i)
		}
	}
	ix := &Index{text: text, sa: BuildSA(text)}
	ix.deriveFromSA()
	return ix, nil
}

// deriveFromSA reconstructs the BWT, cumulative counts and occurrence
// checkpoints from text+sa (used by New and by index deserialization).
func (ix *Index) deriveFromSA() {
	text := ix.text
	n := len(text)
	// BWT with an implicit sentinel: conceptually the suffix array of
	// text+"$" is [n] ++ sa (the empty suffix sorts first). bwt[0] is the
	// char before the sentinel (text[n-1]); bwt[i+1] derives from sa[i].
	ix.bwt = make([]byte, n+1)
	if n > 0 {
		ix.bwt[0] = text[n-1] + 1
	}
	for i, p := range ix.sa {
		if p == 0 {
			ix.bwt[i+1] = 0 // sentinel
		} else {
			ix.bwt[i+1] = text[p-1] + 1
		}
	}
	// Cumulative counts.
	var cnt [sigma]int32
	for _, b := range ix.bwt {
		cnt[b]++
	}
	ix.c = [sigma + 1]int32{}
	for a := 1; a <= sigma; a++ {
		ix.c[a] = ix.c[a-1] + cnt[a-1]
	}
	// Occurrence checkpoints (including the one at len(bwt) when the
	// length is a checkpoint multiple, which occAt may address).
	ix.occ = make([][sigma]int32, len(ix.bwt)/occRate+1)
	var run [sigma]int32
	for i, b := range ix.bwt {
		if i%occRate == 0 {
			ix.occ[i/occRate] = run
		}
		run[b]++
	}
	if len(ix.bwt)%occRate == 0 {
		ix.occ[len(ix.bwt)/occRate] = run
	}
}

// Len returns the text length.
func (ix *Index) Len() int { return len(ix.text) }

// Text returns the indexed text (shared, do not modify).
func (ix *Index) Text() []byte { return ix.text }

// SA returns the suffix array (shared, do not modify). Together with
// Text it is the persisted half of the index; everything else derives.
func (ix *Index) SA() []int32 { return ix.sa }

// occAt returns Occ(b, i): occurrences of b in bwt[0:i].
func (ix *Index) occAt(b byte, i int32) int32 {
	cp := int(i) / occRate
	n := ix.occ[cp][b]
	for k := cp * occRate; k < int(i); k++ {
		if ix.bwt[k] == b {
			n++
		}
	}
	return n
}

// Interval is a half-open SA interval [Lo, Hi) in the sentinel-augmented
// suffix array; Hi-Lo is the occurrence count.
type Interval struct{ Lo, Hi int32 }

// Size returns the number of occurrences.
func (iv Interval) Size() int { return int(iv.Hi - iv.Lo) }

// Backward extends the interval of pattern P to the interval of aP via
// one LF-mapping step (a is a base code 0..3).
func (ix *Index) Backward(iv Interval, a byte) Interval {
	b := a + 1
	lo := ix.c[b] + ix.occAt(b, iv.Lo)
	hi := ix.c[b] + ix.occAt(b, iv.Hi)
	return Interval{lo, hi}
}

// Count returns the SA interval of pattern p (codes 0..3) via backward
// search; a zero-size interval means no occurrences.
func (ix *Index) Count(p []byte) Interval {
	iv := Interval{0, int32(len(ix.bwt))}
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] > 3 {
			return Interval{}
		}
		iv = ix.Backward(iv, p[i])
		if iv.Size() <= 0 {
			return Interval{}
		}
	}
	return iv
}

// Locate returns the text positions of an interval (at most max; pass
// max <= 0 for all), in ascending order.
func (ix *Index) Locate(iv Interval, max int) []int {
	var out []int
	for r := iv.Lo; r < iv.Hi; r++ {
		if r == 0 {
			continue // the sentinel row: the empty suffix
		}
		out = append(out, int(ix.sa[r-1]))
	}
	sort.Ints(out)
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// LongestMatch returns the length of the longest prefix of q that occurs
// in the text, together with its SA interval over ix.sa (not
// sentinel-augmented). Zero length means q[0] does not occur.
func (ix *Index) LongestMatch(q []byte) (int, Interval) {
	n := len(ix.sa)
	if n == 0 || len(q) == 0 {
		return 0, Interval{}
	}
	// Insertion point of q among the suffixes.
	pos := sort.Search(n, func(i int) bool {
		return compareSuffix(q, ix.text, ix.sa[i]) <= 0
	})
	best := 0
	if pos < n {
		if l := lcpLen(q, ix.text, ix.sa[pos]); l > best {
			best = l
		}
	}
	if pos > 0 {
		if l := lcpLen(q, ix.text, ix.sa[pos-1]); l > best {
			best = l
		}
	}
	if best == 0 {
		return 0, Interval{}
	}
	p := q[:best]
	lo := sort.Search(n, func(i int) bool { return compareSuffix(p, ix.text, ix.sa[i]) <= 0 })
	hi := sort.Search(n, func(i int) bool { return compareSuffix(p, ix.text, ix.sa[i]) < 0 })
	return best, Interval{int32(lo), int32(hi)}
}

// LocateRaw returns the text positions of a raw (non-augmented) interval
// from LongestMatch.
func (ix *Index) LocateRaw(iv Interval, max int) []int {
	var out []int
	for r := iv.Lo; r < iv.Hi; r++ {
		out = append(out, int(ix.sa[r]))
	}
	sort.Ints(out)
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Package lcs applies the SeedEx speculation-and-test idea to the Longest
// Common Subsequence problem, the second §VII-D application: banded LCS
// with thresholding and boundary checks that prove band optimality.
//
// The S1-style threshold transplants directly: any alignment path that
// drifts more than w off the diagonal leaves at least w+1 characters of
// one string unmatched, so its LCS length is at most
// min(n, m−(w+1)) or min(n−(w+1), m). The E-score-style boundary check
// bounds each band-leaving path by its known boundary value plus an
// all-match continuation.
package lcs

// Result is one LCS evaluation.
type Result struct {
	// Length of the longest common subsequence (within the band for
	// banded runs).
	Length int
	// Cells counts DP cells evaluated.
	Cells int64
}

// Full computes the unconstrained LCS length of a and b.
func Full(a, b []byte) Result {
	st := banded(a, b, -1)
	return st.Result
}

// Banded computes LCS restricted to |i−j| <= w.
func Banded(a, b []byte, w int) Result {
	return banded(a, b, w).Result
}

type state struct {
	Result
	// exitAbove[i]: value at boundary cell (i, i+w); exitBelow[j]: at
	// (j+w, j). -1 where absent.
	exitAbove, exitBelow []int
}

func banded(a, b []byte, w int) state {
	n, m := len(a), len(b)
	st := state{exitAbove: make([]int, n+1), exitBelow: make([]int, m+1)}
	for i := range st.exitAbove {
		st.exitAbove[i] = -1
	}
	for j := range st.exitBelow {
		st.exitBelow[j] = -1
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	const dead = -1 << 30
	for j := range prev {
		prev[j] = dead
	}
	prev[0] = 0
	for i := 0; i <= n; i++ {
		if i > 0 {
			for j := range cur {
				cur[j] = dead
			}
			jmin, jmax := 0, m
			if w >= 0 {
				if lo := i - w; lo > jmin {
					jmin = lo
				}
				if hi := i + w; hi < jmax {
					jmax = hi
				}
			}
			for j := jmin; j <= jmax; j++ {
				best := dead
				if prev[j] > best {
					best = prev[j]
				}
				if j > 0 {
					if cur[j-1] > best {
						best = cur[j-1]
					}
					if a[i-1] == b[j-1] && prev[j-1] != dead && prev[j-1]+1 > best {
						best = prev[j-1] + 1
					}
				}
				if i == 0 && j == 0 {
					best = 0
				}
				cur[j] = best
				if best != dead {
					st.Cells++
				}
			}
			prev, cur = cur, prev
		} else if w >= 0 {
			// Row 0 init restricted to the band.
			for j := w + 1; j <= m; j++ {
				prev[j] = dead
			}
			for j := 0; j <= w && j <= m; j++ {
				prev[j] = 0
			}
		} else {
			for j := 0; j <= m; j++ {
				prev[j] = 0
			}
		}
		if w >= 0 {
			if j := i + w; j <= m && prev[j] != dead {
				st.exitAbove[i] = prev[j]
			}
			if i >= w {
				if j := i - w; j >= 0 && j <= m && prev[j] != dead {
					st.exitBelow[j] = prev[j]
				}
			}
		}
	}
	if prev[m] == dead {
		st.Length = 0
	} else {
		st.Length = prev[m]
	}
	return st
}

// Report is the outcome of a checked banded LCS.
type Report struct {
	// Pass is true when the banded length is provably optimal.
	Pass bool
	// Threshold is the S1-style bound on any band-leaving path.
	Threshold int
	// ExitBound is the strongest boundary bound.
	ExitBound int
	// Rerun marks a fallback to the full DP.
	Rerun bool
}

// Check computes banded LCS and proves (or fails to prove) optimality.
func Check(a, b []byte, w int) (Result, Report) {
	st := banded(a, b, w)
	rep := Report{ExitBound: -1}
	n, m := len(a), len(b)
	if w >= n && w >= m {
		rep.Pass = true
		return st.Result, rep
	}
	// Threshold check: any path drifting beyond the band wastes w+1
	// characters of one string.
	above := min(n, m-(w+1))
	below := min(n-(w+1), m)
	rep.Threshold = max(above, below)
	if st.Length > rep.Threshold {
		rep.Pass = true
		return st.Result, rep
	}
	// Boundary check: paths leave the band through a boundary cell with
	// known value; everything after can match at most the remaining
	// shorter side.
	bound := -1
	for i := 0; i <= n; i++ {
		if v := st.exitAbove[i]; v >= 0 {
			if x := v + min(n-i, m-(i+w)); x > bound {
				bound = x
			}
		}
	}
	for j := 0; j <= m; j++ {
		if v := st.exitBelow[j]; v >= 0 {
			if x := v + min(n-(j+w), m-j); x > bound {
				bound = x
			}
		}
	}
	rep.ExitBound = bound
	rep.Pass = bound < st.Length
	return st.Result, rep
}

// Checked computes banded LCS with the optimality check and a full-DP
// fallback; its length always equals Full(a, b).Length.
func Checked(a, b []byte, w int) (Result, Report) {
	res, rep := Check(a, b, w)
	if rep.Pass {
		return res, rep
	}
	rep.Rerun = true
	full := Full(a, b)
	full.Cells += res.Cells
	return full, rep
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

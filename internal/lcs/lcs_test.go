package lcs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteLCS is the classic O(nm) reference.
func bruteLCS(a, b []byte) int {
	n, m := len(a), len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			best := prev[j]
			if cur[j-1] > best {
				best = cur[j-1]
			}
			if a[i-1] == b[j-1] && prev[j-1]+1 > best {
				best = prev[j-1] + 1
			}
			cur[j] = best
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return prev[m]
}

func randStr(rng *rand.Rand, n, sigma int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(sigma))
	}
	return s
}

func TestFullMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := randStr(rng, rng.Intn(60), 4)
		b := randStr(rng, rng.Intn(60), 4)
		if got, want := Full(a, b).Length, bruteLCS(a, b); got != want {
			t.Fatalf("trial %d: Full %d != brute %d", trial, got, want)
		}
	}
}

func TestWideBandEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		a := randStr(rng, 1+rng.Intn(50), 4)
		b := randStr(rng, 1+rng.Intn(50), 4)
		w := len(a) + len(b)
		if got, want := Banded(a, b, w).Length, Full(a, b).Length; got != want {
			t.Fatalf("trial %d: wide band %d != full %d", trial, got, want)
		}
	}
}

// TestCheckSoundness: a passing check means the banded LCS length is the
// true LCS length.
func TestCheckSoundness(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randStr(rng, 1+rng.Intn(60), 2+rng.Intn(4))
		var b []byte
		if rng.Intn(2) == 0 {
			b = randStr(rng, 1+rng.Intn(60), 4)
		} else {
			// Mutated copy: high-similarity case where narrow bands win.
			b = append([]byte(nil), a...)
			for k := 0; k < len(b)/10+1; k++ {
				b[rng.Intn(len(b))] = byte(rng.Intn(4))
			}
		}
		w := int(wRaw) % 12
		res, rep := Check(a, b, w)
		if !rep.Pass {
			return true
		}
		if want := bruteLCS(a, b); res.Length != want {
			t.Logf("seed=%d w=%d: banded %d != full %d (thr %d bound %d)", seed, w, res.Length, want, rep.Threshold, rep.ExitBound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckedAlwaysOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	reruns := 0
	for trial := 0; trial < 300; trial++ {
		a := randStr(rng, 1+rng.Intn(80), 4)
		b := randStr(rng, 1+rng.Intn(80), 4)
		res, rep := Checked(a, b, 5)
		if rep.Rerun {
			reruns++
		}
		if want := bruteLCS(a, b); res.Length != want {
			t.Fatalf("trial %d: checked %d != brute %d", trial, res.Length, want)
		}
	}
	t.Logf("reruns: %d/300", reruns)
}

// TestSimilarStringsPassNarrow: near-identical strings pass the check at
// tiny bands, saving nearly the whole matrix.
func TestSimilarStringsPassNarrow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	passes := 0
	for trial := 0; trial < 100; trial++ {
		a := randStr(rng, 120, 4)
		b := append([]byte(nil), a...)
		b[rng.Intn(len(b))] = byte(rng.Intn(4))
		res, rep := Check(a, b, 3)
		if rep.Pass {
			passes++
			if res.Cells > int64(len(a)*10) {
				t.Fatalf("banded LCS computed too many cells: %d", res.Cells)
			}
		}
	}
	if passes < 90 {
		t.Fatalf("only %d/100 near-identical pairs passed at w=3", passes)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Full(nil, []byte{1}).Length != 0 {
		t.Fatal("empty LCS must be 0")
	}
	res, rep := Checked(nil, nil, 2)
	if res.Length != 0 || !rep.Pass {
		t.Fatalf("empty inputs: %+v %+v", res, rep)
	}
}

// Package core implements the SeedEx speculation-and-test framework — the
// paper's primary contribution (§III). A seed extension is speculatively
// run on a narrow-band kernel; three optimality checks then prove, or fail
// to prove, that no alignment path outside the band could have beaten the
// narrow-band result. Extensions whose optimality cannot be proven are
// rerun with the full band on the host, so the overall system is exactly
// as accurate as a full-band aligner while almost all work runs on the
// cheap narrow-band machine.
//
// The three checks, in workflow order (Figure 6 of the paper):
//
//  1. Thresholding: closed-form upper bounds S1 (best score obtainable
//     through the above-band region) and S2 (best score obtainable through
//     the below-band region). score_nb > S2 proves optimality outright;
//     score_nb <= S1 aborts to a rerun.
//  2. E-score check: every path crossing into the below-band region does so
//     through the E (vertical-gap) channel at the band's lower boundary;
//     bounding each crossing by its E-score plus an all-match continuation
//     yields score_maxE, which must stay below score_nb.
//  3. Edit-distance check: a relaxed-scoring DP sweep over the below-band
//     trapezoid (the edit machine, internal/editmachine) bounds paths
//     entering the region from the left; its score_ed must stay below
//     score_nb.
//
// Two checking modes are provided. ModePaper follows the paper's workflow
// verbatim and guarantees the narrow-band *local* result. ModeStrict adds
// a continuation-aware region bound (covering paths that dip below the
// band and re-enter it) and a global-endpoint guard, and guarantees that
// the full extension result — local and global scores *and* positions —
// is bit-identical to a full-band run. See DESIGN.md for the analysis of
// why the extra conditions are needed for the stronger guarantee.
package core

import (
	"fmt"

	"seedex/internal/align"
	"seedex/internal/editmachine"
)

// intMax is a small helper for bound arithmetic.
func intMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AlignKind selects the threshold formulas.
type AlignKind int

// Alignment kinds targeted by SeedEx (paper footnote 1).
const (
	SemiGlobal AlignKind = iota // gaps at one end free (BWA-MEM seed extension)
	Global                      // end-to-end; gap terms doubled in S1/S2
)

// Mode selects the checking discipline.
type Mode int

const (
	// ModePaper runs the checks exactly as §III describes, comparing each
	// bound against the narrow-band local maximum. It guarantees the
	// local result; the edit machine is corner-seeded with S1.
	ModePaper Mode = iota
	// ModeStrict additionally covers band-re-entering paths and the
	// global (right-edge) endpoint, guaranteeing the full result is
	// bit-identical to a full-band run. The edit machine is seeded with
	// the exact column-0 arrival bounds and the captured boundary
	// E-scores.
	ModeStrict
)

// Thresholds are the theoretical upper-bound scores of Theorem 1.
type Thresholds struct {
	// S1 bounds any score obtained through the above-band region: one
	// w-long gap plus an all-match continuation of the remaining query.
	S1 int
	// S2 bounds any score obtained through the below-band region: one
	// w-long gap, but the whole query still available to match.
	S2 int
}

// ComputeThresholds evaluates equations (4) and (5) of the paper for a
// query of length qlen, seed score h0 and band w. For Global alignment the
// gap terms are doubled, as §III-A prescribes.
func ComputeThresholds(qlen, h0, w int, sc align.Scoring, kind AlignKind) Thresholds {
	gapOpen, gapExt := sc.GapOpen, sc.GapExtend
	if kind == Global {
		gapOpen *= 2
		gapExt *= 2
	}
	gap := gapOpen + w*gapExt
	return Thresholds{
		S1: h0 - gap + (qlen-w)*sc.Match,
		S2: h0 - gap + qlen*sc.Match,
	}
}

// MaxEScore evaluates equation (6): the optimistic bound over every live
// E-score crossing the band's lower boundary, each extended by an
// all-match continuation of the query remaining at its column. Dead
// crossings (E = 0) admit no path and are skipped. The boolean is false
// when no live crossing exists (the check passes trivially).
func MaxEScore(boundary align.BandBoundary, qlen int, sc align.Scoring) (int, bool) {
	best, live := 0, false
	for j, e := range boundary.E {
		if e <= 0 {
			continue
		}
		if v := e + (qlen-j)*sc.Match; !live || v > best {
			best, live = v, true
		}
	}
	return best, live
}

// Outcome classifies one pass through the check workflow.
type Outcome int

// OutcomeUnknown marks a Response whose check verdict was not observable
// by the consumer: device-faulted slots the host rebuilt, host-only
// degraded batches. It is never recorded into Stats.
const OutcomeUnknown Outcome = -1

// Outcomes, in workflow order.
const (
	// PassFullCover: the band covers the whole DP matrix, so the banded
	// run is the full run.
	PassFullCover Outcome = iota
	// PassS2: score_nb beat the stricter threshold; optimal outright.
	PassS2
	// PassChecks: score_nb was between S1 and S2 and both the E-score and
	// edit-distance checks passed.
	PassChecks
	// FailS1: score_nb <= S1; the score is so low a better path may exist
	// almost anywhere. Rerun.
	FailS1
	// FailE: the E-score check could not exclude a better below-band
	// path entering from the top. Rerun.
	FailE
	// FailEdit: the edit-distance check could not exclude a better
	// below-band path entering from the left. Rerun.
	FailEdit
	// FailGlobal (ModeStrict only): the local result is proven optimal
	// but the global (right-edge) endpoint could not be proven. Rerun.
	FailGlobal
)

// String renders the outcome for reports.
func (o Outcome) String() string {
	switch o {
	case OutcomeUnknown:
		return "unknown"
	case PassFullCover:
		return "pass-full-cover"
	case PassS2:
		return "pass-s2"
	case PassChecks:
		return "pass-checks"
	case FailS1:
		return "fail-s1"
	case FailE:
		return "fail-e"
	case FailEdit:
		return "fail-edit"
	case FailGlobal:
		return "fail-global"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Report carries every intermediate of one check workflow; the benchmark
// harness aggregates these into the paper's Figure 14.
type Report struct {
	Outcome   Outcome
	Pass      bool // optimality proven; narrow-band result usable
	Th        Thresholds
	ScoreNB   int  // best narrow-band score (local maximum in the band)
	ScoreMaxE int  // E-score check bound (0 if no live crossing)
	ELive     bool // a live boundary crossing existed
	ERan      bool // workflow reached the E-score check
	EditRan   bool // workflow reached the edit-distance check
	ScoreEd   int  // edit machine score (valid only when EditRan)
	// ThresholdOnlyPass is true when thresholding alone proved optimality
	// (the "Thresholding" series of Figure 14).
	ThresholdOnlyPass bool
}

// Config parameterizes the SeedEx checker.
type Config struct {
	Band    int           // narrow band width w
	Scoring align.Scoring // affine scheme of the BSW machine
	Kind    AlignKind     // threshold formula variant
	Mode    Mode          // ModePaper or ModeStrict
}

// Check speculatively extends query against target with the narrow band
// and runs the optimality-check workflow, returning the banded result and
// a full report. The caller decides what to do on !report.Pass (typically:
// rerun with the full band). Scratch comes from a shared Checker pool; hot
// callers should hold a Checker and use its Check method.
func Check(query, target []byte, h0 int, cfg Config) (align.ExtendResult, Report) {
	c := checkerPool.Get().(*Checker)
	c.Config = cfg
	res, rep := c.Check(query, target, h0)
	checkerPool.Put(c)
	return res, rep
}

func check(ems *editmachine.Workspace, query, target []byte, h0 int, res align.ExtendResult, bd align.BandBoundary, cfg Config) Report {
	n, m := len(query), len(target)
	w := cfg.Band
	sc := cfg.Scoring
	rep := Report{ScoreNB: res.Local}

	// Degenerate coverage: the band holds every cell; banded == full.
	if w >= n && w >= m {
		rep.Outcome, rep.Pass, rep.ThresholdOnlyPass = PassFullCover, true, true
		return rep
	}

	rep.Th = ComputeThresholds(n, h0, w, sc, cfg.Kind)
	switch {
	case res.Local <= rep.Th.S1:
		rep.Outcome = FailS1
		return rep
	case res.Local > rep.Th.S2:
		rep.Outcome, rep.Pass, rep.ThresholdOnlyPass = PassS2, true, true
		if cfg.Mode == ModeStrict {
			return strictGlobal(ems, query, target, h0, res, bd, cfg, rep, nil)
		}
		return rep
	}

	// S1 < score_nb <= S2: a better path could exist in the below-band
	// region (Lemma 2); run the additional checks.
	rep.ERan = true
	rep.ScoreMaxE, rep.ELive = MaxEScore(bd, n, sc)
	if rep.ELive && rep.ScoreMaxE >= res.Local {
		rep.Outcome = FailE
		return rep
	}

	rep.EditRan = true
	rx := editmachine.RelaxedFor(sc)
	switch cfg.Mode {
	case ModePaper:
		sw := editmachine.SweepCornerWS(ems, query, target, w, rep.Th.S1, editmachine.CanonicalRelaxed)
		if !sw.Empty {
			rep.ScoreEd = sw.Score
			if sw.Score >= res.Local {
				rep.Outcome = FailEdit
				return rep
			}
		}
		rep.Outcome, rep.Pass = PassChecks, true
		return rep
	default: // ModeStrict
		sw := editmachine.SweepExactWS(ems, query, target, w, h0, bd.E, sc, rx)
		if !sw.Empty {
			rep.ScoreEd = sw.Score
			// The continuation-aware bound also covers paths that dip
			// below the band and re-enter it before ending.
			if sw.ScorePlusCont >= res.Local {
				rep.Outcome = FailEdit
				return rep
			}
		}
		rep.Outcome, rep.Pass = PassChecks, true
		return strictGlobal(ems, query, target, h0, res, bd, cfg, rep, &sw)
	}
}

// strictGlobal verifies the global (right-edge) endpoint in ModeStrict:
// every path that ever leaves the band must be provably unable to beat the
// banded global score at the right edge.
func strictGlobal(ems *editmachine.Workspace, query, target []byte, h0 int, res align.ExtendResult, bd align.BandBoundary, cfg Config, rep Report, sweep *editmachine.RegionResult) Report {
	n := len(query)
	sc := cfg.Scoring
	w := cfg.Band

	// Below-band side: continuation-aware region bound.
	below := 0
	if sweep == nil {
		sw := editmachine.SweepExactWS(ems, query, target, w, h0, bd.E, sc, editmachine.RelaxedFor(sc))
		sweep = &sw
	}
	if !sweep.Empty && sweep.ScorePlusCont > 0 {
		below = sweep.ScorePlusCont
	}
	// Above-band side: any path crossing the upper boundary spent at
	// least a (w+1)-insertion gap and can match at most the remaining
	// query: h0 - go - (w+1)*ge + (n-w-1)*m.
	above := 0
	if n > w {
		if v := h0 - sc.GapOpen - (w+1)*sc.GapExtend + (n-w-1)*sc.Match; v > 0 {
			above = v
		}
	}
	bound := below
	if above > bound {
		bound = above
	}
	if bound > 0 && bound >= res.Global {
		rep.Outcome, rep.Pass = FailGlobal, false
		rep.ThresholdOnlyPass = false
	}
	return rep
}

package core

import (
	"math/rand"
	"testing"

	"seedex/internal/align"
)

// Adversarial coverage for the rerun path and the check workflow: the
// fault-tolerance layer (internal/driver) leans on two properties proven
// here under hostile inputs — Checker.Rerun is always bit-identical to
// the full-band oracle, and a Pass verdict in ModeStrict never certifies
// a result that differs from that oracle, no matter how the narrow-band
// starting score h0 was corrupted. Corruption of the *computed*
// narrow-band score is outside what the checks can see (they trust their
// own kernel); that direction is covered by the driver's integrity
// validation tests.

// advChecker mints a strict checker for the given band.
func advChecker(band int) *Checker {
	return NewChecker(Config{Band: band, Scoring: align.DefaultScoring(), Kind: SemiGlobal, Mode: ModeStrict})
}

// adversarialSeqs derives a query/target pair from raw fuzz bytes: the
// first half seeds the target, the query is a mutated prefix copy, and
// leftover entropy decides lengths. Bytes are used as-is (the kernels
// must cope with non-nucleotide values).
func adversarialSeqs(data []byte) (q, t []byte) {
	if len(data) == 0 {
		return nil, nil
	}
	half := len(data)/2 + 1
	t = data[:half]
	qlen := len(data) - half
	if qlen > len(t) {
		qlen = len(t)
	}
	q = append([]byte(nil), t[:qlen]...)
	for i := half; i < len(data); i++ {
		if len(q) > 0 {
			q[int(data[i])%len(q)] ^= data[i] >> 3
		}
	}
	return q, t
}

// FuzzRerunOracle: Checker.Rerun equals the full-band oracle for
// arbitrary byte content, lengths and starting scores — including the
// workspace-reuse case where a Check ran first on the same scratch.
func FuzzRerunOracle(f *testing.F) {
	f.Add([]byte("ACGTACGTACGT"), 30)
	f.Add([]byte{}, 0)
	f.Add([]byte{0, 1, 2, 3, 0xff, 0x7f, 9, 9, 9}, 1<<20)
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), 1)
	chk := advChecker(3)
	f.Fuzz(func(t *testing.T, data []byte, h0 int) {
		if h0 < 0 {
			h0 = -h0
		}
		h0 %= 1 << 20
		q, tgt := adversarialSeqs(data)
		want := align.Extend(q, tgt, h0, chk.Config.Scoring)
		if got := chk.Rerun(q, tgt, h0); got != want {
			t.Fatalf("Rerun %+v != oracle %+v (q=%q t=%q h0=%d)", got, want, q, tgt, h0)
		}
		// Dirty the workspace with a check, then rerun again.
		chk.Check(q, tgt, h0)
		if got := chk.Rerun(q, tgt, h0); got != want {
			t.Fatalf("Rerun after Check %+v != oracle %+v", got, want)
		}
	})
}

// FuzzCheckNeverCertifiesWrongScore: with the narrow-band starting score
// corrupted up or down (the check thresholds S1/S2 scale with h0, so a
// corrupted h0 skews every bound), a ModeStrict Pass still implies the
// banded result is bit-identical to the full-band oracle for the same
// inputs, and a failing verdict reruns into exactly that oracle. The
// checks may not assume h0 is trustworthy.
func FuzzCheckNeverCertifiesWrongScore(f *testing.F) {
	f.Add(int64(1), 5, 0)
	f.Add(int64(2), 2, 500)      // corrupted far up
	f.Add(int64(3), 8, -40)      // corrupted down
	f.Add(int64(4), 1, 100000)   // absurdly up: S2 unreachable
	f.Add(int64(5), 16, -100000) // absurdly down, clamped to 0
	f.Fuzz(func(t *testing.T, seed int64, band int, h0delta int) {
		band = band%24 + 1
		rng := rand.New(rand.NewSource(seed))
		tlen := 20 + rng.Intn(120)
		tgt := make([]byte, tlen)
		for i := range tgt {
			tgt[i] = byte(rng.Intn(4))
		}
		q := append([]byte(nil), tgt[:tlen-rng.Intn(tlen/4+1)]...)
		for k := 0; k < len(q)/10+1; k++ {
			q[rng.Intn(len(q))] = byte(rng.Intn(4))
		}
		h0 := 20 + rng.Intn(80) + h0delta
		if h0 < 0 {
			h0 = 0
		}
		if h0 > 1<<20 {
			h0 %= 1 << 20
		}
		chk := advChecker(band)
		res, rep := chk.Check(q, tgt, h0)
		want := align.Extend(q, tgt, h0, chk.Config.Scoring)
		if rep.Pass {
			if res.Local != want.Local || res.LocalT != want.LocalT || res.LocalQ != want.LocalQ ||
				res.Global != want.Global || res.GlobalT != want.GlobalT {
				t.Fatalf("band %d h0 %d: Pass (%v) certified %+v != oracle %+v",
					band, h0, rep.Outcome, res, want)
			}
		} else if got := chk.Rerun(q, tgt, h0); got != want {
			t.Fatalf("band %d h0 %d: rerun %+v != oracle %+v", band, h0, got, want)
		}
	})
}

// TestAdversarialCorpus runs a broad deterministic corpus through both
// fuzz bodies, so plain `go test` exercises the adversarial coverage
// without the fuzzing engine: many bands, h0 corrupted up and down by
// every interesting magnitude, degenerate and garbage sequences.
func TestAdversarialCorpus(t *testing.T) {
	deltas := []int{-100000, -500, -40, -1, 0, 1, 40, 500, 100000}
	for _, band := range []int{1, 2, 5, 12, 24} {
		for _, delta := range deltas {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(seed*1000 + int64(band)))
				tlen := 20 + rng.Intn(120)
				tgt := make([]byte, tlen)
				for i := range tgt {
					tgt[i] = byte(rng.Intn(4))
				}
				q := append([]byte(nil), tgt[:tlen-rng.Intn(tlen/4+1)]...)
				for k := 0; k < len(q)/10+1; k++ {
					q[rng.Intn(len(q))] = byte(rng.Intn(4))
				}
				h0 := 20 + rng.Intn(80) + delta
				if h0 < 0 {
					h0 = 0
				}
				chk := advChecker(band)
				res, rep := chk.Check(q, tgt, h0)
				want := align.Extend(q, tgt, h0, chk.Config.Scoring)
				if rep.Pass {
					if res.Local != want.Local || res.Global != want.Global ||
						res.LocalT != want.LocalT || res.LocalQ != want.LocalQ || res.GlobalT != want.GlobalT {
						t.Fatalf("band=%d delta=%d seed=%d: certified %+v != oracle %+v (%v)",
							band, delta, seed, res, want, rep.Outcome)
					}
				} else if got := chk.Rerun(q, tgt, h0); got != want {
					t.Fatalf("band=%d delta=%d seed=%d: rerun %+v != oracle %+v", band, delta, seed, got, want)
				}
			}
		}
	}
	// Garbage bytes and degenerate shapes through the rerun path.
	garbage := [][]byte{nil, {}, {0xff}, {0, 0, 0, 0}, []byte("not dna at all!"), make([]byte, 300)}
	chk := advChecker(4)
	for _, g := range garbage {
		q, tgt := adversarialSeqs(g)
		for _, h0 := range []int{0, 1, 77, 1 << 19} {
			want := align.Extend(q, tgt, h0, chk.Config.Scoring)
			if got := chk.Rerun(q, tgt, h0); got != want {
				t.Fatalf("garbage rerun %+v != oracle %+v (q=%q)", got, want, q)
			}
		}
	}
}

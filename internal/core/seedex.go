package core

import (
	"fmt"
	"sync"

	"seedex/internal/align"
)

// Stats aggregates check outcomes across extensions. It is safe for
// concurrent use (the aligner pipeline batches extensions across
// goroutines, mirroring the paper's multi-threaded FPGA driver).
type Stats struct {
	mu       sync.Mutex
	Total    int64
	Outcomes map[Outcome]int64
	// ThresholdOnly counts extensions proven optimal by thresholding
	// alone (Figure 14's lower series).
	ThresholdOnly int64
	// Passed counts extensions proven optimal by the full workflow.
	Passed int64
	// Reruns counts extensions sent back to the host.
	Reruns int64
}

// NewStats returns an empty Stats.
func NewStats() *Stats { return &Stats{Outcomes: make(map[Outcome]int64)} }

// Record adds one check report to the counters.
func (s *Stats) Record(rep Report) { s.record(rep) }

func (s *Stats) record(rep Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Total++
	s.Outcomes[rep.Outcome]++
	if rep.ThresholdOnlyPass {
		s.ThresholdOnly++
	}
	if rep.Pass {
		s.Passed++
	} else {
		s.Reruns++
	}
}

// PassRate returns the fraction of extensions proven optimal.
func (s *Stats) PassRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Total == 0 {
		return 0
	}
	return float64(s.Passed) / float64(s.Total)
}

// ThresholdOnlyRate returns the fraction proven by thresholding alone.
func (s *Stats) ThresholdOnlyRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Total == 0 {
		return 0
	}
	return float64(s.ThresholdOnly) / float64(s.Total)
}

// Snapshot returns a copy of the counters for reporting.
func (s *Stats) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int64{
		"total":          s.Total,
		"passed":         s.Passed,
		"reruns":         s.Reruns,
		"threshold-only": s.ThresholdOnly,
	}
	for o, n := range s.Outcomes {
		out[o.String()] = n
	}
	return out
}

// String renders a one-line summary.
func (s *Stats) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Total == 0 {
		return "seedex: no extensions"
	}
	return fmt.Sprintf("seedex: %d extensions, %.2f%% passed (%.2f%% threshold-only), %d reruns",
		s.Total, 100*float64(s.Passed)/float64(s.Total), 100*float64(s.ThresholdOnly)/float64(s.Total), s.Reruns)
}

// SeedEx is the speculative extender: narrow-band extension plus the
// optimality-check workflow, with a host fallback for the extensions whose
// optimality cannot be proven. In ModeStrict its results are bit-identical
// to running Fallback on everything — the property the paper validates
// against BWA-MEM over 787M reads, reproduced here as a tested invariant.
type SeedEx struct {
	Config Config
	// Fallback performs the host rerun; nil selects the full-band
	// software kernel with Config.Scoring.
	Fallback align.Extender
	// Stats, when non-nil, aggregates check outcomes.
	Stats *Stats
}

// New returns a SeedEx extender with the given band in ModeStrict with
// BWA-MEM default scoring — the configuration whose output is
// bit-equivalent to full-band alignment.
func New(band int) *SeedEx {
	return &SeedEx{
		Config: Config{Band: band, Scoring: align.DefaultScoring(), Kind: SemiGlobal, Mode: ModeStrict},
		Stats:  NewStats(),
	}
}

var _ align.Extender = (*SeedEx)(nil)

// Extend implements align.Extender.
func (s *SeedEx) Extend(query, target []byte, h0 int) align.ExtendResult {
	res, rep := Check(query, target, h0, s.Config)
	if s.Stats != nil {
		s.Stats.record(rep)
	}
	if rep.Pass {
		return res
	}
	if s.Fallback != nil {
		return s.Fallback.Extend(query, target, h0)
	}
	return align.Extend(query, target, h0, s.Config.Scoring)
}

// FullBand is the host reference extender: the full-width software kernel.
type FullBand struct {
	Scoring align.Scoring
}

var _ align.Extender = FullBand{}

// Extend implements align.Extender.
func (f FullBand) Extend(query, target []byte, h0 int) align.ExtendResult {
	return align.Extend(query, target, h0, f.Scoring)
}

// Banded is a plain banded extender with no optimality checks — the
// "BSW heuristic" whose output differences the paper's Figure 13 counts.
type Banded struct {
	Scoring align.Scoring
	Band    int
}

var _ align.Extender = Banded{}

// Extend implements align.Extender.
func (b Banded) Extend(query, target []byte, h0 int) align.ExtendResult {
	res, _ := align.ExtendBanded(query, target, h0, b.Scoring, b.Band)
	return res
}

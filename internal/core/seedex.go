package core

import (
	"seedex/internal/align"
)

// SeedEx is the speculative extender: narrow-band extension plus the
// optimality-check workflow, with a host fallback for the extensions whose
// optimality cannot be proven. In ModeStrict its results are bit-identical
// to running Fallback on everything — the property the paper validates
// against BWA-MEM over 787M reads, reproduced here as a tested invariant.
type SeedEx struct {
	Config Config
	// Fallback performs the host rerun; nil selects the full-band
	// software kernel with Config.Scoring.
	Fallback align.Extender
	// Stats, when non-nil, aggregates check outcomes.
	Stats *Stats
}

// New returns a SeedEx extender with the given band in ModeStrict with
// BWA-MEM default scoring — the configuration whose output is
// bit-equivalent to full-band alignment.
func New(band int) *SeedEx {
	return &SeedEx{
		Config: Config{Band: band, Scoring: align.DefaultScoring(), Kind: SemiGlobal, Mode: ModeStrict},
		Stats:  NewStats(),
	}
}

var _ align.Extender = (*SeedEx)(nil)

// KernelScoring exposes the scoring scheme for shape-binned schedulers.
func (s *SeedEx) KernelScoring() align.Scoring { return s.Config.Scoring }

// Extend implements align.Extender.
func (s *SeedEx) Extend(query, target []byte, h0 int) align.ExtendResult {
	res, rep := Check(query, target, h0, s.Config)
	if s.Stats != nil {
		s.Stats.record(rep)
	}
	if rep.Pass {
		return res
	}
	if s.Fallback != nil {
		return s.Fallback.Extend(query, target, h0)
	}
	return align.Extend(query, target, h0, s.Config.Scoring)
}

// ExtendJobs implements align.BatchExtender with pooled scratch: the
// whole batch's banded extensions run as one packed kernel invocation,
// then checks, stats and reruns per job (identical results to Extend).
func (s *SeedEx) ExtendJobs(jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	c := checkerPool.Get().(*Checker)
	c.Config, c.Fallback, c.Stats = s.Config, s.Fallback, s.Stats
	dst = c.ExtendJobs(jobs, dst)
	checkerPool.Put(c)
	return dst
}

var _ align.BatchExtender = (*SeedEx)(nil)

// Session returns a Checker bound to this extender's configuration,
// fallback and stats: a per-goroutine extension session whose scratch
// memory (DP rows, query profile, edit-machine row) is reused across
// calls. Results are identical to Extend; stats still aggregate into the
// shared (atomic) counters.
func (s *SeedEx) Session() align.Extender {
	return &Checker{Config: s.Config, Fallback: s.Fallback, Stats: s.Stats}
}

// FullBand is the host reference extender: the full-width software kernel.
type FullBand struct {
	Scoring align.Scoring
}

var _ align.Extender = FullBand{}

// Extend implements align.Extender.
func (f FullBand) Extend(query, target []byte, h0 int) align.ExtendResult {
	return align.Extend(query, target, h0, f.Scoring)
}

// ExtendJobs implements align.BatchExtender with pooled scratch.
func (f FullBand) ExtendJobs(jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	ws := align.GetWorkspace()
	dst = extendJobsFull(ws, jobs, f.Scoring, dst)
	align.PutWorkspace(ws)
	return dst
}

var _ align.BatchExtender = FullBand{}

// Session returns a workspace-holding full-band session.
func (f FullBand) Session() align.Extender {
	return &fullBandSession{sc: f.Scoring, ws: align.NewWorkspace()}
}

type fullBandSession struct {
	sc align.Scoring
	ws *align.Workspace
}

func (f *fullBandSession) Extend(query, target []byte, h0 int) align.ExtendResult {
	return align.ExtendWS(f.ws, query, target, h0, f.sc)
}

// ExtendJobs implements align.BatchExtender: the batch runs through the
// packed full-width kernels on the session's workspace.
func (f *fullBandSession) ExtendJobs(jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	return extendJobsFull(f.ws, jobs, f.sc, dst)
}

var _ align.BatchExtender = (*fullBandSession)(nil)

func extendJobsFull(ws *align.Workspace, jobs []align.Job, sc align.Scoring, dst []align.ExtendResult) []align.ExtendResult {
	if cap(dst) < len(jobs) {
		dst = make([]align.ExtendResult, len(jobs))
	}
	dst = dst[:len(jobs)]
	align.ExtendBatchFullWS(ws, jobs, sc, dst)
	return dst
}

// Banded is a plain banded extender with no optimality checks — the
// "BSW heuristic" whose output differences the paper's Figure 13 counts.
type Banded struct {
	Scoring align.Scoring
	Band    int
}

var _ align.Extender = Banded{}

// Extend implements align.Extender.
func (b Banded) Extend(query, target []byte, h0 int) align.ExtendResult {
	res, _ := align.ExtendBanded(query, target, h0, b.Scoring, b.Band)
	return res
}

// ExtendJobs implements align.BatchExtender with pooled scratch.
func (b Banded) ExtendJobs(jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	ws := align.GetWorkspace()
	dst = extendJobsBanded(ws, jobs, b.Scoring, b.Band, dst)
	align.PutWorkspace(ws)
	return dst
}

var _ align.BatchExtender = Banded{}

// Session returns a workspace-holding banded session (no boundary copy:
// the heuristic discards it).
func (b Banded) Session() align.Extender {
	return &bandedSession{sc: b.Scoring, w: b.Band, ws: align.NewWorkspace()}
}

type bandedSession struct {
	sc align.Scoring
	w  int
	ws *align.Workspace
}

func (b *bandedSession) Extend(query, target []byte, h0 int) align.ExtendResult {
	res, _ := align.ExtendBandedWS(b.ws, query, target, h0, b.sc, b.w)
	return res
}

// ExtendJobs implements align.BatchExtender: the batch runs through the
// packed banded kernels on the session's workspace (no boundary capture).
func (b *bandedSession) ExtendJobs(jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	return extendJobsBanded(b.ws, jobs, b.sc, b.w, dst)
}

var _ align.BatchExtender = (*bandedSession)(nil)

func extendJobsBanded(ws *align.Workspace, jobs []align.Job, sc align.Scoring, w int, dst []align.ExtendResult) []align.ExtendResult {
	if cap(dst) < len(jobs) {
		dst = make([]align.ExtendResult, len(jobs))
	}
	dst = dst[:len(jobs)]
	align.ExtendBandedBatchWS(ws, jobs, sc, w, dst, nil)
	return dst
}

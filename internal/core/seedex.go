package core

import (
	"seedex/internal/align"
)

// SeedEx is the speculative extender: narrow-band extension plus the
// optimality-check workflow, with a host fallback for the extensions whose
// optimality cannot be proven. In ModeStrict its results are bit-identical
// to running Fallback on everything — the property the paper validates
// against BWA-MEM over 787M reads, reproduced here as a tested invariant.
type SeedEx struct {
	Config Config
	// Fallback performs the host rerun; nil selects the full-band
	// software kernel with Config.Scoring.
	Fallback align.Extender
	// Stats, when non-nil, aggregates check outcomes.
	Stats *Stats
}

// New returns a SeedEx extender with the given band in ModeStrict with
// BWA-MEM default scoring — the configuration whose output is
// bit-equivalent to full-band alignment.
func New(band int) *SeedEx {
	return &SeedEx{
		Config: Config{Band: band, Scoring: align.DefaultScoring(), Kind: SemiGlobal, Mode: ModeStrict},
		Stats:  NewStats(),
	}
}

var _ align.Extender = (*SeedEx)(nil)

// Extend implements align.Extender.
func (s *SeedEx) Extend(query, target []byte, h0 int) align.ExtendResult {
	res, rep := Check(query, target, h0, s.Config)
	if s.Stats != nil {
		s.Stats.record(rep)
	}
	if rep.Pass {
		return res
	}
	if s.Fallback != nil {
		return s.Fallback.Extend(query, target, h0)
	}
	return align.Extend(query, target, h0, s.Config.Scoring)
}

// Session returns a Checker bound to this extender's configuration,
// fallback and stats: a per-goroutine extension session whose scratch
// memory (DP rows, query profile, edit-machine row) is reused across
// calls. Results are identical to Extend; stats still aggregate into the
// shared (atomic) counters.
func (s *SeedEx) Session() align.Extender {
	return &Checker{Config: s.Config, Fallback: s.Fallback, Stats: s.Stats}
}

// FullBand is the host reference extender: the full-width software kernel.
type FullBand struct {
	Scoring align.Scoring
}

var _ align.Extender = FullBand{}

// Extend implements align.Extender.
func (f FullBand) Extend(query, target []byte, h0 int) align.ExtendResult {
	return align.Extend(query, target, h0, f.Scoring)
}

// Session returns a workspace-holding full-band session.
func (f FullBand) Session() align.Extender {
	return &fullBandSession{sc: f.Scoring, ws: align.NewWorkspace()}
}

type fullBandSession struct {
	sc align.Scoring
	ws *align.Workspace
}

func (f *fullBandSession) Extend(query, target []byte, h0 int) align.ExtendResult {
	return align.ExtendWS(f.ws, query, target, h0, f.sc)
}

// Banded is a plain banded extender with no optimality checks — the
// "BSW heuristic" whose output differences the paper's Figure 13 counts.
type Banded struct {
	Scoring align.Scoring
	Band    int
}

var _ align.Extender = Banded{}

// Extend implements align.Extender.
func (b Banded) Extend(query, target []byte, h0 int) align.ExtendResult {
	res, _ := align.ExtendBanded(query, target, h0, b.Scoring, b.Band)
	return res
}

// Session returns a workspace-holding banded session (no boundary copy:
// the heuristic discards it).
func (b Banded) Session() align.Extender {
	return &bandedSession{sc: b.Scoring, w: b.Band, ws: align.NewWorkspace()}
}

type bandedSession struct {
	sc align.Scoring
	w  int
	ws *align.Workspace
}

func (b *bandedSession) Extend(query, target []byte, h0 int) align.ExtendResult {
	res, _ := align.ExtendBandedWS(b.ws, query, target, h0, b.sc, b.w)
	return res
}

package core

import (
	"fmt"
	"sync/atomic"
)

// numOutcomes sizes the per-outcome counter array; Outcome values are the
// dense indices 0..FailGlobal.
const numOutcomes = int(FailGlobal) + 1

// Stats aggregates check outcomes across extensions. Every counter is an
// independent atomic, so concurrent recorders (FPGA driver threads,
// pipeline workers) never serialize on a shared lock — recording is a
// handful of uncontended fetch-adds.
type Stats struct {
	Total atomic.Int64
	// ThresholdOnly counts extensions proven optimal by thresholding
	// alone (Figure 14's lower series).
	ThresholdOnly atomic.Int64
	// Passed counts extensions proven optimal by the full workflow.
	Passed atomic.Int64
	// Reruns counts extensions sent back to the host.
	Reruns atomic.Int64
	// outcomes[o] counts reports with Outcome o; dense array, no map and
	// no lock on the record path.
	outcomes [numOutcomes]atomic.Int64
}

// NewStats returns an empty Stats.
func NewStats() *Stats { return &Stats{} }

// Record adds one check report to the counters.
func (s *Stats) Record(rep Report) { s.record(rep) }

func (s *Stats) record(rep Report) {
	s.Total.Add(1)
	if o := rep.Outcome; o >= 0 && int(o) < numOutcomes {
		s.outcomes[o].Add(1)
	}
	if rep.ThresholdOnlyPass {
		s.ThresholdOnly.Add(1)
	}
	if rep.Pass {
		s.Passed.Add(1)
	} else {
		s.Reruns.Add(1)
	}
}

// OutcomeCount returns the number of reports recorded with outcome o.
func (s *Stats) OutcomeCount(o Outcome) int64 {
	if o < 0 || int(o) >= numOutcomes {
		return 0
	}
	return s.outcomes[o].Load()
}

// PassRate returns the fraction of extensions proven optimal.
func (s *Stats) PassRate() float64 {
	total := s.Total.Load()
	if total == 0 {
		return 0
	}
	return float64(s.Passed.Load()) / float64(total)
}

// ThresholdOnlyRate returns the fraction proven by thresholding alone.
func (s *Stats) ThresholdOnlyRate() float64 {
	total := s.Total.Load()
	if total == 0 {
		return 0
	}
	return float64(s.ThresholdOnly.Load()) / float64(total)
}

// Snapshot returns a copy of the counters for reporting. Counters are read
// individually, so a snapshot taken while recorders run is approximate
// (each number is exact, their sum may straddle an in-flight record).
func (s *Stats) Snapshot() map[string]int64 {
	out := map[string]int64{
		"total":          s.Total.Load(),
		"passed":         s.Passed.Load(),
		"reruns":         s.Reruns.Load(),
		"threshold-only": s.ThresholdOnly.Load(),
	}
	for o := 0; o < numOutcomes; o++ {
		if n := s.outcomes[o].Load(); n > 0 {
			out[Outcome(o).String()] = n
		}
	}
	return out
}

// String renders a one-line summary.
func (s *Stats) String() string {
	total := s.Total.Load()
	if total == 0 {
		return "seedex: no extensions"
	}
	return fmt.Sprintf("seedex: %d extensions, %.2f%% passed (%.2f%% threshold-only), %d reruns",
		total, 100*float64(s.Passed.Load())/float64(total), 100*float64(s.ThresholdOnly.Load())/float64(total), s.Reruns.Load())
}

package core

import (
	"fmt"
	"sync/atomic"
)

// numOutcomes sizes the per-outcome counter array; Outcome values are the
// dense indices 0..FailGlobal.
const numOutcomes = int(FailGlobal) + 1

// Stats aggregates check outcomes across extensions. Every counter is an
// independent atomic, so concurrent recorders (FPGA driver threads,
// pipeline workers) never serialize on a shared lock — recording is a
// handful of uncontended fetch-adds.
type Stats struct {
	Total atomic.Int64
	// ThresholdOnly counts extensions proven optimal by thresholding
	// alone (Figure 14's lower series).
	ThresholdOnly atomic.Int64
	// Passed counts extensions proven optimal by the full workflow.
	Passed atomic.Int64
	// Reruns counts extensions sent back to the host.
	Reruns atomic.Int64
	// outcomes[o] counts reports with Outcome o; dense array, no map and
	// no lock on the record path.
	outcomes [numOutcomes]atomic.Int64

	// Degraded-mode containment counters, recorded by the FPGA driver's
	// fault-tolerance layer (integrity validation, retry, circuit
	// breaker). They stay zero on purely software paths.

	// DeviceFaults counts device responses that failed integrity
	// validation (bad count, unknown/duplicate ID, integrity-word
	// mismatch, insane scores) and were contained into host reruns.
	DeviceFaults atomic.Int64
	// DeviceRetries counts device batch attempts retried after a
	// per-batch deadline expiry or a whole-core failure.
	DeviceRetries atomic.Int64
	// BreakerTrips counts closed->open transitions of the device circuit
	// breaker (entries into host-only degraded mode).
	BreakerTrips atomic.Int64
	// HostOnly counts extensions served entirely by the host full-band
	// kernel because the breaker was open or the retry budget ran out.
	HostOnly atomic.Int64

	// Pre-alignment filter counters, recorded by the bwamem pipeline when
	// the prefilter tier is enabled. They stay zero otherwise.

	// PrefilterPass counts extension candidates (chains) the bit-parallel
	// filter let through to the banded kernels.
	PrefilterPass atomic.Int64
	// PrefilterReject counts candidates the filter turned away before
	// extension.
	PrefilterReject atomic.Int64
	// PrefilterRescued counts rejected candidates later extended anyway
	// because their certified score bound could still have influenced the
	// final mapping (the rescue rule that keeps filtering bit-safe).
	PrefilterRescued atomic.Int64
	// PrefilterFalsePass counts candidates that passed the filter yet
	// contributed nothing to the final mapping — the work a sharper
	// filter would also have saved (the filter's miss rate).
	PrefilterFalsePass atomic.Int64
}

// NewStats returns an empty Stats.
func NewStats() *Stats { return &Stats{} }

// Record adds one check report to the counters.
func (s *Stats) Record(rep Report) { s.record(rep) }

func (s *Stats) record(rep Report) {
	s.Total.Add(1)
	if o := rep.Outcome; o >= 0 && int(o) < numOutcomes {
		s.outcomes[o].Add(1)
	}
	if rep.ThresholdOnlyPass {
		s.ThresholdOnly.Add(1)
	}
	if rep.Pass {
		s.Passed.Add(1)
	} else {
		s.Reruns.Add(1)
	}
}

// OutcomeCount returns the number of reports recorded with outcome o.
func (s *Stats) OutcomeCount(o Outcome) int64 {
	if o < 0 || int(o) >= numOutcomes {
		return 0
	}
	return s.outcomes[o].Load()
}

// PassRate returns the fraction of extensions proven optimal.
func (s *Stats) PassRate() float64 { return s.Snapshot().PassRate() }

// ThresholdOnlyRate returns the fraction proven by thresholding alone.
func (s *Stats) ThresholdOnlyRate() float64 { return s.Snapshot().ThresholdOnlyRate() }

// StatsSnapshot is a plain (non-atomic) copy of the counters at one
// instant: the single reporting path shared by the CLI summaries and the
// server's /metrics endpoint. Taking one performs only atomic loads — no
// locks and no allocation.
type StatsSnapshot struct {
	Total         int64 `json:"total"`
	Passed        int64 `json:"passed"`
	Reruns        int64 `json:"reruns"`
	ThresholdOnly int64 `json:"threshold_only"`
	// Outcomes[o] counts reports with Outcome o (dense, indexed like the
	// live counters); use OutcomeCounts for the named non-zero view.
	Outcomes [numOutcomes]int64 `json:"-"`

	// Degraded-mode containment counters (see the live Stats fields).
	DeviceFaults  int64 `json:"device_faults"`
	DeviceRetries int64 `json:"device_retries"`
	BreakerTrips  int64 `json:"breaker_trips"`
	HostOnly      int64 `json:"host_only"`

	// Pre-alignment filter counters (see the live Stats fields).
	PrefilterPass      int64 `json:"prefilter_pass"`
	PrefilterReject    int64 `json:"prefilter_reject"`
	PrefilterRescued   int64 `json:"prefilter_rescued"`
	PrefilterFalsePass int64 `json:"prefilter_false_pass"`
}

// Snapshot reads the counters into a plain struct. Counters are read
// individually, so a snapshot taken while recorders run is approximate
// (each number is exact, their sum may straddle an in-flight record).
func (s *Stats) Snapshot() StatsSnapshot {
	var out StatsSnapshot
	out.Total = s.Total.Load()
	out.Passed = s.Passed.Load()
	out.Reruns = s.Reruns.Load()
	out.ThresholdOnly = s.ThresholdOnly.Load()
	for o := 0; o < numOutcomes; o++ {
		out.Outcomes[o] = s.outcomes[o].Load()
	}
	out.DeviceFaults = s.DeviceFaults.Load()
	out.DeviceRetries = s.DeviceRetries.Load()
	out.BreakerTrips = s.BreakerTrips.Load()
	out.HostOnly = s.HostOnly.Load()
	out.PrefilterPass = s.PrefilterPass.Load()
	out.PrefilterReject = s.PrefilterReject.Load()
	out.PrefilterRescued = s.PrefilterRescued.Load()
	out.PrefilterFalsePass = s.PrefilterFalsePass.Load()
	return out
}

// OutcomeCounts returns the non-zero outcome counters keyed by the
// outcome names ("pass-s2", "fail-edit", ...).
func (sn StatsSnapshot) OutcomeCounts() map[string]int64 {
	out := map[string]int64{}
	for o, n := range sn.Outcomes {
		if n > 0 {
			out[Outcome(o).String()] = n
		}
	}
	return out
}

// PassRate returns the fraction of extensions proven optimal.
func (sn StatsSnapshot) PassRate() float64 {
	if sn.Total == 0 {
		return 0
	}
	return float64(sn.Passed) / float64(sn.Total)
}

// ThresholdOnlyRate returns the fraction proven by thresholding alone.
func (sn StatsSnapshot) ThresholdOnlyRate() float64 {
	if sn.Total == 0 {
		return 0
	}
	return float64(sn.ThresholdOnly) / float64(sn.Total)
}

// String renders a one-line summary.
func (sn StatsSnapshot) String() string {
	if sn.Total == 0 && sn.HostOnly == 0 && sn.PrefilterPass == 0 && sn.PrefilterReject == 0 {
		return "seedex: no extensions"
	}
	s := fmt.Sprintf("seedex: %d extensions, %.2f%% passed (%.2f%% threshold-only), %d reruns",
		sn.Total, 100*sn.PassRate(), 100*sn.ThresholdOnlyRate(), sn.Reruns)
	if sn.DeviceFaults > 0 || sn.DeviceRetries > 0 || sn.BreakerTrips > 0 || sn.HostOnly > 0 {
		s += fmt.Sprintf("; faults: %d detected, %d retries, %d breaker trips, %d host-only",
			sn.DeviceFaults, sn.DeviceRetries, sn.BreakerTrips, sn.HostOnly)
	}
	if sn.PrefilterPass > 0 || sn.PrefilterReject > 0 {
		s += fmt.Sprintf("; prefilter: %d pass, %d reject (%d rescued, %d false-pass)",
			sn.PrefilterPass, sn.PrefilterReject, sn.PrefilterRescued, sn.PrefilterFalsePass)
	}
	return s
}

// String renders a one-line summary of the live counters.
func (s *Stats) String() string { return s.Snapshot().String() }

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"seedex/internal/align"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

func mutate(rng *rand.Rand, seq []byte, subRate, indelRate float64) []byte {
	out := make([]byte, 0, len(seq)+8)
	for _, c := range seq {
		r := rng.Float64()
		switch {
		case r < indelRate/2:
		case r < indelRate:
			out = append(out, byte(rng.Intn(4)), c)
		case r < indelRate+subRate:
			out = append(out, (c+byte(1+rng.Intn(3)))%4)
		default:
			out = append(out, c)
		}
	}
	return out
}

// realisticCase mimics a BWA-MEM seed extension: the query is an erroneous
// copy of a target prefix, anchored by a plausible seed score.
func realisticCase(rng *rand.Rand) (q, t []byte, h0 int) {
	qlen := 20 + rng.Intn(101)
	t = randSeq(rng, qlen+rng.Intn(40))
	end := qlen
	if end > len(t) {
		end = len(t)
	}
	q = mutate(rng, t[:end], 0.02, 0.01)
	if len(q) == 0 {
		q = randSeq(rng, 10)
	}
	h0 = 15 + rng.Intn(80)
	return
}

// adversarialCase generates hostile inputs: unrelated sequences, huge h0
// (keeping the below-band first column alive), embedded off-diagonal
// repeats — everything that stresses the soundness of the checks.
func adversarialCase(rng *rand.Rand) (q, t []byte, h0 int) {
	qlen := 5 + rng.Intn(70)
	q = randSeq(rng, qlen)
	switch rng.Intn(4) {
	case 0: // unrelated
		t = randSeq(rng, 5+rng.Intn(100))
	case 1: // query embedded deep below the diagonal
		t = append(randSeq(rng, rng.Intn(50)), q...)
		t = append(t, randSeq(rng, rng.Intn(20))...)
	case 2: // repetitive target built from query fragments
		t = nil
		for len(t) < qlen+30 {
			a := rng.Intn(qlen)
			b := a + 1 + rng.Intn(qlen-a)
			t = append(t, q[a:b]...)
		}
	default: // near copy with a huge gap
		t = append([]byte(nil), q[:qlen/2]...)
		t = append(t, randSeq(rng, 10+rng.Intn(40))...)
		t = append(t, q[qlen/2:]...)
	}
	h0 = 1 + rng.Intn(200) // includes very large seeds
	return
}

func sameResult(a, b align.ExtendResult) bool {
	return a.Local == b.Local && a.LocalT == b.LocalT && a.LocalQ == b.LocalQ &&
		a.Global == b.Global && a.GlobalT == b.GlobalT
}

// TestStrictPassImpliesFullEquality is the repository's central invariant:
// whenever the strict-mode checks pass, the narrow-band result is
// bit-identical (scores and positions, local and global) to the full-band
// result. It is exercised on both realistic and adversarial generators.
func TestStrictPassImpliesFullEquality(t *testing.T) {
	sc := align.DefaultScoring()
	gens := map[string]func(*rand.Rand) ([]byte, []byte, int){
		"realistic":   realisticCase,
		"adversarial": adversarialCase,
	}
	for name, gen := range gens {
		gen := gen
		t.Run(name, func(t *testing.T) {
			f := func(seed int64, wRaw uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				q, tg, h0 := gen(rng)
				w := 1 + int(wRaw)%45
				cfg := Config{Band: w, Scoring: sc, Kind: SemiGlobal, Mode: ModeStrict}
				res, rep := Check(q, tg, h0, cfg)
				if !rep.Pass {
					return true // rerun path; nothing to prove
				}
				full := align.Extend(q, tg, h0, sc)
				if !sameResult(res, full) {
					t.Logf("seed=%d w=%d h0=%d outcome=%v\n q=%v\n t=%v\n banded=%+v\n full=%+v\n report=%+v",
						seed, w, h0, rep.Outcome, q, tg, res, full, rep)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 1500, Rand: rand.New(rand.NewSource(99))}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStrictSoundnessRandomScoring re-runs the central invariant under
// randomized scoring schemes: the checks' soundness must not depend on
// BWA's particular constants.
func TestStrictSoundnessRandomScoring(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := align.Scoring{
			Match:     1 + rng.Intn(3),
			Mismatch:  1 + rng.Intn(8),
			GapOpen:   rng.Intn(10),
			GapExtend: 1 + rng.Intn(4),
		}
		var q, tg []byte
		var h0 int
		if rng.Intn(2) == 0 {
			q, tg, h0 = realisticCase(rng)
		} else {
			q, tg, h0 = adversarialCase(rng)
		}
		w := 1 + int(wRaw)%30
		cfg := Config{Band: w, Scoring: sc, Kind: SemiGlobal, Mode: ModeStrict}
		res, rep := Check(q, tg, h0, cfg)
		if !rep.Pass {
			return true
		}
		full := align.Extend(q, tg, h0, sc)
		if !sameResult(res, full) {
			t.Logf("seed=%d w=%d h0=%d sc=%+v outcome=%v\n banded=%+v\n full=%+v", seed, w, h0, sc, rep.Outcome, res, full)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2500, Rand: rand.New(rand.NewSource(123))}); err != nil {
		t.Fatal(err)
	}
}

// TestPaperPassImpliesLocalEquality verifies the paper-mode guarantee on
// realistic extension workloads: a passing check means the narrow-band
// local result equals the full-band local result.
func TestPaperPassImpliesLocalEquality(t *testing.T) {
	sc := align.DefaultScoring()
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q, tg, h0 := realisticCase(rng)
		w := 1 + int(wRaw)%45
		cfg := Config{Band: w, Scoring: sc, Kind: SemiGlobal, Mode: ModePaper}
		res, rep := Check(q, tg, h0, cfg)
		if !rep.Pass {
			return true
		}
		full := align.Extend(q, tg, h0, sc)
		if res.Local != full.Local || res.LocalT != full.LocalT || res.LocalQ != full.LocalQ {
			t.Logf("seed=%d w=%d h0=%d outcome=%v banded=%+v full=%+v", seed, w, h0, rep.Outcome, res, full)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestSeedExBitEquivalence: the complete speculative extender (checks +
// host rerun) must always equal a full-band run — the paper's headline
// SAM-level validation, at extension granularity.
func TestSeedExBitEquivalence(t *testing.T) {
	sc := align.DefaultScoring()
	for _, w := range []int{1, 3, 5, 10, 21, 41} {
		se := New(w)
		full := FullBand{Scoring: sc}
		for seed := int64(0); seed < 400; seed++ {
			rng := rand.New(rand.NewSource(seed * 31))
			var q, tg []byte
			var h0 int
			if seed%2 == 0 {
				q, tg, h0 = realisticCase(rng)
			} else {
				q, tg, h0 = adversarialCase(rng)
			}
			got := se.Extend(q, tg, h0)
			want := full.Extend(q, tg, h0)
			if !sameResult(got, want) {
				t.Fatalf("w=%d seed=%d: seedex %+v != full %+v", w, seed, got, want)
			}
		}
		if se.Stats.Total.Load() == 0 {
			t.Fatalf("stats not recorded")
		}
	}
}

func TestThresholds(t *testing.T) {
	sc := align.DefaultScoring()
	th := ComputeThresholds(101, 30, 41, sc, SemiGlobal)
	// S1 = 30 - (6 + 41) + 60*1 = 43 ; S2 = 30 - 47 + 101 = 84.
	if th.S1 != 43 || th.S2 != 84 {
		t.Fatalf("semi-global thresholds = %+v, want S1=43 S2=84", th)
	}
	if th.S2-th.S1 != 41*sc.Match {
		t.Fatalf("S2-S1 must equal w*m")
	}
	g := ComputeThresholds(101, 30, 41, sc, Global)
	// gap terms doubled: 30 - (12 + 82) + 60 = -4 ; 30 - 94 + 101 = 37.
	if g.S1 != -4 || g.S2 != 37 {
		t.Fatalf("global thresholds = %+v, want S1=-4 S2=37", g)
	}
}

func TestMaxEScoreSkipsDeadCrossings(t *testing.T) {
	sc := align.DefaultScoring()
	bd := align.BandBoundary{E: []int{0, 0, 5, 0, 2}}
	v, live := MaxEScore(bd, 10, sc)
	if !live || v != 5+(10-2)*sc.Match {
		t.Fatalf("MaxEScore = %d live=%v, want %d", v, live, 5+8)
	}
	_, live = MaxEScore(align.BandBoundary{E: []int{0, 0, 0}}, 10, sc)
	if live {
		t.Fatal("all-dead boundary must report no live crossing")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o := PassFullCover; o <= FailGlobal; o++ {
		if o.String() == "" {
			t.Fatalf("outcome %d has empty string", o)
		}
	}
	if Outcome(99).String() != "outcome(99)" {
		t.Fatal("unknown outcome formatting")
	}
}

func TestFullCoverPass(t *testing.T) {
	sc := align.DefaultScoring()
	q := randSeq(rand.New(rand.NewSource(8)), 10)
	res, rep := Check(q, q, 20, Config{Band: 50, Scoring: sc, Mode: ModeStrict})
	if rep.Outcome != PassFullCover || !rep.Pass {
		t.Fatalf("wide band should pass by coverage, got %+v", rep)
	}
	full := align.Extend(q, q, 20, sc)
	if !sameResult(res, full) {
		t.Fatalf("full-cover band result differs from full")
	}
}

func TestStatsAggregation(t *testing.T) {
	s := NewStats()
	s.record(Report{Pass: true, Outcome: PassS2, ThresholdOnlyPass: true})
	s.record(Report{Pass: false, Outcome: FailS1})
	if s.Total.Load() != 2 || s.Passed.Load() != 1 || s.Reruns.Load() != 1 || s.ThresholdOnly.Load() != 1 {
		t.Fatalf("bad counters: %+v", s.Snapshot())
	}
	if s.PassRate() != 0.5 || s.ThresholdOnlyRate() != 0.5 {
		t.Fatalf("bad rates: %v %v", s.PassRate(), s.ThresholdOnlyRate())
	}
	if s.String() == "" || NewStats().String() == "" {
		t.Fatal("empty stats string")
	}
	snap := s.Snapshot()
	if snap.Total != 2 || snap.Passed != 1 || snap.Reruns != 1 || snap.ThresholdOnly != 1 {
		t.Fatalf("bad snapshot counters: %+v", snap)
	}
	oc := snap.OutcomeCounts()
	if oc["pass-s2"] != 1 || oc["fail-s1"] != 1 {
		t.Fatalf("snapshot missing outcomes: %v", oc)
	}
	if snap.String() != s.String() {
		t.Fatalf("snapshot and live summaries diverge: %q vs %q", snap.String(), s.String())
	}
}

package core

import (
	"fmt"
	"strings"

	"seedex/internal/align"
)

// Extender engine names shared by every front-end (seedex-align,
// seedex-serve, the bench harness) so the valid set and the construction
// logic live in exactly one place.
const (
	ExtenderSeedEx   = "seedex"
	ExtenderFullBand = "fullband"
	ExtenderBanded   = "banded"
)

// ExtenderNames returns the valid engine names in display order.
func ExtenderNames() []string {
	return []string{ExtenderSeedEx, ExtenderFullBand, ExtenderBanded}
}

// NamedExtender constructs the extension engine selected by name with
// BWA-MEM default scoring: the SeedEx speculative extender (with fresh
// Stats), the full-band reference, or the plain banded heuristic. An
// unknown name yields an error listing the valid set. The returned
// extender always implements align.BatchExtender and
// align.SessionExtender; callers wanting the SeedEx check statistics can
// type-assert to *SeedEx.
func NamedExtender(name string, band int) (align.Extender, error) {
	switch name {
	case ExtenderSeedEx:
		return New(band), nil
	case ExtenderFullBand:
		return FullBand{Scoring: align.DefaultScoring()}, nil
	case ExtenderBanded:
		return Banded{Scoring: align.DefaultScoring(), Band: band}, nil
	}
	return nil, fmt.Errorf("unknown extender %q (valid: %s)", name, strings.Join(ExtenderNames(), ", "))
}

package core

import (
	"math/rand"
	"testing"

	"seedex/internal/align"
)

// TestCheckerMatchesCheck: the workspace-holding Checker must reproduce the
// package-level Check bit-for-bit — results and full reports — across
// random workloads, bands and both modes.
func TestCheckerMatchesCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sc := align.DefaultScoring()
	for _, mode := range []Mode{ModePaper, ModeStrict} {
		for _, w := range []int{1, 3, 8, 16, 40} {
			cfg := Config{Band: w, Scoring: sc, Kind: SemiGlobal, Mode: mode}
			chk := NewChecker(cfg)
			for iter := 0; iter < 300; iter++ {
				var q, tg []byte
				var h0 int
				if iter%2 == 0 {
					q, tg, h0 = realisticCase(rng)
				} else {
					q, tg, h0 = adversarialCase(rng)
				}
				wantRes, wantRep := Check(q, tg, h0, cfg)
				gotRes, gotRep := chk.Check(q, tg, h0)
				if gotRes != wantRes {
					t.Fatalf("mode=%d w=%d iter=%d: result %+v != %+v", mode, w, iter, gotRes, wantRes)
				}
				if gotRep != wantRep {
					t.Fatalf("mode=%d w=%d iter=%d: report %+v != %+v", mode, w, iter, gotRep, wantRep)
				}
			}
		}
	}
}

// TestCheckerExtendMatchesSeedEx: Checker.Extend (and a Session minted from
// a SeedEx) must agree with SeedEx.Extend, including the stats trail.
func TestCheckerExtendMatchesSeedEx(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	se := New(8)
	sess := se.Session()
	chk := NewChecker(se.Config)
	chk.Stats = NewStats()
	for iter := 0; iter < 400; iter++ {
		q, tg, h0 := realisticCase(rng)
		want := se.Extend(q, tg, h0)
		if got := sess.Extend(q, tg, h0); got != want {
			t.Fatalf("iter %d: session %+v != seedex %+v", iter, got, want)
		}
		if got := chk.Extend(q, tg, h0); got != want {
			t.Fatalf("iter %d: checker %+v != seedex %+v", iter, got, want)
		}
	}
	// The session shares the parent's stats; the standalone checker has its
	// own. Both views must be consistent.
	if se.Stats.Total.Load() != 800 {
		t.Fatalf("seedex+session recorded %d extensions, want 800", se.Stats.Total.Load())
	}
	if chk.Stats.Total.Load() != 400 {
		t.Fatalf("checker recorded %d extensions, want 400", chk.Stats.Total.Load())
	}
	if se.Stats.Passed.Load()+se.Stats.Reruns.Load() != se.Stats.Total.Load() {
		t.Fatalf("stats do not add up: %v", se.Stats.Snapshot())
	}
}

// TestExtendBatch: request order, tags and rerun flags must survive
// batching, and every response must equal the full-band ground truth.
func TestExtendBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	cfg := Config{Band: 6, Scoring: align.DefaultScoring(), Kind: SemiGlobal, Mode: ModeStrict}
	chk := NewChecker(cfg)
	chk.Stats = NewStats()
	reqs := make([]Request, 120)
	for i := range reqs {
		q, tg, h0 := realisticCase(rng)
		reqs[i] = Request{Q: q, T: tg, H0: h0, Tag: 1000 + i}
	}
	resps := chk.ExtendBatch(reqs)
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(resps), len(reqs))
	}
	reruns := 0
	for i, r := range resps {
		if r.Tag != reqs[i].Tag {
			t.Fatalf("response %d carries tag %d, want %d", i, r.Tag, reqs[i].Tag)
		}
		want := align.Extend(reqs[i].Q, reqs[i].T, reqs[i].H0, cfg.Scoring)
		if got := r.Res; got.Local != want.Local || got.LocalT != want.LocalT || got.LocalQ != want.LocalQ ||
			got.Global != want.Global || got.GlobalT != want.GlobalT {
			t.Fatalf("request %d: %+v != full-band %+v (rerun=%v)", i, got, want, r.Rerun)
		}
		if r.Rerun {
			reruns++
		}
	}
	if int64(reruns) != chk.Stats.Reruns.Load() {
		t.Fatalf("rerun flags (%d) disagree with stats (%d)", reruns, chk.Stats.Reruns.Load())
	}
	// Into-form reuses the response slice.
	again := chk.ExtendBatchInto(reqs, resps)
	if &again[0] != &resps[0] {
		t.Fatal("ExtendBatchInto must reuse the destination backing array")
	}
}

// TestExtendBatchMixedShapesStats: mixed-shape batches — lengths that never
// fill a full SWAR lane group, degenerate jobs, adversarial inputs — must
// leave exactly the same trail in core.Stats as running every request
// through the scalar path, with identical responses.
func TestExtendBatchMixedShapesStats(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for _, mode := range []Mode{ModePaper, ModeStrict} {
		for _, w := range []int{3, 8, 20} {
			cfg := Config{Band: w, Scoring: align.DefaultScoring(), Kind: SemiGlobal, Mode: mode}
			batched := NewChecker(cfg)
			batched.Stats = NewStats()
			scalar := NewChecker(cfg)
			scalar.Stats = NewStats()

			// Batch sizes chosen to leave lane groups partial (never a
			// multiple of 8), including single-job batches.
			var dst []Response
			for _, size := range []int{1, 2, 3, 5, 7, 9, 11, 13, 17, 23} {
				reqs := make([]Request, size)
				for i := range reqs {
					var q, tg []byte
					var h0 int
					switch i % 4 {
					case 0:
						q, tg, h0 = realisticCase(rng)
					case 1:
						q, tg, h0 = adversarialCase(rng)
					case 2: // tiny shapes: lane-demotion territory
						q, tg, h0 = randSeq(rng, 1+rng.Intn(4)), randSeq(rng, 1+rng.Intn(4)), 1+rng.Intn(10)
					default: // degenerate: empty query/target or dead seed
						switch rng.Intn(3) {
						case 0:
							q, tg, h0 = nil, randSeq(rng, 20), 30
						case 1:
							q, tg, h0 = randSeq(rng, 20), nil, 30
						default:
							q, tg, h0 = randSeq(rng, 20), randSeq(rng, 25), -rng.Intn(3)
						}
					}
					reqs[i] = Request{Q: q, T: tg, H0: h0, Tag: i}
				}
				dst = batched.ExtendBatchInto(reqs, dst)
				for i, r := range reqs {
					// Rows/Cells are work-model fields and legitimately
					// differ (the packed kernels report a deterministic
					// full-sweep count); every result field must match.
					want := scalar.Extend(r.Q, r.T, r.H0)
					got := dst[i].Res
					if got.Local != want.Local || got.LocalT != want.LocalT || got.LocalQ != want.LocalQ ||
						got.Global != want.Global || got.GlobalT != want.GlobalT {
						t.Fatalf("mode=%d w=%d size=%d req=%d: batch %+v != scalar %+v",
							mode, w, size, i, got, want)
					}
					if dst[i].Tag != r.Tag {
						t.Fatalf("mode=%d w=%d size=%d req=%d: tag %d != %d", mode, w, size, i, dst[i].Tag, r.Tag)
					}
				}
			}

			// Every counter the two paths recorded must agree.
			b, s := batched.Stats, scalar.Stats
			if b.Total.Load() != s.Total.Load() || b.Passed.Load() != s.Passed.Load() ||
				b.Reruns.Load() != s.Reruns.Load() || b.ThresholdOnly.Load() != s.ThresholdOnly.Load() {
				t.Fatalf("mode=%d w=%d: counters diverge: batch %v, scalar %v", mode, w, b.Snapshot(), s.Snapshot())
			}
			for o := PassFullCover; o <= FailGlobal; o++ {
				if b.OutcomeCount(o) != s.OutcomeCount(o) {
					t.Fatalf("mode=%d w=%d: outcome %v: batch %d, scalar %d",
						mode, w, o, b.OutcomeCount(o), s.OutcomeCount(o))
				}
			}
			if b.Passed.Load()+b.Reruns.Load() != b.Total.Load() {
				t.Fatalf("mode=%d w=%d: stats do not add up: %v", mode, w, b.Snapshot())
			}
		}
	}
}

// TestCheckerZeroAllocs: steady-state Checker.Check and the batch path must
// not allocate — the tentpole property extended through the check workflow.
func TestCheckerZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	cfg := Config{Band: 8, Scoring: align.DefaultScoring(), Kind: SemiGlobal, Mode: ModeStrict}
	chk := NewChecker(cfg)
	chk.Stats = NewStats()
	q, tg, h0 := realisticCase(rng)
	chk.Extend(q, tg, h0) // warm every buffer, including the rerun path
	if n := testing.AllocsPerRun(200, func() {
		chk.Check(q, tg, h0)
	}); n != 0 {
		t.Fatalf("Checker.Check allocates %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		chk.Extend(q, tg, h0)
	}); n != 0 {
		t.Fatalf("Checker.Extend allocates %.1f allocs/op, want 0", n)
	}
	reqs := make([]Request, 16)
	for i := range reqs {
		qq, tt, hh := realisticCase(rng)
		reqs[i] = Request{Q: qq, T: tt, H0: hh, Tag: i}
	}
	dst := chk.ExtendBatch(reqs)
	if n := testing.AllocsPerRun(100, func() {
		dst = chk.ExtendBatchInto(reqs, dst)
	}); n != 0 {
		t.Fatalf("ExtendBatchInto allocates %.1f allocs/op, want 0", n)
	}
}

// TestSessionExtenders: every extender flavour must satisfy
// align.SessionExtender and its sessions must match the parent.
func TestSessionExtenders(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	sc := align.DefaultScoring()
	parents := []align.SessionExtender{
		New(8),
		FullBand{Scoring: sc},
		Banded{Scoring: sc, Band: 8},
	}
	for pi, p := range parents {
		sess := p.Session()
		for iter := 0; iter < 200; iter++ {
			q, tg, h0 := realisticCase(rng)
			if got, want := sess.Extend(q, tg, h0), p.Extend(q, tg, h0); got != want {
				t.Fatalf("parent %d iter %d: session %+v != parent %+v", pi, iter, got, want)
			}
		}
	}
}

package core

import (
	"seedex/internal/align"
)

// GlobalReport is the outcome of the global-alignment optimality check.
type GlobalReport struct {
	// Pass is true when the banded score is provably the full-width
	// global score.
	Pass bool
	// Bound is the strongest upper bound over band-leaving paths
	// (align.NegInf when no path can leave the band).
	Bound int
	// Rerun marks a full-width fallback (CheckedGlobal only).
	Rerun bool
	// Th carries the paper's doubled-gap thresholds, reported for
	// comparison; the pass decision uses the boundary bounds, which
	// remain sound for asymmetric lengths (see the comment on
	// CheckGlobal).
	Th Thresholds
}

// CheckGlobal runs a banded global alignment (the Needleman-Wunsch-style
// kernel minimap2-class long-read aligners use between chained anchors,
// paper §VII-D) and proves, or fails to prove, that its score equals the
// full-width score.
//
// The paper extends the S1/S2 thresholds to global alignment by doubling
// the gap terms, which models one excursion out of and back into the
// band. For asymmetric query/target lengths the return gap can be
// shorter than the outbound one, so this reproduction bases the passing
// decision on per-crossing bounds instead, which are sound
// unconditionally: every path that computes cells outside the band
// either crosses the band's lower boundary through the E channel or its
// upper boundary through the F channel (with captured scores), or enters
// through the below-band first column / above-band first row
// initialization cells (with closed-form arrival bounds). Each crossing
// is extended with an all-match continuation; if every such bound stays
// below the banded score, no outside path can win, and — because the
// global endpoint itself lies inside the band — the banded score is
// exactly the full-width score.
func CheckGlobal(query, target []byte, h0 int, cfg Config) (align.GlobalResult, GlobalReport) {
	n, m := len(query), len(target)
	w := cfg.Band
	sc := cfg.Scoring
	res, bd := align.GlobalBanded(query, target, h0, sc, w)
	rep := GlobalReport{Bound: align.NegInf, Th: ComputeThresholds(n, h0, w, sc, Global)}
	if w >= n && w >= m {
		rep.Pass = res.Feasible
		return res, rep
	}
	if !res.Feasible {
		return res, rep // endpoint outside the band: always rerun
	}
	up := func(v int) {
		if v > rep.Bound {
			rep.Bound = v
		}
	}
	// Every band-leaving path must come back: the global endpoint (m, n)
	// lies inside the band. Re-entering from below (diagonal offset w+1
	// down to m−n) takes at least kBelow insertions, each consuming an
	// unmatchable query base and extending a gap; from above, at least
	// kAbove deletions. Both corrections keep the bounds sound while
	// making them tight enough for high-h0 fills.
	kBelow := (w + 1) - (m - n) // >= 1 while the endpoint is in-band
	kAbove := (m - n) + (w + 1) // >= 1 likewise
	retBelow := sc.GapOpen + kBelow*sc.GapExtend
	retAbove := sc.GapOpen + kAbove*sc.GapExtend

	// E crossings into the below-band region at column j.
	for j, ev := range bd.EOut {
		if ev > align.NegInf/2 {
			up(ev + intMax(0, n-j-kBelow)*sc.Match - retBelow)
		}
	}
	// F crossings into the above-band region at row i (the crossing
	// consumes query base i+w+1 without matching it).
	for i, fv := range bd.FOut {
		if fv > align.NegInf/2 {
			up(fv + intMax(0, n-(i+w+1))*sc.Match - retAbove)
		}
	}
	// Below-band first-column arrivals (pure leading deletion of w+1
	// target bases, then the mandatory return insertions).
	if m > w {
		arr := h0 - sc.GapOpen - (w+1)*sc.GapExtend
		up(arr + intMax(0, n-kBelow)*sc.Match - retBelow)
	}
	// Above-band first-row arrivals (pure leading insertion consuming
	// w+1 query bases unmatched, then the mandatory return deletions).
	if n > w {
		arr := h0 - sc.GapOpen - (w+1)*sc.GapExtend
		up(arr + intMax(0, n-w-1)*sc.Match - retAbove)
	}
	rep.Pass = rep.Bound < res.Score
	return res, rep
}

// CheckedGlobal is the speculate-and-test global aligner: banded global
// alignment with the optimality check and a full-width rerun fallback.
// Its score always equals align.Global's.
func CheckedGlobal(query, target []byte, h0 int, cfg Config) (align.GlobalResult, GlobalReport) {
	res, rep := CheckGlobal(query, target, h0, cfg)
	if rep.Pass {
		return res, rep
	}
	rep.Rerun = true
	full := align.Global(query, target, h0, cfg.Scoring)
	full.Cells += res.Cells
	return full, rep
}

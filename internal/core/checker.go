package core

import (
	"sync"

	"seedex/internal/align"
	"seedex/internal/editmachine"
)

// Request is one extension problem submitted to a batch.
type Request struct {
	Q, T []byte // query and target (band-anchored at their left ends)
	H0   int    // seed score the extension starts from
	Tag  int    // caller-chosen identifier, echoed in the Response
}

// Response reports one extension of a batch.
type Response struct {
	Tag   int
	Res   align.ExtendResult
	Rerun bool // optimality was not proven; Res came from the fallback
	// Outcome is the check verdict behind Rerun (informational — the
	// observability layer exports it as the per-job span attribute).
	// OutcomeUnknown marks responses whose verdict was not observable
	// (device-faulted slots rebuilt by the host, host-only batches).
	Outcome Outcome
}

// Checker runs the SeedEx check workflow with caller-owned scratch: one
// Checker value holds every buffer the banded kernel, the edit machine and
// the host rerun need, so a goroutine that keeps a Checker for its
// lifetime performs the whole speculate-check-rerun cycle without
// allocating. A Checker must not be used concurrently; mint one per
// worker (see SeedEx.Session).
type Checker struct {
	Config Config
	// Fallback performs host reruns; nil selects the workspace-backed
	// full-band kernel with Config.Scoring.
	Fallback align.Extender
	// Stats, when non-nil, aggregates check outcomes (atomic counters, so
	// many Checkers may share one Stats).
	Stats *Stats

	ews *align.Workspace
	ems *editmachine.Workspace

	// Batch scratch (grow-only): per-job banded results, boundaries and
	// reports for checkJobs, plus the Job slice ExtendBatchInto builds
	// from its Requests.
	bjobs []align.Job
	bres  []align.ExtendResult
	bbds  []align.BandBoundary
	breps []Report
}

// NewChecker returns a Checker for cfg with pre-created workspaces.
func NewChecker(cfg Config) *Checker {
	return &Checker{Config: cfg, ews: align.NewWorkspace(), ems: editmachine.NewWorkspace()}
}

var _ align.Extender = (*Checker)(nil)

// KernelScoring exposes the scoring scheme the batch kernels run under;
// shape-binned schedulers (the server micro-batcher, the driver's batch
// producer) duck-type this accessor to key jobs by align.ShapeBin.
func (c *Checker) KernelScoring() align.Scoring { return c.Config.Scoring }

// ShapeBin buckets one request for cross-batch shape scheduling: requests
// sharing a bin pack into dense SWAR lane groups (see align.ShapeBin).
func (c *Checker) ShapeBin(r Request) int {
	return align.ShapeBin(len(r.Q), len(r.T), r.H0, c.Config.Scoring)
}

func (c *Checker) init() {
	if c.ews == nil {
		c.ews = align.NewWorkspace()
		c.ems = editmachine.NewWorkspace()
	}
}

// Check speculatively extends query against target with the narrow band
// and runs the optimality-check workflow. It does not record stats and
// does not rerun; the caller decides what to do on !report.Pass.
func (c *Checker) Check(query, target []byte, h0 int) (align.ExtendResult, Report) {
	c.init()
	res, bd := align.ExtendBandedWS(c.ews, query, target, h0, c.Config.Scoring, c.Config.Band)
	rep := check(c.ems, query, target, h0, res, bd, c.Config)
	return res, rep
}

// Rerun performs the host full-band extension for a failed check.
func (c *Checker) Rerun(query, target []byte, h0 int) align.ExtendResult {
	if c.Fallback != nil {
		return c.Fallback.Extend(query, target, h0)
	}
	c.init()
	return align.ExtendWS(c.ews, query, target, h0, c.Config.Scoring)
}

// Extend implements align.Extender: check, record, rerun on failure.
func (c *Checker) Extend(query, target []byte, h0 int) align.ExtendResult {
	res, rep := c.Check(query, target, h0)
	if c.Stats != nil {
		c.Stats.record(rep)
	}
	if rep.Pass {
		return res
	}
	return c.Rerun(query, target, h0)
}

// ExtendBatch runs every request through the check workflow (with rerun on
// failure) and returns the responses in request order.
func (c *Checker) ExtendBatch(reqs []Request) []Response {
	return c.ExtendBatchInto(reqs, nil)
}

// checkJobs is the batched speculate-and-check core: one packed banded
// extension over all jobs (the SWAR kernels fill lanes across jobs, the
// software analogue of the accelerator's systolic batch), then the
// optimality checks per job. Results land in c.bres, boundaries in
// c.bbds, reports in the returned slice (aliasing c.breps; everything is
// valid until the next batch call on this Checker). No stats, no reruns —
// each entry point layers its own policy on top.
func (c *Checker) checkJobs(jobs []align.Job) []Report {
	c.init()
	if cap(c.bres) < len(jobs) {
		c.bres = make([]align.ExtendResult, len(jobs))
		c.bbds = make([]align.BandBoundary, len(jobs))
		c.breps = make([]Report, len(jobs))
	}
	c.bres = c.bres[:len(jobs)]
	c.bbds = c.bbds[:len(jobs)]
	c.breps = c.breps[:len(jobs)]
	align.ExtendBandedBatchWS(c.ews, jobs, c.Config.Scoring, c.Config.Band, c.bres, c.bbds)
	for i := range jobs {
		c.breps[i] = check(c.ems, jobs[i].Q, jobs[i].T, jobs[i].H0, c.bres[i], c.bbds[i], c.Config)
	}
	return c.breps
}

// ExtendBatchInto is ExtendBatch reusing dst's backing array when it is
// large enough — the allocation-free form for long-lived workers. The
// speculative banded extensions of the whole batch run as one packed
// (SWAR) kernel invocation; failed checks then rerun individually.
func (c *Checker) ExtendBatchInto(reqs []Request, dst []Response) []Response {
	if cap(dst) < len(reqs) {
		dst = make([]Response, len(reqs))
	}
	dst = dst[:len(reqs)]
	if cap(c.bjobs) < len(reqs) {
		c.bjobs = make([]align.Job, len(reqs))
	}
	c.bjobs = c.bjobs[:len(reqs)]
	for i, r := range reqs {
		c.bjobs[i] = align.Job{Q: r.Q, T: r.T, H0: r.H0}
	}
	reps := c.checkJobs(c.bjobs)
	for i, r := range reqs {
		if c.Stats != nil {
			c.Stats.record(reps[i])
		}
		res := c.bres[i]
		rerun := !reps[i].Pass
		if rerun {
			res = c.Rerun(r.Q, r.T, r.H0)
		}
		dst[i] = Response{Tag: r.Tag, Res: res, Rerun: rerun, Outcome: reps[i].Outcome}
	}
	return dst
}

// CheckBatch speculatively extends every request as one packed batch and
// runs the optimality checks, without host reruns: a failed response
// carries the banded result with Rerun set, and the caller decides where
// the rerun happens (the FPGA driver overlaps host reruns with device
// compute). The returned reports alias checker scratch, valid until the
// next batch call; stats are not recorded.
func (c *Checker) CheckBatch(reqs []Request, dst []Response) ([]Response, []Report) {
	if cap(dst) < len(reqs) {
		dst = make([]Response, len(reqs))
	}
	dst = dst[:len(reqs)]
	if cap(c.bjobs) < len(reqs) {
		c.bjobs = make([]align.Job, len(reqs))
	}
	c.bjobs = c.bjobs[:len(reqs)]
	for i, r := range reqs {
		c.bjobs[i] = align.Job{Q: r.Q, T: r.T, H0: r.H0}
	}
	reps := c.checkJobs(c.bjobs)
	for i, r := range reqs {
		dst[i] = Response{Tag: r.Tag, Res: c.bres[i], Rerun: !reps[i].Pass, Outcome: reps[i].Outcome}
	}
	return dst, reps
}

// ExtendJobs implements align.BatchExtender: the full check workflow
// (batched speculation, checks, stats, reruns on failure) over every job,
// results in job order.
func (c *Checker) ExtendJobs(jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	if cap(dst) < len(jobs) {
		dst = make([]align.ExtendResult, len(jobs))
	}
	dst = dst[:len(jobs)]
	reps := c.checkJobs(jobs)
	for i := range jobs {
		if c.Stats != nil {
			c.Stats.record(reps[i])
		}
		if reps[i].Pass {
			dst[i] = c.bres[i]
		} else {
			dst[i] = c.Rerun(jobs[i].Q, jobs[i].T, jobs[i].H0)
		}
	}
	return dst
}

var _ align.BatchExtender = (*Checker)(nil)

// checkerPool backs the package-level Check function; long-lived callers
// should hold their own Checker.
var checkerPool = sync.Pool{New: func() any { return &Checker{} }}

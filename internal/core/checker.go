package core

import (
	"sync"

	"seedex/internal/align"
	"seedex/internal/editmachine"
)

// Request is one extension problem submitted to a batch.
type Request struct {
	Q, T []byte // query and target (band-anchored at their left ends)
	H0   int    // seed score the extension starts from
	Tag  int    // caller-chosen identifier, echoed in the Response
}

// Response reports one extension of a batch.
type Response struct {
	Tag   int
	Res   align.ExtendResult
	Rerun bool // optimality was not proven; Res came from the fallback
}

// Checker runs the SeedEx check workflow with caller-owned scratch: one
// Checker value holds every buffer the banded kernel, the edit machine and
// the host rerun need, so a goroutine that keeps a Checker for its
// lifetime performs the whole speculate-check-rerun cycle without
// allocating. A Checker must not be used concurrently; mint one per
// worker (see SeedEx.Session).
type Checker struct {
	Config Config
	// Fallback performs host reruns; nil selects the workspace-backed
	// full-band kernel with Config.Scoring.
	Fallback align.Extender
	// Stats, when non-nil, aggregates check outcomes (atomic counters, so
	// many Checkers may share one Stats).
	Stats *Stats

	ews *align.Workspace
	ems *editmachine.Workspace
}

// NewChecker returns a Checker for cfg with pre-created workspaces.
func NewChecker(cfg Config) *Checker {
	return &Checker{Config: cfg, ews: align.NewWorkspace(), ems: editmachine.NewWorkspace()}
}

var _ align.Extender = (*Checker)(nil)

func (c *Checker) init() {
	if c.ews == nil {
		c.ews = align.NewWorkspace()
		c.ems = editmachine.NewWorkspace()
	}
}

// Check speculatively extends query against target with the narrow band
// and runs the optimality-check workflow. It does not record stats and
// does not rerun; the caller decides what to do on !report.Pass.
func (c *Checker) Check(query, target []byte, h0 int) (align.ExtendResult, Report) {
	c.init()
	res, bd := align.ExtendBandedWS(c.ews, query, target, h0, c.Config.Scoring, c.Config.Band)
	rep := check(c.ems, query, target, h0, res, bd, c.Config)
	return res, rep
}

// Rerun performs the host full-band extension for a failed check.
func (c *Checker) Rerun(query, target []byte, h0 int) align.ExtendResult {
	if c.Fallback != nil {
		return c.Fallback.Extend(query, target, h0)
	}
	c.init()
	return align.ExtendWS(c.ews, query, target, h0, c.Config.Scoring)
}

// Extend implements align.Extender: check, record, rerun on failure.
func (c *Checker) Extend(query, target []byte, h0 int) align.ExtendResult {
	res, rep := c.Check(query, target, h0)
	if c.Stats != nil {
		c.Stats.record(rep)
	}
	if rep.Pass {
		return res
	}
	return c.Rerun(query, target, h0)
}

// ExtendBatch runs every request through the check workflow (with rerun on
// failure) and returns the responses in request order.
func (c *Checker) ExtendBatch(reqs []Request) []Response {
	return c.ExtendBatchInto(reqs, nil)
}

// ExtendBatchInto is ExtendBatch reusing dst's backing array when it is
// large enough — the allocation-free form for long-lived workers.
func (c *Checker) ExtendBatchInto(reqs []Request, dst []Response) []Response {
	if cap(dst) < len(reqs) {
		dst = make([]Response, len(reqs))
	}
	dst = dst[:len(reqs)]
	for i, r := range reqs {
		res, rep := c.Check(r.Q, r.T, r.H0)
		if c.Stats != nil {
			c.Stats.record(rep)
		}
		rerun := !rep.Pass
		if rerun {
			res = c.Rerun(r.Q, r.T, r.H0)
		}
		dst[i] = Response{Tag: r.Tag, Res: res, Rerun: rerun}
	}
	return dst
}

// checkerPool backs the package-level Check function; long-lived callers
// should hold their own Checker.
var checkerPool = sync.Pool{New: func() any { return &Checker{} }}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"seedex/internal/align"
)

// TestGlobalCheckSoundness: passing the global check means the banded
// score equals the full-width global score — on random scorings too.
func TestGlobalCheckSoundness(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := align.Scoring{
			Match:     1 + rng.Intn(2),
			Mismatch:  1 + rng.Intn(5),
			GapOpen:   rng.Intn(7),
			GapExtend: 1 + rng.Intn(2),
		}
		q := randSeq(rng, 1+rng.Intn(70))
		var tg []byte
		if rng.Intn(3) == 0 {
			tg = randSeq(rng, 1+rng.Intn(90))
		} else {
			tg = mutate(rng, q, 0.05, 0.04)
			if len(tg) == 0 {
				tg = randSeq(rng, 5)
			}
		}
		h0 := rng.Intn(120)
		w := 1 + int(wRaw)%20
		cfg := Config{Band: w, Scoring: sc, Kind: Global}
		res, rep := CheckGlobal(q, tg, h0, cfg)
		if !rep.Pass {
			return true
		}
		full := align.Global(q, tg, h0, sc)
		if res.Score != full.Score {
			t.Logf("seed=%d w=%d h0=%d: banded %d != full %d (bound %d)", seed, w, h0, res.Score, full.Score, rep.Bound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2500}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckedGlobalAlwaysExact: check + rerun always reproduces the
// full-width score.
func TestCheckedGlobalAlwaysExact(t *testing.T) {
	sc := align.DefaultScoring()
	rng := rand.New(rand.NewSource(9))
	reruns := 0
	for trial := 0; trial < 400; trial++ {
		q := randSeq(rng, 1+rng.Intn(80))
		tg := mutate(rng, q, 0.04, 0.03)
		if len(tg) == 0 {
			continue
		}
		cfg := Config{Band: 4, Scoring: sc, Kind: Global}
		res, rep := CheckedGlobal(q, tg, 30, cfg)
		if rep.Rerun {
			reruns++
		}
		if want := align.Global(q, tg, 30, sc); res.Score != want.Score {
			t.Fatalf("trial %d: checked %d != full %d", trial, res.Score, want.Score)
		}
	}
	t.Logf("global reruns: %d/400 at w=4", reruns)
}

// TestGlobalCheckPassesOnSimilarPairs: the point of §VII-D — between
// chained anchors the sequences are similar, so tiny bands carry proofs.
func TestGlobalCheckPassesOnSimilarPairs(t *testing.T) {
	sc := align.DefaultScoring()
	rng := rand.New(rand.NewSource(10))
	passes := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		q := randSeq(rng, 100)
		tg := append([]byte(nil), q...)
		tg[rng.Intn(len(tg))] = byte(rng.Intn(4)) // one substitution
		cfg := Config{Band: 5, Scoring: sc, Kind: Global}
		_, rep := CheckGlobal(q, tg, 50, cfg)
		if rep.Pass {
			passes++
		}
	}
	if passes < trials*9/10 {
		t.Fatalf("only %d/%d similar pairs proven at w=5", passes, trials)
	}
}

func TestGlobalCheckFullCover(t *testing.T) {
	sc := align.DefaultScoring()
	q := randSeq(rand.New(rand.NewSource(11)), 8)
	res, rep := CheckGlobal(q, q, 10, Config{Band: 20, Scoring: sc, Kind: Global})
	if !rep.Pass || res.Score != 10+8 {
		t.Fatalf("full-cover global: %+v %+v", res, rep)
	}
}

func TestGlobalCheckInfeasibleBand(t *testing.T) {
	sc := align.DefaultScoring()
	q := randSeq(rand.New(rand.NewSource(12)), 5)
	tg := randSeq(rand.New(rand.NewSource(13)), 40)
	res, rep := CheckedGlobal(q, tg, 10, Config{Band: 3, Scoring: sc, Kind: Global})
	if !rep.Rerun {
		t.Fatal("infeasible band must rerun")
	}
	if want := align.Global(q, tg, 10, sc); res.Score != want.Score {
		t.Fatalf("rerun score %d != full %d", res.Score, want.Score)
	}
}

package core

import (
	"strings"
	"testing"

	"seedex/internal/align"
)

func TestNamedExtender(t *testing.T) {
	for _, name := range ExtenderNames() {
		ext, err := NamedExtender(name, 11)
		if err != nil {
			t.Fatalf("NamedExtender(%q): %v", name, err)
		}
		// Every engine must support the batch and session protocols the
		// pipeline and the server rely on.
		if _, ok := ext.(align.BatchExtender); !ok {
			t.Fatalf("%q is not a BatchExtender", name)
		}
		se, ok := ext.(align.SessionExtender)
		if !ok {
			t.Fatalf("%q is not a SessionExtender", name)
		}
		q := []byte{0, 1, 2, 3, 0, 1, 2, 3}
		got := se.Session().Extend(q, q, 10)
		want := ext.Extend(q, q, 10)
		if got != want {
			t.Fatalf("%q: session result %+v != shared result %+v", name, got, want)
		}
	}
	if ext, err := NamedExtender(ExtenderSeedEx, 11); err != nil {
		t.Fatal(err)
	} else if _, ok := ext.(*SeedEx); !ok {
		t.Fatalf("seedex engine has type %T, want *SeedEx", ext)
	}

	_, err := NamedExtender("bogus", 11)
	if err == nil {
		t.Fatal("unknown extender must error")
	}
	for _, want := range append(ExtenderNames(), `"bogus"`) {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}
}

// Package fpga is a discrete-event simulator of the SeedEx cloud-FPGA
// system architecture (paper §V, Figure 7): memory channels with AXI
// latency, per-channel SeedEx clusters, input prefetch buffers, the
// per-core arbiter, the shared edit machine of each SeedEx core, and 5:1
// output coalescing. It measures end-to-end throughput, core utilization
// and memory stalls for arbitrary workloads, and is the engine behind the
// iso-area throughput comparison of Figure 16c.
package fpga

import (
	"fmt"

	"seedex/internal/hw"
)

// Config describes one FPGA image.
type Config struct {
	// Clusters is the number of memory channels with a SeedEx cluster
	// (the f1.2xlarge image uses 3; the AWS shell exposes 4 channels).
	Clusters int
	// CoresPerCluster is the number of SeedEx clients per channel (4,
	// chosen to balance memory bandwidth against area, §V-A).
	CoresPerCluster int
	// BSWPerCore is the number of BSW cores per SeedEx core (3, matched
	// to the ~1/3 edit-machine demand, §VII-A).
	BSWPerCore int
	// SidedBand is the one-sided band w of each BSW core; the array has
	// 2w+1 PEs. For the full-band baseline set it so 2w+1 covers the
	// query (e.g. 50 -> 101 PEs).
	SidedBand int
	// EditMachines is the number of edit machines per SeedEx core (1;
	// 0 for the full-band baseline, which needs no checks).
	EditMachines int
	// AXILatency is the memory access latency in cycles (~40 on AWS AXI4).
	AXILatency int
	// PrefetchDepth is the number of extensions prefetched per BSW core.
	PrefetchDepth int
	// CoalesceRatio is results per 512-bit output line (5).
	CoalesceRatio int
}

// DefaultSeedEx is the shipping configuration: 3 clusters x 4 SeedEx
// cores x 3 BSW cores = 36 narrow-band arrays with 41 PEs each.
func DefaultSeedEx() Config {
	return Config{
		Clusters: 3, CoresPerCluster: 4, BSWPerCore: 3,
		SidedBand: 20, EditMachines: 1,
		AXILatency: 40, PrefetchDepth: 4, CoalesceRatio: 5,
	}
}

// FullBandBaseline is the iso-area comparison point: 9 full-band BSW
// cores (101 PEs), which is as many as the paper could route.
func FullBandBaseline() Config {
	return Config{
		Clusters: 3, CoresPerCluster: 3, BSWPerCore: 1,
		SidedBand: 50, EditMachines: 0,
		AXILatency: 40, PrefetchDepth: 4, CoalesceRatio: 5,
	}
}

// PEs returns the PE count of each BSW array.
func (c Config) PEs() int { return 2*c.SidedBand + 1 }

// BSWCores returns the total BSW array count of the image.
func (c Config) BSWCores() int { return c.Clusters * c.CoresPerCluster * c.BSWPerCore }

// LUTs returns the modeled LUT budget of the image's compute.
func (c Config) LUTs() float64 {
	if c.EditMachines == 0 {
		return float64(c.BSWCores()) * hw.BSWCoreLUT(c.PEs())
	}
	return float64(c.Clusters*c.CoresPerCluster) * hw.SeedExCoreLUT(c.PEs(), c.BSWPerCore)
}

// Job is one seed extension offered to the accelerator.
type Job struct {
	QLen, TLen int
	// NeedsEdit routes the extension through the edit machine (the
	// thresholding outcome fell between S1 and S2).
	NeedsEdit bool
	// Rerun marks extensions whose checks fail; they are returned to the
	// host (counted, but they do not occupy extra FPGA time).
	Rerun bool
}

// Report summarizes a simulation.
type Report struct {
	Cycles          int64
	Extensions      int64
	Reruns          int64
	ThroughputPerS  float64 // extensions per second at the SeedEx clock
	BSWBusy         int64   // total busy cycles across BSW cores
	BSWUtilization  float64
	MemStallCycles  int64 // cycles BSW cores waited on input
	EditBusy        int64
	EditUtilization float64
	InputLines      int64
	OutputLines     int64
}

// String renders a compact summary.
func (r Report) String() string {
	return fmt.Sprintf("%d exts in %d cycles: %.2f M ext/s, BSW util %.1f%%, mem stalls %d, edit util %.1f%%",
		r.Extensions, r.Cycles, r.ThroughputPerS/1e6, 100*r.BSWUtilization, r.MemStallCycles, 100*r.EditUtilization)
}

// serviceCycles is the BSW array service latency for one extension
// (systolic model: progressive init + wavefront sweep + reduction).
func (c Config) serviceCycles(q, t int) int64 {
	if eff := q + c.SidedBand; eff < t {
		t = eff
	}
	return int64(2*c.PEs() + q + t + 1)
}

// editCycles is the edit-machine service latency: the half-width array
// sweeps the below-band region one row per cycle.
func (c Config) editCycles(q, t int) int64 {
	rows := t - c.SidedBand
	if rows < 0 {
		rows = 0
	}
	return int64((c.PEs()+1)/2 + rows)
}

// inLines is the number of 512-bit memory lines one job's 3-bit-encoded
// input pair occupies.
func inLines(q, t int) int64 {
	bits := (q + t) * 3
	return int64((bits + 511) / 512)
}

// Simulate runs the workload through the image and reports steady-state
// behaviour. Jobs are distributed round-robin over clusters and, within a
// cluster, dispatched by the arbiter to the earliest-free BSW core.
func Simulate(cfg Config, jobs []Job) Report {
	rep := Report{}
	if len(jobs) == 0 || cfg.Clusters == 0 {
		return rep
	}
	perCluster := make([][]Job, cfg.Clusters)
	for i, j := range jobs {
		c := i % cfg.Clusters
		perCluster[c] = append(perCluster[c], j)
	}
	var maxCycles int64
	for c := 0; c < cfg.Clusters; c++ {
		cy := simulateCluster(cfg, perCluster[c], &rep)
		if cy > maxCycles {
			maxCycles = cy
		}
	}
	rep.Cycles = maxCycles
	rep.Extensions = int64(len(jobs))
	if maxCycles > 0 {
		rep.ThroughputPerS = float64(rep.Extensions) / (float64(maxCycles) * hw.ClockNs * 1e-9)
		rep.BSWUtilization = float64(rep.BSWBusy) / float64(int64(cfg.BSWCores())*maxCycles)
		if n := int64(cfg.Clusters*cfg.CoresPerCluster*cfg.EditMachines) * maxCycles; n > 0 {
			rep.EditUtilization = float64(rep.EditBusy) / float64(n)
		}
	}
	return rep
}

func simulateCluster(cfg Config, jobs []Job, rep *Report) int64 {
	nBSW := cfg.CoresPerCluster * cfg.BSWPerCore
	coreFree := make([]int64, nBSW)                // next cycle each BSW core is free
	editFree := make([]int64, cfg.CoresPerCluster) // per-SeedEx-core edit machine
	var chanFree int64                             // memory channel bandwidth (1 line/cycle)
	fetchDone := make([]int64, len(jobs))
	var outPending int64 // results awaiting coalescing into one line
	var done int64

	// Prefetch pipeline: job k's fetch is issued as soon as bandwidth
	// allows, but at most PrefetchDepth jobs ahead of the consuming
	// core's progress; with the paper's buffering this never throttles,
	// so we model the bandwidth and latency terms directly.
	for k, j := range jobs {
		lines := inLines(j.QLen, j.TLen)
		rep.InputLines += lines
		issue := chanFree
		chanFree += lines // one line per cycle of channel occupancy
		fetchDone[k] = issue + lines + int64(cfg.AXILatency)
	}

	for k, j := range jobs {
		// Arbiter: earliest-free BSW core.
		best := 0
		for i := 1; i < nBSW; i++ {
			if coreFree[i] < coreFree[best] {
				best = i
			}
		}
		start := coreFree[best]
		if fetchDone[k] > start {
			rep.MemStallCycles += fetchDone[k] - start
			start = fetchDone[k]
		}
		svc := cfg.serviceCycles(j.QLen, j.TLen)
		finish := start + svc
		coreFree[best] = finish
		rep.BSWBusy += svc

		if j.NeedsEdit && cfg.EditMachines > 0 {
			ei := best / cfg.BSWPerCore
			es := editFree[ei]
			if finish > es {
				es = finish
			}
			ec := cfg.editCycles(j.QLen, j.TLen)
			editFree[ei] = es + ec
			rep.EditBusy += ec
			finish = es + ec
		}
		if j.Rerun {
			rep.Reruns++
		}
		// Output coalescing: every CoalesceRatio results share one
		// writeback line on the channel.
		outPending++
		if outPending == int64(cfg.CoalesceRatio) {
			outPending = 0
			rep.OutputLines++
		}
		if finish > done {
			done = finish
		}
	}
	if outPending > 0 {
		rep.OutputLines++
	}
	return done
}

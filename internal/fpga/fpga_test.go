package fpga

import (
	"math/rand"
	"testing"
)

func workload(n int, rng *rand.Rand) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		q := 60 + rng.Intn(60)
		jobs[i] = Job{
			QLen:      q,
			TLen:      q + rng.Intn(30),
			NeedsEdit: rng.Float64() < 1.0/3,
			Rerun:     rng.Float64() < 0.02,
		}
	}
	return jobs
}

func TestIsoAreaThroughputSpeedup(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	jobs := workload(20000, rng)
	se := Simulate(DefaultSeedEx(), jobs)
	fb := Simulate(FullBandBaseline(), jobs)
	if se.ThroughputPerS <= fb.ThroughputPerS {
		t.Fatalf("SeedEx %.2g must beat full-band %.2g", se.ThroughputPerS, fb.ThroughputPerS)
	}
	speedup := se.ThroughputPerS / fb.ThroughputPerS
	if speedup < 4.0 || speedup > 8.5 {
		t.Fatalf("iso-area speedup %.2f outside plausible band around the paper's 6.0x", speedup)
	}
	t.Logf("iso-area speedup %.2fx (paper: 6.0x); SeedEx %.1f M ext/s, full-band %.1f M ext/s",
		speedup, se.ThroughputPerS/1e6, fb.ThroughputPerS/1e6)
	// Also iso-area in the LUT model: the two images should be within 2x
	// of each other (the paper's full-band count was routability-limited).
	a, b := DefaultSeedEx().LUTs(), FullBandBaseline().LUTs()
	if a/b > 2.5 || b/a > 2.5 {
		t.Fatalf("configs not roughly iso-area: %.0f vs %.0f LUTs", a, b)
	}
}

func TestMemoryLatencyHidden(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	jobs := workload(10000, rng)
	rep := Simulate(DefaultSeedEx(), jobs)
	// Paper: "memory access time is completely hidden... near-100%
	// utilization". Our prefetch model should stall on at most the
	// pipeline warmup.
	if rep.BSWUtilization < 0.9 {
		t.Fatalf("BSW utilization %.2f, want near 1 (stalls %d)", rep.BSWUtilization, rep.MemStallCycles)
	}
	if rep.MemStallCycles > int64(len(jobs)) {
		t.Fatalf("memory stalls %d not hidden", rep.MemStallCycles)
	}
}

func TestThroughputScalesWithClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	jobs := workload(30000, rng)
	var prev float64
	for _, clusters := range []int{1, 2, 3} {
		cfg := DefaultSeedEx()
		cfg.Clusters = clusters
		rep := Simulate(cfg, jobs)
		if prev > 0 {
			ratio := rep.ThroughputPerS / prev
			if ratio < 1.6 || ratio > 2.4 {
				// successive +1 cluster from 1->2 should be ~2x; 2->3 ~1.5x
				if clusters == 3 && ratio > 1.3 && ratio < 1.7 {
					prev = rep.ThroughputPerS
					continue
				}
				t.Fatalf("clusters=%d: scaling ratio %.2f not ~linear", clusters, ratio)
			}
		}
		prev = rep.ThroughputPerS
	}
}

func TestEditMachineNotABottleneck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	jobs := workload(10000, rng)
	rep := Simulate(DefaultSeedEx(), jobs)
	// The 3:1 BSW:edit provisioning keeps the edit machine comfortably
	// below saturation for the ~1/3 edit-check demand.
	if rep.EditUtilization >= 0.95 {
		t.Fatalf("edit machine saturated: %.2f", rep.EditUtilization)
	}
	if rep.EditBusy == 0 {
		t.Fatal("edit machine never used")
	}
}

func TestRerunAccounting(t *testing.T) {
	jobs := []Job{{QLen: 100, TLen: 120, Rerun: true}, {QLen: 100, TLen: 120}}
	rep := Simulate(DefaultSeedEx(), jobs)
	if rep.Reruns != 1 {
		t.Fatalf("reruns = %d, want 1", rep.Reruns)
	}
	if rep.Extensions != 2 {
		t.Fatalf("extensions = %d, want 2", rep.Extensions)
	}
}

func TestOutputCoalescing(t *testing.T) {
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = Job{QLen: 100, TLen: 110}
	}
	cfg := DefaultSeedEx()
	cfg.Clusters = 1
	rep := Simulate(cfg, jobs)
	// 12 results at 5:1 = 3 output lines.
	if rep.OutputLines != 3 {
		t.Fatalf("output lines = %d, want 3", rep.OutputLines)
	}
	if rep.InputLines == 0 {
		t.Fatal("no input lines accounted")
	}
}

func TestEmptyWorkload(t *testing.T) {
	rep := Simulate(DefaultSeedEx(), nil)
	if rep.Cycles != 0 || rep.Extensions != 0 {
		t.Fatalf("empty workload: %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

package refstore

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seedex/internal/faults"
	"seedex/internal/fmindex"
)

// chaosSeeds mirrors the driver suite: SEEDEX_CHAOS_SEED pins one seed
// (the CI chaos matrix), otherwise a small fixed matrix runs.
func chaosSeeds(t *testing.T) []int64 {
	if v := os.Getenv("SEEDEX_CHAOS_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("SEEDEX_CHAOS_SEED=%q: %v", v, err)
		}
		return []int64{s}
	}
	return []int64{1, 7, 1337}
}

func TestStoreOpenAndAcquire(t *testing.T) {
	path, ref, ix := writeFixture(t, 10, 3000)
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	g := s.Acquire()
	if g == nil {
		t.Fatal("no generation")
	}
	defer g.Release()
	if g.ID() != 1 {
		t.Fatalf("initial generation is %d, want 1", g.ID())
	}
	if !sameReference(ref, g.Ref()) || !sameIndex(ix, g.Index()) {
		t.Fatal("loaded generation does not match the built fixture")
	}
	if mmapSupported && g.MappedBytes() == 0 {
		t.Fatal("mmap platform loaded without a mapping")
	}
	st := s.Status()
	if st.Generation != 1 || st.DegradedReload || st.Contigs != 2 {
		t.Fatalf("status: %+v", st)
	}
}

func TestStoreOpenErrors(t *testing.T) {
	if _, err := Open("/nonexistent/ref.rix", Options{}); err == nil {
		t.Fatal("open of a missing file succeeded")
	}
	dir := t.TempDir()
	bad := dir + "/bad.rix"
	os.WriteFile(bad, []byte("SEDXRIX2 but then garbage follows here"), 0o644)
	if _, err := Open(bad, Options{}); err == nil {
		t.Fatal("open of a garbage file succeeded")
	}
}

// TestStoreReloadSwapsGenerations proves the core swap semantics: a
// reload publishes a new generation, old handles keep working until
// released, and the index contents stay bit-identical when the file is
// unchanged.
func TestStoreReloadSwapsGenerations(t *testing.T) {
	path, _, _ := writeFixture(t, 11, 3000)
	var logs []string
	s, err := Open(path, Options{Logf: func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	old := s.Acquire()
	oldText := old.Index().Text()

	gen, err := s.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("reload produced generation %d, want 2", gen)
	}
	fresh := s.Acquire()
	if fresh.ID() != 2 {
		t.Fatalf("acquire after reload returned generation %d", fresh.ID())
	}
	if !sameIndex(old.Index(), fresh.Index()) {
		t.Fatal("generations over the same file are not bit-identical")
	}

	// The old handle still reads valid memory until released.
	q := oldText[50:90]
	if iv := old.Index().Count(q); iv.Size() == 0 {
		t.Fatal("retired-but-held generation lost its data")
	}
	old.Release()
	fresh.Release()

	st := s.Status()
	if st.Reloads != 1 || st.ReloadFailures != 0 || st.Rollbacks != 0 || st.DegradedReload {
		t.Fatalf("status after clean reload: %+v", st)
	}
	if len(logs) == 0 || !strings.Contains(strings.Join(logs, "\n"), "generation 2 live") {
		t.Fatalf("lifecycle log missing: %q", logs)
	}
}

// TestStoreReloadPicksUpNewFile republishes a different reference and
// checks the swap actually serves the new content.
func TestStoreReloadPicksUpNewFile(t *testing.T) {
	dir := t.TempDir()
	_, _, path := fixtureAt(t, dir, 12, 2000)
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ref2, ix2 := buildFixture(t, 99, 2500)
	if _, err := WriteFile(path, ref2, ix2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	g := s.Acquire()
	defer g.Release()
	if !sameIndex(ix2, g.Index()) || !sameReference(ref2, g.Ref()) {
		t.Fatal("reload did not pick up the republished file")
	}
}

// publish replaces the index file the way production does: write-aside
// then rename. Rewriting the path in place would mutate the same inode
// underneath a live MAP_SHARED generation — the failure mode the
// rename-based WriteFile protocol exists to rule out.
func publish(t *testing.T, path string, data []byte) {
	t.Helper()
	tmp := path + ".pub"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRollback is the rollback contract: when every attempt fails
// (file replaced by garbage), the serving generation is untouched, the
// store reports degraded, and a later good file recovers it.
func TestStoreRollback(t *testing.T) {
	dir := t.TempDir()
	ref, ix, path := fixtureAt(t, dir, 13, 2000)
	s, err := Open(path, Options{MaxAttempts: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Clobber the published file (rename-replace, as a buggy or hostile
	// publisher would — the serving mapping's inode is untouched).
	publish(t, path, good[:len(good)/3])
	gen, rerr := s.Reload()
	if rerr == nil {
		t.Fatal("reload of a truncated file succeeded")
	}
	if gen != 1 {
		t.Fatalf("rollback left generation %d serving, want 1", gen)
	}
	g := s.Acquire()
	if g.ID() != 1 || !sameIndex(ix, g.Index()) || !sameReference(ref, g.Ref()) {
		t.Fatal("serving generation damaged by failed reload")
	}
	g.Release()
	st := s.Status()
	if !st.DegradedReload || st.Rollbacks != 1 || st.ReloadFailures != 2 || st.LastReloadError == "" {
		t.Fatalf("status after rollback: %+v", st)
	}

	// Republish the good bytes: the next reload recovers.
	publish(t, path, good)
	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.DegradedReload || st.Generation != 2 {
		t.Fatalf("status after recovery: %+v", st)
	}
}

// TestStoreReloadChaosStorm is the headline drill: a reload storm with
// every index fault class injecting at a high rate, concurrent readers
// querying the index throughout. Required invariants: no reader ever
// observes a non-current generation's memory go away underneath it
// (every query on an acquired handle succeeds and matches the
// original), every failed reload rolls back, and the run replays
// bit-identically from its seed.
func TestStoreReloadChaosStorm(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			path, _, ix := writeFixture(t, seed, 4000)
			inj := faults.NewIndexInjector(faults.UniformIndex(seed, 0.35))
			s, err := Open(path, Options{
				MaxAttempts:  2,
				RetryBackoff: 100 * time.Microsecond,
				Chaos:        inj,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			// Queries answered against the pristine index up front; the
			// storm must keep returning exactly these.
			type probe struct {
				q    []byte
				want fmindex.Interval
			}
			text := ix.Text()
			probes := make([]probe, 16)
			for i := range probes {
				beg := (i * 211) % (len(text) - 64)
				q := text[beg : beg+48]
				probes[i] = probe{q: q, want: ix.Count(q)}
			}

			var stop atomic.Bool
			var queries, mismatches atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; !stop.Load(); i++ {
						g := s.Acquire()
						if g == nil {
							mismatches.Add(1)
							return
						}
						p := probes[(w+i)%len(probes)]
						if got := g.Index().Count(p.q); got != p.want {
							mismatches.Add(1)
						}
						queries.Add(1)
						g.Release()
					}
				}(w)
			}

			const storms = 30
			failed := 0
			for i := 0; i < storms; i++ {
				if _, err := s.Reload(); err != nil {
					failed++
				}
			}
			stop.Store(true)
			wg.Wait()

			st := s.Status()
			if mismatches.Load() != 0 {
				t.Fatalf("%d of %d queries diverged during the storm", mismatches.Load(), queries.Load())
			}
			if queries.Load() == 0 {
				t.Fatal("readers never ran")
			}
			if int(st.Rollbacks) != failed {
				t.Fatalf("%d reloads failed but %d rollbacks recorded", failed, st.Rollbacks)
			}
			if st.Reloads+st.Rollbacks != storms {
				t.Fatalf("reloads %d + rollbacks %d != %d triggers", st.Reloads, st.Rollbacks, storms)
			}
			if inj.Counters().Total() == 0 {
				t.Fatal("chaos injector never fired at rate 0.35")
			}
			// The final state serves a valid generation either way.
			g := s.Acquire()
			if g == nil {
				t.Fatal("no serving generation after the storm")
			}
			if got := g.Index().Count(probes[0].q); got != probes[0].want {
				t.Fatalf("post-storm index diverged: %+v != %+v", got, probes[0].want)
			}
			g.Release()

			// Replay: the same seed draws the same fault sequence.
			inj2 := faults.NewIndexInjector(faults.UniformIndex(seed, 0.35))
			for att := int64(1); att <= s.attempts.Load(); att++ {
				inj2.ReloadPlan(att)
			}
			if inj.Counters() != inj2.Counters() {
				t.Fatalf("storm does not replay: %+v vs %+v", inj.Counters(), inj2.Counters())
			}
		})
	}
}

// TestStoreCopyLoadPath exercises the NoMmap fallback end to end.
func TestStoreCopyLoadPath(t *testing.T) {
	path, ref, ix := writeFixture(t, 14, 2000)
	s, err := Open(path, Options{NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := s.Acquire()
	defer g.Release()
	if g.MappedBytes() != 0 {
		t.Fatal("copy load reported a mapping")
	}
	if !sameIndex(ix, g.Index()) || !sameReference(ref, g.Ref()) {
		t.Fatal("copy load diverged from the fixture")
	}
}

func TestStoreClose(t *testing.T) {
	path, _, _ := writeFixture(t, 15, 1500)
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	held := s.Acquire()
	s.Close()
	if g := s.Acquire(); g != nil {
		t.Fatal("acquire after close returned a generation")
	}
	if _, err := s.Reload(); err == nil {
		t.Fatal("reload after close succeeded")
	}
	// The held handle still reads valid memory, then releases cleanly.
	if held.Index().Len() == 0 {
		t.Fatal("held generation lost data after close")
	}
	held.Release()
	s.Close() // double close is a no-op
}

//go:build !unix

package refstore

import (
	"errors"
	"os"
)

// Non-unix fallback: no mmap, so the store reads the file into memory
// instead (same validation, one private copy per generation).
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("refstore: mmap unsupported on this platform")
}

func munmapFile(b []byte) error { return nil }

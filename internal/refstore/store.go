package refstore

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"seedex/internal/bwamem"
	"seedex/internal/faults"
	"seedex/internal/fmindex"
	"seedex/internal/obs"
)

// Generation lifecycle. The store serves exactly one generation at a
// time through an atomic pointer; workers acquire refcounted handles,
// so a hot reload publishes the new generation instantly while
// in-flight requests drain on the old one, and the old mapping is
// released only when the last handle drops. A reload that fails — the
// file is corrupt, truncated, the wrong version, or gone — retries with
// backoff and then rolls back: the serving generation is untouched and
// the store reports a degraded-reload state until a reload succeeds.

// Options configures a Store.
type Options struct {
	// NoMmap forces the copy-load path (mmap is the default on
	// platforms that support it).
	NoMmap bool
	// NoWarmup skips the page-touch pass after mapping.
	NoWarmup bool
	// MaxAttempts is the number of load attempts per reload trigger
	// before rolling back (default 3).
	MaxAttempts int
	// RetryBackoff is the sleep before the second attempt, doubling per
	// retry (default 25ms).
	RetryBackoff time.Duration
	// Chaos injects index-file faults into reload attempts (never the
	// initial open), keyed by a deterministic per-attempt draw.
	Chaos *faults.IndexInjector
	// Trace records KindIndexReload spans for reload outcomes.
	Trace *obs.Tracer
	// Logf receives one line per lifecycle event (nil = silent).
	Logf func(format string, args ...any)
}

// Generation is one immutable loaded index: the reference, the FM
// index over it, and (on the mmap path) the mapping both alias.
type Generation struct {
	id    uint64
	ref   *bwamem.Reference
	index *fmindex.Index
	info  Info

	mapped []byte // nil on the copy-load path
	load   time.Duration
	warmup time.Duration

	refs    atomic.Int64 // the store's own hold counts as 1
	retired atomic.Bool
}

// ID returns the generation number (1 for the initial open).
func (g *Generation) ID() uint64 { return g.id }

// Ref returns the contig table. Shared and immutable.
func (g *Generation) Ref() *bwamem.Reference { return g.ref }

// Index returns the FM index. Shared and immutable; valid until the
// handle that produced it is released.
func (g *Generation) Index() *fmindex.Index { return g.index }

// Info returns the validated container metadata.
func (g *Generation) Info() Info { return g.info }

// MappedBytes returns the size of the mmap backing this generation
// (0 on the copy-load path).
func (g *Generation) MappedBytes() int64 { return int64(len(g.mapped)) }

// LoadDuration is the validate-and-assemble time for this generation.
func (g *Generation) LoadDuration() time.Duration { return g.load }

// WarmupDuration is the page-touch pass time (0 when skipped).
func (g *Generation) WarmupDuration() time.Duration { return g.warmup }

// Release drops one reference. When the generation has been retired
// and the last reference drops, the mapping is unmapped — after this
// call the Index and Ref must not be touched.
func (g *Generation) Release() {
	if g == nil {
		return
	}
	if g.refs.Add(-1) == 0 && g.retired.Load() {
		g.unmap()
	}
}

func (g *Generation) unmap() {
	if g.mapped != nil {
		munmapFile(g.mapped)
		g.mapped = nil
	}
}

// warmupSink defeats dead-code elimination of the page-touch pass.
var warmupSink atomic.Uint64

// touchPages walks the mapping one page at a time so the index is
// resident before the first request pays the fault.
func touchPages(b []byte) {
	const page = 4096
	var sum uint64
	for i := 0; i < len(b); i += page {
		sum += uint64(b[i])
	}
	if n := len(b); n > 0 {
		sum += uint64(b[n-1])
	}
	warmupSink.Add(sum)
}

// Store owns the generation lifecycle for one index file path.
type Store struct {
	path string
	opts Options

	reloadMu sync.Mutex // serializes reload triggers, not reads
	cur      atomic.Pointer[Generation]
	nextID   atomic.Uint64
	attempts atomic.Int64 // total load attempts (chaos draw key)

	reloads   atomic.Int64 // successful reloads (excludes initial open)
	failures  atomic.Int64 // failed load attempts
	rollbacks atomic.Int64 // reload triggers that exhausted retries
	degraded  atomic.Bool  // last reload trigger rolled back
	reloading atomic.Bool  // a Reload trigger is in flight right now

	lastErrMu sync.Mutex
	lastErr   string

	closed atomic.Bool
}

// Status is a point-in-time snapshot of the store for /healthz,
// metrics, and operator tooling.
type Status struct {
	Path            string               `json:"path"`
	Generation      uint64               `json:"generation"`
	FileBytes       int64                `json:"file_bytes"`
	MappedBytes     int64                `json:"mapped_bytes"`
	Contigs         int                  `json:"contigs"`
	LoadMs          float64              `json:"load_ms"`
	WarmupMs        float64              `json:"warmup_ms"`
	Reloads         int64                `json:"reloads"`
	ReloadFailures  int64                `json:"reload_failures"`
	Rollbacks       int64                `json:"rollbacks"`
	DegradedReload  bool                 `json:"degraded_reload"`
	LastReloadError string               `json:"last_reload_error,omitempty"`
	ChaosInjected   faults.IndexCounters `json:"chaos_injected"`
}

// Open loads the container at path and returns a serving Store. The
// initial open is never subjected to chaos and does not retry: a bad
// file at startup is an operator error, not a transient.
//
// Publication contract: the file at path must only ever be replaced by
// rename (WriteFile does this), never rewritten in place — a live
// MAP_SHARED generation aliases the inode it opened, and an in-place
// rewrite would mutate the memory every in-flight request is reading.
func Open(path string, opts Options) (*Store, error) {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 25 * time.Millisecond
	}
	s := &Store{path: path, opts: opts}
	gen, err := s.loadFile(path)
	if err != nil {
		return nil, err
	}
	gen.refs.Store(1) // the store's hold
	s.cur.Store(gen)
	s.logf("refstore: generation %d serving from %s (%d contigs, %s, load %s, warmup %s)",
		gen.id, path, gen.info.Contigs, sizeOf(gen.info.FileBytes), gen.load.Round(time.Millisecond), gen.warmup.Round(time.Millisecond))
	return s, nil
}

// Reloading reports whether a Reload trigger is in flight right now,
// so serving-tier workers can flag requests that overlap a reload.
func (s *Store) Reloading() bool { return s.reloading.Load() }

// Acquire returns a refcounted handle on the current generation. The
// double-check loop closes the race against a concurrent swap: a
// handle is only returned if the generation was still current after
// the increment, so a retired generation can never be revived.
func (s *Store) Acquire() *Generation {
	for {
		g := s.cur.Load()
		if g == nil {
			return nil
		}
		g.refs.Add(1)
		if s.cur.Load() == g {
			return g
		}
		g.Release()
	}
}

// Reload loads the file fresh and swaps it in. On failure it retries
// with backoff up to MaxAttempts, then rolls back: the current
// generation keeps serving and the store turns degraded until a later
// reload succeeds. Returns the serving generation id either way.
func (s *Store) Reload() (uint64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.closed.Load() {
		return 0, fmt.Errorf("refstore: store closed")
	}
	s.reloading.Store(true)
	defer s.reloading.Store(false)

	backoff := s.opts.RetryBackoff
	var lastErr error
	for try := 0; try < s.opts.MaxAttempts; try++ {
		start := time.Now()
		gen, err := s.loadAttempt()
		if err == nil {
			gen.refs.Store(1)
			old := s.cur.Swap(gen)
			s.reloads.Add(1)
			s.degraded.Store(false)
			s.setLastErr(nil)
			s.span(start, gen.id, true)
			s.logf("refstore: generation %d live (was %d, load %s, warmup %s)",
				gen.id, old.id, gen.load.Round(time.Millisecond), gen.warmup.Round(time.Millisecond))
			old.retired.Store(true)
			old.Release() // drop the store's hold; unmaps once drained
			return gen.id, nil
		}
		lastErr = err
		s.failures.Add(1)
		s.logf("refstore: reload attempt %d/%d failed: %v", try+1, s.opts.MaxAttempts, err)
		if try < s.opts.MaxAttempts-1 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}

	cur := s.cur.Load()
	s.rollbacks.Add(1)
	s.degraded.Store(true)
	s.setLastErr(lastErr)
	s.span(time.Now(), cur.id, false)
	err := fmt.Errorf("refstore: reload rolled back after %d attempts, still serving generation %d: %w",
		s.opts.MaxAttempts, cur.id, lastErr)
	s.logf("%v", err)
	return cur.id, err
}

// loadAttempt is one chaos-subjected load. Corruption classes damage a
// private in-memory copy of the file — the published file is never
// touched — and the unlink class loads a path that does not exist.
func (s *Store) loadAttempt() (*Generation, error) {
	plan := s.opts.Chaos.ReloadPlan(s.attempts.Add(1))
	switch {
	case plan.Empty():
		return s.loadFile(s.path)
	case plan.Class == faults.IndexUnlink:
		return s.loadFile(s.path + ".vanished")
	default:
		data, err := os.ReadFile(s.path)
		if err != nil {
			return nil, err
		}
		return s.loadBytes(corrupt(data, plan), 0)
	}
}

// corrupt applies one fault plan to a private copy of the file image.
func corrupt(data []byte, plan faults.IndexPlan) []byte {
	if len(data) == 0 {
		return data
	}
	switch plan.Class {
	case faults.IndexTruncate:
		cut := int(plan.Frac * float64(len(data)))
		if cut >= len(data) {
			cut = len(data) - 1
		}
		return data[:cut]
	case faults.IndexBitFlip:
		if len(data) > headerBytes {
			pos := headerBytes + int(plan.Frac*float64(len(data)-headerBytes))
			data[pos] ^= 1 << (plan.Bit % 8)
		}
	case faults.IndexHeaderMismatch:
		pos := int(plan.Frac * float64(min(headerBytes, len(data))))
		data[pos] ^= 0x5a
	}
	return data
}

// loadFile validates and assembles one generation from path, via mmap
// when available (the zero-copy steady state) or a private read.
func (s *Store) loadFile(path string) (*Generation, error) {
	if s.opts.NoMmap || !mmapSupported {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return s.loadBytes(data, 0)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < headerBytes {
		return nil, fmt.Errorf("refstore: %s is %d bytes, too short for an index", path, st.Size())
	}
	mapped, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("refstore: mmap %s: %w", path, err)
	}
	gen, err := s.loadBytes(mapped, int64(len(mapped)))
	if err != nil {
		munmapFile(mapped)
		return nil, err
	}
	gen.mapped = mapped
	gen.info.Path = path
	return gen, nil
}

// loadBytes runs validation + assembly over one container image.
// mappedLen > 0 marks the image as an mmap for warmup accounting.
func (s *Store) loadBytes(data []byte, mappedLen int64) (*Generation, error) {
	t0 := time.Now()
	ref, ix, info, err := Decode(data)
	if err != nil {
		return nil, err
	}
	gen := &Generation{
		id:    s.nextID.Add(1),
		ref:   ref,
		index: ix,
		info:  info,
		load:  time.Since(t0),
	}
	if mappedLen > 0 && !s.opts.NoWarmup {
		w0 := time.Now()
		touchPages(data)
		gen.warmup = time.Since(w0)
	}
	gen.info.Path = s.path
	return gen, nil
}

// Status snapshots the store.
func (s *Store) Status() Status {
	if s == nil {
		return Status{}
	}
	st := Status{
		Path:           s.path,
		Reloads:        s.reloads.Load(),
		ReloadFailures: s.failures.Load(),
		Rollbacks:      s.rollbacks.Load(),
		DegradedReload: s.degraded.Load(),
		ChaosInjected:  s.opts.Chaos.Counters(),
	}
	s.lastErrMu.Lock()
	st.LastReloadError = s.lastErr
	s.lastErrMu.Unlock()
	if g := s.Acquire(); g != nil {
		st.Generation = g.id
		st.FileBytes = g.info.FileBytes
		st.MappedBytes = g.MappedBytes()
		st.Contigs = g.info.Contigs
		st.LoadMs = float64(g.load) / 1e6
		st.WarmupMs = float64(g.warmup) / 1e6
		g.Release()
	}
	return st
}

// Path returns the index file path the store serves from.
func (s *Store) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Close retires the current generation and drops the store's hold.
// Outstanding handles stay valid until their own Release.
func (s *Store) Close() {
	if s == nil || !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if old := s.cur.Swap(nil); old != nil {
		old.retired.Store(true)
		old.Release()
	}
}

func (s *Store) setLastErr(err error) {
	s.lastErrMu.Lock()
	if err == nil {
		s.lastErr = ""
	} else {
		s.lastErr = err.Error()
	}
	s.lastErrMu.Unlock()
}

func (s *Store) span(start time.Time, gen uint64, ok bool) {
	if s.opts.Trace == nil {
		return
	}
	okv := int64(0)
	if ok {
		okv = 1
	}
	// Batch refs are always retained, so every reload outcome lands in
	// the trace ring regardless of request sampling.
	s.opts.Trace.Batch(int64(gen)).Span(obs.KindIndexReload, start, time.Since(start), int64(gen), okv)
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// sizeOf renders a byte count for log lines.
func sizeOf(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

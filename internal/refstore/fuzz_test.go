package refstore

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"seedex/internal/fmindex"
)

// FuzzDecode feeds untrusted bytes to the container validator. The
// contract under fuzzing: no panic, and no allocation driven past the
// input itself — a hostile header may declare sections of any size, but
// every declared extent is checked against the real image before a
// single byte is sliced or copied, so an accepted index can never be
// larger than the bytes that produced it.
func FuzzDecode(f *testing.F) {
	ref, ix := buildFixture(f, 77, 600)
	var buf bytes.Buffer
	if _, err := Encode(&buf, ref, ix, time.Unix(1, 0)); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("SEDXRIX2"))
	f.Add(good[:headerBytes])
	f.Add(good[:len(good)-3])

	// Hostile header: plausible magic/version/CRC, sections declared far
	// past the file end.
	hostile := bytes.Clone(good[:headerBytes])
	binary.LittleEndian.PutUint64(hostile[16:], uint64(headerBytes)) // size = header only
	binary.LittleEndian.PutUint64(hostile[52:], uint64(headerBytes)) // text off
	binary.LittleEndian.PutUint64(hostile[60:], uint64(maxTextLen))  // text len: 8 GiB
	binary.LittleEndian.PutUint64(hostile[80:], uint64(4*int64(maxTextLen)))
	binary.LittleEndian.PutUint32(hostile[92:], fmindex.Checksum(hostile[:92]))
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		refD, ixD, info, err := Decode(data)
		if err != nil {
			return
		}
		if ixD.Len() > len(data) {
			t.Fatalf("accepted index of %d bytes from %d input bytes", ixD.Len(), len(data))
		}
		if info.FileBytes != int64(len(data)) {
			t.Fatalf("info declares %d bytes for a %d-byte input", info.FileBytes, len(data))
		}
		if len(refD.Names) == 0 {
			t.Fatal("accepted reference with no contigs")
		}
	})
}

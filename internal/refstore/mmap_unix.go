//go:build unix

package refstore

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy load path at runtime.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared, so every
// generation holder — all shards, all workers — pages against one
// physical copy of the index.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping made by mmapFile.
func munmapFile(b []byte) error { return syscall.Munmap(b) }

package refstore

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"seedex/internal/bwamem"
	"seedex/internal/fmindex"
	"seedex/internal/genome"
)

// buildFixture makes a small two-contig reference and its index.
func buildFixture(t testing.TB, seed int64, length int) (*bwamem.Reference, *fmindex.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c1 := genome.Simulate(genome.SimConfig{Length: length}, rng)
	c2 := genome.Simulate(genome.SimConfig{Length: length / 2}, rng)
	ref, ix, err := bwamem.BuildIndex([]bwamem.Contig{{Name: "chrA", Seq: c1}, {Name: "chrB", Seq: c2}})
	if err != nil {
		t.Fatal(err)
	}
	return ref, ix
}

// writeFixture publishes the fixture as a container file and returns
// its path.
func writeFixture(t testing.TB, seed int64, length int) (string, *bwamem.Reference, *fmindex.Index) {
	t.Helper()
	ref, ix, path := fixtureAt(t, t.TempDir(), seed, length)
	return path, ref, ix
}

func fixtureAt(t testing.TB, dir string, seed int64, length int) (*bwamem.Reference, *fmindex.Index, string) {
	t.Helper()
	path := filepath.Join(dir, "ref.rix")
	ref, ix := buildFixture(t, seed, length)
	if _, err := WriteFile(path, ref, ix); err != nil {
		t.Fatal(err)
	}
	return ref, ix, path
}

func sameReference(a, b *bwamem.Reference) bool {
	if len(a.Names) != len(b.Names) || !bytes.Equal(a.Cat, b.Cat) {
		return false
	}
	for i := range a.Names {
		if a.Names[i] != b.Names[i] || a.Offsets[i] != b.Offsets[i] || a.Lengths[i] != b.Lengths[i] {
			return false
		}
	}
	return true
}

func sameIndex(a, b *fmindex.Index) bool {
	if a.Len() != b.Len() || !bytes.Equal(a.Text(), b.Text()) {
		return false
	}
	sa, sb := a.SA(), b.SA()
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func TestContainerRoundTrip(t *testing.T) {
	ref, ix := buildFixture(t, 1, 4000)
	var buf bytes.Buffer
	info, err := Encode(&buf, ref, ix, time.Unix(123, 456))
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != info.FileBytes {
		t.Fatalf("encoded %d bytes, info declares %d", buf.Len(), info.FileBytes)
	}
	ref2, ix2, info2, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !sameReference(ref, ref2) {
		t.Fatal("reference did not round-trip")
	}
	if !sameIndex(ix, ix2) {
		t.Fatal("index did not round-trip")
	}
	if info2.Contigs != 2 || !info2.BuildTime.Equal(time.Unix(123, 456)) {
		t.Fatalf("info did not round-trip: %+v", info2)
	}
	if info2.TextCRC != info.TextCRC || info2.SACRC != info.SACRC {
		t.Fatalf("checksums diverged between encode and decode: %+v vs %+v", info, info2)
	}

	// Decoded behavior matches the freshly built index.
	q := ix.Text()[100:148]
	iva, ivb := ix.Count(q), ix2.Count(q)
	if iva != ivb {
		t.Fatalf("Count diverged: %+v vs %+v", iva, ivb)
	}
}

func TestWriteFileAtomicPublish(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ref.rix")
	ref, ix := buildFixture(t, 2, 3000)
	info, err := WriteFile(path, ref, ix)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != info.FileBytes {
		t.Fatalf("file is %d bytes, info declares %d", st.Size(), info.FileBytes)
	}
	// No temp debris survives publication.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "ref.rix" {
		t.Fatalf("directory not clean after publish: %v", entries)
	}
	if _, err := Verify(path); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeRejectsCorruption flips bytes across every region of the
// container — header fields, header CRC, each section, the final byte —
// and requires every damaged image to be rejected. None may panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	ref, ix := buildFixture(t, 3, 2000)
	var buf bytes.Buffer
	if _, err := Encode(&buf, ref, ix, time.Now()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, _, _, err := Decode(good); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}

	offsets := []int{
		0,          // magic
		8,          // version
		16,         // file size
		32, 52, 72, // section descriptors
		92,              // header CRC
		headerBytes + 2, // contig table
	}
	// One byte inside each data section and the last byte of the file.
	textOff := int(getSection(good, 52).off)
	saOff := int(getSection(good, 72).off)
	offsets = append(offsets, textOff+17, saOff+33, len(good)-1)

	for _, off := range offsets {
		bad := bytes.Clone(good)
		bad[off] ^= 0x01
		if _, _, _, err := Decode(bad); err == nil {
			t.Errorf("corruption at offset %d accepted", off)
		}
	}

	for _, cut := range []int{0, 1, headerBytes - 1, headerBytes, len(good) / 2, len(good) - 1} {
		if _, _, _, err := Decode(good[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}

	// Grown files are rejected too (size embedded in the header).
	if _, _, _, err := Decode(append(bytes.Clone(good), 0)); err == nil {
		t.Error("grown file accepted")
	}
}

func TestVerifyErrors(t *testing.T) {
	if _, err := Verify(filepath.Join(t.TempDir(), "nope.rix")); err == nil {
		t.Fatal("missing file verified")
	}
	p := filepath.Join(t.TempDir(), "junk.rix")
	if err := os.WriteFile(p, []byte("not an index at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(p); err == nil {
		t.Fatal("junk file verified")
	}
}

// Package refstore is the crash-safe lifecycle layer for the reference
// index behind /v1/map: a checksummed on-disk container built once by
// cmd/seedex-index, published atomically, memory-mapped read-only so
// every shard and mapping worker shares one physical copy, and swapped
// under traffic through refcounted generations with rollback when a
// reload hits a corrupt, truncated or vanished file.
//
// The paper's serving engine (§V) assumes the reference is a long-lived
// resident artifact; this package supplies the part the paper takes for
// granted — surviving the filesystem that artifact lives on.
package refstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
	"unsafe"

	"seedex/internal/bwamem"
	"seedex/internal/fmindex"
)

// Container format v2 ("SEDXRIX2"): a fixed self-checksummed header
// addressing three sections — contig table, reference text, suffix
// array — each 8-byte aligned and CRC32-C framed. The layout is
// mmap-first: after validation the text and suffix array load zero-copy
// as slices aliasing the mapped region.
//
//	off  0  magic   [8]byte "SEDXRIX2"
//	off  8  u32     format version (2)
//	off 12  u32     header bytes (96)
//	off 16  u64     total file bytes (truncation guard)
//	off 24  u64     build time, unix nanoseconds (provenance)
//	off 32  u64/u64/u32  contig table: offset, length, CRC32-C
//	off 52  u64/u64/u32  text section:  offset, length, CRC32-C
//	off 72  u64/u64/u32  suffix array:  offset, length, CRC32-C
//	off 92  u32     header CRC32-C over bytes [0, 92)
const (
	formatVersion = 2
	headerBytes   = 96
	sectionAlign  = 8

	// maxTextLen bounds the declared reference length (8 Gb covers any
	// genome this system serves); maxContigs and maxNameLen bound the
	// contig table. Anything larger is a hostile header, not data.
	maxTextLen = 1 << 33
	maxContigs = 1 << 20
	maxNameLen = 4096
)

var formatMagic = [8]byte{'S', 'E', 'D', 'X', 'R', 'I', 'X', '2'}

// Info describes a validated container file.
type Info struct {
	Path      string    `json:"path,omitempty"`
	FileBytes int64     `json:"file_bytes"`
	TextBytes int64     `json:"text_bytes"`
	SABytes   int64     `json:"sa_bytes"`
	Contigs   int       `json:"contigs"`
	BuildTime time.Time `json:"build_time"`
	TextCRC   uint32    `json:"text_crc32c"`
	SACRC     uint32    `json:"sa_crc32c"`
	ZeroCopy  bool      `json:"zero_copy"` // sections alias the input bytes
}

// section is one header-addressed extent.
type section struct {
	off, n uint64
	crc    uint32
}

func putSection(hdr []byte, at int, s section) {
	binary.LittleEndian.PutUint64(hdr[at:], s.off)
	binary.LittleEndian.PutUint64(hdr[at+8:], s.n)
	binary.LittleEndian.PutUint32(hdr[at+16:], s.crc)
}

func getSection(hdr []byte, at int) section {
	return section{
		off: binary.LittleEndian.Uint64(hdr[at:]),
		n:   binary.LittleEndian.Uint64(hdr[at+8:]),
		crc: binary.LittleEndian.Uint32(hdr[at+16:]),
	}
}

// checkSection validates one extent against the file: inside the body,
// aligned, non-overflowing, and matching its checksum.
func checkSection(data []byte, name string, s section) ([]byte, error) {
	size := uint64(len(data))
	if s.off < headerBytes || s.off%sectionAlign != 0 {
		return nil, fmt.Errorf("refstore: %s section offset %d misplaced", name, s.off)
	}
	if s.n > size || s.off > size-s.n {
		return nil, fmt.Errorf("refstore: %s section [%d, %d) exceeds file size %d", name, s.off, s.off+s.n, size)
	}
	b := data[s.off : s.off+s.n]
	if got := fmindex.Checksum(b); got != s.crc {
		return nil, fmt.Errorf("refstore: %s section checksum mismatch (got %#x, want %#x)", name, got, s.crc)
	}
	return b, nil
}

// encodeContigs renders the contig table section.
func encodeContigs(r *bwamem.Reference) []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, uint32(len(r.Names)))
	for i, name := range r.Names {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(name)))
		out = append(out, name...)
		out = binary.LittleEndian.AppendUint64(out, uint64(r.Offsets[i]))
		out = binary.LittleEndian.AppendUint64(out, uint64(r.Lengths[i]))
	}
	return out
}

// decodeContigs parses the contig table with every length capped before
// any allocation sized from it.
func decodeContigs(b []byte, textLen uint64) (*bwamem.Reference, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("refstore: contig table too short")
	}
	count := binary.LittleEndian.Uint32(b)
	if count == 0 || count > maxContigs {
		return nil, fmt.Errorf("refstore: implausible contig count %d", count)
	}
	b = b[4:]
	r := &bwamem.Reference{
		Names:   make([]string, 0, min(count, 1024)),
		Offsets: make([]int, 0, min(count, 1024)),
		Lengths: make([]int, 0, min(count, 1024)),
	}
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("refstore: contig table truncated at entry %d", i)
		}
		nameLen := binary.LittleEndian.Uint32(b)
		if nameLen == 0 || nameLen > maxNameLen {
			return nil, fmt.Errorf("refstore: implausible contig name length %d", nameLen)
		}
		if uint64(len(b)) < 4+uint64(nameLen)+16 {
			return nil, fmt.Errorf("refstore: contig table truncated inside entry %d", i)
		}
		name := string(b[4 : 4+nameLen])
		off := binary.LittleEndian.Uint64(b[4+nameLen:])
		ln := binary.LittleEndian.Uint64(b[4+nameLen+8:])
		if ln == 0 || off > textLen || ln > textLen-off {
			return nil, fmt.Errorf("refstore: contig %q extent [%d, %d) exceeds text length %d", name, off, off+ln, textLen)
		}
		r.Names = append(r.Names, name)
		r.Offsets = append(r.Offsets, int(off))
		r.Lengths = append(r.Lengths, int(ln))
		b = b[4+nameLen+16:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("refstore: %d trailing bytes after contig table", len(b))
	}
	return r, nil
}

// pad returns the bytes needed to align n up to the section boundary.
func pad(n int) int { return (sectionAlign - n%sectionAlign) % sectionAlign }

// Encode writes the container for (ref, index) and returns its Info.
// The suffix-array section is streamed in bounded chunks, so encoding a
// multi-hundred-megabase reference never doubles it in memory.
func Encode(w io.Writer, r *bwamem.Reference, ix *fmindex.Index, buildTime time.Time) (Info, error) {
	contigs := encodeContigs(r)
	text := ix.Text()
	sa := ix.SA()

	contigSec := section{off: headerBytes, n: uint64(len(contigs)), crc: fmindex.Checksum(contigs)}
	textOff := contigSec.off + contigSec.n
	textOff += uint64(pad(int(textOff)))
	textSec := section{off: textOff, n: uint64(len(text)), crc: fmindex.Checksum(text)}
	saOff := textSec.off + textSec.n
	saOff += uint64(pad(int(saOff)))
	saSec := section{off: saOff, n: 4 * uint64(len(sa))}
	fileSize := saSec.off + saSec.n

	// Stream the suffix array once for its checksum, once for the write.
	const chunkEntries = 1 << 18
	chunk := make([]byte, 0, 4*chunkEntries)
	saCRC := uint32(0)
	crcInit := false
	forEachSAChunk := func(fn func([]byte) error) error {
		for beg := 0; beg < len(sa); beg += chunkEntries {
			end := min(beg+chunkEntries, len(sa))
			chunk = chunk[:0]
			for _, v := range sa[beg:end] {
				chunk = binary.LittleEndian.AppendUint32(chunk, uint32(v))
			}
			if err := fn(chunk); err != nil {
				return err
			}
		}
		return nil
	}
	forEachSAChunk(func(b []byte) error {
		if !crcInit {
			saCRC = fmindex.Checksum(b)
			crcInit = true
		} else {
			saCRC = fmindex.ChecksumUpdate(saCRC, b)
		}
		return nil
	})
	saSec.crc = saCRC

	hdr := make([]byte, headerBytes)
	copy(hdr, formatMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint32(hdr[12:], headerBytes)
	binary.LittleEndian.PutUint64(hdr[16:], fileSize)
	binary.LittleEndian.PutUint64(hdr[24:], uint64(buildTime.UnixNano()))
	putSection(hdr, 32, contigSec)
	putSection(hdr, 52, textSec)
	putSection(hdr, 72, saSec)
	binary.LittleEndian.PutUint32(hdr[92:], fmindex.Checksum(hdr[:92]))

	var padding [sectionAlign]byte
	for _, b := range [][]byte{hdr, contigs, padding[:pad(int(contigSec.off+contigSec.n))], text, padding[:pad(int(textSec.off+textSec.n))]} {
		if _, err := w.Write(b); err != nil {
			return Info{}, err
		}
	}
	if err := forEachSAChunk(func(b []byte) error { _, err := w.Write(b); return err }); err != nil {
		return Info{}, err
	}
	return Info{
		FileBytes: int64(fileSize),
		TextBytes: int64(textSec.n),
		SABytes:   int64(saSec.n),
		Contigs:   len(r.Names),
		BuildTime: buildTime,
		TextCRC:   textSec.crc,
		SACRC:     saSec.crc,
	}, nil
}

// WriteFile publishes the container atomically: the bytes land in a
// temporary file in the target directory, reach stable storage via
// fsync, and only then take the target name via rename (with a
// directory fsync behind it) — a crash at any point leaves either the
// old file or the new one, never a torn hybrid.
func WriteFile(path string, r *bwamem.Reference, ix *fmindex.Index) (Info, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return Info{}, err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	info, err := Encode(tmp, r, ix, time.Now())
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return Info{}, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return Info{}, err
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	info.Path = path
	return info, nil
}

// Decode validates a whole container image and assembles the reference
// and FM index. Every header-declared length is checked against the
// image size (and sane caps) before anything is allocated or sliced,
// so hostile bytes cannot drive allocations past the input itself.
//
// When the suffix-array section is 4-byte aligned in memory (always
// true for a mapped file; checked at runtime otherwise) the text and
// suffix array alias data zero-copy — the caller must keep data alive
// and unmodified for the life of the returned index.
func Decode(data []byte) (*bwamem.Reference, *fmindex.Index, Info, error) {
	fail := func(err error) (*bwamem.Reference, *fmindex.Index, Info, error) {
		return nil, nil, Info{}, err
	}
	if len(data) < headerBytes {
		return fail(fmt.Errorf("refstore: file too short for a header (%d bytes)", len(data)))
	}
	hdr := data[:headerBytes]
	if [8]byte(hdr[:8]) != formatMagic {
		return fail(fmt.Errorf("refstore: not a seedex reference index (bad magic)"))
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != formatVersion {
		return fail(fmt.Errorf("refstore: unsupported format version %d", v))
	}
	if hb := binary.LittleEndian.Uint32(hdr[12:]); hb != headerBytes {
		return fail(fmt.Errorf("refstore: unexpected header size %d", hb))
	}
	if got, want := fmindex.Checksum(hdr[:92]), binary.LittleEndian.Uint32(hdr[92:]); got != want {
		return fail(fmt.Errorf("refstore: header checksum mismatch (got %#x, want %#x)", got, want))
	}
	if size := binary.LittleEndian.Uint64(hdr[16:]); size != uint64(len(data)) {
		return fail(fmt.Errorf("refstore: file is %d bytes, header declares %d (truncated or grown)", len(data), size))
	}

	contigSec := getSection(hdr, 32)
	textSec := getSection(hdr, 52)
	saSec := getSection(hdr, 72)
	if textSec.n > maxTextLen {
		return fail(fmt.Errorf("refstore: implausible text length %d", textSec.n))
	}
	if saSec.n != 4*textSec.n {
		return fail(fmt.Errorf("refstore: suffix-array section is %d bytes, want %d", saSec.n, 4*textSec.n))
	}
	contigs, err := checkSection(data, "contig", contigSec)
	if err != nil {
		return fail(err)
	}
	text, err := checkSection(data, "text", textSec)
	if err != nil {
		return fail(err)
	}
	saBytes, err := checkSection(data, "suffix-array", saSec)
	if err != nil {
		return fail(err)
	}

	ref, err := decodeContigs(contigs, textSec.n)
	if err != nil {
		return fail(err)
	}

	var sa []int32
	zeroCopy := len(saBytes) == 0 || uintptr(unsafe.Pointer(&saBytes[0]))%4 == 0
	if zeroCopy && len(saBytes) > 0 {
		sa = unsafe.Slice((*int32)(unsafe.Pointer(&saBytes[0])), len(saBytes)/4)
	} else {
		sa = make([]int32, len(saBytes)/4)
		for i := range sa {
			sa[i] = int32(binary.LittleEndian.Uint32(saBytes[4*i:]))
		}
	}
	ix, err := fmindex.FromParts(text, sa)
	if err != nil {
		return fail(err)
	}
	ref.Cat = ix.Text()
	info := Info{
		FileBytes: int64(len(data)),
		TextBytes: int64(textSec.n),
		SABytes:   int64(saSec.n),
		Contigs:   len(ref.Names),
		BuildTime: time.Unix(0, int64(binary.LittleEndian.Uint64(hdr[24:]))),
		TextCRC:   textSec.crc,
		SACRC:     saSec.crc,
		ZeroCopy:  zeroCopy,
	}
	return ref, ix, info, nil
}

// Verify validates the container at path without keeping it resident.
func Verify(path string) (Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	_, _, info, err := Decode(data)
	if err != nil {
		return Info{}, err
	}
	info.Path = path
	info.ZeroCopy = false
	return info, nil
}

package obs

import (
	"encoding/hex"
	"sync/atomic"
	"time"
)

// Request ids correlate one request's spans, response header and error
// bodies. Generated ids are 16 lowercase hex digits of a uint64 drawn
// from a per-process SplitMix64 stream seeded at startup, so the id
// string and the span trace id round-trip exactly. Client-supplied ids
// are echoed verbatim and hashed onto a uint64 for span correlation
// (short hex ids parse exactly instead).

var (
	idSeed = mix64(uint64(time.Now().UnixNano()) ^ 0x5eedec5eedec)
	idCtr  atomic.Uint64
)

// NewRequestID mints a fresh request id: the trace id and its canonical
// 16-hex-digit string form.
func NewRequestID() (uint64, string) {
	id := mix64(idSeed + idCtr.Add(1))
	if id == 0 {
		id = 1
	}
	return id, FormatID(id)
}

// FormatID renders a trace id as its canonical 16-hex-digit string.
func FormatID(id uint64) string {
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = byte(id)
		id >>= 8
	}
	return hex.EncodeToString(b[:])
}

// RequestID resolves one request's id: a non-empty client value is kept
// verbatim (parsed as hex when it is 1-16 hex digits, hashed otherwise);
// an empty value mints a fresh id. The uint64 keys the request's spans,
// the string is echoed in the X-Request-Id response header.
func RequestID(client string) (uint64, string) {
	if client == "" {
		return NewRequestID()
	}
	if len(client) > 128 {
		client = client[:128]
	}
	if id, ok := parseHexID(client); ok {
		return id, client
	}
	return hashID(client), client
}

// parseHexID parses a 1-16 lowercase/uppercase hex string exactly.
func parseHexID(s string) (uint64, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case '0' <= c && c <= '9':
			v = v<<4 | uint64(c-'0')
		case 'a' <= c && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case 'A' <= c && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			return 0, false
		}
	}
	if v == 0 {
		v = 1
	}
	return v, true
}

// hashID folds an arbitrary client id onto a trace id (FNV-1a + mix).
func hashID(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h = mix64(h)
	if h == 0 {
		h = 1
	}
	return h
}

package obs

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: on SIGQUIT, breaker trip, reload rollback, or a
// fast-burn SLO alert, dump the tail-retained journeys, a metrics
// snapshot, SLO state, and goroutine/heap profiles into one timestamped
// tar.gz under the flight directory. Dumps are written to a temp file
// and renamed into place, so a crash mid-dump never leaves a partial
// tarball with the final name. A debounce window stops a flapping
// breaker from filling the disk; Force (the SIGQUIT path) bypasses it.

// ErrFlightThrottled reports a dump suppressed by the debounce window.
var ErrFlightThrottled = errors.New("flight recorder: dump throttled")

// ErrFlightDisabled reports a dump requested with no recorder configured
// (no -flight-dir).
var ErrFlightDisabled = errors.New("flight recorder: disabled")

// FlightConfig tunes the recorder.
type FlightConfig struct {
	// Dir is the dump directory (created on first dump). Empty disables
	// the recorder (NewFlightRecorder returns nil).
	Dir string
	// MinInterval debounces automatic dumps (default 30s).
	MinInterval time.Duration
}

// FlightSource is one named file inside a dump tarball.
type FlightSource struct {
	Name  string
	Write func(io.Writer) error
}

// FlightRecorder writes crash/degradation dump tarballs.
type FlightRecorder struct {
	cfg FlightConfig

	mu       sync.Mutex
	last     time.Time
	dumps    atomic.Int64
	lastPath atomic.Pointer[string]
}

// NewFlightRecorder builds a recorder, or returns nil (disabled) when
// cfg.Dir is empty. All methods are nil-safe.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Dir == "" {
		return nil
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = 30 * time.Second
	}
	return &FlightRecorder{cfg: cfg}
}

// Enabled reports whether the recorder writes dumps.
func (f *FlightRecorder) Enabled() bool { return f != nil }

// Dumps reports the number of tarballs written.
func (f *FlightRecorder) Dumps() int64 {
	if f == nil {
		return 0
	}
	return f.dumps.Load()
}

// LastPath reports the most recent tarball path ("" before any dump).
func (f *FlightRecorder) LastPath() string {
	if f == nil {
		return ""
	}
	if p := f.lastPath.Load(); p != nil {
		return *p
	}
	return ""
}

// Dump writes one debounced dump (automatic triggers: breaker trip,
// rollback, fast burn). Returns ErrFlightThrottled inside the debounce
// window.
func (f *FlightRecorder) Dump(reason string, srcs []FlightSource) (string, error) {
	return f.dump(reason, srcs, false)
}

// Force writes one dump bypassing the debounce (the SIGQUIT path).
func (f *FlightRecorder) Force(reason string, srcs []FlightSource) (string, error) {
	return f.dump(reason, srcs, true)
}

func (f *FlightRecorder) dump(reason string, srcs []FlightSource, force bool) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	if !force && !f.last.IsZero() && now.Sub(f.last) < f.cfg.MinInterval {
		return "", ErrFlightThrottled
	}
	if err := os.MkdirAll(f.cfg.Dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("flight-%s-%s.tar.gz",
		now.UTC().Format("20060102T150405.000"), sanitizeReason(reason))
	final := filepath.Join(f.cfg.Dir, name)
	tmp, err := os.CreateTemp(f.cfg.Dir, ".flight-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())

	gz := gzip.NewWriter(tmp)
	tw := tar.NewWriter(gz)
	var firstErr error
	for _, src := range append(srcs, profileSources()...) {
		var buf bytes.Buffer
		name := src.Name
		if err := src.Write(&buf); err != nil {
			// One failing source must not lose the rest of a crash dump:
			// the error text lands in the tarball in the file's place.
			buf.Reset()
			fmt.Fprintf(&buf, "flight source %s: %v\n", src.Name, err)
			name += ".error.txt"
		}
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(buf.Len()),
			ModTime: now,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			firstErr = err
			break
		}
		if _, err := tw.Write(buf.Bytes()); err != nil {
			firstErr = err
			break
		}
	}
	if err := tw.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := gz.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := tmp.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := tmp.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return "", firstErr
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	f.last = now
	f.dumps.Add(1)
	f.lastPath.Store(&final)
	return final, nil
}

// profileSources are the runtime profiles every dump carries.
func profileSources() []FlightSource {
	return []FlightSource{
		{Name: "goroutines.txt", Write: func(w io.Writer) error {
			return pprof.Lookup("goroutine").WriteTo(w, 2)
		}},
		{Name: "heap.pprof", Write: func(w io.Writer) error {
			return pprof.Lookup("heap").WriteTo(w, 0)
		}},
	}
}

func sanitizeReason(r string) string {
	if r == "" {
		return "manual"
	}
	var b strings.Builder
	for _, c := range r {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteRune('-')
		}
	}
	return b.String()
}

package obs

import (
	"archive/tar"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func readTarball(t *testing.T, path string) map[string]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening tarball: %v", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	out := map[string]string{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tar: %v", err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("tar entry %s: %v", hdr.Name, err)
		}
		out[hdr.Name] = string(b)
	}
	return out
}

// TestFlightDumpContents: a dump tarball carries every source plus the
// runtime profiles, atomically published under a reason-stamped name.
func TestFlightDumpContents(t *testing.T) {
	dir := t.TempDir()
	fr := NewFlightRecorder(FlightConfig{Dir: dir})
	path, err := fr.Force("breaker trip!", []FlightSource{
		{Name: "meta.json", Write: func(w io.Writer) error {
			_, err := fmt.Fprint(w, `{"reason":"breaker-trip"}`)
			return err
		}},
	})
	if err != nil {
		t.Fatalf("Force: %v", err)
	}
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "flight-") || !strings.HasSuffix(base, "-breaker-trip-.tar.gz") {
		t.Fatalf("tarball name %q: want flight-<ts>-breaker-trip-.tar.gz (sanitized reason)", base)
	}
	files := readTarball(t, path)
	if files["meta.json"] != `{"reason":"breaker-trip"}` {
		t.Fatalf("meta.json = %q", files["meta.json"])
	}
	if !strings.Contains(files["goroutines.txt"], "goroutine") {
		t.Fatal("goroutines.txt missing or empty")
	}
	if len(files["heap.pprof"]) == 0 {
		t.Fatal("heap.pprof missing or empty")
	}
	if fr.Dumps() != 1 || fr.LastPath() != path {
		t.Fatalf("Dumps=%d LastPath=%q", fr.Dumps(), fr.LastPath())
	}
	// No temp file residue.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".flight-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestFlightDebounce: automatic dumps inside MinInterval are throttled;
// Force bypasses.
func TestFlightDebounce(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Dir: t.TempDir(), MinInterval: time.Hour})
	if _, err := fr.Dump("first", nil); err != nil {
		t.Fatalf("first dump: %v", err)
	}
	if _, err := fr.Dump("second", nil); !errors.Is(err, ErrFlightThrottled) {
		t.Fatalf("second dump err = %v, want ErrFlightThrottled", err)
	}
	if _, err := fr.Force("sigquit", nil); err != nil {
		t.Fatalf("forced dump inside debounce: %v", err)
	}
	if fr.Dumps() != 2 {
		t.Fatalf("Dumps = %d, want 2", fr.Dumps())
	}
}

// TestFlightSourceErrorDegrades: one failing source must not lose the
// dump — its error text lands in the tarball in the file's place and
// every other source survives.
func TestFlightSourceErrorDegrades(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Dir: t.TempDir()})
	path, err := fr.Force("partial", []FlightSource{
		{Name: "bad.json", Write: func(io.Writer) error { return errors.New("boom") }},
		{Name: "good.txt", Write: func(w io.Writer) error { _, e := fmt.Fprint(w, "ok"); return e }},
	})
	if err != nil {
		t.Fatalf("dump with one bad source failed outright: %v", err)
	}
	files := readTarball(t, path)
	if files["good.txt"] != "ok" {
		t.Fatalf("good.txt = %q", files["good.txt"])
	}
	if !strings.Contains(files["bad.json.error.txt"], "boom") {
		t.Fatalf("bad.json.error.txt = %q, want the source error", files["bad.json.error.txt"])
	}
	if _, dup := files["bad.json"]; dup {
		t.Fatal("failing source also wrote its plain entry")
	}
}

// TestFlightDisabled: nil recorder everywhere.
func TestFlightDisabled(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{})
	if fr != nil {
		t.Fatal("empty Dir built a recorder")
	}
	if fr.Enabled() || fr.Dumps() != 0 || fr.LastPath() != "" {
		t.Fatal("nil recorder accessors not zero")
	}
	if _, err := fr.Dump("x", nil); err != nil {
		t.Fatalf("nil Dump err = %v", err)
	}
}

package obs

import (
	"testing"
	"time"
)

func tailTracer(cfg TailConfig) *Tracer {
	cfg.Enabled = true
	return New(Config{Tail: cfg})
}

// TestTailVerdictLatency keeps a journey only when the request breached
// its budget.
func TestTailVerdictLatency(t *testing.T) {
	tr := tailTracer(TailConfig{Budget: 10 * time.Millisecond})
	base := time.Now()

	// Fast and clean: recycled, not kept.
	ref := tr.Sample(1)
	if !ref.Sampled() {
		t.Fatal("tail-enabled tracer did not sample")
	}
	ref.Span(KindQueueWait, base, time.Millisecond, 1, 0)
	tr.RequestDone(ref, 1, base, 5*time.Millisecond, 1, 200)
	if got := len(tr.Journeys()); got != 0 {
		t.Fatalf("fast clean request retained: %d journeys", got)
	}

	// Slow: kept with the latency-budget verdict.
	ref = tr.Sample(2)
	ref.Span(KindQueueWait, base, time.Millisecond, 1, 0)
	tr.RequestDone(ref, 2, base, 50*time.Millisecond, 1, 200)
	js := tr.Journeys()
	if len(js) != 1 {
		t.Fatalf("slow request journeys = %d, want 1", len(js))
	}
	j := js[0]
	if j.Trace != 2 || j.Status != 200 {
		t.Fatalf("kept journey = %+v", j)
	}
	if len(j.Verdict) != 1 || j.Verdict[0] != "latency-budget" {
		t.Fatalf("verdict = %v, want [latency-budget]", j.Verdict)
	}
	// Root request span + queue wait span both present.
	if len(j.Spans) != 2 {
		t.Fatalf("journey spans = %d, want 2 (queue_wait + request)", len(j.Spans))
	}
}

// TestTailVerdictStatus keeps journeys for failure statuses only.
func TestTailVerdictStatus(t *testing.T) {
	tr := tailTracer(TailConfig{Budget: time.Hour})
	base := time.Now()
	cases := []struct {
		status int64
		keep   bool
	}{
		{200, false}, {400, false}, {413, true}, {429, true},
		{500, true}, {503, true}, {504, true},
	}
	var want int
	for i, c := range cases {
		ref := tr.Sample(uint64(100 + i))
		tr.RequestDone(ref, uint64(100+i), base, time.Millisecond, 1, c.status)
		if c.keep {
			want++
		}
	}
	if got := len(tr.Journeys()); got != want {
		t.Fatalf("retained %d journeys, want %d", got, want)
	}
	for _, j := range tr.Journeys() {
		if len(j.Verdict) != 1 || j.Verdict[0] != "status" {
			t.Fatalf("verdict = %v for status %d, want [status]", j.Verdict, j.Status)
		}
	}
}

// TestTailVerdictEvents keeps any journey with a marked lifecycle event
// and names the events in the kept record.
func TestTailVerdictEvents(t *testing.T) {
	tr := tailTracer(TailConfig{Budget: time.Hour})
	base := time.Now()
	ref := tr.Sample(7)
	ref.Mark(EvSteal)
	ref.Mark(EvReloadOverlap)
	ref.Mark(EvSteal) // idempotent
	tr.RequestDone(ref, 7, base, time.Millisecond, 1, 200)
	js := tr.Journeys()
	if len(js) != 1 {
		t.Fatalf("journeys = %d, want 1", len(js))
	}
	j := js[0]
	if len(j.Verdict) != 1 || j.Verdict[0] != "event" {
		t.Fatalf("verdict = %v, want [event]", j.Verdict)
	}
	if len(j.Events) != 2 || j.Events[0] != "steal" || j.Events[1] != "reload-overlap" {
		t.Fatalf("events = %v, want [steal reload-overlap]", j.Events)
	}
}

// TestEventNames covers the bit-set expansion.
func TestEventNames(t *testing.T) {
	if names := Event(0).Names(); names != nil {
		t.Fatalf("zero event names = %v, want nil", names)
	}
	all := EvSteal | EvReroute | EvRescue | EvReloadOverlap | EvFault
	names := all.Names()
	want := []string{"steal", "reroute", "rescue", "reload-overlap", "fault"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

// TestTailSpanOverflow drops spans beyond MaxSpans and counts the drops
// instead of growing or corrupting the buffer.
func TestTailSpanOverflow(t *testing.T) {
	tr := tailTracer(TailConfig{Budget: time.Nanosecond, MaxSpans: 4})
	base := time.Now()
	ref := tr.Sample(9)
	for i := 0; i < 10; i++ {
		ref.Span(KindQueueWait, base, time.Millisecond, int64(i), 0)
	}
	tr.RequestDone(ref, 9, base, time.Second, 1, 200)
	js := tr.Journeys()
	if len(js) != 1 {
		t.Fatalf("journeys = %d, want 1", len(js))
	}
	// 4 slots: 3 queue waits survive alongside nothing else (the root
	// request span claimed a slot too late — all 4 were taken), or the
	// first 4 queue waits; either way exactly MaxSpans retained.
	if len(js[0].Spans) != 4 {
		t.Fatalf("retained spans = %d, want 4 (MaxSpans)", len(js[0].Spans))
	}
	st := tr.TraceStats()
	if st.TailSpanDrops != 7 { // 10 queue waits + 1 request span - 4 slots
		t.Fatalf("span drops = %d, want 7", st.TailSpanDrops)
	}
}

// TestTailRingEviction bounds the kept ring at Keep journeys.
func TestTailRingEviction(t *testing.T) {
	tr := tailTracer(TailConfig{Budget: time.Nanosecond, Keep: 3})
	base := time.Now()
	for i := 0; i < 10; i++ {
		id := uint64(1000 + i)
		ref := tr.Sample(id)
		tr.RequestDone(ref, id, base.Add(time.Duration(i)*time.Millisecond), time.Second, 1, 200)
	}
	js := tr.Journeys()
	if len(js) != 3 {
		t.Fatalf("retained = %d, want 3", len(js))
	}
	// Newest first, and only the newest three survive.
	for i, j := range js {
		if want := uint64(1000 + 9 - i); j.Trace != want {
			t.Fatalf("journeys[%d].Trace = %d, want %d", i, j.Trace, want)
		}
	}
	if st := tr.TraceStats(); st.TailKept != 10 || st.TailRetained != 3 {
		t.Fatalf("stats kept=%d retained=%d, want 10/3", st.TailKept, st.TailRetained)
	}
}

// TestTailDetachedNotRecycled: a detached journey is still verdicted and
// kept, but its buffer never returns to the pool (a fresh checkout gets
// a different buffer).
func TestTailDetachedNotRecycled(t *testing.T) {
	tr := tailTracer(TailConfig{Budget: time.Nanosecond})
	base := time.Now()
	ref := tr.Sample(11)
	leaked := ref.j
	ref.Detach()
	tr.RequestDone(ref, 11, base, time.Second, 1, 504)
	if len(tr.Journeys()) != 1 {
		t.Fatal("detached journey was not retained")
	}
	// The pool must not hand the detached buffer back.
	for i := 0; i < 8; i++ {
		next := tr.Sample(uint64(20 + i))
		if next.j == leaked {
			t.Fatal("detached journey buffer was recycled")
		}
	}
	// A straggler write on the detached buffer must not appear anywhere.
	leaked.record(tr, SpanData{Trace: 11, Kind: KindKernel})
}

// TestTailJourneyLookup finds one retained journey by trace id.
func TestTailJourneyLookup(t *testing.T) {
	tr := tailTracer(TailConfig{Budget: time.Nanosecond})
	base := time.Now()
	for i := 0; i < 3; i++ {
		id := uint64(50 + i)
		ref := tr.Sample(id)
		tr.RequestDone(ref, id, base, time.Second, 1, 200)
	}
	jd, ok := tr.Journey(51)
	if !ok || jd.Trace != 51 {
		t.Fatalf("Journey(51) = %+v, %v", jd, ok)
	}
	if _, ok := tr.Journey(999); ok {
		t.Fatal("Journey(999) found a journey that was never retained")
	}
}

// TestTailWithHeadSampling: head-sampled spans land in both the shared
// rings and the journey; unsampled requests still get a journey.
func TestTailWithHeadSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 2, Tail: TailConfig{Enabled: true, Budget: time.Nanosecond}})
	base := time.Now()
	for i := 0; i < 4; i++ {
		id := uint64(70 + i)
		ref := tr.Sample(id)
		if !ref.Sampled() {
			t.Fatalf("request %d not sampled with tail on", i)
		}
		ref.Span(KindQueueWait, base, time.Millisecond, 1, 0)
		tr.RequestDone(ref, id, base, time.Second, 1, 200)
	}
	if got := len(tr.Journeys()); got != 4 {
		t.Fatalf("journeys = %d, want 4 (every request)", got)
	}
	if st := tr.TraceStats(); st.SampledTotal != 2 {
		t.Fatalf("head-sampled = %d, want 2 (1 in 2)", st.SampledTotal)
	}
}

// TestBatchTraceIDStitch: a kernel span's positive link resolves to the
// trace id the device layer records under.
func TestBatchTraceIDStitch(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	base := time.Now()
	key := int64(42)
	bref := tr.Batch(key)
	bref.Span(KindDevice, base, time.Millisecond, 1, 0)
	dev := tr.TraceSpans(BatchTraceID(key))
	if len(dev) != 1 || dev[0].Kind != KindDevice {
		t.Fatalf("device spans under BatchTraceID = %+v", dev)
	}
	if BatchTraceID(2) == BatchTraceID(3) {
		t.Fatal("distinct batch keys map to one trace id")
	}
}

// TestAttributeSumsToTotal: the stage decomposition is exact.
func TestAttributeSumsToTotal(t *testing.T) {
	// Root request [0, 1000]; queue [0,300]; flush [100,400] (queue wins
	// 100-300, batch-wait 300-400); kernel [400,700]; check at 700
	// (instant, no width); rerun [700,900]; admission residue 900-1000.
	spans := []SpanData{
		{Kind: KindRequest, Start: 0, Dur: 1000},
		{Kind: KindQueueWait, Start: 0, Dur: 300},
		{Kind: KindFlush, Start: 100, Dur: 300},
		{Kind: KindKernel, Start: 400, Dur: 300},
		{Kind: KindCheck, Start: 700, Dur: 0},
		{Kind: KindRerun, Start: 700, Dur: 200},
	}
	a := Attribute(spans)
	if a.TotalNs != 1000 {
		t.Fatalf("TotalNs = %d, want 1000", a.TotalNs)
	}
	sum := a.AdmissionNs + a.QueueNs + a.BatchWaitNs + a.KernelNs + a.CheckNs + a.RerunNs
	if sum != a.TotalNs {
		t.Fatalf("stage sum %d != total %d", sum, a.TotalNs)
	}
	if a.QueueNs != 300 {
		t.Fatalf("QueueNs = %d, want 300 (queue outranks flush)", a.QueueNs)
	}
	if a.BatchWaitNs != 100 {
		t.Fatalf("BatchWaitNs = %d, want 100", a.BatchWaitNs)
	}
	if a.KernelNs != 300 {
		t.Fatalf("KernelNs = %d, want 300", a.KernelNs)
	}
	if a.RerunNs != 200 {
		t.Fatalf("RerunNs = %d, want 200", a.RerunNs)
	}
	if a.AdmissionNs != 100 {
		t.Fatalf("AdmissionNs = %d, want 100 (residue)", a.AdmissionNs)
	}
	fracSum := a.AdmissionFrac + a.QueueFrac + a.BatchWaitFrac + a.KernelFrac + a.CheckFrac + a.RerunFrac
	if fracSum < 0.999 || fracSum > 1.001 {
		t.Fatalf("fraction sum = %g, want 1", fracSum)
	}
}

// TestAttributeClampsToRoot: spans outside the root interval (device
// spans stitched from a different wall window) are clamped, never
// inflating the total.
func TestAttributeClampsToRoot(t *testing.T) {
	spans := []SpanData{
		{Kind: KindRequest, Start: 100, Dur: 100},
		{Kind: KindKernel, Start: 0, Dur: 1000}, // envelopes the root
	}
	a := Attribute(spans)
	if a.TotalNs != 100 || a.KernelNs != 100 || a.AdmissionNs != 0 {
		t.Fatalf("clamped attribution = %+v", a)
	}
}

// TestAttributeEmptyAndDegenerate handles the zero cases.
func TestAttributeEmptyAndDegenerate(t *testing.T) {
	if a := Attribute(nil); a.TotalNs != 0 {
		t.Fatalf("nil spans attribution = %+v", a)
	}
	// Instant-only spans: zero-width root.
	a := Attribute([]SpanData{{Kind: KindCheck, Start: 5, Dur: 0}})
	if a.TotalNs != 0 {
		t.Fatalf("degenerate attribution = %+v", a)
	}
}

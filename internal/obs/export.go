package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"seedex/internal/core"
)

// Span exports. Two formats over the same SpanData snapshot:
//
//   - Chrome trace_event JSON ("X" complete events): load the document
//     into chrome://tracing or https://ui.perfetto.dev. Spans lane by
//     ring shard (tid), so one request's spans share a row.
//   - NDJSON: one span object per line, for jq/scripted analysis.
//
// Kind-specific v1/v2 values export under readable names (kernel tier,
// check outcome, batch size, attempt), matching the paper's pipeline
// stages so a trace reads like Figure 12's timeline.

// argNames returns the export names of a span's v1/v2 (empty = omit).
func argNames(k Kind) (string, string) {
	switch k {
	case KindRequest:
		return "jobs", "status"
	case KindQueueWait:
		return "batch", ""
	case KindFlush:
		return "batch", "size_triggered"
	case KindKernel:
		return "tier", "live"
	case KindCheck:
		return "outcome", "pass"
	case KindRerun:
		return "outcome", ""
	case KindDevice:
		return "attempt", "batch"
	case KindRetry:
		return "attempt", ""
	case KindPrefilter:
		return "pass", "reject"
	case KindIndexReload:
		return "generation", "ok"
	case KindSteal:
		return "victim", "thief"
	case KindRescue:
		return "rescued", "rounds"
	}
	return "v1", "v2"
}

// argValue renders one arg as a JSON literal (quoted names for enums,
// bare integers otherwise).
func argValue(k Kind, which int, v int64) string {
	switch {
	case k == KindKernel && which == 1:
		return `"` + TierName(v) + `"`
	case (k == KindCheck || k == KindRerun) && which == 1:
		return `"` + core.Outcome(v).String() + `"`
	case k == KindCheck && which == 2, k == KindFlush && which == 2,
		k == KindIndexReload && which == 2:
		if v != 0 {
			return "true"
		}
		return "false"
	}
	return fmt.Sprintf("%d", v)
}

// writeArgs emits the args object for one span (shared by both formats).
func writeArgs(w *bufio.Writer, s SpanData) {
	n1, n2 := argNames(s.Kind)
	fmt.Fprintf(w, `"trace":%q`, FormatID(s.Trace))
	if n1 != "" {
		fmt.Fprintf(w, `,%q:%s`, n1, argValue(s.Kind, 1, s.V1))
	}
	if n2 != "" {
		fmt.Fprintf(w, `,%q:%s`, n2, argValue(s.Kind, 2, s.V2))
	}
	if s.Link != 0 {
		fmt.Fprintf(w, `,"link":%d`, s.Link)
	}
}

// MarshalJSON renders a span with its kind name and export arg names, so
// journey documents read like the NDJSON export.
func (s SpanData) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	bw := bufio.NewWriter(&b)
	fmt.Fprintf(bw, "{\"span\":%q,\"start_ns\":%d,\"dur_ns\":%d,", s.Kind.String(), s.Start, s.Dur)
	writeArgs(bw, s)
	bw.WriteString("}")
	bw.Flush()
	return b.Bytes(), nil
}

// WriteChromeTrace renders spans as a Chrome trace_event JSON document.
// epochWall is the wall-clock ns the span Start offsets are relative to.
func WriteChromeTrace(w io.Writer, epochWall int64, spans []SpanData) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"epoch_wall_ns\":%d},\"traceEvents\":[", epochWall)
	fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"seedex"}}`)
	for _, s := range spans {
		// ts/dur are microseconds (float) per the trace_event spec.
		fmt.Fprintf(bw, ",\n{\"name\":%q,\"cat\":\"pipeline\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
			s.Kind.String(), s.Shard, float64(s.Start)/1e3, float64(s.Dur)/1e3)
		writeArgs(bw, s)
		bw.WriteString("}}")
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// WriteNDJSON renders spans one JSON object per line.
func WriteNDJSON(w io.Writer, epochWall int64, spans []SpanData) error {
	bw := bufio.NewWriter(w)
	for _, s := range spans {
		fmt.Fprintf(bw, "{\"span\":%q,\"start_ns\":%d,\"dur_ns\":%d,\"wall_ns\":%d,",
			s.Kind.String(), s.Start, s.Dur, epochWall+s.Start)
		writeArgs(bw, s)
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

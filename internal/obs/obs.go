// Package obs is the observability layer of the serving stack: span
// tracing over the speculate-check-rerun pipeline, a Prometheus text
// exposition registry over the existing atomic counters and power-of-two
// histograms, and request-id generation for end-to-end correlation.
//
// The tracer is built so the extend hot path pays nothing when tracing is
// off and almost nothing when it is on:
//
//   - A disabled tracer is a nil *Tracer; every method is nil-safe, so
//     instrumentation sites are one pointer compare (the Ref zero value is
//     the permanent "not sampled" fast path — no branches beyond the nil
//     check, no allocation ever).
//   - Recording a span writes fixed-size atomic fields into a slot of a
//     lock-free ring (one atomic fetch-add to claim the slot, a seqlock
//     pair around the field stores). No locks, no allocation, no strings.
//   - Sampling is head-based: the decision is made once per request at
//     admission and carried by value (Ref) through the batcher into the
//     workers, so unsampled requests never touch a ring.
//
// Alongside the sampled rings, a small always-on ring retains the top-K
// slowest requests by duration regardless of sampling, so tail latencies
// survive even aggressive sampling. Spans export as Chrome trace_event
// JSON (load into chrome://tracing or Perfetto) and as NDJSON.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the pipeline stages a span can cover, mirroring the
// paper's Figure 10/12 dataflow: admission, batch formation, the packed
// kernel tier, the optimality check verdict, device round-trips, and the
// host rerun budget.
type Kind uint8

const (
	// KindRequest is the root span: one HTTP request on a job endpoint.
	KindRequest Kind = iota
	// KindQueueWait covers admission -> batch dispatch for one job.
	KindQueueWait
	// KindFlush covers batch formation: first job enqueued -> worker
	// pickup (the size/deadline flush trigger window).
	KindFlush
	// KindKernel covers the packed speculate+check compute of one batch.
	KindKernel
	// KindCheck is an instant span carrying one job's check outcome.
	KindCheck
	// KindRerun covers one host full-band rerun.
	KindRerun
	// KindDevice covers one device batch attempt (DMA + batch_start ..
	// batch_done + retrieval).
	KindDevice
	// KindRetry covers one retry backoff wait between device attempts.
	KindRetry
	// KindPrefilter is an instant span carrying one read's pre-alignment
	// filter activity (v1 = chains passed, v2 = chains rejected).
	KindPrefilter
	// KindIndexReload covers one reference-index reload attempt, from
	// trigger to publish or rollback (v1 = generation, v2 = ok).
	KindIndexReload
	// KindSteal is an instant span marking that a job's batch was stolen
	// and executed on a thief shard (v1 = victim shard, v2 = thief shard).
	KindSteal
	// KindRescue is an instant span carrying one read's prefilter rescue
	// fixpoint activity (v1 = chains rescued, v2 = rescue rounds).
	KindRescue
	numKinds
)

var kindNames = [numKinds]string{
	"request", "queue_wait", "batch_flush", "kernel", "check", "host_rerun",
	"device", "retry_backoff", "prefilter", "index_reload", "steal", "rescue",
}

// String names the stage for exports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "span"
}

// Tier values for KindKernel spans (v1). They mirror the align package's
// SWAR tier ladder; TierUnknown marks extenders whose tiering the server
// cannot see (device engines, third-party extenders).
const (
	TierSWAR8x2 = 0
	TierSWAR8   = 1
	TierSWAR16  = 2
	TierScalar  = 3
	TierUnknown = -1
)

// TierName renders a KindKernel span's v1 for exports.
func TierName(v int64) string {
	switch v {
	case TierSWAR8x2:
		return "swar8x2"
	case TierSWAR8:
		return "swar8"
	case TierSWAR16:
		return "swar16"
	case TierScalar:
		return "scalar"
	}
	return "unknown"
}

// Config tunes a Tracer.
type Config struct {
	// SampleEvery enables tracing: 1 records every request, N records one
	// request in N (head-based). Zero or negative disables tracing (New
	// returns nil, the permanent fast path).
	SampleEvery int
	// RingSpans is the span capacity of each shard ring (rounded up to a
	// power of two; default 4096). Old spans are overwritten.
	RingSpans int
	// Shards is the number of independent span rings (default 8, rounded
	// up to a power of two). Writers shard by trace id, so one request's
	// spans stay in one ring in recording order.
	Shards int
	// SlowK is the size of the always-retained slow-request ring (top-K
	// requests by duration, regardless of sampling; default 64).
	SlowK int
	// SlowMin is the minimum duration for a request to compete for the
	// slow ring (default 0: every request competes).
	SlowMin time.Duration
	// Tail configures tail-based retention: every request records its
	// spans into a reusable per-request journey buffer and a verdict at
	// completion decides whether the full journey is kept. Independent of
	// head sampling; see TailConfig.
	Tail TailConfig
}

func (c Config) withDefaults() Config {
	if c.RingSpans <= 0 {
		c.RingSpans = 4096
	}
	c.RingSpans = 1 << bits.Len64(uint64(c.RingSpans-1))
	if c.Shards <= 0 {
		c.Shards = 8
	}
	c.Shards = 1 << bits.Len64(uint64(c.Shards-1))
	if c.SlowK <= 0 {
		c.SlowK = 64
	}
	return c
}

// slot is one ring entry. All fields are atomics and writes are framed by
// the seq seqlock (odd while a writer is inside), so a concurrent exporter
// either reads a consistent span or skips the slot — recording never
// blocks and never races.
type slot struct {
	seq   atomic.Uint64
	trace atomic.Uint64
	start atomic.Int64  // ns since tracer epoch
	dur   atomic.Int64  // ns
	meta  atomic.Uint64 // kind
	v1    atomic.Int64
	v2    atomic.Int64
	link  atomic.Int64 // cross-layer stitch id (see SpanData.Link)
}

// ring is one lock-free span ring: pos claims slots, slots wrap.
type ring struct {
	pos   atomic.Uint64
	slots []slot
}

// Tracer records pipeline spans into per-shard lock-free rings. A nil
// *Tracer is valid and disabled; every method is nil-safe.
type Tracer struct {
	cfg       Config
	epoch     time.Time
	epochWall int64 // wall ns of epoch, for exports
	shardMask uint64
	shards    []ring

	next    atomic.Uint64 // head-sampling counter
	sampled atomic.Int64  // requests selected by head sampling
	spans   atomic.Int64  // spans recorded

	slow slowRing
	tail *tailState // nil when tail retention is disabled
}

// New builds a Tracer, or returns nil (tracing disabled) when neither
// head sampling (cfg.SampleEvery > 0) nor tail retention
// (cfg.Tail.Enabled) is requested. All Tracer and Ref methods are
// nil-safe, so the returned value can be threaded unconditionally.
func New(cfg Config) *Tracer {
	if cfg.SampleEvery <= 0 && !cfg.Tail.Enabled {
		return nil
	}
	cfg = cfg.withDefaults()
	t := &Tracer{
		cfg:       cfg,
		epoch:     time.Now(),
		epochWall: time.Now().UnixNano(),
		shardMask: uint64(cfg.Shards - 1),
		shards:    make([]ring, cfg.Shards),
	}
	for i := range t.shards {
		t.shards[i].slots = make([]slot, cfg.RingSpans)
	}
	t.slow.init(cfg.SlowK, cfg.SlowMin)
	if cfg.Tail.Enabled {
		t.tail = newTailState(cfg.Tail)
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// SampleEvery reports the head-sampling ratio (0 when disabled).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return t.cfg.SampleEvery
}

// Ref is one request's trace handle: a Tracer plus the request's trace
// id, a head-sampling decision (ring), and an optional tail journey
// buffer (j). The zero Ref (not sampled, or tracing disabled) makes
// every method a nil-check no-op, so Refs are carried by value through
// job structs unconditionally.
type Ref struct {
	t    *Tracer
	j    *journey // tail journey buffer (nil when tail is off / not started)
	id   uint64
	ring bool // head-sampled: spans also land in the shared rings
}

// Sampled reports whether spans recorded through this Ref are retained
// anywhere (shared rings, tail journey, or both).
func (r Ref) Sampled() bool { return r.t != nil && (r.ring || r.j != nil) }

// TraceID returns the trace id (0 when not sampled).
func (r Ref) TraceID() uint64 { return r.id }

// Sample makes the per-request sampling decision: head sampling picks
// one request in SampleEvery for the shared rings, and when tail
// retention is enabled every request additionally records into a
// reusable journey buffer (verdict at RequestDone). On a nil tracer it
// returns the zero Ref.
func (t *Tracer) Sample(id uint64) Ref {
	if t == nil {
		return Ref{}
	}
	ring := t.cfg.SampleEvery > 0
	if ring {
		if n := t.next.Add(1); t.cfg.SampleEvery > 1 && n%uint64(t.cfg.SampleEvery) != 0 {
			ring = false
		}
	}
	var j *journey
	if t.tail != nil {
		j = t.tail.checkout(id)
	}
	if !ring && j == nil {
		return Ref{}
	}
	if ring {
		t.sampled.Add(1)
	}
	return Ref{t: t, j: j, id: id, ring: ring}
}

// Batch returns an always-recording Ref for batch- or device-scoped spans
// that have no single owning request (trace id derived from the batch
// key). Nil-safe: a disabled tracer returns the zero Ref.
func (t *Tracer) Batch(key int64) Ref {
	if t == nil {
		return Ref{}
	}
	return Ref{t: t, id: BatchTraceID(key), ring: true}
}

// BatchTraceID maps a batch key to the trace id Batch records under, so
// request-level views can stitch in the device-layer spans linked from a
// kernel span (SpanData.Link carries the batch key).
func BatchTraceID(key int64) uint64 {
	return mix64(uint64(key) ^ 0xba7c4ba7c4)
}

// Span records one completed span: stage kind, start time, duration, and
// two kind-specific values (see the Kind docs and the export arg names).
// Zero-allocation; safe from any goroutine.
func (r Ref) Span(k Kind, start time.Time, dur time.Duration, v1, v2 int64) {
	r.SpanLink(k, start, dur, v1, v2, 0)
}

// SpanLink is Span with a cross-layer stitch id: the link names the
// adjacent layer's unit of work (device batch key on kernel spans, index
// generation on map kernel spans; see SpanData.Link). Zero-allocation.
func (r Ref) SpanLink(k Kind, start time.Time, dur time.Duration, v1, v2, link int64) {
	t := r.t
	if t == nil {
		return
	}
	if r.j != nil {
		r.j.record(t, SpanData{
			Trace: r.id, Kind: k,
			Start: int64(start.Sub(t.epoch)), Dur: int64(dur),
			V1: v1, V2: v2, Link: link,
		})
	}
	if !r.ring {
		return
	}
	sh := &t.shards[mix64(r.id)&t.shardMask]
	s := &sh.slots[(sh.pos.Add(1)-1)&uint64(len(sh.slots)-1)]
	s.seq.Add(1) // odd: write in progress
	s.trace.Store(r.id)
	s.start.Store(int64(start.Sub(t.epoch)))
	s.dur.Store(int64(dur))
	s.meta.Store(uint64(k))
	s.v1.Store(v1)
	s.v2.Store(v2)
	s.link.Store(link)
	s.seq.Add(1) // even: stable
	t.spans.Add(1)
}

// Mark flags a tail-retention event on the request's journey (no-op for
// refs without a journey buffer). Zero-allocation; safe from any
// goroutine.
func (r Ref) Mark(e Event) {
	if r.j != nil {
		r.j.mark(e)
	}
}

// Detach marks the journey as having in-flight writers at request
// completion (e.g. a deadline exceeded with jobs still queued): the
// buffer is still verdicted and retained, but is left to the garbage
// collector instead of being recycled, so straggler span writes can
// never corrupt a reused buffer.
func (r Ref) Detach() {
	if r.j != nil {
		r.j.detached.Store(true)
	}
}

// RequestDone closes one request: the root span is recorded when the
// request was sampled, the request always competes for the slow ring
// (top-K by duration), and when tail retention is on the journey verdict
// runs (keep the full journey, or recycle the buffer). v1 is the
// request's job count, v2 its HTTP status.
func (t *Tracer) RequestDone(ref Ref, id uint64, start time.Time, dur time.Duration, v1, v2 int64) {
	if t == nil {
		return
	}
	ref.Span(KindRequest, start, dur, v1, v2)
	t.slow.offer(SpanData{
		Trace: id, Kind: KindRequest,
		Start: int64(start.Sub(t.epoch)), Dur: int64(dur),
		V1: v1, V2: v2,
	})
	if ref.j != nil {
		t.tail.finish(ref.j, start.Sub(t.epoch), dur, v1, v2)
	}
}

// Stats is the tracer's own health snapshot for /metrics.
type Stats struct {
	SampleEvery   int   `json:"sample_every"`
	SampledTotal  int64 `json:"sampled_requests"`
	SpansTotal    int64 `json:"spans_recorded"`
	SlowRetained  int   `json:"slow_retained"`
	TailEnabled   bool  `json:"tail_enabled,omitempty"`
	TailStarted   int64 `json:"tail_started,omitempty"`
	TailKept      int64 `json:"tail_retained_total,omitempty"`
	TailRetained  int   `json:"tail_retained,omitempty"`
	TailSpanDrops int64 `json:"tail_span_drops,omitempty"`
}

// TraceStats snapshots the tracer's own counters (zero when disabled).
func (t *Tracer) TraceStats() Stats {
	if t == nil {
		return Stats{}
	}
	st := Stats{
		SampleEvery:  t.cfg.SampleEvery,
		SampledTotal: t.sampled.Load(),
		SpansTotal:   t.spans.Load(),
		SlowRetained: t.slow.len(),
	}
	if t.tail != nil {
		st.TailEnabled = true
		st.TailStarted = t.tail.started.Load()
		st.TailKept = t.tail.kept.Load()
		st.TailRetained = t.tail.retainedLen()
		st.TailSpanDrops = t.tail.spanDrops.Load()
	}
	return st
}

// SpanData is one exported span. Link, when nonzero, stitches the span
// to the adjacent layer's unit of work: the device batch key on extend
// kernel spans (resolve with BatchTraceID), the index generation on map
// kernel spans.
type SpanData struct {
	Trace uint64
	Kind  Kind
	Shard int
	Start int64 // ns since tracer epoch
	Dur   int64 // ns
	V1    int64
	V2    int64
	Link  int64
}

// Snapshot copies every stable span out of the rings, oldest first.
// Slots being overwritten mid-read are skipped (bounded retries), so a
// snapshot taken under live recording is consistent span-by-span.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	var out []SpanData
	for si := range t.shards {
		sh := &t.shards[si]
		for i := range sh.slots {
			if sd, ok := readSlot(&sh.slots[i]); ok {
				sd.Shard = si
				out = append(out, sd)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// TraceSpans returns the snapshot filtered to one trace id.
func (t *Tracer) TraceSpans(id uint64) []SpanData {
	all := t.Snapshot()
	out := all[:0]
	for _, s := range all {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// SlowSnapshot returns the retained slowest request spans, slowest first.
func (t *Tracer) SlowSnapshot() []SpanData {
	if t == nil {
		return nil
	}
	return t.slow.snapshot()
}

// Epoch returns the tracer's time base (wall clock at New).
func (t *Tracer) Epoch() (time.Time, int64) {
	if t == nil {
		return time.Time{}, 0
	}
	return t.epoch, t.epochWall
}

// readSlot reads one slot under the seqlock protocol, retrying a bounded
// number of times before giving up on a hot slot.
func readSlot(s *slot) (SpanData, bool) {
	for try := 0; try < 4; try++ {
		s1 := s.seq.Load()
		if s1 == 0 || s1&1 != 0 {
			return SpanData{}, false // empty or mid-write
		}
		sd := SpanData{
			Trace: s.trace.Load(),
			Start: s.start.Load(),
			Dur:   s.dur.Load(),
			Kind:  Kind(s.meta.Load()),
			V1:    s.v1.Load(),
			V2:    s.v2.Load(),
			Link:  s.link.Load(),
		}
		if s.seq.Load() == s1 {
			return sd, true
		}
	}
	return SpanData{}, false
}

// slowRing retains the top-K slowest request spans. The min threshold is
// published through an atomic so the overwhelmingly common case (request
// faster than the current K-th slowest) skips without the lock.
type slowRing struct {
	min     atomic.Int64 // current admission threshold (ns)
	mu      sync.Mutex
	k       int
	floor   int64
	entries []SpanData // min-heap by Dur
}

func (s *slowRing) init(k int, minDur time.Duration) {
	s.k = k
	s.floor = int64(minDur)
	s.min.Store(s.floor)
}

func (s *slowRing) offer(sd SpanData) {
	if sd.Dur < s.min.Load() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) < s.k {
		s.entries = append(s.entries, sd)
		s.up(len(s.entries) - 1)
		if len(s.entries) == s.k {
			s.min.Store(s.entries[0].Dur)
		}
		return
	}
	if sd.Dur <= s.entries[0].Dur {
		return
	}
	s.entries[0] = sd
	s.down(0)
	s.min.Store(s.entries[0].Dur)
}

func (s *slowRing) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.entries[p].Dur <= s.entries[i].Dur {
			return
		}
		s.entries[p], s.entries[i] = s.entries[i], s.entries[p]
		i = p
	}
}

func (s *slowRing) down(i int) {
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(s.entries) && s.entries[l].Dur < s.entries[m].Dur {
			m = l
		}
		if r < len(s.entries) && s.entries[r].Dur < s.entries[m].Dur {
			m = r
		}
		if m == i {
			return
		}
		s.entries[m], s.entries[i] = s.entries[i], s.entries[m]
		i = m
	}
}

func (s *slowRing) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

func (s *slowRing) snapshot() []SpanData {
	s.mu.Lock()
	out := append([]SpanData(nil), s.entries...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	return out
}

// mix64 is SplitMix64's finalizer: the shard and batch-id hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

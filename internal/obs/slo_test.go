package obs

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives the SLO engine deterministically.
type fakeClock struct{ now atomic.Int64 }

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.now.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	return c
}
func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.now.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.now.Add(int64(d)) }

type counterSource struct{ good, total atomic.Int64 }

func (s *counterSource) read() (int64, int64) { return s.good.Load(), s.total.Load() }
func (s *counterSource) add(good, bad int64)  { s.good.Add(good); s.total.Add(good + bad) }

func newTestSLO(target float64, src *counterSource, clk *fakeClock) *SLO {
	return NewSLO(SLOConfig{Interval: -1, MinGap: time.Second, Now: clk.Now},
		Objective{Name: "avail", Target: target, Source: src.read})
}

// TestSLOBurnMath checks the burn-rate arithmetic over an injected
// sample history: bad rate / (1 - target).
func TestSLOBurnMath(t *testing.T) {
	clk := newFakeClock()
	src := &counterSource{}
	s := NewSLO(SLOConfig{Interval: -1, MinGap: time.Second, Now: clk.Now},
		Objective{Name: "avail", Target: 0.999, Source: src.read})

	// 10 minutes of traffic at a 1.5% bad rate: burn = 0.015/0.001 = 15,
	// above the 14.4 fast-page threshold in both gating windows.
	for i := 0; i < 60; i++ {
		clk.advance(10 * time.Second)
		src.add(9850, 150) // per 10s: 10000 events, 150 bad
		s.Tick()
	}
	snap := s.Snapshot()
	if len(snap.Objectives) != 1 {
		t.Fatalf("objectives = %d, want 1", len(snap.Objectives))
	}
	o := snap.Objectives[0]
	var b5m, b1h float64
	for _, w := range o.Windows {
		switch w.Window {
		case "5m":
			b5m = w.Burn
		case "1h":
			b1h = w.Burn
		}
	}
	if b5m < 14.9 || b5m > 15.1 {
		t.Fatalf("5m burn = %g, want ~15", b5m)
	}
	if b1h < 14.9 || b1h > 15.1 {
		t.Fatalf("1h burn = %g, want ~15", b1h)
	}
	if !o.FastBurn || !snap.FastBurn || !snap.Degraded {
		t.Fatalf("fast burn not firing above threshold: %+v", o)
	}
}

// TestSLOHealthyTrafficNoAlert: clean traffic burns nothing.
func TestSLOHealthyTrafficNoAlert(t *testing.T) {
	clk := newFakeClock()
	src := &counterSource{}
	s := newTestSLO(0.999, src, clk)
	for i := 0; i < 60; i++ {
		clk.advance(10 * time.Second)
		src.add(10000, 0)
		s.Tick()
	}
	snap := s.Snapshot()
	o := snap.Objectives[0]
	if o.FastBurn || o.SlowBurn || snap.Degraded {
		t.Fatalf("clean traffic alerted: %+v", o)
	}
	for _, w := range o.Windows {
		if w.Burn != 0 {
			t.Fatalf("window %s burn = %g, want 0", w.Window, w.Burn)
		}
	}
}

// TestSLOBurnRecovers: a past incident ages out of the fast windows
// while still visible in the slow ones.
func TestSLOBurnRecovers(t *testing.T) {
	clk := newFakeClock()
	src := &counterSource{}
	s := newTestSLO(0.99, src, clk)
	// 5 minutes of 100% failure.
	for i := 0; i < 30; i++ {
		clk.advance(10 * time.Second)
		src.add(0, 100)
		s.Tick()
	}
	if !s.Snapshot().Objectives[0].FastBurn {
		t.Fatal("total outage did not trip the fast burn")
	}
	// 20 minutes of clean traffic: the 5m window is now clean.
	for i := 0; i < 120; i++ {
		clk.advance(10 * time.Second)
		src.add(1000, 0)
		s.Tick()
	}
	o := s.Snapshot().Objectives[0]
	if o.FastBurn {
		t.Fatalf("fast burn still firing 20m after recovery: %+v", o.Windows)
	}
	var b30m float64
	for _, w := range o.Windows {
		if w.Window == "30m" {
			b30m = w.Burn
		}
	}
	if b30m <= 0 {
		t.Fatal("30m window forgot the incident too early")
	}
}

// TestSLOMinGap: on-demand ticks inside MinGap do not flood the ring.
func TestSLOMinGap(t *testing.T) {
	clk := newFakeClock()
	src := &counterSource{}
	s := newTestSLO(0.999, src, clk)
	for i := 0; i < 100; i++ {
		clk.advance(time.Millisecond)
		s.Tick()
	}
	s.mu.Lock()
	n := len(s.samples[0])
	s.mu.Unlock()
	if n != 1 { // the t0 baseline only; every tick fell inside MinGap
		t.Fatalf("samples = %d, want 1 (MinGap suppression)", n)
	}
}

// TestSLOSampleEviction bounds the per-objective ring.
func TestSLOSampleEviction(t *testing.T) {
	clk := newFakeClock()
	src := &counterSource{}
	s := newTestSLO(0.999, src, clk)
	// 8 hours of 10s samples: far beyond the 6h10m retention.
	for i := 0; i < 8*360; i++ {
		clk.advance(10 * time.Second)
		src.add(10, 0)
		s.Tick()
	}
	s.mu.Lock()
	n := len(s.samples[0])
	oldest := s.samples[0][0].t
	s.mu.Unlock()
	if n > sloMaxSamples {
		t.Fatalf("samples = %d, exceeds cap %d", n, sloMaxSamples)
	}
	if age := clk.Now().Sub(oldest); age > sloRetain+time.Minute {
		t.Fatalf("oldest sample is %s old, beyond the retention window", age)
	}
}

// TestSLOCollect renders the Prometheus families.
func TestSLOCollect(t *testing.T) {
	clk := newFakeClock()
	src := &counterSource{}
	s := newTestSLO(0.999, src, clk)
	clk.advance(10 * time.Second)
	src.add(100, 0)
	s.Tick()

	reg := NewRegistry()
	reg.Register(func(p *Prom) { s.Collect(p) })
	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{
		`seedex_slo_target{objective="avail"} 0.999`,
		`seedex_slo_good_total{objective="avail"} 100`,
		`seedex_slo_events_total{objective="avail"} 100`,
		`seedex_slo_burn_rate{objective="avail",window="5m"}`,
		`seedex_slo_alert{objective="avail",severity="page"} 0`,
		`seedex_slo_alert{objective="avail",severity="ticket"} 0`,
		`seedex_slo_degraded 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestSLOCloseIdempotent: Close is safe twice and on nil.
func TestSLOCloseIdempotent(t *testing.T) {
	var nilSLO *SLO
	nilSLO.Close() // must not panic
	nilSLO.Tick()
	if snap := nilSLO.Snapshot(); len(snap.Objectives) != 0 {
		t.Fatal("nil SLO snapshot not empty")
	}
	s := newTestSLO(0.999, &counterSource{}, newFakeClock())
	s.Start()
	s.Close()
	s.Close()
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	ref := tr.Sample(42)
	if ref.Sampled() {
		t.Fatal("nil tracer sampled a request")
	}
	ref.Span(KindKernel, time.Now(), time.Millisecond, 0, 0)
	tr.RequestDone(ref, 42, time.Now(), time.Millisecond, 1, 200)
	tr.Batch(7).Span(KindDevice, time.Now(), time.Millisecond, 1, 8)
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
	if got := tr.SlowSnapshot(); got != nil {
		t.Fatalf("nil tracer slow snapshot = %v", got)
	}
	if s := tr.TraceStats(); s != (Stats{}) {
		t.Fatalf("nil tracer stats = %+v", s)
	}
	if New(Config{SampleEvery: 0}) != nil {
		t.Fatal("SampleEvery=0 should build a nil tracer")
	}
}

func TestSpanRoundTrip(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSpans: 64, Shards: 2})
	ref := tr.Sample(99)
	if !ref.Sampled() {
		t.Fatal("SampleEvery=1 must sample every request")
	}
	start := time.Now()
	ref.Span(KindKernel, start, 3*time.Millisecond, TierSWAR8, 16)
	ref.Span(KindCheck, start.Add(3*time.Millisecond), 0, 2, 1)
	tr.RequestDone(ref, 99, start, 5*time.Millisecond, 4, 200)

	spans := tr.TraceSpans(99)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	byKind := map[Kind]SpanData{}
	for _, s := range spans {
		byKind[s.Kind] = s
	}
	k := byKind[KindKernel]
	if k.Dur != int64(3*time.Millisecond) || k.V1 != TierSWAR8 || k.V2 != 16 {
		t.Fatalf("kernel span %+v", k)
	}
	if r := byKind[KindRequest]; r.V1 != 4 || r.V2 != 200 {
		t.Fatalf("request span %+v", r)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 10})
	sampled := 0
	for i := 0; i < 1000; i++ {
		if tr.Sample(uint64(i)).Sampled() {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 1000 at 1/10", sampled)
	}
	if s := tr.TraceStats(); s.SampledTotal != 100 {
		t.Fatalf("stats sampled = %d", s.SampledTotal)
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSpans: 8, Shards: 1})
	ref := tr.Sample(1)
	for i := 0; i < 100; i++ {
		ref.Span(KindKernel, time.Now(), time.Duration(i), int64(i), 0)
	}
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("ring of 8 held %d spans", len(spans))
	}
	// The survivors are the last 8 recorded.
	for _, s := range spans {
		if s.V1 < 92 {
			t.Fatalf("old span survived overwrite: %+v", s)
		}
	}
}

func TestSlowRingTopK(t *testing.T) {
	tr := New(Config{SampleEvery: 1 << 30, SlowK: 4})
	start := time.Now()
	for i := 1; i <= 20; i++ {
		// Unsampled requests still compete for the slow ring.
		ref := tr.Sample(uint64(i))
		tr.RequestDone(ref, uint64(i), start, time.Duration(i)*time.Millisecond, 1, 200)
	}
	slow := tr.SlowSnapshot()
	if len(slow) != 4 {
		t.Fatalf("retained %d, want 4", len(slow))
	}
	for i, s := range slow {
		want := time.Duration(20-i) * time.Millisecond
		if s.Dur != int64(want) {
			t.Fatalf("slow[%d] dur %d, want %d", i, s.Dur, want)
		}
	}
}

func TestRequestIDRoundTrip(t *testing.T) {
	id, str := NewRequestID()
	if id == 0 || len(str) != 16 {
		t.Fatalf("minted id %d %q", id, str)
	}
	back, echoed := RequestID(str)
	if back != id || echoed != str {
		t.Fatalf("round trip: %d %q -> %d %q", id, str, back, echoed)
	}
	// Short hex parses exactly.
	if v, s := RequestID("ff"); v != 0xff || s != "ff" {
		t.Fatalf("hex parse: %d %q", v, s)
	}
	// Arbitrary client ids echo verbatim and hash deterministically.
	v1, s1 := RequestID("client-abc-123")
	v2, _ := RequestID("client-abc-123")
	if s1 != "client-abc-123" || v1 != v2 || v1 == 0 {
		t.Fatalf("hashed id: %d %q vs %d", v1, s1, v2)
	}
	// Distinct minted ids.
	id2, _ := NewRequestID()
	if id2 == id {
		t.Fatal("minted ids collide")
	}
}

func TestPow2Buckets(t *testing.T) {
	counts := make([]int64, 12)
	counts[3] = 5  // values 4..7
	counts[5] = 2  // values 16..31
	counts[10] = 1 // values 512..1023
	bs := Pow2Buckets(counts, 1)
	if len(bs) != 8 {
		t.Fatalf("got %d buckets, want 8 (trimmed to [3,10])", len(bs))
	}
	if bs[0].LE != 7 || bs[0].Cum != 5 {
		t.Fatalf("first bucket %+v", bs[0])
	}
	last := bs[len(bs)-1]
	if last.LE != 1023 || last.Cum != 8 {
		t.Fatalf("last bucket %+v", last)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].LE <= bs[i-1].LE || bs[i].Cum < bs[i-1].Cum {
			t.Fatalf("buckets not monotone at %d: %+v then %+v", i, bs[i-1], bs[i])
		}
	}
	if got := Pow2Buckets(make([]int64, 8), 1); got != nil {
		t.Fatalf("empty histogram yields %v", got)
	}
	// Scaling applies to the bounds (the comparand repeats the runtime
	// float product — a constant literal would fold exactly and differ by
	// one ulp).
	ns := Pow2Buckets(counts, 1e-9)
	scale := 1e-9
	if want := float64(7) * scale; ns[0].LE != want {
		t.Fatalf("scaled le %v, want %v", ns[0].LE, want)
	}
}

func TestChromeTraceExportIsValidJSON(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	ref := tr.Sample(7)
	start := time.Now()
	ref.Span(KindQueueWait, start, time.Millisecond, 4, 0)
	ref.Span(KindKernel, start.Add(time.Millisecond), 2*time.Millisecond, TierSWAR16, 8)
	ref.Span(KindCheck, start.Add(3*time.Millisecond), 0, 2, 1)
	tr.RequestDone(ref, 7, start, 4*time.Millisecond, 1, 200)

	_, epochWall := tr.Epoch()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, epochWall, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
		if e.Name == "kernel" && e.Args["tier"] != "swar16" {
			t.Fatalf("kernel args %v", e.Args)
		}
		if e.Name == "check" {
			if e.Args["outcome"] != "pass-checks" || e.Args["pass"] != true {
				t.Fatalf("check args %v", e.Args)
			}
		}
	}
	for _, want := range []string{"queue_wait", "kernel", "check", "request"} {
		if !names[want] {
			t.Fatalf("missing %q event in %v", want, names)
		}
	}
}

func TestNDJSONExport(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	ref := tr.Sample(5)
	ref.Span(KindRerun, time.Now(), time.Millisecond, 3, 1)
	var buf bytes.Buffer
	_, epochWall := tr.Epoch()
	if err := WriteNDJSON(&buf, epochWall, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines", len(lines))
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("invalid NDJSON line: %v\n%s", err, lines[0])
	}
	if obj["span"] != "host_rerun" || obj["outcome"] != "fail-s1" {
		t.Fatalf("line %v", obj)
	}
	if obj["trace"] != FormatID(5) {
		t.Fatalf("trace arg %v", obj["trace"])
	}
}

// TestConcurrentRecordAndSnapshot drives many writers against live
// snapshot readers; under -race this proves the seqlock ring is clean.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSpans: 256, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ref := tr.Sample(uint64(w + 1))
			for i := 0; i < 5000; i++ {
				ref.Span(Kind(i%int(numKinds)), time.Now(), time.Duration(i), int64(i), int64(w))
				tr.RequestDone(ref, uint64(w+1), time.Now(), time.Duration(i), 1, 200)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		tr.Snapshot()
		tr.SlowSnapshot()
		tr.TraceSpans(1)
		select {
		case <-done:
			if tr.TraceStats().SpansTotal == 0 {
				t.Error("no spans recorded")
			}
			return
		default:
		}
	}
}

// BenchmarkSpanDisabled pins the disabled-tracer fast path: a zero Ref
// span site must not allocate.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	ref := tr.Sample(1)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref.Span(KindKernel, start, time.Millisecond, 0, 0)
	}
}

// BenchmarkSpanEnabled measures the recording cost of one span.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := New(Config{SampleEvery: 1})
	ref := tr.Sample(1)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref.Span(KindKernel, start, time.Millisecond, 0, 0)
	}
}

package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tail-based trace retention. Head sampling (Config.SampleEvery) keeps a
// statistical baseline, but 1/N sampling misses exactly the rare,
// cross-cutting events that matter operationally: a work steal, a
// failover reroute, a prefilter rescue fixpoint, an index reload in
// flight, a breaker trip. Tail retention closes that gap: every request
// records its spans into a reusable per-request journey buffer, and a
// verdict at completion keeps the full journey when the request breached
// its latency budget, failed (429/500/503/504/413), or crossed one of
// the flagged lifecycle events. Kept journeys land in a bounded ring for
// /debug/journeys, flight-recorder dumps, and stitched timeline views.
//
// The hot path stays zero-allocation: journey buffers come from a
// sync.Pool checked out on the handler goroutine at admission; workers
// record by claiming a slot index with one atomic add and storing plain
// fields, publishing each slot with an atomic release flag. Buffers are
// recycled only when the handler observed every job's delivery (the
// pending-done close gives happens-before); requests that time out with
// jobs still in flight detach the buffer to the garbage collector so a
// straggler write can never corrupt a reused buffer.

// Event flags the tail-relevant lifecycle events a request can cross.
// Any marked event makes the verdict keep the journey.
type Event uint32

const (
	// EvSteal: a batch carrying one of the request's jobs executed on a
	// thief shard (work stealing).
	EvSteal Event = 1 << iota
	// EvReroute: admission failed over from the picked shard to a peer.
	EvReroute
	// EvRescue: the prefilter rescue fixpoint loop re-admitted chains.
	EvRescue
	// EvReloadOverlap: the request overlapped a reference-index reload
	// (generation swap observed mid-request, or a reload was in flight).
	EvReloadOverlap
	// EvFault: a device fault, retry exhaustion, or open breaker forced
	// host-side containment for one of the request's batches.
	EvFault

	numEvents = 5
)

var eventNames = [numEvents]string{
	"steal", "reroute", "rescue", "reload-overlap", "fault",
}

// Names expands the event bit set for exports.
func (e Event) Names() []string {
	if e == 0 {
		return nil
	}
	var out []string
	for i := 0; i < numEvents; i++ {
		if e&(1<<i) != 0 {
			out = append(out, eventNames[i])
		}
	}
	return out
}

// TailConfig tunes tail-based retention (Config.Tail).
type TailConfig struct {
	// Enabled turns tail retention on: every request gets a journey
	// buffer and a completion verdict.
	Enabled bool
	// Budget is the per-request latency budget; a request slower than
	// this is kept regardless of status or events (default 100ms).
	Budget time.Duration
	// MaxSpans is each journey buffer's span capacity; spans beyond it
	// are dropped and counted (default 256).
	MaxSpans int
	// Keep is the capacity of the kept-journeys ring (default 256).
	Keep int
}

func (c TailConfig) withDefaults() TailConfig {
	if c.Budget <= 0 {
		c.Budget = 100 * time.Millisecond
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 256
	}
	if c.Keep <= 0 {
		c.Keep = 256
	}
	return c
}

// jslot is one journey buffer slot: plain span fields published by an
// atomic release flag, so a verdict copy racing a straggler writer reads
// only fully-written slots.
type jslot struct {
	sd SpanData
	ok atomic.Bool
}

// journey is one request's reusable span buffer.
type journey struct {
	id       uint64
	n        atomic.Int32  // claimed slots (may exceed len(slots) under overflow)
	events   atomic.Uint32 // Event bit set
	detached atomic.Bool   // in-flight writers at completion: do not recycle
	slots    []jslot
}

// record claims a slot and publishes one span. Zero-allocation.
func (j *journey) record(t *Tracer, sd SpanData) {
	i := int(j.n.Add(1)) - 1
	if i >= len(j.slots) {
		t.tail.spanDrops.Add(1)
		return
	}
	j.slots[i].sd = sd
	j.slots[i].ok.Store(true)
}

// mark sets event bits with a CAS loop (atomic Or needs go1.23+ and the
// module pins go1.22). Zero-allocation.
func (j *journey) mark(e Event) {
	for {
		old := j.events.Load()
		if old&uint32(e) == uint32(e) {
			return
		}
		if j.events.CompareAndSwap(old, old|uint32(e)) {
			return
		}
	}
}

// reset prepares a recycled buffer for the next checkout. Only called on
// buffers with no in-flight writers (not detached).
func (j *journey) reset() {
	n := int(j.n.Load())
	if n > len(j.slots) {
		n = len(j.slots)
	}
	for i := 0; i < n; i++ {
		j.slots[i].ok.Store(false)
		j.slots[i].sd = SpanData{}
	}
	j.n.Store(0)
	j.events.Store(0)
	j.detached.Store(false)
	j.id = 0
}

// JourneyData is one kept journey: the request verdict plus a copy of
// every span the request recorded, start-ordered.
type JourneyData struct {
	Trace   uint64     `json:"-"`
	TraceID string     `json:"trace"`
	Start   int64      `json:"start_ns"` // ns since tracer epoch
	Dur     int64      `json:"dur_ns"`
	Jobs    int64      `json:"jobs"`
	Status  int64      `json:"status"`
	Events  []string   `json:"events,omitempty"`
	Verdict []string   `json:"verdict"`
	Spans   []SpanData `json:"spans"`
}

// tailState is the tracer's tail-retention machinery.
type tailState struct {
	cfg  TailConfig
	pool sync.Pool

	started   atomic.Int64 // journeys checked out
	kept      atomic.Int64 // journeys retained by the verdict
	spanDrops atomic.Int64 // spans dropped on full journey buffers

	mu   sync.Mutex
	ring []JourneyData // kept journeys, ring of cfg.Keep
	pos  int
}

func newTailState(cfg TailConfig) *tailState {
	ts := &tailState{cfg: cfg.withDefaults()}
	ts.pool.New = func() any {
		return &journey{slots: make([]jslot, ts.cfg.MaxSpans)}
	}
	return ts
}

// checkout hands a journey buffer to one request. Runs on the handler
// goroutine at admission; a pool miss allocates there, never on the
// batch-worker hot path.
func (ts *tailState) checkout(id uint64) *journey {
	j := ts.pool.Get().(*journey)
	j.id = id
	ts.started.Add(1)
	return j
}

// finish runs the retention verdict for one completed request and either
// keeps the journey (copying its published spans) or recycles the
// buffer. start is the root span's offset from the tracer epoch.
func (ts *tailState) finish(j *journey, start time.Duration, dur time.Duration, jobs, status int64) {
	events := Event(j.events.Load())
	var verdict []string
	if dur > ts.cfg.Budget {
		verdict = append(verdict, "latency-budget")
	}
	switch status {
	case 413, 429, 500, 503, 504:
		verdict = append(verdict, "status")
	}
	if events != 0 {
		verdict = append(verdict, "event")
	}
	if len(verdict) == 0 {
		if !j.detached.Load() {
			j.reset()
			ts.pool.Put(j)
		}
		return
	}

	n := int(j.n.Load())
	if n > len(j.slots) {
		n = len(j.slots)
	}
	spans := make([]SpanData, 0, n)
	for i := 0; i < n; i++ {
		if j.slots[i].ok.Load() { // acquire: pairs with record's release store
			spans = append(spans, j.slots[i].sd)
		}
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
	jd := JourneyData{
		Trace:   j.id,
		TraceID: FormatID(j.id),
		Start:   int64(start),
		Dur:     int64(dur),
		Jobs:    jobs,
		Status:  status,
		Events:  events.Names(),
		Verdict: verdict,
		Spans:   spans,
	}
	ts.kept.Add(1)
	ts.mu.Lock()
	if len(ts.ring) < ts.cfg.Keep {
		ts.ring = append(ts.ring, jd)
	} else {
		ts.ring[ts.pos] = jd
	}
	ts.pos = (ts.pos + 1) % ts.cfg.Keep
	ts.mu.Unlock()

	if !j.detached.Load() {
		j.reset()
		ts.pool.Put(j)
	}
}

func (ts *tailState) retainedLen() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.ring)
}

// snapshot copies the kept journeys, newest first.
func (ts *tailState) snapshot() []JourneyData {
	ts.mu.Lock()
	out := append([]JourneyData(nil), ts.ring...)
	ts.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start > out[j].Start })
	return out
}

// TailEnabled reports whether tail retention is on.
func (t *Tracer) TailEnabled() bool { return t != nil && t.tail != nil }

// TailBudget returns the tail latency budget (0 when tail is off).
func (t *Tracer) TailBudget() time.Duration {
	if t == nil || t.tail == nil {
		return 0
	}
	return t.tail.cfg.Budget
}

// Journeys returns the kept journeys, newest first (nil when tail
// retention is off).
func (t *Tracer) Journeys() []JourneyData {
	if t == nil || t.tail == nil {
		return nil
	}
	return t.tail.snapshot()
}

// Journey returns the kept journey for one trace id, if retained.
func (t *Tracer) Journey(id uint64) (JourneyData, bool) {
	if t == nil || t.tail == nil {
		return JourneyData{}, false
	}
	t.tail.mu.Lock()
	defer t.tail.mu.Unlock()
	for i := len(t.tail.ring) - 1; i >= 0; i-- {
		if t.tail.ring[i].Trace == id {
			return t.tail.ring[i], true
		}
	}
	return JourneyData{}, false
}

// Attribution decomposes one request's wall-clock budget across pipeline
// stages. The decomposition is a priority sweep over the journey's spans
// projected onto the root request interval: at every instant the time is
// charged to the deepest active stage (host rerun > check > kernel >
// queue wait > batch wait > admission residue), so the stage durations
// sum exactly to the root duration.
type Attribution struct {
	TotalNs     int64 `json:"total_ns"`
	AdmissionNs int64 `json:"admission_ns"`
	QueueNs     int64 `json:"queue_ns"`
	BatchWaitNs int64 `json:"batch_wait_ns"`
	KernelNs    int64 `json:"kernel_ns"`
	CheckNs     int64 `json:"check_ns"`
	RerunNs     int64 `json:"rerun_ns"`

	AdmissionFrac float64 `json:"admission_frac"`
	QueueFrac     float64 `json:"queue_frac"`
	BatchWaitFrac float64 `json:"batch_wait_frac"`
	KernelFrac    float64 `json:"kernel_frac"`
	CheckFrac     float64 `json:"check_frac"`
	RerunFrac     float64 `json:"rerun_frac"`
}

// stage priority for the attribution sweep (higher wins).
const (
	stageAdmission = iota
	stageBatchWait
	stageQueue
	stageKernel
	stageCheck
	stageRerun
	numStages
)

func stageOf(k Kind) (int, bool) {
	switch k {
	case KindQueueWait:
		return stageQueue, true
	case KindFlush:
		return stageBatchWait, true
	case KindKernel, KindDevice:
		return stageKernel, true
	case KindCheck:
		return stageCheck, true
	case KindRerun, KindRetry:
		return stageRerun, true
	}
	return 0, false
}

// Attribute computes the per-stage budget attribution for one span set
// (typically a kept journey or a /debug/traces?trace= span set). The
// root interval is the KindRequest span when present, else the span
// envelope. Stage durations sum exactly to TotalNs.
func Attribute(spans []SpanData) Attribution {
	var a Attribution
	if len(spans) == 0 {
		return a
	}
	// Root interval.
	var r0, r1 int64
	found := false
	for _, s := range spans {
		if s.Kind == KindRequest {
			r0, r1, found = s.Start, s.Start+s.Dur, true
			break
		}
	}
	if !found {
		r0, r1 = spans[0].Start, spans[0].Start+spans[0].Dur
		for _, s := range spans {
			if s.Start < r0 {
				r0 = s.Start
			}
			if e := s.Start + s.Dur; e > r1 {
				r1 = e
			}
		}
	}
	if r1 <= r0 {
		return a
	}
	a.TotalNs = r1 - r0

	// Sweep events: +1/-1 per stage at clamped span boundaries.
	type edge struct {
		t     int64
		stage int
		d     int
	}
	var edges []edge
	for _, s := range spans {
		st, ok := stageOf(s.Kind)
		if !ok || s.Dur <= 0 {
			continue
		}
		b, e := s.Start, s.Start+s.Dur
		if b < r0 {
			b = r0
		}
		if e > r1 {
			e = r1
		}
		if e <= b {
			continue
		}
		edges = append(edges, edge{b, st, +1}, edge{e, st, -1})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })

	var active [numStages]int
	stageNs := [numStages]int64{}
	cur := r0
	ei := 0
	for cur < r1 {
		next := r1
		if ei < len(edges) {
			// Apply all edges at cur, then advance to the next edge time.
			for ei < len(edges) && edges[ei].t <= cur {
				active[edges[ei].stage] += edges[ei].d
				ei++
			}
			if ei < len(edges) && edges[ei].t < next {
				next = edges[ei].t
			}
		}
		if next <= cur {
			break
		}
		top := stageAdmission
		for s := numStages - 1; s > stageAdmission; s-- {
			if active[s] > 0 {
				top = s
				break
			}
		}
		stageNs[top] += next - cur
		cur = next
	}
	a.AdmissionNs = stageNs[stageAdmission]
	a.BatchWaitNs = stageNs[stageBatchWait]
	a.QueueNs = stageNs[stageQueue]
	a.KernelNs = stageNs[stageKernel]
	a.CheckNs = stageNs[stageCheck]
	a.RerunNs = stageNs[stageRerun]
	tot := float64(a.TotalNs)
	a.AdmissionFrac = float64(a.AdmissionNs) / tot
	a.BatchWaitFrac = float64(a.BatchWaitNs) / tot
	a.QueueFrac = float64(a.QueueNs) / tot
	a.KernelFrac = float64(a.KernelNs) / tot
	a.CheckFrac = float64(a.CheckNs) / tot
	a.RerunFrac = float64(a.RerunNs) / tot
	return a
}

package obs

import (
	"io"
	"log/slog"
	"runtime"
)

// Structured logging and build identity for the command binaries. The
// servers log one JSON object per line via log/slog; request- and
// trace-scoped lines carry request_id / trace_id fields so a log line,
// a /debug/traces timeline, and a retained journey correlate on the
// same id.

// BuildInfo identifies the running binary, stamped from -ldflags in the
// command mains (version/commit default to dev/unknown in plain builds).
type BuildInfo struct {
	Version string `json:"version"`
	Commit  string `json:"commit"`
}

func (b BuildInfo) WithDefaults() BuildInfo {
	if b.Version == "" {
		b.Version = "dev"
	}
	if b.Commit == "" {
		b.Commit = "unknown"
	}
	return b
}

// GoVersion reports the toolchain that built the binary.
func (BuildInfo) GoVersion() string { return runtime.Version() }

// NewLogger builds the JSON logger the command binaries share: one
// object per line with a component field, millisecond wall timestamps.
func NewLogger(w io.Writer, component string) *slog.Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo})
	return slog.New(h).With("component", component)
}

// TraceAttr renders a trace id as a correlation attribute.
func TraceAttr(id uint64) slog.Attr { return slog.String("trace_id", FormatID(id)) }

// RequestAttr renders a request id as a correlation attribute.
func RequestAttr(id string) slog.Attr { return slog.String("request_id", id) }

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Prometheus text exposition (format version 0.0.4), built as a small
// pull registry: subsystems register collector funcs that emit metric
// families through a Prom writer at scrape time, adapting the repo's
// existing atomic counters and power-of-two histograms without imposing
// any instrumentation types on the hot paths.

// Collector emits one subsystem's metrics into a scrape.
type Collector func(p *Prom)

// Registry holds the scrape's collectors.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends one collector (scraped in registration order).
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// ContentType is the scrape response Content-Type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText runs every collector and renders the exposition text.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	cs := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	p := &Prom{w: bufio.NewWriter(w), seen: map[string]bool{}}
	for _, c := range cs {
		c(p)
	}
	if err := p.w.Flush(); err != nil {
		return err
	}
	return p.err
}

// Prom is the writer handed to collectors: each method emits one sample
// (HELP/TYPE lines are emitted once per family, on first use).
type Prom struct {
	w    *bufio.Writer
	seen map[string]bool
	err  error
}

func (p *Prom) header(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	help = strings.ReplaceAll(help, `\`, `\\`)
	help = strings.ReplaceAll(help, "\n", `\n`)
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// labelPairs renders "k1=v1,k2=v2,..." pairs ({} omitted when empty).
func labelPairs(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.ReplaceAll(labels[i+1], `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatVal(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one counter sample. labels are alternating key, value.
func (p *Prom) Counter(name, help string, v float64, labels ...string) {
	p.header(name, help, "counter")
	fmt.Fprintf(p.w, "%s%s %s\n", name, labelPairs(labels), formatVal(v))
}

// Gauge emits one gauge sample.
func (p *Prom) Gauge(name, help string, v float64, labels ...string) {
	p.header(name, help, "gauge")
	fmt.Fprintf(p.w, "%s%s %s\n", name, labelPairs(labels), formatVal(v))
}

// Bucket is one cumulative histogram bucket: the count of observations
// with value <= LE.
type Bucket struct {
	LE  float64
	Cum int64
}

// Histogram emits one Prometheus histogram family: cumulative buckets
// (an +Inf bucket with the total count is appended automatically), sum
// and count.
func (p *Prom) Histogram(name, help string, buckets []Bucket, sum float64, count int64) {
	p.header(name, help, "histogram")
	for _, b := range buckets {
		fmt.Fprintf(p.w, "%s_bucket{le=%q} %d\n", name, formatVal(b.LE), b.Cum)
	}
	fmt.Fprintf(p.w, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
	fmt.Fprintf(p.w, "%s_sum %s\n", name, formatVal(sum))
	fmt.Fprintf(p.w, "%s_count %d\n", name, count)
}

// Quantiles emits interpolated quantile estimates as a gauge family
// labelled by quantile (the pow-2 histograms cannot back a native
// Prometheus summary, so the estimates ride alongside the histogram).
func (p *Prom) Quantiles(name, help string, qv map[float64]float64) {
	p.header(name, help, "gauge")
	qs := make([]float64, 0, len(qv))
	for q := range qv {
		qs = append(qs, q)
	}
	sort.Float64s(qs)
	for _, q := range qs {
		fmt.Fprintf(p.w, "%s{quantile=%q} %s\n", name, strconv.FormatFloat(q, 'g', -1, 64), formatVal(qv[q]))
	}
}

// Pow2Buckets adapts a power-of-two histogram (counts[i] holds values v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i - 1]) into cumulative
// Prometheus buckets with exact inclusive upper bounds le = (2^i - 1) *
// scale. Empty buckets outside the observed range are trimmed (the +Inf
// bucket the Histogram writer appends covers the tail).
func Pow2Buckets(counts []int64, scale float64) []Bucket {
	first, last := -1, -1
	for i, c := range counts {
		if c != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	out := make([]Bucket, 0, last-first+1)
	var cum int64
	for i := first; i <= last; i++ {
		cum += counts[i]
		le := float64(int64(1)<<uint(i) - 1)
		out = append(out, Bucket{LE: le * scale, Cum: cum})
	}
	return out
}

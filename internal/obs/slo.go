package obs

import (
	"sync"
	"time"
)

// SLO burn-rate engine. Objectives declare a target good/total ratio and
// a source reading the cumulative counters (derived from the serving
// stack's existing atomic counters and pow2 histograms — no new
// hot-path accounting). A sampler snapshots every objective's (good,
// total) on a cadence; burn rates are then computed over multiple
// trailing windows as
//
//	burn(w) = badRate(w) / (1 - target)
//
// so burn == 1 means the error budget is being consumed exactly at the
// sustainable rate. Alerting follows the standard multi-window
// multi-burn-rate recipe: a fast page when both the 5m and 1h windows
// burn above 14.4 (budget gone in ~2 days), a slow ticket when both the
// 30m and 6h windows burn above 6 (budget gone in ~5 days). Requiring
// the short AND long window to agree makes alerts fire fast on real
// regressions yet reset quickly once the cause clears.

// Objective is one declared service-level objective.
type Objective struct {
	// Name labels the objective in metrics and JSON (e.g.
	// "extend-latency-p99").
	Name string
	// Help describes the objective for humans.
	Help string
	// Target is the good/total fraction the objective promises
	// (e.g. 0.999).
	Target float64
	// Source reads the cumulative good and total event counts. Both must
	// be monotone non-decreasing; good <= total.
	Source func() (good, total int64)
}

// SLOConfig tunes the engine.
type SLOConfig struct {
	// Interval is the background sampling cadence (default 10s; <0
	// disables the background sampler — callers then drive Tick).
	Interval time.Duration
	// MinGap is the minimum spacing between retained samples, protecting
	// the ring from high-frequency on-demand ticks (default Interval/2).
	MinGap time.Duration
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Burn windows: 5m/1h gate the fast (page) alert, 30m/6h the slow
// (ticket) alert.
var sloWindows = []struct {
	name string
	d    time.Duration
}{
	{"5m", 5 * time.Minute},
	{"30m", 30 * time.Minute},
	{"1h", time.Hour},
	{"6h", 6 * time.Hour},
}

const (
	fastBurnThreshold = 14.4
	slowBurnThreshold = 6.0
	sloRetain         = 6*time.Hour + 10*time.Minute
	sloMaxSamples     = 8192
)

type sloSample struct {
	t           time.Time
	good, total int64
}

// SLO evaluates declared objectives over multi-window burn rates.
type SLO struct {
	cfg  SLOConfig
	objs []Objective

	mu      sync.Mutex
	samples [][]sloSample // per objective, time-ordered
	last    time.Time

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewSLO builds the engine and records the t0 baseline sample. Start
// launches the background sampler; Tick records one sample on demand.
func NewSLO(cfg SLOConfig, objs ...Objective) *SLO {
	if cfg.Interval == 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.MinGap <= 0 {
		cfg.MinGap = cfg.Interval / 2
		if cfg.MinGap <= 0 {
			cfg.MinGap = time.Second
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &SLO{
		cfg:     cfg,
		objs:    objs,
		samples: make([][]sloSample, len(objs)),
		stop:    make(chan struct{}),
	}
	s.tickLocked(s.cfg.Now(), true)
	return s
}

// Start launches the background sampler (no-op when Interval < 0).
func (s *SLO) Start() {
	if s == nil || s.cfg.Interval < 0 {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(s.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.Tick()
			case <-s.stop:
				return
			}
		}
	}()
}

// Close stops the background sampler.
func (s *SLO) Close() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Tick records one sample per objective (skipped when the last retained
// sample is younger than MinGap). Safe from any goroutine.
func (s *SLO) Tick() {
	if s == nil {
		return
	}
	s.tickLocked(s.cfg.Now(), false)
}

func (s *SLO) tickLocked(now time.Time, force bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !force && now.Sub(s.last) < s.cfg.MinGap {
		return
	}
	s.last = now
	for i, o := range s.objs {
		good, total := o.Source()
		s.samples[i] = append(s.samples[i], sloSample{t: now, good: good, total: total})
		// Evict beyond the longest window (+slack) and hard-cap.
		cut := 0
		for cut < len(s.samples[i])-1 && now.Sub(s.samples[i][cut].t) > sloRetain {
			cut++
		}
		if over := len(s.samples[i]) - sloMaxSamples; over > cut {
			cut = over
		}
		if cut > 0 {
			s.samples[i] = append(s.samples[i][:0], s.samples[i][cut:]...)
		}
	}
}

// WindowBurn is one trailing window's burn evaluation.
type WindowBurn struct {
	Window  string  `json:"window"`
	Seconds float64 `json:"seconds"` // actual span covered (may be < window early in life)
	BadRate float64 `json:"bad_rate"`
	Burn    float64 `json:"burn_rate"`
}

// ObjectiveStatus is one objective's full evaluation.
type ObjectiveStatus struct {
	Name     string       `json:"name"`
	Help     string       `json:"help,omitempty"`
	Target   float64      `json:"target"`
	Good     int64        `json:"good"`
	Total    int64        `json:"total"`
	Windows  []WindowBurn `json:"windows"`
	FastBurn bool         `json:"fast_burn"`
	SlowBurn bool         `json:"slow_burn"`
}

// SLOSnapshot is the engine's full state for /debug/slo and the flight
// recorder.
type SLOSnapshot struct {
	Objectives []ObjectiveStatus `json:"objectives"`
	FastBurn   bool              `json:"fast_burn"`
	Degraded   bool              `json:"degraded"` // any fast or slow alert active
}

// Snapshot evaluates every objective over the burn windows.
func (s *SLO) Snapshot() SLOSnapshot {
	var snap SLOSnapshot
	if s == nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.last
	for i, o := range s.objs {
		ss := s.samples[i]
		st := ObjectiveStatus{Name: o.Name, Help: o.Help, Target: o.Target}
		if n := len(ss); n > 0 {
			st.Good, st.Total = ss[n-1].good, ss[n-1].total
		}
		burns := map[string]float64{}
		for _, w := range sloWindows {
			wb := burnOver(ss, now, w.d, o.Target)
			wb.Window = w.name
			st.Windows = append(st.Windows, wb)
			burns[w.name] = wb.Burn
		}
		st.FastBurn = burns["5m"] >= fastBurnThreshold && burns["1h"] >= fastBurnThreshold
		st.SlowBurn = burns["30m"] >= slowBurnThreshold && burns["6h"] >= slowBurnThreshold
		snap.FastBurn = snap.FastBurn || st.FastBurn
		snap.Degraded = snap.Degraded || st.FastBurn || st.SlowBurn
		snap.Objectives = append(snap.Objectives, st)
	}
	return snap
}

// burnOver computes one window's burn rate from the sample ring: the
// delta between the newest sample and the oldest sample still inside the
// window. With fewer than two samples (or no traffic in the window) the
// burn is zero.
func burnOver(ss []sloSample, now time.Time, w time.Duration, target float64) WindowBurn {
	var wb WindowBurn
	if len(ss) < 2 {
		return wb
	}
	newest := ss[len(ss)-1]
	oldest := ss[0]
	for _, smp := range ss {
		if now.Sub(smp.t) <= w {
			oldest = smp
			break
		}
	}
	span := newest.t.Sub(oldest.t)
	if span <= 0 {
		return wb
	}
	wb.Seconds = span.Seconds()
	dTotal := newest.total - oldest.total
	dGood := newest.good - oldest.good
	if dTotal <= 0 {
		return wb
	}
	bad := float64(dTotal-dGood) / float64(dTotal)
	if bad < 0 {
		bad = 0
	}
	wb.BadRate = bad
	budget := 1 - target
	if budget <= 0 {
		budget = 1e-9
	}
	wb.Burn = bad / budget
	return wb
}

// Collect writes the seedex_slo_* Prometheus families.
func (s *SLO) Collect(p *Prom) {
	if s == nil {
		return
	}
	snap := s.Snapshot()
	for _, o := range snap.Objectives {
		p.Gauge("seedex_slo_target", "Declared objective target (good/total fraction).",
			o.Target, "objective", o.Name)
		p.Counter("seedex_slo_good_total", "Cumulative good events per objective.",
			float64(o.Good), "objective", o.Name)
		p.Counter("seedex_slo_events_total", "Cumulative total events per objective.",
			float64(o.Total), "objective", o.Name)
		for _, w := range o.Windows {
			p.Gauge("seedex_slo_burn_rate", "Error-budget burn rate per objective and trailing window.",
				w.Burn, "objective", o.Name, "window", w.Window)
		}
		p.Gauge("seedex_slo_alert", "Alert state per objective and severity (1 = firing).",
			boolVal(o.FastBurn), "objective", o.Name, "severity", "page")
		p.Gauge("seedex_slo_alert", "Alert state per objective and severity (1 = firing).",
			boolVal(o.SlowBurn), "objective", o.Name, "severity", "ticket")
	}
	p.Gauge("seedex_slo_degraded", "1 when any objective has a fast- or slow-burn alert firing.",
		boolVal(snap.Degraded))
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Package stats provides the small statistics and table-rendering helpers
// the benchmark harness shares.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts values into buckets defined by upper edges; values
// above the last edge land in an overflow bucket.
type Histogram struct {
	Edges  []int // ascending upper bounds (inclusive)
	Counts []int64
	Total  int64
}

// NewHistogram returns a histogram with the given inclusive upper edges.
func NewHistogram(edges ...int) *Histogram {
	if !sort.IntsAreSorted(edges) {
		panic("stats: histogram edges must ascend")
	}
	return &Histogram{Edges: edges, Counts: make([]int64, len(edges)+1)}
}

// Add counts one value.
func (h *Histogram) Add(v int) {
	h.Total++
	for i, e := range h.Edges {
		if v <= e {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Edges)]++
}

// Pct returns the percentage of values in bucket i.
func (h *Histogram) Pct(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return 100 * float64(h.Counts[i]) / float64(h.Total)
}

// CumPct returns the cumulative percentage up to and including bucket i.
func (h *Histogram) CumPct(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	var c int64
	for j := 0; j <= i; j++ {
		c += h.Counts[j]
	}
	return 100 * float64(c) / float64(h.Total)
}

// Labels returns human-readable bucket labels ("<=10", ..., ">40").
func (h *Histogram) Labels() []string {
	out := make([]string, len(h.Counts))
	for i, e := range h.Edges {
		out[i] = fmt.Sprintf("<=%d", e)
	}
	out[len(h.Edges)] = fmt.Sprintf(">%d", h.Edges[len(h.Edges)-1])
	return out
}

// Table renders aligned rows for the bench harness.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with column alignment.
func (t *Table) String() string {
	all := append([][]string{t.Header}, t.Rows...)
	widths := make([]int, len(t.Header))
	for _, r := range all {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range all {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs by
// nearest-rank; 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p / 100 * float64(len(s)-1))
	return s[i]
}

package stats

import (
	"strings"
	"testing"
)

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 20, 40)
	for _, v := range []int{1, 10, 11, 20, 21, 40, 41, 100} {
		h.Add(v)
	}
	if h.Total != 8 {
		t.Fatalf("total %d", h.Total)
	}
	want := []int64{2, 2, 2, 2} // <=10, <=20, <=40, >40
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Pct(0) != 25 || h.CumPct(1) != 50 || h.CumPct(3) != 100 {
		t.Fatalf("percentages wrong: %v %v %v", h.Pct(0), h.CumPct(1), h.CumPct(3))
	}
	labels := h.Labels()
	if labels[0] != "<=10" || labels[3] != ">40" {
		t.Fatalf("labels %v", labels)
	}
}

func TestHistogramEdgeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted edges must panic")
		}
	}()
	NewHistogram(10, 5)
}

func TestEmptyHistogramPcts(t *testing.T) {
	h := NewHistogram(1)
	if h.Pct(0) != 0 || h.CumPct(0) != 0 {
		t.Fatal("empty histogram should report zero percentages")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.Add("alpha", 3.14159)
	tab.Add("b", 42)
	s := tab.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "3.14") || !strings.Contains(s, "42") {
		t.Fatalf("rendering: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
}

func TestMeanPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Mean(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty inputs must return 0")
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatalf("percentile extremes: %v %v", Percentile(xs, 0), Percentile(xs, 100))
	}
}

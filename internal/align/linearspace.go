package align

// Linear-space optimal global alignment (Myers & Miller 1988, the
// paper's reference [21] "Optimal alignments in linear space"): a
// divide-and-conquer traceback for the affine-gap global kernel that
// keeps only two score rows per pass. The full-matrix tracebacks in this
// package are fine for short-read extensions; long-read fills and
// whole-contig alignments need the O(n) memory variant.

// GlobalAlign computes an optimal global alignment of query against
// target and returns its CIGAR plus the alignment score (h0-free; add
// any seed score externally). The CIGAR consumes the full query and
// target.
func GlobalAlign(query, target []byte, sc Scoring) (Cigar, int) {
	cig := mmAlign(query, target, sc, sc.GapOpen, sc.GapOpen)
	return cig, cig.Score(query, target, 0, sc)
}

// mmAlign aligns q vs t globally. openTop / openBot are the gap-open
// penalties for deletion gaps touching the top / bottom row boundary
// (zero when the caller already opened the gap on the other side of a
// divide-and-conquer split).
func mmAlign(q, t []byte, sc Scoring, openTop, openBot int) Cigar {
	n, m := len(q), len(t)
	switch {
	case m == 0 && n == 0:
		return nil
	case m == 0:
		return Cigar{{Op: OpIns, Len: n}}
	case n == 0:
		return Cigar{{Op: OpDel, Len: m}}
	}
	if m <= 4 || n <= 4 || m*n <= 1024 {
		cig, _ := nwSmall(q, t, sc, openTop, openBot)
		return cig
	}
	imid := m / 2

	// Forward half: H(imid, ·) and the E values entering row imid+1.
	hf, ef := forwardScores(q, t[:imid], sc, openTop)
	// Reverse half on reversed strings: the bottom boundary becomes the
	// top, so openBot applies there.
	hr, er := forwardScores(reverseBytes(q), reverseBytes(t[imid:]), sc, openBot)

	// Join: either two abutting sub-alignments (H-join at column j) or
	// one deletion gap crossing the split (E-join; each side charged an
	// open for the same gap, refund one standard open).
	bestScore, bestJ, bestGap := NegInf, 0, false
	for j := 0; j <= n; j++ {
		if hf[j] > NegInf/2 && hr[n-j] > NegInf/2 {
			if s := hf[j] + hr[n-j]; s > bestScore {
				bestScore, bestJ, bestGap = s, j, false
			}
		}
		if ef[j] > NegInf/2 && er[n-j] > NegInf/2 {
			if s := ef[j] + er[n-j] + sc.GapOpen; s > bestScore {
				bestScore, bestJ, bestGap = s, j, true
			}
		}
	}
	j := bestJ
	if !bestGap {
		left := mmAlign(q[:j], t[:imid], sc, openTop, sc.GapOpen)
		right := mmAlign(q[j:], t[imid:], sc, sc.GapOpen, openBot)
		return left.Concat(right)
	}
	// The crossing gap covers row imid (forward side) and row imid+1
	// (reverse side); the halves continue with a free re-open.
	left := mmAlign(q[:j], t[:imid-1], sc, openTop, 0)
	mid := Cigar{{Op: OpDel, Len: 2}}
	right := mmAlign(q[j:], t[imid+1:], sc, 0, openBot)
	return left.Concat(mid).Concat(right)
}

// forwardScores runs the affine global DP over all rows of t, returning
// h[j] = H(m, j) and eAt[j] = E(m, j) (the deletion gap state at the last
// row, covering at least that row), with openTop applied to gaps
// starting at the top boundary.
func forwardScores(q, t []byte, sc Scoring, openTop int) (h, eAt []int) {
	n, m := len(q), len(t)
	h = make([]int, n+1)
	e := make([]int, n+1)
	eAt = make([]int, n+1)
	h[0] = 0
	for j := 1; j <= n; j++ {
		h[j] = -sc.GapOpen - j*sc.GapExtend
	}
	// E(1, j): a deletion opening in row 1. The openTop discount applies
	// only at column 0 (a gap continuing across the divide-and-conquer
	// seam is the alignment's *first* op); a row-1 deletion at j > 0
	// follows row-0 insertions, is a fresh gap, and pays the full open.
	e[0] = h[0] - openTop - sc.GapExtend
	for j := 1; j <= n; j++ {
		e[j] = h[j] - sc.GapOpen - sc.GapExtend
	}
	for i := 1; i <= m; i++ {
		diag := h[0]
		h[0] = -openTop - i*sc.GapExtend
		f := saturSub(h[0], sc.GapOpen+sc.GapExtend)
		if i == m {
			// Column 0 is one gap from the origin: its in-progress gap
			// state equals the first-column value itself.
			eAt[0] = -openTop - m*sc.GapExtend
		}
		for j := 1; j <= n; j++ {
			d := diag
			diag = h[j]
			ev := e[j]
			if i == m {
				eAt[j] = ev // E(m, j), before the next-row update
			}
			hv := NegInf
			if d > NegInf/2 {
				hv = d + sc.Sub(t[i-1], q[j-1])
			}
			if ev > hv {
				hv = ev
			}
			if f > hv {
				hv = f
			}
			h[j] = hv
			ne := saturSub(ev, sc.GapExtend)
			if v := saturSub(hv, sc.GapOpen+sc.GapExtend); v > ne {
				ne = v
			}
			e[j] = ne
			nf := saturSub(f, sc.GapExtend)
			if v := saturSub(hv, sc.GapOpen+sc.GapExtend); v > nf {
				nf = v
			}
			f = nf
		}
	}
	return h, eAt
}

// nwSmall is the quadratic base case with explicit traceback and
// boundary-sensitive deletion opens.
func nwSmall(q, t []byte, sc Scoring, openTop, openBot int) (Cigar, int) {
	n, m := len(q), len(t)
	H := make([][]int, m+1)
	E := make([][]int, m+1)
	F := make([][]int, m+1)
	for i := range H {
		H[i] = make([]int, n+1)
		E[i] = make([]int, n+1)
		F[i] = make([]int, n+1)
		for j := range H[i] {
			H[i][j], E[i][j], F[i][j] = NegInf, NegInf, NegInf
		}
	}
	H[0][0] = 0
	for j := 1; j <= n; j++ {
		H[0][j] = -sc.GapOpen - j*sc.GapExtend
	}
	for i := 1; i <= m; i++ {
		H[i][0] = -openTop - i*sc.GapExtend
		for j := 1; j <= n; j++ {
			// openTop is NOT applied here: at j > 0 a row-1 deletion
			// follows row-0 insertions and cannot merge with the seam gap,
			// so it pays the standard open. Column 0 (the only place the
			// discount is sound) is handled by the H[i][0] initialization.
			ev := saturSub(E[i-1][j], sc.GapExtend)
			if v := saturSub(H[i-1][j], sc.GapOpen+sc.GapExtend); v > ev {
				ev = v
			}
			E[i][j] = ev
			fv := saturSub(F[i][j-1], sc.GapExtend)
			if v := saturSub(H[i][j-1], sc.GapOpen+sc.GapExtend); v > fv {
				fv = v
			}
			F[i][j] = fv
			hv := ev
			if fv > hv {
				hv = fv
			}
			if d := H[i-1][j-1]; d > NegInf/2 {
				if v := d + sc.Sub(t[i-1], q[j-1]); v > hv {
					hv = v
				}
			}
			H[i][j] = hv
		}
	}
	// Bottom-boundary deletion: a trailing gap of rows i+1..m charged
	// openBot instead of GapOpen.
	best, bestTail := H[m][n], 0
	for i := 0; i < m; i++ {
		if H[i][n] <= NegInf/2 {
			continue
		}
		if v := H[i][n] - openBot - (m-i)*sc.GapExtend; v > best {
			best, bestTail = v, m-i
		}
	}
	var cig Cigar
	i, j := m, n
	if bestTail > 0 {
		cig = cig.Push(OpDel, bestTail)
		i = m - bestTail
	}
	const (
		stH = iota
		stE
		stF
	)
	state := stH
	for i > 0 || j > 0 {
		switch state {
		case stH:
			switch {
			case i == 0:
				cig = cig.Push(OpIns, j)
				j = 0
			case j == 0:
				cig = cig.Push(OpDel, i)
				i = 0
			case H[i][j] == E[i][j]:
				state = stE
			case H[i][j] == F[i][j]:
				state = stF
			default:
				cig = cig.Push(OpMatch, 1)
				i--
				j--
			}
		case stE:
			cig = cig.Push(OpDel, 1)
			if i >= 2 && E[i][j] == saturSub(E[i-1][j], sc.GapExtend) {
				i--
			} else {
				i--
				state = stH
			}
		case stF:
			cig = cig.Push(OpIns, 1)
			if j >= 2 && F[i][j] == saturSub(F[i][j-1], sc.GapExtend) {
				j--
			} else {
				j--
				state = stH
			}
		}
	}
	return cig.Reverse(), best
}

func reverseBytes(s []byte) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}

// Package align implements the dynamic-programming alignment kernels that
// SeedEx builds on: a BWA-MEM-style semi-global seed-extension kernel
// (full-width and banded), a naive reference implementation used as ground
// truth in tests, band estimation/measurement utilities, and an affine-gap
// traceback producing CIGAR strings.
//
// # Kernel semantics
//
// The extension kernel follows BWA-MEM's ksw_extend. The DP matrix has
// target (reference) rows i = 1..M and query columns j = 1..N, with
// H(0,0) = h0 (the accumulated seed score). The first row and column decay
// by GapOpen + k*GapExtend and are floored at zero. A cell with H = 0 is
// *dead*: the match channel only extends from strictly positive cells
// (M = H(i-1,j-1) > 0 ? H(i-1,j-1)+s : 0), so every scoring path emanates
// from the seed cell and local restarts are impossible. The E (vertical,
// deletion-from-query's-view) and F (horizontal) gap channels follow
//
//	E(i,j) = max(H(i-1,j) - GapOpen, E(i-1,j)) - GapExtend   (floored at 0)
//	F(i,j) = max(H(i,j-1) - GapOpen, F(i,j-1)) - GapExtend   (floored at 0)
//
// with E(1,·) = 0 and F(·,1) = 0 (matching ksw_extend's initialization).
// The kernel reports the best score anywhere (Local) and the best score on
// the right edge j = N where the query is fully consumed (Global), each
// with the first-in-scan-order position achieving it.
package align

import "fmt"

// Scoring is an affine-gap scoring scheme. All penalties are stored as
// positive magnitudes: a mismatch contributes -Mismatch, a gap of length L
// contributes -(GapOpen + L*GapExtend).
type Scoring struct {
	Match     int // match reward (m)
	Mismatch  int // mismatch penalty (x), stored positive
	GapOpen   int // gap opening penalty (go), stored positive
	GapExtend int // gap extension penalty (ge), stored positive
}

// DefaultScoring is BWA-MEM's default scheme saf = {m:1, x:4, go:6, ge:1}.
func DefaultScoring() Scoring {
	return Scoring{Match: 1, Mismatch: 4, GapOpen: 6, GapExtend: 1}
}

// Validate reports an error for scoring parameters that break kernel or
// optimality-check assumptions.
func (s Scoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("align: Match must be positive, got %d", s.Match)
	}
	if s.Mismatch <= 0 || s.GapOpen < 0 || s.GapExtend <= 0 {
		return fmt.Errorf("align: penalties must be positive (x=%d go=%d ge=%d)", s.Mismatch, s.GapOpen, s.GapExtend)
	}
	return nil
}

// Sub returns the substitution score for base codes a and b. Ambiguous
// bases (code >= 4) always score as mismatches.
func (s Scoring) Sub(a, b byte) int {
	if a == b && a < 4 {
		return s.Match
	}
	return -s.Mismatch
}

// EstimateBand computes the conservative a-priori band ("full-band")
// BWA-MEM uses before an extension: the longest gap that could still leave
// the alignment with a positive score given the query length and the seed
// score h0, capped at cap (pass cap <= 0 for no cap). This is the
// "Estimated" series of the paper's Figure 2.
func (s Scoring) EstimateBand(qlen, h0, cap int) int {
	// A gap of length L costs GapOpen + L*GapExtend; the rest of the
	// query can recover at most qlen*Match on top of the seed score.
	w := (qlen*s.Match + h0 - s.GapOpen) / s.GapExtend
	if w < 1 {
		w = 1
	}
	if cap > 0 && w > cap {
		w = cap
	}
	return w
}

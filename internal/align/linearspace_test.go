package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGlobalAlignOptimal: the linear-space alignment's CIGAR must rescore
// to exactly the global DP optimum, for random inputs and scorings.
func TestGlobalAlignOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := Scoring{
			Match:     1 + rng.Intn(3),
			Mismatch:  1 + rng.Intn(6),
			GapOpen:   rng.Intn(8),
			GapExtend: 1 + rng.Intn(3),
		}
		n := 1 + rng.Intn(120)
		q := randSeq(rng, n)
		var tg []byte
		switch rng.Intn(3) {
		case 0:
			tg = randSeq(rng, 1+rng.Intn(150))
		case 1:
			tg = mutate(rng, q, 0.1, 0.08)
			if len(tg) == 0 {
				tg = randSeq(rng, 3)
			}
		default: // big gap in the middle: exercises the E-join
			tg = append([]byte(nil), q[:n/2]...)
			tg = append(tg, randSeq(rng, 10+rng.Intn(60))...)
			tg = append(tg, q[n/2:]...)
		}
		cig, score := GlobalAlign(q, tg, sc)
		if err := cig.Validate(len(q), len(tg)); err != nil {
			t.Logf("seed %d: %v (cigar %s)", seed, err, cig)
			return false
		}
		want := Global(q, tg, 0, sc)
		if !want.Feasible || score != want.Score {
			t.Logf("seed %d: linear-space score %d, DP %d (sc=%+v, n=%d m=%d)", seed, score, want.Score, sc, len(q), len(tg))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// TestGlobalAlignSeamRegression pins seeds that once tripped a seam bug:
// the openTop discount in the E-join reconstruction was granted to any
// row-1 deletion, letting a child claim a discounted score its cigar
// (starting with an insertion) could not realize after concatenation.
func TestGlobalAlignSeamRegression(t *testing.T) {
	for _, seed := range []int64{4056162585390323733, 1, 99} {
		rng := rand.New(rand.NewSource(seed))
		sc := Scoring{
			Match:     1 + rng.Intn(3),
			Mismatch:  1 + rng.Intn(6),
			GapOpen:   rng.Intn(8),
			GapExtend: 1 + rng.Intn(3),
		}
		n := 1 + rng.Intn(120)
		q := randSeq(rng, n)
		var tg []byte
		switch rng.Intn(3) {
		case 0:
			tg = randSeq(rng, 1+rng.Intn(150))
		case 1:
			tg = mutate(rng, q, 0.1, 0.08)
			if len(tg) == 0 {
				tg = randSeq(rng, 3)
			}
		default:
			tg = append([]byte(nil), q[:n/2]...)
			tg = append(tg, randSeq(rng, 10+rng.Intn(60))...)
			tg = append(tg, q[n/2:]...)
		}
		cig, score := GlobalAlign(q, tg, sc)
		if err := cig.Validate(len(q), len(tg)); err != nil {
			t.Fatalf("seed %d: %v (cigar %s)", seed, err, cig)
		}
		want := Global(q, tg, 0, sc)
		if !want.Feasible || score != want.Score {
			t.Fatalf("seed %d: linear-space score %d, DP %d", seed, score, want.Score)
		}
	}
}

func TestGlobalAlignDegenerate(t *testing.T) {
	sc := DefaultScoring()
	if cig, _ := GlobalAlign(nil, nil, sc); len(cig) != 0 {
		t.Fatalf("empty/empty: %s", cig)
	}
	cig, score := GlobalAlign([]byte{0, 1, 2}, nil, sc)
	if cig.String() != "3I" || score != -(sc.GapOpen+3*sc.GapExtend) {
		t.Fatalf("empty target: %s %d", cig, score)
	}
	cig, score = GlobalAlign(nil, []byte{0, 1}, sc)
	if cig.String() != "2D" || score != -(sc.GapOpen+2*sc.GapExtend) {
		t.Fatalf("empty query: %s %d", cig, score)
	}
	q := []byte{0, 1, 2, 3, 0, 1, 2, 3}
	cig, score = GlobalAlign(q, q, sc)
	if cig.String() != "8M" || score != 8 {
		t.Fatalf("identity: %s %d", cig, score)
	}
}

// TestGlobalAlignLarge: linear space means multi-kbp global alignments
// are practical; validate score against the row-streaming kernel.
func TestGlobalAlignLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := randSeq(rng, 3000)
	tg := mutate(rng, q, 0.05, 0.03)
	sc := DefaultScoring()
	cig, score := GlobalAlign(q, tg, sc)
	if err := cig.Validate(len(q), len(tg)); err != nil {
		t.Fatal(err)
	}
	want := Global(q, tg, 0, sc)
	if score != want.Score {
		t.Fatalf("large alignment: linear-space %d != DP %d", score, want.Score)
	}
}

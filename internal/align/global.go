package align

// GlobalResult reports one global (Needleman-Wunsch-style, end-to-end)
// alignment. SeedEx targets global alignment alongside semi-global
// (paper footnote 1); it is the kernel minimap2-style long-read aligners
// use to fill the gaps between chained anchors (paper §VII-D).
type GlobalResult struct {
	// Score is the end-to-end affine-gap score H(tlen, qlen), starting
	// from h0 at the origin. Infeasible banded problems report Feasible
	// = false (the endpoint lies outside the band).
	Score    int
	Feasible bool
	// Cells counts DP cells evaluated.
	Cells int64
}

// GlobalBoundary captures the scores leaking out of the band during a
// banded global alignment: unlike the extension kernel, paths may leave
// through the lower boundary (E channel) *and* the upper boundary (F
// channel), and global alignment has no dead cells, so both are needed by
// the optimality checks.
type GlobalBoundary struct {
	// EOut[j] is the E-score entering below-band cell (j+w+1, j); NegInf
	// when the boundary does not exist there.
	EOut []int
	// FOut[i] is the F-score entering above-band cell (i, i+w+1); NegInf
	// when absent.
	FOut []int
}

// NegInf marks unreachable global-alignment cells.
const NegInf = -1 << 40

// Global computes the full-width global alignment score of query vs
// target with initial score h0 (gaps at both ends penalized).
func Global(query, target []byte, h0 int, sc Scoring) GlobalResult {
	r, _ := globalCore(query, target, h0, sc, -1, false)
	return r
}

// GlobalBanded computes the banded global alignment (|i−j| <= w) and
// captures the band-leaving gap scores for the SeedEx global checks.
func GlobalBanded(query, target []byte, h0 int, sc Scoring, w int) (GlobalResult, GlobalBoundary) {
	return globalCore(query, target, h0, sc, w, true)
}

func globalCore(query, target []byte, h0 int, sc Scoring, w int, capture bool) (GlobalResult, GlobalBoundary) {
	n, m := len(query), len(target)
	res := GlobalResult{Score: NegInf}
	var bd GlobalBoundary
	if capture {
		bd.EOut = make([]int, n+1)
		bd.FOut = make([]int, m+1)
		for j := range bd.EOut {
			bd.EOut[j] = NegInf
		}
		for i := range bd.FOut {
			bd.FOut[i] = NegInf
		}
	}
	banded := w >= 0
	if banded && abs(m-n) > w {
		return res, bd // endpoint outside the band
	}

	// h[j] = H(i-1, j), e[j] = E(i, j).
	h := make([]int, n+1)
	e := make([]int, n+1)
	h[0] = h0
	for j := 1; j <= n; j++ {
		if banded && j > w {
			h[j] = NegInf
			continue
		}
		h[j] = h0 - sc.GapOpen - j*sc.GapExtend
	}
	if m == 0 {
		res.Score, res.Feasible = h[n], h[n] > NegInf/2
		return res, bd
	}
	oe := sc.GapOpen + sc.GapExtend
	// E(1,j) opens a deletion off the initialization row.
	for j := range e {
		e[j] = saturSub(h[j], oe)
	}
	for i := 1; i <= m; i++ {
		jmin, jmax := 0, n
		if banded {
			if lo := i - w; lo > jmin {
				jmin = lo
			}
			if hi := i + w; hi < jmax {
				jmax = hi
			}
			if jmin > n {
				break
			}
		}
		var hPrev int // H(i-1, jmin-1)
		if jmin == 0 {
			hPrev = NegInf // no diagonal into column 0
		} else {
			hPrev = h[jmin-1]
		}
		if banded && jmax < n {
			e[jmax] = NegInf // fresh rightmost column: E from out of band
		}
		f := NegInf
		for j := jmin; j <= jmax; j++ {
			var hv int
			if j == 0 {
				hv = h0 - sc.GapOpen - i*sc.GapExtend
				if banded && i > w {
					hv = NegInf
				}
				hPrev = h[0]
				h[0] = hv
				// F leaving rightward from column 0.
				f = saturSub(hv, oe)
				res.Cells++
				continue
			}
			hDiag := hPrev
			hPrev = h[j]
			mv := NegInf
			if hDiag > NegInf/2 {
				mv = hDiag + sc.Sub(target[i-1], query[j-1])
			}
			ev := e[j]
			hv = mv
			if ev > hv {
				hv = ev
			}
			if f > hv {
				hv = f
			}
			h[j] = hv
			res.Cells++

			t1 := saturSub(hv, oe)
			ne := saturSub(ev, sc.GapExtend)
			if t1 > ne {
				ne = t1
			}
			e[j] = ne
			nf := saturSub(f, sc.GapExtend)
			if t1 > nf {
				nf = t1
			}
			f = nf

			if banded && i-j == w {
				if capture {
					bd.EOut[j] = ne
				}
				e[j] = NegInf // the below-band cell is never computed
			}
			if banded && j-i == w && capture {
				// F leaving through the upper boundary into (i, j+1).
				bd.FOut[i] = nf
			}
		}
	}
	res.Score = h[n]
	res.Feasible = res.Score > NegInf/2
	if !res.Feasible {
		res.Score = NegInf
	}
	return res, bd
}

func saturSub(v, d int) int {
	if v <= NegInf/2 {
		return NegInf
	}
	return v - d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

package align

// FuzzExtendSWAR drives the batch orchestration (and through it the
// 16-lane two-word, 8-lane and 4-lane SWAR kernels, the tier ladder and
// lane demotion) against the int reference kernel on fuzzer-chosen
// sequences, scoring, band and h0 values. The raw byte stream is chopped
// into up to 24 jobs so single batches mix shapes and overfill the widest
// tier (a 16-lane group plus leftovers), including the degenerate ones
// (empty query, empty target, band wider than the target, h0 at tier
// boundaries).

import (
	"testing"
)

func FuzzExtendSWAR(f *testing.F) {
	// Edge-case seeds: empty query, empty target, band wider than target,
	// tier boundaries, ambiguous codes.
	f.Add([]byte{}, []byte{0, 1, 2, 3}, 10, 5, uint8(1), uint8(4), uint8(6), uint8(1))
	f.Add([]byte{0, 1, 2}, []byte{}, 10, 5, uint8(1), uint8(4), uint8(6), uint8(1))
	f.Add([]byte{0, 1, 2, 3, 0, 1}, []byte{1, 2}, 12, 100, uint8(1), uint8(4), uint8(6), uint8(1))
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3, 3}, []byte{0, 0, 1, 1, 2, 3, 3}, swarCap8, 21, uint8(1), uint8(4), uint8(6), uint8(1))
	f.Add([]byte{2, 2, 2, 2}, []byte{2, 2, 2, 2}, swarCap16, 3, uint8(2), uint8(3), uint8(5), uint8(2))
	f.Add([]byte{0, 4, 1, 9, 2}, []byte{0, 4, 1, 9, 2}, 50, 2, uint8(1), uint8(4), uint8(6), uint8(1))
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3}, []byte{1, 2, 3, 1, 2, 3}, 1, 0, uint8(8), uint8(0), uint8(0), uint8(1))

	f.Fuzz(func(t *testing.T, qraw, traw []byte, h0, w int, ma, mi, gapo, gape uint8) {
		if len(qraw) > 512 || len(traw) > 512 {
			return
		}
		sc := Scoring{Match: int(ma), Mismatch: int(mi), GapOpen: int(gapo), GapExtend: int(gape)}
		if h0 > 100_000 || h0 < -10 {
			h0 = (h0%100_000 + 100_000) % 100_000
		}
		if w > 2000 {
			w = w % 2000
		}
		if w < -1 {
			w = -1
		}
		// Chop the streams into up to 24 jobs of varying lengths so one
		// batch mixes shapes (and tiers, via the per-job h0 perturbation)
		// and can fill a 16-lane group with more than a word to spare.
		var jobs []Job
		for k, qo, to := 0, 0, 0; k < 24 && (qo < len(qraw) || to < len(traw)); k++ {
			qn := (k%5 + 1) * 8
			tn := (k%7 + 1) * 12
			if k >= 16 { // a few deliberately larger shapes in the mix
				qn, tn = (k-14)*32, (k-14)*48
			}
			qe, te := qo+qn, to+tn
			if qe > len(qraw) {
				qe = len(qraw)
			}
			if te > len(traw) {
				te = len(traw)
			}
			jobs = append(jobs, Job{Q: qraw[qo:qe], T: traw[to:te], H0: h0 + k*7 - 3})
			qo, to = qe, te
		}
		if len(jobs) == 0 {
			jobs = []Job{{Q: qraw, T: traw, H0: h0}}
		}

		ws := NewWorkspace()
		res := make([]ExtendResult, len(jobs))
		bds := make([]BandBoundary, len(jobs))
		if w >= 0 {
			ExtendBandedBatchWS(ws, jobs, sc, w, res, bds)
		} else {
			ExtendBatchFullWS(ws, jobs, sc, res)
		}
		for i, jb := range jobs {
			var want ExtendResult
			var wantBd BandBoundary
			if w >= 0 {
				want, wantBd = ExtendBandedRef(jb.Q, jb.T, jb.H0, sc, w)
			} else {
				want = ExtendRef(jb.Q, jb.T, jb.H0, sc)
			}
			if !sameResult(res[i], want) {
				t.Fatalf("job %d (n=%d m=%d h0=%d w=%d sc=%+v): batch %+v, reference %+v",
					i, len(jb.Q), len(jb.T), jb.H0, w, sc, res[i], want)
			}
			if w >= 0 && jb.H0 > 0 && len(jb.Q) > 0 {
				for j := range wantBd.E {
					if bds[i].E[j] != wantBd.E[j] {
						t.Fatalf("job %d boundary E[%d] (n=%d m=%d h0=%d w=%d sc=%+v): batch %d, reference %d",
							i, j, len(jb.Q), len(jb.T), jb.H0, w, sc, bds[i].E[j], wantBd.E[j])
					}
				}
			}
		}
	})
}

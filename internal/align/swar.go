package align

import "slices"

// Inter-sequence batch extension: tiering and lane-packing orchestration
// for the SWAR kernels (swar8x2.go, swar8.go, swar16.go).
//
// A batch is bucketed by shape (sort by tier, then query length, then
// target length, all descending within the tier) so that the problems
// sharing a lane group have similar DP extents and the lockstep sweep
// wastes little work on padding. The tier ladder picks the widest lane
// that provably cannot overflow, per job:
//
//	16 × int8  score ceiling h0 + n*Match <= 127 (and penalties <= 127)
//	           AND a short-read shape (n <= swar8x2MaxQ, m <= swar8x2MaxT)
//	           whose doubled column records stay cache-resident
//	8 × int8   score ceiling <= 127, any shape
//	4 × int16  score ceiling <= 32767 (and penalties <= 32767)
//	scalar     the int32 workspace kernel (which itself delegates to the
//	           int reference kernel when int32 could overflow)
//
// Lane-level divergence demotes individual problems back to the scalar
// path: a job whose DP area is a small fraction of its group leader's
// would spend most of the lockstep sweep in padding, so it runs scalar
// instead and the lane is left to the next job. Degenerate jobs (empty
// query, non-positive h0) never enter a lane group. A 16-lane group left
// with 8 or fewer survivors runs through the 8-lane kernel instead — the
// second word would carry only padding.

// swarLane couples one lane's problem with its result destination.
// res is fully overwritten; bd, when non-nil, must be a pre-zeroed
// boundary buffer of len(q)+1 entries.
type swarLane struct {
	q, t []byte
	h0   int
	bd   []int
	res  *ExtendResult
}

// Batch tier ladder, in sort-key order (widest first).
const (
	tierSWAR8x2 = iota
	tierSWAR8
	tierSWAR16
	tierScalar

	numTiers
)

// tierLaneWidth, indexed by tier (the scalar tier never forms groups).
var tierLaneWidth = [numTiers]int{16, 8, 4, 1}

// scoringFits reports whether every penalty magnitude fits a lane of the
// given capacity. Negative magnitudes (no Scoring constructor produces
// them, but fuzzing does) are routed to the scalar path, which inherits
// the reference kernel's semantics for them.
func scoringFits(sc Scoring, cap int) bool {
	if sc.Match < 0 || sc.Mismatch < 0 || sc.GapOpen < 0 || sc.GapExtend < 0 {
		return false
	}
	return sc.Match <= cap && sc.Mismatch <= cap && sc.GapOpen+sc.GapExtend <= cap
}

// swarScoringTier returns the widest tier the scoring scheme as a whole
// permits; individual jobs can only narrow it.
func swarScoringTier(sc Scoring) int {
	switch {
	case scoringFits(sc, swarCap8):
		return tierSWAR8x2
	case scoringFits(sc, swarCap16):
		return tierSWAR16
	default:
		return tierScalar
	}
}

// jobTier picks a job's lane tier from its score ceiling: h0 + n*Match
// bounds every H value the DP can produce (each diagonal step gains at
// most Match, and row 0 starts at h0), and E/F never exceed H's bound.
// Within the int8 ceiling the shape decides the width: short-read
// problems take the 16-lane two-word kernel, longer ones the 8-lane
// kernel whose single-word columns stream better.
func jobTier(n, m, h0 int, sc Scoring, scTier int) int {
	c := int64(h0) + int64(n)*int64(sc.Match)
	switch {
	case scTier == tierSWAR8x2 && c <= swarCap8:
		if n <= swar8x2MaxQ && m <= swar8x2MaxT {
			return tierSWAR8x2
		}
		return tierSWAR8
	case scTier <= tierSWAR16 && c <= swarCap16:
		return tierSWAR16
	default:
		return tierScalar
	}
}

// Sort-key layout: tier (2 bits) | ^n (20 bits) | ^m (20 bits) | index
// (22 bits). Jobs too large for the dimension fields go to the scalar
// tier; batches longer than the index field are processed in chunks.
const (
	swarKeyIdxBits = 22
	swarKeyDimBits = 20
	swarKeyIdxMask = 1<<swarKeyIdxBits - 1
	swarKeyDimMask = 1<<swarKeyDimBits - 1
	swarMaxDim     = swarKeyDimMask
	swarMaxChunk   = 1 << swarKeyIdxBits
)

// ExtendBandedBatchWS extends every job with the banded kernel (band w,
// shared Scoring) and writes results[i] for jobs[i]. When bds is non-nil
// (len >= len(jobs)) it receives each job's band-boundary E capture;
// bds[i].E aliases workspace arena memory, valid until the next batch run
// on ws. Score fields and boundaries are bit-identical to running
// ExtendBandedWS per job; only the Rows/Cells accounting differs on the
// SWAR tiers (full-sweep counts instead of early-terminated ones).
func ExtendBandedBatchWS(ws *Workspace, jobs []Job, sc Scoring, w int, results []ExtendResult, bds []BandBoundary) {
	extendBatchWS(ws, jobs, sc, w, results, bds)
}

// ExtendBatchFullWS is the full-width counterpart of ExtendBandedBatchWS
// (no band, no boundary capture), bit-identical on score fields to
// running ExtendWS per job.
func ExtendBatchFullWS(ws *Workspace, jobs []Job, sc Scoring, results []ExtendResult) {
	extendBatchWS(ws, jobs, sc, -1, results, nil)
}

func extendBatchWS(ws *Workspace, jobs []Job, sc Scoring, w int, results []ExtendResult, bds []BandBoundary) {
	if len(jobs) == 0 {
		return
	}
	if bds != nil {
		// Carve one pre-zeroed boundary buffer per job out of the arena.
		total := 0
		for i := range jobs {
			total += len(jobs[i].Q) + 1
		}
		arena := ws.boundaryArena(total)
		off := 0
		for i := range jobs {
			n1 := len(jobs[i].Q) + 1
			bds[i] = BandBoundary{E: arena[off : off+n1 : off+n1]}
			off += n1
		}
	}
	for start := 0; start < len(jobs); start += swarMaxChunk {
		end := start + swarMaxChunk
		if end > len(jobs) {
			end = len(jobs)
		}
		var cb []BandBoundary
		if bds != nil {
			cb = bds[start:end]
		}
		extendBatchChunk(ws, jobs[start:end], sc, w, results[start:end], cb)
	}
}

func extendBatchChunk(ws *Workspace, jobs []Job, sc Scoring, w int, results []ExtendResult, bds []BandBoundary) {
	scTier := swarScoringTier(sc)
	var tally chunkTally
	defer tally.flushWithCells(results)
	keys := ws.batchKeys
	if cap(keys) < len(jobs) {
		keys = make([]uint64, 0, len(jobs))
	}
	keys = keys[:0]
	for i := range jobs {
		n, m := len(jobs[i].Q), len(jobs[i].T)
		if jobs[i].H0 <= 0 || n == 0 {
			// Degenerate extension: the kernels report an empty result and
			// an all-zero boundary (already cleared in the arena).
			results[i] = ExtendResult{}
			tally.degenerate++
			continue
		}
		tier := tierScalar
		if n <= swarMaxDim && m <= swarMaxDim {
			tier = jobTier(n, m, jobs[i].H0, sc, scTier)
		}
		tally.jobs[tier]++
		keys = append(keys,
			uint64(tier)<<(swarKeyIdxBits+2*swarKeyDimBits)|
				uint64(^n&swarKeyDimMask)<<(swarKeyIdxBits+swarKeyDimBits)|
				uint64(^m&swarKeyDimMask)<<swarKeyIdxBits|
				uint64(i))
	}
	slices.Sort(keys)
	ws.batchKeys = keys

	idx := 0
	for idx < len(keys) {
		tier := int(keys[idx] >> (swarKeyIdxBits + 2*swarKeyDimBits))
		if tier == tierScalar {
			i := int(keys[idx] & swarKeyIdxMask)
			var bd []int
			if bds != nil {
				bd = bds[i].E
			}
			results[i], _ = extendCoreWS(ws, jobs[i].Q, jobs[i].T, jobs[i].H0, sc, w, Options{}, bd)
			idx++
			continue
		}
		laneWidth := tierLaneWidth[tier]
		gEnd := idx + 1
		for gEnd < idx+laneWidth && gEnd < len(keys) &&
			int(keys[gEnd]>>(swarKeyIdxBits+2*swarKeyDimBits)) == tier {
			gEnd++
		}
		// The group's sweep envelope is set by its largest query and
		// target; lanes with a small fraction of that DP area would mostly
		// sweep padding, so demote them to the scalar path.
		nMax, mMax := 0, 0
		for _, key := range keys[idx:gEnd] {
			i := int(key & swarKeyIdxMask)
			if n := len(jobs[i].Q); n > nMax {
				nMax = n
			}
			if m := len(jobs[i].T); m > mMax {
				mMax = m
			}
		}
		envelope := (nMax + 1) * (mMax + 1)
		var lanes [16]swarLane
		nl := 0
		for _, key := range keys[idx:gEnd] {
			i := int(key & swarKeyIdxMask)
			n, m := len(jobs[i].Q), len(jobs[i].T)
			var bd []int
			if bds != nil {
				bd = bds[i].E
			}
			if 4*(n+1)*(m+1) < envelope {
				tally.demoted[tier]++
				results[i], _ = extendCoreWS(ws, jobs[i].Q, jobs[i].T, jobs[i].H0, sc, w, Options{}, bd)
				continue
			}
			lanes[nl] = swarLane{q: jobs[i].Q, t: jobs[i].T, h0: jobs[i].H0, bd: bd, res: &results[i]}
			nl++
		}
		switch {
		case nl == 0:
			// every candidate demoted; nothing packed to run
		case nl == 1:
			// A single lane gains nothing from packing; run it scalar.
			tally.solo++
			l := &lanes[0]
			*l.res, _ = extendCoreWS(ws, l.q, l.t, l.h0, sc, w, Options{}, l.bd)
		default:
			run := tier
			if tier == tierSWAR8x2 && nl <= 8 {
				// Too few survivors to fill the second word; the 8-lane
				// kernel covers them with half the per-column traffic.
				run = tierSWAR8
			}
			tally.groups[run]++
			tally.lanes[run] += int64(nl)
			switch run {
			case tierSWAR8x2:
				extendSWAR8x2(ws, lanes[:nl], sc, w)
			case tierSWAR8:
				extendSWAR8(ws, lanes[:nl], sc, w)
			default:
				extendSWAR16(ws, lanes[:nl], sc, w)
			}
		}
		idx = gEnd
	}
}

package align

import (
	"math/rand"
	"testing"
)

func TestTracebackScoreMatchesDP(t *testing.T) {
	sc := DefaultScoring()
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		q, tg, h0 := extensionCase(r)
		res, mx := NaiveExtend(q, tg, h0, sc)
		if res.Local <= 0 {
			continue
		}
		cig, err := TracebackLocal(mx, sc, res)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := cig.Validate(res.LocalQ, res.LocalT); err != nil {
			t.Fatalf("seed %d: %v (cigar %s)", seed, err, cig)
		}
		if got := cig.Score(q, tg, h0, sc); got != res.Local {
			t.Fatalf("seed %d: cigar %s rescored to %d, DP says %d", seed, cig, got, res.Local)
		}
		if res.Global > 0 {
			gc, err := TracebackGlobal(mx, sc, res)
			if err != nil {
				t.Fatalf("seed %d: global: %v", seed, err)
			}
			if err := gc.Validate(len(q), res.GlobalT); err != nil {
				t.Fatalf("seed %d: global: %v (cigar %s)", seed, err, gc)
			}
			if got := gc.Score(q, tg, h0, sc); got != res.Global {
				t.Fatalf("seed %d: global cigar %s rescored to %d, DP says %d", seed, gc, got, res.Global)
			}
		}
	}
}

func TestTracebackPerfect(t *testing.T) {
	sc := DefaultScoring()
	q := []byte{0, 1, 2, 3, 0, 1}
	res, mx := NaiveExtend(q, q, 10, sc)
	cig, err := TracebackLocal(mx, sc, res)
	if err != nil {
		t.Fatal(err)
	}
	if cig.String() != "6M" {
		t.Fatalf("perfect match cigar = %s, want 6M", cig)
	}
}

func TestTracebackGap(t *testing.T) {
	sc := DefaultScoring()
	q := []byte{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}
	tg := append([]byte(nil), q[:6]...)
	tg = append(tg, 2, 2, 2)
	tg = append(tg, q[6:]...)
	res, mx := NaiveExtend(q, tg, 30, sc)
	cig, err := TracebackGlobal(mx, sc, res)
	if err != nil {
		t.Fatal(err)
	}
	// The inserted bases match a flank base, so several equal-scoring
	// paths exist (e.g. 6M3D6M or 7M3D5M); require shape, not identity.
	if len(cig) != 3 || cig[1].Op != OpDel || cig[1].Len != 3 {
		t.Fatalf("gap cigar = %s, want xM3DyM", cig)
	}
	if got := cig.Score(q, tg, 30, sc); got != res.Global {
		t.Fatalf("gap cigar %s rescored to %d, want %d", cig, got, res.Global)
	}
}

func TestCigarBasics(t *testing.T) {
	var c Cigar
	if c.String() != "*" {
		t.Fatalf("empty cigar renders %q", c.String())
	}
	c = c.append(OpMatch, 3)
	c = c.append(OpMatch, 2)
	c = c.append(OpIns, 1)
	if c.String() != "5M1I" {
		t.Fatalf("cigar = %s, want 5M1I", c)
	}
	if c.QueryLen() != 6 || c.TargetLen() != 5 {
		t.Fatalf("lengths: q=%d t=%d", c.QueryLen(), c.TargetLen())
	}
	if err := c.Validate(6, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(7, 5); err == nil {
		t.Fatal("expected query length mismatch error")
	}
	if err := (Cigar{{OpMatch, 0}}).Validate(0, 0); err == nil {
		t.Fatal("expected zero-length element error")
	}
}

func TestTracebackBadEndpoint(t *testing.T) {
	sc := DefaultScoring()
	_, mx := NaiveExtend([]byte{0, 1}, []byte{0, 1}, 10, sc)
	if _, err := Traceback(mx, sc, 99, 0); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := Traceback(mx, sc, 2, 1); err == nil {
		// cell (2,1) is alive here? If alive, pick a dead one instead.
		if mx.H[2][1] > 0 {
			t.Skip("cell alive in this construction")
		}
		t.Fatal("expected dead-cell error")
	}
}

package align

import (
	"fmt"
	"math/rand"
	"testing"
)

// batchCase builds a batch of jobs sized for the requested tier: tier8
// keeps every score ceiling within an int8 lane, tier16 within int16,
// mixed spans both plus scalar-tier outliers.
func batchJobs(rng *rand.Rand, count int, tier string) []Job {
	jobs := make([]Job, count)
	for i := range jobs {
		var qlen, h0 int
		switch tier {
		case "tier8":
			qlen = 20 + rng.Intn(80) // ceiling h0 + qlen <= 127 with Match=1
			h0 = 1 + rng.Intn(120-qlen)
		case "tier16":
			qlen = 150 + rng.Intn(200)
			h0 = 100 + rng.Intn(1000)
		default: // mixed
			qlen = 10 + rng.Intn(300)
			h0 = 1 + rng.Intn(2000)
		}
		t := randSeq(rng, qlen+rng.Intn(40))
		q := mutate(rng, t[:min(qlen, len(t))], 0.04, 0.02)
		if len(q) == 0 {
			q = randSeq(rng, 3)
		}
		jobs[i] = Job{Q: q, T: t, H0: h0}
	}
	return jobs
}

// checkBatchMatchesScalar asserts the batch path reproduces the scalar
// per-job kernel bit-for-bit on score fields and boundary E.
func checkBatchMatchesScalar(t *testing.T, jobs []Job, sc Scoring, w int) {
	t.Helper()
	ws := NewWorkspace()
	res := make([]ExtendResult, len(jobs))
	bds := make([]BandBoundary, len(jobs))
	if w >= 0 {
		ExtendBandedBatchWS(ws, jobs, sc, w, res, bds)
	} else {
		ExtendBatchFullWS(ws, jobs, sc, res)
	}
	ref := NewWorkspace()
	for i, jb := range jobs {
		var want ExtendResult
		var wantBd BandBoundary
		if w >= 0 {
			want, wantBd = ExtendBandedWS(ref, jb.Q, jb.T, jb.H0, sc, w)
		} else {
			want = ExtendWS(ref, jb.Q, jb.T, jb.H0, sc)
		}
		if !sameResult(res[i], want) {
			t.Fatalf("job %d (n=%d m=%d h0=%d w=%d): batch %+v, scalar %+v",
				i, len(jb.Q), len(jb.T), jb.H0, w, res[i], want)
		}
		if w >= 0 {
			if len(bds[i].E) != len(jb.Q)+1 {
				t.Fatalf("job %d: boundary len %d, want %d", i, len(bds[i].E), len(jb.Q)+1)
			}
			for j := range wantBd.E {
				if bds[i].E[j] != wantBd.E[j] {
					t.Fatalf("job %d boundary E[%d]: batch %d, scalar %d",
						i, j, bds[i].E[j], wantBd.E[j])
				}
			}
		}
	}
}

func TestBatchMatchesScalarBanded(t *testing.T) {
	for _, tier := range []string{"tier8", "tier16", "mixed"} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(100 + seed))
			jobs := batchJobs(rng, 1+rng.Intn(40), tier)
			for _, w := range []int{0, 1, 5, 21, 1000} {
				t.Run(fmt.Sprintf("%s/seed%d/w%d", tier, seed, w), func(t *testing.T) {
					checkBatchMatchesScalar(t, jobs, DefaultScoring(), w)
				})
			}
		}
	}
}

func TestBatchMatchesScalarFull(t *testing.T) {
	for _, tier := range []string{"tier8", "tier16", "mixed"} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(200 + seed))
			jobs := batchJobs(rng, 1+rng.Intn(40), tier)
			checkBatchMatchesScalar(t, jobs, DefaultScoring(), -1)
		}
	}
}

func TestBatchRandomScoring(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		sc := Scoring{
			Match:     1 + rng.Intn(8),
			Mismatch:  rng.Intn(10),
			GapOpen:   rng.Intn(12),
			GapExtend: 1 + rng.Intn(6),
		}
		jobs := batchJobs(rng, 1+rng.Intn(24), "mixed")
		w := rng.Intn(60)
		checkBatchMatchesScalar(t, jobs, sc, w)
	}
}

// TestBatchEdgeCases covers the degenerate shapes that exercise lane
// demotion and masking: empty query, empty target, band wider than the
// target, h0 <= 0, ambiguous bases, single-job batches, and h0 at the
// int8 tier boundary.
func TestBatchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	q, tg := randSeq(rng, 30), randSeq(rng, 40)
	amb := randSeq(rng, 25)
	for i := 0; i < len(amb); i += 4 {
		amb[i] = 4 + byte(i%12) // ambiguous / out-of-range codes
	}
	jobs := []Job{
		{Q: nil, T: tg, H0: 10},
		{Q: q, T: nil, H0: 10},
		{Q: q, T: tg, H0: 0},
		{Q: q, T: tg, H0: -5},
		{Q: q[:1], T: tg, H0: 1},
		{Q: q, T: tg[:1], H0: 12},
		{Q: amb, T: tg, H0: 9},
		{Q: q, T: amb, H0: 9},
		{Q: q, T: tg, H0: swarCap8 - len(q)}, // exactly at the int8 ceiling
		{Q: q, T: tg, H0: swarCap8},          // just past it: int16 tier
		{Q: q, T: tg, H0: swarCap16},         // past int16: scalar tier
		{Q: q, T: tg, H0: 97},
	}
	for _, w := range []int{0, 3, 21, 100, 1000} { // incl. band wider than target
		checkBatchMatchesScalar(t, jobs, DefaultScoring(), w)
	}
	checkBatchMatchesScalar(t, jobs, DefaultScoring(), -1)
}

// TestBatchPartialGroups pins lane-group formation: batches smaller than
// a lane group and batches that straddle group boundaries must still be
// bit-identical to the scalar path.
func TestBatchPartialGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	for _, count := range []int{1, 2, 3, 7, 8, 9, 15, 17} {
		jobs := batchJobs(rng, count, "tier8")
		checkBatchMatchesScalar(t, jobs, DefaultScoring(), 21)
	}
}

// TestBatchLaneDemotion pins the divergence rule: one huge problem
// grouped with tiny ones demotes the tiny ones to the scalar path, and
// results stay bit-identical either way.
func TestBatchLaneDemotion(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	big := randSeq(rng, 100)
	jobs := []Job{{Q: big, T: randSeq(rng, 120), H0: 20}}
	for i := 0; i < 7; i++ {
		jobs = append(jobs, Job{Q: randSeq(rng, 3), T: randSeq(rng, 4), H0: 5})
	}
	checkBatchMatchesScalar(t, jobs, DefaultScoring(), 21)
}

func TestBatchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	jobs := batchJobs(rng, 32, "mixed")
	ws := NewWorkspace()
	res := make([]ExtendResult, len(jobs))
	bds := make([]BandBoundary, len(jobs))
	ExtendBandedBatchWS(ws, jobs, DefaultScoring(), 21, res, bds) // warm buffers
	allocs := testing.AllocsPerRun(50, func() {
		ExtendBandedBatchWS(ws, jobs, DefaultScoring(), 21, res, bds)
	})
	if allocs != 0 {
		t.Fatalf("ExtendBandedBatchWS allocates %.1f per batch in steady state, want 0", allocs)
	}
}

func BenchmarkBatchKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(800))
	jobs := batchJobs(rng, 512, "tier8")
	sc := DefaultScoring()
	const w = 21
	ws := NewWorkspace()
	res := make([]ExtendResult, len(jobs))
	bds := make([]BandBoundary, len(jobs))
	var cells int64

	b.Run("banded/scalar", func(b *testing.B) {
		cells = 0
		for i := 0; i < b.N; i++ {
			for _, jb := range jobs {
				r, _ := ExtendBandedWS(ws, jb.Q, jb.T, jb.H0, sc, w)
				cells += r.Cells
			}
		}
		b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/s")
	})
	b.Run("banded/swar", func(b *testing.B) {
		cells = 0
		for i := 0; i < b.N; i++ {
			ExtendBandedBatchWS(ws, jobs, sc, w, res, bds)
			for j := range res {
				cells += res[j].Cells
			}
		}
		b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/s")
	})
}

// TestBatch16LaneScoreCeiling pins the 16-lane tier's admission
// boundaries: a job exactly at the int8 score ceiling (h0 + n*Match =
// 127) still runs in the two-word 16-lane tier, one point past it drops
// to the 16-bit tier, past the int16 ceiling to scalar, and a shape
// outside the two-word window (target longer than swar8x2MaxT) runs in
// the single-word 8-lane tier — in every case with results bit-identical
// to the scalar reference.
func TestBatch16LaneScoreCeiling(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sc := DefaultScoring()
	const n = 24
	mkJobs := func(h0, m int) []Job {
		jobs := make([]Job, 16)
		for i := range jobs {
			q := make([]byte, n)
			tg := make([]byte, m)
			for j := range q {
				q[j] = byte(rng.Intn(4))
			}
			for j := range tg {
				tg[j] = byte(rng.Intn(4))
			}
			jobs[i] = Job{Q: q, T: tg, H0: h0}
		}
		return jobs
	}
	atCap8 := swarCap8 - n*sc.Match
	atCap16 := swarCap16 - n*sc.Match
	cases := []struct {
		name string
		h0   int
		m    int
		want int
	}{
		{"at-int8-cap", atCap8, 60, tierSWAR8x2},
		{"over-int8-cap", atCap8 + 1, 60, tierSWAR16},
		{"at-int16-cap", atCap16, 60, tierSWAR16},
		{"over-int16-cap", atCap16 + 1, 60, tierScalar},
		{"target-over-16lane-window", atCap8, swar8x2MaxT + 1, tierSWAR8},
	}
	scTier := swarScoringTier(sc)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jobs := mkJobs(tc.h0, tc.m)
			for i := range jobs {
				got := jobTier(len(jobs[i].Q), len(jobs[i].T), jobs[i].H0, sc, scTier)
				if got != tc.want {
					t.Fatalf("jobTier(n=%d m=%d h0=%d) = %s, want %s",
						len(jobs[i].Q), len(jobs[i].T), jobs[i].H0, TierNames[got], TierNames[tc.want])
				}
			}
			before := KernelSnapshot()
			checkBatchMatchesScalar(t, jobs, sc, 21)
			checkBatchMatchesScalar(t, jobs, sc, -1)
			after := KernelSnapshot()
			if got := after.Jobs[tc.want] - before.Jobs[tc.want]; got < int64(2*len(jobs)) {
				t.Fatalf("tier %s job counter advanced by %d, want >= %d",
					TierNames[tc.want], got, 2*len(jobs))
			}
		})
	}
}

package align

import "math/bits"

// 4-lane SWAR banded extension kernel: the 16-bit mirror of swar8.go for
// problems whose score ceiling exceeds an int8 lane but fits 15 bits
// (h0 + n*Match <= swarCap16). Same interleaved column records, same
// striped qm packing (code in bits 0-2, edge flag one bit below the lane
// top, valid flag in the lane top bit), lane stride 16 instead of 8. See
// swar8.go for the full commentary; only the constants differ here.

const (
	swarL16    uint64 = 0x0001000100010001 // 1 in every 16-bit lane
	swarH16    uint64 = swarL16 << 15      // lane high bits
	swarM15    uint64 = ^swarH16           // 15-bit payload mask per lane
	swarCode16 uint64 = swarL16 * 7        // 3-bit base-code field per lane

	swarColHi16  uint64 = 0x8000 // qm column-valid flag (per lane)
	swarEdgeHi16 uint64 = 0x4000 // qm right-edge flag (per lane)
)

// swarCap16 is the largest value a 16-bit lane may hold.
const swarCap16 = 32767

func splat16(v int) uint64 { return uint64(v) * swarL16 }

// satsub16 computes per-lane max(a-b, 0); lanes of a and b <= swarCap16.
func satsub16(a, b uint64) uint64 {
	t := (a | swarH16) - b
	u := t & swarH16
	return t & (u - u>>15)
}

// max16 computes the per-lane maximum as b + max(a-b, 0).
func max16(a, b uint64) uint64 { return b + satsub16(a, b) }

// swarQM16 builds one lane's striped query halfword for column j.
func swarQM16(q []byte, n, j int) uint64 {
	if j > n {
		return 5
	}
	c := uint64(5)
	if b := q[j-1]; b < 4 {
		c = uint64(b)
	}
	c |= swarColHi16
	if j == n {
		c |= swarEdgeHi16
	}
	return c
}

// extendSWAR16 sweeps up to 4 lanes in lockstep; preconditions as in
// extendSWAR8 with the swarCap16 tier test.
func extendSWAR16(ws *Workspace, lanes []swarLane, sc Scoring, w int) {
	nl := len(lanes)
	var nk, mk [4]int
	nMax, mMax := 0, 0
	for k := 0; k < nl; k++ {
		nk[k] = len(lanes[k].q)
		mk[k] = len(lanes[k].t)
		if nk[k] > nMax {
			nMax = nk[k]
		}
		if mk[k] > mMax {
			mMax = mk[k]
		}
	}
	banded := w >= 0
	effW := w
	if !banded {
		effW = nMax + mMax + 1
	}

	ws.preparePacked(nMax, mMax, 1)
	cols, tw := ws.pk.cols, ws.pk.tw

	for j := 1; j <= nMax; j++ {
		var qv uint64
		for k := 0; k < nl; k++ {
			qv |= swarQM16(lanes[k].q, nk[k], j) << (16 * k)
		}
		cols[j] = swarCol{qm: qv}
	}
	for i := 1; i <= mMax; i++ {
		var tv uint64
		for k := 0; k < nl; k++ {
			c := uint64(6)
			if i <= mk[k] {
				if b := lanes[k].t[i-1]; b < 4 {
					c = uint64(b)
				}
			}
			tv |= c << (16 * k)
		}
		tw[i] = tv
	}

	maW := splat16(sc.Match)
	miW := splat16(sc.Mismatch)
	geW := splat16(sc.GapExtend)
	oeW := splat16(sc.GapOpen + sc.GapExtend)

	var h0W uint64
	for k := 0; k < nl; k++ {
		h0W |= uint64(lanes[k].h0) << (16 * k)
	}
	cols[0] = swarCol{h: h0W}
	lim := nMax
	if banded && w < lim {
		lim = w
	}
	v := satsub16(h0W, oeW)
	for j := 1; j <= lim; j++ {
		cols[j].h = v
		v = satsub16(v, geW)
	}
	for j := lim + 1; j <= nMax; j++ {
		cols[j].h = 0
	}

	var gBest, gT [4]int
	for k := 0; k < nl; k++ {
		if g := int(cols[nk[k]].h>>(16*k)) & 0xffff; g > 0 {
			gBest[k] = g
		}
	}

	var capHi uint64
	{
		hi := uint64(0x8000)
		for k := 0; k < nl; k++ {
			if lanes[k].bd != nil {
				capHi |= hi
			}
			hi <<= 16
		}
	}

	rows := mMax
	if r := nMax + effW; r < rows {
		rows = r
	}

	var bestW uint64
	var bi, bj [4]int
	col0W := satsub16(h0W, splat16(sc.GapOpen))

	for i := 1; i <= rows; i++ {
		jmin, jmax := 1, nMax
		if banded {
			if lo := i - w; lo > jmin {
				jmin = lo
			}
			if hi := i + w; hi < jmax {
				jmax = hi
			}
			if jmin > nMax {
				break
			}
		}

		col0W = satsub16(col0W, geW)
		var hDiag uint64
		if jmin == 1 {
			hDiag = cols[0].h
			if !banded || i <= w {
				cols[0].h = col0W
			} else {
				cols[0].h = 0
			}
		} else {
			hDiag = cols[jmin-1].h
		}
		if banded && jmax < nMax {
			cols[jmax].e = 0
		}

		var rowHi uint64
		{
			hi := uint64(0x8000)
			for k := 0; k < nl; k++ {
				if i <= mk[k] {
					rowHi |= hi
				}
				hi <<= 16
			}
		}
		rowFull := (rowHi >> 15) * 0xffff
		twI := tw[i]
		bj0 := -1
		if banded && i > w {
			bj0 = i - w
		}
		var f, live uint64
		for j := jmin; j <= jmax; j++ {
			col := &cols[j]
			hUp := col.h
			ev := col.e
			qm := col.qm
			x := (qm ^ twI) & swarCode16
			nzb := (x + swarM15) | x
			eqm := ^nzb & swarH16
			eqm -= eqm >> 15
			u := (hDiag + swarM15) & swarH16
			nzm := u - u>>15
			mv := ((hDiag + maW) & eqm & nzm) | (satsub16(hDiag, miW) &^ eqm)
			hv := max16(max16(mv, ev), f)
			col.h = hv

			colHi := qm & swarH16
			if gt := ((hv | swarH16) - bestW - swarL16) & colHi & rowHi; gt != 0 {
				fm := (gt >> 15) * 0xffff
				bestW = (hv & fm) | (bestW &^ fm)
				for g := gt; g != 0; g &= g - 1 {
					k := bits.TrailingZeros64(g) >> 4
					bi[k], bj[k] = i, j
				}
			}

			t1 := satsub16(hv, oeW)
			ne := max16(t1, satsub16(ev, geW))
			f = max16(t1, satsub16(f, geW))
			live |= (hv | ne | f) & rowFull

			if j == bj0 {
				if cb := colHi & rowHi & capHi; cb != 0 {
					for g := cb; g != 0; g &= g - 1 {
						k := bits.TrailingZeros64(g) >> 4
						lanes[k].bd[j] = int(ne>>(16*k)) & 0xffff
					}
				}
			} else {
				col.e = ne
			}

			if eh := (qm << 1) & swarH16 & rowHi; eh != 0 {
				for g := eh; g != 0; g &= g - 1 {
					k := bits.TrailingZeros64(g) >> 4
					if v := int(hv>>(16*k)) & 0xffff; v > gBest[k] {
						gBest[k], gT[k] = v, i
					}
				}
			}
			hDiag = hUp
		}

		rowLiveW := live
		if !banded || i <= w {
			rowLiveW |= col0W & rowFull
		}
		if rowLiveW == 0 {
			if banded && i > w {
				break
			}
			if satsub16(col0W, geW)&rowFull == 0 {
				break
			}
		}
	}

	for k := 0; k < nl; k++ {
		r := lanes[k].res
		rk := mk[k]
		if lim := nk[k] + effW; lim < rk {
			rk = lim
		}
		var cells int64
		for i := 1; i <= rk; i++ {
			lo, hi := 1, nk[k]
			if banded {
				if l := i - w; l > lo {
					lo = l
				}
				if h := i + w; h < hi {
					hi = h
				}
			}
			if lo > hi {
				break
			}
			cells += int64(hi - lo + 1)
		}
		r.Local = int(bestW>>(16*k)) & 0xffff
		r.LocalT, r.LocalQ = bi[k], bj[k]
		r.Global, r.GlobalT = gBest[k], gT[k]
		r.Rows = rk
		r.Cells = cells
	}
}

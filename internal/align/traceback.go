package align

import "fmt"

// Traceback reconstructs the optimal alignment path ending at cell
// (ti, qj) of the naive DP matrices, walking back to the seed cell (0,0).
// The returned CIGAR is ordered start-to-end and consumes exactly qj query
// and ti target bases.
//
// Tracing back on the host once per read (not per extension) is exactly
// the division of labour the paper adopts (§II-A): the accelerator returns
// scores only, and the single best-scoring extension is traced on the CPU.
func Traceback(mx *Matrices, sc Scoring, ti, qj int) (Cigar, error) {
	if ti < 0 || ti > mx.Tlen || qj < 0 || qj > mx.Qlen {
		return nil, fmt.Errorf("align: traceback endpoint (%d,%d) outside matrix %dx%d", ti, qj, mx.Tlen, mx.Qlen)
	}
	var c Cigar
	i, j := ti, qj
	const (
		stH = iota
		stE
		stF
	)
	state := stH
	for i > 0 || j > 0 {
		switch state {
		case stH:
			h := mx.H[i][j]
			if h <= 0 {
				return nil, fmt.Errorf("align: traceback entered dead cell (%d,%d)", i, j)
			}
			switch {
			case i == 0:
				// First-row init: one insertion gap from the origin.
				c = c.append(OpIns, j)
				j = 0
			case j == 0:
				// First-column init: one deletion gap from the origin.
				c = c.append(OpDel, i)
				i = 0
			case h == mx.E[i][j]:
				state = stE
			case h == mx.F[i][j]:
				state = stF
			default:
				c = c.append(OpMatch, 1)
				i--
				j--
			}
		case stE:
			// E(i,j) came from either opening (H(i-1,j)-go-ge) or
			// extending (E(i-1,j)-ge) a vertical gap.
			c = c.append(OpDel, 1)
			ev := mx.E[i][j]
			if i >= 2 && ev == mx.E[i-1][j]-sc.GapExtend {
				i--
				// remain in stE
			} else {
				i--
				state = stH
			}
		case stF:
			c = c.append(OpIns, 1)
			fv := mx.F[i][j]
			if j >= 2 && fv == mx.F[i][j-1]-sc.GapExtend {
				j--
			} else {
				j--
				state = stH
			}
		}
	}
	return c.Reverse(), nil
}

// TracebackLocal traces the path to the local maximum of res.
func TracebackLocal(mx *Matrices, sc Scoring, res ExtendResult) (Cigar, error) {
	if res.Local <= 0 {
		return nil, nil
	}
	return Traceback(mx, sc, res.LocalT, res.LocalQ)
}

// TracebackGlobal traces the path to the best right-edge cell of res.
func TracebackGlobal(mx *Matrices, sc Scoring, res ExtendResult) (Cigar, error) {
	if res.Global <= 0 {
		return nil, nil
	}
	return Traceback(mx, sc, res.GlobalT, mx.Qlen)
}

// UsedBand measures the band a given extension actually needs: the
// smallest w for which the banded kernel reproduces the full-width result
// exactly (scores and positions). This is the "Used" series of the paper's
// Figure 2, determined by binary search over w.
func UsedBand(query, target []byte, h0 int, sc Scoring) int {
	full := Extend(query, target, h0, sc)
	eq := func(w int) bool {
		b, _ := ExtendBanded(query, target, h0, sc, w)
		return b.Local == full.Local && b.LocalT == full.LocalT && b.LocalQ == full.LocalQ &&
			b.Global == full.Global && b.GlobalT == full.GlobalT
	}
	hi := len(query)
	if len(target) > hi {
		hi = len(target)
	}
	lo := 0
	if eq(lo) {
		return 0
	}
	for !eq(hi) {
		// The full result can depend on cells outside |i-j| <= max(N,M)
		// only in degenerate cases; widen defensively.
		hi *= 2
		if hi > len(query)+len(target)+1 {
			return hi
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if eq(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

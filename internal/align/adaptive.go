package align

// Adaptive banding (the related-work alternative the paper contrasts in
// §II: banding approaches that track the score maximum "have difficulty
// in guaranteeing optimality"). The band has a fixed width but its
// center follows the best-scoring cell of the previous row, as in
// Suzuki-Kasahara-style adaptive banded DP. It is implemented here as a
// *baseline*: the tests demonstrate that, unlike SeedEx, it can silently
// return sub-optimal results — exactly the failure mode the paper's
// speculate-and-test design eliminates.

// ExtendAdaptive runs the extension kernel over an adaptive band of
// half-width w whose center starts on the main diagonal and re-centers
// each row on the previous row's best column.
func ExtendAdaptive(query, target []byte, h0 int, sc Scoring, w int) ExtendResult {
	n, m := len(query), len(target)
	res := ExtendResult{}
	if h0 <= 0 || n == 0 {
		return res
	}
	h := make([]int, n+1)
	e := make([]int, n+1)
	h[0] = h0
	for j := 1; j <= n && j <= w; j++ {
		v := h0 - sc.GapOpen - j*sc.GapExtend
		if v < 0 {
			v = 0
		}
		h[j] = v
	}
	if n <= w && h[n] > 0 {
		res.Global, res.GlobalT = h[n], 0
	}
	oe := sc.GapOpen + sc.GapExtend
	center := 0 // previous row's best column
	prevLo, prevHi := 0, min2(n, w)
	for i := 1; i <= m; i++ {
		lo, hi := center+1-w, center+1+w
		if lo < 1 {
			lo = 1
		}
		if hi > n {
			hi = n
		}
		if lo > n {
			break
		}
		// Only [prevLo, prevHi] holds valid previous-row state; anything
		// else in this row's read range is stale and must be treated as
		// dead (the hardware analogue: cells outside the marching window
		// simply do not exist).
		start := lo - 1
		if start < 1 {
			start = 1
		}
		for j := start; j <= hi; j++ {
			if j < prevLo || j > prevHi {
				h[j] = 0
				e[j] = 0
			}
		}
		var hPrev int
		if lo == 1 {
			// H(i-1, 0) is the first-column initialization, computable
			// directly regardless of where the window wandered.
			if i == 1 {
				hPrev = h0 // H(0,0) is the seed itself
			} else {
				hPrev = h0 - sc.GapOpen - (i-1)*sc.GapExtend
				if hPrev < 0 {
					hPrev = 0
				}
			}
			col0 := h0 - sc.GapOpen - i*sc.GapExtend
			if col0 < 0 {
				col0 = 0
			}
			h[0] = col0
		} else {
			hPrev = h[lo-1]
		}
		f := 0
		rowBest, rowBestJ := 0, center+1
		for j := lo; j <= hi; j++ {
			hDiag := hPrev
			hPrev = h[j]
			var mv int
			if hDiag > 0 {
				mv = hDiag + sc.Sub(target[i-1], query[j-1])
			}
			hv := mv
			if e[j] > hv {
				hv = e[j]
			}
			if f > hv {
				hv = f
			}
			if hv < 0 {
				hv = 0
			}
			h[j] = hv
			res.Cells++
			if hv > res.Local {
				res.Local, res.LocalT, res.LocalQ = hv, i, j
			}
			if hv > rowBest {
				rowBest, rowBestJ = hv, j
			}
			t1 := hv - oe
			ne := e[j] - sc.GapExtend
			if t1 > ne {
				ne = t1
			}
			if ne < 0 {
				ne = 0
			}
			e[j] = ne
			nf := f - sc.GapExtend
			if t1 > nf {
				nf = t1
			}
			if nf < 0 {
				nf = 0
			}
			f = nf
			if j == n && hv > res.Global {
				res.Global, res.GlobalT = hv, i
			}
		}
		res.Rows = i
		center = rowBestJ
		prevLo, prevHi = lo, hi
	}
	return res
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randSeq returns a random base-code sequence of length n.
func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

// mutate applies substitutions and indels to a copy of seq with the given
// per-base rates, returning the mutated sequence.
func mutate(rng *rand.Rand, seq []byte, subRate, indelRate float64) []byte {
	out := make([]byte, 0, len(seq)+8)
	for _, c := range seq {
		r := rng.Float64()
		switch {
		case r < indelRate/2: // deletion: skip the base
		case r < indelRate: // insertion: extra random base then the original
			out = append(out, byte(rng.Intn(4)), c)
		case r < indelRate+subRate:
			out = append(out, (c+byte(1+rng.Intn(3)))%4)
		default:
			out = append(out, c)
		}
	}
	return out
}

// extensionCase builds a realistic extension problem: a target window from
// a random "genome" and a query derived from it with errors.
func extensionCase(rng *rand.Rand) (q, t []byte, h0 int) {
	qlen := 20 + rng.Intn(101)
	t = randSeq(rng, qlen+rng.Intn(30))
	q = mutate(rng, t[:min(qlen, len(t))], 0.03, 0.02)
	if len(q) == 0 {
		q = randSeq(rng, 5)
	}
	h0 = 10 + rng.Intn(60)
	return q, t, h0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sameResult(a, b ExtendResult) bool {
	return a.Local == b.Local && a.LocalT == b.LocalT && a.LocalQ == b.LocalQ &&
		a.Global == b.Global && a.GlobalT == b.GlobalT
}

func TestExtendMatchesNaive(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, tg, h0 := extensionCase(r)
		got := Extend(q, tg, h0, sc)
		want, _ := NaiveExtend(q, tg, h0, sc)
		if !sameResult(got, want) {
			t.Logf("q=%v t=%v h0=%d got=%+v want=%+v", q, tg, h0, got, want)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestExtendBandedMatchesNaiveBanded(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q, tg, h0 := extensionCase(r)
		w := r.Intn(30)
		got, _ := ExtendBanded(q, tg, h0, sc, w)
		want, _ := NaiveExtendBanded(q, tg, h0, sc, w)
		if !sameResult(got, want) {
			t.Logf("w=%d q=%v t=%v h0=%d got=%+v want=%+v", w, q, tg, h0, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestBandedWideEqualsFull(t *testing.T) {
	sc := DefaultScoring()
	for seed := int64(0); seed < 100; seed++ {
		r := rand.New(rand.NewSource(seed))
		q, tg, h0 := extensionCase(r)
		w := len(q) + len(tg) // covers the whole matrix
		b, _ := ExtendBanded(q, tg, h0, sc, w)
		full := Extend(q, tg, h0, sc)
		if !sameResult(b, full) {
			t.Fatalf("seed %d: wide band %+v != full %+v", seed, b, full)
		}
	}
}

func TestEarlyTerminationIsExact(t *testing.T) {
	sc := DefaultScoring()
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		q, tg, h0 := extensionCase(r)
		a := ExtendOpts(q, tg, h0, sc, Options{})
		b := ExtendOpts(q, tg, h0, sc, Options{DisableEarlyTerm: true})
		if !sameResult(a, b) {
			t.Fatalf("seed %d: early-term changed result: %+v vs %+v", seed, a, b)
		}
		if a.Cells > b.Cells {
			t.Fatalf("seed %d: early-term computed more cells (%d > %d)", seed, a.Cells, b.Cells)
		}
	}
}

func TestExtendPerfectMatch(t *testing.T) {
	sc := DefaultScoring()
	q := []byte{0, 1, 2, 3, 0, 1, 2, 3, 2, 2}
	res := Extend(q, q, 50, sc)
	want := 50 + len(q)*sc.Match
	if res.Local != want || res.Global != want {
		t.Fatalf("perfect match: got local=%d global=%d, want %d", res.Local, res.Global, want)
	}
	if res.LocalT != len(q) || res.LocalQ != len(q) || res.GlobalT != len(q) {
		t.Fatalf("perfect match positions wrong: %+v", res)
	}
}

func TestExtendSingleMismatch(t *testing.T) {
	sc := DefaultScoring()
	q := []byte{0, 1, 2, 3, 0, 1, 2, 3}
	tg := append([]byte(nil), q...)
	tg[4] = 3 // mismatch in the middle
	res := Extend(q, tg, 20, sc)
	want := 20 + (len(q)-1)*sc.Match - sc.Mismatch
	if res.Global != want {
		t.Fatalf("single mismatch: got global=%d, want %d", res.Global, want)
	}
	// The local best clips before the mismatch.
	if res.Local != 20+4*sc.Match {
		t.Fatalf("single mismatch: got local=%d, want %d", res.Local, 20+4*sc.Match)
	}
}

func TestExtendDeletion(t *testing.T) {
	sc := DefaultScoring()
	// Target has 3 extra bases (deletion from the read's perspective).
	q := []byte{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}
	tg := append([]byte(nil), q[:6]...)
	tg = append(tg, 2, 2, 2)
	tg = append(tg, q[6:]...)
	res := Extend(q, tg, 30, sc)
	want := 30 + len(q)*sc.Match - sc.GapOpen - 3*sc.GapExtend
	if res.Global != want {
		t.Fatalf("deletion: got global=%d, want %d", res.Global, want)
	}
	if res.GlobalT != len(tg) {
		t.Fatalf("deletion: global endpoint row %d, want %d", res.GlobalT, len(tg))
	}
}

func TestExtendDeadInputs(t *testing.T) {
	sc := DefaultScoring()
	if r := Extend([]byte{0, 1}, []byte{2, 3}, 0, sc); r.Local != 0 || r.Global != 0 {
		t.Fatalf("h0=0 should be dead, got %+v", r)
	}
	if r := Extend(nil, []byte{1}, 10, sc); r.Local != 0 {
		t.Fatalf("empty query should be dead, got %+v", r)
	}
}

func TestBoundaryECapture(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		q, tg, h0 := extensionCase(rng)
		w := 3 + rng.Intn(10)
		_, bd := ExtendBanded(q, tg, h0, sc, w)
		_, mx := NaiveExtendBanded(q, tg, h0, sc, w)
		// Recompute each boundary E from the naive in-band matrices.
		for j := 1; j <= len(q); j++ {
			i := j + w // in-band lower boundary cell
			if i > len(tg) {
				continue
			}
			want := mx.E[i][j]
			if t1 := mx.H[i][j] - sc.GapOpen; t1 > want {
				want = t1
			}
			want -= sc.GapExtend
			if want < 0 {
				want = 0
			}
			if bd.E[j] != want {
				t.Fatalf("trial %d: boundary E at j=%d: got %d want %d (w=%d)", trial, j, bd.E[j], want, w)
			}
		}
	}
}

func TestEstimateBand(t *testing.T) {
	sc := DefaultScoring()
	if w := sc.EstimateBand(101, 0, 100); w != 95 {
		t.Fatalf("EstimateBand(101,0,100) = %d, want 95", w)
	}
	if w := sc.EstimateBand(101, 50, 100); w != 100 {
		t.Fatalf("cap should clamp, got %d", w)
	}
	if w := sc.EstimateBand(3, 0, 100); w < 1 {
		t.Fatalf("band must be at least 1, got %d", w)
	}
}

func TestUsedBand(t *testing.T) {
	sc := DefaultScoring()
	q := randSeq(rand.New(rand.NewSource(3)), 60)
	if w := UsedBand(q, q, 40, sc); w != 0 {
		t.Fatalf("perfect match needs band 0, got %d", w)
	}
	// Insert a 5-base gap into the target: the optimal path deviates by 5.
	tg := append([]byte(nil), q[:30]...)
	tg = append(tg, 0, 0, 1, 1, 2)
	tg = append(tg, q[30:]...)
	w := UsedBand(q, tg, 40, sc)
	if w < 4 || w > 6 {
		t.Fatalf("5-base deletion should need band ~5, got %d", w)
	}
}

func TestScoringValidate(t *testing.T) {
	if err := DefaultScoring().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Scoring{Match: 0, Mismatch: 4, GapOpen: 6, GapExtend: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero match score")
	}
	bad = Scoring{Match: 1, Mismatch: 4, GapOpen: 6, GapExtend: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero gap extend")
	}
}

// TestExtendMatchesNaiveRandomScoring re-runs the kernel-vs-oracle
// equivalence under randomized scoring schemes.
func TestExtendMatchesNaiveRandomScoring(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sc := Scoring{
			Match:     1 + r.Intn(3),
			Mismatch:  1 + r.Intn(7),
			GapOpen:   r.Intn(9),
			GapExtend: 1 + r.Intn(3),
		}
		q, tg, h0 := extensionCase(r)
		w := -1
		if r.Intn(2) == 0 {
			w = r.Intn(25)
		}
		var got, want ExtendResult
		if w < 0 {
			got = Extend(q, tg, h0, sc)
			want, _ = NaiveExtend(q, tg, h0, sc)
		} else {
			got, _ = ExtendBanded(q, tg, h0, sc, w)
			want, _ = NaiveExtendBanded(q, tg, h0, sc, w)
		}
		if !sameResult(got, want) {
			t.Logf("seed=%d sc=%+v w=%d: %+v vs %+v", seed, sc, w, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

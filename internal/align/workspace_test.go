package align

import (
	"math"
	"math/rand"
	"testing"
)

func wsRandSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(5)) // include ambiguous bases
	}
	return s
}

// wsRandCase draws one extension problem, alternating between related
// (mutated-copy) and unrelated sequence pairs.
func wsRandCase(rng *rand.Rand) (q, t []byte, h0 int) {
	tlen := 1 + rng.Intn(160)
	t = wsRandSeq(rng, tlen)
	if rng.Intn(2) == 0 {
		qlen := tlen - rng.Intn(tlen)
		q = append([]byte(nil), t[:qlen]...)
		for k := 0; k < qlen/20+1; k++ {
			q[rng.Intn(qlen)] = byte(rng.Intn(5))
		}
	} else {
		q = wsRandSeq(rng, 1+rng.Intn(160))
	}
	h0 = rng.Intn(180) // includes 0 (degenerate)
	return
}

func wsRandScoring(rng *rand.Rand) Scoring {
	return Scoring{
		Match:     1 + rng.Intn(3),
		Mismatch:  1 + rng.Intn(8),
		GapOpen:   rng.Intn(10),
		GapExtend: 1 + rng.Intn(4),
	}
}

func sameExtendResult(a, b ExtendResult) bool { return a == b }

// TestWorkspaceKernelEquivalence pins the workspace kernel bit-for-bit
// against the reference kernel: every result field (scores, positions,
// rows, cell counts) and every boundary E-score must match, across random
// problems, random scorings, all band widths, and both early-termination
// settings.
func TestWorkspaceKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ws := NewWorkspace()
	bands := []int{-1, 0, 1, 2, 3, 5, 8, 13, 20, 35, 60, 200}
	for iter := 0; iter < 4000; iter++ {
		q, tg, h0 := wsRandCase(rng)
		sc := DefaultScoring()
		if iter%3 == 0 {
			sc = wsRandScoring(rng)
		}
		w := bands[rng.Intn(len(bands))]
		opts := Options{DisableEarlyTerm: iter%5 == 0}
		if w < 0 {
			want, _ := extendCoreRef(q, tg, h0, sc, -1, opts, false)
			got := ExtendWSOpts(ws, q, tg, h0, sc, opts)
			if !sameExtendResult(got, want) {
				t.Fatalf("iter %d full: ws %+v != ref %+v (h0=%d sc=%+v)", iter, got, want, h0, sc)
			}
			continue
		}
		want, wantBd := extendCoreRef(q, tg, h0, sc, w, opts, true)
		got, gotBd := ExtendBandedWSOpts(ws, q, tg, h0, sc, w, opts)
		if !sameExtendResult(got, want) {
			t.Fatalf("iter %d w=%d: ws %+v != ref %+v (h0=%d sc=%+v)", iter, w, got, want, h0, sc)
		}
		if len(gotBd.E) != len(wantBd.E) {
			t.Fatalf("iter %d w=%d: boundary length %d != %d", iter, w, len(gotBd.E), len(wantBd.E))
		}
		for j := range wantBd.E {
			if gotBd.E[j] != wantBd.E[j] {
				t.Fatalf("iter %d w=%d: boundary E[%d] = %d != %d", iter, w, j, gotBd.E[j], wantBd.E[j])
			}
		}
	}
}

// TestPooledWrappersMatchReference checks the drop-in Extend/ExtendBanded
// wrappers (pool-backed) against the reference kernel.
func TestPooledWrappersMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sc := DefaultScoring()
	for iter := 0; iter < 500; iter++ {
		q, tg, h0 := wsRandCase(rng)
		if got, want := Extend(q, tg, h0, sc), ExtendRef(q, tg, h0, sc); !sameExtendResult(got, want) {
			t.Fatalf("Extend: %+v != %+v", got, want)
		}
		w := rng.Intn(30)
		got, gotBd := ExtendBanded(q, tg, h0, sc, w)
		want, wantBd := ExtendBandedRef(q, tg, h0, sc, w)
		if !sameExtendResult(got, want) {
			t.Fatalf("ExtendBanded: %+v != %+v", got, want)
		}
		for j := range wantBd.E {
			if gotBd.E[j] != wantBd.E[j] {
				t.Fatalf("ExtendBanded boundary mismatch at %d", j)
			}
		}
	}
}

// TestInt32OverflowFallback: problems whose score range exceeds the int32
// datapath must transparently use the reference kernel and still be exact.
func TestInt32OverflowFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	q, tg := wsRandSeq(rng, 80), wsRandSeq(rng, 100)
	sc := DefaultScoring()
	ws := NewWorkspace()
	for _, h0 := range []int{int32SafeLimit, math.MaxInt32, math.MaxInt32 * 4} {
		if int32Safe(len(q), len(tg), h0, sc) {
			t.Fatalf("h0=%d should be flagged unsafe", h0)
		}
		got := ExtendWS(ws, q, tg, h0, sc)
		want := ExtendRef(q, tg, h0, sc)
		if !sameExtendResult(got, want) {
			t.Fatalf("h0=%d: fallback %+v != ref %+v", h0, got, want)
		}
		gotB, gotBd := ExtendBandedWS(ws, q, tg, h0, sc, 5)
		wantB, wantBd := ExtendBandedRef(q, tg, h0, sc, 5)
		if !sameExtendResult(gotB, wantB) {
			t.Fatalf("h0=%d banded: fallback %+v != ref %+v", h0, gotB, wantB)
		}
		for j := range wantBd.E {
			if gotBd.E[j] != wantBd.E[j] {
				t.Fatalf("h0=%d banded boundary mismatch at %d", h0, j)
			}
		}
	}
}

// TestExtendWSZeroAllocs: the workspace entry points must be allocation-
// free in steady state (the tentpole property of this hot path).
func TestExtendWSZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	sc := DefaultScoring()
	tg := wsRandSeq(rng, 200)
	q := append([]byte(nil), tg[:150]...)
	for k := 0; k < 8; k++ {
		q[rng.Intn(len(q))] = byte(rng.Intn(4))
	}
	ws := NewWorkspace()
	ExtendWS(ws, q, tg, 40, sc) // warm the buffers
	if n := testing.AllocsPerRun(200, func() {
		ExtendWS(ws, q, tg, 40, sc)
	}); n != 0 {
		t.Fatalf("ExtendWS allocates %.1f allocs/op, want 0", n)
	}
	ExtendBandedWS(ws, q, tg, 40, sc, 20)
	if n := testing.AllocsPerRun(200, func() {
		ExtendBandedWS(ws, q, tg, 40, sc, 20)
	}); n != 0 {
		t.Fatalf("ExtendBandedWS allocates %.1f allocs/op, want 0", n)
	}
}

// TestBoundaryAliasContract documents the aliasing contract: successive
// banded runs on one workspace return boundaries sharing the same backing
// buffer (that is what makes the WS path allocation-free).
func TestBoundaryAliasContract(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	tg := wsRandSeq(rng, 120)
	q := append([]byte(nil), tg[:100]...)
	ws := NewWorkspace()
	_, bd1 := ExtendBandedWS(ws, q, tg, 60, DefaultScoring(), 3)
	_, bd2 := ExtendBandedWS(ws, q, tg, 60, DefaultScoring(), 3)
	if len(bd1.E) == 0 || len(bd2.E) == 0 {
		t.Fatal("boundaries must be materialized in banded mode")
	}
	if &bd1.E[0] != &bd2.E[0] {
		t.Fatal("boundary buffers must be reused across runs on one workspace")
	}
}

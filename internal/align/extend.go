package align

// ExtendResult reports the outcome of one seed extension.
type ExtendResult struct {
	// Local is the best score over all computed cells (the
	// Smith-Waterman-style local maximum of the extension). Zero means no
	// positive-scoring extension exists.
	Local int
	// LocalT and LocalQ are the number of target and query bases consumed
	// at the first cell (in row-major scan order) achieving Local.
	LocalT, LocalQ int
	// Global is the best score among right-edge cells (query fully
	// consumed, j = len(query)); zero if no such cell scores positively.
	// BWA-MEM uses it to decide between soft-clipping and end-to-end
	// (semi-global) alignment.
	Global int
	// GlobalT is the number of target bases consumed at the first
	// right-edge cell achieving Global.
	GlobalT int
	// Rows is the number of target rows actually processed before early
	// termination (Rows == len(target) when the whole matrix was swept).
	Rows int
	// Cells is the number of DP cells evaluated; the software-kernel cost
	// metric behind the paper's Figure 3.
	Cells int64
}

// BandBoundary captures the gap scores that leak out of the band's lower
// boundary, consumed by the SeedEx E-score check (paper §III-C).
type BandBoundary struct {
	// E[j] is the E-score entering the below-band cell (j+w+1, j) from the
	// in-band cell (j+w, j), for 1 <= j <= len(query); zero where the
	// boundary does not exist or nothing leaks.
	E []int
}

// Extender computes seed extensions. Implementations include the software
// kernels in this package, the cycle-level systolic simulator, and the
// speculative SeedEx extender in internal/core.
type Extender interface {
	// Extend aligns query against target anchored with initial score h0.
	Extend(query, target []byte, h0 int) ExtendResult
}

// Job is one independent extension problem of a batch: align Q against T
// starting from seed score H0. Jobs in a batch share one scoring scheme
// and band; everything else (lengths, h0) may differ per job.
type Job struct {
	Q, T []byte
	H0   int
}

// BatchExtender is an Extender that can run many independent extensions
// as one batch — the software analogue of filling the accelerator's
// systolic cores from a DMA batch. Implementations pack jobs into SIMD
// lanes (see the SWAR kernels in this package) or dispatch them to
// hardware; semantically ExtendJobs is identical to calling Extend once
// per job, and the results are bit-for-bit those of the scalar kernels.
type BatchExtender interface {
	Extender
	// ExtendJobs extends every job and returns the results in job order,
	// reusing dst's backing array when it is large enough.
	ExtendJobs(jobs []Job, dst []ExtendResult) []ExtendResult
}

// SessionExtender is an Extender that can mint per-goroutine sessions: a
// Session shares the parent's configuration and aggregate statistics but
// owns its own scratch memory, so long-lived workers (pipeline goroutines,
// FPGA driver threads) extend allocation-free without sharing mutable
// state. Sessions must not be used concurrently; the parent Extender
// remains safe for shared use.
type SessionExtender interface {
	Extender
	Session() Extender
}

// Options controls optional kernel behaviour.
type Options struct {
	// DisableEarlyTerm turns off the exact dead-region trimming and
	// dead-row break (useful for cycle accounting comparisons).
	DisableEarlyTerm bool
}

// Extend runs the full-width (unbanded) extension kernel.
// It is the host "full-band rerun" ground truth of the SeedEx workflow.
// It draws scratch from the shared workspace pool; hot callers should hold
// a Workspace and use ExtendWS instead.
func Extend(query, target []byte, h0 int, sc Scoring) ExtendResult {
	ws := GetWorkspace()
	r, _ := extendCoreWS(ws, query, target, h0, sc, -1, Options{}, nil)
	PutWorkspace(ws)
	return r
}

// ExtendOpts is Extend with explicit Options.
func ExtendOpts(query, target []byte, h0 int, sc Scoring, opts Options) ExtendResult {
	ws := GetWorkspace()
	r, _ := extendCoreWS(ws, query, target, h0, sc, -1, opts, nil)
	PutWorkspace(ws)
	return r
}

// ExtendBanded runs the kernel restricted to the band |i-j| <= w and
// additionally captures the E-scores crossing the band's lower boundary
// (needed by the SeedEx optimality checks). Out-of-band neighbours are
// treated as dead cells. The returned boundary is freshly allocated (it
// must outlive the pooled workspace); hot callers should hold a Workspace
// and use ExtendBandedWS, whose boundary aliases workspace memory.
func ExtendBanded(query, target []byte, h0 int, sc Scoring, w int) (ExtendResult, BandBoundary) {
	return ExtendBandedOpts(query, target, h0, sc, w, Options{})
}

// ExtendBandedOpts is ExtendBanded with explicit Options.
func ExtendBandedOpts(query, target []byte, h0 int, sc Scoring, w int, opts Options) (ExtendResult, BandBoundary) {
	ws := GetWorkspace()
	r, bd := extendCoreWS(ws, query, target, h0, sc, w, opts, ws.boundaryBuf(len(query)))
	out := BandBoundary{E: append([]int(nil), bd.E...)}
	PutWorkspace(ws)
	return r, out
}

// ExtendRef runs the original int-arithmetic full-width kernel. It is kept
// as the independent reference implementation: the equivalence tests pin
// the workspace kernel against it bit-for-bit, and the benchmarks use it
// as the perf baseline ("seed kernel").
func ExtendRef(query, target []byte, h0 int, sc Scoring) ExtendResult {
	r, _ := extendCoreRef(query, target, h0, sc, -1, Options{}, false)
	return r
}

// ExtendBandedRef is the reference counterpart of ExtendBanded.
func ExtendBandedRef(query, target []byte, h0 int, sc Scoring, w int) (ExtendResult, BandBoundary) {
	return extendCoreRef(query, target, h0, sc, w, Options{}, true)
}

// extendCoreRef is the allocating row-streaming reference kernel. w < 0
// selects the full width. When captureBoundary is set (banded mode), the
// outgoing lower boundary E-scores are recorded. The workspace kernel
// (extendCoreWS) mirrors this code and must stay bit-identical to it; it
// also delegates here when a problem's score range could overflow int32.
func extendCoreRef(query, target []byte, h0 int, sc Scoring, w int, opts Options, captureBoundary bool) (ExtendResult, BandBoundary) {
	n, m := len(query), len(target)
	res := ExtendResult{}
	var boundary BandBoundary
	if captureBoundary {
		boundary.E = make([]int, n+1)
	}
	if h0 <= 0 || n == 0 {
		// No seed score to extend from, or nothing to align: the global
		// score at j==0 is h0 itself only in the degenerate n==0 case,
		// which callers never exercise; report an empty extension.
		return res, boundary
	}
	banded := w >= 0

	// h[j] = H(i-1, j); e[j] = E(i, j) for the row about to be computed.
	h := make([]int, n+1)
	e := make([]int, n+1)
	h[0] = h0
	for j := 1; j <= n; j++ {
		if banded && j > w {
			// Initialization cells above the band are dead for the banded
			// machine; the SeedEx threshold check (score > S1) accounts
			// for every path through the above-band region.
			h[j] = 0
			continue
		}
		v := h0 - sc.GapOpen - j*sc.GapExtend
		if v < 0 {
			v = 0
		}
		h[j] = v
	}
	// Row 0 right edge also contributes a global score (pure insertion of
	// the whole query).
	if h[n] > 0 {
		res.Global = h[n]
		res.GlobalT = 0
	}
	res.Local = 0 // scores below or at zero are dead; report 0.

	oe := sc.GapOpen + sc.GapExtend
	for i := 1; i <= m; i++ {
		jmin, jmax := 1, n
		if banded {
			if lo := i - w; lo > jmin {
				jmin = lo
			}
			if hi := i + w; hi < jmax {
				jmax = hi
			}
			if jmin > n {
				break // band has moved past the query; nothing left in-band
			}
		}

		// First column of this row.
		col0 := h0 - sc.GapOpen - i*sc.GapExtend
		if col0 < 0 {
			col0 = 0
		}

		var hPrev int // H(i-1, jmin-1), the diagonal input of the first cell
		if jmin == 1 {
			hPrev = h[0]
			if !banded || i <= w {
				h[0] = col0 // store H(i, 0)
			} else {
				h[0] = 0 // column 0 is below the band: dead
				col0 = 0
			}
		} else {
			hPrev = h[jmin-1]
		}
		if banded && jmax < n {
			// The rightmost in-band column is new this row; its E input
			// comes from out-of-band cells above and is dead.
			e[jmax] = 0
		}

		f := 0
		rowLive := col0 > 0
		beg, end := jmin, jmax
		if !opts.DisableEarlyTerm {
			// Exact leading dead-region skip: cells whose diagonal, E and
			// (implied) F inputs are all dead stay dead.
			for beg <= jmax && hPrev == 0 && h[beg] == 0 && e[beg] == 0 {
				hPrev = h[beg]
				beg++
			}
			if beg > jmin {
				hPrev = h[beg-1]
			}
		}
		lastLive := beg - 1
		for j := beg; j <= end; j++ {
			hDiag := hPrev
			hPrev = h[j]
			var mv int
			if hDiag > 0 {
				mv = hDiag + sc.Sub(target[i-1], query[j-1])
			}
			ev := e[j]
			hv := mv
			if ev > hv {
				hv = ev
			}
			if f > hv {
				hv = f
			}
			if hv < 0 {
				hv = 0
			}
			h[j] = hv
			res.Cells++

			if hv > res.Local {
				res.Local, res.LocalT, res.LocalQ = hv, i, j
			}

			t1 := hv - oe
			ne := ev - sc.GapExtend
			if t1 > ne {
				ne = t1
			}
			if ne < 0 {
				ne = 0
			}
			e[j] = ne
			nf := f - sc.GapExtend
			if t1 > nf {
				nf = t1
			}
			if nf < 0 {
				nf = 0
			}
			f = nf

			if hv > 0 || ne > 0 || nf > 0 {
				rowLive = true
				lastLive = j
			}
			if banded && i-j == w {
				// E(i+1, j) leaves the band through its lower boundary.
				if captureBoundary {
					boundary.E[j] = ne
				}
				e[j] = 0 // the below-band cell is not computed in-band
			}
			if !opts.DisableEarlyTerm && j-lastLive > 2 && hPrev == 0 && e[j] == 0 {
				// Exact trailing dead-region stop: no H, E or F liveness
				// remains in this row and the cells above are dead, so the
				// rest of the row (and its E outputs) stay dead. Clear any
				// stale state so the next row sees dead inputs.
				for k := j + 1; k <= end; k++ {
					if h[k] == 0 && e[k] == 0 {
						continue
					}
					// A live cell above would resurrect the row; give up
					// trimming and keep computing.
					goto keepGoing
				}
				for k := j + 1; k <= end; k++ {
					h[k] = 0
				}
				break
			}
		keepGoing:
			if j == n && hv > res.Global {
				res.Global, res.GlobalT = hv, i
			}
		}
		res.Rows = i
		if !opts.DisableEarlyTerm {
			nextCol0 := h0 - sc.GapOpen - (i+1)*sc.GapExtend
			if !rowLive && nextCol0 <= 0 {
				break
			}
			if banded && i-w > 0 && !rowLive {
				// Column 0 is outside the band from row w+1 on, so a fully
				// dead in-band row cannot be revived.
				break
			}
		}
	}
	return res, boundary
}

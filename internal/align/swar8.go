package align

import "math/bits"

// 8-lane SWAR banded extension kernel.
//
// Eight independent extension problems ride in the eight 8-bit lanes of a
// uint64. One interleaved column record (swarCol) per DP column holds the
// H and E values of all eight problems at that column plus the striped
// query word, and a single row sweep advances all eight DP matrices in
// lockstep over a shared band schedule — the software mirror of the
// paper's systolic array filling its cores from a batch.
//
// Layout invariants (enforced by the tiering in swar.go):
//
//   - Every value the kernel can produce fits in 7 bits: the score ceiling
//     h0 + n*Match of every lane is <= swarCap8, and each penalty
//     magnitude is <= swarCap8. The spare eighth bit per lane is what lets
//     saturating subtract and max run borrow-free in a handful of bitwise
//     ops (satsub8/max8 below) with no cross-lane carries: per-lane
//     intermediates never exceed 0xFE.
//   - Query base codes are compared directly against target base codes
//     (XOR + per-lane zero test) instead of a query profile: with eight
//     different targets per row there is no shared profile row to gather.
//     Codes 0..3 are real bases; past-the-end or ambiguous query positions
//     get sentinel 5 and target positions sentinel 6, so a padded or
//     ambiguous cell can never take the match path and its value only ever
//     decays — padding stays harmless without per-cell branches.
//   - The striped query word qm packs, per lane, the base code in bits
//     0-2, the right-edge flag (j == lane query length) in bit 6, and the
//     column-valid flag in bit 7. The lane comparison masks the XOR to the
//     code field ((qm ^ tw) & swarCode8); colHi is qm & swarH8 and edgeHi
//     is (qm << 1) & swarH8 — the <<1 bleeds each lane's valid bit into
//     its neighbour's bit 0, which the & swarH8 discards.
//   - Lanes whose query (column) or target (row) is exhausted keep
//     sweeping dead padded cells; colHi/edgeHi/rowHi masks exclude them
//     from every capture (local best, global edge, boundary E) and from
//     the liveness word that drives the shared early exit.
//
// The kernel's score fields (Local/LocalT/LocalQ, Global/GlobalT) and the
// boundary E-scores are bit-identical to extendCoreRef; Rows/Cells report
// the full in-band sweep (the packed kernel has no per-lane early
// termination), which no consumer of batch results reads for correctness.

const (
	swarL8    uint64 = 0x0101010101010101 // 1 in every 8-bit lane
	swarH8    uint64 = swarL8 << 7        // lane high bits
	swarM7    uint64 = ^swarH8            // 7-bit payload mask per lane
	swarCode8 uint64 = swarL8 * 7         // 3-bit base-code field per lane

	swarColHi8  uint64 = 0x80 // qm column-valid flag (per lane)
	swarEdgeHi8 uint64 = 0x40 // qm right-edge flag (per lane)
)

// swarCap8 is the largest value (score or penalty) an 8-bit lane may hold.
const swarCap8 = 127

func splat8(v int) uint64 { return uint64(v) * swarL8 }

// satsub8 computes per-lane max(a-b, 0). Every lane of a and b must be
// <= swarCap8: the forced high bit absorbs the borrow of lanes where
// a < b, so borrows never cross lanes.
func satsub8(a, b uint64) uint64 {
	t := (a | swarH8) - b
	u := t & swarH8
	return t & (u - u>>7)
}

// max8 computes the per-lane maximum as b + max(a-b, 0); the sum cannot
// carry because the result is again <= swarCap8.
func max8(a, b uint64) uint64 { return b + satsub8(a, b) }

// swarQM8 builds one lane's striped query byte for column j (1-based):
// code | valid flag | edge flag, or the bare pad sentinel past the end.
func swarQM8(q []byte, n, j int) uint64 {
	if j > n {
		return 5 // query pad/ambiguity sentinel, no flags
	}
	c := uint64(5)
	if b := q[j-1]; b < 4 {
		c = uint64(b)
	}
	c |= swarColHi8
	if j == n {
		c |= swarEdgeHi8
	}
	return c
}

// extendSWAR8 sweeps up to 8 lanes in lockstep. Preconditions (guaranteed
// by the batch orchestration in swar.go): 1 <= len(lanes) <= 8, every
// lane has len(q) >= 1 and h0 >= 1, every lane and the scoring scheme
// pass the swarCap8 tier test. w < 0 selects full width. Results are
// written through lanes[k].res; boundary E-scores into lanes[k].bd (when
// non-nil: pre-zeroed, len(q)+1).
func extendSWAR8(ws *Workspace, lanes []swarLane, sc Scoring, w int) {
	nl := len(lanes)
	var nk, mk [8]int
	nMax, mMax := 0, 0
	for k := 0; k < nl; k++ {
		nk[k] = len(lanes[k].q)
		mk[k] = len(lanes[k].t)
		if nk[k] > nMax {
			nMax = nk[k]
		}
		if mk[k] > mMax {
			mMax = mk[k]
		}
	}
	banded := w >= 0
	effW := w
	if !banded {
		effW = nMax + mMax + 1 // band that never clips: identical to full width
	}

	ws.preparePacked(nMax, mMax, 1)
	cols, tw := ws.pk.cols, ws.pk.tw

	// Lane-transpose the sequences into the striped column records (E
	// starts all-dead) and the target words.
	for j := 1; j <= nMax; j++ {
		var qv uint64
		for k := 0; k < nl; k++ {
			qv |= swarQM8(lanes[k].q, nk[k], j) << (8 * k)
		}
		cols[j] = swarCol{qm: qv}
	}
	for i := 1; i <= mMax; i++ {
		var tv uint64
		for k := 0; k < nl; k++ {
			c := uint64(6) // target pad/ambiguity sentinel
			if i <= mk[k] {
				if b := lanes[k].t[i-1]; b < 4 {
					c = uint64(b)
				}
			}
			tv |= c << (8 * k)
		}
		tw[i] = tv
	}

	maW := splat8(sc.Match)
	miW := splat8(sc.Mismatch)
	geW := splat8(sc.GapExtend)
	oeW := splat8(sc.GapOpen + sc.GapExtend)

	// Row 0: H(0, j) = max(h0 - GapOpen - j*GapExtend, 0), dead above the
	// band. The satsub chain is the clamped recurrence of that formula.
	var h0W uint64
	for k := 0; k < nl; k++ {
		h0W |= uint64(lanes[k].h0) << (8 * k)
	}
	cols[0] = swarCol{h: h0W}
	lim := nMax
	if banded && w < lim {
		lim = w
	}
	v := satsub8(h0W, oeW)
	for j := 1; j <= lim; j++ {
		cols[j].h = v
		v = satsub8(v, geW)
	}
	for j := lim + 1; j <= nMax; j++ {
		cols[j].h = 0
	}

	// Row 0's right edge contributes each lane's initial global score
	// (pure insertion of the whole query).
	var gBest, gT [8]int
	for k := 0; k < nl; k++ {
		if g := int(cols[nk[k]].h>>(8*k)) & 0xff; g > 0 {
			gBest[k] = g
		}
	}

	var capHi uint64
	{
		hi := uint64(0x80)
		for k := 0; k < nl; k++ {
			if lanes[k].bd != nil {
				capHi |= hi
			}
			hi <<= 8
		}
	}

	rows := mMax
	if r := nMax + effW; r < rows {
		rows = r
	}

	var bestW uint64
	var bi, bj [8]int
	col0W := satsub8(h0W, splat8(sc.GapOpen))

	for i := 1; i <= rows; i++ {
		jmin, jmax := 1, nMax
		if banded {
			if lo := i - w; lo > jmin {
				jmin = lo
			}
			if hi := i + w; hi < jmax {
				jmax = hi
			}
			if jmin > nMax {
				break
			}
		}

		col0W = satsub8(col0W, geW) // col0(i) = max(h0 - GapOpen - i*GapExtend, 0)
		var hDiag uint64
		if jmin == 1 {
			hDiag = cols[0].h
			if !banded || i <= w {
				cols[0].h = col0W
			} else {
				cols[0].h = 0 // column 0 is below the band: dead
			}
		} else {
			hDiag = cols[jmin-1].h
		}
		if banded && jmax < nMax {
			// The rightmost in-band column is new this row; its E input is
			// out-of-band and dead.
			cols[jmax].e = 0
		}

		// Lanes whose target is exhausted keep sweeping padded rows;
		// rowHi/rowFull mask them out of captures and liveness.
		var rowHi uint64
		{
			hi := uint64(0x80)
			for k := 0; k < nl; k++ {
				if i <= mk[k] {
					rowHi |= hi
				}
				hi <<= 8
			}
		}
		rowFull := (rowHi >> 7) * 0xff
		twI := tw[i]
		bj0 := -1
		if banded && i > w {
			bj0 = i - w // the band's lower-boundary column this row (== jmin)
		}
		var f, live uint64
		for j := jmin; j <= jmax; j++ {
			col := &cols[j]
			hUp := col.h
			ev := col.e
			qm := col.qm
			// eqm: 0x7f in lanes whose query base matches the target base
			// (the flag bits are masked out of the XOR with the codes).
			x := (qm ^ twI) & swarCode8
			nzb := (x + swarM7) | x
			eqm := ^nzb & swarH8
			eqm -= eqm >> 7
			// nzm: 0x7f in lanes whose diagonal is live (dead cells give no
			// match extension — the kernels' no-local-restart rule).
			u := (hDiag + swarM7) & swarH8
			nzm := u - u>>7
			mv := ((hDiag + maW) & eqm & nzm) | (satsub8(hDiag, miW) &^ eqm)
			hv := max8(max8(mv, ev), f)
			col.h = hv

			colHi := qm & swarH8
			if gt := ((hv | swarH8) - bestW - swarL8) & colHi & rowHi; gt != 0 {
				// Some lane strictly improved its local best (rare; first
				// position in scan order wins, same as the scalar kernels).
				fm := (gt >> 7) * 0xff
				bestW = (hv & fm) | (bestW &^ fm)
				for g := gt; g != 0; g &= g - 1 {
					k := bits.TrailingZeros64(g) >> 3
					bi[k], bj[k] = i, j
				}
			}

			t1 := satsub8(hv, oeW)
			ne := max8(t1, satsub8(ev, geW))
			f = max8(t1, satsub8(f, geW))
			live |= (hv | ne | f) & rowFull

			if j == bj0 {
				// E leaves the band through its lower boundary: record it
				// for lanes that still have a real cell here. The in-band
				// store is skipped entirely — the band's left edge moves
				// right every row, so this column is never read again,
				// which doubles as the scalar kernels' e[j] = 0 kill.
				if cb := colHi & rowHi & capHi; cb != 0 {
					for g := cb; g != 0; g &= g - 1 {
						k := bits.TrailingZeros64(g) >> 3
						lanes[k].bd[j] = int(ne>>(8*k)) & 0xff
					}
				}
			} else {
				col.e = ne
			}

			if eh := (qm << 1) & swarH8 & rowHi; eh != 0 {
				// Right-edge cells (query fully consumed): global scores.
				for g := eh; g != 0; g &= g - 1 {
					k := bits.TrailingZeros64(g) >> 3
					if v := int(hv>>(8*k)) & 0xff; v > gBest[k] {
						gBest[k], gT[k] = v, i
					}
				}
			}
			hDiag = hUp
		}

		// Shared early exit, taken only when every still-active lane
		// satisfies the scalar kernels' exact dead-row break: no in-band
		// liveness and (column 0 out of band, or its next value dead too).
		rowLiveW := live
		if !banded || i <= w {
			rowLiveW |= col0W & rowFull
		}
		if rowLiveW == 0 {
			if banded && i > w {
				break
			}
			if satsub8(col0W, geW)&rowFull == 0 {
				break
			}
		}
	}

	// Scatter results. Rows/Cells are the deterministic full-sweep counts
	// so batch composition can never change a result field.
	for k := 0; k < nl; k++ {
		r := lanes[k].res
		rk := mk[k]
		if lim := nk[k] + effW; lim < rk {
			rk = lim
		}
		var cells int64
		for i := 1; i <= rk; i++ {
			lo, hi := 1, nk[k]
			if banded {
				if l := i - w; l > lo {
					lo = l
				}
				if h := i + w; h < hi {
					hi = h
				}
			}
			if lo > hi {
				break
			}
			cells += int64(hi - lo + 1)
		}
		r.Local = int(bestW>>(8*k)) & 0xff
		r.LocalT, r.LocalQ = bi[k], bj[k]
		r.Global, r.GlobalT = gBest[k], gT[k]
		r.Rows = rk
		r.Cells = cells
	}
}

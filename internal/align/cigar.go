package align

import (
	"fmt"
	"strings"
)

// CigarOp is a single CIGAR operation kind.
type CigarOp byte

// CIGAR operation kinds (SAM semantics: the query is the read, the target
// is the reference).
const (
	OpMatch CigarOp = 'M' // alignment match or mismatch: consumes query and target
	OpIns   CigarOp = 'I' // insertion to the reference: consumes query only
	OpDel   CigarOp = 'D' // deletion from the reference: consumes target only
	OpSoft  CigarOp = 'S' // soft clip: consumes query only, unaligned
)

// CigarElem is a run-length encoded CIGAR element.
type CigarElem struct {
	Op  CigarOp
	Len int
}

// Cigar is a run-length encoded alignment description.
type Cigar []CigarElem

// String renders the CIGAR in SAM text form ("*" when empty).
func (c Cigar) String() string {
	if len(c) == 0 {
		return "*"
	}
	var b strings.Builder
	for _, e := range c {
		fmt.Fprintf(&b, "%d%c", e.Len, e.Op)
	}
	return b.String()
}

// Push appends one op run, merging with the previous element when equal.
func (c Cigar) Push(op CigarOp, n int) Cigar { return c.append(op, n) }

// Concat appends all of other's elements, merging at the junction.
func (c Cigar) Concat(other Cigar) Cigar {
	for _, e := range other {
		c = c.append(e.Op, e.Len)
	}
	return c
}

// append adds one op, merging with the previous element when equal.
func (c Cigar) append(op CigarOp, n int) Cigar {
	if n == 0 {
		return c
	}
	if len(c) > 0 && c[len(c)-1].Op == op {
		c[len(c)-1].Len += n
		return c
	}
	return append(c, CigarElem{Op: op, Len: n})
}

// QueryLen returns the number of query bases the CIGAR consumes.
func (c Cigar) QueryLen() int {
	n := 0
	for _, e := range c {
		switch e.Op {
		case OpMatch, OpIns, OpSoft:
			n += e.Len
		}
	}
	return n
}

// TargetLen returns the number of target bases the CIGAR consumes.
func (c Cigar) TargetLen() int {
	n := 0
	for _, e := range c {
		switch e.Op {
		case OpMatch, OpDel:
			n += e.Len
		}
	}
	return n
}

// Reverse reverses the element order in place and returns c (tracebacks
// produce elements end-to-start).
func (c Cigar) Reverse() Cigar {
	for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
		c[i], c[j] = c[j], c[i]
	}
	return c
}

// Validate checks the CIGAR consumes exactly qlen query and tlen target
// bases and contains no zero-length or adjacent-equal elements.
func (c Cigar) Validate(qlen, tlen int) error {
	for i, e := range c {
		if e.Len <= 0 {
			return fmt.Errorf("align: cigar element %d has non-positive length", i)
		}
		if i > 0 && c[i-1].Op == e.Op {
			return fmt.Errorf("align: cigar has adjacent %c elements", e.Op)
		}
	}
	if got := c.QueryLen(); got != qlen {
		return fmt.Errorf("align: cigar consumes %d query bases, want %d", got, qlen)
	}
	if got := c.TargetLen(); got != tlen {
		return fmt.Errorf("align: cigar consumes %d target bases, want %d", got, tlen)
	}
	return nil
}

// Score recomputes the affine-gap score of the aligned (non-clipped) part
// of the CIGAR over the given sequences, starting from h0; the test oracle
// for traceback.
func (c Cigar) Score(query, target []byte, h0 int, sc Scoring) int {
	score := h0
	qi, ti := 0, 0
	for _, e := range c {
		switch e.Op {
		case OpMatch:
			for k := 0; k < e.Len; k++ {
				score += sc.Sub(target[ti], query[qi])
				qi++
				ti++
			}
		case OpIns:
			score -= sc.GapOpen + e.Len*sc.GapExtend
			qi += e.Len
		case OpDel:
			score -= sc.GapOpen + e.Len*sc.GapExtend
			ti += e.Len
		case OpSoft:
			qi += e.Len
		}
	}
	return score
}

package align

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveGlobal is the full-matrix oracle with the same conventions as
// globalCore (deletions may open off the init row, insertions off the
// init column).
func naiveGlobal(q, t []byte, h0 int, sc Scoring) int {
	n, m := len(q), len(t)
	H := make([][]int, m+1)
	E := make([][]int, m+1)
	F := make([][]int, m+1)
	for i := range H {
		H[i] = make([]int, n+1)
		E[i] = make([]int, n+1)
		F[i] = make([]int, n+1)
		for j := range H[i] {
			H[i][j], E[i][j], F[i][j] = NegInf, NegInf, NegInf
		}
	}
	H[0][0] = h0
	for j := 1; j <= n; j++ {
		H[0][j] = h0 - sc.GapOpen - j*sc.GapExtend
	}
	for i := 1; i <= m; i++ {
		H[i][0] = h0 - sc.GapOpen - i*sc.GapExtend
		for j := 1; j <= n; j++ {
			e := saturSub(E[i-1][j], sc.GapExtend)
			if v := saturSub(H[i-1][j], sc.GapOpen+sc.GapExtend); v > e {
				e = v
			}
			E[i][j] = e
			f := saturSub(F[i][j-1], sc.GapExtend)
			if v := saturSub(H[i][j-1], sc.GapOpen+sc.GapExtend); v > f {
				f = v
			}
			F[i][j] = f
			best := e
			if f > best {
				best = f
			}
			if d := H[i-1][j-1]; d > NegInf/2 {
				if v := d + sc.Sub(t[i-1], q[j-1]); v > best {
					best = v
				}
			}
			H[i][j] = best
		}
	}
	return H[m][n]
}

func TestGlobalMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := Scoring{Match: 1 + rng.Intn(3), Mismatch: 1 + rng.Intn(6), GapOpen: rng.Intn(8), GapExtend: 1 + rng.Intn(3)}
		n := 1 + rng.Intn(50)
		q := randSeq(rng, n)
		tg := mutate(rng, q, 0.1, 0.05)
		if len(tg) == 0 {
			tg = randSeq(rng, 3)
		}
		h0 := rng.Intn(50)
		got := Global(q, tg, h0, sc)
		want := naiveGlobal(q, tg, h0, sc)
		if !got.Feasible || got.Score != want {
			t.Logf("seed %d: got %+v, want %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalBandedWideEqualsFull(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		q := randSeq(rng, 1+rng.Intn(60))
		tg := mutate(rng, q, 0.05, 0.03)
		if len(tg) == 0 {
			continue
		}
		w := len(q) + len(tg)
		b, _ := GlobalBanded(q, tg, 20, sc, w)
		full := Global(q, tg, 20, sc)
		if b.Score != full.Score || b.Feasible != full.Feasible {
			t.Fatalf("trial %d: banded %+v != full %+v", trial, b, full)
		}
	}
}

func TestGlobalPerfectAndSimpleCases(t *testing.T) {
	sc := DefaultScoring()
	q := []byte{0, 1, 2, 3, 0, 1}
	if got := Global(q, q, 10, sc); got.Score != 10+6 {
		t.Fatalf("perfect global: %+v", got)
	}
	// One deletion: target one base longer.
	tg := append([]byte{2}, q...)
	want := 10 + 6*sc.Match - sc.GapOpen - sc.GapExtend
	if got := Global(q, tg, 10, sc); got.Score != want {
		t.Fatalf("deletion global: got %d want %d", got.Score, want)
	}
	// Empty query vs target: pure gap.
	if got := Global(nil, q, 10, sc); got.Score != 10-sc.GapOpen-6*sc.GapExtend {
		t.Fatalf("empty query: %+v", got)
	}
	if got := Global(nil, nil, 7, sc); got.Score != 7 {
		t.Fatalf("empty/empty: %+v", got)
	}
}

func TestGlobalBandedInfeasible(t *testing.T) {
	sc := DefaultScoring()
	q := randSeq(rand.New(rand.NewSource(3)), 10)
	tg := randSeq(rand.New(rand.NewSource(4)), 30)
	res, _ := GlobalBanded(q, tg, 10, sc, 5) // |m-n| = 20 > 5
	if res.Feasible {
		t.Fatalf("endpoint outside band must be infeasible: %+v", res)
	}
}

func TestGlobalBoundaryCapture(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(5))
	q := randSeq(rng, 40)
	tg := mutate(rng, q, 0.05, 0.05)
	_, bd := GlobalBanded(q, tg, 20, sc, 4)
	liveE, liveF := 0, 0
	for _, v := range bd.EOut {
		if v > NegInf/2 {
			liveE++
		}
	}
	for _, v := range bd.FOut {
		if v > NegInf/2 {
			liveF++
		}
	}
	if liveE == 0 && liveF == 0 {
		t.Fatal("expected some live boundary crossings at w=4")
	}
}

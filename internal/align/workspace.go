package align

import (
	"math"
	"sync"
)

// Workspace owns every piece of scratch memory the extension kernel needs:
// the two DP rows (H and E), the banded kernel's boundary E buffer, and a
// precomputed query profile. One Workspace serves one goroutine; reusing it
// across calls makes the kernel allocation-free in steady state (buffers
// only grow, they are never shrunk or freed).
//
// The rows are int32, not int: halving the element size doubles the number
// of DP cells per cache line, and the kernel is memory-bound on long
// extensions. The entry points below transparently fall back to the int
// reference kernel when a problem's score range could overflow int32 (see
// int32Safe), so callers never observe the narrower arithmetic.
//
// The query profile is the standard striped-SW trick (Farrar/SSW): a 5×N
// table holding Sub(base, query[j]) for each of the 4 base codes plus the
// ambiguous catch-all, built once per call in O(5N). The inner loop then
// replaces the per-cell substitution call (a data-dependent branch) with a
// single table load from the row selected by the current target base.
type Workspace struct {
	h, e   []int32
	prof   []int32
	boundE []int

	// Batch (SWAR) scratch: packed DP rows and lane-transposed sequences
	// for the inter-sequence kernels, the sort keys used to bucket a batch
	// by shape, and one arena serving every job's boundary-E capture.
	pk         packedScratch
	batchKeys  []uint64
	boundArena []int
}

// swarCol is one DP column of the SWAR kernels as an interleaved record:
// the packed H word, the packed E word, and the striped query word qm
// carrying, per lane, the query base code (bits 0-2), the right-edge flag
// (j == lane query length) one bit below the lane top, and the
// column-valid flag in the lane's top bit. The striping puts a column's
// entire inner-loop read set — operands and masks — in 24 contiguous
// bytes, so the per-row sweep is one forward streaming pass instead of
// five parallel array gathers (SSW's query-profile locality argument,
// transposed to inter-sequence lanes). See swar8.go for the bit layout.
type swarCol struct {
	h, e, qm uint64
}

// packedScratch holds the lane-packed state of the SWAR kernels: the
// interleaved column records (one per DP column per lane word — the
// two-word 16-lane kernel stores word w of column j at cols[2j+w]) and
// the lane-transposed target codes, strided the same way.
type packedScratch struct {
	cols []swarCol
	tw   []uint64
}

// NewWorkspace returns an empty Workspace; buffers are sized lazily on
// first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// prepare sizes the DP rows for a query of length n and rebuilds the query
// profile. e is cleared (the kernel requires an all-dead initial E row); h
// is fully initialized by the kernel itself.
func (ws *Workspace) prepare(query []byte, match, mis int32) {
	n := len(query)
	if cap(ws.h) < n+1 {
		ws.h = make([]int32, n+1)
		ws.e = make([]int32, n+1)
	}
	ws.h = ws.h[:n+1]
	ws.e = ws.e[:n+1]
	clear(ws.e)
	if cap(ws.prof) < 5*n {
		ws.prof = make([]int32, 5*n)
	}
	prof := ws.prof[:5*n]
	// Fill the first row elementwise, then replicate by doubling copies
	// (memmove), which is much cheaper than 5n scalar stores.
	for i := 0; i < n; i++ {
		prof[i] = -mis
	}
	for sz := n; sz < 5*n; sz *= 2 {
		copy(prof[sz:], prof[:sz])
	}
	for j, b := range query {
		if b < 4 {
			prof[int(b)*n+j] = match
		}
	}
}

// preparePacked sizes the packed scratch for a lane group whose longest
// query is nMax and longest target is mMax, using `words` uint64 lane
// words per column (1 for the 8- and 4-lane kernels, 2 for the 16-lane
// kernel). Nothing is cleared: each kernel's transpose and row-0 setup
// fully initializes every record it will read.
func (ws *Workspace) preparePacked(nMax, mMax, words int) {
	nw := words * (nMax + 1)
	if cap(ws.pk.cols) < nw {
		ws.pk.cols = make([]swarCol, nw)
	}
	ws.pk.cols = ws.pk.cols[:nw]
	mw := words * (mMax + 1)
	if cap(ws.pk.tw) < mw {
		ws.pk.tw = make([]uint64, mw)
	}
	ws.pk.tw = ws.pk.tw[:mw]
}

// boundaryArena returns a zeroed arena of total ints, carved by the batch
// entry points into one boundary-E buffer per job. It aliases workspace
// memory: valid until the next batch run on this workspace.
func (ws *Workspace) boundaryArena(total int) []int {
	if cap(ws.boundArena) < total {
		ws.boundArena = make([]int, total)
	}
	a := ws.boundArena[:total]
	clear(a)
	return a
}

// boundaryBuf returns the zeroed boundary E buffer for a query of length
// n. The returned slice aliases workspace memory: it is valid until the
// next extension run on this workspace.
func (ws *Workspace) boundaryBuf(n int) []int {
	if cap(ws.boundE) < n+1 {
		ws.boundE = make([]int, n+1)
	}
	b := ws.boundE[:n+1]
	clear(b)
	return b
}

// int32SafeLimit bounds the absolute score magnitude the int32 kernel may
// produce; staying a factor of 4 under MaxInt32 keeps every intermediate
// (including the h-oe and e-ge decrements) comfortably in range.
const int32SafeLimit = math.MaxInt32 / 4

// int32Safe reports whether the extension's score range provably fits the
// int32 datapath: the largest positive score is h0 + n*Match, the most
// negative intermediate is bounded by the first-column decay over m rows.
func int32Safe(n, m, h0 int, sc Scoring) bool {
	if int64(h0)+int64(n)*int64(sc.Match) >= int32SafeLimit {
		return false
	}
	return int64(sc.GapOpen)+int64(m+2)*int64(sc.GapExtend) < int32SafeLimit
}

// wsPool recycles workspaces for the drop-in Extend/ExtendBanded wrappers.
// Long-lived goroutines (pipeline workers, FPGA threads) should hold their
// own Workspace instead and call the WS entry points directly.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// GetWorkspace takes a workspace from the shared pool.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace returns a workspace to the shared pool. The caller must not
// retain any slice obtained from it (notably a BandBoundary.E).
func PutWorkspace(ws *Workspace) { wsPool.Put(ws) }

// ExtendWS runs the full-width extension kernel with caller-owned scratch;
// it performs no allocations once ws has warmed to the workload's maximum
// query length.
func ExtendWS(ws *Workspace, query, target []byte, h0 int, sc Scoring) ExtendResult {
	r, _ := extendCoreWS(ws, query, target, h0, sc, -1, Options{}, nil)
	return r
}

// ExtendWSOpts is ExtendWS with explicit Options.
func ExtendWSOpts(ws *Workspace, query, target []byte, h0 int, sc Scoring, opts Options) ExtendResult {
	r, _ := extendCoreWS(ws, query, target, h0, sc, -1, opts, nil)
	return r
}

// ExtendBandedWS runs the banded kernel with caller-owned scratch. The
// returned BandBoundary.E aliases workspace memory and is valid only until
// the next extension run on ws; copy it to retain it.
func ExtendBandedWS(ws *Workspace, query, target []byte, h0 int, sc Scoring, w int) (ExtendResult, BandBoundary) {
	return extendCoreWS(ws, query, target, h0, sc, w, Options{}, ws.boundaryBuf(len(query)))
}

// ExtendBandedWSOpts is ExtendBandedWS with explicit Options.
func ExtendBandedWSOpts(ws *Workspace, query, target []byte, h0 int, sc Scoring, w int, opts Options) (ExtendResult, BandBoundary) {
	return extendCoreWS(ws, query, target, h0, sc, w, opts, ws.boundaryBuf(len(query)))
}

// extendCoreWS is the workspace-backed row-streaming kernel: bit-identical
// to extendCoreRef (the tests assert it), with int32 rows and the query
// profile replacing the per-cell substitution call. Problems whose score
// range could overflow the int32 datapath are delegated to the reference
// kernel. bd, when non-nil, is a pre-zeroed len(query)+1 buffer that
// receives the band's lower-boundary E-scores (the batch path passes
// arena slices here; the WS wrappers pass ws.boundaryBuf).
func extendCoreWS(ws *Workspace, query, target []byte, h0 int, sc Scoring, w int, opts Options, bd []int) (ExtendResult, BandBoundary) {
	n, m := len(query), len(target)
	res := ExtendResult{}
	boundary := BandBoundary{E: bd}
	captureBoundary := bd != nil
	if h0 <= 0 || n == 0 {
		// No seed score to extend from, or nothing to align (see
		// extendCoreRef).
		return res, boundary
	}
	if !int32Safe(n, m, h0, sc) {
		r, bd := extendCoreRef(query, target, h0, sc, w, opts, captureBoundary)
		if captureBoundary {
			copy(boundary.E, bd.E)
			return r, boundary
		}
		return r, bd
	}
	banded := w >= 0

	ws.prepare(query, int32(sc.Match), int32(sc.Mismatch))
	h, e := ws.h, ws.e
	hh0 := int32(h0)
	gapO, gapE := int32(sc.GapOpen), int32(sc.GapExtend)
	oe := gapO + gapE

	// h[j] = H(i-1, j); e[j] = E(i, j) for the row about to be computed.
	h[0] = hh0
	for j := 1; j <= n; j++ {
		if banded && j > w {
			// Initialization cells above the band are dead for the banded
			// machine; the SeedEx threshold check (score > S1) accounts
			// for every path through the above-band region.
			h[j] = 0
			continue
		}
		v := hh0 - gapO - int32(j)*gapE
		if v < 0 {
			v = 0
		}
		h[j] = v
	}
	// Row 0 right edge also contributes a global score (pure insertion of
	// the whole query).
	var globalBest int32
	globalT := 0
	if h[n] > 0 {
		globalBest = h[n]
	}

	var cells int64
	var localBest int32
	localI, localJ, rows := 0, 0, 0

	for i := 1; i <= m; i++ {
		jmin, jmax := 1, n
		if banded {
			if lo := i - w; lo > jmin {
				jmin = lo
			}
			if hi := i + w; hi < jmax {
				jmax = hi
			}
			if jmin > n {
				break // band has moved past the query; nothing left in-band
			}
		}

		// First column of this row.
		col0 := hh0 - gapO - int32(i)*gapE
		if col0 < 0 {
			col0 = 0
		}

		var hPrev int32 // H(i-1, jmin-1), the diagonal input of the first cell
		if jmin == 1 {
			hPrev = h[0]
			if !banded || i <= w {
				h[0] = col0 // store H(i, 0)
			} else {
				h[0] = 0 // column 0 is below the band: dead
				col0 = 0
			}
		} else {
			hPrev = h[jmin-1]
		}
		if banded && jmax < n {
			// The rightmost in-band column is new this row; its E input
			// comes from out-of-band cells above and is dead.
			e[jmax] = 0
		}

		// Profile row for this row's target base; ambiguous codes share
		// the all-mismatch catch-all row.
		c := target[i-1]
		if c > 4 {
			c = 4
		}
		prof := ws.prof[int(c)*n:]

		var f int32
		rowLive := col0 > 0
		beg, end := jmin, jmax
		if !opts.DisableEarlyTerm {
			// Exact leading dead-region skip: cells whose diagonal, E and
			// (implied) F inputs are all dead stay dead.
			for beg <= jmax && hPrev == 0 && h[beg] == 0 && e[beg] == 0 {
				hPrev = h[beg]
				beg++
			}
			if beg > jmin {
				hPrev = h[beg-1]
			}
		}
		lastLive := beg - 1
		j := beg
		for ; j <= end; j++ {
			hDiag := hPrev
			hPrev = h[j]
			var mv int32
			if hDiag > 0 {
				mv = hDiag + prof[j-1]
			}
			ev := e[j]
			hv := mv
			if ev > hv {
				hv = ev
			}
			if f > hv {
				hv = f
			}
			if hv < 0 {
				hv = 0
			}
			h[j] = hv

			if hv > localBest {
				localBest, localI, localJ = hv, i, j
			}

			t1 := hv - oe
			ne := ev - gapE
			if t1 > ne {
				ne = t1
			}
			if ne < 0 {
				ne = 0
			}
			e[j] = ne
			nf := f - gapE
			if t1 > nf {
				nf = t1
			}
			if nf < 0 {
				nf = 0
			}
			f = nf

			if hv > 0 || ne > 0 || nf > 0 {
				rowLive = true
				lastLive = j
			}
			if banded && i-j == w {
				// E(i+1, j) leaves the band through its lower boundary.
				if captureBoundary {
					boundary.E[j] = int(ne)
				}
				e[j] = 0 // the below-band cell is not computed in-band
			}
			if !opts.DisableEarlyTerm && j-lastLive > 2 && hPrev == 0 && e[j] == 0 {
				// Exact trailing dead-region stop: no H, E or F liveness
				// remains in this row and the cells above are dead, so the
				// rest of the row (and its E outputs) stay dead. Clear any
				// stale state so the next row sees dead inputs.
				for k := j + 1; k <= end; k++ {
					if h[k] == 0 && e[k] == 0 {
						continue
					}
					// A live cell above would resurrect the row; give up
					// trimming and keep computing.
					goto keepGoing
				}
				for k := j + 1; k <= end; k++ {
					h[k] = 0
				}
				j++ // cells accounting below counts processed cells as j-beg
				break
			}
		keepGoing:
			if j == n && hv > globalBest {
				globalBest, globalT = hv, i
			}
		}
		cells += int64(j - beg)
		rows = i
		if !opts.DisableEarlyTerm {
			nextCol0 := hh0 - gapO - int32(i+1)*gapE
			if !rowLive && nextCol0 <= 0 {
				break
			}
			if banded && i-w > 0 && !rowLive {
				// Column 0 is outside the band from row w+1 on, so a fully
				// dead in-band row cannot be revived.
				break
			}
		}
	}
	res.Local, res.LocalT, res.LocalQ = int(localBest), localI, localJ
	res.Global, res.GlobalT = int(globalBest), globalT
	res.Rows, res.Cells = rows, cells
	return res, boundary
}

package align

import (
	"math/rand"
	"testing"
)

// BenchmarkSWAR8Words contrasts the two int8 kernels head-to-head on an
// identical 16-job short-read group: the two-word kernel in one call vs
// the single-word kernel in two calls. The delta is pure ILP (same op
// count, same per-lane work), and is what justifies the 16-lane tier.
func BenchmarkSWAR8Words(b *testing.B) {
	rng := rand.New(rand.NewSource(900))
	jobs := batchJobs(rng, 16, "tier8")
	sc := DefaultScoring()
	const w = 21
	ws := NewWorkspace()
	res := make([]ExtendResult, len(jobs))
	lanes := make([]swarLane, len(jobs))
	for i := range jobs {
		lanes[i] = swarLane{q: jobs[i].Q, t: jobs[i].T, h0: jobs[i].H0, res: &res[i]}
	}
	var cells int64
	report := func(b *testing.B) {
		cells = 0
		for i := range res {
			cells += res[i].Cells
		}
		b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
	}

	b.Run("two-word-x1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			extendSWAR8x2(ws, lanes, sc, w)
		}
		report(b)
	})
	b.Run("one-word-x2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			extendSWAR8(ws, lanes[:8], sc, w)
			extendSWAR8(ws, lanes[8:], sc, w)
		}
		report(b)
	})
}

package align

import "sync/atomic"

// Kernel-level batch telemetry: process-wide atomic counters the batch
// kernels bump once per chunk (a handful of uncontended adds per batch,
// nothing per cell or per lane), surfaced through the server's metrics
// registry as tier mix, demotion counts, lane occupancy and cells/s.

// kernelCounters is the live counter set behind KernelSnapshot.
type kernelCounters struct {
	batches    atomic.Int64
	jobs       [numTiers]atomic.Int64 // assigned tier: swar8x2, swar8, swar16, scalar
	degenerate atomic.Int64
	demoted    [numTiers]atomic.Int64 // demotions per assigned tier
	solo       atomic.Int64
	groups     [numTiers]atomic.Int64 // executed groups per kernel tier
	lanes      [numTiers]atomic.Int64 // lanes filled per kernel tier
	cells      atomic.Int64
}

var ktel kernelCounters

// KernelTelemetry is a plain snapshot of the batch kernels' counters.
type KernelTelemetry struct {
	// Batches counts batch-kernel invocations (chunks).
	Batches int64 `json:"batches"`
	// Jobs counts jobs per assigned tier (index TierSWAR8x2/8/16/Scalar).
	Jobs [numTiers]int64 `json:"jobs_per_tier"`
	// Degenerate counts jobs that never entered the tier ladder (empty
	// query or non-positive h0).
	Degenerate int64 `json:"degenerate"`
	// Demoted counts jobs assigned a SWAR tier but run scalar because
	// their DP area diverged from their lane group's envelope, indexed by
	// the tier they were assigned (the scalar slot stays zero).
	Demoted [numTiers]int64 `json:"demoted_per_tier"`
	// Solo counts jobs run scalar because their group filled one lane.
	Solo int64 `json:"solo"`
	// Groups counts packed lane groups per executed kernel tier; Lanes the
	// lanes filled across them. A group assigned the 16-lane tier but run
	// through the 8-lane kernel (too few survivors to pay for two words)
	// counts under the kernel that actually ran.
	Groups [numTiers]int64 `json:"groups_per_tier"`
	Lanes  [numTiers]int64 `json:"lanes_per_tier"`
	// Cells counts DP cells swept by the batch kernels.
	Cells int64 `json:"cells"`
}

// TotalGroups sums executed packed groups across tiers.
func (k KernelTelemetry) TotalGroups() int64 {
	var g int64
	for _, v := range k.Groups {
		g += v
	}
	return g
}

// TotalLanes sums filled lanes across tiers.
func (k KernelTelemetry) TotalLanes() int64 {
	var l int64
	for _, v := range k.Lanes {
		l += v
	}
	return l
}

// TotalDemoted sums envelope demotions across assigned tiers.
func (k KernelTelemetry) TotalDemoted() int64 {
	var d int64
	for _, v := range k.Demoted {
		d += v
	}
	return d
}

// LaneOccupancy returns the mean lanes filled per packed group.
func (k KernelTelemetry) LaneOccupancy() float64 {
	g := k.TotalGroups()
	if g == 0 {
		return 0
	}
	return float64(k.TotalLanes()) / float64(g)
}

// LaneUtilization returns filled lanes over lane capacity across every
// executed packed group (1.0 = every lane of every group carried a job).
func (k KernelTelemetry) LaneUtilization() float64 {
	var lanes, capacity int64
	for t := 0; t < numTiers; t++ {
		lanes += k.Lanes[t]
		capacity += k.Groups[t] * int64(LaneWidth(t))
	}
	if capacity == 0 {
		return 0
	}
	return float64(lanes) / float64(capacity)
}

// TierLaneUtilization is LaneUtilization restricted to one kernel tier.
func (k KernelTelemetry) TierLaneUtilization(tier int) float64 {
	if tier < 0 || tier >= numTiers || k.Groups[tier] == 0 {
		return 0
	}
	return float64(k.Lanes[tier]) / float64(k.Groups[tier]*int64(LaneWidth(tier)))
}

// KernelSnapshot reads the live batch-kernel counters.
func KernelSnapshot() KernelTelemetry {
	var out KernelTelemetry
	out.Batches = ktel.batches.Load()
	for i := range out.Jobs {
		out.Jobs[i] = ktel.jobs[i].Load()
		out.Demoted[i] = ktel.demoted[i].Load()
		out.Groups[i] = ktel.groups[i].Load()
		out.Lanes[i] = ktel.lanes[i].Load()
	}
	out.Degenerate = ktel.degenerate.Load()
	out.Solo = ktel.solo.Load()
	out.Cells = ktel.cells.Load()
	return out
}

// Tier indices, exported for telemetry consumers; they equal the
// internal sort-key tiers.
const (
	TierSWAR8x2 = tierSWAR8x2
	TierSWAR8   = tierSWAR8
	TierSWAR16  = tierSWAR16
	TierScalar  = tierScalar

	// NumTiers is the tier-ladder length (for telemetry arrays).
	NumTiers = numTiers
)

// TierNames, indexed by tier.
var TierNames = [numTiers]string{"swar8x2", "swar8", "swar16", "scalar"}

// LaneWidth reports the lane count of a tier's packed kernel (1 for the
// scalar tier).
func LaneWidth(tier int) int {
	switch tier {
	case tierSWAR8x2:
		return 16
	case tierSWAR8:
		return 8
	case tierSWAR16:
		return 4
	default:
		return 1
	}
}

// TierOf reports the batch tier the ladder assigns a job of query length
// n, target length m and seed score h0 under sc — the lane width the
// packed kernels select before any divergence demotion.
func TierOf(n, m, h0 int, sc Scoring) int {
	if h0 <= 0 || n == 0 {
		return tierScalar
	}
	if n > swarMaxDim || m > swarMaxDim {
		return tierScalar
	}
	return jobTier(n, m, h0, sc, swarScoringTier(sc))
}

// Shape-bin scheduling: callers that form batches over time (the server
// micro-batcher, the FPGA driver's batch producer) key jobs by ShapeBin
// so each flushed batch packs near-homogeneous lanes — length-binned
// workload balance *across* batches, per SaLoBa, rather than hoping one
// batch's internal sort finds enough same-shape neighbours.

// shapeLenClasses are the upper bounds of the scheduling length classes
// (max of query and target length); the last class is open-ended.
var shapeLenClasses = [...]int{96, 160, 256}

// NumShapeBins is the number of distinct values ShapeBin returns.
const NumShapeBins = numTiers * (len(shapeLenClasses) + 1)

// ShapeBin buckets one extension problem for cross-batch scheduling:
// the tier the ladder would assign (the lane width it can share) crossed
// with a coarse length class (the sweep envelope it would impose on its
// lane group). Jobs sharing a bin pack into dense lane groups with
// little padding; jobs from different bins would demote each other.
func ShapeBin(n, m, h0 int, sc Scoring) int {
	tier := TierOf(n, m, h0, sc)
	d := n
	if m > d {
		d = m
	}
	class := len(shapeLenClasses)
	for i, ub := range shapeLenClasses {
		if d <= ub {
			class = i
			break
		}
	}
	return tier*(len(shapeLenClasses)+1) + class
}

// chunkTally accumulates one chunk's counters locally so the hot loop
// performs plain adds and the chunk flushes as a few atomic adds.
type chunkTally struct {
	jobs       [numTiers]int64
	degenerate int64
	demoted    [numTiers]int64
	solo       int64
	groups     [numTiers]int64
	lanes      [numTiers]int64
	cells      int64
}

// flushWithCells sums the chunk's swept cells from the filled results and
// publishes the tally (deferred at the top of extendBatchChunk, so it
// runs after every result landed).
func (c *chunkTally) flushWithCells(results []ExtendResult) {
	for i := range results {
		c.cells += results[i].Cells
	}
	c.flush()
}

func (c *chunkTally) flush() {
	ktel.batches.Add(1)
	for i := range c.jobs {
		if c.jobs[i] != 0 {
			ktel.jobs[i].Add(c.jobs[i])
		}
		if c.demoted[i] != 0 {
			ktel.demoted[i].Add(c.demoted[i])
		}
		if c.groups[i] != 0 {
			ktel.groups[i].Add(c.groups[i])
		}
		if c.lanes[i] != 0 {
			ktel.lanes[i].Add(c.lanes[i])
		}
	}
	if c.degenerate != 0 {
		ktel.degenerate.Add(c.degenerate)
	}
	if c.solo != 0 {
		ktel.solo.Add(c.solo)
	}
	if c.cells != 0 {
		ktel.cells.Add(c.cells)
	}
}

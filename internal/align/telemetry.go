package align

import "sync/atomic"

// Kernel-level batch telemetry: process-wide atomic counters the batch
// kernels bump once per chunk (a handful of uncontended adds per batch,
// nothing per cell or per lane), surfaced through the server's metrics
// registry as tier mix, demotion counts, lane occupancy and cells/s.

// kernelCounters is the live counter set behind KernelSnapshot.
type kernelCounters struct {
	batches    atomic.Int64
	jobs       [3]atomic.Int64 // assigned tier: swar8, swar16, scalar
	degenerate atomic.Int64
	demoted    atomic.Int64
	solo       atomic.Int64
	groups     atomic.Int64
	lanes      atomic.Int64
	cells      atomic.Int64
}

var ktel kernelCounters

// KernelTelemetry is a plain snapshot of the batch kernels' counters.
type KernelTelemetry struct {
	// Batches counts batch-kernel invocations (chunks).
	Batches int64 `json:"batches"`
	// Jobs counts jobs per assigned tier (index TierSWAR8/16/Scalar).
	Jobs [3]int64 `json:"jobs_per_tier"`
	// Degenerate counts jobs that never entered the tier ladder (empty
	// query or non-positive h0).
	Degenerate int64 `json:"degenerate"`
	// Demoted counts jobs assigned a SWAR tier but run scalar because
	// their DP area diverged from their lane group's envelope.
	Demoted int64 `json:"demoted"`
	// Solo counts jobs run scalar because their group filled one lane.
	Solo int64 `json:"solo"`
	// Groups counts packed lane groups executed; Lanes the lanes filled
	// across them, so Lanes/Groups is the realized lane occupancy.
	Groups int64 `json:"groups"`
	Lanes  int64 `json:"lanes"`
	// Cells counts DP cells swept by the batch kernels.
	Cells int64 `json:"cells"`
}

// LaneOccupancy returns the mean lanes filled per packed group.
func (k KernelTelemetry) LaneOccupancy() float64 {
	if k.Groups == 0 {
		return 0
	}
	return float64(k.Lanes) / float64(k.Groups)
}

// KernelSnapshot reads the live batch-kernel counters.
func KernelSnapshot() KernelTelemetry {
	var out KernelTelemetry
	out.Batches = ktel.batches.Load()
	for i := range out.Jobs {
		out.Jobs[i] = ktel.jobs[i].Load()
	}
	out.Degenerate = ktel.degenerate.Load()
	out.Demoted = ktel.demoted.Load()
	out.Solo = ktel.solo.Load()
	out.Groups = ktel.groups.Load()
	out.Lanes = ktel.lanes.Load()
	out.Cells = ktel.cells.Load()
	return out
}

// Tier indices, exported for telemetry consumers; they equal the
// internal sort-key tiers.
const (
	TierSWAR8  = tierSWAR8
	TierSWAR16 = tierSWAR16
	TierScalar = tierScalar
)

// TierNames, indexed by tier.
var TierNames = [3]string{"swar8", "swar16", "scalar"}

// TierOf reports the batch tier the ladder assigns a job of query length
// n with seed score h0 under sc — the lane width the packed kernels
// select before any divergence demotion.
func TierOf(n, h0 int, sc Scoring) int {
	if h0 <= 0 || n == 0 {
		return tierScalar
	}
	if n > swarMaxDim {
		return tierScalar
	}
	return jobTier(n, h0, sc, swarScoringTier(sc))
}

// chunkTally accumulates one chunk's counters locally so the hot loop
// performs plain adds and the chunk flushes as a few atomic adds.
type chunkTally struct {
	jobs       [3]int64
	degenerate int64
	demoted    int64
	solo       int64
	groups     int64
	lanes      int64
	cells      int64
}

// flushWithCells sums the chunk's swept cells from the filled results and
// publishes the tally (deferred at the top of extendBatchChunk, so it
// runs after every result landed).
func (c *chunkTally) flushWithCells(results []ExtendResult) {
	for i := range results {
		c.cells += results[i].Cells
	}
	c.flush()
}

func (c *chunkTally) flush() {
	ktel.batches.Add(1)
	for i, n := range c.jobs {
		if n != 0 {
			ktel.jobs[i].Add(n)
		}
	}
	if c.degenerate != 0 {
		ktel.degenerate.Add(c.degenerate)
	}
	if c.demoted != 0 {
		ktel.demoted.Add(c.demoted)
	}
	if c.solo != 0 {
		ktel.solo.Add(c.solo)
	}
	if c.groups != 0 {
		ktel.groups.Add(c.groups)
	}
	if c.lanes != 0 {
		ktel.lanes.Add(c.lanes)
	}
	if c.cells != 0 {
		ktel.cells.Add(c.cells)
	}
}

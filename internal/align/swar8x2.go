package align

import "math/bits"

// 16-lane two-word SWAR banded extension kernel: sixteen independent
// int8-tier extension problems in two uint64 lane words per DP column
// (the software analogue of a uint128 register). Column j's word w lives
// at cols[2j+w]; target row i's word w at tw[2i+w]. Lanes 0-7 ride word
// 0, lanes 8-15 word 1.
//
// The point is instruction-level parallelism, not wider arithmetic: the
// single-word kernel's inner loop is one serial dependency chain
// (hDiag -> match -> H -> E/F), so on a superscalar core most issue
// slots idle. Two independent chains interleave and roughly double the
// retired ops per cycle, at the cost of doubling the per-column working
// set — which is why swar.go gates this tier to short-read shapes
// (swar8x2MaxQ x swar8x2MaxT) whose interleaved records stay in L1.
//
// Semantics, masks, sentinels and the striped qm packing are exactly
// those of extendSWAR8 (see swar8.go), applied per word; the shared
// early exit requires every lane of both words to be dead.

// Shape gate for the 16-lane tier: beyond these extents the doubled
// column working set starts missing L1 and the single-word kernel's
// streaming behaviour wins, so the ladder assigns tierSWAR8 instead.
const (
	swar8x2MaxQ = 192
	swar8x2MaxT = 512
)

// extendSWAR8x2 sweeps up to 16 lanes in lockstep. Preconditions as in
// extendSWAR8 (every lane passes the swarCap8 tier test); the batch
// orchestration only dispatches here with 9..16 lanes, but any 1..16
// works.
func extendSWAR8x2(ws *Workspace, lanes []swarLane, sc Scoring, w int) {
	nl := len(lanes)
	var nk, mk [16]int
	nMax, mMax := 0, 0
	for k := 0; k < nl; k++ {
		nk[k] = len(lanes[k].q)
		mk[k] = len(lanes[k].t)
		if nk[k] > nMax {
			nMax = nk[k]
		}
		if mk[k] > mMax {
			mMax = mk[k]
		}
	}
	banded := w >= 0
	effW := w
	if !banded {
		effW = nMax + mMax + 1
	}

	ws.preparePacked(nMax, mMax, 2)
	cols, tw := ws.pk.cols, ws.pk.tw

	nl0 := nl
	if nl0 > 8 {
		nl0 = 8
	}
	for j := 1; j <= nMax; j++ {
		var q0, q1 uint64
		for k := 0; k < nl0; k++ {
			q0 |= swarQM8(lanes[k].q, nk[k], j) << (8 * k)
		}
		for k := 8; k < nl; k++ {
			q1 |= swarQM8(lanes[k].q, nk[k], j) << (8 * (k - 8))
		}
		cols[2*j] = swarCol{qm: q0}
		cols[2*j+1] = swarCol{qm: q1}
	}
	for i := 1; i <= mMax; i++ {
		var t0, t1 uint64
		for k := 0; k < nl; k++ {
			c := uint64(6)
			if i <= mk[k] {
				if b := lanes[k].t[i-1]; b < 4 {
					c = uint64(b)
				}
			}
			if k < 8 {
				t0 |= c << (8 * k)
			} else {
				t1 |= c << (8 * (k - 8))
			}
		}
		tw[2*i], tw[2*i+1] = t0, t1
	}

	maW := splat8(sc.Match)
	miW := splat8(sc.Mismatch)
	geW := splat8(sc.GapExtend)
	oeW := splat8(sc.GapOpen + sc.GapExtend)

	var h0W0, h0W1 uint64
	for k := 0; k < nl; k++ {
		if k < 8 {
			h0W0 |= uint64(lanes[k].h0) << (8 * k)
		} else {
			h0W1 |= uint64(lanes[k].h0) << (8 * (k - 8))
		}
	}
	cols[0] = swarCol{h: h0W0}
	cols[1] = swarCol{h: h0W1}
	lim := nMax
	if banded && w < lim {
		lim = w
	}
	v0 := satsub8(h0W0, oeW)
	v1 := satsub8(h0W1, oeW)
	for j := 1; j <= lim; j++ {
		cols[2*j].h = v0
		cols[2*j+1].h = v1
		v0 = satsub8(v0, geW)
		v1 = satsub8(v1, geW)
	}
	for j := lim + 1; j <= nMax; j++ {
		cols[2*j].h = 0
		cols[2*j+1].h = 0
	}

	var gBest, gT [16]int
	for k := 0; k < nl; k++ {
		h := cols[2*nk[k]+k/8].h
		if g := int(h>>(8*(k&7))) & 0xff; g > 0 {
			gBest[k] = g
		}
	}

	var capHi0, capHi1 uint64
	for k := 0; k < nl; k++ {
		if lanes[k].bd == nil {
			continue
		}
		if k < 8 {
			capHi0 |= 0x80 << (8 * k)
		} else {
			capHi1 |= 0x80 << (8 * (k - 8))
		}
	}

	rows := mMax
	if r := nMax + effW; r < rows {
		rows = r
	}

	var bestW0, bestW1 uint64
	var bi, bj [16]int
	col0W0 := satsub8(h0W0, splat8(sc.GapOpen))
	col0W1 := satsub8(h0W1, splat8(sc.GapOpen))

	for i := 1; i <= rows; i++ {
		jmin, jmax := 1, nMax
		if banded {
			if lo := i - w; lo > jmin {
				jmin = lo
			}
			if hi := i + w; hi < jmax {
				jmax = hi
			}
			if jmin > nMax {
				break
			}
		}

		col0W0 = satsub8(col0W0, geW)
		col0W1 = satsub8(col0W1, geW)
		var hDiag0, hDiag1 uint64
		if jmin == 1 {
			hDiag0, hDiag1 = cols[0].h, cols[1].h
			if !banded || i <= w {
				cols[0].h, cols[1].h = col0W0, col0W1
			} else {
				cols[0].h, cols[1].h = 0, 0
			}
		} else {
			hDiag0, hDiag1 = cols[2*(jmin-1)].h, cols[2*(jmin-1)+1].h
		}
		if banded && jmax < nMax {
			cols[2*jmax].e, cols[2*jmax+1].e = 0, 0
		}

		var rowHi0, rowHi1 uint64
		{
			hi := uint64(0x80)
			for k := 0; k < 8; k++ {
				if i <= mk[k] {
					rowHi0 |= hi
				}
				if i <= mk[k+8] {
					rowHi1 |= hi
				}
				hi <<= 8
			}
		}
		rowFull0 := (rowHi0 >> 7) * 0xff
		rowFull1 := (rowHi1 >> 7) * 0xff
		tw0, tw1 := tw[2*i], tw[2*i+1]
		bj0 := -1
		if banded && i > w {
			bj0 = i - w
		}
		var f0, f1, live uint64
		for j := jmin; j <= jmax; j++ {
			c0 := &cols[2*j]
			c1 := &cols[2*j+1]
			hUp0, hUp1 := c0.h, c1.h
			ev0, ev1 := c0.e, c1.e
			qm0, qm1 := c0.qm, c1.qm
			x0 := (qm0 ^ tw0) & swarCode8
			x1 := (qm1 ^ tw1) & swarCode8
			nzb0 := (x0 + swarM7) | x0
			nzb1 := (x1 + swarM7) | x1
			eqm0 := ^nzb0 & swarH8
			eqm1 := ^nzb1 & swarH8
			eqm0 -= eqm0 >> 7
			eqm1 -= eqm1 >> 7
			u0 := (hDiag0 + swarM7) & swarH8
			u1 := (hDiag1 + swarM7) & swarH8
			nzm0 := u0 - u0>>7
			nzm1 := u1 - u1>>7
			mv0 := ((hDiag0 + maW) & eqm0 & nzm0) | (satsub8(hDiag0, miW) &^ eqm0)
			mv1 := ((hDiag1 + maW) & eqm1 & nzm1) | (satsub8(hDiag1, miW) &^ eqm1)
			hv0 := max8(max8(mv0, ev0), f0)
			hv1 := max8(max8(mv1, ev1), f1)
			c0.h = hv0
			c1.h = hv1

			colHi0 := qm0 & swarH8
			colHi1 := qm1 & swarH8
			if gt := ((hv0 | swarH8) - bestW0 - swarL8) & colHi0 & rowHi0; gt != 0 {
				fm := (gt >> 7) * 0xff
				bestW0 = (hv0 & fm) | (bestW0 &^ fm)
				for g := gt; g != 0; g &= g - 1 {
					k := bits.TrailingZeros64(g) >> 3
					bi[k], bj[k] = i, j
				}
			}
			if gt := ((hv1 | swarH8) - bestW1 - swarL8) & colHi1 & rowHi1; gt != 0 {
				fm := (gt >> 7) * 0xff
				bestW1 = (hv1 & fm) | (bestW1 &^ fm)
				for g := gt; g != 0; g &= g - 1 {
					k := 8 + bits.TrailingZeros64(g)>>3
					bi[k], bj[k] = i, j
				}
			}

			t10 := satsub8(hv0, oeW)
			t11 := satsub8(hv1, oeW)
			ne0 := max8(t10, satsub8(ev0, geW))
			ne1 := max8(t11, satsub8(ev1, geW))
			f0 = max8(t10, satsub8(f0, geW))
			f1 = max8(t11, satsub8(f1, geW))
			live |= ((hv0 | ne0 | f0) & rowFull0) | ((hv1 | ne1 | f1) & rowFull1)

			if j == bj0 {
				if cb := colHi0 & rowHi0 & capHi0; cb != 0 {
					for g := cb; g != 0; g &= g - 1 {
						k := bits.TrailingZeros64(g) >> 3
						lanes[k].bd[j] = int(ne0>>(8*k)) & 0xff
					}
				}
				if cb := colHi1 & rowHi1 & capHi1; cb != 0 {
					for g := cb; g != 0; g &= g - 1 {
						k := bits.TrailingZeros64(g) >> 3
						lanes[8+k].bd[j] = int(ne1>>(8*k)) & 0xff
					}
				}
			} else {
				c0.e = ne0
				c1.e = ne1
			}

			if eh := (qm0 << 1) & swarH8 & rowHi0; eh != 0 {
				for g := eh; g != 0; g &= g - 1 {
					k := bits.TrailingZeros64(g) >> 3
					if v := int(hv0>>(8*k)) & 0xff; v > gBest[k] {
						gBest[k], gT[k] = v, i
					}
				}
			}
			if eh := (qm1 << 1) & swarH8 & rowHi1; eh != 0 {
				for g := eh; g != 0; g &= g - 1 {
					k := bits.TrailingZeros64(g) >> 3
					if v := int(hv1>>(8*k)) & 0xff; v > gBest[8+k] {
						gBest[8+k], gT[8+k] = v, i
					}
				}
			}
			hDiag0, hDiag1 = hUp0, hUp1
		}

		rowLiveW := live
		if !banded || i <= w {
			rowLiveW |= (col0W0 & rowFull0) | (col0W1 & rowFull1)
		}
		if rowLiveW == 0 {
			if banded && i > w {
				break
			}
			if (satsub8(col0W0, geW)&rowFull0)|(satsub8(col0W1, geW)&rowFull1) == 0 {
				break
			}
		}
	}

	for k := 0; k < nl; k++ {
		r := lanes[k].res
		rk := mk[k]
		if lim := nk[k] + effW; lim < rk {
			rk = lim
		}
		var cells int64
		for i := 1; i <= rk; i++ {
			lo, hi := 1, nk[k]
			if banded {
				if l := i - w; l > lo {
					lo = l
				}
				if h := i + w; h < hi {
					hi = h
				}
			}
			if lo > hi {
				break
			}
			cells += int64(hi - lo + 1)
		}
		bestW := bestW0
		if k >= 8 {
			bestW = bestW1
		}
		r.Local = int(bestW>>(8*(k&7))) & 0xff
		r.LocalT, r.LocalQ = bi[k], bj[k]
		r.Global, r.GlobalT = gBest[k], gT[k]
		r.Rows = rk
		r.Cells = cells
	}
}

package align

// Matrices holds the fully materialized DP state of a naive extension; it
// is the test oracle for the streaming kernels and the input to traceback.
type Matrices struct {
	Qlen, Tlen int
	H, E, F    [][]int // (Tlen+1) x (Qlen+1); row 0 / col 0 are the init borders
}

// NaiveExtend computes the extension with a straightforward full-matrix
// DP using exactly the semantics documented in the package comment. It is
// intentionally simple (no early termination, no banding tricks) so the
// optimized kernels can be validated against it.
func NaiveExtend(query, target []byte, h0 int, sc Scoring) (ExtendResult, *Matrices) {
	return naiveExtend(query, target, h0, sc, -1)
}

// NaiveExtendBanded is the full-matrix oracle for the banded kernel:
// cells with |i-j| > w are forced dead.
func NaiveExtendBanded(query, target []byte, h0 int, sc Scoring, w int) (ExtendResult, *Matrices) {
	return naiveExtend(query, target, h0, sc, w)
}

func naiveExtend(query, target []byte, h0 int, sc Scoring, w int) (ExtendResult, *Matrices) {
	n, m := len(query), len(target)
	mx := &Matrices{Qlen: n, Tlen: m}
	alloc := func() [][]int {
		a := make([][]int, m+1)
		for i := range a {
			a[i] = make([]int, n+1)
		}
		return a
	}
	mx.H, mx.E, mx.F = alloc(), alloc(), alloc()
	res := ExtendResult{}
	if h0 <= 0 || n == 0 {
		return res, mx
	}
	banded := w >= 0
	inBand := func(i, j int) bool {
		if !banded {
			return true
		}
		d := i - j
		return d <= w && d >= -w
	}

	mx.H[0][0] = h0
	for j := 1; j <= n; j++ {
		if !inBand(0, j) {
			continue
		}
		v := h0 - sc.GapOpen - j*sc.GapExtend
		if v > 0 {
			mx.H[0][j] = v
		}
	}
	if mx.H[0][n] > 0 {
		res.Global, res.GlobalT = mx.H[0][n], 0
	}
	for i := 1; i <= m; i++ {
		if inBand(i, 0) {
			v := h0 - sc.GapOpen - i*sc.GapExtend
			if v > 0 {
				mx.H[i][0] = v
			}
		}
		for j := 1; j <= n; j++ {
			if !inBand(i, j) {
				continue
			}
			// E channel: vertical gap. E(1,·) = 0 by initialization.
			if i >= 2 && inBand(i-1, j) {
				ev := mx.E[i-1][j]
				if t := mx.H[i-1][j] - sc.GapOpen; t > ev {
					ev = t
				}
				ev -= sc.GapExtend
				if ev > 0 {
					mx.E[i][j] = ev
				}
			}
			// F channel: horizontal gap. F(·,1) = 0 by initialization.
			if j >= 2 && inBand(i, j-1) {
				fv := mx.F[i][j-1]
				if t := mx.H[i][j-1] - sc.GapOpen; t > fv {
					fv = t
				}
				fv -= sc.GapExtend
				if fv > 0 {
					mx.F[i][j] = fv
				}
			}
			var mv int
			if inBand(i-1, j-1) && mx.H[i-1][j-1] > 0 {
				mv = mx.H[i-1][j-1] + sc.Sub(target[i-1], query[j-1])
			}
			hv := mv
			if mx.E[i][j] > hv {
				hv = mx.E[i][j]
			}
			if mx.F[i][j] > hv {
				hv = mx.F[i][j]
			}
			if hv < 0 {
				hv = 0
			}
			mx.H[i][j] = hv
			res.Cells++
			if hv > res.Local {
				res.Local, res.LocalT, res.LocalQ = hv, i, j
			}
			if j == n && hv > res.Global {
				res.Global, res.GlobalT = hv, i
			}
		}
		res.Rows = i
	}
	return res, mx
}

package align

import (
	"math/rand"
	"testing"
)

// TestAdaptiveTracksCleanAlignments: on well-behaved inputs the adaptive
// band finds the full-width optimum with few cells.
func TestAdaptiveTracksCleanAlignments(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(1))
	agree := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		tg := randSeq(rng, 120)
		q := mutate(rng, tg[:101], 0.01, 0.005)
		if len(q) == 0 {
			continue
		}
		full := Extend(q, tg, 40, sc)
		ad := ExtendAdaptive(q, tg, 40, sc, 8)
		if ad.Local == full.Local && ad.Global == full.Global {
			agree++
		}
		if ad.Cells > full.Cells {
			t.Fatalf("trial %d: adaptive computed more cells than full (%d > %d)", trial, ad.Cells, full.Cells)
		}
	}
	if agree < trials*95/100 {
		t.Fatalf("adaptive agreed on only %d/%d clean inputs", agree, trials)
	}
}

// TestAdaptiveNeverBeatsFull: the adaptive band explores a subset of
// paths, so its score can never exceed the full kernel's.
func TestAdaptiveNeverBeatsFull(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		q, tg, h0 := extensionCase(rng)
		w := 2 + rng.Intn(12)
		full := Extend(q, tg, h0, sc)
		ad := ExtendAdaptive(q, tg, h0, sc, w)
		if ad.Local > full.Local || ad.Global > full.Global {
			t.Fatalf("trial %d: adaptive %+v beats full %+v", trial, ad, full)
		}
	}
}

// TestAdaptiveLosesOptimalityWhereSeedExDoesNot is the paper's §II
// argument made executable: construct inputs with two competing paths
// where greedy band re-centering follows the early winner and misses the
// true optimum. The SeedEx discipline (checks + rerun) can never exhibit
// this failure (TestSeedExBitEquivalence in internal/core), while the
// adaptive heuristic demonstrably does.
func TestAdaptiveLosesOptimalityWhereSeedExDoesNot(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(3))
	misses := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		// Decoy layout: a short early match pulls the band onto its
		// diagonal; the true, much better alignment starts after a long
		// deletion that only the seed score can bridge (h0 large enough
		// to keep the first column alive). The full kernel recovers it;
		// the drifted adaptive window cannot.
		q := randSeq(rng, 60)
		junk := 18 + rng.Intn(8)
		tg := append([]byte(nil), q[:10]...) // decoy: +10
		tg = append(tg, randSeq(rng, junk)...)
		tg = append(tg, q...) // true match: -(go+(10+junk)*ge) + 60
		h0 := 80
		full := Extend(q, tg, h0, sc)
		ad := ExtendAdaptive(q, tg, h0, sc, 6)
		if ad.Local > full.Local || ad.Global > full.Global {
			t.Fatalf("trial %d: adaptive beats full", trial)
		}
		if ad.Local < full.Local {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("adaptive banding never missed the optimum on decoy inputs; the baseline comparison is vacuous")
	}
	t.Logf("adaptive banding missed the optimum on %d/%d decoy inputs (SeedEx: 0 by construction)", misses, trials)
}

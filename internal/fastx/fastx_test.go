package fastx

import (
	"bytes"
	"strings"
	"testing"
)

func TestFastaRoundTrip(t *testing.T) {
	in := []FastaRecord{
		{Name: "chr1", Desc: "test sequence", Seq: bytes.Repeat([]byte("ACGT"), 50)},
		{Name: "chr2", Seq: []byte("GGGCCC")},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d records", len(out))
	}
	for i := range in {
		if out[i].Name != in[i].Name || !bytes.Equal(out[i].Seq, in[i].Seq) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
	if out[0].Desc != "test sequence" {
		t.Fatalf("desc lost: %q", out[0].Desc)
	}
}

func TestFastaErrors(t *testing.T) {
	if _, err := ReadFasta(strings.NewReader("ACGT\n")); err == nil {
		t.Fatal("sequence before header must error")
	}
	recs, err := ReadFasta(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty input: %v %v", recs, err)
	}
}

func TestFastqRoundTrip(t *testing.T) {
	in := []FastqRecord{
		{Name: "r1", Seq: []byte("ACGTACGT"), Qual: []byte("IIIIIIII")},
		{Name: "r2", Seq: []byte("GG"), Qual: []byte("#I")},
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d records", len(out))
	}
	for i := range in {
		if out[i].Name != in[i].Name || !bytes.Equal(out[i].Seq, in[i].Seq) || !bytes.Equal(out[i].Qual, in[i].Qual) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestFastqNameTruncation(t *testing.T) {
	out, err := ReadFastq(strings.NewReader("@read1 extra stuff\nACGT\n+\nIIII\n"))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Name != "read1" {
		t.Fatalf("name %q", out[0].Name)
	}
}

func TestFastqErrors(t *testing.T) {
	cases := []string{
		"ACGT\nACGT\n+\nIIII\n", // missing @
		"@r1\nACGT\nIIII\n",     // missing +
		"@r1\nACGT\n+\nII\n",    // quality length mismatch
		"@r1\nACGT\n+\n",        // truncated
		"@r1\nACGT\n",           // truncated earlier
	}
	for i, c := range cases {
		if _, err := ReadFastq(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

// Package fastx reads and writes the FASTA and FASTQ formats used by the
// aligner CLI and the read simulator.
package fastx

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// FastaRecord is one FASTA sequence.
type FastaRecord struct {
	Name string // header line without '>' (first word)
	Desc string // remainder of the header line
	Seq  []byte // ASCII bases
}

// FastqRecord is one FASTQ read.
type FastqRecord struct {
	Name string
	Seq  []byte
	Qual []byte
}

// ReadFasta parses all records from r.
func ReadFasta(r io.Reader) ([]FastaRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var recs []FastaRecord
	var cur *FastaRecord
	line := 0
	for sc.Scan() {
		line++
		t := strings.TrimSpace(sc.Text())
		if t == "" {
			continue
		}
		if strings.HasPrefix(t, ">") {
			recs = append(recs, FastaRecord{})
			cur = &recs[len(recs)-1]
			head := strings.TrimPrefix(t, ">")
			if i := strings.IndexAny(head, " \t"); i >= 0 {
				cur.Name, cur.Desc = head[:i], strings.TrimSpace(head[i+1:])
			} else {
				cur.Name = head
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fastx: line %d: sequence before header", line)
		}
		cur.Seq = append(cur.Seq, []byte(t)...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fastx: %w", err)
	}
	return recs, nil
}

// WriteFasta writes records with 70-column wrapping.
func WriteFasta(w io.Writer, recs []FastaRecord) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if rec.Desc != "" {
			fmt.Fprintf(bw, ">%s %s\n", rec.Name, rec.Desc)
		} else {
			fmt.Fprintf(bw, ">%s\n", rec.Name)
		}
		for i := 0; i < len(rec.Seq); i += 70 {
			end := i + 70
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			bw.Write(rec.Seq[i:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ReadFastq parses all reads from r.
func ReadFastq(r io.Reader) ([]FastqRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var recs []FastqRecord
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			t := strings.TrimRight(sc.Text(), "\r\n")
			return t, true
		}
		return "", false
	}
	for {
		h, ok := next()
		if !ok {
			break
		}
		if strings.TrimSpace(h) == "" {
			continue
		}
		if !strings.HasPrefix(h, "@") {
			return nil, fmt.Errorf("fastx: line %d: expected '@', got %q", line, h)
		}
		seq, ok := next()
		if !ok {
			return nil, fmt.Errorf("fastx: truncated record at line %d", line)
		}
		plus, ok := next()
		if !ok || !strings.HasPrefix(plus, "+") {
			return nil, fmt.Errorf("fastx: line %d: expected '+' separator", line)
		}
		qual, ok := next()
		if !ok {
			return nil, fmt.Errorf("fastx: truncated quality at line %d", line)
		}
		if len(qual) != len(seq) {
			return nil, fmt.Errorf("fastx: line %d: quality length %d != sequence length %d", line, len(qual), len(seq))
		}
		name := strings.TrimPrefix(h, "@")
		if i := strings.IndexAny(name, " \t"); i >= 0 {
			name = name[:i]
		}
		recs = append(recs, FastqRecord{Name: name, Seq: []byte(seq), Qual: []byte(qual)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fastx: %w", err)
	}
	return recs, nil
}

// WriteFastq writes reads to w.
func WriteFastq(w io.Writer, recs []FastqRecord) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq, rec.Qual)
	}
	return bw.Flush()
}

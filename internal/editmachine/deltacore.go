package editmachine

import (
	"fmt"

	"seedex/internal/delta"
)

// CanonicalRelaxed is the only scoring the 3-bit hardware datapath
// supports: {m:+1, x:−1, go:0, ge(ins):0, ge(del):−1}. Its step deltas
// keep every delta-max comparison within the modulo circle's δ = 3.
var CanonicalRelaxed = Relaxed{Match: 1, Mismatch: 1, Ins: 0, Del: 1}

// DeltaResult reports a delta-encoded (hardware-faithful) sweep.
type DeltaResult struct {
	// Score is the decoded region maximum read out by the augmentation
	// unit on the augmentation path.
	Score int
	// PathLen is the number of augmentation-path steps taken.
	PathLen int
	// Cells is the number of 3-bit PE evaluations.
	Cells int64
	// Empty is true when the region has no cells.
	Empty bool
}

// DeltaSweep is the delta-encoded edit machine: the corner-seeded region
// sweep of SweepCorner executed entirely in 3-bit residues (internal/delta),
// with a single full-width augmentation unit walking the region's
// hypotenuse to decode the running maximum. Zero-penalty insertions
// guarantee every cell's score propagates rightward to the hypotenuse, so
// the augmentation unit observes the true region maximum.
//
// It must produce exactly the same score as
// SweepCorner(query, target, w, init, CanonicalRelaxed).
func DeltaSweep(query, target []byte, w, init int, rx Relaxed) (DeltaResult, error) {
	if rx != CanonicalRelaxed {
		return DeltaResult{}, fmt.Errorf("editmachine: delta datapath supports only the canonical relaxed scoring, got %+v", rx)
	}
	n, m := len(query), len(target)
	if w < 0 || m <= w {
		return DeltaResult{Empty: true}, nil
	}
	row := make([]delta.Residue, n+1)
	res := DeltaResult{}
	var aug *delta.Augmenter
	for i := w + 1; i <= m; i++ {
		jmax := i - w - 1
		if jmax > n {
			jmax = n
		}
		// Column 0: corner seed on the first region row, pure deletion
		// decay afterwards (the only candidate is "up − 1").
		var v delta.Residue
		if i == w+1 {
			v = delta.Encode(init)
		} else {
			v = row[0].Add(-1)
		}
		diag := row[0]
		row[0] = v
		res.Cells++
		left := v
		for j := 1; j <= jmax; j++ {
			d := diag
			diag = row[j]
			s := -1
			if target[i-1] == query[j-1] && target[i-1] < 4 {
				s = 1
			}
			var best delta.Residue
			if i == j+w+1 {
				// Top-boundary cell: the up-neighbour is in-band and is
				// not an input of the corner-seeded machine; 2-input dmax.
				best = delta.DMax2(d.Add(s), left)
			} else {
				best = delta.DMax3(d.Add(s), row[j].Add(-1), left)
			}
			row[j] = best
			left = best
			res.Cells++
		}
		// Augmentation path: the rightmost region cell of each row.
		if aug == nil {
			aug = delta.NewAugmenter(init)
		} else {
			aug.Step(row[jmax])
			res.PathLen++
		}
	}
	res.Score = aug.Max()
	return res, nil
}

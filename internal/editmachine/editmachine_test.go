package editmachine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"seedex/internal/align"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

func TestAdmissible(t *testing.T) {
	sc := align.DefaultScoring()
	if err := RelaxedFor(sc).Admissible(sc); err != nil {
		t.Fatal(err)
	}
	if err := CanonicalRelaxed.Admissible(sc); err != nil {
		t.Fatal(err)
	}
	bad := Relaxed{Match: 1, Mismatch: 5, Ins: 0, Del: 1}
	if err := bad.Admissible(sc); err == nil {
		t.Fatal("over-penalizing mismatch must not be admissible")
	}
	bad = Relaxed{Match: 1, Mismatch: 1, Ins: 2, Del: 1}
	if err := bad.Admissible(sc); err == nil {
		t.Fatal("over-penalizing insertion must not be admissible")
	}
}

func TestEmptyRegion(t *testing.T) {
	q := randSeq(rand.New(rand.NewSource(1)), 20)
	tg := randSeq(rand.New(rand.NewSource(2)), 15)
	// Band wider than the target: no below-band cells.
	r := SweepCorner(q, tg, 20, 100, CanonicalRelaxed)
	if !r.Empty {
		t.Fatalf("expected empty region, got %+v", r)
	}
	d, err := DeltaSweep(q, tg, 20, 100, CanonicalRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty {
		t.Fatalf("expected empty delta region, got %+v", d)
	}
}

func TestDeltaSweepMatchesPlainCorner(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		qlen := 1 + r.Intn(80)
		tlen := 1 + r.Intn(120)
		w := r.Intn(20)
		q, tg := randSeq(r, qlen), randSeq(r, tlen)
		init := r.Intn(200) - 20
		plain := SweepCorner(q, tg, w, init, CanonicalRelaxed)
		dl, err := DeltaSweep(q, tg, w, init, CanonicalRelaxed)
		if err != nil {
			t.Log(err)
			return false
		}
		if plain.Empty != dl.Empty {
			t.Logf("empty mismatch: %v vs %v", plain.Empty, dl.Empty)
			return false
		}
		if plain.Empty {
			return true
		}
		if plain.Score != dl.Score {
			t.Logf("seed %d (q=%d t=%d w=%d init=%d): plain %d delta %d", seed, qlen, tlen, w, init, plain.Score, dl.Score)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaSweepRejectsNonCanonical(t *testing.T) {
	if _, err := DeltaSweep(nil, []byte{0}, 0, 1, Relaxed{Match: 2, Mismatch: 1, Ins: 0, Del: 1}); err == nil {
		t.Fatal("expected rejection of non-canonical scoring")
	}
}

// TestExactSweepDominatesAffine is the admissibility property behind the
// strict checking mode: the exact-seeded relaxed sweep upper-bounds the
// true affine-gap DP everywhere in the region.
func TestExactSweepDominatesAffine(t *testing.T) {
	sc := align.DefaultScoring()
	rx := RelaxedFor(sc)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		qlen := 5 + rng.Intn(60)
		tlen := 5 + rng.Intn(90)
		w := rng.Intn(12)
		tg := randSeq(rng, tlen)
		q := randSeq(rng, qlen)
		if rng.Intn(2) == 0 && qlen <= tlen {
			copy(q, tg[:qlen]) // sometimes near-identical for live regions
			if qlen > 3 {
				q[rng.Intn(qlen)] = byte(rng.Intn(4))
			}
		}
		h0 := 5 + rng.Intn(100)

		_, bd := align.ExtendBanded(q, tg, h0, sc, w)
		sw := SweepExact(q, tg, w, h0, bd.E, sc, rx)

		_, mx := align.NaiveExtend(q, tg, h0, sc)
		maxH, maxCont := 0, 0
		for i := w + 1; i <= tlen; i++ {
			for j := 0; j <= qlen && j < i-w; j++ {
				h := mx.H[i][j]
				if h > maxH {
					maxH = h
				}
				if c := h + (qlen-j)*sc.Match; h > 0 && c > maxCont {
					maxCont = c
				}
			}
		}
		if maxH > 0 {
			if sw.Empty {
				t.Fatalf("trial %d: affine region alive (max %d) but sweep empty", trial, maxH)
			}
			if sw.Score < maxH {
				t.Fatalf("trial %d: relaxed score %d < affine region max %d (w=%d h0=%d)", trial, sw.Score, maxH, w, h0)
			}
			if sw.ScorePlusCont < maxCont {
				t.Fatalf("trial %d: relaxed cont-bound %d < affine %d", trial, sw.ScorePlusCont, maxCont)
			}
		}
	}
}

func TestSweepCornerKnownValues(t *testing.T) {
	// Target repeats the query below the band: with init at the corner,
	// the best region path should gain roughly one match per query base.
	q := []byte{0, 1, 2, 3, 0, 1, 2, 3}
	tg := append(randSeq(rand.New(rand.NewSource(3)), 4), q...)
	w := 2
	init := 50
	r := SweepCorner(q, tg, w, init, CanonicalRelaxed)
	if r.Empty {
		t.Fatal("region unexpectedly empty")
	}
	if r.Score <= init {
		t.Fatalf("score %d should exceed the %d seed via region matches", r.Score, init)
	}
	if r.Score > init+len(q) {
		t.Fatalf("score %d exceeds the all-match bound %d", r.Score, init+len(q))
	}
	if r.ScorePlusCont < r.Score {
		t.Fatalf("continuation bound %d below score %d", r.ScorePlusCont, r.Score)
	}
}

func TestHalfWidthCellCount(t *testing.T) {
	// The region is a trapezoid: its cell count must be at most roughly
	// half the full rectangle (the basis of the half-width PE array,
	// Figure 10), measured for a square-ish matrix.
	q := randSeq(rand.New(rand.NewSource(4)), 100)
	tg := randSeq(rand.New(rand.NewSource(5)), 120)
	r := SweepCorner(q, tg, 10, 10, CanonicalRelaxed)
	full := int64(len(q)+1) * int64(len(tg))
	if r.Cells*2 > full+int64(len(tg)) {
		t.Fatalf("region cells %d exceed half the rectangle %d", r.Cells, full)
	}
}

// Package editmachine implements the SeedEx edit machine (paper §III-D,
// §IV-B): an extra dynamic-programming sweep over the below-band
// ("shaded") trapezoid region using a relaxed, admissible edit scoring
//
//	sr_ed = {m:+1, x:−1, go:0, ge(ins):0, ge(del):−1}
//
// whose result upper-bounds any affine-gap score obtainable through paths
// entering the region from its left boundary. Zero-penalty insertions make
// local maxima propagate horizontally, so a single augmentation unit on
// the region's hypotenuse can read out the region maximum — the property
// that lets the hardware use 3-bit delta-encoded PEs (see
// internal/delta and the DeltaSweep in this package).
//
// The region for band w over a qlen x tlen extension matrix is
// {(i,j) : i−j > w, 1 <= i <= tlen, 0 <= j <= qlen}: every cell below the
// band, including the below-band portion of the right edge (which is what
// makes the check cover global/semi-global endpoints for asymmetric
// string lengths).
package editmachine

import (
	"fmt"
	"math"

	"seedex/internal/align"
)

// negInf marks cells no surviving path reaches; small enough that no
// admissible arithmetic can bring it back above real scores.
const negInf = math.MinInt / 4

// Relaxed is the optimistic edit-style scoring used inside the region.
// Penalties are positive magnitudes; there is no gap-open cost.
type Relaxed struct {
	Match    int // per-base match reward
	Mismatch int // per-base mismatch penalty
	Ins      int // per-base insertion penalty (query-consuming, horizontal)
	Del      int // per-base deletion penalty (target-consuming, vertical)
}

// RelaxedFor returns the paper's relaxed scheme for an affine scoring:
// {m: sc.Match, x:1, ins:0, del:1}.
func RelaxedFor(sc align.Scoring) Relaxed {
	return Relaxed{Match: sc.Match, Mismatch: 1, Ins: 0, Del: 1}
}

// Admissible reports whether r upper-bounds sc move-for-move, i.e. whether
// every relaxed move scores at least as high as the corresponding affine
// move. This is the property that makes the edit-distance check sound.
func (r Relaxed) Admissible(sc align.Scoring) error {
	if r.Match < sc.Match {
		return fmt.Errorf("editmachine: relaxed match %d < affine match %d", r.Match, sc.Match)
	}
	if r.Mismatch > sc.Mismatch {
		return fmt.Errorf("editmachine: relaxed mismatch %d > affine mismatch %d", r.Mismatch, sc.Mismatch)
	}
	// Affine gap of length L costs GapOpen + L*GapExtend >= L*GapExtend.
	if r.Ins > sc.GapExtend || r.Del > sc.GapExtend {
		return fmt.Errorf("editmachine: relaxed gap penalties (%d,%d) exceed affine extend %d", r.Ins, r.Del, sc.GapExtend)
	}
	return nil
}

func (r Relaxed) sub(a, b byte) int {
	if a == b && a < 4 {
		return r.Match
	}
	return -r.Mismatch
}

// RegionResult reports an edit-machine sweep.
type RegionResult struct {
	// Empty is true when the region contains no cells (band covers the
	// matrix); all scores are then negInf and every check passes.
	Empty bool
	// Score is the maximum relaxed score over the region: the paper's
	// score_ed.
	Score int
	// ScorePlusCont is max over region cells of score + (qlen−j)·Match:
	// an upper bound on any path that visits the region and then
	// continues anywhere (used by the strict checking mode to also cover
	// paths that re-enter the band).
	ScorePlusCont int
	// RightEdge is the maximum relaxed score among region cells with the
	// query fully consumed (j == qlen); negInf if none exist.
	RightEdge int
	// Cells is the number of region cells computed (half-width PE array
	// work; roughly half a full rectangle, Figure 10).
	Cells int64
	// Rows is the number of region rows swept.
	Rows int
}

// SweepCorner runs the paper's edit machine: the region is seeded with a
// single initial score init (the threshold S1) at its top-left corner
// (w+1, 0) and swept with relaxed scoring. Top-boundary cells receive no
// input from the band (those paths are covered by the E-score check).
// It draws scratch from a shared pool; hot callers should hold a Workspace
// and use SweepCornerWS.
func SweepCorner(query, target []byte, w, init int, rx Relaxed) RegionResult {
	ws := wsPool.Get().(*Workspace)
	res := SweepCornerWS(ws, query, target, w, init, rx)
	wsPool.Put(ws)
	return res
}

// SweepExact runs the strict-mode sweep: column-0 cells are seeded with
// the exact first-column arrival bound h0 − go − i·ge of the affine
// kernel, and top-boundary cells with the E-scores that actually leak out
// of the band (boundaryE, as captured by align.ExtendBanded). The result
// then upper-bounds *every* affine path that ever enters the region —
// including paths that re-enter the band — which is what the strict
// checking mode needs for bit-equivalence of both the local and global
// endpoints.
// It draws scratch from a shared pool; hot callers should hold a Workspace
// and use SweepExactWS.
func SweepExact(query, target []byte, w, h0 int, boundaryE []int, sc align.Scoring, rx Relaxed) RegionResult {
	ws := wsPool.Get().(*Workspace)
	res := SweepExactWS(ws, query, target, w, h0, boundaryE, sc, rx)
	wsPool.Put(ws)
	return res
}

// sweepWS computes the relaxed DP over the region. col0Seed(i) seeds column
// 0 at row i; topSeed[j] (optional) seeds the top-boundary cell
// (j+w+1, j) with the E-score crossing the band's lower boundary there
// (zero means no live crossing and is ignored). No zero-floor is applied:
// scores may run negative, exactly like the 3-bit hardware datapath, which
// only makes the bound more conservative.
func sweepWS(ws *Workspace, query, target []byte, w int, rx Relaxed, col0Seed func(int) int, topSeed []int) RegionResult {
	n, m := len(query), len(target)
	res := RegionResult{Score: negInf, ScorePlusCont: negInf, RightEdge: negInf, Empty: true}
	if w < 0 || m <= w { // first region row is w+1
		return res
	}
	// row[j] holds R(i-1, j) while computing row i.
	row := ws.rowBuf(n)
	for i := w + 1; i <= m; i++ {
		jmax := i - w - 1
		if jmax > n {
			jmax = n
		}
		// Column 0: seeded arrival vs. deletion from the cell above.
		v := col0Seed(i)
		if up := row[0]; up != negInf && up-rx.Del > v {
			v = up - rx.Del
		}
		diag := row[0] // R(i-1, 0), the diagonal input of column 1
		row[0] = v
		res.observe(v, 0, n, rx, n == 0)
		res.Empty = false
		res.Cells++
		left := v
		for j := 1; j <= jmax; j++ {
			d := diag // R(i-1, j-1)
			diag = row[j]
			best := negInf
			if d != negInf {
				best = d + rx.sub(target[i-1], query[j-1])
			}
			if up := row[j]; up != negInf && up-rx.Del > best {
				best = up - rx.Del
			}
			if left != negInf && left-rx.Ins > best {
				best = left - rx.Ins
			}
			if topSeed != nil && i == j+w+1 && j < len(topSeed) && topSeed[j] > 0 && topSeed[j] > best {
				best = topSeed[j]
			}
			row[j] = best
			left = best
			res.Cells++
			res.observe(best, j, n, rx, j == n)
		}
		res.Rows++
	}
	return res
}

func (r *RegionResult) observe(v, j, n int, rx Relaxed, rightEdge bool) {
	if v == negInf {
		return
	}
	if v > r.Score {
		r.Score = v
	}
	if c := v + (n-j)*rx.Match; c > r.ScorePlusCont {
		r.ScorePlusCont = c
	}
	if rightEdge && v > r.RightEdge {
		r.RightEdge = v
	}
}

package editmachine

import (
	"math/rand"
	"testing"

	"seedex/internal/align"
)

func wsSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

// TestSweepWSEquivalence: the workspace entry points and the pooled
// wrappers must agree field-for-field across random regions.
func TestSweepWSEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sc := align.DefaultScoring()
	rx := RelaxedFor(sc)
	ws := NewWorkspace()
	for iter := 0; iter < 800; iter++ {
		q := wsSeq(rng, 1+rng.Intn(90))
		tg := wsSeq(rng, 1+rng.Intn(120))
		w := rng.Intn(20)
		h0 := 5 + rng.Intn(80)
		if got, want := SweepCornerWS(ws, q, tg, w, h0, rx), SweepCorner(q, tg, w, h0, rx); got != want {
			t.Fatalf("iter %d corner: ws %+v != pooled %+v", iter, got, want)
		}
		boundary := make([]int, len(q)+1)
		for j := range boundary {
			if rng.Intn(3) == 0 {
				boundary[j] = rng.Intn(40)
			}
		}
		if got, want := SweepExactWS(ws, q, tg, w, h0, boundary, sc, rx), SweepExact(q, tg, w, h0, boundary, sc, rx); got != want {
			t.Fatalf("iter %d exact: ws %+v != pooled %+v", iter, got, want)
		}
	}
}

// TestSweepZeroAllocs: both the caller-owned and the pooled sweep paths
// must be allocation-free in steady state.
func TestSweepZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	sc := align.DefaultScoring()
	rx := RelaxedFor(sc)
	q := wsSeq(rng, 150)
	tg := wsSeq(rng, 170)
	boundary := make([]int, len(q)+1)
	for j := range boundary {
		boundary[j] = rng.Intn(30)
	}
	ws := NewWorkspace()
	SweepExactWS(ws, q, tg, 10, 40, boundary, sc, rx) // warm the row
	if n := testing.AllocsPerRun(200, func() {
		SweepExactWS(ws, q, tg, 10, 40, boundary, sc, rx)
	}); n != 0 {
		t.Fatalf("SweepExactWS allocates %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		SweepCornerWS(ws, q, tg, 10, 40, rx)
	}); n != 0 {
		t.Fatalf("SweepCornerWS allocates %.1f allocs/op, want 0", n)
	}
	SweepExact(q, tg, 10, 40, boundary, sc, rx) // warm the pool
	if n := testing.AllocsPerRun(200, func() {
		SweepExact(q, tg, 10, 40, boundary, sc, rx)
	}); n != 0 {
		t.Fatalf("pooled SweepExact allocates %.1f allocs/op, want 0", n)
	}
}

package editmachine

import (
	"sync"

	"seedex/internal/align"
)

// Workspace owns the sweep's single DP row so that repeated sweeps on one
// goroutine are allocation-free. The row only grows; it is never shrunk or
// freed. One Workspace serves one goroutine.
type Workspace struct {
	row []int
}

// NewWorkspace returns an empty Workspace; the row is sized lazily.
func NewWorkspace() *Workspace { return &Workspace{} }

// rowBuf returns the sweep row for a query of length n, reset to negInf.
func (ws *Workspace) rowBuf(n int) []int {
	if cap(ws.row) < n+1 {
		ws.row = make([]int, n+1)
	}
	row := ws.row[:n+1]
	for j := range row {
		row[j] = negInf
	}
	return row
}

// wsPool backs the drop-in SweepCorner/SweepExact wrappers. Long-lived
// checking goroutines should hold their own Workspace and call the WS
// entry points directly.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// SweepCornerWS is SweepCorner with caller-owned scratch; allocation-free
// once ws has warmed to the workload's maximum query length.
func SweepCornerWS(ws *Workspace, query, target []byte, w, init int, rx Relaxed) RegionResult {
	return sweepWS(ws, query, target, w, rx, func(i int) int {
		if i == w+1 {
			return init
		}
		return negInf
	}, nil)
}

// SweepExactWS is SweepExact with caller-owned scratch.
func SweepExactWS(ws *Workspace, query, target []byte, w, h0 int, boundaryE []int, sc align.Scoring, rx Relaxed) RegionResult {
	col0 := func(i int) int {
		return h0 - sc.GapOpen - i*sc.GapExtend
	}
	return sweepWS(ws, query, target, w, rx, col0, boundaryE)
}

// Package bwamem is a from-scratch mini read aligner with the BWA-MEM
// pipeline shape: SMEM seeding, chaining, left/right seed extension
// through a pluggable align.Extender (software full-band, plain banded,
// or the SeedEx speculative extender), host-side traceback for the single
// best extension, and SAM output.
//
// Its purpose in this reproduction is the paper's §V-B integration story:
// the same pipeline run with the SeedEx extender must produce
// byte-identical SAM to the pipeline run with the full-band extender
// (Figure 13 / the 787M-read validation), while the plain banded extender
// exhibits the output differences SeedEx eliminates.
package bwamem

import (
	"fmt"
	"sort"

	"seedex/internal/align"
	"seedex/internal/chain"
	"seedex/internal/core"
	"seedex/internal/ert"
	"seedex/internal/fmindex"
	"seedex/internal/genome"
	"seedex/internal/prefilter"
	"seedex/internal/sam"
)

// Seeder produces exact-match seeds for one query strand.
type Seeder interface {
	Seeds(q []byte) []chain.Seed
}

// FMSeeder seeds with SMEMs from the FM index (BWA-MEM's software path).
type FMSeeder struct {
	Index *fmindex.Index
	Cfg   fmindex.SMEMConfig
	// Select prunes repeat-dense MEM sets to the least-frequent
	// non-overlapping subset before position expansion (see seedselect.go).
	Select SeedSelection
}

// Seeds implements Seeder.
func (s FMSeeder) Seeds(q []byte) []chain.Seed {
	mems := selectMEMs(s.Index.SMEMs(q, s.Cfg), s.Select)
	var out []chain.Seed
	for _, m := range mems {
		for _, p := range m.Positions {
			out = append(out, chain.Seed{QBeg: m.QBeg, RBeg: p, Len: m.Len})
		}
	}
	return out
}

// ERTSeeder seeds with the radix-tree accelerator model.
type ERTSeeder struct {
	Index *ert.Index
	Cfg   ert.Config
}

// Seeds implements Seeder.
func (s ERTSeeder) Seeds(q []byte) []chain.Seed { return s.Index.Seeds(q, s.Cfg) }

// DualSeeder is an optional Seeder upgrade: one pass over the forward
// read yields seeds for both strands (the FMD index works this way, like
// BWA itself). Seeds carry Rev and use coordinates in the respective
// strand's query space.
type DualSeeder interface {
	SeedsBoth(read []byte) []chain.Seed
}

// FMDSeeder seeds with Li's bidirectional SMEM algorithm over the FMD
// index: a single search finds supermaximal matches against both genome
// strands at once, BWA-MEM's actual seeding procedure.
type FMDSeeder struct {
	Index *fmindex.FMD
	Cfg   fmindex.SMEMConfig
	// Select prunes repeat-dense MEM sets (see seedselect.go).
	Select SeedSelection
}

var _ DualSeeder = FMDSeeder{}

// Seeds implements Seeder for the forward strand only (prefer SeedsBoth).
func (s FMDSeeder) Seeds(q []byte) []chain.Seed {
	var out []chain.Seed
	for _, m := range selectMEMs(s.Index.SMEMsBi(q, s.Cfg), s.Select) {
		for _, p := range m.Positions {
			out = append(out, chain.Seed{QBeg: m.QBeg, RBeg: p, Len: m.Len})
		}
	}
	return out
}

// SeedsBoth implements DualSeeder: forward hits become forward seeds;
// reverse-strand hits are mirrored into the reverse-complement read's
// coordinate space.
func (s FMDSeeder) SeedsBoth(read []byte) []chain.Seed {
	var out []chain.Seed
	n := len(read)
	for _, m := range selectMEMs(s.Index.SMEMsBi(read, s.Cfg), s.Select) {
		for _, p := range m.Positions {
			out = append(out, chain.Seed{QBeg: m.QBeg, RBeg: p, Len: m.Len})
		}
		for _, p := range m.RCPositions {
			out = append(out, chain.Seed{QBeg: n - (m.QBeg + m.Len), RBeg: p, Len: m.Len, Rev: true})
		}
	}
	return out
}

// Options tunes the aligner.
type Options struct {
	// ClipPenalty is BWA-MEM's end-clipping penalty (pen_clip = 5): the
	// global (to-end) extension wins unless the local score beats it by
	// more than this.
	ClipPenalty int
	// MaxChains caps the chains extended per read.
	MaxChains int
	// BandCap caps the conservative full-band estimate (BWA: w = 100).
	BandCap int
	// TraceBand, when >= 0, performs host traceback against the banded
	// matrix of that width instead of the full matrix; set it to the
	// extender's band for the plain banded pipeline so its (possibly
	// suboptimal) scores remain traceable.
	TraceBand int
	// MaxSeedsPerChain caps the seeds extended per chain. Like BWA-MEM2
	// and the SeedEx FPGA integration (§V-B: "the FPGA processes all
	// seeds in a chain and filters out needless results"), every seed is
	// extended and the best result kept.
	MaxSeedsPerChain int
	// Prefilter enables the bit-parallel pre-alignment filter tier:
	// chains are screened with a GateKeeper-style shifted-hamming mask
	// before extension, and rejected chains are only extended if their
	// certified score bound could still influence the final mapping.
	// Final mappings are bit-identical with the filter on or off; only
	// the Extensions cost counter differs.
	Prefilter bool
	// PrefilterThreshold is the filter's edit threshold as a fraction of
	// the read length (<=0 uses DefaultPrefilterThreshold).
	PrefilterThreshold float64
}

// DefaultPrefilterThreshold is the edit threshold fraction used when
// Options.PrefilterThreshold is unset: ~2 edits on a 101 bp read, sized
// to the variant + sequencing-error budget of a true alignment.
const DefaultPrefilterThreshold = 0.02

// DefaultOptions mirrors BWA-MEM-flavoured settings.
func DefaultOptions() Options {
	return Options{ClipPenalty: 5, MaxChains: 5, BandCap: 100, TraceBand: -1, MaxSeedsPerChain: 8}
}

// prefilterEdits resolves the edit threshold for a read length.
func (o Options) prefilterEdits(readLen int) int {
	th := o.PrefilterThreshold
	if th <= 0 {
		th = DefaultPrefilterThreshold
	}
	return max(1, int(th*float64(readLen)))
}

// Aligner aligns reads against a (possibly multi-contig) reference.
type Aligner struct {
	RefName  string
	Ref      []byte // sanitized, concatenated base codes
	Contigs  *Reference
	Seeder   Seeder
	Extender align.Extender
	Scoring  align.Scoring
	Opts     Options
	ChainCfg chain.Config
	// Filter optionally overrides the pre-alignment filter used when
	// Opts.Prefilter is set. Leave nil to get a fresh prefilter.SHD per
	// read (safe under concurrent AlignRead calls); a non-nil Filter is
	// shared as-is and must be goroutine-safe if the Aligner is.
	Filter prefilter.Filter
	// Stats, when set, receives the prefilter pass/reject/rescue/false-
	// pass counters (lock-free atomics, shared across workers).
	Stats *core.Stats
}

// New assembles an aligner over a single reference sequence with an
// FM-index seeder and the given extender.
func New(refName string, ref []byte, ext align.Extender) (*Aligner, error) {
	return NewMulti([]Contig{{Name: refName, Seq: ref}}, ext)
}

// NewMulti assembles an aligner over several contigs (chromosomes),
// concatenated into one indexed coordinate space with non-matching
// padding between them.
func NewMulti(contigs []Contig, ext align.Extender) (*Aligner, error) {
	r, err := BuildReference(contigs)
	if err != nil {
		return nil, err
	}
	ix, err := fmindex.New(r.Cat)
	if err != nil {
		return nil, fmt.Errorf("bwamem: %w", err)
	}
	return &Aligner{
		RefName:  r.Names[0],
		Ref:      r.Cat,
		Contigs:  r,
		Seeder:   FMSeeder{Index: ix, Cfg: fmindex.DefaultSMEMConfig(), Select: DefaultSeedSelection()},
		Extender: ext,
		Scoring:  align.DefaultScoring(),
		Opts:     DefaultOptions(),
		ChainCfg: chain.DefaultConfig(),
	}, nil
}

// Alignment is the aligner's internal result for one read.
type Alignment struct {
	Mapped bool
	// RName is the contig the read maps to; Pos is 0-based within it.
	RName    string
	Pos      int
	Rev      bool
	Score    int
	SubScore int
	MapQ     int
	Cigar    align.Cigar
	// Extensions counts extender invocations for this read (~10 per read
	// in the paper's workload characterization). With the prefilter tier
	// on it counts only the extensions actually performed, so it is the
	// one Alignment field allowed to differ between filter on and off.
	Extensions int
	// PrefilterPass/PrefilterReject/PrefilterRescued tally the filter
	// tier's verdicts for this read (zero when the tier is off).
	PrefilterPass    int
	PrefilterReject  int
	PrefilterRescued int
	// RescueRounds counts the rescue fixpoint iterations that extended at
	// least one previously-rejected chain (0 = no rescue loop entered).
	RescueRounds int
}

type candidate struct {
	score        int
	rev          bool
	pos          int // 0-based reference start
	anchor       chain.Seed
	clipL, clipR int
	// Left/right extension endpoints for host traceback.
	lQ, lT, rQ, rT int
	lq, lt, rq, rt []byte // extension subproblems (left ones reversed)
	lh0, rh0       int
	weight         int
	// ord is the chain's position in the unfiltered extension order
	// (strand-major, then chain rank); the final sort tie-break, so the
	// candidate ranking is identical whether a chain was extended up
	// front or rescued later.
	ord int
	// rescued marks candidates extended by the prefilter rescue pass.
	rescued bool
}

// AlignRead aligns one read (base codes; ambiguous bases allowed).
func (a *Aligner) AlignRead(read []byte) Alignment {
	cands, ext, tally := a.candidates(read)
	var al Alignment
	if len(cands) == 0 {
		al = Alignment{Extensions: ext}
	} else {
		best := cands[0]
		sub := competingScore(cands, best, len(read))
		al = a.finish(read, best, sub, ext)
		tally.countFalsePasses(cands, sub, len(read))
	}
	al.PrefilterPass = tally.pass
	al.PrefilterReject = tally.reject
	al.PrefilterRescued = tally.rescued
	al.RescueRounds = tally.rounds
	tally.record(a.Stats)
	return al
}

// filterTally accumulates one read's prefilter activity.
type filterTally struct {
	pass, reject, rescued, falsePass int
	rounds                           int // rescue fixpoint iterations that rescued chains
}

// countFalsePasses counts the passed candidates that contributed nothing
// to the final mapping: not the winner, and not a competing (distant)
// score at or above the reported SubScore. These are the extensions a
// sharper filter would also have avoided.
func (t *filterTally) countFalsePasses(cands []candidate, sub, readLen int) {
	if t.pass == 0 {
		return
	}
	useful := 0
	best := cands[0]
	for i, c := range cands {
		if c.rescued {
			continue
		}
		distant := c.pos > best.pos+readLen || c.pos < best.pos-readLen || c.rev != best.rev
		if i == 0 || (distant && sub > 0 && c.score >= sub) {
			useful++
		}
	}
	t.falsePass = max(t.pass-useful, 0)
}

func (t *filterTally) record(st *core.Stats) {
	if st == nil || t.pass+t.reject == 0 {
		return
	}
	st.PrefilterPass.Add(int64(t.pass))
	st.PrefilterReject.Add(int64(t.reject))
	st.PrefilterRescued.Add(int64(t.rescued))
	st.PrefilterFalsePass.Add(int64(t.falsePass))
}

// chainWork is one chain queued for the read-level extension batch: the
// strand-oriented query it extends against plus its range [lo,hi) in the
// flattened per-seed candidate slice.
type chainWork struct {
	q      []byte
	c      chain.Chain
	ord    int
	lo, hi int
}

// candidates seeds, chains and extends the read on both strands,
// returning the surviving candidates sorted best-first plus the number
// of extensions performed. Against a batch-capable extender, extension is
// two-phase across the WHOLE read — every chain of both strands
// contributes its seeds to one left-extension batch and one
// right-extension batch — so the downstream shape bins see the read's
// full mix of subproblems at once instead of per-chain trickles.
func (a *Aligner) candidates(read []byte) ([]candidate, int, filterTally) {
	return a.candidatesFiltered(read, true)
}

// candidatesFiltered is candidates with the prefilter tier gated: the
// paired-end path passes allowFilter=false (see AlignPair).
func (a *Aligner) candidatesFiltered(read []byte, allowFilter bool) ([]candidate, int, filterTally) {
	var tally filterTally
	var cands []candidate
	ext := 0
	var dualSeeds []chain.Seed
	ds, isDual := a.Seeder.(DualSeeder)
	if isDual {
		dualSeeds = ds.SeedsBoth(read)
	}
	be, isBatch := a.Extender.(align.BatchExtender)
	var fc *filterCtx
	if allowFilter {
		fc = a.newFilterCtx(read)
	}
	var work []chainWork
	var rej []rejChain
	ord := 0
	for _, rev := range []bool{false, true} {
		q := read
		if rev {
			q = genome.RevComp(read)
		}
		var seeds []chain.Seed
		if isDual {
			for _, s := range dualSeeds {
				if s.Rev == rev {
					seeds = append(seeds, s)
				}
			}
		} else {
			seeds = a.Seeder.Seeds(q)
			for i := range seeds {
				seeds[i].Rev = rev
			}
		}
		chains := chain.Build(seeds, a.ChainCfg)
		for ci, c := range chains {
			if a.Opts.MaxChains > 0 && ci >= a.Opts.MaxChains {
				break
			}
			ord++
			if fc != nil {
				if ub, rejected := fc.screen(q, c); rejected {
					rej = append(rej, rejChain{q: q, c: c, ord: ord, ub: ub})
					tally.reject++
					continue
				}
				tally.pass++
			}
			if isBatch {
				work = append(work, chainWork{q: q, c: c, ord: ord})
				continue
			}
			cand, n := a.alignChain(q, c)
			ext += n
			cand.weight = c.Weight
			cand.ord = ord
			cands = append(cands, cand)
		}
	}
	if len(work) > 0 {
		batched, n := a.alignChainsBatch(work, be)
		ext += n
		cands = append(cands, batched...)
	}
	cands = a.dropCrossContig(cands)
	sortCandidates(cands)

	// Score-bound rescue, iterated to a fixpoint: a rejected chain whose
	// certified upper bound could still reach the final Score or SubScore
	// is extended after all, so the reported mapping (and its quality)
	// never depends on what the filter skipped. A rescue can move the
	// floors — e.g. install a new best at a shifted position, exposing a
	// previously-safe reject to the SubScore comparison — so the
	// remaining rejects are re-examined until no bound clears them.
	for len(rej) > 0 {
		floorBest, floorSub := -1, -1
		if len(cands) > 0 {
			floorBest = cands[0].score
			floorSub = competingScore(cands, cands[0], len(read))
		}
		var rescue []rejChain
		keep := rej[:0]
		for _, r := range rej {
			if floorBest < 0 || r.ub >= floorBest || r.ub > floorSub {
				rescue = append(rescue, r)
			} else {
				keep = append(keep, r)
			}
		}
		rej = keep
		if len(rescue) == 0 {
			break
		}
		tally.rescued += len(rescue)
		tally.rounds++
		var rcands []candidate
		if isBatch {
			rwork := make([]chainWork, len(rescue))
			for i, r := range rescue {
				rwork[i] = chainWork{q: r.q, c: r.c, ord: r.ord}
			}
			var n int
			rcands, n = a.alignChainsBatch(rwork, be)
			ext += n
		} else {
			for _, r := range rescue {
				cand, n := a.alignChain(r.q, r.c)
				ext += n
				cand.weight = r.c.Weight
				cand.ord = r.ord
				rcands = append(rcands, cand)
			}
		}
		for i := range rcands {
			rcands[i].rescued = true
		}
		cands = append(cands, a.dropCrossContig(rcands)...)
		sortCandidates(cands)
	}
	return cands, ext, tally
}

// dropCrossContig removes candidates whose alignment span would leave
// its contig (it would overlap the inter-contig padding).
func (a *Aligner) dropCrossContig(cands []candidate) []candidate {
	if a.Contigs == nil {
		return cands
	}
	kept := cands[:0]
	for _, c := range cands {
		span := c.lT + c.anchor.Len + c.rT
		if _, _, ok := a.Contigs.Contains(c.pos, span); ok {
			kept = append(kept, c)
		}
	}
	return kept
}

// sortCandidates ranks candidates best-first with a total order (ord, the
// unfiltered extension order, breaks every remaining tie), so the ranking
// does not depend on whether some candidates joined via the rescue pass.
func sortCandidates(cands []candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if cands[i].pos != cands[j].pos {
			return cands[i].pos < cands[j].pos
		}
		if cands[i].rev != cands[j].rev {
			return !cands[i].rev
		}
		return cands[i].ord < cands[j].ord
	})
}

// competingScore finds the best score at a clearly different locus than
// best (the XS value for mapping quality).
func competingScore(cands []candidate, best candidate, readLen int) int {
	for _, c := range cands {
		if c.pos > best.pos+readLen || c.pos < best.pos-readLen || c.rev != best.rev {
			return c.score
		}
	}
	return 0
}

// finish tracebacks the chosen candidate and assembles the Alignment.
func (a *Aligner) finish(read []byte, best candidate, sub, ext int) Alignment {
	cig, err := a.buildCigar(read, best)
	if err != nil {
		// A traceback failure indicates an internal inconsistency; fail
		// loudly in tests via an unmapped marker.
		return Alignment{Extensions: ext}
	}
	rname, pos := a.RefName, best.pos
	if a.Contigs != nil {
		if ci, off, ok := a.Contigs.Resolve(best.pos); ok {
			rname, pos = a.Contigs.Names[ci], off
		}
	}
	return Alignment{
		Mapped:     true,
		RName:      rname,
		Pos:        pos,
		Rev:        best.rev,
		Score:      best.score,
		SubScore:   sub,
		MapQ:       mapq(best.score, sub, best.weight, len(read)),
		Cigar:      cig,
		Extensions: ext,
	}
}

// chainSeeds returns the chain's seeds sorted longest-first (position
// tie-broken) and truncated to MaxSeedsPerChain — the extension order both
// the sequential and the batched paths share.
func (a *Aligner) chainSeeds(c chain.Chain) []chain.Seed {
	seeds := append([]chain.Seed(nil), c.Seeds...)
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].Len != seeds[j].Len {
			return seeds[i].Len > seeds[j].Len
		}
		if seeds[i].RBeg != seeds[j].RBeg {
			return seeds[i].RBeg < seeds[j].RBeg
		}
		return seeds[i].QBeg < seeds[j].QBeg
	})
	if a.Opts.MaxSeedsPerChain > 0 && len(seeds) > a.Opts.MaxSeedsPerChain {
		seeds = seeds[:a.Opts.MaxSeedsPerChain]
	}
	return seeds
}

// alignChain extends every seed of the chain (up to MaxSeedsPerChain,
// longest first) and keeps the best-scoring result — the all-seeds
// batching model BWA-MEM2 and the SeedEx FPGA integration use. Returns
// the winning candidate and the number of extensions performed. This is
// the sequential path; batch-capable extenders go through
// alignChainsBatch, which extends all chains of a read at once.
func (a *Aligner) alignChain(q []byte, c chain.Chain) (candidate, int) {
	var best candidate
	total := 0
	for i, s := range a.chainSeeds(c) {
		cand, n := a.alignSeed(q, c, s)
		total += n
		if i == 0 || cand.score > best.score ||
			(cand.score == best.score && cand.pos < best.pos) {
			best = cand
		}
	}
	return best, total
}

// alignChainsBatch extends every chain of the read (both strands) against
// a batch-capable extender in two phases: all left extensions of all
// chains as one batch, then — because each right extension is seeded by
// its own left side's resolved score — all right extensions as a second
// batch. Per-chain winners and scores are identical to the sequential
// path; the read-level batches exist so SWAR lanes (or the FPGA's cores)
// fill across every seed the read produces, per §V-B's "the FPGA
// processes all seeds in a chain" integration, and so the shape-binned
// schedulers downstream see whole mixed sets rather than per-chain
// trickles. Returns one candidate per chain, in chain order.
func (a *Aligner) alignChainsBatch(work []chainWork, be align.BatchExtender) ([]candidate, int) {
	sc := a.Scoring
	var flat []candidate
	for wi := range work {
		w := &work[wi]
		w.lo = len(flat)
		for _, s := range a.chainSeeds(w.c) {
			flat = append(flat, candidate{rev: w.c.Rev, anchor: s})
		}
		w.hi = len(flat)
	}
	scoreL := make([]int, len(flat))
	jobs := make([]align.Job, 0, len(flat))
	total := 0

	// Phase 1: left extensions of every seed of every chain.
	for wi := range work {
		w := &work[wi]
		band := sc.EstimateBand(len(w.q), 0, a.Opts.BandCap)
		for fi := w.lo; fi < w.hi; fi++ {
			cand := &flat[fi]
			s := cand.anchor
			h0 := s.Len * sc.Match
			scoreL[fi] = h0
			if s.QBeg > 0 {
				cand.lq = reversed(w.q[:s.QBeg])
				lo := s.RBeg - s.QBeg - band
				if lo < 0 {
					lo = 0
				}
				cand.lt = reversed(a.Ref[lo:s.RBeg])
				cand.lh0 = h0
				jobs = append(jobs, align.Job{Q: cand.lq, T: cand.lt, H0: h0})
			}
		}
	}
	results := be.ExtendJobs(jobs, nil)
	ji := 0
	for fi := range flat {
		cand := &flat[fi]
		if s := cand.anchor; s.QBeg > 0 {
			h0 := s.Len * sc.Match
			scoreL[fi], cand.clipL, cand.lQ, cand.lT =
				resolveSide(results[ji], s.QBeg, h0, a.Opts.ClipPenalty)
			ji++
			total++
		}
	}

	// Phase 2: right extensions, seeded by the resolved left scores.
	jobs = jobs[:0]
	for wi := range work {
		w := &work[wi]
		band := sc.EstimateBand(len(w.q), 0, a.Opts.BandCap)
		for fi := w.lo; fi < w.hi; fi++ {
			cand := &flat[fi]
			s := cand.anchor
			cand.score = scoreL[fi]
			if qe := s.QEnd(); qe < len(w.q) {
				cand.rq = append([]byte(nil), w.q[qe:]...)
				re := s.REnd()
				hi := re + (len(w.q) - qe) + band
				if hi > len(a.Ref) {
					hi = len(a.Ref)
				}
				cand.rt = append([]byte(nil), a.Ref[re:hi]...)
				cand.rh0 = scoreL[fi]
				jobs = append(jobs, align.Job{Q: cand.rq, T: cand.rt, H0: scoreL[fi]})
			}
		}
	}
	results = be.ExtendJobs(jobs, results[:0])
	ji = 0
	for wi := range work {
		w := &work[wi]
		for fi := w.lo; fi < w.hi; fi++ {
			cand := &flat[fi]
			s := cand.anchor
			if qe := s.QEnd(); qe < len(w.q) {
				cand.score, cand.clipR, cand.rQ, cand.rT =
					resolveSide(results[ji], len(w.q)-qe, scoreL[fi], a.Opts.ClipPenalty)
				ji++
				total++
			}
			cand.pos = s.RBeg - cand.lT
		}
	}

	// Per-chain winner selection, identical to alignChain's rule.
	out := make([]candidate, 0, len(work))
	for wi := range work {
		w := &work[wi]
		if w.lo == w.hi {
			continue
		}
		best := flat[w.lo]
		for _, cand := range flat[w.lo+1 : w.hi] {
			if cand.score > best.score || (cand.score == best.score && cand.pos < best.pos) {
				best = cand
			}
		}
		best.weight = w.c.Weight
		best.ord = w.ord
		out = append(out, best)
	}
	return out, total
}

// alignSeed extends one seed left and right, resolving BWA-MEM's
// clip-vs-global decision on each side.
func (a *Aligner) alignSeed(q []byte, c chain.Chain, anchor chain.Seed) (candidate, int) {
	sc := a.Scoring
	cand := candidate{rev: c.Rev, anchor: anchor}
	n := 0
	band := sc.EstimateBand(len(q), 0, a.Opts.BandCap)

	h0 := anchor.Len * sc.Match
	qb, rb := anchor.QBeg, anchor.RBeg
	scoreL := h0
	if qb > 0 {
		cand.lq = reversed(q[:qb])
		lo := rb - qb - band
		if lo < 0 {
			lo = 0
		}
		cand.lt = reversed(a.Ref[lo:rb])
		cand.lh0 = h0
		res := a.Extender.Extend(cand.lq, cand.lt, h0)
		n++
		scoreL, cand.clipL, cand.lQ, cand.lT = resolveSide(res, qb, h0, a.Opts.ClipPenalty)
	}

	qe, re := anchor.QEnd(), anchor.REnd()
	score := scoreL
	if qe < len(q) {
		cand.rq = append([]byte(nil), q[qe:]...)
		hi := re + (len(q) - qe) + band
		if hi > len(a.Ref) {
			hi = len(a.Ref)
		}
		cand.rt = append([]byte(nil), a.Ref[re:hi]...)
		cand.rh0 = scoreL
		res := a.Extender.Extend(cand.rq, cand.rt, scoreL)
		n++
		score, cand.clipR, cand.rQ, cand.rT = resolveSide(res, len(q)-qe, scoreL, a.Opts.ClipPenalty)
	}
	cand.score = score
	cand.pos = rb - cand.lT
	return cand, n
}

// resolveSide applies BWA-MEM's end decision to one extension side:
// prefer reaching the query end (global) unless clipping scores more than
// ClipPenalty better. Returns (score, clippedBases, queryAdvance,
// targetAdvance).
func resolveSide(res align.ExtendResult, sideLen, h0, clipPen int) (int, int, int, int) {
	if sideLen == 0 {
		return h0, 0, 0, 0
	}
	if res.Global > 0 && res.Global >= res.Local-clipPen {
		return res.Global, 0, sideLen, res.GlobalT
	}
	if res.Local <= 0 {
		return h0, sideLen, 0, 0
	}
	return res.Local, sideLen - res.LocalQ, res.LocalQ, res.LocalT
}

// buildCigar performs host-side traceback for the winning candidate only
// (the paper's once-per-read traceback division of labour).
func (a *Aligner) buildCigar(read []byte, c candidate) (align.Cigar, error) {
	var cig align.Cigar
	cig = cig.Push(align.OpSoft, c.clipL)
	if c.lQ > 0 {
		mx := a.traceMatrices(c.lq, c.lt, c.lh0)
		lc, err := align.Traceback(mx, a.Scoring, c.lT, c.lQ)
		if err != nil {
			return nil, err
		}
		cig = cig.Concat(lc.Reverse()) // left side was extended in reverse
	}
	cig = cig.Push(align.OpMatch, c.anchor.Len)
	if c.rQ > 0 {
		mx := a.traceMatrices(c.rq, c.rt, c.rh0)
		rc, err := align.Traceback(mx, a.Scoring, c.rT, c.rQ)
		if err != nil {
			return nil, err
		}
		cig = cig.Concat(rc)
	}
	cig = cig.Push(align.OpSoft, c.clipR)
	if err := cig.Validate(len(read), cig.TargetLen()); err != nil {
		return nil, err
	}
	return cig, nil
}

func (a *Aligner) traceMatrices(q, t []byte, h0 int) *align.Matrices {
	if a.Opts.TraceBand >= 0 {
		_, mx := align.NaiveExtendBanded(q, t, h0, a.Scoring, a.Opts.TraceBand)
		return mx
	}
	_, mx := align.NaiveExtend(q, t, h0, a.Scoring)
	return mx
}

// mapq is a BWA-flavoured mapping quality: scaled score margin over the
// best competing alignment, damped for thin seed coverage.
func mapq(best, sub, weight, readLen int) int {
	if best <= 0 {
		return 0
	}
	q := 60 * (best - sub) / best
	if weight*2 < readLen {
		q = q * weight * 2 / readLen
	}
	if q < 0 {
		q = 0
	}
	if q > 60 {
		q = 60
	}
	return q
}

func reversed(s []byte) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}

// ToSAM renders an alignment as a SAM record. The alignment's own RName
// (contig) wins over the fallback refName.
func ToSAM(name string, read []byte, qual []byte, refName string, al Alignment) sam.Record {
	if al.RName != "" {
		refName = al.RName
	}
	rec := sam.Record{QName: name, RName: refName}
	seq := read
	q := qual
	if al.Mapped && al.Rev {
		seq = genome.RevComp(read)
		q = reversed(qual)
		rec.Flag |= sam.FlagReverse
	}
	rec.Seq = genome.Decode(seq)
	rec.Qual = string(q)
	if !al.Mapped {
		rec.Flag |= sam.FlagUnmapped
		return rec
	}
	rec.Pos = al.Pos + 1
	rec.MapQ = al.MapQ
	rec.Cigar = al.Cigar
	rec.Score = al.Score
	rec.SubScore = al.SubScore
	return rec
}

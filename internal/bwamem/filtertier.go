// The prefilter tier's pipeline glue: per-read filter context, the
// per-chain screening call, and the bookkeeping for rejected chains.
// The screening itself (shifted-hamming masks, certified score-loss
// bounds) lives in internal/prefilter; this file owns the geometry —
// which reference window a chain's candidates can fall in, and how much
// diagonal drift its seed group grants for free.
package bwamem

import (
	"seedex/internal/chain"
	"seedex/internal/prefilter"
)

// maxFreeDrift caps the chain diagonal spread the filter models. A chain
// whose extended seeds span more diagonals than this is passed through
// unfiltered: such chains are rare, and widening the mask window to
// cover them would cost more than the extensions it could save.
const maxFreeDrift = 12

// rejChain is a chain the filter turned away, kept around so the rescue
// pass can still extend it if its score bound clears a floor.
type rejChain struct {
	q   []byte
	c   chain.Chain
	ord int
	// ub is the certified upper bound on any score an extension of this
	// chain could produce (maxScore - Verdict.LossLB).
	ub int
}

// filterCtx carries one read's prefilter state: the packed queries (one
// per strand, built lazily) and the reusable reference-window scratch.
// One context serves one AlignRead call, so a nil Aligner.Filter can be
// backed by a throwaway SHD without any cross-goroutine sharing.
type filterCtx struct {
	a     *Aligner
	f     prefilter.Filter
	e     int
	costs prefilter.Costs
	maxSc int
	qp    [2]prefilter.Packed
	qok   [2]bool
	win   prefilter.Packed
}

// newFilterCtx returns the read's filter context, or nil when the tier
// is off (the nil context short-circuits all screening).
func (a *Aligner) newFilterCtx(read []byte) *filterCtx {
	if !a.Opts.Prefilter || len(read) == 0 {
		return nil
	}
	f := a.Filter
	if f == nil {
		f = &prefilter.SHD{}
	}
	sc := a.Scoring
	return &filterCtx{
		a: a,
		f: f,
		e: a.Opts.prefilterEdits(len(read)),
		costs: prefilter.Costs{
			Match: sc.Match, Mismatch: sc.Mismatch,
			GapOpen: sc.GapOpen, GapExtend: sc.GapExtend,
		},
		maxSc: len(read) * sc.Match,
	}
}

// screen checks one chain against the filter. It returns (ub, true) when
// the chain is rejected — ub being the certified upper bound on any
// score its extensions could reach — and (0, false) when the chain must
// be extended. The mask window is anchored on the chain's longest seed;
// the spread between that seed's diagonal and the other extended seeds'
// diagonals is granted to the filter as free drift, since a candidate
// may pass through any of those diagonals without paying gap costs.
func (fc *filterCtx) screen(q []byte, c chain.Chain) (int, bool) {
	seeds := fc.a.chainSeeds(c)
	if len(seeds) == 0 {
		return 0, false
	}
	anchor := seeds[0]
	drift := 0
	for _, s := range seeds[1:] {
		d := s.Diag() - anchor.Diag()
		if d < 0 {
			d = -d
		}
		drift = max(drift, d)
	}
	if drift > maxFreeDrift {
		return 0, false
	}
	si := 0
	if c.Rev {
		si = 1
	}
	if !fc.qok[si] {
		fc.qp[si].Load(q)
		fc.qok[si] = true
	}
	margin := fc.f.Margin(fc.e, drift)
	p0 := anchor.RBeg - anchor.QBeg
	fc.win.LoadWindow(fc.a.Ref, p0-margin, p0+len(q)+margin)
	v := fc.f.Check(&fc.qp[si], &fc.win, fc.e, drift, fc.costs)
	if v.Accept {
		return 0, false
	}
	return fc.maxSc - v.LossLB, true
}

package bwamem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"seedex/internal/align"
	"seedex/internal/chain"
	"seedex/internal/fmindex"
)

// Index-file container: the contig table plus the serialized FM index,
// so multi-contig references can be indexed once and reused (BWA's
// `bwa index` workflow).

var refMagic = [8]byte{'S', 'E', 'D', 'X', 'R', 'E', 'F', '1'}

// SaveIndex writes the reference's contig table and FM index.
func SaveIndex(w io.Writer, r *Reference, ix *fmindex.Index) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(refMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(r.Names))); err != nil {
		return err
	}
	for i, name := range r.Names {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(r.Offsets[i])); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(r.Lengths[i])); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if _, err := ix.WriteTo(w); err != nil {
		return err
	}
	return nil
}

// LoadIndex reads a container written by SaveIndex.
func LoadIndex(rd io.Reader) (*Reference, *fmindex.Index, error) {
	br := bufio.NewReader(rd)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("bwamem: reading index magic: %w", err)
	}
	if magic != refMagic {
		return nil, nil, fmt.Errorf("bwamem: not a seedex index file")
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, nil, err
	}
	if count == 0 || count > 1<<20 {
		return nil, nil, fmt.Errorf("bwamem: implausible contig count %d", count)
	}
	r := &Reference{}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, nil, err
		}
		if nameLen > 4096 {
			return nil, nil, fmt.Errorf("bwamem: implausible contig name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, nil, err
		}
		var off, ln uint64
		if err := binary.Read(br, binary.LittleEndian, &off); err != nil {
			return nil, nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &ln); err != nil {
			return nil, nil, err
		}
		r.Names = append(r.Names, string(name))
		r.Offsets = append(r.Offsets, int(off))
		r.Lengths = append(r.Lengths, int(ln))
	}
	ix, err := fmindex.ReadIndex(br)
	if err != nil {
		return nil, nil, err
	}
	r.Cat = ix.Text()
	for i := range r.Names {
		if r.Offsets[i]+r.Lengths[i] > len(r.Cat) {
			return nil, nil, fmt.Errorf("bwamem: contig %s exceeds indexed text", r.Names[i])
		}
	}
	return r, ix, nil
}

// NewWithIndex assembles an aligner from a prebuilt reference and FM
// index (as loaded by LoadIndex).
func NewWithIndex(r *Reference, ix *fmindex.Index, ext align.Extender) *Aligner {
	return &Aligner{
		RefName:  r.Names[0],
		Ref:      r.Cat,
		Contigs:  r,
		Seeder:   FMSeeder{Index: ix, Cfg: fmindex.DefaultSMEMConfig(), Select: DefaultSeedSelection()},
		Extender: ext,
		Scoring:  align.DefaultScoring(),
		Opts:     DefaultOptions(),
		ChainCfg: chain.DefaultConfig(),
	}
}

// BuildIndex constructs the reference and FM index for contigs (the
// expensive step SaveIndex persists).
func BuildIndex(contigs []Contig) (*Reference, *fmindex.Index, error) {
	r, err := BuildReference(contigs)
	if err != nil {
		return nil, nil, err
	}
	ix, err := fmindex.New(r.Cat)
	if err != nil {
		return nil, nil, err
	}
	return r, ix, nil
}

package bwamem

import (
	"math/rand"
	"sync"
	"testing"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/genome"
	"seedex/internal/readsim"
)

// TestMapperMatchesRun proves the reentrant Mapper entry point produces
// exactly the records the batch pipeline produces, including under
// concurrent use of independent sessions against one shared aligner.
func TestMapperMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := genome.Simulate(genome.SimConfig{Length: 30_000}, rng)
	reads := readsim.Simulate(ref, readsim.DefaultConfig(40), rng)

	se := core.New(20)
	a, err := New("chrT", ref, se)
	if err != nil {
		t.Fatal(err)
	}
	pr := make([]Read, len(reads))
	for i, r := range reads {
		pr[i] = Read{Name: r.ID, Seq: r.Seq, Qual: r.Qual}
	}
	want, _ := a.Run(pr, 0)

	// Concurrent mappers, each owning a session, splitting the reads.
	got := make([]string, len(pr))
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := a.NewMapper()
			for i := w; i < len(pr); i += workers {
				rec, al := m.Map(pr[i].Name, pr[i].Seq, pr[i].Qual)
				got[i] = rec.String()
				if al.Mapped != (rec.Flag&4 == 0) {
					t.Errorf("read %d: Mapped=%v disagrees with flag %d", i, al.Mapped, rec.Flag)
				}
			}
		}(w)
	}
	wg.Wait()
	for i := range pr {
		if got[i] != want[i].String() {
			t.Fatalf("read %d: mapper record differs from pipeline:\n  mapper:   %s\n  pipeline: %s", i, got[i], want[i].String())
		}
	}
	if se.Stats.Total.Load() == 0 {
		t.Fatal("mapper sessions did not record into the shared stats")
	}
}

// TestMapperDefaultQual pins the nil-qual path to Run's 'I' fill.
func TestMapperDefaultQual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := genome.Simulate(genome.SimConfig{Length: 20_000}, rng)
	reads := readsim.Simulate(ref, readsim.DefaultConfig(5), rng)
	a, err := New("chrT", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	pr := make([]Read, len(reads))
	for i, r := range reads {
		pr[i] = Read{Name: r.ID, Seq: r.Seq} // no qualities
	}
	want, _ := a.Run(pr, 1)
	m := a.NewMapper()
	for i := range pr {
		rec, _ := m.Map(pr[i].Name, pr[i].Seq, nil)
		if rec.String() != want[i].String() {
			t.Fatalf("read %d differs without qualities", i)
		}
	}
}

package bwamem

import (
	"math/rand"
	"sync"
	"testing"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/genome"
	"seedex/internal/prefilter"
	"seedex/internal/readsim"
)

// repeatWorld builds the workload the filter tier is for: a genome with
// a long exact repeat (reads inside it have a distant competing copy at
// full score, so the rescue floors sit high) plus short decoy windows —
// exact copies of repeat stretches scattered through unique background.
// A read with a sequencing error seeds from its error-split SMEM
// segments; a segment's exact copy inside a decoy window grows a heavy
// chain there whose full extension can only reach a mediocre score: the
// work the filter should reject. (Pure-SMEM seeding never produces such
// chains from sub-maximal matches — the decoys must contain whole
// segments — hence the window tiling.)
func repeatWorld(tb testing.TB, nReads int, seed int64) ([]byte, []readsim.Read) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	unit := genome.Simulate(genome.SimConfig{Length: 4_000}, rng)
	bg := genome.Simulate(genome.SimConfig{Length: 18_000}, rng)
	bgPos := 0
	take := func(n int) []byte { s := bg[bgPos : bgPos+n]; bgPos += n; return s }
	var ref []byte
	ref = append(ref, take(2_000)...)
	ref = append(ref, unit...)
	ref = append(ref, take(2_000)...)
	// Decoy windows tile the unit densely enough that any >=51 bp SMEM
	// segment of an in-repeat read is wholly contained in one of them.
	for w := 0; w+240 <= len(unit); w += 100 {
		ref = append(ref, unit[w:w+240]...)
		ref = append(ref, take(300)...)
	}
	ref = append(ref, unit...)
	ref = append(ref, take(2_000)...)
	cfg := readsim.DefaultConfig(nReads)
	cfg.ErrRate = 0.012 // most reads carry 1-2 errors, splitting their SMEMs
	reads := readsim.Simulate(ref, cfg, rng)
	return ref, reads
}

// sameMapping compares every Alignment field the mapping output depends
// on — everything except the cost counters the filter is allowed to
// change (Extensions, Prefilter*).
func sameMapping(a, b Alignment) bool {
	return a.Mapped == b.Mapped && a.RName == b.RName && a.Pos == b.Pos &&
		a.Rev == b.Rev && a.Score == b.Score && a.SubScore == b.SubScore &&
		a.MapQ == b.MapQ && a.Cigar.String() == b.Cigar.String()
}

func newTestAligner(tb testing.TB, ref []byte, ext align.Extender, on bool) *Aligner {
	tb.Helper()
	a, err := New("chrSim", ref, ext)
	if err != nil {
		tb.Fatal(err)
	}
	a.Opts.Prefilter = on
	if on {
		a.Stats = core.NewStats()
	}
	return a
}

// TestPrefilterBitEquivalence is the tier's core guarantee: final SAM is
// byte-identical with the filter on or off, while the filter-on run
// performs strictly fewer extensions (the rejects are real, not all
// rescued back).
func TestPrefilterBitEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		ext  func() align.Extender
	}{
		{"fullband-sequential", func() align.Extender { return core.FullBand{Scoring: align.DefaultScoring()} }},
		{"seedex-batch", func() align.Extender { return core.New(20) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, reads := repeatWorld(t, 400, 21)
			off := newTestAligner(t, ref, tc.ext(), false)
			on := newTestAligner(t, ref, tc.ext(), true)
			wantRecs, wantStats := off.Run(toPipelineReads(reads), 4)
			gotRecs, gotStats := on.Run(toPipelineReads(reads), 4)
			for i := range wantRecs {
				if gotRecs[i].String() != wantRecs[i].String() {
					t.Fatalf("read %d: SAM differs with prefilter on\n on:  %s\n off: %s",
						i, gotRecs[i], wantRecs[i])
				}
			}
			sn := on.Stats.Snapshot()
			if sn.PrefilterReject == 0 || sn.PrefilterPass == 0 {
				t.Fatalf("workload exercised no filtering: %+v", sn)
			}
			if sn.PrefilterReject <= sn.PrefilterRescued {
				t.Fatalf("every reject was rescued (no savings): %+v", sn)
			}
			if gotStats.Extensions >= wantStats.Extensions {
				t.Fatalf("prefilter saved nothing: %d extensions on vs %d off",
					gotStats.Extensions, wantStats.Extensions)
			}
			t.Logf("extensions %d -> %d; %s", wantStats.Extensions, gotStats.Extensions, sn)
		})
	}
}

// rejectAll drives every chain through the rescue pass: it rejects all
// candidates with the weakest possible bound, so the fixpoint loop must
// rescue everything and reproduce the unfiltered result exactly.
type rejectAll struct{}

func (rejectAll) Name() string        { return "reject-all" }
func (rejectAll) Margin(e, s int) int { return e + s }
func (rejectAll) Check(_, _ *prefilter.Packed, _, _ int, _ prefilter.Costs) prefilter.Verdict {
	return prefilter.Verdict{}
}

// TestPrefilterRescueAll pins the rescue machinery itself: with a filter
// that rejects every chain at an unbounded score ceiling, all chains are
// rescued, the extension count matches the unfiltered pipeline, and the
// output is still bit-identical.
func TestPrefilterRescueAll(t *testing.T) {
	ref, reads := repeatWorld(t, 150, 22)
	for _, batch := range []bool{false, true} {
		var mk func() align.Extender
		if batch {
			mk = func() align.Extender { return core.New(20) }
		} else {
			mk = func() align.Extender { return core.FullBand{Scoring: align.DefaultScoring()} }
		}
		off := newTestAligner(t, ref, mk(), false)
		on := newTestAligner(t, ref, mk(), true)
		on.Filter = rejectAll{}
		for _, r := range reads {
			want := off.AlignRead(r.Seq)
			got := on.AlignRead(r.Seq)
			if !sameMapping(want, got) {
				t.Fatalf("batch=%v read %s: mapping differs under reject-all filter", batch, r.ID)
			}
			if got.Extensions != want.Extensions {
				t.Fatalf("batch=%v read %s: rescue-all did %d extensions, unfiltered %d",
					batch, r.ID, got.Extensions, want.Extensions)
			}
			if got.PrefilterReject != got.PrefilterRescued {
				t.Fatalf("batch=%v read %s: %d rejects but %d rescues",
					batch, r.ID, got.PrefilterReject, got.PrefilterRescued)
			}
		}
		sn := on.Stats.Snapshot()
		if sn.PrefilterReject == 0 || sn.PrefilterReject != sn.PrefilterRescued {
			t.Fatalf("batch=%v stats: %+v", batch, sn)
		}
	}
}

// TestPrefilterChaosEquivalence feeds the adversarial read shapes the
// chaos suite cares about — all-N, N-runs, empty, sub-seed-length, pure
// motif, boundary-hugging — through both filter modes and demands
// identical mappings (and sane unmapped handling) for each.
func TestPrefilterChaosEquivalence(t *testing.T) {
	ref, _ := repeatWorld(t, 1, 23)
	rng := rand.New(rand.NewSource(23))
	allN := make([]byte, 80)
	for i := range allN {
		allN[i] = genome.N
	}
	nRun := append([]byte(nil), ref[5_000:5_101]...)
	for i := 30; i < 70; i++ {
		nRun[i] = genome.N
	}
	motifOnly := append([]byte(nil), ref[3_000:3_064]...)
	head := append([]byte(nil), ref[:40]...)
	tail := append([]byte(nil), ref[len(ref)-40:]...)
	junk := make([]byte, 101)
	for i := range junk {
		junk[i] = byte(rng.Intn(4))
	}
	cases := [][]byte{nil, {}, {1}, allN, nRun, motifOnly, head, tail, junk,
		genome.RevComp(append([]byte(nil), ref[12_500:12_601]...))}
	for _, mkBatch := range []bool{false, true} {
		var off, on *Aligner
		if mkBatch {
			off = newTestAligner(t, ref, core.New(10), false)
			on = newTestAligner(t, ref, core.New(10), true)
		} else {
			off = newTestAligner(t, ref, core.FullBand{Scoring: align.DefaultScoring()}, false)
			on = newTestAligner(t, ref, core.FullBand{Scoring: align.DefaultScoring()}, true)
		}
		for i, seq := range cases {
			want := off.AlignRead(seq)
			got := on.AlignRead(seq)
			if !sameMapping(want, got) {
				t.Fatalf("batch=%v chaos case %d: mapping differs with prefilter on", mkBatch, i)
			}
		}
	}
}

// TestPrefilterRaceMixed runs filter-on and filter-off aligners
// concurrently against a shared Stats sink — the race-detector coverage
// for the tier (wired into `make race`) — and checks per-read equality.
func TestPrefilterRaceMixed(t *testing.T) {
	ref, reads := repeatWorld(t, 80, 24)
	off := newTestAligner(t, ref, core.New(20), false)
	on := newTestAligner(t, ref, core.New(20), true)
	off.Stats = on.Stats // shared sink: off records nothing, on records concurrently
	var wg sync.WaitGroup
	errs := make(chan string, len(reads))
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(reads); i += 4 {
				want := off.AlignRead(reads[i].Seq)
				got := on.AlignRead(reads[i].Seq)
				if !sameMapping(want, got) {
					errs <- reads[i].ID
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for id := range errs {
		t.Errorf("read %s: mapping differs under concurrent mixed-mode alignment", id)
	}
	if on.Stats.Snapshot().PrefilterPass == 0 {
		t.Fatal("no filter activity recorded")
	}
}

package bwamem

import (
	"math/rand"
	"testing"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/fmindex"
	"seedex/internal/genome"
	"seedex/internal/readsim"
)

func TestBuildReference(t *testing.T) {
	r, err := BuildReference([]Contig{
		{Name: "chr1", Seq: []byte{0, 1, 2, 3}},
		{Name: "chr2", Seq: []byte{3, 2, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cat) != 4+ContigPad+3 {
		t.Fatalf("cat length %d", len(r.Cat))
	}
	if ci, off, ok := r.Resolve(2); !ok || ci != 0 || off != 2 {
		t.Fatalf("resolve(2) = %d,%d,%v", ci, off, ok)
	}
	if _, _, ok := r.Resolve(5); ok {
		t.Fatal("padding must not resolve")
	}
	if ci, off, ok := r.Resolve(4 + ContigPad); !ok || ci != 1 || off != 0 {
		t.Fatalf("resolve(chr2 start) = %d,%d,%v", ci, off, ok)
	}
	if _, _, ok := r.Resolve(-1); ok {
		t.Fatal("negative must not resolve")
	}
	if _, _, ok := r.Contains(2, 3); ok {
		t.Fatal("span crossing padding must not be contained")
	}
	if ci, _, ok := r.Contains(2, 2); !ok || ci != 0 {
		t.Fatal("span inside chr1 must be contained")
	}
}

func TestBuildReferenceErrors(t *testing.T) {
	if _, err := BuildReference(nil); err == nil {
		t.Fatal("no contigs must error")
	}
	if _, err := BuildReference([]Contig{{Name: "x"}}); err == nil {
		t.Fatal("empty contig must error")
	}
}

// TestMultiContigAlignment: reads simulated from three chromosomes map
// back to the right contig at the right in-contig position, under both
// the suffix-array and the FMD seeders, with identical SAM.
func TestMultiContigAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var contigs []Contig
	var seqs [][]byte
	for i, n := range []int{25_000, 18_000, 30_000} {
		s := genome.Simulate(genome.SimConfig{Length: n}, rng)
		contigs = append(contigs, Contig{Name: []string{"chr1", "chr2", "chr3"}[i], Seq: s})
		seqs = append(seqs, s)
	}
	a, err := NewMulti(contigs, core.New(20))
	if err != nil {
		t.Fatal(err)
	}

	type want struct {
		contig string
		pos    int
		rev    bool
	}
	var reads []Read
	var wants []want
	for i := 0; i < 120; i++ {
		ci := rng.Intn(3)
		rs := readsim.Simulate(seqs[ci], readsim.DefaultConfig(1), rng)
		if len(rs) == 0 {
			continue
		}
		r := rs[0]
		reads = append(reads, Read{Name: r.ID, Seq: r.Seq, Qual: r.Qual})
		wants = append(wants, want{contigs[ci].Name, r.TruePos, r.RevComp})
	}
	recs, stats := a.Run(reads, 0)
	if stats.Mapped < len(reads)*90/100 {
		t.Fatalf("mapped %d/%d", stats.Mapped, len(reads))
	}
	correct := 0
	for i, rec := range recs {
		if rec.Flag&0x4 != 0 {
			continue
		}
		d := rec.Pos - 1 - wants[i].pos
		if d < 0 {
			d = -d
		}
		if rec.RName == wants[i].contig && d <= 12 {
			correct++
		}
	}
	if correct < stats.Mapped*90/100 {
		t.Fatalf("correct contig+pos for %d/%d mapped reads", correct, stats.Mapped)
	}

	// FMD seeder must agree byte for byte on the multi-contig space too.
	fmd, err := fmindex.NewFMD(append([]byte(nil), a.Ref...))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMulti(contigs, core.New(20))
	if err != nil {
		t.Fatal(err)
	}
	b.Seeder = FMDSeeder{Index: fmd, Cfg: fmindex.DefaultSMEMConfig()}
	recs2, _ := b.Run(reads, 0)
	for i := range recs {
		if recs[i].String() != recs2[i].String() {
			t.Fatalf("read %d: FMD-seeded multi-contig SAM differs:\n %s\n %s", i, recs2[i], recs[i])
		}
	}
}

// TestNoCrossContigAlignments: a read stitched from two contigs must not
// produce an alignment spanning the padding.
func TestNoCrossContigAlignments(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	c1 := genome.Simulate(genome.SimConfig{Length: 10_000}, rng)
	c2 := genome.Simulate(genome.SimConfig{Length: 10_000}, rng)
	a, err := NewMulti([]Contig{{"chrA", c1}, {"chrB", c2}}, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	// Chimera: 50bp from the end of chrA + 50bp from the start of chrB.
	read := append(append([]byte(nil), c1[len(c1)-50:]...), c2[:50]...)
	al := a.AlignRead(read)
	if al.Mapped {
		ci := -1
		for i, n := range a.Contigs.Names {
			if n == al.RName {
				ci = i
			}
		}
		if ci < 0 {
			t.Fatalf("unknown contig %q", al.RName)
		}
		if al.Pos+al.Cigar.TargetLen() > a.Contigs.Lengths[ci] {
			t.Fatalf("alignment leaves contig %s: pos %d + %d > %d", al.RName, al.Pos, al.Cigar.TargetLen(), a.Contigs.Lengths[ci])
		}
		// Each half should be ~50bp; the aligned part must not exceed one
		// half plus slack.
		if al.Cigar.TargetLen() > 60 {
			t.Fatalf("chimeric read aligned %d bases — crossed the boundary?", al.Cigar.TargetLen())
		}
	}
}

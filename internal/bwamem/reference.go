package bwamem

import (
	"fmt"
	"sort"

	"seedex/internal/fmindex"
)

// ContigPad is the run of separator bases (code 4, never matching any
// query base) inserted between contigs in the concatenated coordinate
// space; it is longer than any extension window, so no alignment can
// bridge two contigs.
const ContigPad = 256

// Contig is one reference sequence.
type Contig struct {
	Name string
	Seq  []byte // base codes (ambiguous bases allowed; sanitized on build)
}

// Reference is a multi-contig reference in a single concatenated
// coordinate space, the layout real aligners index.
type Reference struct {
	Names   []string
	Offsets []int // contig start within Cat
	Lengths []int
	Cat     []byte // sanitized contigs joined by separator runs
}

// BuildReference sanitizes and concatenates the contigs.
func BuildReference(contigs []Contig) (*Reference, error) {
	if len(contigs) == 0 {
		return nil, fmt.Errorf("bwamem: no contigs")
	}
	r := &Reference{}
	for i, c := range contigs {
		if len(c.Seq) == 0 {
			return nil, fmt.Errorf("bwamem: contig %q is empty", c.Name)
		}
		if i > 0 {
			for k := 0; k < ContigPad; k++ {
				r.Cat = append(r.Cat, fmindex.Separator)
			}
		}
		san := append([]byte(nil), c.Seq...)
		fmindex.Sanitize(san)
		r.Names = append(r.Names, c.Name)
		r.Offsets = append(r.Offsets, len(r.Cat))
		r.Lengths = append(r.Lengths, len(san))
		r.Cat = append(r.Cat, san...)
	}
	return r, nil
}

// Resolve maps a concatenated position to (contig index, in-contig
// offset); ok is false inside padding or out of range.
func (r *Reference) Resolve(pos int) (int, int, bool) {
	if pos < 0 || pos >= len(r.Cat) {
		return 0, 0, false
	}
	i := sort.Search(len(r.Offsets), func(k int) bool { return r.Offsets[k] > pos }) - 1
	if i < 0 {
		return 0, 0, false
	}
	off := pos - r.Offsets[i]
	if off >= r.Lengths[i] {
		return 0, 0, false // inside the padding after contig i
	}
	return i, off, true
}

// Contains reports whether [pos, pos+span) lies entirely inside one
// contig, returning its index and in-contig offset.
func (r *Reference) Contains(pos, span int) (int, int, bool) {
	i, off, ok := r.Resolve(pos)
	if !ok {
		return 0, 0, false
	}
	if span < 0 || off+span > r.Lengths[i] {
		return 0, 0, false
	}
	return i, off, true
}

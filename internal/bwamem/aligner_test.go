package bwamem

import (
	"math/rand"
	"testing"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/ert"
	"seedex/internal/genome"
	"seedex/internal/readsim"
)

func simWorld(t *testing.T, refLen, nReads int, seed int64) ([]byte, []readsim.Read) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := genome.Simulate(genome.SimConfig{Length: refLen, RepeatFraction: 0.05}, rng)
	reads := readsim.Simulate(ref, readsim.DefaultConfig(nReads), rng)
	return ref, reads
}

func toPipelineReads(reads []readsim.Read) []Read {
	out := make([]Read, len(reads))
	for i, r := range reads {
		out[i] = Read{Name: r.ID, Seq: r.Seq, Qual: r.Qual}
	}
	return out
}

// TestAccuracyAgainstGroundTruth: the aligner must recover the simulated
// origin for the overwhelming majority of reads.
func TestAccuracyAgainstGroundTruth(t *testing.T) {
	ref, reads := simWorld(t, 60_000, 300, 1)
	a, err := New("chrSim", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	correct, mapped := 0, 0
	for _, r := range reads {
		al := a.AlignRead(r.Seq)
		if !al.Mapped {
			continue
		}
		mapped++
		d := al.Pos - r.TruePos
		if d < 0 {
			d = -d
		}
		if d <= 12 && al.Rev == r.RevComp {
			correct++
		}
	}
	if mapped < len(reads)*95/100 {
		t.Fatalf("mapped %d/%d reads", mapped, len(reads))
	}
	if correct < mapped*95/100 {
		t.Fatalf("correct %d/%d mapped reads", correct, mapped)
	}
	t.Logf("mapped %d/%d, correct %d", mapped, len(reads), correct)
}

// TestSeedExPipelineBitEquivalence is the paper's headline validation at
// pipeline level: SAM from the SeedEx extender is byte-identical to SAM
// from the full-band extender, for every band setting (Figure 13's
// SeedEx series is identically zero).
func TestSeedExPipelineBitEquivalence(t *testing.T) {
	ref, reads := simWorld(t, 50_000, 250, 2)
	full, err := New("chrSim", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, _ := full.Run(toPipelineReads(reads), 4)
	for _, w := range []int{3, 10, 20} {
		se := core.New(w)
		a, err := New("chrSim", ref, se)
		if err != nil {
			t.Fatal(err)
		}
		gotRecs, _ := a.Run(toPipelineReads(reads), 4)
		for i := range wantRecs {
			if gotRecs[i].String() != wantRecs[i].String() {
				t.Fatalf("w=%d read %d: SAM differs\n seedex: %s\n full:   %s", w, i, gotRecs[i], wantRecs[i])
			}
		}
		if se.Stats.Total.Load() == 0 {
			t.Fatal("no extensions went through the checker")
		}
		t.Logf("w=%d: %s", w, se.Stats)
	}
}

// TestBandedPipelineDiffers: the plain banded heuristic (no checks) must
// produce output differences at small bands — the effect Figure 13
// quantifies and SeedEx eliminates.
func TestBandedPipelineDiffers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := genome.Simulate(genome.SimConfig{Length: 50_000}, rng)
	// Indel-rich workload: ~1/3 of reads carry an indel, many longer than
	// one base, so a w=1 band must miss optimal paths.
	cfg := readsim.DefaultConfig(400)
	cfg.IndelRate = 0.004
	reads := readsim.Simulate(ref, cfg, rng)
	full, err := New("chrSim", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, _ := full.Run(toPipelineReads(reads), 4)
	banded, err := New("chrSim", ref, core.Banded{Scoring: align.DefaultScoring(), Band: 1})
	if err != nil {
		t.Fatal(err)
	}
	banded.Opts.TraceBand = 1
	gotRecs, _ := banded.Run(toPipelineReads(reads), 4)
	diffs := 0
	for i := range wantRecs {
		if gotRecs[i].String() != wantRecs[i].String() {
			diffs++
		}
	}
	if diffs == 0 {
		t.Fatal("w=1 banded pipeline produced zero differences; Figure 13's effect is absent")
	}
	t.Logf("w=1 banded pipeline: %d/%d SAM entries differ", diffs, len(reads))
}

func TestERTSeederPipeline(t *testing.T) {
	ref, reads := simWorld(t, 40_000, 120, 4)
	a, err := New("chrSim", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	a.Seeder = ERTSeeder{Index: ert.Build(a.Ref, ert.K), Cfg: ert.DefaultConfig()}
	correct, mapped := 0, 0
	for _, r := range reads {
		al := a.AlignRead(r.Seq)
		if !al.Mapped {
			continue
		}
		mapped++
		d := al.Pos - r.TruePos
		if d < 0 {
			d = -d
		}
		if d <= 12 && al.Rev == r.RevComp {
			correct++
		}
	}
	if mapped < len(reads)*90/100 || correct < mapped*90/100 {
		t.Fatalf("ERT seeding: mapped %d/%d correct %d", mapped, len(reads), correct)
	}
}

func TestSAMRecordsValid(t *testing.T) {
	ref, reads := simWorld(t, 30_000, 150, 5)
	a, err := New("chrSim", ref, core.New(20))
	if err != nil {
		t.Fatal(err)
	}
	recs, stats := a.Run(toPipelineReads(reads), 0)
	if stats.Reads != len(reads) || stats.Extensions == 0 {
		t.Fatalf("stats: %+v", stats)
	}
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if stats.SeedingNs <= 0 || stats.ExtensionNs <= 0 {
		t.Fatalf("stage times not recorded: %+v", stats)
	}
}

func TestCigarScoreConsistency(t *testing.T) {
	// The rescored CIGAR of the winning alignment must equal the reported
	// alignment score.
	ref, reads := simWorld(t, 30_000, 120, 6)
	a, err := New("chrSim", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, r := range reads {
		al := a.AlignRead(r.Seq)
		if !al.Mapped {
			continue
		}
		q := r.Seq
		if al.Rev {
			q = genome.RevComp(r.Seq)
		}
		tgt := a.Ref[al.Pos : al.Pos+al.Cigar.TargetLen()]
		if got := al.Cigar.Score(q, tgt, 0, a.Scoring); got != al.Score {
			t.Fatalf("read %s: cigar %s rescores to %d, alignment says %d", r.ID, al.Cigar, got, al.Score)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no mapped reads to check")
	}
}

func TestUnmappableRead(t *testing.T) {
	ref, _ := simWorld(t, 30_000, 1, 7)
	a, err := New("chrSim", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 50)
	for i := range junk {
		junk[i] = genome.N
	}
	al := a.AlignRead(junk)
	if al.Mapped {
		t.Fatal("all-N read must not map")
	}
	rec := ToSAM("junk", junk, nil, "chrSim", al)
	if rec.Flag&0x4 == 0 {
		t.Fatal("unmapped flag missing")
	}
}

// TestInstrumentedExtender covers the job-recording wrapper used by the
// FPGA replay model.
func TestInstrumentedExtender(t *testing.T) {
	ie := &InstrumentedExtender{Inner: core.FullBand{Scoring: align.DefaultScoring()}, KeepJobs: true}
	q := []byte{0, 1, 2, 3}
	ie.Extend(q, q, 10)
	ie.Extend(q, q, 10)
	if ie.Calls() != 2 || len(ie.Jobs()) != 2 {
		t.Fatalf("calls %d jobs %d", ie.Calls(), len(ie.Jobs()))
	}
	if ie.Jobs()[0] != (ExtJob{4, 4}) {
		t.Fatalf("job shape %+v", ie.Jobs()[0])
	}
}

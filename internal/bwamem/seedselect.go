// Optimal-Seed-Solver-inspired seed selection: when a read's SMEMs are
// collectively too frequent (repeat-dense reads whose every MEM expands
// into dozens of reference positions), pick the non-overlapping subset
// that keeps query coverage while minimizing total occurrence count, so
// the chain builder and the extension kernels downstream see the fewest
// candidate loci that still explain the read. Unique reads — the common
// case — fall under the budget and are passed through untouched, keeping
// the default pipeline behavior (and its outputs) stable.
package bwamem

import (
	"sort"

	"seedex/internal/fmindex"
)

// SeedSelection configures the seed-selection pass.
type SeedSelection struct {
	// Enable turns selection on; zero-value SeedSelection is a no-op.
	Enable bool
	// OccBudget is the total-occurrence threshold: reads whose MEMs sum
	// to at most this many occurrences keep every MEM (selection only
	// engages on repeat-dense reads).
	OccBudget int
}

// DefaultSeedSelection enables selection with a budget that leaves
// typical unique-mapping reads untouched.
func DefaultSeedSelection() SeedSelection { return SeedSelection{Enable: true, OccBudget: 96} }

// selectMEMs returns the subset of mems chosen by the selection pass: if
// the total occurrence count is within the budget, all of them;
// otherwise the non-overlapping (in query coordinates) subset that
// maximizes query coverage and, among those, minimizes total occurrence
// count — the Optimal Seed Solver objective adapted to SMEM input. The
// returned slice aliases mems' backing array ordering (sorted by query
// end).
func selectMEMs(mems []fmindex.MEM, sel SeedSelection) []fmindex.MEM {
	if !sel.Enable || len(mems) <= 1 {
		return mems
	}
	total := 0
	for _, m := range mems {
		total += m.Occ
	}
	if total <= sel.OccBudget {
		return mems
	}
	ms := append([]fmindex.MEM(nil), mems...)
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.QBeg+a.Len != b.QBeg+b.Len {
			return a.QBeg+a.Len < b.QBeg+b.Len
		}
		return a.QBeg < b.QBeg
	})
	// Weighted-interval DP over query spans: value = (coverage, -occ)
	// lexicographic. dp[i] is the best over the first i MEMs; take[i]
	// marks whether MEM i-1 is chosen in its best solution.
	type val struct{ cov, occ int }
	better := func(a, b val) bool {
		if a.cov != b.cov {
			return a.cov > b.cov
		}
		return a.occ < b.occ
	}
	dp := make([]val, len(ms)+1)
	take := make([]bool, len(ms))
	prev := make([]int, len(ms))
	for i, m := range ms {
		// prev[i]: number of MEMs (prefix length) fully left of m.
		p := sort.Search(i, func(j int) bool { return ms[j].QBeg+ms[j].Len > m.QBeg })
		prev[i] = p
		with := val{dp[p].cov + m.Len, dp[p].occ + m.Occ}
		if better(with, dp[i]) {
			dp[i+1] = with
			take[i] = true
		} else {
			dp[i+1] = dp[i]
		}
	}
	var out []fmindex.MEM
	for i := len(ms); i > 0; {
		if take[i-1] {
			out = append(out, ms[i-1])
			i = prev[i-1]
		} else {
			i--
		}
	}
	if len(out) == 0 {
		return mems
	}
	// Restore query order (reconstruction walked right to left).
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return out
}

package bwamem

import (
	"math/rand"
	"testing"

	"seedex/internal/core"
	"seedex/internal/fmindex"

	"seedex/internal/align"
)

func mem(qb, l, occ int) fmindex.MEM {
	return fmindex.MEM{QBeg: qb, Len: l, Occ: occ}
}

func TestSelectMEMsPassthrough(t *testing.T) {
	sel := DefaultSeedSelection()
	// Disabled, single-MEM, and under-budget sets come back untouched.
	in := []fmindex.MEM{mem(0, 30, 40), mem(35, 30, 40)}
	if got := selectMEMs(in, SeedSelection{}); len(got) != 2 {
		t.Fatalf("disabled selection pruned: %v", got)
	}
	if got := selectMEMs(in[:1], sel); len(got) != 1 {
		t.Fatalf("single MEM pruned: %v", got)
	}
	if got := selectMEMs(in, sel); len(got) != 2 {
		t.Fatalf("under-budget set pruned (total occ 80 <= %d): %v", sel.OccBudget, got)
	}
}

func TestSelectMEMsPrunesRepeatDense(t *testing.T) {
	sel := DefaultSeedSelection()
	// Two overlapping MEMs covering the same span: the cheaper one wins.
	in := []fmindex.MEM{mem(0, 50, 200), mem(5, 50, 30), mem(60, 40, 10)}
	got := selectMEMs(in, sel)
	if len(got) != 2 || got[0].QBeg != 5 || got[1].QBeg != 60 {
		t.Fatalf("selection picked %v", got)
	}
	// Coverage dominates occurrence count: a wide expensive MEM beats a
	// narrow cheap one.
	in = []fmindex.MEM{mem(0, 80, 200), mem(10, 20, 1)}
	got = selectMEMs(in, sel)
	if len(got) != 1 || got[0].QBeg != 0 {
		t.Fatalf("coverage not maximized: %v", got)
	}
}

func TestSelectMEMsOrderAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sel := SeedSelection{Enable: true, OccBudget: 0}
	for trial := 0; trial < 200; trial++ {
		var in []fmindex.MEM
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			in = append(in, mem(rng.Intn(80), 19+rng.Intn(40), 1+rng.Intn(60)))
		}
		got := selectMEMs(in, sel)
		if len(got) == 0 {
			t.Fatalf("empty selection from %v", in)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].QBeg+got[i-1].Len > got[i].QBeg {
				t.Fatalf("selected MEMs overlap or out of order: %v", got)
			}
		}
	}
}

// TestSeedSelectionPipelineEquivalence: with the default budget, typical
// workloads (whose reads stay under it) must map identically with the
// pass disabled — selection only engages on repeat-dense reads.
func TestSeedSelectionPipelineEquivalence(t *testing.T) {
	ref, reads := simWorld(t, 40_000, 150, 31)
	withSel, err := New("chrSim", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	noSel, err := New("chrSim", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	noSel.Seeder = FMSeeder{
		Index: withSel.Seeder.(FMSeeder).Index,
		Cfg:   fmindex.DefaultSMEMConfig(),
	}
	for _, r := range reads {
		if !sameMapping(withSel.AlignRead(r.Seq), noSel.AlignRead(r.Seq)) {
			t.Fatalf("read %s: default-budget selection changed the mapping", r.ID)
		}
	}
}

package bwamem

import (
	"math/rand"
	"testing"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/genome"
	"seedex/internal/sam"
)

func pairWorld(t *testing.T, seed int64, n int) (*Aligner, []ReadPair, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := genome.Simulate(genome.SimConfig{Length: 80_000}, rng)
	a, err := New("chrP", ref, core.New(20))
	if err != nil {
		t.Fatal(err)
	}
	pairs, truth := SimulatePairs(ref, n, 101, 350, 40, 0.004, rng)
	return a, pairs, truth
}

func TestPairedEndAlignment(t *testing.T) {
	a, pairs, truth := pairWorld(t, 1, 250)
	recs, st := a.RunPairs(pairs, 0)
	if len(recs) != 2*len(pairs) {
		t.Fatalf("got %d records for %d pairs", len(recs), len(pairs))
	}
	if st.Insert.Mean < 280 || st.Insert.Mean > 420 {
		t.Fatalf("estimated insert mean %.1f, simulated 350", st.Insert.Mean)
	}
	if st.ProperPairs < len(pairs)*90/100 {
		t.Fatalf("proper pairs %d/%d", st.ProperPairs, len(pairs))
	}
	correct := 0
	for i, rec := range recs {
		if err := rec.Validate(); err != nil {
			t.Fatal(err)
		}
		if rec.Flag&sam.FlagPaired == 0 {
			t.Fatalf("record %d missing paired flag", i)
		}
		pi := i / 2
		if i%2 == 0 {
			if rec.Flag&sam.FlagRead1 == 0 {
				t.Fatalf("record %d missing READ1", i)
			}
			// Read 1 is the fragment's forward 5' end.
			if rec.Flag&sam.FlagUnmapped == 0 {
				d := rec.Pos - 1 - truth[pi]
				if d < 0 {
					d = -d
				}
				if d <= 12 {
					correct++
				}
			}
		} else if rec.Flag&sam.FlagRead2 == 0 {
			t.Fatalf("record %d missing READ2", i)
		}
		// Proper pairs must carry consistent mate fields.
		if rec.Flag&sam.FlagProperPair != 0 {
			if rec.RNext != "=" || rec.PNext <= 0 || rec.TLen == 0 {
				t.Fatalf("record %d: bad mate fields %q %d %d", i, rec.RNext, rec.PNext, rec.TLen)
			}
		}
	}
	if correct < len(pairs)*85/100 {
		t.Fatalf("read-1 correct placements: %d/%d", correct, len(pairs))
	}
	// TLEN symmetry and plausibility on proper pairs.
	for i := 0; i < len(recs); i += 2 {
		r1, r2 := recs[i], recs[i+1]
		if r1.Flag&sam.FlagProperPair == 0 {
			continue
		}
		if r1.TLen != -r2.TLen {
			t.Fatalf("pair %d: TLEN asymmetry %d vs %d", i/2, r1.TLen, r2.TLen)
		}
		tl := r1.TLen
		if tl < 0 {
			tl = -tl
		}
		if tl < 150 || tl > 600 {
			t.Fatalf("pair %d: implausible TLEN %d", i/2, r1.TLen)
		}
	}
}

// TestPairedBitEquivalence: the paired pipeline under SeedEx equals the
// full-band pipeline byte for byte.
func TestPairedBitEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := genome.Simulate(genome.SimConfig{Length: 60_000}, rng)
	pairs, _ := SimulatePairs(ref, 150, 101, 350, 40, 0.004, rng)

	run := func(ext align.Extender) []sam.Record {
		a, err := New("chrP", ref, ext)
		if err != nil {
			t.Fatal(err)
		}
		recs, _ := a.RunPairs(pairs, 4)
		return recs
	}
	want := run(core.FullBand{Scoring: align.DefaultScoring()})
	got := run(core.New(10))
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Fatalf("record %d differs:\n seedex: %s\n full:   %s", i, got[i], want[i])
		}
	}
}

// TestPairRescueDisambiguates: in a repeat region, pairing information
// should pick the placement consistent with the mate.
func TestPairRescueDisambiguates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Genome with an exact 400bp duplication far away.
	ref := genome.Simulate(genome.SimConfig{Length: 40_000}, rng)
	copy(ref[30_000:30_400], ref[5_000:5_400])
	a, err := New("chrR", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	// Fragment: read1 inside the duplicated block (ambiguous), read2 in
	// unique flanking sequence of the 5k copy.
	frag := ref[5_100:5_500] // 150 into dup block, extends into unique
	r1 := append([]byte(nil), frag[:101]...)
	r2 := genome.RevComp(frag[len(frag)-101:])
	ins := a.EstimateInsert(nil, 0) // default stats 400±100
	a1, a2, proper := a.AlignPair(ReadPair{Name: "p", Seq1: r1, Seq2: r2}, ins)
	if !proper {
		t.Fatalf("pair not proper: %+v %+v", a1, a2)
	}
	if a1.Pos != 5_100 {
		t.Fatalf("read1 placed at %d, want 5100 (mate-consistent copy)", a1.Pos)
	}
}

func TestInsertStatsWindow(t *testing.T) {
	s := InsertStats{Mean: 350, Std: 40}
	lo, hi := s.Window()
	if lo != 190 || hi != 510 {
		t.Fatalf("window %d..%d", lo, hi)
	}
	lo, _ = InsertStats{Mean: 50, Std: 40}.Window()
	if lo != 0 {
		t.Fatalf("window floor: %d", lo)
	}
}

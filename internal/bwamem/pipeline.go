package bwamem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"seedex/internal/align"
	"seedex/internal/chain"
	"seedex/internal/sam"
)

// Read is one input read for the pipeline.
type Read struct {
	Name string
	Seq  []byte // base codes
	Qual []byte // ASCII qualities (may be nil)
}

// ExtJob records the shape of one extension dispatched to the extender;
// the FPGA simulator replays these shapes for the Figure 17 model.
type ExtJob struct {
	QLen, TLen int
}

// InstrumentedExtender wraps an extender with time/work accounting, the
// pipeline's analogue of the paper's FPGA-thread bookkeeping.
type InstrumentedExtender struct {
	Inner align.Extender
	ns    atomic.Int64
	calls atomic.Int64
	mu    sync.Mutex
	jobs  []ExtJob
	// KeepJobs records job shapes for the FPGA replay model.
	KeepJobs bool
}

var _ align.Extender = (*InstrumentedExtender)(nil)

// Extend implements align.Extender.
func (ie *InstrumentedExtender) Extend(q, t []byte, h0 int) align.ExtendResult {
	start := time.Now()
	res := ie.Inner.Extend(q, t, h0)
	ie.ns.Add(time.Since(start).Nanoseconds())
	ie.calls.Add(1)
	if ie.KeepJobs {
		ie.mu.Lock()
		ie.jobs = append(ie.jobs, ExtJob{QLen: len(q), TLen: len(t)})
		ie.mu.Unlock()
	}
	return res
}

// ExtendJobs implements align.BatchExtender, forwarding batches to the
// inner extender (or degrading to a per-job loop when it cannot batch)
// while accounting each job into the shared counters.
func (ie *InstrumentedExtender) ExtendJobs(jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	start := time.Now()
	dst = extendJobsVia(ie.Inner, jobs, dst)
	ie.ns.Add(time.Since(start).Nanoseconds())
	ie.calls.Add(int64(len(jobs)))
	if ie.KeepJobs {
		ie.mu.Lock()
		for i := range jobs {
			ie.jobs = append(ie.jobs, ExtJob{QLen: len(jobs[i].Q), TLen: len(jobs[i].T)})
		}
		ie.mu.Unlock()
	}
	return dst
}

var _ align.BatchExtender = (*InstrumentedExtender)(nil)

// extendJobsVia dispatches a batch to ext's batch path when it has one,
// or runs the jobs one by one otherwise (same results either way).
func extendJobsVia(ext align.Extender, jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	if be, ok := ext.(align.BatchExtender); ok {
		return be.ExtendJobs(jobs, dst)
	}
	if cap(dst) < len(jobs) {
		dst = make([]align.ExtendResult, len(jobs))
	}
	dst = dst[:len(jobs)]
	for i := range jobs {
		dst[i] = ext.Extend(jobs[i].Q, jobs[i].T, jobs[i].H0)
	}
	return dst
}

// Session implements align.SessionExtender: the session extends through a
// per-goroutine session of the inner extender (when it offers one) while
// accounting into this wrapper's shared atomic counters.
func (ie *InstrumentedExtender) Session() align.Extender {
	inner := ie.Inner
	if se, ok := inner.(align.SessionExtender); ok {
		inner = se.Session()
	}
	return &instrumentedSession{parent: ie, inner: inner}
}

var _ align.SessionExtender = (*InstrumentedExtender)(nil)

type instrumentedSession struct {
	parent *InstrumentedExtender
	inner  align.Extender
}

func (s *instrumentedSession) Extend(q, t []byte, h0 int) align.ExtendResult {
	start := time.Now()
	res := s.inner.Extend(q, t, h0)
	ie := s.parent
	ie.ns.Add(time.Since(start).Nanoseconds())
	ie.calls.Add(1)
	if ie.KeepJobs {
		ie.mu.Lock()
		ie.jobs = append(ie.jobs, ExtJob{QLen: len(q), TLen: len(t)})
		ie.mu.Unlock()
	}
	return res
}

// ExtendJobs forwards a batch through the session's inner extender,
// accounting into the parent's shared counters.
func (s *instrumentedSession) ExtendJobs(jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	start := time.Now()
	dst = extendJobsVia(s.inner, jobs, dst)
	ie := s.parent
	ie.ns.Add(time.Since(start).Nanoseconds())
	ie.calls.Add(int64(len(jobs)))
	if ie.KeepJobs {
		ie.mu.Lock()
		for i := range jobs {
			ie.jobs = append(ie.jobs, ExtJob{QLen: len(jobs[i].Q), TLen: len(jobs[i].T)})
		}
		ie.mu.Unlock()
	}
	return dst
}

var _ align.BatchExtender = (*instrumentedSession)(nil)

// Ns returns the accumulated extension CPU time.
func (ie *InstrumentedExtender) Ns() int64 { return ie.ns.Load() }

// Calls returns the number of extensions.
func (ie *InstrumentedExtender) Calls() int64 { return ie.calls.Load() }

// Jobs returns the recorded job shapes.
func (ie *InstrumentedExtender) Jobs() []ExtJob {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	return append([]ExtJob(nil), ie.jobs...)
}

// Stats aggregates one pipeline run (the Figure 17 breakdown source).
type Stats struct {
	Reads       int
	Mapped      int
	Extensions  int64
	SeedingNs   int64 // seeding + chaining
	ExtensionNs int64 // extender calls
	RestNs      int64 // everything else (candidate resolution, traceback, SAM)
	TotalNs     int64 // wall-clock across workers (sum of per-read times)
}

// Run aligns all reads with the given worker parallelism (0 = GOMAXPROCS),
// mirroring the producer-consumer threading of Figure 12, and returns SAM
// records in input order plus the stage-time breakdown.
func (a *Aligner) Run(reads []Read, workers int) ([]sam.Record, Stats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	recs := make([]sam.Record, len(reads))
	var stats Stats
	stats.Reads = len(reads)
	var mapped, extensions, seedNs, extNs, restNs, totalNs atomic.Int64

	// One prefilled default-quality buffer shared by every read lacking
	// qualities; ToSAM copies the slice into the record, so handing out
	// read-only sub-slices is safe across workers.
	maxQual := 0
	for _, r := range reads {
		if r.Qual == nil && len(r.Seq) > maxQual {
			maxQual = len(r.Seq)
		}
	}
	defaultQual := make([]byte, maxQual)
	for k := range defaultQual {
		defaultQual[k] = 'I'
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker aligner view: private extension session and
			// timing probes built once, not once per read.
			st := a.newWorkerState()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reads) {
					return
				}
				r := reads[i]
				t0 := time.Now()
				al, tm := st.alignTimed(r.Seq)
				qual := r.Qual
				if qual == nil {
					qual = defaultQual[:len(r.Seq)]
				}
				recs[i] = ToSAM(r.Name, r.Seq, qual, a.RefName, al)
				if al.Mapped {
					mapped.Add(1)
				}
				extensions.Add(int64(al.Extensions))
				seedNs.Add(tm.seedNs)
				extNs.Add(tm.extNs)
				total := time.Since(t0).Nanoseconds()
				totalNs.Add(total)
				restNs.Add(total - tm.seedNs - tm.extNs)
			}
		}()
	}
	wg.Wait()
	stats.Mapped = int(mapped.Load())
	stats.Extensions = extensions.Load()
	stats.SeedingNs = seedNs.Load()
	stats.ExtensionNs = extNs.Load()
	stats.RestNs = restNs.Load()
	stats.TotalNs = totalNs.Load()
	return recs, stats
}

type readTimes struct {
	seedNs, extNs int64
}

// workerState is one worker's private view of the shared aligner: a
// shallow copy whose seeder and extender are wrapped with timing probes,
// and whose extender is a per-worker session (own scratch memory) when
// the configured extender offers one. The shared aligner is never
// mutated.
type workerState struct {
	cp    Aligner
	probe *stageProbe
}

func (a *Aligner) newWorkerState() *workerState {
	probe := &stageProbe{}
	ext := a.Extender
	if se, ok := ext.(align.SessionExtender); ok {
		ext = se.Session()
	}
	cp := *a
	cp.Seeder = wrapSeeder(a.Seeder, probe)
	cp.Extender = &timedExtenderProbe{inner: ext, probe: probe}
	return &workerState{cp: cp, probe: probe}
}

// alignTimed is AlignRead with per-stage attribution.
func (st *workerState) alignTimed(read []byte) (Alignment, readTimes) {
	st.probe.seedNs, st.probe.extNs = 0, 0
	al := st.cp.AlignRead(read)
	return al, readTimes{seedNs: st.probe.seedNs, extNs: st.probe.extNs}
}

type stageProbe struct {
	seedNs, extNs int64 // per-read, single goroutine: no atomics needed
}

type timedSeeder struct {
	inner Seeder
	probe *stageProbe
}

func (ts *timedSeeder) Seeds(q []byte) []chain.Seed {
	start := time.Now()
	s := ts.inner.Seeds(q)
	ts.probe.seedNs += time.Since(start).Nanoseconds()
	return s
}

// timedDualSeeder preserves the DualSeeder upgrade through the timing
// wrapper.
type timedDualSeeder struct {
	timedSeeder
	dual DualSeeder
}

func (ts *timedDualSeeder) SeedsBoth(read []byte) []chain.Seed {
	start := time.Now()
	s := ts.dual.SeedsBoth(read)
	ts.probe.seedNs += time.Since(start).Nanoseconds()
	return s
}

func wrapSeeder(inner Seeder, probe *stageProbe) Seeder {
	if d, ok := inner.(DualSeeder); ok {
		return &timedDualSeeder{timedSeeder{inner, probe}, d}
	}
	return &timedSeeder{inner, probe}
}

type timedExtenderProbe struct {
	inner align.Extender
	probe *stageProbe
}

func (te *timedExtenderProbe) Extend(q, t []byte, h0 int) align.ExtendResult {
	start := time.Now()
	res := te.inner.Extend(q, t, h0)
	te.probe.extNs += time.Since(start).Nanoseconds()
	return res
}

// ExtendJobs keeps the per-worker extender batch-capable so alignChain's
// batched path survives the timing wrapper.
func (te *timedExtenderProbe) ExtendJobs(jobs []align.Job, dst []align.ExtendResult) []align.ExtendResult {
	start := time.Now()
	dst = extendJobsVia(te.inner, jobs, dst)
	te.probe.extNs += time.Since(start).Nanoseconds()
	return dst
}

var _ align.BatchExtender = (*timedExtenderProbe)(nil)

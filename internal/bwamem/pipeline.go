package bwamem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"seedex/internal/align"
	"seedex/internal/chain"
	"seedex/internal/sam"
)

// Read is one input read for the pipeline.
type Read struct {
	Name string
	Seq  []byte // base codes
	Qual []byte // ASCII qualities (may be nil)
}

// ExtJob records the shape of one extension dispatched to the extender;
// the FPGA simulator replays these shapes for the Figure 17 model.
type ExtJob struct {
	QLen, TLen int
}

// InstrumentedExtender wraps an extender with time/work accounting, the
// pipeline's analogue of the paper's FPGA-thread bookkeeping.
type InstrumentedExtender struct {
	Inner align.Extender
	ns    atomic.Int64
	calls atomic.Int64
	mu    sync.Mutex
	jobs  []ExtJob
	// KeepJobs records job shapes for the FPGA replay model.
	KeepJobs bool
}

var _ align.Extender = (*InstrumentedExtender)(nil)

// Extend implements align.Extender.
func (ie *InstrumentedExtender) Extend(q, t []byte, h0 int) align.ExtendResult {
	start := time.Now()
	res := ie.Inner.Extend(q, t, h0)
	ie.ns.Add(time.Since(start).Nanoseconds())
	ie.calls.Add(1)
	if ie.KeepJobs {
		ie.mu.Lock()
		ie.jobs = append(ie.jobs, ExtJob{QLen: len(q), TLen: len(t)})
		ie.mu.Unlock()
	}
	return res
}

// Ns returns the accumulated extension CPU time.
func (ie *InstrumentedExtender) Ns() int64 { return ie.ns.Load() }

// Calls returns the number of extensions.
func (ie *InstrumentedExtender) Calls() int64 { return ie.calls.Load() }

// Jobs returns the recorded job shapes.
func (ie *InstrumentedExtender) Jobs() []ExtJob {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	return append([]ExtJob(nil), ie.jobs...)
}

// Stats aggregates one pipeline run (the Figure 17 breakdown source).
type Stats struct {
	Reads       int
	Mapped      int
	Extensions  int64
	SeedingNs   int64 // seeding + chaining
	ExtensionNs int64 // extender calls
	RestNs      int64 // everything else (candidate resolution, traceback, SAM)
	TotalNs     int64 // wall-clock across workers (sum of per-read times)
}

// Run aligns all reads with the given worker parallelism (0 = GOMAXPROCS),
// mirroring the producer-consumer threading of Figure 12, and returns SAM
// records in input order plus the stage-time breakdown.
func (a *Aligner) Run(reads []Read, workers int) ([]sam.Record, Stats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	recs := make([]sam.Record, len(reads))
	var stats Stats
	stats.Reads = len(reads)
	var mapped, extensions, seedNs, extNs, restNs, totalNs atomic.Int64

	var next atomic.Int64
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reads) {
					return
				}
				r := reads[i]
				t0 := time.Now()
				al, tm := a.alignTimed(r.Seq)
				qual := r.Qual
				if qual == nil {
					qual = make([]byte, len(r.Seq))
					for k := range qual {
						qual[k] = 'I'
					}
				}
				recs[i] = ToSAM(r.Name, r.Seq, qual, a.RefName, al)
				if al.Mapped {
					mapped.Add(1)
				}
				extensions.Add(int64(al.Extensions))
				seedNs.Add(tm.seedNs)
				extNs.Add(tm.extNs)
				total := time.Since(t0).Nanoseconds()
				totalNs.Add(total)
				restNs.Add(total - tm.seedNs - tm.extNs)
			}
		}()
	}
	wg.Wait()
	stats.Mapped = int(mapped.Load())
	stats.Extensions = extensions.Load()
	stats.SeedingNs = seedNs.Load()
	stats.ExtensionNs = extNs.Load()
	stats.RestNs = restNs.Load()
	stats.TotalNs = totalNs.Load()
	return recs, stats
}

type readTimes struct {
	seedNs, extNs int64
}

// alignTimed is AlignRead with per-stage attribution.
func (a *Aligner) alignTimed(read []byte) (Alignment, readTimes) {
	var tm readTimes
	probe := &stageProbe{}
	saveSeeder, saveExt := a.Seeder, a.Extender
	// Wrap per call; the aligner value is shared across workers, so wrap
	// via a shallow copy instead of mutating shared state.
	cp := *a
	cp.Seeder = wrapSeeder(saveSeeder, probe)
	cp.Extender = &timedExtenderProbe{inner: saveExt, probe: probe}
	al := cp.AlignRead(read)
	tm.seedNs, tm.extNs = probe.seedNs, probe.extNs
	return al, tm
}

type stageProbe struct {
	seedNs, extNs int64 // per-read, single goroutine: no atomics needed
}

type timedSeeder struct {
	inner Seeder
	probe *stageProbe
}

func (ts *timedSeeder) Seeds(q []byte) []chain.Seed {
	start := time.Now()
	s := ts.inner.Seeds(q)
	ts.probe.seedNs += time.Since(start).Nanoseconds()
	return s
}

// timedDualSeeder preserves the DualSeeder upgrade through the timing
// wrapper.
type timedDualSeeder struct {
	timedSeeder
	dual DualSeeder
}

func (ts *timedDualSeeder) SeedsBoth(read []byte) []chain.Seed {
	start := time.Now()
	s := ts.dual.SeedsBoth(read)
	ts.probe.seedNs += time.Since(start).Nanoseconds()
	return s
}

func wrapSeeder(inner Seeder, probe *stageProbe) Seeder {
	if d, ok := inner.(DualSeeder); ok {
		return &timedDualSeeder{timedSeeder{inner, probe}, d}
	}
	return &timedSeeder{inner, probe}
}

type timedExtenderProbe struct {
	inner align.Extender
	probe *stageProbe
}

func (te *timedExtenderProbe) Extend(q, t []byte, h0 int) align.ExtendResult {
	start := time.Now()
	res := te.inner.Extend(q, t, h0)
	te.probe.extNs += time.Since(start).Nanoseconds()
	return res
}

package bwamem

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/genome"
	"seedex/internal/readsim"
)

func TestIndexFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	contigs := []Contig{
		{Name: "chrA", Seq: genome.Simulate(genome.SimConfig{Length: 15_000}, rng)},
		{Name: "chrB", Seq: genome.Simulate(genome.SimConfig{Length: 9_000}, rng)},
	}
	ref, ix, err := BuildIndex(contigs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ref, ix); err != nil {
		t.Fatal(err)
	}
	ref2, ix2, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref2.Names) != 2 || ref2.Names[1] != "chrB" || ref2.Lengths[0] != 15_000 {
		t.Fatalf("contig table mangled: %+v", ref2.Names)
	}

	// The two aligners must produce identical SAM.
	ext := core.FullBand{Scoring: align.DefaultScoring()}
	a1, err := NewMulti(contigs, ext)
	if err != nil {
		t.Fatal(err)
	}
	a2 := NewWithIndex(ref2, ix2, ext)
	reads := readsim.Simulate(contigs[0].Seq, readsim.DefaultConfig(40), rng)
	for _, r := range reads {
		x := a1.AlignRead(r.Seq)
		y := a2.AlignRead(r.Seq)
		rx := ToSAM(r.ID, r.Seq, r.Qual, a1.RefName, x)
		ry := ToSAM(r.ID, r.Seq, r.Qual, a2.RefName, y)
		if rx.String() != ry.String() {
			t.Fatalf("read %s: loaded-index SAM differs:\n %s\n %s", r.ID, ry, rx)
		}
	}
}

func TestLoadIndexRejectsGarbage(t *testing.T) {
	if _, _, err := LoadIndex(strings.NewReader("definitely not an index file")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := LoadIndex(strings.NewReader("")); err == nil {
		t.Fatal("empty accepted")
	}
	// Magic but truncated body.
	if _, _, err := LoadIndex(bytes.NewReader([]byte("SEDXREF1"))); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestResolveSideBranches(t *testing.T) {
	// Zero-length side: pass-through.
	s, clip, qa, ta := resolveSide(align.ExtendResult{}, 0, 42, 5)
	if s != 42 || clip != 0 || qa != 0 || ta != 0 {
		t.Fatalf("zero side: %d %d %d %d", s, clip, qa, ta)
	}
	// Global within clip penalty of local: prefer to-end.
	s, clip, qa, ta = resolveSide(align.ExtendResult{Local: 50, LocalQ: 8, LocalT: 8, Global: 47, GlobalT: 12}, 10, 40, 5)
	if s != 47 || clip != 0 || qa != 10 || ta != 12 {
		t.Fatalf("global preferred: %d %d %d %d", s, clip, qa, ta)
	}
	// Local wins by more than the clip penalty: soft clip.
	s, clip, qa, ta = resolveSide(align.ExtendResult{Local: 60, LocalQ: 6, LocalT: 7, Global: 40, GlobalT: 12}, 10, 40, 5)
	if s != 60 || clip != 4 || qa != 6 || ta != 7 {
		t.Fatalf("local preferred: %d %d %d %d", s, clip, qa, ta)
	}
	// Nothing extends: clip the whole side, keep the incoming score.
	s, clip, qa, ta = resolveSide(align.ExtendResult{}, 10, 40, 5)
	if s != 40 || clip != 10 || qa != 0 || ta != 0 {
		t.Fatalf("dead side: %d %d %d %d", s, clip, qa, ta)
	}
}

func TestMapqBranches(t *testing.T) {
	if q := mapq(0, 0, 50, 100); q != 0 {
		t.Fatalf("zero best: %d", q)
	}
	if q := mapq(100, 0, 60, 100); q != 60 {
		t.Fatalf("unique full-coverage: %d", q)
	}
	if q := mapq(100, 100, 60, 100); q != 0 {
		t.Fatalf("tied competitor: %d", q)
	}
	if q := mapq(100, 120, 60, 100); q != 0 {
		t.Fatalf("better competitor must clamp to 0: %d", q)
	}
	// Thin seed coverage damps quality.
	full := mapq(100, 50, 60, 100)
	thin := mapq(100, 50, 20, 100)
	if thin >= full {
		t.Fatalf("thin coverage not damped: %d vs %d", thin, full)
	}
}

func TestNewMultiErrors(t *testing.T) {
	if _, err := NewMulti(nil, core.FullBand{Scoring: align.DefaultScoring()}); err == nil {
		t.Fatal("no contigs must error")
	}
}

func TestInstrumentedExtenderNs(t *testing.T) {
	ie := &InstrumentedExtender{Inner: core.FullBand{Scoring: align.DefaultScoring()}}
	q := []byte{0, 1, 2, 3, 0, 1, 2, 3}
	ie.Extend(q, q, 10)
	if ie.Ns() <= 0 {
		t.Fatal("no time recorded")
	}
}

package bwamem

import (
	"seedex/internal/align"
	"seedex/internal/sam"
)

// Mapper is a reentrant single-read mapping session: a private view of a
// shared Aligner whose extender is a per-goroutine session (own scratch
// memory), so long-lived workers — server goroutines, pipeline threads —
// map reads concurrently against one Aligner without sharing mutable
// state. A Mapper must not be used concurrently; mint one per worker.
// Mapping through a Mapper produces exactly the records Run produces.
type Mapper struct {
	cp          Aligner // shallow copy; only Extender differs from the parent
	defaultQual []byte  // grow-only 'I' fill for reads without qualities
}

// NewMapper returns a mapping session over this aligner. The session
// shares the parent's index, options and aggregate statistics (the SeedEx
// extender's atomic counters), but owns its extension scratch.
func (a *Aligner) NewMapper() *Mapper {
	cp := *a
	if se, ok := a.Extender.(align.SessionExtender); ok {
		cp.Extender = se.Session()
	}
	return &Mapper{cp: cp}
}

// Map aligns one read and renders its SAM record. Seq holds base codes
// (see genome.Encode); a nil qual gets the default 'I' fill, mirroring
// Run. The second return carries the internal alignment for callers that
// want scores and positions without parsing SAM.
func (m *Mapper) Map(name string, seq, qual []byte) (sam.Record, Alignment) {
	al := m.cp.AlignRead(seq)
	if qual == nil {
		if len(m.defaultQual) < len(seq) {
			m.defaultQual = make([]byte, len(seq))
			for i := range m.defaultQual {
				m.defaultQual[i] = 'I'
			}
		}
		qual = m.defaultQual[:len(seq)]
	}
	return ToSAM(name, seq, qual, m.cp.RefName, al), al
}

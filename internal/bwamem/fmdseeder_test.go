package bwamem

import (
	"testing"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/fmindex"
)

// TestFMDSeederPipelineEquality: the bidirectional FMD seeder (one
// two-strand pass per read, BWA's actual procedure) must produce exactly
// the SAM output of the per-strand suffix-array SMEM seeder — the seed
// sets are provably identical, so the pipelines must agree byte for
// byte.
func TestFMDSeederPipelineEquality(t *testing.T) {
	ref, reads := simWorld(t, 40_000, 200, 21)
	base, err := New("chrSim", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, _ := base.Run(toPipelineReads(reads), 4)

	fmdIx, err := fmindex.NewFMD(append([]byte(nil), base.Ref...))
	if err != nil {
		t.Fatal(err)
	}
	dual, err := New("chrSim", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	dual.Seeder = FMDSeeder{Index: fmdIx, Cfg: fmindex.DefaultSMEMConfig()}
	gotRecs, stats := dual.Run(toPipelineReads(reads), 4)
	if stats.SeedingNs <= 0 {
		t.Fatal("dual seeder timing not recorded")
	}
	for i := range wantRecs {
		if gotRecs[i].String() != wantRecs[i].String() {
			t.Fatalf("read %d: FMD-seeded SAM differs\n fmd: %s\n sa:  %s", i, gotRecs[i], wantRecs[i])
		}
	}
}

// TestFMDSeederSingleStrandFallback: the plain Seeds method (forward
// strand only) must agree with the suffix-array seeder's forward seeds.
func TestFMDSeederSingleStrandFallback(t *testing.T) {
	ref, reads := simWorld(t, 30_000, 40, 22)
	base, err := New("chrSim", ref, core.FullBand{Scoring: align.DefaultScoring()})
	if err != nil {
		t.Fatal(err)
	}
	fmdIx, err := fmindex.NewFMD(append([]byte(nil), base.Ref...))
	if err != nil {
		t.Fatal(err)
	}
	fmdSeeder := FMDSeeder{Index: fmdIx, Cfg: fmindex.DefaultSMEMConfig()}
	saSeeder := base.Seeder.(FMSeeder)
	for _, r := range reads[:20] {
		a := fmdSeeder.Seeds(r.Seq)
		b := saSeeder.Seeds(r.Seq)
		if len(a) != len(b) {
			t.Fatalf("read %s: %d FMD seeds vs %d SA seeds", r.ID, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("read %s seed %d: %+v vs %+v", r.ID, i, a[i], b[i])
			}
		}
	}
}

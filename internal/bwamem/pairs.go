package bwamem

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"seedex/internal/genome"
	"seedex/internal/sam"
)

// Paired-end alignment: both ends are aligned independently, then the
// candidate pair maximizing joint score plus a proper-pair bonus (FR
// orientation, insert size within the estimated distribution) is chosen
// — a compact version of BWA-MEM's mem_pair. All decisions depend only
// on extender outputs, so the SeedEx and full-band pipelines stay
// byte-identical on paired data too.

// ReadPair is one input fragment's two ends.
type ReadPair struct {
	Name         string
	Seq1, Seq2   []byte
	Qual1, Qual2 []byte
}

// InsertStats is the fragment-length distribution used for pairing.
type InsertStats struct {
	Mean, Std float64
}

// Window returns the accepted proper-pair insert range (mean ± 4σ).
func (s InsertStats) Window() (int, int) {
	lo := int(s.Mean - 4*s.Std)
	hi := int(s.Mean + 4*s.Std)
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

// PairStats reports one paired run.
type PairStats struct {
	Pairs       int
	ProperPairs int
	Insert      InsertStats
	Extensions  int64
}

// pairCandLimit caps how many candidates per end enter pairing.
const pairCandLimit = 5

// AlignPair aligns both ends and selects the best joint placement.
func (a *Aligner) AlignPair(p ReadPair, ins InsertStats) (Alignment, Alignment, bool) {
	// The paired path bypasses the prefilter tier: the joint objective can
	// promote candidates below the single-end Score/SubScore floors the
	// rescue pass guards, so filtering here could change pairing choices.
	c1, e1, _ := a.candidatesFiltered(p.Seq1, false)
	c2, e2, _ := a.candidatesFiltered(p.Seq2, false)
	if len(c1) > pairCandLimit {
		c1 = c1[:pairCandLimit]
	}
	if len(c2) > pairCandLimit {
		c2 = c2[:pairCandLimit]
	}
	lo, hi := ins.Window()
	// The pairing bonus approximates -log P(insert); a flat bonus inside
	// the window keeps decisions integral and deterministic.
	bonus := int(a.Scoring.Match * 15)

	bestScore := math.MinInt
	var b1, b2 *candidate
	proper := false
	for i := range c1 {
		for j := range c2 {
			x, y := &c1[i], &c2[j]
			s := x.score + y.score
			ok, _ := properPair(x, y, lo, hi)
			if ok {
				s += bonus
			}
			if s > bestScore {
				bestScore, b1, b2, proper = s, x, y, ok
			}
		}
	}
	var a1, a2 Alignment
	if b1 != nil {
		a1 = a.finish(p.Seq1, *b1, competingScore(c1, *b1, len(p.Seq1)), e1)
	} else {
		a1 = Alignment{Extensions: e1}
	}
	if b2 != nil {
		a2 = a.finish(p.Seq2, *b2, competingScore(c2, *b2, len(p.Seq2)), e2)
	} else {
		a2 = Alignment{Extensions: e2}
	}
	// Unpaired fallbacks: when one end found nothing, align the other
	// end independently (already done via finish above).
	return a1, a2, proper && a1.Mapped && a2.Mapped
}

// properPair tests FR orientation on the same locus with an acceptable
// insert; returns the insert size.
func properPair(x, y *candidate, lo, hi int) (bool, int) {
	if x.rev == y.rev {
		return false, 0
	}
	fwd, rev := x, y
	if x.rev {
		fwd, rev = y, x
	}
	// Forward mate must start before the reverse mate ends (FR).
	insert := (rev.pos + rev.lT + rev.anchor.Len + rev.rT) - fwd.pos
	if insert < lo || insert > hi || fwd.pos > rev.pos {
		return false, insert
	}
	return true, insert
}

// EstimateInsert samples FR insert sizes from confidently-mapped pairs.
func (a *Aligner) EstimateInsert(pairs []ReadPair, sample int) InsertStats {
	if sample <= 0 || sample > len(pairs) {
		sample = len(pairs)
	}
	var sizes []float64
	for i := 0; i < sample; i++ {
		p := pairs[i]
		a1 := a.AlignRead(p.Seq1)
		a2 := a.AlignRead(p.Seq2)
		if !a1.Mapped || !a2.Mapped || a1.Rev == a2.Rev || a1.MapQ < 30 || a2.MapQ < 30 || a1.RName != a2.RName {
			continue
		}
		f, r := a1, a2
		if a1.Rev {
			f, r = a2, a1
		}
		ins := (r.Pos + r.Cigar.TargetLen()) - f.Pos
		if ins > 0 && ins < 10_000 {
			sizes = append(sizes, float64(ins))
		}
	}
	if len(sizes) < 8 {
		return InsertStats{Mean: 400, Std: 100} // uninformed default
	}
	var sum, sq float64
	for _, v := range sizes {
		sum += v
	}
	mean := sum / float64(len(sizes))
	for _, v := range sizes {
		sq += (v - mean) * (v - mean)
	}
	std := math.Sqrt(sq / float64(len(sizes)))
	if std < 10 {
		std = 10
	}
	return InsertStats{Mean: mean, Std: std}
}

// RunPairs aligns all pairs (two SAM records each, in input order):
// pass 1 estimates the insert distribution from a sample, pass 2 pairs
// with it, mirroring BWA-MEM's per-batch insert bootstrapping.
func (a *Aligner) RunPairs(pairs []ReadPair, workers int) ([]sam.Record, PairStats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := PairStats{Pairs: len(pairs)}
	st.Insert = a.EstimateInsert(pairs, 200)

	recs := make([]sam.Record, 2*len(pairs))
	var proper, exts atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				p := pairs[i]
				a1, a2, ok := a.AlignPair(p, st.Insert)
				if ok {
					proper.Add(1)
				}
				exts.Add(int64(a1.Extensions + a2.Extensions))
				r1 := ToSAM(p.Name, p.Seq1, orDefaultQual(p.Qual1, len(p.Seq1)), a.RefName, a1)
				r2 := ToSAM(p.Name, p.Seq2, orDefaultQual(p.Qual2, len(p.Seq2)), a.RefName, a2)
				decoratePair(&r1, &r2, a1, a2, ok)
				recs[2*i], recs[2*i+1] = r1, r2
			}
		}()
	}
	wg.Wait()
	st.ProperPairs = int(proper.Load())
	st.Extensions = exts.Load()
	return recs, st
}

func orDefaultQual(q []byte, n int) []byte {
	if q != nil {
		return q
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = 'I'
	}
	return out
}

// decoratePair sets the SAM pairing flags and mate fields.
func decoratePair(r1, r2 *sam.Record, a1, a2 Alignment, proper bool) {
	r1.Flag |= sam.FlagPaired | sam.FlagRead1
	r2.Flag |= sam.FlagPaired | sam.FlagRead2
	if proper {
		r1.Flag |= sam.FlagProperPair
		r2.Flag |= sam.FlagProperPair
	}
	if !a2.Mapped {
		r1.Flag |= sam.FlagMateUnmapped
	}
	if !a1.Mapped {
		r2.Flag |= sam.FlagMateUnmapped
	}
	if a2.Mapped && a2.Rev {
		r1.Flag |= sam.FlagMateReverse
	}
	if a1.Mapped && a1.Rev {
		r2.Flag |= sam.FlagMateReverse
	}
	if a1.Mapped && a2.Mapped {
		same := a1.RName == a2.RName
		setMate := func(r *sam.Record, mate Alignment) {
			if same {
				r.RNext = "="
			} else {
				r.RNext = mate.RName
			}
			r.PNext = mate.Pos + 1
		}
		setMate(r1, a2)
		setMate(r2, a1)
		if same {
			f, rr := a1, a2
			sign1 := 1
			if a1.Rev && !a2.Rev {
				f, rr = a2, a1
				sign1 = -1
			}
			tlen := (rr.Pos + rr.Cigar.TargetLen()) - f.Pos
			r1.TLen = sign1 * tlen
			r2.TLen = -sign1 * tlen
		}
	}
}

// SimulatePairs is a small helper for tests and examples: FR read pairs
// with normally distributed insert sizes drawn from a donor sequence.
func SimulatePairs(donor []byte, n, readLen int, meanInsert, stdInsert float64, errRate float64, rng interface {
	Intn(int) int
	Float64() float64
	NormFloat64() float64
}) ([]ReadPair, []int) {
	var pairs []ReadPair
	var truth []int
	for i := 0; i < n; i++ {
		ins := int(meanInsert + stdInsert*rng.NormFloat64())
		if ins < readLen+10 {
			ins = readLen + 10
		}
		if ins >= len(donor)-1 {
			continue
		}
		pos := rng.Intn(len(donor) - ins)
		frag := donor[pos : pos+ins]
		r1 := mutateCopy(frag[:readLen], errRate, rng)
		r2 := genome.RevComp(mutateCopy(frag[len(frag)-readLen:], errRate, rng))
		pairs = append(pairs, ReadPair{Name: pairName(i), Seq1: r1, Seq2: r2})
		truth = append(truth, pos)
	}
	return pairs, truth
}

func pairName(i int) string { return "pair_" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func mutateCopy(s []byte, errRate float64, rng interface {
	Intn(int) int
	Float64() float64
	NormFloat64() float64
}) []byte {
	out := append([]byte(nil), s...)
	for i := range out {
		if rng.Float64() < errRate {
			out[i] = (out[i] + byte(1+rng.Intn(3))) % 4
		}
	}
	return out
}

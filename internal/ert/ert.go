// Package ert models the Enumerated-Radix-Tree seeding accelerator
// (Subramaniyan et al., used by the paper's combined seeding+SeedEx FPGA
// image): a k-mer root table whose entries lead into shallow radix
// subtrees, traded off for memory capacity to gain bandwidth efficiency.
//
// The software model keeps the same query structure — O(1) root lookup
// followed by per-hit maximal extension — and counts the tree-walk steps
// the hardware would perform, which feeds the Table II / Figure 17
// throughput models.
package ert

import (
	"sort"

	"seedex/internal/chain"
)

// K is the root-table k-mer width.
const K = 16

// Index is the ERT-like seeding index.
type Index struct {
	ref  []byte
	k    int
	root map[uint32][]int32
	// Steps counts radix-walk steps performed by queries (hardware work
	// proxy); reset with ResetSteps.
	Steps int64
}

// Build constructs the index over a sanitized (codes 0..3) reference.
func Build(ref []byte, k int) *Index {
	if k <= 0 || k > 16 {
		k = K
	}
	ix := &Index{ref: ref, k: k, root: make(map[uint32][]int32)}
	if len(ref) < k {
		return ix
	}
	var km uint32
	mask := uint32(1)<<(2*k) - 1
	valid := 0
	for i, c := range ref {
		if c > 3 {
			valid = 0
			km = 0
			continue
		}
		km = (km<<2 | uint32(c)) & mask
		valid++
		if valid >= k {
			ix.root[km] = append(ix.root[km], int32(i-k+1))
		}
	}
	return ix
}

// Config controls seeding.
type Config struct {
	// Stride between query anchor positions (1 = every offset).
	Stride int
	// MaxOcc skips k-mers with more occurrences (repeat masking).
	MaxOcc int
	// MinSeedLen discards extended seeds shorter than this.
	MinSeedLen int
}

// DefaultConfig mirrors the aligner defaults.
func DefaultConfig() Config { return Config{Stride: 1, MaxOcc: 50, MinSeedLen: 19} }

// Seeds finds maximal exact matches of q (codes 0..3, code 4 allowed and
// never matched) against the reference: each k-mer hit is extended
// maximally in both directions and deduplicated.
func (ix *Index) Seeds(q []byte, cfg Config) []chain.Seed {
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	type key struct{ diag, end int32 }
	seen := make(map[key]struct{})
	var out []chain.Seed
	if len(q) < ix.k {
		return nil
	}
	for i := 0; i+ix.k <= len(q); i += cfg.Stride {
		km, ok := ix.kmerAt(q, i)
		if !ok {
			continue
		}
		hits := ix.root[km]
		ix.Steps += int64(ix.k) // root walk
		if len(hits) == 0 || (cfg.MaxOcc > 0 && len(hits) > cfg.MaxOcc) {
			continue
		}
		for _, p32 := range hits {
			p := int(p32)
			// Extend left.
			qb, rb := i, p
			for qb > 0 && rb > 0 && q[qb-1] == ix.ref[rb-1] && q[qb-1] < 4 {
				qb--
				rb--
			}
			// Extend right.
			qe, re := i+ix.k, p+ix.k
			for qe < len(q) && re < len(ix.ref) && q[qe] == ix.ref[re] && q[qe] < 4 {
				qe++
				re++
			}
			ix.Steps += int64((i - qb) + (qe - i - ix.k))
			if qe-qb < cfg.MinSeedLen {
				continue
			}
			k := key{int32(rb - qb), int32(rb + (qe - qb))}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, chain.Seed{QBeg: qb, RBeg: rb, Len: qe - qb})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].RBeg != out[b].RBeg {
			return out[a].RBeg < out[b].RBeg
		}
		return out[a].QBeg < out[b].QBeg
	})
	return out
}

func (ix *Index) kmerAt(q []byte, i int) (uint32, bool) {
	var km uint32
	for j := 0; j < ix.k; j++ {
		c := q[i+j]
		if c > 3 {
			return 0, false
		}
		km = km<<2 | uint32(c)
	}
	return km, true
}

// ResetSteps clears the work counter.
func (ix *Index) ResetSteps() { ix.Steps = 0 }

package ert

import (
	"bytes"
	"math/rand"
	"testing"

	"seedex/internal/genome"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(4))
	}
	return s
}

func TestSeedsFindEmbeddedQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := randSeq(rng, 5000)
	pos := 1234
	q := append([]byte(nil), ref[pos:pos+60]...)
	ix := Build(ref, 16)
	seeds := ix.Seeds(q, DefaultConfig())
	found := false
	for _, s := range seeds {
		if s.RBeg == pos && s.QBeg == 0 && s.Len >= 60 {
			found = true
		}
		// Every seed must be a true exact match.
		if !bytes.Equal(q[s.QBeg:s.QEnd()], ref[s.RBeg:s.REnd()]) {
			t.Fatalf("seed %+v is not an exact match", s)
		}
	}
	if !found {
		t.Fatalf("embedded query not found among %d seeds", len(seeds))
	}
	if ix.Steps == 0 {
		t.Fatal("no tree-walk work recorded")
	}
	ix.ResetSteps()
	if ix.Steps != 0 {
		t.Fatal("reset failed")
	}
}

func TestSeedsMaximality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := randSeq(rng, 4000)
	q := append([]byte(nil), ref[100:160]...)
	q[30] = (q[30] + 1) % 4 // break into two ~30bp matches
	ix := Build(ref, 16)
	seeds := ix.Seeds(q, Config{Stride: 1, MaxOcc: 50, MinSeedLen: 10})
	for _, s := range seeds {
		// Maximal: neither end can extend.
		if s.QBeg > 0 && s.RBeg > 0 && q[s.QBeg-1] == ref[s.RBeg-1] {
			t.Fatalf("seed %+v extendable left", s)
		}
		if s.QEnd() < len(q) && s.REnd() < len(ref) && q[s.QEnd()] == ref[s.REnd()] {
			t.Fatalf("seed %+v extendable right", s)
		}
	}
	if len(seeds) < 2 {
		t.Fatalf("expected seeds on both sides of the mismatch, got %d", len(seeds))
	}
}

func TestSeedsDedupe(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := randSeq(rng, 4000)
	q := append([]byte(nil), ref[500:580]...)
	ix := Build(ref, 16)
	seeds := ix.Seeds(q, Config{Stride: 1, MaxOcc: 50, MinSeedLen: 19})
	type key struct{ a, b, c int }
	seen := map[key]bool{}
	for _, s := range seeds {
		k := key{s.QBeg, s.RBeg, s.Len}
		if seen[k] {
			t.Fatalf("duplicate seed %+v", s)
		}
		seen[k] = true
	}
}

func TestAmbiguousBasesNeverMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := randSeq(rng, 3000)
	q := append([]byte(nil), ref[200:260]...)
	q[25] = genome.N
	ix := Build(ref, 16)
	for _, s := range ix.Seeds(q, Config{Stride: 1, MaxOcc: 50, MinSeedLen: 5}) {
		for _, c := range q[s.QBeg:s.QEnd()] {
			if c > 3 {
				t.Fatalf("seed %+v spans an N", s)
			}
		}
	}
}

func TestRepeatMasking(t *testing.T) {
	// A reference that is one k-mer repeated: MaxOcc must suppress it.
	ref := bytes.Repeat([]byte{0, 1, 2, 3}, 500)
	ix := Build(ref, 8)
	seeds := ix.Seeds(ref[:40], Config{Stride: 1, MaxOcc: 10, MinSeedLen: 8})
	if len(seeds) != 0 {
		t.Fatalf("repeat k-mers not masked: %d seeds", len(seeds))
	}
}

func TestShortQuery(t *testing.T) {
	ix := Build(randSeq(rand.New(rand.NewSource(5)), 1000), 16)
	if s := ix.Seeds([]byte{0, 1, 2}, DefaultConfig()); s != nil {
		t.Fatalf("short query produced seeds: %v", s)
	}
}

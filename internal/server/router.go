package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"seedex/internal/obs"
)

// ShardLoad is the routing-relevant view of one shard at decision time:
// everything a policy may weigh, read fresh per pick from lock-free
// counters.
type ShardLoad struct {
	// ID indexes the shard in the server's pool.
	ID int
	// InFlight counts admitted-but-unfinished jobs.
	InFlight int64
	// QueueDepth counts jobs waiting for the shard's collector.
	QueueDepth int
	// MaxBatch is the shard's batch size trigger, so occupancy-aware
	// policies can tell a forming partial batch from a full backlog.
	MaxBatch int
}

// RoutingPolicy picks one shard per routing decision. Pick receives the
// request's routing key (a hash of its reference region) and the live
// loads of every candidate shard — already filtered to healthy shards
// unless the whole pool is degraded — and returns an index into cands.
// Policies must be safe for concurrent Pick calls.
type RoutingPolicy interface {
	Name() string
	Pick(key uint64, cands []ShardLoad) int
}

// policyBuilders registers the named policies; builders receive the shard
// count so stateful policies (the hash ring) can size themselves.
var policyBuilders = map[string]func(shards int) RoutingPolicy{
	"least-loaded": func(int) RoutingPolicy { return leastLoaded{} },
	"occupancy":    func(int) RoutingPolicy { return occupancyAware{} },
	"hash":         newHashRing,
}

// RegisterRoutingPolicy adds a named policy to the registry, replacing
// any previous registration of the same name. Register before New.
func RegisterRoutingPolicy(name string, build func(shards int) RoutingPolicy) {
	policyBuilders[name] = build
}

// RoutingPolicies returns the registered policy names, sorted.
func RoutingPolicies() []string {
	out := make([]string, 0, len(policyBuilders))
	for name := range policyBuilders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// leastLoaded routes to the shard with the fewest in-flight jobs — the
// classic join-shortest-queue balance.
type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Pick(_ uint64, cands []ShardLoad) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].InFlight < cands[best].InFlight {
			best = i
		}
	}
	return best
}

// occupancyAware prefers the shard whose forming batch is closest to full
// (largest queue depth short of the size trigger), topping off partial
// batches so flushes pack more lanes; with no partial batch anywhere it
// degrades to least-loaded. Queue depths at exact MaxBatch multiples mean
// whole batches are waiting, not forming — nothing to top off.
type occupancyAware struct{}

func (occupancyAware) Name() string { return "occupancy" }

func (occupancyAware) Pick(key uint64, cands []ShardLoad) int {
	best, bestPartial := -1, 0
	for i, c := range cands {
		if c.MaxBatch <= 0 || c.QueueDepth <= 0 {
			continue
		}
		if partial := c.QueueDepth % c.MaxBatch; partial > bestPartial {
			best, bestPartial = i, partial
		}
	}
	if best >= 0 {
		return best
	}
	return leastLoaded{}.Pick(key, cands)
}

// hashRing is consistent hashing by reference region: jobs hashing to the
// same region always land on the same shard (keeping that shard's caches
// and sessions hot on that region), and a shard leaving the candidate set
// only remaps its own arc, not the whole keyspace. Each shard owns
// ringVnodes points for balance.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

const ringVnodes = 64

func newHashRing(shards int) RoutingPolicy {
	r := &hashRing{points: make([]ringPoint, 0, shards*ringVnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: fnv64(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

func (r *hashRing) Name() string { return "hash" }

func (r *hashRing) Pick(key uint64, cands []ShardLoad) int {
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for off := 0; off < len(r.points); off++ {
		p := r.points[(start+off)%len(r.points)]
		for ci := range cands {
			if cands[ci].ID == p.shard {
				return ci
			}
		}
	}
	return 0
}

// FNV-1a, the same function the routing key uses, over the vnode coords.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64(s, v int) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range [...]byte{byte(s), byte(s >> 8), 0xd1, byte(v), byte(v >> 8)} {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return mix64(h)
}

// mix64 is a finalizer (MurmurHash3's) over the FNV state: FNV alone
// leaves short inputs clustered in the high bits, and ring ordering
// compares full 64-bit values, so without this one shard's vnodes can
// swallow most of the keyspace.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// routeKey hashes a job's reference-side sequence into the routing
// keyspace. The target prefix stands in for the reference region: jobs
// extending against the same region hash identically, which is what the
// consistent-hash policy keys affinity on. Bounded at 64 bases so the key
// cost stays flat for long targets; the length folds in to separate
// regions sharing a prefix.
func routeKey(region string) uint64 {
	h := uint64(fnvOffset64)
	n := len(region)
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		h = (h ^ uint64(region[i])) * fnvPrime64
	}
	return mix64((h ^ uint64(len(region))) * fnvPrime64)
}

// router is the tier in front of the shard pool: per decision it filters
// out degraded shards (routed around, not through), asks the policy to
// pick among the rest, and on a full queue fails the job over to the
// least-backlogged peer before surfacing 429 to the client.
type router struct {
	shards []*shard
	policy RoutingPolicy
}

func newRouter(shards []*shard, policyName string) (*router, error) {
	build, ok := policyBuilders[policyName]
	if !ok {
		return nil, fmt.Errorf("server: unknown route policy %q (valid: %s)",
			policyName, strings.Join(RoutingPolicies(), ", "))
	}
	return &router{shards: shards, policy: build(len(shards))}, nil
}

func shardLoad(sh *shard) ShardLoad {
	return ShardLoad{
		ID:         sh.id,
		InFlight:   sh.inflight.Load(),
		QueueDepth: sh.ext.QueueDepth(),
		MaxBatch:   sh.ext.cfg.MaxBatch,
	}
}

// pick chooses the shard for one request (or one streamed job). Degraded
// shards are excluded from the candidate set; if that empties it — every
// shard is host-only — the full set is used, because host-only shards
// still serve exact results and refusing the whole pool would turn a slow
// cluster into a down one.
func (r *router) pick(key uint64) *shard {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	cands := make([]ShardLoad, 0, len(r.shards))
	for _, sh := range r.shards {
		if sh.degraded() {
			sh.sm.avoided.Add(1)
			continue
		}
		cands = append(cands, shardLoad(sh))
	}
	if len(cands) == 0 {
		for _, sh := range r.shards {
			cands = append(cands, shardLoad(sh))
		}
	}
	sh := r.shards[cands[r.policy.Pick(key, cands)].ID]
	sh.sm.routed.Add(1)
	return sh
}

// submitExt submits one extension job to the picked shard, failing over
// on a full queue: peers are tried healthy-first in ascending backlog
// order before the client sees 429. Draining is global (Close drains all
// shards), so ErrDraining is surfaced immediately.
func (r *router) submitExt(sh *shard, job extJob) error {
	job.sh = sh
	err := sh.ext.Submit(job)
	if err == nil {
		sh.admit()
		return nil
	}
	if !errors.Is(err, ErrQueueFull) || len(r.shards) == 1 {
		return err
	}
	sh.sm.rejected.Add(1)
	for _, alt := range r.failoverOrder(sh) {
		job.sh = alt
		switch aerr := alt.ext.Submit(job); {
		case aerr == nil:
			alt.admit()
			alt.sm.rerouted.Add(1)
			job.tr.Mark(obs.EvReroute)
			return nil
		case errors.Is(aerr, ErrQueueFull):
			alt.sm.rejected.Add(1)
		default:
			return aerr
		}
	}
	return err
}

// submitMap mirrors submitExt for the mapping pipeline.
func (r *router) submitMap(sh *shard, job mapJob) error {
	job.sh = sh
	err := sh.maps.Submit(job)
	if err == nil {
		sh.admit()
		return nil
	}
	if !errors.Is(err, ErrQueueFull) || len(r.shards) == 1 {
		return err
	}
	sh.sm.rejected.Add(1)
	for _, alt := range r.failoverOrder(sh) {
		job.sh = alt
		switch aerr := alt.maps.Submit(job); {
		case aerr == nil:
			alt.admit()
			alt.sm.rerouted.Add(1)
			job.tr.Mark(obs.EvReroute)
			return nil
		case errors.Is(aerr, ErrQueueFull):
			alt.sm.rejected.Add(1)
		default:
			return aerr
		}
	}
	return err
}

// failoverOrder lists the peers of sh, healthy shards before degraded
// ones and ascending queue depth within each class: overflow lands where
// it will wait least, and on a degraded shard only when every healthy
// queue is full too (serving slowly beats rejecting).
func (r *router) failoverOrder(sh *shard) []*shard {
	type cand struct {
		sh       *shard
		degraded bool
		depth    int
	}
	cands := make([]cand, 0, len(r.shards)-1)
	for _, alt := range r.shards {
		if alt == sh {
			continue
		}
		cands = append(cands, cand{sh: alt, degraded: alt.degraded(), depth: alt.ext.QueueDepth()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].degraded != cands[j].degraded {
			return !cands[i].degraded
		}
		return cands[i].depth < cands[j].depth
	})
	out := make([]*shard, len(cands))
	for i, c := range cands {
		out[i] = c.sh
	}
	return out
}

// submitWaitExt is submitExt with flow control for streaming clients: a
// cluster-wide full queue blocks the stream reader (bounded by the
// request context) instead of failing the stream — the backpressure a
// pipelined producer wants. Each retry re-picks, so the stream drains
// into whichever shard frees up first.
func (r *router) submitWaitExt(ctx context.Context, key uint64, job extJob) error {
	for {
		sh := r.pick(key)
		err := r.submitExt(sh, job)
		if err == nil || !errors.Is(err, ErrQueueFull) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Microsecond):
		}
	}
}

// Package server is the network front-end of the repository: an HTTP/JSON
// alignment service that coalesces concurrent requests into dynamic
// micro-batches and dispatches them through the packed (SWAR) batch
// kernels, so independent clients share machine-word lanes the way the
// paper's host batches independent extensions into one FPGA DMA transfer
// (§V-B). The subsystem owns bounded admission queues with backpressure,
// a worker pool of per-worker extension sessions, deadline propagation,
// graceful drain, and a /metrics surface over the core check statistics.
package server

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Admission errors. Handlers map ErrQueueFull to 429 (with Retry-After)
// and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("server: admission queue full")
	ErrDraining  = errors.New("server: draining, not accepting work")
)

// FlushOpportunistic, as a FlushInterval, makes the collector never wait:
// each batch takes whatever is queued the moment it is assembled — the
// software analogue of a self-draining input FIFO. Any negative interval
// means the same; zero selects the default interval.
const FlushOpportunistic time.Duration = -1

// BatcherConfig tunes one micro-batching pipeline.
type BatcherConfig struct {
	// MaxBatch flushes a batch when this many jobs are pending (the size
	// trigger). Default 64 — a multiple of the 8-wide SWAR lane count.
	MaxBatch int
	// FlushInterval flushes this long after the first job of a batch
	// arrives (the deadline trigger), bounding the latency a lone request
	// pays for coalescing. Zero means the 200µs default; FlushOpportunistic
	// (any negative value) disables the wait entirely.
	FlushInterval time.Duration
	// QueueCap bounds the admission queue; Submit refuses further work
	// (ErrQueueFull) when it is full. Default 1024.
	QueueCap int
	// Workers is the batch worker pool size. Default GOMAXPROCS.
	Workers int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 200 * time.Microsecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// stealGroup links the batchers of peer shards so an idle shard's workers
// can drain a straggler's already-assembled batches — SaLoBa's workload
// balancing applied one level up, to whole batches across engines instead
// of lanes within a batch. The peer slice is published once, after every
// shard's batcher exists; until then workers see nil and never steal.
type stealGroup[T any] struct {
	peers atomic.Pointer[[]*batcher[T]]
}

func (g *stealGroup[T]) set(peers []*batcher[T]) { g.peers.Store(&peers) }

// batcher coalesces individually submitted jobs into micro-batches: a
// collector goroutine assembles batches (size- or deadline-triggered) and
// a worker pool executes them. One batcher instance serves one job type —
// each shard runs one for extension jobs and one for mapping jobs.
type batcher[T any] struct {
	cfg BatcherConfig
	met *Metrics
	sm  *shardMetrics // owning shard's counters; nil outside sharded servers

	mu     sync.RWMutex // guards closed vs. the in-channel close
	closed bool

	in      chan T
	batches chan []T
	free    chan []T // recycled batch backing arrays

	// binOf, when non-nil, keys each job into one of numBins shape bins
	// and the collector runs in binned mode (see collectBinned).
	binOf   func(T) int
	numBins int

	// group and self enable bounded work stealing between peer shards'
	// batchers. A nil group (single shard, or the plain constructors)
	// keeps the worker loop identical to the unsharded server.
	group *stealGroup[T]
	self  int

	collectorDone sync.WaitGroup
	workersDone   sync.WaitGroup
	closeOnce     sync.Once
}

// newBatcher starts the collector and worker pool. work is called once per
// worker and returns that worker's batch processor — the closure owns the
// worker's session state (extension scratch, mapper) for its lifetime.
func newBatcher[T any](cfg BatcherConfig, met *Metrics, work func() func([]T)) *batcher[T] {
	return newShardBatcher(cfg, met, nil, nil, 0, work)
}

// newShardBatcher is newBatcher bound to one shard of a sharded server:
// dispatches are mirrored into the shard's counters, and with a non-nil
// steal group the workers drain backlogged peers when their own queue is
// empty.
func newShardBatcher[T any](cfg BatcherConfig, met *Metrics, sm *shardMetrics, group *stealGroup[T], self int, work func() func([]T)) *batcher[T] {
	cfg = cfg.withDefaults()
	b := &batcher[T]{
		cfg:     cfg,
		met:     met,
		sm:      sm,
		group:   group,
		self:    self,
		in:      make(chan T, cfg.QueueCap),
		batches: make(chan []T, cfg.Workers),
		free:    make(chan []T, cfg.Workers*2),
	}
	b.start(work)
	return b
}

// newBinnedBatcher is newBatcher with shape-aware collection: binOf keys
// every job into one of numBins bins, and the collector packs batches
// bin-first, so jobs of like kernel shape share a batch (and therefore
// SWAR lane groups) even when they arrived interleaved with other shapes.
// The deadline trigger still bounds every job's wait to one FlushInterval.
func newBinnedBatcher[T any](cfg BatcherConfig, met *Metrics, numBins int, binOf func(T) int, work func() func([]T)) *batcher[T] {
	return newShardBinnedBatcher(cfg, met, nil, nil, 0, numBins, binOf, work)
}

// newShardBinnedBatcher is newBinnedBatcher with the shard hooks of
// newShardBatcher.
func newShardBinnedBatcher[T any](cfg BatcherConfig, met *Metrics, sm *shardMetrics, group *stealGroup[T], self int, numBins int, binOf func(T) int, work func() func([]T)) *batcher[T] {
	cfg = cfg.withDefaults()
	b := &batcher[T]{
		cfg:     cfg,
		met:     met,
		sm:      sm,
		group:   group,
		self:    self,
		in:      make(chan T, cfg.QueueCap),
		batches: make(chan []T, cfg.Workers),
		free:    make(chan []T, cfg.Workers*2+numBins),
		binOf:   binOf,
		numBins: numBins,
	}
	b.start(work)
	return b
}

func (b *batcher[T]) start(work func() func([]T)) {
	b.collectorDone.Add(1)
	if b.binOf != nil {
		go b.collectBinned()
	} else {
		go b.collect()
	}
	for w := 0; w < b.cfg.Workers; w++ {
		b.workersDone.Add(1)
		go func() {
			defer b.workersDone.Done()
			proc := work()
			if b.group == nil {
				// Unsharded (or single-shard) path: identical to the
				// pre-sharding worker loop.
				for batch := range b.batches {
					proc(batch)
					select {
					case b.free <- batch[:0]:
					default:
					}
				}
				return
			}
			b.stealLoop(proc)
		}()
	}
}

// stealPoll bounds how long an idle worker waits on its own (empty)
// dispatch channel before re-scanning peers for stealable batches. It is
// the straggler-drain latency floor, deliberately coarse next to the
// microsecond flush intervals: stealing is a rescue path, not the common
// one.
const stealPoll = time.Millisecond

// stealLoop is the worker body under work stealing. Own work always wins;
// only with an empty dispatch channel does the worker look at peers, and
// then it takes at most one already-assembled batch per scan from the
// most backlogged peer, processing it with this worker's own session. The
// results are bit-identical wherever the batch runs, so stealing moves
// latency, never answers.
func (b *batcher[T]) stealLoop(proc func([]T)) {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		// Fast path: the shard's own assembled batches.
		select {
		case batch, ok := <-b.batches:
			if !ok {
				return
			}
			b.runBatch(proc, batch)
			continue
		default:
		}
		if b.trySteal(proc) {
			continue
		}
		// Idle: block on the own channel, waking periodically so a peer
		// backlog that formed meanwhile is noticed.
		timer.Reset(stealPoll)
		select {
		case batch, ok := <-b.batches:
			if !timer.Stop() {
				<-timer.C
			}
			if !ok {
				return
			}
			b.runBatch(proc, batch)
		case <-timer.C:
		}
	}
}

func (b *batcher[T]) runBatch(proc func([]T), batch []T) {
	proc(batch)
	select {
	case b.free <- batch[:0]:
	default:
	}
}

// trySteal drains at most one assembled batch from the most backlogged
// peer. Non-blocking throughout: a peer whose backlog vanished between
// the scan and the receive simply yields nothing, and a closed peer
// channel reads as empty.
func (b *batcher[T]) trySteal(proc func([]T)) bool {
	peersp := b.group.peers.Load()
	if peersp == nil {
		return false
	}
	peers := *peersp
	victim, backlog := -1, 0
	for i, p := range peers {
		if i == b.self || p == nil {
			continue
		}
		if d := len(p.batches); d > backlog {
			victim, backlog = i, d
		}
	}
	if victim < 0 {
		return false
	}
	v := peers[victim]
	select {
	case batch, ok := <-v.batches:
		if !ok {
			return false
		}
		if b.sm != nil {
			b.sm.steals.Add(1)
		}
		if v.sm != nil {
			v.sm.stolen.Add(1)
		}
		proc(batch)
		// The backing array belongs to the victim's free list.
		select {
		case v.free <- batch[:0]:
		default:
		}
		return true
	default:
		return false
	}
}

// Submit offers one job to the admission queue without blocking: the
// backpressure decision is made here, not after resources are consumed.
func (b *batcher[T]) Submit(job T) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrDraining
	}
	select {
	case b.in <- job:
		return nil
	default:
		return ErrQueueFull
	}
}

// QueueDepth reports the jobs currently waiting for the collector.
func (b *batcher[T]) QueueDepth() int { return len(b.in) }

// QueueCap reports the admission bound.
func (b *batcher[T]) QueueCap() int { return b.cfg.QueueCap }

// Close stops admission, drains every queued job through the workers, and
// waits for them to finish. Safe to call more than once.
func (b *batcher[T]) Close() {
	b.closeOnce.Do(func() {
		b.mu.Lock()
		b.closed = true
		close(b.in)
		b.mu.Unlock()
		b.collectorDone.Wait()
		close(b.batches)
		b.workersDone.Wait()
	})
}

// collect assembles micro-batches: block for the first job, then fill
// until the size trigger (MaxBatch), the deadline trigger (FlushInterval
// after the first job), or queue closure.
func (b *batcher[T]) collect() {
	defer b.collectorDone.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		first, ok := <-b.in
		if !ok {
			return
		}
		batch := b.getBatch()
		batch = append(batch, first)
		open := true
		if b.cfg.FlushInterval > 0 {
			timer.Reset(b.cfg.FlushInterval)
			fired := false
			for open && !fired && len(batch) < b.cfg.MaxBatch {
				select {
				case job, more := <-b.in:
					if !more {
						open = false
						break
					}
					batch = append(batch, job)
				case <-timer.C:
					fired = true
				}
			}
			if !fired && !timer.Stop() {
				<-timer.C
			}
		} else {
			// Opportunistic mode: drain whatever is queued, never wait.
		greedy:
			for len(batch) < b.cfg.MaxBatch {
				select {
				case job, more := <-b.in:
					if !more {
						open = false
						break greedy
					}
					batch = append(batch, job)
				default:
					break greedy
				}
			}
		}
		b.dispatch(batch)
		if !open {
			return
		}
	}
}

// collectBinned is the shape-aware collector: pending jobs accumulate in
// per-bin slices keyed by binOf, so every dispatch is as shape-homogeneous
// as the arrival mix allows. Three triggers flush work:
//
//   - a bin reaching MaxBatch dispatches that bin alone (a perfectly
//     homogeneous batch);
//   - total pending reaching 2x MaxBatch dispatches the fullest bin,
//     bounding buffered work under a mixed load that fills no single bin
//     while still letting one busy bin fill completely;
//   - the deadline (FlushInterval after the first job of an idle period)
//     flushes everything, concatenated in bin order into MaxBatch-sized
//     batches — still bin-sorted, so lane groups stay dense.
//
// Every job therefore waits at most one FlushInterval, the same bound the
// plain collector gives.
func (b *batcher[T]) collectBinned() {
	defer b.collectorDone.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	bins := make([][]T, b.numBins)
	total := 0

	flushBin := func(k int) {
		total -= len(bins[k])
		b.dispatch(bins[k])
		bins[k] = nil
	}
	fullest := func() int {
		best, n := 0, -1
		for k := range bins {
			if len(bins[k]) > n {
				best, n = k, len(bins[k])
			}
		}
		return best
	}
	flushAll := func() {
		out := b.getBatch()
		for k := range bins {
			if bins[k] == nil {
				continue
			}
			for _, job := range bins[k] {
				out = append(out, job)
				if len(out) == b.cfg.MaxBatch {
					b.dispatch(out)
					out = b.getBatch()
				}
			}
			b.putBatch(bins[k][:0])
			bins[k] = nil
		}
		if len(out) > 0 {
			b.dispatch(out)
		} else {
			b.putBatch(out)
		}
		total = 0
	}
	add := func(job T) {
		k := b.binOf(job)
		if k < 0 || k >= len(bins) {
			k = len(bins) - 1
		}
		if bins[k] == nil {
			bins[k] = b.getBatch()
		}
		bins[k] = append(bins[k], job)
		total++
		if len(bins[k]) >= b.cfg.MaxBatch {
			flushBin(k)
		} else if total >= 2*b.cfg.MaxBatch {
			flushBin(fullest())
		}
	}

	for {
		first, ok := <-b.in
		if !ok {
			return
		}
		add(first)
		if b.cfg.FlushInterval > 0 {
			if total > 0 {
				timer.Reset(b.cfg.FlushInterval)
				for total > 0 {
					select {
					case job, more := <-b.in:
						if !more {
							flushAll()
							return
						}
						add(job)
					case <-timer.C:
						flushAll()
					}
				}
				// total hit zero — via the timer or a size flush that
				// drained everything. Disarm before blocking again (the
				// timer may have fired concurrently with a size flush).
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
			}
		} else {
			// Opportunistic mode: drain whatever is queued, then flush
			// everything bin-sorted. With more than MaxBatch queued this
			// still yields shape-grouped batches — the cross-batch win.
		greedy:
			for total < b.cfg.QueueCap {
				select {
				case job, more := <-b.in:
					if !more {
						flushAll()
						return
					}
					add(job)
				default:
					break greedy
				}
			}
			flushAll()
		}
	}
}

// dispatch hands one assembled batch to the worker pool and records the
// occupancy metrics.
func (b *batcher[T]) dispatch(batch []T) {
	if len(batch) == 0 {
		return
	}
	if b.met != nil {
		b.met.Batches.Add(1)
		b.met.Occupancy.observe(int64(len(batch)))
	}
	if b.sm != nil {
		b.sm.batches.Add(1)
		b.sm.occupancy.observe(int64(len(batch)))
	}
	b.batches <- batch
}

func (b *batcher[T]) getBatch() []T {
	select {
	case batch := <-b.free:
		return batch
	default:
		return make([]T, 0, b.cfg.MaxBatch)
	}
}

// putBatch returns an undispatched backing array to the free list (the
// binned collector recycles emptied bins here; dispatched batches come
// back through the workers).
func (b *batcher[T]) putBatch(batch []T) {
	select {
	case b.free <- batch:
	default:
	}
}

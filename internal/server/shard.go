package server

import (
	"sync/atomic"

	"seedex/internal/align"
	"seedex/internal/core"
	"seedex/internal/faults"
)

// shard is one independently failing serving unit: its own micro-batcher,
// worker pool, extension engine and (through the engine) circuit breaker.
// Shards are the host-side analog of the paper's replicated extension
// engines behind one batch-formation stage (§V-B): the router spreads
// whole batches across them the way the batch kernels spread problems
// across SWAR lanes.
type shard struct {
	id       int
	extender align.Extender
	ext      *batcher[extJob]
	maps     *batcher[mapJob] // nil without an aligner
	sm       *shardMetrics

	// stats and health are the shard engine's check statistics and
	// fault-tolerance view, resolved by the same duck-typing the
	// unsharded server used; either may be nil (plain software
	// extenders have no breaker).
	stats  *core.Stats
	health func() faults.Health

	// inflight counts jobs admitted to this shard and not yet delivered
	// or expired — the least-loaded policy's signal.
	inflight atomic.Int64
}

// degraded reports whether the shard's engine is in host-only mode (open
// or probing breaker). Shards without a health source are always fit.
func (sh *shard) degraded() bool {
	return sh.health != nil && sh.health().Degraded
}

// admit records one job entering the shard.
func (sh *shard) admit() {
	sh.inflight.Add(1)
	sh.sm.accepted.Add(1)
}

// settleExpired records one admitted job leaving the shard without
// compute (deadline passed in queue).
func (sh *shard) settleExpired() {
	sh.inflight.Add(-1)
	sh.sm.expired.Add(1)
}

// settleDone records one admitted job leaving the shard with a computed
// result.
func (sh *shard) settleDone() {
	sh.inflight.Add(-1)
	sh.sm.completed.Add(1)
}

// shardMetrics are one shard's own counters, recorded alongside (never
// instead of) the server-wide Metrics: the aggregate families keep their
// pre-sharding meaning, and the per-shard view rides on top.
type shardMetrics struct {
	accepted  atomic.Int64 // jobs admitted to this shard's queue
	completed atomic.Int64 // jobs computed by (or stolen from) this shard
	rejected  atomic.Int64 // submits this shard's full queue refused
	expired   atomic.Int64 // admitted jobs that expired before compute
	batches   atomic.Int64 // batches this shard's collector dispatched
	occupancy hist         // jobs per dispatched batch
	queueWait hist         // ns from admission to worker pickup

	// Router decisions.
	routed   atomic.Int64 // requests the policy routed here
	avoided  atomic.Int64 // routing decisions that skipped this degraded shard
	rerouted atomic.Int64 // jobs landed here after another shard's queue refused them

	// Work stealing.
	steals atomic.Int64 // batches this shard's workers took from peers
	stolen atomic.Int64 // batches peers took from this shard
}

// ShardSnapshot is one shard's slice of the /metrics document.
type ShardSnapshot struct {
	ID            int     `json:"id"`
	Accepted      int64   `json:"jobs_accepted"`
	Completed     int64   `json:"jobs_completed"`
	Rejected      int64   `json:"jobs_rejected"`
	Expired       int64   `json:"jobs_expired"`
	Batches       int64   `json:"batches"`
	MeanOccupancy float64 `json:"batch_occupancy_mean"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	InFlight      int64   `json:"inflight"`
	Routed        int64   `json:"routed"`
	Avoided       int64   `json:"avoided"`
	Rerouted      int64   `json:"rerouted"`
	Steals        int64   `json:"batches_stolen_from_peers"`
	Stolen        int64   `json:"batches_stolen_by_peers"`
	Degraded      bool    `json:"degraded"`
	Breaker       string  `json:"breaker,omitempty"`
}

func (sh *shard) snapshot() ShardSnapshot {
	occ := sh.sm.occupancy.snapshot()
	out := ShardSnapshot{
		ID:            sh.id,
		Accepted:      sh.sm.accepted.Load(),
		Completed:     sh.sm.completed.Load(),
		Rejected:      sh.sm.rejected.Load(),
		Expired:       sh.sm.expired.Load(),
		Batches:       sh.sm.batches.Load(),
		MeanOccupancy: occ.Mean(),
		QueueDepth:    sh.ext.QueueDepth(),
		QueueCap:      sh.ext.QueueCap(),
		InFlight:      sh.inflight.Load(),
		Routed:        sh.sm.routed.Load(),
		Avoided:       sh.sm.avoided.Load(),
		Rerouted:      sh.sm.rerouted.Load(),
		Steals:        sh.sm.steals.Load(),
		Stolen:        sh.sm.stolen.Load(),
	}
	if sh.health != nil {
		h := sh.health()
		out.Degraded = h.Degraded
		out.Breaker = h.Breaker
	}
	return out
}

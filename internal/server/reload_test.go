package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/faults"
	"seedex/internal/fmindex"
	"seedex/internal/genome"
	"seedex/internal/readsim"
	"seedex/internal/refstore"
)

// refStoreFixture publishes a simulated reference as a container file
// and returns the store path plus the expected SAM for a set of reads.
type refStoreFixture struct {
	path     string
	req      MapRequest
	wantSam  []string
	refBytes []byte
}

func newRefStoreFixture(t *testing.T, seed int64) *refStoreFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	refSeq := genome.Simulate(genome.SimConfig{Length: 30_000}, rng)
	reads := readsim.Simulate(refSeq, readsim.DefaultConfig(24), rng)

	ref, ix, err := bwamem.BuildIndex([]bwamem.Contig{{Name: "chrT", Seq: refSeq}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ref.rix")
	if _, err := refstore.WriteFile(path, ref, ix); err != nil {
		t.Fatal(err)
	}

	// Expected mappings from a plain fixed-aligner pipeline over the
	// same index: the store-served results must be bit-identical.
	a := bwamem.NewWithIndex(ref, ix, core.New(20))
	fx := &refStoreFixture{path: path}
	pr := make([]bwamem.Read, len(reads))
	for i, r := range reads {
		pr[i] = bwamem.Read{Name: r.ID, Seq: r.Seq, Qual: r.Qual}
		fx.req.Reads = append(fx.req.Reads, MapRead{Name: r.ID, Seq: genome.Decode(r.Seq), Qual: string(r.Qual)})
	}
	want, _ := a.Run(pr, 0)
	for _, rec := range want {
		fx.wantSam = append(fx.wantSam, rec.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fx.refBytes = data
	return fx
}

// newStoreServer builds a server mapping from the generation store.
func newStoreServer(t *testing.T, store *refstore.Store, cfg Config) (*Server, string) {
	t.Helper()
	stats := &core.Stats{}
	cfg.RefStore = store
	cfg.MapStats = stats
	cfg.NewAligner = func(ref *bwamem.Reference, ix *fmindex.Index) *bwamem.Aligner {
		a := bwamem.NewWithIndex(ref, ix, core.New(20))
		a.Stats = stats
		return a
	}
	s, ts := newTestServer(t, cfg)
	return s, ts.URL
}

// checkMap posts the fixture reads and requires status 200 with SAM
// records bit-identical to the fixed-pipeline expectation. It never
// calls into testing.T, so client goroutines can use it directly.
func (fx *refStoreFixture) checkMap(t *testing.T, url string) error {
	data, err := json.Marshal(fx.req)
	if err != nil {
		return err
	}
	resp, err := http.Post(url+"/v1/map", "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var out MapResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	if len(out.Results) != len(fx.wantSam) {
		return fmt.Errorf("%d results for %d reads", len(out.Results), len(fx.wantSam))
	}
	for i, r := range out.Results {
		if r.Sam != fx.wantSam[i] {
			return fmt.Errorf("read %d diverged:\n  served: %s\n  want:   %s", i, r.Sam, fx.wantSam[i])
		}
	}
	return nil
}

func healthzBody(t *testing.T, url string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestMapServesFromRefStore pins the baseline: /v1/map served from an
// mmap-backed generation store returns exactly the records the fixed
// aligner pipeline produces, and the health and metrics surfaces report
// the index lifecycle.
func TestMapServesFromRefStore(t *testing.T) {
	fx := newRefStoreFixture(t, 21)
	store, err := refstore.Open(fx.path, refstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	_, url := newStoreServer(t, store, Config{})

	if err := fx.checkMap(t, url); err != nil {
		t.Fatal(err)
	}
	code, body := healthzBody(t, url)
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz %d %v", code, body)
	}
	if body["index_generation"] != "1" || body["index_state"] != "ok" {
		t.Fatalf("healthz index fields: %v", body)
	}
}

// TestAdminReloadHotSwap proves a reload through POST /admin/reload
// swaps generations with mappings bit-identical before, during and
// after, while traffic keeps flowing.
func TestAdminReloadHotSwap(t *testing.T) {
	fx := newRefStoreFixture(t, 22)
	store, err := refstore.Open(fx.path, refstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	_, url := newStoreServer(t, store, Config{
		MapBatch: BatcherConfig{MaxBatch: 8, FlushInterval: time.Millisecond, Workers: 2},
	})

	var stop atomic.Bool
	var fails atomic.Int64
	var oks atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := fx.checkMap(t, url); err != nil {
					fails.Add(1)
					t.Errorf("map under reload: %v", err)
					return
				}
				oks.Add(1)
			}
		}()
	}

	for i := 0; i < 5; i++ {
		resp := postJSON(t, url+"/admin/reload", struct{}{})
		var body reloadBody
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !body.OK {
			t.Fatalf("reload %d: status %d body %+v", i, resp.StatusCode, body)
		}
		if body.Generation != uint64(i+2) {
			t.Fatalf("reload %d produced generation %d", i, body.Generation)
		}
	}
	stop.Store(true)
	wg.Wait()
	if fails.Load() != 0 || oks.Load() == 0 {
		t.Fatalf("%d failed, %d ok map requests during reloads", fails.Load(), oks.Load())
	}
	if st := store.Status(); st.Reloads != 5 || st.DegradedReload {
		t.Fatalf("store status after reloads: %+v", st)
	}
}

// TestReloadRollbackDegradedHealthz is the rollback path over HTTP: a
// corrupt published file makes /admin/reload answer 500, /healthz turns
// degraded (still 200 — the old generation serves exact results), and
// mapping traffic is unaffected; republishing the good bytes recovers.
func TestReloadRollbackDegradedHealthz(t *testing.T) {
	fx := newRefStoreFixture(t, 23)
	store, err := refstore.Open(fx.path, refstore.Options{MaxAttempts: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	_, url := newStoreServer(t, store, Config{})

	// Publish garbage over the index (write-aside + rename, as a broken
	// publisher would).
	bad := append([]byte{}, fx.refBytes[:len(fx.refBytes)/4]...)
	tmp := fx.path + ".next"
	if err := os.WriteFile(tmp, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, fx.path); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, url+"/admin/reload", struct{}{})
	var body reloadBody
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || body.OK || body.Error == "" {
		t.Fatalf("reload of corrupt index: status %d body %+v", resp.StatusCode, body)
	}
	if body.Generation != 1 {
		t.Fatalf("rollback reports generation %d, want 1", body.Generation)
	}

	code, hz := healthzBody(t, url)
	if code != http.StatusOK {
		t.Fatalf("degraded healthz answered %d, want 200", code)
	}
	if hz["status"] != "degraded" || hz["index_state"] != "degraded-reload" {
		t.Fatalf("healthz after rollback: %v", hz)
	}
	if hz["index_rollbacks"] != "1" || hz["index_reload_failures"] != "2" {
		t.Fatalf("healthz counters after rollback: %v", hz)
	}
	// The old generation still serves exact mappings.
	if err := fx.checkMap(t, url); err != nil {
		t.Fatalf("map after rollback: %v", err)
	}

	// Republish the good bytes: reload recovers, healthz clears.
	if err := os.WriteFile(tmp, fx.refBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, fx.path); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, url+"/admin/reload", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery reload: status %d", resp.StatusCode)
	}
	if _, hz := healthzBody(t, url); hz["status"] != "ok" || hz["index_state"] != "ok" {
		t.Fatalf("healthz after recovery: %v", hz)
	}
	if err := fx.checkMap(t, url); err != nil {
		t.Fatalf("map after recovery: %v", err)
	}
}

// TestReloadWithoutStore pins the 404 when no store is configured.
func TestReloadWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/admin/reload", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestPrometheusIndexFamilies checks the index lifecycle's whole
// reporting surface: seedex_index_* families in the strict Prometheus
// round-trip, the index section of the /metrics JSON body, and the
// generation fields in /healthz — before and after a reload.
func TestPrometheusIndexFamilies(t *testing.T) {
	fx := newRefStoreFixture(t, 24)
	store, err := refstore.Open(fx.path, refstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	_, url := newStoreServer(t, store, Config{})
	if err := fx.checkMap(t, url); err != nil {
		t.Fatal(err)
	}

	sc := scrapeProm(t, url)
	for fam, typ := range map[string]string{
		"seedex_index_generation":            "gauge",
		"seedex_index_reloads_total":         "counter",
		"seedex_index_reload_failures_total": "counter",
		"seedex_index_rollbacks_total":       "counter",
		"seedex_index_degraded_reload":       "gauge",
		"seedex_index_mmap_bytes":            "gauge",
		"seedex_index_warmup_seconds":        "gauge",
		"seedex_index_load_seconds":          "gauge",
	} {
		if got := sc.types[fam]; got != typ {
			t.Errorf("family %s has type %q, want %q", fam, got, typ)
		}
	}
	if sc.samples["seedex_index_generation"] != 1 {
		t.Errorf("seedex_index_generation = %v, want 1", sc.samples["seedex_index_generation"])
	}
	if sc.samples["seedex_index_mmap_bytes"] <= 0 {
		t.Errorf("seedex_index_mmap_bytes = %v, want > 0 on the mmap path", sc.samples["seedex_index_mmap_bytes"])
	}

	if _, err := store.Reload(); err != nil {
		t.Fatal(err)
	}
	sc = scrapeProm(t, url)
	if sc.samples["seedex_index_generation"] != 2 || sc.samples["seedex_index_reloads_total"] != 1 {
		t.Errorf("post-reload scrape: generation=%v reloads=%v",
			sc.samples["seedex_index_generation"], sc.samples["seedex_index_reloads_total"])
	}

	var met struct {
		Index *refstore.Status `json:"index"`
	}
	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(mresp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if met.Index == nil || met.Index.Generation != 2 || met.Index.MappedBytes <= 0 {
		t.Fatalf("metrics index section: %+v", met.Index)
	}
}

// TestMapReloadChaosStorm is the acceptance drill: a reload storm with
// every index fault class injecting, mapping clients running the whole
// time. Invariants: zero failed /v1/map requests, every response
// bit-identical to the fixed pipeline, every failed reload rolled back
// (reloads + rollbacks = triggers), and the fault sequence replays from
// its seed.
func TestMapReloadChaosStorm(t *testing.T) {
	seed := containmentSeed(t)
	fx := newRefStoreFixture(t, seed)
	inj := faults.NewIndexInjector(faults.UniformIndex(seed, 0.4))
	store, err := refstore.Open(fx.path, refstore.Options{
		MaxAttempts:  2,
		RetryBackoff: 200 * time.Microsecond,
		Chaos:        inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	_, url := newStoreServer(t, store, Config{
		MapBatch: BatcherConfig{MaxBatch: 8, FlushInterval: time.Millisecond, Workers: 2},
	})

	var stop atomic.Bool
	var fails, oks atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := fx.checkMap(t, url); err != nil {
					fails.Add(1)
					t.Errorf("map during chaos storm: %v", err)
					return
				}
				oks.Add(1)
			}
		}()
	}

	const storms = 25
	failedReloads := 0
	for i := 0; i < storms; i++ {
		resp := postJSON(t, url+"/admin/reload", struct{}{})
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusInternalServerError:
			failedReloads++
		default:
			t.Fatalf("reload %d: unexpected status %d", i, resp.StatusCode)
		}
	}
	stop.Store(true)
	wg.Wait()

	if fails.Load() != 0 {
		t.Fatalf("%d /v1/map requests failed during the storm (%d ok)", fails.Load(), oks.Load())
	}
	if oks.Load() == 0 {
		t.Fatal("no mapping traffic ran during the storm")
	}
	st := store.Status()
	if st.Reloads+st.Rollbacks != storms {
		t.Fatalf("reloads %d + rollbacks %d != %d triggers", st.Reloads, st.Rollbacks, storms)
	}
	if int(st.Rollbacks) != failedReloads {
		t.Fatalf("%d HTTP reload failures but %d rollbacks", failedReloads, st.Rollbacks)
	}
	if st.ChaosInjected.Total() == 0 {
		t.Fatal("chaos injector never fired at rate 0.4")
	}
	// Whatever the storm left serving still answers bit-identically.
	if err := fx.checkMap(t, url); err != nil {
		t.Fatalf("map after storm: %v", err)
	}
	// Replay: the injected-fault sequence is a pure function of the seed
	// and attempt count, so a rerun with SEEDEX_CHAOS_SEED reproduces it.
	inj2 := faults.NewIndexInjector(faults.UniformIndex(seed, 0.4))
	attempts := int64(0)
	for inj2.Counters() != st.ChaosInjected {
		attempts++
		if attempts > 10_000 {
			t.Fatal("storm chaos could not be replayed from its seed")
		}
		inj2.ReloadPlan(attempts)
	}
}

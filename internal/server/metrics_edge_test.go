package server

import (
	"fmt"
	"testing"
)

// Edge-of-domain regression tests for the power-of-two histogram
// quantile estimator (satellite c): empty histograms, the exact-zero
// bucket, single-bucket interpolation, monotonicity, torn snapshots,
// and the Prometheus quantile gauges on a fresh server.

// TestQuantileEmptyHistogram: no observations report 0 everywhere, not
// NaN or the last bucket bound.
func TestQuantileEmptyHistogram(t *testing.T) {
	var h hist
	s := h.snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Errorf("empty histogram Mean = %g, want 0", s.Mean())
	}
}

// TestQuantileExactZeroBucket: bucket 0 holds only exact zeros (clamped
// negatives included) and must never interpolate into (0, 1].
func TestQuantileExactZeroBucket(t *testing.T) {
	var h hist
	for i := 0; i < 10; i++ {
		h.observe(0)
	}
	h.observe(-5) // clamps into bucket 0
	s := h.snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("all-zero histogram Quantile(%g) = %g, want exactly 0", q, got)
		}
	}
}

// TestQuantileSingleBucket: with every observation in one bucket, the
// estimates stay inside that bucket's bounds and interpolation spreads
// them rather than collapsing to one value.
func TestQuantileSingleBucket(t *testing.T) {
	var h hist
	for i := 0; i < 100; i++ {
		h.observe(700) // bits.Len64(700) = 10: bucket [512, 1023]
	}
	s := h.snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := s.Quantile(q)
		if got < 512 || got > 1023 {
			t.Errorf("single-bucket Quantile(%g) = %g, escapes bucket [512, 1023]", q, got)
		}
	}
	if lo, hi := s.Quantile(0.01), s.Quantile(0.99); lo >= hi {
		t.Errorf("interpolation flat within the bucket: p1=%g p99=%g", lo, hi)
	}
}

// TestQuantileMonotone: p50 <= p90 <= p99 over a mixed distribution.
func TestQuantileMonotone(t *testing.T) {
	var h hist
	for _, v := range []int64{1, 3, 8, 17, 90, 90, 400, 1500, 1500, 64000} {
		for i := 0; i < 7; i++ {
			h.observe(v)
		}
	}
	s := h.snapshot()
	p50, p90, p99 := s.Quantile(0.5), s.Quantile(0.9), s.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Errorf("quantiles not monotone: p50=%g p90=%g p99=%g", p50, p90, p99)
	}
	if p99 > 131071 { // top observation 64000 lives in bucket [65536-1 hi = 131071]
		t.Errorf("p99=%g beyond the top bucket bound", p99)
	}
}

// TestQuantileTornSnapshot: counts and n are read non-atomically under
// live traffic, so the rank can exceed the summed counts. The estimator
// must clamp to the last non-empty bucket's upper bound, not fall
// through to 0 or some other axis.
func TestQuantileTornSnapshot(t *testing.T) {
	s := histSnapshot{N: 100, Sum: 12345}
	s.Counts[3] = 4 // bucket 3 covers [4, 7]
	if got := s.Quantile(0.99); got != 7 {
		t.Errorf("torn snapshot Quantile(0.99) = %g, want 7 (last bucket hi)", got)
	}
	if got := s.Quantile(0.5); got != 7 {
		t.Errorf("torn snapshot Quantile(0.5) = %g, want 7", got)
	}
}

// TestQuantileGaugesOnFreshServer: the *_quantile_seconds gauge families
// are present (and zero) on a scrape before any traffic, so dashboards
// never see a family flicker into existence.
func TestQuantileGaugesOnFreshServer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sc := scrapeProm(t, ts.URL)
	for _, fam := range []string{
		"seedex_request_latency_quantile_seconds",
		"seedex_queue_wait_quantile_seconds",
		"seedex_batch_occupancy_quantile",
	} {
		for _, q := range []string{"0.5", "0.9", "0.99"} {
			key := fmt.Sprintf(`%s{quantile="%s"}`, fam, q)
			v, ok := sc.samples[key]
			if !ok {
				t.Errorf("fresh scrape missing %s", key)
				continue
			}
			if v != 0 {
				t.Errorf("%s = %g on a fresh server, want 0", key, v)
			}
		}
	}
}

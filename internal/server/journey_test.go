package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seedex/internal/align"
	"seedex/internal/bwamem"
	"seedex/internal/core"
	"seedex/internal/faults"
	"seedex/internal/fmindex"
	"seedex/internal/obs"
	"seedex/internal/refstore"
)

// --- Journey stitching across shards and generations ------------------------

// postTraced posts a JSON body with a client-supplied request id, so the
// trace id is known to the test in advance.
func postTraced(t *testing.T, url, rid string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func hasString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// gatedExtender blocks exactly one extension call — the one that claims
// the armed gate — until released, pinning a worker mid-kernel so a test
// can stage a work steal or an index reload under a live request
// deterministically.
type gatedExtender struct {
	inner   align.Extender
	armed   atomic.Bool
	entered chan struct{} // closed when the claiming call starts blocking
	release chan struct{} // closed by the test to let it continue
}

func newGatedExtender(inner align.Extender) *gatedExtender {
	return &gatedExtender{inner: inner, entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedExtender) Extend(q, t []byte, h0 int) align.ExtendResult {
	if g.armed.CompareAndSwap(true, false) {
		close(g.entered)
		<-g.release
	}
	return g.inner.Extend(q, t, h0)
}

// TestJourneyStealStitching forces a cross-shard work steal and asserts
// the stolen request's tail-retained journey shows it: two shards with
// one worker each, both requests hash to the same shard, and the first
// blocks that shard's worker mid-kernel — the second request's batch can
// only complete by a peer steal. The retained journey must carry the
// steal event, a steal span naming victim and thief, and the router's
// steal accounting must agree.
func TestJourneyStealStitching(t *testing.T) {
	gate := newGatedExtender(core.New(20))
	gate.armed.Store(true)
	tracer := obs.New(obs.Config{SampleEvery: 1, Tail: obs.TailConfig{Enabled: true, Budget: 5 * time.Second, Keep: 64}})
	s, ts := newTestServer(t, Config{
		Shards:      2,
		RoutePolicy: "hash",
		NewExtender: func(int) align.Extender { return gate },
		Batch:       BatcherConfig{MaxBatch: 1, FlushInterval: FlushOpportunistic, Workers: 1},
		Trace:       tracer,
	})

	job := ExtendJob{Query: strings.Repeat("ACGT", 15), Target: strings.Repeat("ACGT", 15), H0: 30}
	post := func(rid string, done chan<- int) {
		resp := postTraced(t, ts.URL+"/v1/extend", rid, ExtendRequest{Jobs: []ExtendJob{job}})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}

	// Request A claims the gate: its home shard's only worker blocks
	// inside the kernel.
	doneA := make(chan int, 1)
	go post("00000000000000aa", doneA)
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("gated kernel never entered")
	}
	// Request B hashes to the same shard (identical target region), so
	// its assembled batch sits on a shard whose worker is pinned: only a
	// peer steal can complete it while A blocks.
	doneB := make(chan int, 1)
	go post("00000000000000bb", doneB)
	select {
	case code := <-doneB:
		if code != http.StatusOK {
			t.Fatalf("stolen request answered %d", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second request never completed: no peer stole the stranded batch")
	}
	close(gate.release)
	if code := <-doneA; code != http.StatusOK {
		t.Fatalf("gated request answered %d", code)
	}

	// One of the two journeys crossed shards (normally B; A if the peer
	// won the race for A's batch before its home worker did).
	var stolen obs.JourneyData
	found := false
	for _, jd := range tracer.Journeys() {
		if hasString(jd.Events, "steal") {
			stolen, found = jd, true
			break
		}
	}
	if !found {
		t.Fatalf("no retained journey carries the steal event (retained %d)", len(tracer.Journeys()))
	}
	if !hasString(stolen.Verdict, "event") {
		t.Fatalf("stolen journey verdict %v lacks the event reason", stolen.Verdict)
	}

	// The journey holds the full cross-shard timeline: the root request
	// span, the admitting shard's queue wait, and a steal span whose
	// victim and thief differ.
	sawRoot, sawQueue := false, false
	var steal *obs.SpanData
	for i, sd := range stolen.Spans {
		switch sd.Kind {
		case obs.KindRequest:
			sawRoot = true
		case obs.KindQueueWait:
			sawQueue = true
		case obs.KindSteal:
			steal = &stolen.Spans[i]
		}
	}
	if !sawRoot || !sawQueue || steal == nil {
		t.Fatalf("journey spans incomplete: root=%v queue=%v steal=%v", sawRoot, sawQueue, steal != nil)
	}
	if steal.V1 == steal.V2 {
		t.Fatalf("steal span victim=thief=%d: the journey does not cross shards", steal.V1)
	}
	for _, shard := range []int64{steal.V1, steal.V2} {
		if shard != 0 && shard != 1 {
			t.Fatalf("steal span names shard %d outside the pool", shard)
		}
	}

	// The router's accounting saw the same steal.
	snaps := s.ShardSnapshots()
	if snaps[0].Steals+snaps[1].Steals == 0 {
		t.Fatal("journey shows a steal the shard counters never recorded")
	}

	// The journey endpoint serves the same record by trace id.
	var doc struct {
		Trace   string   `json:"trace"`
		Events  []string `json:"events"`
		Verdict []string `json:"verdict"`
	}
	if code := getJSON(t, ts.URL+"/debug/journeys?trace="+stolen.TraceID, &doc); code != http.StatusOK {
		t.Fatalf("journey lookup answered %d", code)
	}
	if doc.Trace != stolen.TraceID || !hasString(doc.Events, "steal") {
		t.Fatalf("journey endpoint returned %+v for trace %s", doc, stolen.TraceID)
	}
}

// TestJourneyReloadStitching drives one mapping request across an index
// generation swap: the request's worker blocks mid-read, a hot reload
// publishes generation 2 under it, and the released request finishes its
// remaining reads on the new generation. The single retained journey
// must span both generations (kernel spans linking -1 and -2), carry the
// reload-overlap event, and its /debug/traces journey view must
// attribute every nanosecond of the total to a stage.
func TestJourneyReloadStitching(t *testing.T) {
	fx := newRefStoreFixture(t, 31)
	store, err := refstore.Open(fx.path, refstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)

	gate := newGatedExtender(core.New(20)) // unarmed: the warmup request flows freely
	stats := &core.Stats{}
	tracer := obs.New(obs.Config{SampleEvery: 1, Tail: obs.TailConfig{Enabled: true, Budget: 5 * time.Second, Keep: 64}})
	_, ts := newTestServer(t, Config{
		RefStore: store,
		MapStats: stats,
		NewAligner: func(ref *bwamem.Reference, ix *fmindex.Index) *bwamem.Aligner {
			a := bwamem.NewWithIndex(ref, ix, gate)
			a.Stats = stats
			return a
		},
		MapBatch: BatcherConfig{MaxBatch: 1, FlushInterval: FlushOpportunistic, Workers: 1},
		Trace:    tracer,
	})

	// Warmup: the single map worker builds its generation-1 session, so
	// the later generation change is an observed swap, not first use.
	resp := postJSON(t, ts.URL+"/v1/map", fx.req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup map answered %d", resp.StatusCode)
	}

	// The traced request blocks at its first extension...
	gate.armed.Store(true)
	const rid = "00000000000000cd"
	done := make(chan int, 1)
	go func() {
		resp := postTraced(t, ts.URL+"/v1/map", rid, fx.req)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("gated mapping kernel never entered")
	}

	// ...a reload swaps generations under it...
	rresp := postJSON(t, ts.URL+"/admin/reload", struct{}{})
	var rbody reloadBody
	json.NewDecoder(rresp.Body).Decode(&rbody)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || rbody.Generation != 2 {
		t.Fatalf("mid-request reload: status %d body %+v", rresp.StatusCode, rbody)
	}

	// ...and the released request finishes on generation 2.
	close(gate.release)
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("reload-straddling map answered %d", code)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("reload-straddling request never completed")
	}

	jd, ok := tracer.Journey(0xcd)
	if !ok {
		t.Fatal("reload-straddling request was not tail-retained")
	}
	if !hasString(jd.Events, "reload-overlap") {
		t.Fatalf("journey events %v lack reload-overlap", jd.Events)
	}
	// Kernel spans link the index generation each read computed against
	// (negated): one coherent trace spans both generations.
	gens := map[int64]bool{}
	for _, sd := range jd.Spans {
		if sd.Kind == obs.KindKernel && sd.Link < 0 {
			gens[sd.Link] = true
		}
	}
	if !gens[-1] || !gens[-2] {
		t.Fatalf("kernel generation links %v, want both -1 and -2 (request straddles the swap)", gens)
	}

	// The stitched journey view attributes the whole budget: stage
	// nanoseconds sum exactly to the total, fractions to ~1.
	var doc struct {
		Trace       string          `json:"trace"`
		Events      []string        `json:"events"`
		Attribution obs.Attribution `json:"attribution"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces?trace="+rid+"&format=journey", &doc); code != http.StatusOK {
		t.Fatalf("journey trace view answered %d", code)
	}
	if !hasString(doc.Events, "reload-overlap") {
		t.Fatalf("trace view events %v lack reload-overlap", doc.Events)
	}
	a := doc.Attribution
	if a.TotalNs <= 0 {
		t.Fatalf("attribution total %d, want > 0", a.TotalNs)
	}
	sum := a.AdmissionNs + a.QueueNs + a.BatchWaitNs + a.KernelNs + a.CheckNs + a.RerunNs
	if sum != a.TotalNs {
		t.Fatalf("stage attribution sums to %d ns, total is %d ns", sum, a.TotalNs)
	}
	fracSum := a.AdmissionFrac + a.QueueFrac + a.BatchWaitFrac + a.KernelFrac + a.CheckFrac + a.RerunFrac
	if fracSum < 0.999 || fracSum > 1.001 {
		t.Fatalf("stage fractions sum to %g, want ~1", fracSum)
	}
	// The gate held the request inside the kernel; the kernel stage must
	// dominate the timeline.
	if a.KernelFrac < 0.5 {
		t.Fatalf("kernel fraction %g for a kernel-pinned request, want > 0.5", a.KernelFrac)
	}
}

// --- Chaos retention (runs under `make chaos`) -------------------------------

// TestTailChaosBreakerRetention is the acceptance drill for fault
// retention: with every device attempt core-failing, the breaker trips,
// and tail sampling must retain full journeys carrying the fault event —
// the requests an operator needs are exactly the ones kept.
func TestTailChaosBreakerRetention(t *testing.T) {
	eng := chaosEngine(faults.Config{Seed: containmentSeed(t), CoreFail: 1})
	tracer := obs.New(obs.Config{Tail: obs.TailConfig{Enabled: true, Keep: 128}})
	_, ts := newTestServer(t, Config{
		Extender: eng,
		Batch:    BatcherConfig{MaxBatch: 32, FlushInterval: time.Millisecond, Workers: 2},
		Trace:    tracer,
	})

	deadline := time.Now().Add(10 * time.Second)
	for round := int64(0); eng.Health().Trips == 0; round++ {
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped under sustained core failures")
		}
		resp := postJSON(t, ts.URL+"/v1/extend", ExtendRequest{Jobs: testProblems(32, 100, 7000+round)})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	faulted := 0
	for _, jd := range tracer.Journeys() {
		if hasString(jd.Events, "fault") {
			faulted++
			if !hasString(jd.Verdict, "event") {
				t.Fatalf("faulted journey verdict %v lacks the event reason", jd.Verdict)
			}
		}
	}
	if faulted == 0 {
		t.Fatalf("breaker tripped but no retained journey carries the fault event (%d retained)", len(tracer.Journeys()))
	}

	// The retention counters surface on the Prometheus scrape.
	sc := scrapeProm(t, ts.URL)
	if sc.samples["seedex_trace_tail_retained"] <= 0 {
		t.Errorf("seedex_trace_tail_retained = %v with %d journeys held", sc.samples["seedex_trace_tail_retained"], faulted)
	}
	if sc.samples["seedex_trace_tail_retained_total"] <= 0 {
		t.Error("seedex_trace_tail_retained_total not live after retention")
	}
}

// TestTailChaosRollbackRetention covers the other acceptance trigger: a
// reload of a corrupt index rolls back while mapping traffic flows, and
// at least one in-flight request's journey is retained with the
// reload-overlap event.
func TestTailChaosRollbackRetention(t *testing.T) {
	fx := newRefStoreFixture(t, 33)
	// Two retries with a wide backoff keep the store in its reloading
	// window long enough for concurrent traffic to observe the overlap.
	store, err := refstore.Open(fx.path, refstore.Options{MaxAttempts: 3, RetryBackoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	tracer := obs.New(obs.Config{Tail: obs.TailConfig{Enabled: true, Keep: 128}})
	_, url := newStoreServer(t, store, Config{
		MapBatch: BatcherConfig{MaxBatch: 8, FlushInterval: 200 * time.Microsecond, Workers: 2},
		Trace:    tracer,
	})

	// Publish garbage over the index, as a broken publisher would.
	bad := append([]byte{}, fx.refBytes[:len(fx.refBytes)/4]...)
	tmp := fx.path + ".next"
	if err := os.WriteFile(tmp, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, fx.path); err != nil {
		t.Fatal(err)
	}

	// Mapping traffic runs while the reload fails, retries and rolls
	// back; generation 1 keeps serving bit-identical results throughout.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if err := fx.checkMap(t, url); err != nil {
					t.Errorf("map during rollback: %v", err)
					return
				}
			}
		}()
	}
	resp := postJSON(t, url+"/admin/reload", struct{}{})
	resp.Body.Close()
	stop.Store(true)
	wg.Wait()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload of corrupt index answered %d, want 500", resp.StatusCode)
	}
	if st := store.Status(); st.Rollbacks != 1 {
		t.Fatalf("store rollbacks = %d, want 1 (%+v)", st.Rollbacks, st)
	}

	overlapped := 0
	for _, jd := range tracer.Journeys() {
		if hasString(jd.Events, "reload-overlap") {
			overlapped++
		}
	}
	if overlapped == 0 {
		t.Fatalf("rollback left no retained journey with the reload-overlap event (%d retained)", len(tracer.Journeys()))
	}
}

package server

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of the power-of-two histograms: bucket i
// holds values v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i). 40 buckets
// cover one nanosecond to ~9 minutes of latency, or any practical batch
// occupancy, without configuration.
const histBuckets = 40

// hist is a lock-free power-of-two histogram: recording is one atomic add,
// reading is a sweep. It backs the latency and batch-occupancy metrics.
type hist struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// observe counts one value (values < 1 clamp into the first bucket).
func (h *hist) observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// histSnapshot is a plain copy of one histogram for reporting.
type histSnapshot struct {
	Counts [histBuckets]int64
	Sum    int64
	N      int64
}

func (h *hist) snapshot() histSnapshot {
	var out histSnapshot
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	out.Sum = h.sum.Load()
	out.N = h.n.Load()
	return out
}

// Mean returns the average observed value.
func (s histSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}

// Quantiles bundles the standard p50/p90/p99 estimates of one histogram
// (interpolated within the power-of-two buckets), the shape shared by the
// JSON metrics document and the Prometheus exposition.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// Quantiles estimates p50/p90/p99 in one sweep-free bundle.
func (s histSnapshot) Quantiles() Quantiles {
	return Quantiles{P50: s.Quantile(0.50), P90: s.Quantile(0.90), P99: s.Quantile(0.99)}
}

// Scaled returns the quantile bundle with every estimate multiplied by
// scale (ns -> µs or seconds for reporting).
func (q Quantiles) Scaled(scale float64) Quantiles {
	return Quantiles{P50: q.P50 * scale, P90: q.P90 * scale, P99: q.P99 * scale}
}

// Quantile estimates the q-quantile (0 < q <= 1) by interpolating within
// the power-of-two bucket holding the q-th observation. The estimate is
// exact to within a factor of two — ample for p50/p99 service latencies.
//
// Edge contracts: an empty histogram reports 0 for every quantile;
// bucket 0 holds only exact zeros (clamped negatives included) and
// reports 0 rather than interpolating into (0, 1]; and a snapshot torn
// between counts and n (the fields are read non-atomically under live
// traffic, so rank can exceed the summed counts) clamps to the upper
// bound of the last non-empty bucket instead of returning the raw Sum —
// a value on a different axis entirely.
func (s histSnapshot) Quantile(q float64) float64 {
	if s.N == 0 {
		return 0
	}
	rank := q * float64(s.N)
	var seen float64
	last := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		last = hi
		if seen+float64(c) >= rank {
			frac := (rank - seen) / float64(c)
			return lo + frac*(hi-lo)
		}
		seen += float64(c)
	}
	return last
}

// bucketBounds returns bucket i's value bounds: bucket 0 is exactly
// {0}, bucket i>0 covers [2^(i-1), 2^i - 1].
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	return float64(int64(1) << (i - 1)), float64(int64(1)<<i - 1)
}

// Buckets returns the non-empty buckets as [lower, upper] value bounds
// with counts, for the metrics JSON.
func (s histSnapshot) Buckets() []BucketCount {
	var out []BucketCount
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
		}
		out = append(out, BucketCount{Lo: lo, Hi: int64(1)<<i - 1, Count: c})
	}
	return out
}

// BucketCount is one non-empty histogram bucket in the metrics JSON.
type BucketCount struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Metrics aggregates the server's operational counters. Every field is an
// independent atomic, so the hot paths (admission, batch dispatch,
// request completion) never share a lock with the /metrics scraper.
type Metrics struct {
	// Admission.
	Accepted  atomic.Int64 // jobs admitted to the queue
	Rejected  atomic.Int64 // jobs refused with 429 (queue full)
	Draining  atomic.Int64 // jobs refused with 503 (shutting down)
	Expired   atomic.Int64 // jobs whose deadline passed before compute
	Requests  atomic.Int64 // HTTP requests served on the job endpoints
	BadInput  atomic.Int64 // requests refused with 400
	Failed    atomic.Int64 // requests answered 429/500/503/504 (SLO availability)
	Completed atomic.Int64 // jobs fully computed

	// Dispatch.
	Batches   atomic.Int64 // device batches dispatched
	Occupancy hist         // jobs per dispatched batch
	QueueWait hist         // ns from admission to dispatch
	Latency   hist         // ns from request start to response ready
}

// MetricsSnapshot is the JSON shape of /metrics (expvar-style: one flat
// document, scrape-friendly names).
type MetricsSnapshot struct {
	Accepted  int64 `json:"jobs_accepted"`
	Rejected  int64 `json:"jobs_rejected"`
	Draining  int64 `json:"jobs_rejected_draining"`
	Expired   int64 `json:"jobs_expired"`
	Requests  int64 `json:"requests"`
	BadInput  int64 `json:"requests_bad_input"`
	Failed    int64 `json:"requests_failed"`
	Completed int64 `json:"jobs_completed"`

	Batches        int64         `json:"batches"`
	MeanOccupancy  float64       `json:"batch_occupancy_mean"`
	OccupancyP50   float64       `json:"batch_occupancy_p50"`
	OccupancyP90   float64       `json:"batch_occupancy_p90"`
	OccupancyP99   float64       `json:"batch_occupancy_p99"`
	OccupancyHist  []BucketCount `json:"batch_occupancy_hist"`
	QueueDepth     int           `json:"queue_depth"`
	QueueCap       int           `json:"queue_cap"`
	QueueWaitP50Us float64       `json:"queue_wait_p50_us"`
	QueueWaitP90Us float64       `json:"queue_wait_p90_us"`
	QueueWaitP99Us float64       `json:"queue_wait_p99_us"`
	LatencyP50Us   float64       `json:"latency_p50_us"`
	LatencyP90Us   float64       `json:"latency_p90_us"`
	LatencyP99Us   float64       `json:"latency_p99_us"`
	LatencyMeanUs  float64       `json:"latency_mean_us"`
}

// Snapshot reads every counter into the JSON shape. Queue depth/cap are
// passed in by the owner (they live on the batcher).
func (m *Metrics) Snapshot(queueDepth, queueCap int) MetricsSnapshot {
	occ := m.Occupancy.snapshot()
	qw := m.QueueWait.snapshot()
	lat := m.Latency.snapshot()
	occQ, qwQ, latQ := occ.Quantiles(), qw.Quantiles().Scaled(1e-3), lat.Quantiles().Scaled(1e-3)
	return MetricsSnapshot{
		Accepted:  m.Accepted.Load(),
		Rejected:  m.Rejected.Load(),
		Draining:  m.Draining.Load(),
		Expired:   m.Expired.Load(),
		Requests:  m.Requests.Load(),
		BadInput:  m.BadInput.Load(),
		Failed:    m.Failed.Load(),
		Completed: m.Completed.Load(),

		Batches:        m.Batches.Load(),
		MeanOccupancy:  occ.Mean(),
		OccupancyP50:   occQ.P50,
		OccupancyP90:   occQ.P90,
		OccupancyP99:   occQ.P99,
		OccupancyHist:  occ.Buckets(),
		QueueDepth:     queueDepth,
		QueueCap:       queueCap,
		QueueWaitP50Us: qwQ.P50,
		QueueWaitP90Us: qwQ.P90,
		QueueWaitP99Us: qwQ.P99,
		LatencyP50Us:   latQ.P50,
		LatencyP90Us:   latQ.P90,
		LatencyP99Us:   latQ.P99,
		LatencyMeanUs:  lat.Mean() / 1e3,
	}
}

// observeLatency records one request's service time.
func (m *Metrics) observeLatency(d time.Duration) { m.Latency.observe(d.Nanoseconds()) }
